package quorumplace

import (
	"fmt"
	"math/rand"
	"testing"
)

// Scaling benchmark family (experiment E18): the client dimension must cost
// only aggregation (linear, tiny constant), never solver work, and the node
// dimension must ride the exact tree DP instead of the n² metric + LP.
// scripts/check.sh gates these through benchdiff: clients=10⁶ within 2× of
// clients=10⁴ at fixed topology (-speedup 0.5), the 10⁵-node/10⁶-client
// pipeline under an absolute wall-clock ceiling (-max-time), and the metric
// builder's allocs/op pinned against the committed snapshot.

// scalingClients draws a deterministic client population with integer
// weights over n nodes.
func scalingClients(rng *rand.Rand, n, k int) []Client {
	cs := make([]Client, k)
	for i := range cs {
		cs[i] = Client{Node: rng.Intn(n), Weight: float64(1 + rng.Intn(9))}
	}
	return cs
}

// BenchmarkScalingClients holds the network fixed (a 2000-node tree) and
// scales only the raw client count. Each op runs the full demand pipeline —
// aggregate the population, apply it as rates, solve QPP on the tree — so
// the measured growth from 10⁴ to 10⁶ clients is exactly the aggregation
// cost, which the gate requires to stay within the solve time.
func BenchmarkScalingClients(b *testing.B) {
	const n = 2000
	rng := rand.New(rand.NewSource(11))
	g := RandomTree(n, 0.1, 1.0, rng)
	sys := Majority(7, 4)
	strat := Uniform(sys.NumQuorums())
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.6
	}
	for _, k := range []int{10_000, 1_000_000} {
		clients := scalingClients(rng, n, k)
		b.Run(fmt.Sprintf("clients=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := NewDemand(n)
				if err := d.AddClients(clients); err != nil {
					b.Fatal(err)
				}
				res, err := SolveQPPTree(g, caps, sys, strat, d.Rates())
				if err != nil {
					b.Fatal(err)
				}
				if res.AvgMaxDelay <= 0 {
					b.Fatal("degenerate objective")
				}
			}
		})
	}
}

// BenchmarkMetricBuild pins the allocation profile of the parallel dense
// metric builder. The failure mode it guards is per-row workspace churn
// (one heap/visited allocation per source = O(n) allocs); the benchdiff
// gate allows a small band for the O(workers) per-run allocations, which
// legitimately vary with GOMAXPROCS.
func BenchmarkMetricBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	g := RandomGeometric(1000, 0.08, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildMetric(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeDP is the headline scaling run: a 10⁵-node tree with 10⁶
// aggregated clients through the full pipeline (aggregation, rate-weighted
// candidate selection, exact per-source subset DP, exact objective
// evaluation). The benchdiff -max-time gate holds it under the 10-second
// promise.
func BenchmarkTreeDP(b *testing.B) {
	const n, k = 100_000, 1_000_000
	rng := rand.New(rand.NewSource(13))
	g := RandomTree(n, 0.1, 1.0, rng)
	sys := Majority(5, 3)
	strat := Uniform(sys.NumQuorums())
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.7
	}
	clients := scalingClients(rng, n, k)
	b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := NewDemand(n)
			if err := d.AddClients(clients); err != nil {
				b.Fatal(err)
			}
			res, err := SolveQPPTree(g, caps, sys, strat, d.Rates())
			if err != nil {
				b.Fatal(err)
			}
			if res.AvgMaxDelay <= 0 {
				b.Fatal("degenerate objective")
			}
		}
	})
}
