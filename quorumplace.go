// Package quorumplace places quorum systems onto networks so that client
// access delay is approximately minimized while every node's load stays
// within a bounded factor of its capacity. It implements the algorithms of
// Gupta, Maggs, Oprea and Reiter, "Quorum Placement in Networks to Minimize
// Access Delays" (PODC 2005), together with all the substrates the paper
// relies on: graphs and shortest-path metrics, quorum-system constructions
// and access strategies, an LP solver, Shmoys–Tardos GAP rounding, exact
// solvers for ground truth, and a discrete-event access simulator.
//
// # Quick start
//
//	g := quorumplace.RandomGeometric(20, 0.4, rng)
//	m, _ := quorumplace.NewMetricFromGraph(g)
//	sys := quorumplace.Grid(3)
//	ins, _ := quorumplace.NewInstance(m, caps, sys, quorumplace.Uniform(sys.NumQuorums()))
//	res, _ := quorumplace.SolveQPP(ins, 2.0) // Theorem 1.2, α = 2
//	fmt.Println(res.AvgMaxDelay, ins.CapacityViolation(res.Placement))
//
// The three main solver entry points mirror the paper's results:
//
//   - SolveQPP (Theorem 1.2): average max-delay within 5α/(α-1) of optimal,
//     loads within (α+1)·cap;
//   - SolveGridQPP / SolveMajorityQPP (Theorem 1.3): delay within 5× of
//     optimal with capacities respected exactly, for the Grid and Majority
//     systems under the uniform strategy;
//   - SolveTotalDelay (Theorem 1.4): average total-delay no worse than the
//     best capacity-respecting placement, loads within 2·cap.
//
// This package is a thin facade over the internal packages; every exported
// name is a type alias or function re-export, so values flow freely between
// the facade and the internals.
package quorumplace

import (
	"io"
	"math/rand"

	"quorumplace/internal/agg"
	"quorumplace/internal/daemon"
	"quorumplace/internal/graph"
	"quorumplace/internal/heat"
	"quorumplace/internal/migrate"
	"quorumplace/internal/netsim"
	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
	"quorumplace/internal/recommend"
	"quorumplace/internal/sched"
	"quorumplace/internal/treedp"
)

// --- network substrate -------------------------------------------------------

// Graph is a weighted undirected network topology.
type Graph = graph.Graph

// Metric is a finite shortest-path metric over network nodes.
type Metric = graph.Metric

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewMetricFromGraph computes the all-pairs shortest-path metric of g.
func NewMetricFromGraph(g *Graph) (*Metric, error) { return graph.NewMetricFromGraph(g) }

// NewMetricFromMatrix builds a metric from an explicit distance matrix.
func NewMetricFromMatrix(d [][]float64) (*Metric, error) { return graph.NewMetricFromMatrix(d) }

// BuildMetric is the scale-aware metric constructor: it computes the dense
// all-pairs metric with the parallel builder when the graph fits the dense
// budget (DefaultDenseLimit nodes unless overridden with WithDenseLimit),
// and refuses with ErrMetricTooLarge — naming the sparse alternatives —
// rather than silently attempting an n² build. Prefer it over
// NewMetricFromGraph anywhere the input size is not fixed by construction.
func BuildMetric(g *Graph, opts ...BuildOption) (*Metric, error) {
	return graph.BuildMetric(g, opts...)
}

// BuildOption configures BuildMetric; see WithDenseLimit.
type BuildOption = graph.BuildOption

// LandmarkMetric is the sparse landmark (beacon) distance oracle: k Dijkstra
// rows instead of n², with certified upper/lower bounds per pair.
type LandmarkMetric = graph.LandmarkMetric

// Sparse-metric constructors and limits (see internal/graph for semantics).
var (
	WithDenseLimit    = graph.WithDenseLimit
	ErrMetricTooLarge = graph.ErrMetricTooLarge
	NewLandmarkMetric = graph.NewLandmarkMetric
)

// DefaultDenseLimit is the node count above which BuildMetric refuses a
// dense build unless overridden.
const DefaultDenseLimit = graph.DefaultDenseLimit

// Topology generators. Random generators take a *rand.Rand for
// reproducibility; see the graph package for parameter semantics.
var (
	Path                = graph.Path
	Cycle               = graph.Cycle
	Star                = graph.Star
	Complete            = graph.Complete
	Grid2D              = graph.Grid2D
	RandomTree          = graph.RandomTree
	ErdosRenyiConnected = graph.ErdosRenyiConnected
	Broom               = graph.Broom
	StarWithLongEdge    = graph.StarWithLongEdge
	Hypercube           = graph.Hypercube
	RingOfCliques       = graph.RingOfCliques
)

// Edge-list serialization for feeding measured topologies to the solvers.
var (
	WriteEdgeList = graph.WriteEdgeList
	ParseEdgeList = graph.ParseEdgeList
)

// RandomGeometric places n points uniformly in the unit square and connects
// pairs within the radius (Euclidean edge lengths) — the standard synthetic
// WAN topology.
func RandomGeometric(n int, radius float64, rng *rand.Rand) *Graph {
	return graph.RandomGeometric(n, radius, rng)
}

// --- quorum systems ----------------------------------------------------------

// System is a quorum system: a family of pairwise-intersecting subsets of a
// logical universe.
type System = quorum.System

// Strategy is a probability distribution over a system's quorums.
type Strategy = quorum.Strategy

// NewSystem validates and builds a quorum system from explicit quorums.
func NewSystem(name string, universe int, quorums [][]int) (*System, error) {
	return quorum.NewSystem(name, universe, quorums)
}

// Quorum-system constructions (see internal/quorum for definitions).
var (
	Grid             = quorum.Grid
	Majority         = quorum.Majority
	SingletonSystem  = quorum.Singleton
	StarSystem       = quorum.Star
	Wheel            = quorum.Wheel
	FPP              = quorum.FPP
	CrumblingWalls   = quorum.CrumblingWalls
	TreeSystem       = quorum.Tree
	WeightedMajority = quorum.WeightedMajority
)

// NewStrategy validates p as a probability distribution over quorums.
func NewStrategy(p []float64) (Strategy, error) { return quorum.NewStrategy(p) }

// Uniform returns the uniform strategy over m quorums.
func Uniform(m int) Strategy { return quorum.Uniform(m) }

// OptimalStrategy computes the load-minimizing access strategy of a system
// (the Naor–Wool LP) and the optimal load.
func OptimalStrategy(s *System) (Strategy, float64, error) { return quorum.OptimalStrategy(s) }

// --- placement problems -------------------------------------------------------

// Instance is a Quorum Placement Problem instance (Problem 1.1).
type Instance = placement.Instance

// Placement is a map from logical elements to network nodes.
type Placement = placement.Placement

// Results of the solvers.
type (
	QPPResult        = placement.QPPResult
	SSQPPResult      = placement.SSQPPResult
	GridResult       = placement.GridResult
	MajorityResult   = placement.MajorityResult
	TotalDelayResult = placement.TotalDelayResult
)

// NewInstance validates the inputs and builds a placement instance.
func NewInstance(m *Metric, cap []float64, sys *System, strat Strategy) (*Instance, error) {
	return placement.NewInstance(m, cap, sys, strat)
}

// NewPlacement wraps an element→node map.
func NewPlacement(f []int) Placement { return placement.NewPlacement(f) }

// SolveQPP runs the Theorem 1.2 algorithm: average max-delay within
// 5α/(α-1) of the optimal capacity-respecting placement, with loads within
// (α+1)·cap.
func SolveQPP(ins *Instance, alpha float64) (*QPPResult, error) {
	return placement.SolveQPP(ins, alpha)
}

// SolveSSQPP runs the Theorem 3.7 single-source pipeline for source v0.
// Large instances with small quorum universes are transparently routed
// through the exact subset DP (see SolveSSQPPExact) instead of the LP.
func SolveSSQPP(ins *Instance, v0 int, alpha float64) (*SSQPPResult, error) {
	return placement.SolveSSQPP(ins, v0, alpha)
}

// SolveSSQPPExact solves the single-source problem to optimality with the
// O(n·3^U) subset DP — exponential only in the universe size, so fast
// whenever the quorum system is over a small logical universe. The returned
// certificate carries the optimum itself as LPBound.
func SolveSSQPPExact(ins *Instance, v0 int, alpha float64) (*SSQPPResult, error) {
	return placement.SolveSSQPPExact(ins, v0, alpha)
}

// TreeQPPResult is the outcome of SolveQPPTree.
type TreeQPPResult = treedp.Result

// SolveQPPTree solves QPP on a tree topology without materializing the n²
// metric: O(n) tree-distance vectors per candidate source, the exact subset
// DP per source, and exact objective evaluation via per-quorum diametral
// pairs. rates may be nil for uniform clients. This is the path that takes
// 10⁵-node networks with aggregated million-client demand in seconds.
func SolveQPPTree(g *Graph, caps []float64, sys *System, strat Strategy, rates []float64) (*TreeQPPResult, error) {
	return treedp.SolveQPP(g, caps, sys, strat, rates)
}

// --- demand aggregation ------------------------------------------------------

// Demand accumulates per-node client weight; Client is one raw demand
// source. See internal/agg: the objective is linear in client weight, so
// arbitrarily large client populations collapse losslessly into one weight
// per node, and with integer weights the collapse is bitwise deterministic
// under any sharding.
type (
	Demand        = agg.Demand
	Client        = agg.Client
	ShardedDemand = agg.Sharded
)

// Demand constructors and the per-client reference evaluator.
var (
	NewDemand            = agg.NewDemand
	NewShardedDemand     = agg.NewSharded
	PerClientAvgMaxDelay = agg.PerClientAvgMaxDelay
)

// SSQPPLowerBound returns the LP (9)–(14) lower bound on the single-source
// optimum.
func SSQPPLowerBound(ins *Instance, v0 int) (float64, error) {
	return placement.SSQPPLowerBound(ins, v0)
}

// SolveGridQPP places a Grid system optimally per source and returns the
// best (Theorem 1.3); capacities are respected exactly.
func SolveGridQPP(ins *Instance) (*GridResult, float64, error) {
	return placement.SolveGridQPP(ins)
}

// SolveMajorityQPP is the Majority-system counterpart of SolveGridQPP.
func SolveMajorityQPP(ins *Instance, threshold int) (*MajorityResult, float64, error) {
	return placement.SolveMajorityQPP(ins, threshold)
}

// SolveTotalDelay runs the Theorem 1.4/5.1 algorithm for the total-delay
// objective: delay no worse than the capacity-respecting optimum, loads
// within 2·cap.
func SolveTotalDelay(ins *Instance) (*TotalDelayResult, error) {
	return placement.SolveTotalDelay(ins)
}

// RelayFactor measures the Lemma 3.1 detour factor of a placement (≤ 5).
func RelayFactor(ins *Instance, p Placement) (factor float64, v0 int) {
	return placement.RelayFactor(ins, p)
}

// SolveQPPAveragedStrategies solves the §6 per-client-strategy extension by
// averaging the strategies.
func SolveQPPAveragedStrategies(ins *Instance, perClient []Strategy, alpha float64) (*QPPResult, error) {
	return placement.SolveQPPAveragedStrategies(ins, perClient, alpha)
}

// Baseline placements.
var (
	RandomFeasiblePlacement = placement.RandomFeasiblePlacement
	GreedyClosestPlacement  = placement.GreedyClosestPlacement
	BestGreedyPlacement     = placement.BestGreedyPlacement
)

// --- simulation ----------------------------------------------------------------

// SimConfig configures a discrete-event quorum-access simulation.
type SimConfig = netsim.Config

// SimStats is the outcome of a simulation run.
type SimStats = netsim.Stats

// SimMode selects the access cost model of the simulator.
type SimMode = netsim.Mode

// Simulation access modes.
const (
	SimParallel   = netsim.Parallel   // max-delay accesses (Eq. 1)
	SimSequential = netsim.Sequential // total-delay accesses (§5)
)

// RunSim executes a discrete-event simulation of quorum accesses.
func RunSim(cfg SimConfig) (*SimStats, error) { return netsim.Run(cfg) }

// --- access tracing ------------------------------------------------------------

// SimRecorder captures per-access traces (one probe span per contacted
// quorum member) and virtual-time time-series samples from simulation runs
// into a bounded ring buffer; attach one via SimConfig.Recorder or install
// a process-wide default with SetDefaultSimRecorder.
type SimRecorder = netsim.Recorder

// SimAccessTrace is one traced quorum access.
type SimAccessTrace = netsim.AccessTrace

// SimProbeSpan is one quorum-member contact within a traced access.
type SimProbeSpan = netsim.ProbeSpan

// SimTimeSample is one time-series snapshot of simulator gauges.
type SimTimeSample = netsim.TSample

// NewSimRecorder returns a recorder holding up to capacity traces (≤0 for
// the default 4096), tracing every sampleEvery-th access (≤1 for all), and
// sampling gauges every tsInterval virtual-time units (≤0 disables).
func NewSimRecorder(capacity, sampleEvery int, tsInterval float64) *SimRecorder {
	return netsim.NewRecorder(capacity, sampleEvery, tsInterval)
}

// SetDefaultSimRecorder installs r as the recorder used by simulation runs
// that do not attach one explicitly (nil uninstalls), letting tracing reach
// simulations buried in call stacks such as the experiment suite.
func SetDefaultSimRecorder(r *SimRecorder) { netsim.SetDefaultRecorder(r) }

// Trace-sampling presets for -trace-sample flags: "fine" keeps enough
// per-access detail to diagnose a placement, "coarse" keeps Perfetto
// exports of multi-million-access parallel runs small.
const (
	SimTraceSampleFine   = netsim.TraceSampleFine
	SimTraceSampleCoarse = netsim.TraceSampleCoarse
)

// ParseSimTraceSample parses a -trace-sample flag value: a positive
// integer k (trace every k-th access) or a preset name, "fine" (1 in 16)
// or "coarse" (1 in 1024).
func ParseSimTraceSample(s string) (int, error) { return netsim.ParseTraceSample(s) }

// ChromeTrace accumulates events in the Chrome trace-event format that
// Perfetto (ui.perfetto.dev) and chrome://tracing load; recorder contents
// and telemetry snapshots can be appended into one file.
type ChromeTrace = obs.ChromeTrace

// --- availability & resilience -------------------------------------------------

// Quorum-system quality measures (element-level, Naor–Wool): exact and
// sampled failure probability, resilience, and the load lower bound.
var (
	FailureProbability         = quorum.FailureProbability
	EstimateFailureProbability = quorum.EstimateFailureProbability
	Resilience                 = quorum.Resilience
	MinQuorumSize              = quorum.MinQuorumSize
	LoadLowerBound             = quorum.LoadLowerBound
	RecursiveMajority          = quorum.RecursiveMajority
)

// --- local search & ablations ---------------------------------------------------

// LocalSearchConfig configures ImproveLocalSearch.
type LocalSearchConfig = placement.LocalSearchConfig

// LocalSearchObjective selects what a local search optimizes.
type LocalSearchObjective = placement.Objective

// Local-search objectives.
const (
	ObjectiveAvgMaxDelay    = placement.ObjectiveAvgMaxDelay
	ObjectiveAvgTotalDelay  = placement.ObjectiveAvgTotalDelay
	ObjectiveSourceMaxDelay = placement.ObjectiveSourceMaxDelay
)

// ImproveLocalSearch hill-climbs a placement with relocations and swaps,
// never worsening the objective and never exceeding MaxLoadFactor·cap.
func ImproveLocalSearch(ins *Instance, p Placement, cfg LocalSearchConfig) (Placement, float64, error) {
	return placement.ImproveLocalSearch(ins, p, cfg)
}

// SolveSSQPPArgmax is the no-load-guarantee ablation of SolveSSQPP (see the
// E12 experiment); it keeps the α/(α-1)·Z* delay bound only.
func SolveSSQPPArgmax(ins *Instance, v0 int, alpha float64) (*SSQPPResult, error) {
	return placement.SolveSSQPPArgmax(ins, v0, alpha)
}

// --- failure-injection simulation -----------------------------------------------

// FailureSimConfig configures a crash/retry simulation.
type FailureSimConfig = netsim.FailureConfig

// FailureSimStats is the outcome of a crash/retry simulation.
type FailureSimStats = netsim.FailureStats

// RunSimWithFailures simulates quorum accesses under random node crashes
// with client retries.
func RunSimWithFailures(cfg FailureSimConfig) (*FailureSimStats, error) {
	return netsim.RunWithFailures(cfg)
}

// --- windowed SLOs -----------------------------------------------------------------

// SimSLOTargets declares per-window service-level objectives for simulation
// runs; zero fields are unchecked. Enable accounting on a SimRecorder with
// its EnableSLO method and read windows back with SLOWindows / CheckSLO.
type SimSLOTargets = netsim.SLOTargets

// SimSLOWindow is one finalized rolling virtual-time window of a run:
// access-delay quantiles, load skew and failure burn rates.
type SimSLOWindow = netsim.SLOWindow

// SimSLOViolation is one SLO target breached by one window.
type SimSLOViolation = netsim.SLOViolation

// CheckSimSLO grades windows against targets, returning every breach.
func CheckSimSLO(windows []SimSLOWindow, t SimSLOTargets) []SimSLOViolation {
	return netsim.CheckSLO(windows, t)
}

// ParseSimSLOTargets parses a spec like "p99=4,p999=6,skew=2.5,abort=0.01".
func ParseSimSLOTargets(spec string) (SimSLOTargets, error) {
	return netsim.ParseSLOTargets(spec)
}

// FormatSimSLOWindows renders windows as an aligned table.
func FormatSimSLOWindows(windows []SimSLOWindow) string {
	return netsim.FormatSLOWindows(windows)
}

// --- workload heat & drift ---------------------------------------------------------

// HeatSketch accumulates a stream of quorum accesses into deterministic,
// mergeable workload sketches: per-client/per-node EWMA rates over virtual
// time, heavy-hitter summaries, and drift scores against the demand the
// placement was solved for. Attach one per run via SimConfig.Heat, or
// install a process-wide default with SetDefaultHeat.
type HeatSketch = heat.Sketch

// HeatOptions configures a HeatSketch (epoch length, EWMA half-life,
// optional space-saving heavy-hitter capacity).
type HeatOptions = heat.Options

// HeatTopEntry is one heavy hitter with its count and overestimate bound.
type HeatTopEntry = heat.TopEntry

// HeatDriftReport is the total-variation drift of a live demand estimate
// from a plan demand vector, with per-client contributions.
type HeatDriftReport = heat.DriftReport

// HeatAttribution is the plan-vs-actual delay gap decomposed into drift,
// queueing, failure and residual components.
type HeatAttribution = heat.Attribution

// NewHeatSketch returns an empty workload sketch.
func NewHeatSketch(o HeatOptions) *HeatSketch { return heat.New(o) }

// SetDefaultHeat installs (or with nil removes) the process-wide sketch
// that simulation runs feed when their config carries none.
func SetDefaultHeat(s *HeatSketch) { netsim.SetDefaultHeat(s) }

// HeatDrift compares a live demand estimate against a plan demand vector
// (nil plan means uniform); both are unnormalized non-negative weights.
func HeatDrift(live, plan []float64) (*HeatDriftReport, error) {
	return heat.Drift(live, plan)
}

// AttributeDelayGap decomposes measured−predicted delay into drift vs
// queueing vs failures vs residual.
func AttributeDelayGap(predictedPlan, predictedLive, measured, queueWait, failurePenalty float64) HeatAttribution {
	return heat.Attribute(predictedPlan, predictedLive, measured, queueWait, failurePenalty)
}

// PredictDelayUnderRates re-evaluates a placement's analytic delay
// objective under an alternative demand vector (the drift leg of the
// attribution).
func PredictDelayUnderRates(ins *Instance, pl Placement, sequential bool, rates []float64) (float64, error) {
	return heat.PredictUnderRates(ins, pl, sequential, rates)
}

// --- strategy re-optimization & migration -----------------------------------------

// OptimizeStrategyForPlacement re-optimizes the access strategy for a fixed
// placement, minimizing average max-delay subject to node capacities.
func OptimizeStrategyForPlacement(ins *Instance, p Placement) (Strategy, float64, error) {
	return placement.OptimizeStrategyForPlacement(ins, p)
}

// CoordinateDescent alternates placement and strategy optimization.
func CoordinateDescent(ins *Instance, alpha float64, rounds int) (Placement, Strategy, []float64, error) {
	return placement.CoordinateDescent(ins, alpha, rounds)
}

// MigrationPlan is the outcome of PlanMigration.
type MigrationPlan = migrate.Plan

// MigrationCost returns Σ_u load(u)·d(old(u), new(u)).
func MigrationCost(ins *Instance, oldP, newP Placement) (float64, error) {
	return migrate.Cost(ins, oldP, newP)
}

// PlanMigration finds a placement minimizing AvgΓ + λ·movement via the
// Theorem 5.1 GAP machinery (loads within 2·cap).
func PlanMigration(ins *Instance, oldP Placement, lambda float64) (*MigrationPlan, error) {
	return migrate.Solve(ins, oldP, lambda)
}

// MigrationParetoSweep traces the delay/movement frontier over λ values.
func MigrationParetoSweep(ins *Instance, oldP Placement, lambdas []float64) ([]*MigrationPlan, error) {
	return migrate.ParetoSweep(ins, oldP, lambdas)
}

// MigrationPlanner pre-builds the migration LP for a fixed element subset
// and retains the previous solve's simplex basis, so a repeated re-plan
// (new demand, λ, or capacities over the same structure) warm-starts
// instead of solving from scratch. The first solve is bitwise identical to
// PlanMigration.
type MigrationPlanner = migrate.Planner

// MigrationShardPlan is the outcome of one MigrationPlanner solve over its
// element subset.
type MigrationShardPlan = migrate.ShardPlan

// NewMigrationPlanner builds a warm-capable planner for the given element
// subset (nil for the full universe).
func NewMigrationPlanner(ins *Instance, elems []int) (*MigrationPlanner, error) {
	return migrate.NewPlanner(ins, elems)
}

// --- placement daemon ---------------------------------------------------------------

// PlacementDaemon is the long-lived placement service: it ingests access
// observations into a HeatSketch, watches recent drift against the demand
// the running placement was planned for, and re-plans one shard of the
// universe per tick through warm-started migration LPs. See cmd/quorumd.
type PlacementDaemon = daemon.Daemon

// DaemonConfig configures a PlacementDaemon.
type DaemonConfig = daemon.Config

// DaemonTickRecord is the deterministic log entry of one daemon tick.
type DaemonTickRecord = daemon.TickRecord

// DaemonMigration is one element move applied by a daemon tick.
type DaemonMigration = daemon.Migration

// DaemonStatus is the daemon's control-plane summary (GET /status).
type DaemonStatus = daemon.Status

// NewDaemon validates cfg and builds a placement daemon.
func NewDaemon(cfg DaemonConfig) (*PlacementDaemon, error) {
	return daemon.New(cfg)
}

// --- queueing simulation -----------------------------------------------------------

// QueueSimConfig configures the queueing simulator, which couples node load
// to access delay through FIFO service queues.
type QueueSimConfig = netsim.QueueConfig

// QueueSimStats is the outcome of a queueing simulation.
type QueueSimStats = netsim.QueueStats

// RunSimWithQueueing simulates quorum accesses with per-node service queues
// (open-loop Poisson arrivals, exponential service).
func RunSimWithQueueing(cfg QueueSimConfig) (*QueueSimStats, error) {
	return netsim.RunQueueing(cfg)
}

// SolveQPPParallel is SolveQPP with per-source solves spread over a worker
// pool; results are identical to the sequential solver.
func SolveQPPParallel(ins *Instance, alpha float64, workers int) (*QPPResult, error) {
	return placement.SolveQPPParallel(ins, alpha, workers)
}

// --- Byzantine and read/write quorum systems ----------------------------------------

// RWSystem is a read/write (bicoterie) quorum system; see GiffordVoting.
type RWSystem = quorum.RWSystem

// Byzantine masking and read/write constructions.
var (
	MaskingMajority = quorum.MaskingMajority
	MaskingGrid     = quorum.MaskingGrid
	GiffordVoting   = quorum.GiffordVoting
)

// NewRWSystem validates and builds a read/write quorum system.
func NewRWSystem(name string, universe int, reads, writes [][]int) (*RWSystem, error) {
	return quorum.NewRWSystem(name, universe, reads, writes)
}

// --- coterie theory ------------------------------------------------------------------

// Coterie-theoretic tools (Garcia-Molina–Barbara / Ibaraki–Kameda): minimal
// quorums, minimal transversals, duals, and non-domination.
var (
	MinimalQuorums = quorum.MinimalQuorums
	Transversals   = quorum.Transversals
	DualSystem     = quorum.Dual
	IsNonDominated = quorum.IsNonDominated
)

// --- instance serialization -----------------------------------------------------------

// InstanceSpec is the JSON form of a placement instance (network, caps,
// quorum system, strategy, optional rates).
type InstanceSpec = placement.InstanceSpec

// Spec extracts the serializable form of an instance built on g.
func Spec(name string, g *Graph, ins *Instance) (*InstanceSpec, error) {
	return placement.Spec(name, g, ins)
}

// Serialization of instance specs as indented JSON.
var (
	WriteSpec = placement.WriteSpec
	ReadSpec  = placement.ReadSpec
)

// --- probabilistic quorum systems ------------------------------------------------------

// Probabilistic (ε-intersecting) quorum systems, after Malkhi–Reiter–Wool.
var (
	ProbabilisticQuorums    = quorum.ProbabilisticQuorums
	IntersectionFailureRate = quorum.IntersectionFailureRate
	TheoreticalMissBound    = quorum.TheoreticalMissBound
	ProbabilisticAsSystem   = quorum.AsSystem
)

// OptimizePerClientStrategies computes per-client access strategies (the §6
// extension) minimizing the average max-delay of a fixed placement subject
// to the averaged-strategy load model.
func OptimizePerClientStrategies(ins *Instance, p Placement) ([]Strategy, float64, error) {
	return placement.OptimizePerClientStrategies(ins, p)
}

// Scheduling heuristics exported for the hardness-reduction tooling.
var (
	SchedSmithList = sched.SmithList
)

// AuditReport is the one-call placement health report (see Instance.Audit).
type AuditReport = placement.AuditReport

// --- configuration planning --------------------------------------------------------

// PlannerRequirements are the operator constraints for Recommend.
type PlannerRequirements = recommend.Requirements

// PlannerRecommendation is one evaluated configuration.
type PlannerRecommendation = recommend.Recommendation

// Recommend evaluates the built-in quorum-system portfolio on a network and
// returns configurations ranked by delay, feasible first.
func Recommend(m *Metric, caps []float64, req PlannerRequirements) ([]PlannerRecommendation, error) {
	return recommend.Recommend(m, caps, req)
}

// --- observability -------------------------------------------------------------

// TelemetryCollector records spans, counters, gauges and histograms emitted
// by the solver pipeline while enabled. Telemetry is off by default and
// costs roughly a nanosecond per instrumentation site when disabled.
type TelemetryCollector = obs.Collector

// TelemetrySnapshot is an immutable copy of a collector's recorded data.
type TelemetrySnapshot = obs.Snapshot

// TelemetrySpanRecord is one completed span in a snapshot.
type TelemetrySpanRecord = obs.SpanRecord

// Telemetry returns the currently active collector, or nil when telemetry
// is disabled.
func Telemetry() *TelemetryCollector { return obs.Active() }

// EnableTelemetry switches telemetry on with a fresh in-memory collector
// and returns it. Solver calls made while enabled record spans (LP phases,
// flow runs, rounding, simulation) and counters; read them with Snapshot.
func EnableTelemetry() *TelemetryCollector { return obs.Enable(nil) }

// EnableTrace switches telemetry on with a collector that additionally
// streams every completed span to w as JSON Lines. Counters, gauges and
// histograms are not streamed; fetch them via Snapshot and WriteJSONL.
func EnableTrace(w io.Writer) *TelemetryCollector {
	c := obs.NewCollector()
	c.AddSink(obs.NewJSONLWriter(w))
	return obs.Enable(c)
}

// DisableTelemetry switches telemetry off and returns the collector that
// was active, if any; its recorded data stays readable via Snapshot.
func DisableTelemetry() *TelemetryCollector { return obs.Disable() }

// Snapshot captures the active collector's recorded telemetry, or returns
// nil when telemetry is disabled.
func Snapshot() *TelemetrySnapshot {
	c := obs.Active()
	if c == nil {
		return nil
	}
	return c.Snapshot()
}
