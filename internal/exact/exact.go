// Package exact provides exponential-time exact solvers for the quorum
// placement problems, used as ground truth when measuring the approximation
// ratios of the polynomial-time algorithms on small instances.
//
// Both solvers branch over element→node assignments with capacity pruning
// and an admissible lower bound: the delay objectives are monotone in the
// partial assignment (adding an element can only raise a quorum's max
// distance), so the current partial objective prunes safely.
package exact

import (
	"fmt"
	"math"

	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
)

// Limits protecting against accidentally launching an infeasible search.
const (
	maxUniverse = 12
	maxNodes    = 16
)

func checkSize(ins *placement.Instance) error {
	if u := ins.Sys.Universe(); u > maxUniverse {
		return fmt.Errorf("exact: universe %d exceeds limit %d", u, maxUniverse)
	}
	if n := ins.M.N(); n > maxNodes {
		return fmt.Errorf("exact: %d nodes exceed limit %d", n, maxNodes)
	}
	return nil
}

// SolveSSQPP finds a placement minimizing Δ_f(v0) subject to
// load_f(v) ≤ cap(v), by branch and bound. It returns an error if the
// instance is too large or no capacity-respecting placement exists.
func SolveSSQPP(ins *placement.Instance, v0 int) (placement.Placement, float64, error) {
	if err := checkSize(ins); err != nil {
		return placement.Placement{}, 0, err
	}
	sp := obs.Start("exact.ssqpp")
	defer sp.End()
	row := ins.M.Row(v0)
	obj := func(f []int) float64 {
		p := placement.NewPlacement(f)
		return ins.MaxDelayFrom(v0, p)
	}
	// Partial lower bound: expected max over only the assigned elements.
	lower := func(f []int, assigned int) float64 {
		sum := 0.0
		for qi := 0; qi < ins.Sys.NumQuorums(); qi++ {
			pq := ins.Strat.P(qi)
			if pq == 0 {
				continue
			}
			max := 0.0
			for _, u := range ins.Sys.Quorum(qi) {
				if u < assigned {
					if d := row[f[u]]; d > max {
						max = d
					}
				}
			}
			sum += pq * max
		}
		return sum
	}
	f, val, err := branchAndBound(ins, obj, lower)
	if err != nil {
		return placement.Placement{}, 0, err
	}
	return placement.NewPlacement(f), val, nil
}

// SolveQPP finds a placement minimizing Avg_v Δ_f(v) subject to
// load_f(v) ≤ cap(v), by branch and bound.
func SolveQPP(ins *placement.Instance) (placement.Placement, float64, error) {
	if err := checkSize(ins); err != nil {
		return placement.Placement{}, 0, err
	}
	sp := obs.Start("exact.qpp")
	defer sp.End()
	obj := func(f []int) float64 {
		return ins.AvgMaxDelay(placement.NewPlacement(f))
	}
	lower := func(f []int, assigned int) float64 {
		// Average over clients of the partial expected max.
		n := ins.M.N()
		sum := 0.0
		for v := 0; v < n; v++ {
			row := ins.M.Row(v)
			dv := 0.0
			for qi := 0; qi < ins.Sys.NumQuorums(); qi++ {
				pq := ins.Strat.P(qi)
				if pq == 0 {
					continue
				}
				max := 0.0
				for _, u := range ins.Sys.Quorum(qi) {
					if u < assigned {
						if d := row[f[u]]; d > max {
							max = d
						}
					}
				}
				dv += pq * max
			}
			sum += dv
		}
		return sum / float64(n)
	}
	f, val, err := branchAndBound(ins, obj, lower)
	if err != nil {
		return placement.Placement{}, 0, err
	}
	return placement.NewPlacement(f), val, nil
}

// SolveTotalDelay finds a placement minimizing Avg_v Γ_f(v) subject to
// capacities. Γ decomposes per element, so the partial objective is an
// exact prefix sum and pruning is tight.
func SolveTotalDelay(ins *placement.Instance) (placement.Placement, float64, error) {
	if err := checkSize(ins); err != nil {
		return placement.Placement{}, 0, err
	}
	sp := obs.Start("exact.total_delay")
	defer sp.End()
	obj := func(f []int) float64 {
		return ins.AvgTotalDelay(placement.NewPlacement(f))
	}
	n := ins.M.N()
	avgDist := make([]float64, n)
	for v := 0; v < n; v++ {
		sum := 0.0
		for v2 := 0; v2 < n; v2++ {
			sum += ins.M.D(v2, v)
		}
		avgDist[v] = sum / float64(n)
	}
	lower := func(f []int, assigned int) float64 {
		sum := 0.0
		for u := 0; u < assigned; u++ {
			sum += ins.Load(u) * avgDist[f[u]]
		}
		return sum
	}
	if ins.Rates != nil {
		return placement.Placement{}, 0, fmt.Errorf("exact: total-delay solver supports uniform rates only")
	}
	f, val, err := branchAndBound(ins, obj, lower)
	if err != nil {
		return placement.Placement{}, 0, err
	}
	return placement.NewPlacement(f), val, nil
}

// branchAndBound assigns elements 0..|U|-1 to nodes depth-first, pruning on
// capacity and on the admissible partial bound.
func branchAndBound(
	ins *placement.Instance,
	obj func(f []int) float64,
	lower func(f []int, assigned int) float64,
) ([]int, float64, error) {
	nU := ins.Sys.Universe()
	n := ins.M.N()
	f := make([]int, nU)
	best := math.Inf(1)
	var bestF []int
	remaining := append([]float64(nil), ins.Cap...)
	const tol = 1e-9
	var nodes int64
	var rec func(u int)
	rec = func(u int) {
		nodes++
		if u == nU {
			if val := obj(f); val < best {
				best = val
				bestF = append([]int(nil), f...)
			}
			return
		}
		load := ins.Load(u)
		for v := 0; v < n; v++ {
			if remaining[v]+tol < load {
				continue
			}
			f[u] = v
			if lower(f, u+1) < best-tol {
				remaining[v] -= load
				rec(u + 1)
				remaining[v] += load
			}
		}
	}
	rec(0)
	obs.Count("exact.bb_nodes", nodes)
	if bestF == nil {
		return nil, 0, fmt.Errorf("exact: no capacity-respecting placement exists")
	}
	return bestF, best, nil
}
