package exact

import (
	"math"
	"math/rand"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func buildInstance(t *testing.T, rng *rand.Rand) *placement.Instance {
	t.Helper()
	sys := quorum.Grid(2)
	if rng.Intn(2) == 0 {
		sys = quorum.Majority(4, 3)
	}
	st := quorum.Uniform(sys.NumQuorums())
	n := 4 + rng.Intn(3)
	g := graph.ErdosRenyiConnected(n, 0.5, 1, 3, rng)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, n)
	tmp, err := placement.NewInstance(m, make([]float64, n), sys, st)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < sys.Universe(); u++ {
		caps[rng.Intn(n)] += tmp.Load(u)
	}
	ins, err := placement.NewInstance(m, caps, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

// naiveSSQPP enumerates every capacity-feasible placement without pruning.
func naiveSSQPP(ins *placement.Instance, v0 int) float64 {
	nU := ins.Sys.Universe()
	n := ins.M.N()
	best := math.Inf(1)
	f := make([]int, nU)
	var rec func(u int)
	rec = func(u int) {
		if u == nU {
			p := placement.NewPlacement(f)
			if ins.Feasible(p) {
				if d := ins.MaxDelayFrom(v0, p); d < best {
					best = d
				}
			}
			return
		}
		for v := 0; v < n; v++ {
			f[u] = v
			rec(u + 1)
		}
	}
	rec(0)
	return best
}

func naiveQPP(ins *placement.Instance) float64 {
	nU := ins.Sys.Universe()
	n := ins.M.N()
	best := math.Inf(1)
	f := make([]int, nU)
	var rec func(u int)
	rec = func(u int) {
		if u == nU {
			p := placement.NewPlacement(f)
			if ins.Feasible(p) {
				if d := ins.AvgMaxDelay(p); d < best {
					best = d
				}
			}
			return
		}
		for v := 0; v < n; v++ {
			f[u] = v
			rec(u + 1)
		}
	}
	rec(0)
	return best
}

func TestSolveSSQPPMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		ins := buildInstance(t, rng)
		v0 := rng.Intn(ins.M.N())
		p, val, err := SolveSSQPP(ins, v0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !ins.Feasible(p) {
			t.Fatalf("trial %d: returned placement infeasible", trial)
		}
		if d := ins.MaxDelayFrom(v0, p); math.Abs(d-val) > 1e-9 {
			t.Fatalf("trial %d: reported %v but placement has %v", trial, val, d)
		}
		want := naiveSSQPP(ins, v0)
		if math.Abs(val-want) > 1e-9 {
			t.Fatalf("trial %d: B&B %v != naive %v", trial, val, want)
		}
	}
}

func TestSolveQPPMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 5; trial++ {
		ins := buildInstance(t, rng)
		p, val, err := SolveQPP(ins)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !ins.Feasible(p) {
			t.Fatalf("trial %d: infeasible placement", trial)
		}
		want := naiveQPP(ins)
		if math.Abs(val-want) > 1e-9 {
			t.Fatalf("trial %d: B&B %v != naive %v", trial, val, want)
		}
	}
}

func TestSolveTotalDelayDecomposes(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 5; trial++ {
		ins := buildInstance(t, rng)
		p, val, err := SolveTotalDelay(ins)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := ins.AvgTotalDelay(p); math.Abs(d-val) > 1e-9 {
			t.Fatalf("trial %d: reported %v, placement evaluates to %v", trial, val, d)
		}
		// For total delay the optimum assigns each element greedily by
		// load·avgdist, subject to capacities — verify against naive.
		nU := ins.Sys.Universe()
		n := ins.M.N()
		best := math.Inf(1)
		f := make([]int, nU)
		var rec func(u int)
		rec = func(u int) {
			if u == nU {
				pp := placement.NewPlacement(f)
				if ins.Feasible(pp) {
					if d := ins.AvgTotalDelay(pp); d < best {
						best = d
					}
				}
				return
			}
			for v := 0; v < n; v++ {
				f[u] = v
				rec(u + 1)
			}
		}
		rec(0)
		if math.Abs(val-best) > 1e-9 {
			t.Fatalf("trial %d: B&B %v != naive %v", trial, val, best)
		}
	}
}

func TestInfeasibleInstance(t *testing.T) {
	g := graph.Path(3)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Grid(2)
	ins, err := placement.NewInstance(m, []float64{0.1, 0.1, 0.1}, sys, quorum.Uniform(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveSSQPP(ins, 0); err == nil {
		t.Fatal("expected infeasibility error")
	}
	if _, _, err := SolveQPP(ins); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestSizeLimits(t *testing.T) {
	g := graph.Path(20)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Grid(2)
	caps := make([]float64, 20)
	for i := range caps {
		caps[i] = 1
	}
	ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveSSQPP(ins, 0); err == nil {
		t.Fatal("expected size-limit error for 20 nodes")
	}
	g2 := graph.Path(5)
	m2, _ := graph.NewMetricFromGraph(g2)
	sys2 := quorum.Grid(4) // universe 16 > 12
	caps2 := []float64{10, 10, 10, 10, 10}
	ins2, err := placement.NewInstance(m2, caps2, sys2, quorum.Uniform(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveSSQPP(ins2, 0); err == nil {
		t.Fatal("expected size-limit error for universe 16")
	}
}
