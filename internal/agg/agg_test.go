package agg_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"quorumplace/internal/agg"
	"quorumplace/internal/check"
	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func TestDemandBasics(t *testing.T) {
	d := agg.NewDemand(4)
	if err := d.AddClients([]agg.Client{{Node: 0, Weight: 2}, {Node: 3, Weight: 1.5}, {Node: 0, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if d.Clients() != 3 || d.Nodes() != 4 {
		t.Fatalf("clients %d nodes %d", d.Clients(), d.Nodes())
	}
	if got := d.Total(); got != 4.5 {
		t.Fatalf("total %v", got)
	}
	r := d.Rates()
	if want := []float64{3, 0, 0, 1.5}; !reflect.DeepEqual(r, want) {
		t.Fatalf("rates %v, want %v", r, want)
	}
	r[0] = 99
	if d.Rates()[0] != 3 {
		t.Fatal("Rates must return a copy")
	}
	if err := d.Add(4, 1); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := d.Add(1, math.Inf(1)); err == nil {
		t.Fatal("infinite weight accepted")
	}
	if err := d.Add(1, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := d.Merge(agg.NewDemand(5)); err == nil {
		t.Fatal("mismatched merge accepted")
	}
}

// syntheticClients draws a deterministic population with integer weights —
// the shape under which aggregation promises bitwise determinism.
func syntheticClients(rng *rand.Rand, n, k int) []agg.Client {
	cs := make([]agg.Client, k)
	for i := range cs {
		cs[i] = agg.Client{Node: rng.Intn(n), Weight: float64(1 + rng.Intn(9))}
	}
	return cs
}

// Integer-weight ingestion must produce the bitwise-identical rate vector
// under any ordering or sharding, and therefore a bitwise-identical solve.
func TestShardingBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, k = 300, 200_000
	clients := syntheticClients(rng, n, k)

	seq := agg.NewDemand(n)
	if err := seq.AddClients(clients); err != nil {
		t.Fatal(err)
	}

	sh := agg.NewSharded(n, 7)
	for i, c := range clients {
		if err := sh.Shard(i%7).Add(c.Node, c.Weight); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := sh.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Clients() != int64(k) {
		t.Fatalf("merged %d clients, ingested %d", merged.Clients(), k)
	}

	perm := agg.NewDemand(n)
	for _, i := range rng.Perm(k) {
		if err := perm.Add(clients[i].Node, clients[i].Weight); err != nil {
			t.Fatal(err)
		}
	}

	a, b, c := seq.Rates(), merged.Rates(), perm.Rates()
	for v := 0; v < n; v++ {
		if a[v] != b[v] || a[v] != c[v] {
			t.Fatalf("node %d: sequential %v, sharded %v, permuted %v", v, a[v], b[v], c[v])
		}
	}

	// Identical rates must yield an identical solve through the full
	// pipeline (the instance is gate-eligible, so this exercises the exact
	// DP fast path under aggregated demand).
	g := graph.RandomTree(n, 0.3, 1.5, rng)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Majority(5, 3)
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.8
	}
	mk := func(rates []float64) *placement.QPPResult {
		ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(sys.NumQuorums()))
		if err != nil {
			t.Fatal(err)
		}
		if err := ins.SetRates(rates); err != nil {
			t.Fatal(err)
		}
		res, err := placement.SolveQPP(ins, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if r1, r2 := mk(a), mk(b); !reflect.DeepEqual(r1, r2) {
		t.Fatalf("resharded ingestion changed the solve:\n  %+v\n  %+v", r1, r2)
	}
}

func TestClasses(t *testing.T) {
	d := agg.NewDemand(6)
	for v, w := range []float64{2, 0, 3, 1, 0, 4} {
		if err := d.Add(v, w); err != nil {
			t.Fatal(err)
		}
	}
	dist := []float64{0, 1, 2, 2, 3, 1}
	cls, err := d.Classes(dist)
	if err != nil {
		t.Fatal(err)
	}
	want := []agg.Class{{Dist: 0, Weight: 2, Nodes: 1}, {Dist: 1, Weight: 4, Nodes: 1}, {Dist: 2, Weight: 4, Nodes: 2}}
	if !reflect.DeepEqual(cls, want) {
		t.Fatalf("classes %+v, want %+v", cls, want)
	}
	// Class-space evaluation of any per-distance cost matches node space.
	g := func(x float64) float64 { return 2*x + 1 }
	nodeSum, rates := 0.0, d.Rates()
	for v := range rates {
		nodeSum += rates[v] * g(dist[v])
	}
	classSum := 0.0
	for _, c := range cls {
		classSum += c.Weight * g(c.Dist)
	}
	if math.Abs(nodeSum-classSum) > 1e-12*nodeSum {
		t.Fatalf("node space %v, class space %v", nodeSum, classSum)
	}
	if _, err := d.Classes(dist[:3]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// The aggregation equivalence property on the seeded instance sweep: for
// every generated quorum construction and topology, synthesizing a raw
// client population, aggregating it into rates, and evaluating the planted
// placement must reproduce the naive per-client objective. Integer weights
// keep both sides within one rounding of each other (1e-12 relative).
func TestAggregationMatchesPerClientSweep(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		ci := check.Gen(seed)
		ins := ci.Instance
		n := ins.M.N()
		rng := rand.New(rand.NewSource(seed * 31))
		clients := syntheticClients(rng, n, 200+rng.Intn(800))

		d := agg.NewDemand(n)
		if err := d.AddClients(clients); err != nil {
			t.Fatal(err)
		}
		if err := d.ApplyTo(ins); err != nil {
			t.Fatalf("%s: %v", ci.Desc, err)
		}
		got := ins.AvgMaxDelay(ci.Planted)
		want, err := agg.PerClientAvgMaxDelay(ins, clients, ci.Planted)
		if err != nil {
			t.Fatalf("%s: %v", ci.Desc, err)
		}
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("%s: aggregated objective %v, per-client objective %v", ci.Desc, got, want)
		}
	}
}
