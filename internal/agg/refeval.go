package agg

import (
	"fmt"

	"quorumplace/internal/placement"
)

// ApplyTo installs the demand as the instance's client rates. It is the
// hand-off point of the aggregation pipeline: after this, every solver and
// evaluator weighs node v by the accumulated client weight at v.
func (d *Demand) ApplyTo(ins *placement.Instance) error {
	if ins.M.N() != len(d.w) {
		return fmt.Errorf("agg: demand over %d nodes applied to %d-node instance", len(d.w), ins.M.N())
	}
	return ins.SetRates(d.w)
}

// PerClientAvgMaxDelay evaluates the rate-weighted QPP objective the slow
// way, iterating raw clients one by one:
//
//	Σ_i weight_i · Δ_f(node_i) / Σ_i weight_i
//
// It exists as the independent reference for the aggregation equivalence
// property: aggregating the same clients into a Demand, applying it as
// rates, and calling Instance.AvgMaxDelay must agree with this sum (exactly
// up to summation rounding; linearity of the objective in client weight is
// what makes aggregation lossless). Never use it at scale — it is
// O(clients·Q·|Q|) by construction.
func PerClientAvgMaxDelay(ins *placement.Instance, clients []Client, pl placement.Placement) (float64, error) {
	n := ins.M.N()
	delay := make([]float64, n)
	have := make([]bool, n)
	sum, wsum := 0.0, 0.0
	for i, c := range clients {
		if c.Node < 0 || c.Node >= n {
			return 0, fmt.Errorf("agg: client %d at node %d out of range [0,%d)", i, c.Node, n)
		}
		if !have[c.Node] {
			delay[c.Node] = ins.MaxDelayFrom(c.Node, pl)
			have[c.Node] = true
		}
		sum += c.Weight * delay[c.Node]
		wsum += c.Weight
	}
	if wsum <= 0 {
		return 0, fmt.Errorf("agg: client weights sum to %v", wsum)
	}
	return sum / wsum, nil
}
