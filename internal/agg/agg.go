// Package agg collapses large client populations into the per-node demand
// vectors the solvers consume. The QPP objective (Problem 2.1 with the §6
// rate extension) is linear in client weight: two clients at the same node
// contribute exactly like one client carrying their combined weight, so a
// population of millions reduces to one weight per network node — the Rates
// vector of placement.Instance — with no loss of information. Aggregation
// is therefore the scaling lever for the client dimension: solver cost
// depends on the n-node network, never on the raw client count.
//
// Determinism contract: a Demand accumulates per-node partial sums, and a
// node's sum is the only float state a client touches. When client weights
// are integers (the common "k clients at node v" shape), every per-node sum
// is exact until 2^53, so any sharding, ordering, or merge plan yields the
// bitwise-identical Rates vector — and hence a bitwise-identical solve.
// Fractional weights are subject to ordinary summation rounding; the tests
// pin them to 1e-12 relative agreement across orderings.
package agg

import (
	"fmt"
	"math"
	"sort"

	"quorumplace/internal/obs"
)

// Client is one demand source: Weight (access rate, relative) attached to a
// network node. Weight must be non-negative and finite.
type Client struct {
	Node   int
	Weight float64
}

// Demand is an accumulating per-node weight vector for an n-node network.
// The zero Demand is not usable; construct with NewDemand.
type Demand struct {
	w       []float64
	clients int64
}

// NewDemand returns an empty demand vector for an n-node network.
func NewDemand(n int) *Demand {
	if n <= 0 {
		panic(fmt.Sprintf("agg: demand over %d nodes", n))
	}
	return &Demand{w: make([]float64, n)}
}

// Nodes returns the network size the demand is defined over.
func (d *Demand) Nodes() int { return len(d.w) }

// Clients returns the number of clients accumulated so far (not their
// weight — see Total).
func (d *Demand) Clients() int64 { return d.clients }

// Total returns the accumulated weight across all nodes.
func (d *Demand) Total() float64 {
	s := 0.0
	for _, x := range d.w {
		s += x
	}
	return s
}

// Add accumulates one client of the given weight at node v.
func (d *Demand) Add(v int, weight float64) error {
	if v < 0 || v >= len(d.w) {
		return fmt.Errorf("agg: client node %d out of range [0,%d)", v, len(d.w))
	}
	if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("agg: client weight %v at node %d", weight, v)
	}
	d.w[v] += weight
	d.clients++
	return nil
}

// AddClients accumulates a batch of clients. On error the demand is left
// with every client before the offending one applied. This is the
// million-client ingestion hot path: the loop touches only the per-node sum
// table, so it runs at memory speed, a few nanoseconds per client.
func (d *Demand) AddClients(cs []Client) error {
	w := d.w
	n := len(w)
	for i, c := range cs {
		if uint(c.Node) >= uint(n) || c.Weight < 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) {
			d.clients += int64(i)
			if uint(c.Node) >= uint(n) {
				return fmt.Errorf("agg: client node %d out of range [0,%d)", c.Node, n)
			}
			return fmt.Errorf("agg: client weight %v at node %d", c.Weight, c.Node)
		}
		w[c.Node] += c.Weight
	}
	d.clients += int64(len(cs))
	obs.Count("agg.clients", int64(len(cs)))
	return nil
}

// Merge folds another demand over the same node set into d. Per-node sums
// add componentwise, so merging shard partials commutes with direct
// accumulation whenever the underlying additions are exact (integer
// weights).
func (d *Demand) Merge(o *Demand) error {
	if len(o.w) != len(d.w) {
		return fmt.Errorf("agg: merging demand over %d nodes into %d nodes", len(o.w), len(d.w))
	}
	for v, x := range o.w {
		d.w[v] += x
	}
	d.clients += o.clients
	return nil
}

// Rates returns a copy of the per-node weight vector, ready for
// placement.Instance.SetRates. At least one client with positive weight
// must have been accumulated (SetRates rejects all-zero rates).
func (d *Demand) Rates() []float64 { return append([]float64(nil), d.w...) }

// Sharded accumulates demand across independent shards so huge client
// streams can be ingested concurrently (one shard per worker, no locking)
// and then merged. Merge order is fixed (shard 0, 1, …), so the combined
// vector is deterministic for a fixed client-to-shard assignment — and,
// with integer weights, identical for every assignment.
type Sharded struct {
	shards []*Demand
}

// NewSharded returns k independent shards over an n-node network.
func NewSharded(n, k int) *Sharded {
	if k <= 0 {
		panic(fmt.Sprintf("agg: %d shards", k))
	}
	s := &Sharded{shards: make([]*Demand, k)}
	for i := range s.shards {
		s.shards[i] = NewDemand(n)
	}
	return s
}

// Shard returns shard i for exclusive use by one ingesting worker.
func (s *Sharded) Shard(i int) *Demand { return s.shards[i] }

// Merge combines all shards into one fresh Demand, in shard order.
func (s *Sharded) Merge() (*Demand, error) {
	out := NewDemand(s.shards[0].Nodes())
	for _, sh := range s.shards {
		if err := out.Merge(sh); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Class is one distance class of a demand vector relative to some source:
// the total weight and node count sitting at exactly distance Dist.
type Class struct {
	Dist   float64
	Weight float64
	Nodes  int
}

// Classes collapses the demand into distance classes along dist (typically
// a metric row or tree distance vector): nodes are grouped by exact
// distance value, classes sorted by increasing distance, zero-weight nodes
// dropped. Because the grouping is by value, Σ_c Weight_c·g(Dist_c) equals
// the per-node Σ_v w_v·g(dist_v) for any per-distance cost g up to
// summation rounding — the class-space form the SSQPP LP consumes.
func (d *Demand) Classes(dist []float64) ([]Class, error) {
	if len(dist) != len(d.w) {
		return nil, fmt.Errorf("agg: %d distances for %d nodes", len(dist), len(d.w))
	}
	byDist := make(map[float64]int, 16)
	var out []Class
	for v, w := range d.w {
		if w == 0 {
			continue
		}
		i, ok := byDist[dist[v]]
		if !ok {
			i = len(out)
			byDist[dist[v]] = i
			out = append(out, Class{Dist: dist[v]})
		}
		out[i].Weight += w
		out[i].Nodes++
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	obs.Gauge("agg.classes", float64(len(out)))
	return out, nil
}
