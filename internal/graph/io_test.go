package graph

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := ErdosRenyiConnected(4+rng.Intn(10), 0.3, 0.5, 5, rng)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ParseEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
		// Metrics must agree exactly.
		m1, err := NewMetricFromGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := NewMetricFromGraph(g2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if m1.D(i, j) != m2.D(i, j) {
					t.Fatalf("round trip changed d(%d,%d): %v -> %v", i, j, m1.D(i, j), m2.D(i, j))
				}
			}
		}
	}
}

func TestParseEdgeListComments(t *testing.T) {
	in := `# a WAN
nodes 3

0 1 2.5
# bridge
1 2 1
`
	g, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed n=%d m=%d, want 3, 2", g.N(), g.M())
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no header", "0 1 2\n"},
		{"bad count", "nodes x\n"},
		{"negative count", "nodes -1\n"},
		{"short edge", "nodes 2\n0 1\n"},
		{"bad vertex", "nodes 2\na 1 1\n"},
		{"bad vertex 2", "nodes 2\n0 b 1\n"},
		{"bad length", "nodes 2\n0 1 x\n"},
		{"edge out of range", "nodes 2\n0 5 1\n"},
		{"self loop", "nodes 2\n1 1 1\n"},
		{"zero length", "nodes 2\n0 1 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Fatal("invalid input accepted")
			}
		})
	}
}

func TestHypercube(t *testing.T) {
	for d := 0; d <= 5; d++ {
		g := Hypercube(d)
		n := 1 << uint(d)
		if g.N() != n {
			t.Fatalf("d=%d: n=%d, want %d", d, g.N(), n)
		}
		if g.M() != d*n/2 {
			t.Fatalf("d=%d: m=%d, want %d", d, g.M(), d*n/2)
		}
		if n > 1 && !g.Connected() {
			t.Fatalf("d=%d: disconnected", d)
		}
	}
	// Distance = Hamming distance.
	g := Hypercube(4)
	m, err := NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 16; u++ {
		for v := 0; v < 16; v++ {
			h := 0
			for x := u ^ v; x != 0; x &= x - 1 {
				h++
			}
			if m.D(u, v) != float64(h) {
				t.Fatalf("d(%d,%d) = %v, want hamming %d", u, v, m.D(u, v), h)
			}
		}
	}
}

func TestRingOfCliques(t *testing.T) {
	g := RingOfCliques(3, 4, 10)
	if g.N() != 12 {
		t.Fatalf("n = %d, want 12", g.N())
	}
	// 3 cliques of C(4,2)=6 edges + 3 bridges.
	if g.M() != 3*6+3 {
		t.Fatalf("m = %d, want 21", g.M())
	}
	if !g.Connected() {
		t.Fatal("disconnected")
	}
	m, err := NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Within a clique: distance 1; across adjacent cliques ≥ bridge.
	if m.D(0, 1) != 1 {
		t.Fatalf("intra-clique distance %v, want 1", m.D(0, 1))
	}
	if m.D(1, 5) < 10 {
		t.Fatalf("inter-clique distance %v, want ≥ 10", m.D(1, 5))
	}
}

// TestEdgeListRoundTripProperty: quick-checked round trip on random trees.
func TestEdgeListRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomTree(2+rng.Intn(15), 0.5, 9, rng)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ParseEdgeList(&buf)
		if err != nil {
			return false
		}
		return g2.N() == g.N() && g2.M() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBundledWANDataset: the repository's data/wan12.edges file parses,
// is connected, and has a plausible latency diameter.
func TestBundledWANDataset(t *testing.T) {
	f, err := os.Open("../../data/wan12.edges")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ParseEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("n = %d, want 12", g.N())
	}
	if !g.Connected() {
		t.Fatal("bundled WAN is disconnected")
	}
	m, err := NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Diameter(); d < 50 || d > 300 {
		t.Fatalf("diameter %v ms outside plausible WAN range", d)
	}
}
