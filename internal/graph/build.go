package graph

import (
	"errors"
	"fmt"
)

// DefaultDenseLimit is the largest vertex count for which BuildMetric will
// materialize the dense n² distance matrix (128 MiB of float64 at the
// default).
const DefaultDenseLimit = 4096

// ErrMetricTooLarge is returned (wrapped) by BuildMetric when the graph
// exceeds the dense limit: beyond it a caller must opt into an explicit
// scalable representation instead of silently paying n² memory.
var ErrMetricTooLarge = errors.New("graph: dense metric would exceed the size limit")

// BuildOption configures BuildMetric.
type BuildOption func(*buildConfig)

type buildConfig struct{ denseLimit int }

// WithDenseLimit overrides the vertex-count ceiling for the dense matrix.
func WithDenseLimit(n int) BuildOption {
	return func(c *buildConfig) { c.denseLimit = n }
}

// BuildMetric is the auto-selecting metric constructor: up to the dense
// limit it computes the exact all-pairs metric with the parallel build;
// beyond it, it refuses with ErrMetricTooLarge rather than allocating n²
// floats behind the caller's back, directing them to the scalable paths —
// NewLandmarkMetric for approximate distance queries, or the treedp tree
// fast path, which needs no materialized metric at all.
func BuildMetric(g *Graph, opts ...BuildOption) (*Metric, error) {
	cfg := buildConfig{denseLimit: DefaultDenseLimit}
	for _, o := range opts {
		o(&cfg)
	}
	if g.N() > cfg.denseLimit {
		return nil, fmt.Errorf("%w: %d vertices > limit %d (use NewLandmarkMetric, or SolveQPPTree on trees)",
			ErrMetricTooLarge, g.N(), cfg.denseLimit)
	}
	return NewMetricFromGraph(g)
}
