package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// The parallel all-pairs build must reproduce the sequential per-source
// Dijkstra output bit for bit: rows are independent runs of the same
// algorithm, only scheduled differently.
func TestParallelMetricMatchesPerSourceDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := map[string]*Graph{
		"tree":      RandomTree(97, 0.5, 2.0, rng),
		"geometric": RandomGeometric(80, 0.35, rng),
		"broom":     Broom(6),
		"grid":      Grid2D(9, 7),
	}
	for name, g := range graphs {
		m, err := NewMetricFromGraph(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := 0; v < g.N(); v++ {
			want := g.ShortestPathsFrom(v)
			row := m.Row(v)
			for u := range want {
				if row[u] != want[u] {
					t.Fatalf("%s: d(%d,%d) = %v, sequential Dijkstra gives %v", name, v, u, row[u], want[u])
				}
			}
		}
	}
}

// A disconnected graph big enough to exercise the multi-worker path must
// still report ErrDisconnected.
func TestParallelMetricDisconnected(t *testing.T) {
	g := New(120)
	for v := 1; v < 60; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	for v := 61; v < 120; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	if _, err := NewMetricFromGraph(g); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("got %v, want ErrDisconnected", err)
	}
}

// Reusing one workspace across sources must leave no state behind: running
// the same source twice through a shared heap and dist slice gives
// identical rows.
func TestWorkspaceReuseIsStateless(t *testing.T) {
	g := RandomGeometric(60, 0.4, rand.New(rand.NewSource(3)))
	h := newIndexedHeap(g.N())
	a := make([]float64, g.N())
	b := make([]float64, g.N())
	g.shortestPathsInto(17, a, h)
	g.shortestPathsInto(42, b, h) // dirty the workspace
	g.shortestPathsInto(17, b, h)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("d(17,%d) changed from %v to %v after workspace reuse", v, a[v], b[v])
		}
	}
}

func TestIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if !Path(10).IsTree() || !Star(8).IsTree() || !RandomTree(200, 1, 2, rng).IsTree() || !Broom(5).IsTree() {
		t.Fatal("path/star/random tree/broom must be trees")
	}
	if !New(1).IsTree() {
		t.Fatal("a single vertex is a tree")
	}
	if New(0).IsTree() {
		t.Fatal("the empty graph is not a tree")
	}
	if Cycle(5).IsTree() {
		t.Fatal("a cycle is not a tree")
	}
	// n−1 edges but disconnected: a triangle plus an isolated vertex.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	if g.IsTree() {
		t.Fatal("disconnected graph with n-1 edges is not a tree")
	}
}

// Validate pins both triangle-check modes: the exhaustive scan below the
// size threshold and the seeded sample above it. The planted large-n
// violation is dense (every triple through node 0 violates), so the sampled
// check finds it deterministically.
func TestValidateTriangleModes(t *testing.T) {
	// Exact mode: a single planted violation in a small matrix is caught.
	small := [][]float64{
		{0, 1, 1},
		{1, 0, 10}, // d(1,2)=10 > d(1,0)+d(0,2)=2
		{1, 10, 0},
	}
	if _, err := NewMetricFromMatrix(small); err == nil {
		t.Fatal("exact mode missed a planted triangle violation")
	}

	// Sampled mode: n above the exact limit. All off-diagonal distances 3,
	// but node 0 is at distance 1 from everyone, so d(i,j)=3 > 1+1 for every
	// i,j ≥ 1: any sampled triple with k=0 witnesses the violation.
	n := validateExactLimit + 72
	bad := make([][]float64, n)
	for i := range bad {
		bad[i] = make([]float64, n)
		for j := range bad[i] {
			switch {
			case i == j:
			case i == 0 || j == 0:
				bad[i][j] = 1
			default:
				bad[i][j] = 3
			}
		}
	}
	if _, err := NewMetricFromMatrix(bad); err == nil {
		t.Fatal("sampled mode missed a dense triangle violation")
	}

	// Sampled mode accepts a genuine shortest-path metric of the same size.
	g := RandomTree(n, 0.5, 2.0, rand.New(rand.NewSource(11)))
	m, err := NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	if _, err := NewMetricFromMatrix(rows); err != nil {
		t.Fatalf("sampled mode rejected a valid metric: %v", err)
	}
	// Direct mode pinning: each checker sees the planted violation.
	badm := &Metric{n: 3, d: []float64{0, 1, 1, 1, 0, 10, 1, 10, 0}}
	if badm.validateTrianglesExact() == nil {
		t.Fatal("validateTrianglesExact missed the violation")
	}
	wide := &Metric{n: n, d: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			wide.d[i*n+j] = bad[i][j]
		}
	}
	if wide.validateTrianglesSampled(validateSampledTriples, validateSampleSeed) == nil {
		t.Fatal("validateTrianglesSampled missed the dense violation")
	}
}

func TestLandmarkMetricBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := RandomGeometric(150, 0.3, rng)
	lm, err := NewLandmarkMetric(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if lm.K() != 16 || lm.N() != 150 {
		t.Fatalf("k=%d n=%d", lm.K(), lm.N())
	}
	// Landmarks must be distinct.
	seen := map[int]bool{}
	for _, l := range lm.Landmarks() {
		if seen[l] {
			t.Fatalf("duplicate landmark %d", l)
		}
		seen[l] = true
	}
	// Pairs involving a landmark are exact.
	for _, l := range lm.Landmarks()[:4] {
		want := g.ShortestPathsFrom(l)
		for v := 0; v < g.N(); v++ {
			if math.Abs(lm.Upper(l, v)-want[v]) > 1e-9*(1+want[v]) {
				t.Fatalf("Upper(%d,%d)=%v, exact %v", l, v, lm.Upper(l, v), want[v])
			}
			if math.Abs(lm.Lower(l, v)-want[v]) > 1e-9*(1+want[v]) {
				t.Fatalf("Lower(%d,%d)=%v, exact %v", l, v, lm.Lower(l, v), want[v])
			}
		}
	}
	// The sandwich holds on sampled pairs and the stretch is finite.
	stretch, err := lm.ValidateSampled(g, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stretch < 1 || math.IsInf(stretch, 0) || math.IsNaN(stretch) {
		t.Fatalf("stretch %v", stretch)
	}
}

func TestLandmarkMetricDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := NewLandmarkMetric(g, 2); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("got %v, want ErrDisconnected", err)
	}
}

func TestBuildMetricAuto(t *testing.T) {
	g := Broom(5)
	m, err := BuildMetric(g)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewMetricFromGraph(g)
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if m.D(i, j) != want.D(i, j) {
				t.Fatalf("BuildMetric differs from NewMetricFromGraph at (%d,%d)", i, j)
			}
		}
	}
	if _, err := BuildMetric(g, WithDenseLimit(4)); !errors.Is(err, ErrMetricTooLarge) {
		t.Fatalf("got %v, want ErrMetricTooLarge", err)
	}
}
