package graph

// indexedHeap is a simple binary min-heap of (vertex, priority) pairs used
// by Dijkstra. It allows duplicate entries for the same vertex (lazy
// deletion), which keeps the implementation small while preserving the
// O((n+m) log n) bound for the graphs in this library.
type indexedHeap struct {
	vert []int
	prio []float64
}

func newIndexedHeap(capHint int) *indexedHeap {
	return &indexedHeap{
		vert: make([]int, 0, capHint),
		prio: make([]float64, 0, capHint),
	}
}

func (h *indexedHeap) len() int { return len(h.vert) }

// reset empties the heap while keeping its storage, so one heap can serve
// many Dijkstra runs without reallocating.
func (h *indexedHeap) reset() {
	h.vert = h.vert[:0]
	h.prio = h.prio[:0]
}

func (h *indexedHeap) push(v int, p float64) {
	h.vert = append(h.vert, v)
	h.prio = append(h.prio, p)
	i := len(h.vert) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *indexedHeap) pop() (v int, p float64) {
	v, p = h.vert[0], h.prio[0]
	last := len(h.vert) - 1
	h.swap(0, last)
	h.vert = h.vert[:last]
	h.prio = h.prio[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.prio[l] < h.prio[smallest] {
			smallest = l
		}
		if r < last && h.prio[r] < h.prio[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return v, p
}

func (h *indexedHeap) swap(i, j int) {
	h.vert[i], h.vert[j] = h.vert[j], h.vert[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}
