package graph

import "fmt"

// Graph transformations used to derive experiment topologies from base
// graphs and to test metric-scaling properties of the placement pipeline.

// Scale returns a copy of g with every edge length multiplied by factor.
// Shortest-path distances scale by exactly the same factor, so delay
// objectives are homogeneous under Scale — a property the placement tests
// verify end-to-end.
func Scale(g *Graph, factor float64) *Graph {
	if factor <= 0 {
		panic(fmt.Sprintf("graph: scale factor %v must be positive", factor))
	}
	out := New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				out.MustAddEdge(u, e.To, e.Length*factor)
			}
		}
	}
	return out
}

// Subdivide returns a copy of g where every edge is replaced by a path of
// k unit segments through k-1 fresh vertices, each segment carrying length
// original/k. Distances between original vertices are preserved while the
// vertex count grows, which is useful for stress-testing solvers on larger
// networks with known metric structure.
func Subdivide(g *Graph, k int) *Graph {
	if k < 1 {
		panic(fmt.Sprintf("graph: subdivision factor %d must be ≥ 1", k))
	}
	if k == 1 {
		return Scale(g, 1) // plain copy
	}
	out := New(g.N() + (k-1)*g.M())
	next := g.N()
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if u >= e.To {
				continue
			}
			seg := e.Length / float64(k)
			prev := u
			for i := 0; i < k-1; i++ {
				out.MustAddEdge(prev, next, seg)
				prev = next
				next++
			}
			out.MustAddEdge(prev, e.To, seg)
		}
	}
	return out
}

// Disjoint returns the disjoint union of a and b (b's vertices are shifted
// by a.N()); the result is disconnected until the caller bridges it.
func Disjoint(a, b *Graph) *Graph {
	out := New(a.N() + b.N())
	for u := 0; u < a.N(); u++ {
		for _, e := range a.Neighbors(u) {
			if u < e.To {
				out.MustAddEdge(u, e.To, e.Length)
			}
		}
	}
	off := a.N()
	for u := 0; u < b.N(); u++ {
		for _, e := range b.Neighbors(u) {
			if u < e.To {
				out.MustAddEdge(u+off, e.To+off, e.Length)
			}
		}
	}
	return out
}
