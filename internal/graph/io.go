package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list serialization. The format is line-oriented text:
//
//	# comment
//	nodes <n>
//	<u> <v> <length>
//	...
//
// Vertex ids are 0-based. Blank lines and #-comments are ignored. The
// format round-trips exactly through WriteEdgeList / ParseEdgeList and is
// what cmd/qpp's -graphfile flag consumes, so real topologies (e.g.
// measured WAN latencies) can be fed to the solvers.

// WriteEdgeList serializes g in the edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", g.N()); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				if _, err := fmt.Fprintf(bw, "%d %d %s\n", u, e.To, strconv.FormatFloat(e.Length, 'g', -1, 64)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ParseEdgeList reads a graph in the edge-list format.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if g == nil {
			if len(fields) != 2 || fields[0] != "nodes" {
				return nil, fmt.Errorf("graph: line %d: expected \"nodes <n>\" header, got %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			g = New(n)
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v length\", got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNo, fields[1])
		}
		length, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad length %q", lineNo, fields[2])
		}
		if err := g.AddEdge(u, v, length); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return g, nil
}

// Hypercube returns the d-dimensional hypercube graph on 2^d vertices with
// unit edge lengths (vertices adjacent iff their ids differ in one bit).
func Hypercube(d int) *Graph {
	if d < 0 || d > 20 {
		panic(fmt.Sprintf("graph: hypercube dimension %d out of range [0,20]", d))
	}
	n := 1 << uint(d)
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.MustAddEdge(u, v, 1)
			}
		}
	}
	return g
}

// RingOfCliques returns k cliques of the given size arranged in a ring:
// within-clique edges have length 1 and consecutive cliques are joined by a
// single length-bridge edge. It models geographically clustered data
// centers connected by WAN links.
func RingOfCliques(k, size int, bridge float64) *Graph {
	if k < 2 || size < 1 {
		panic(fmt.Sprintf("graph: ring of cliques needs k >= 2, size >= 1; got %d, %d", k, size))
	}
	if bridge <= 0 {
		panic(fmt.Sprintf("graph: bridge length %v must be positive", bridge))
	}
	g := New(k * size)
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.MustAddEdge(base+i, base+j, 1)
			}
		}
		next := ((c + 1) % k) * size
		g.MustAddEdge(base, next, bridge)
	}
	return g
}
