package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseEdgeList checks that the parser never panics and that every
// accepted graph round-trips through WriteEdgeList. (Seeds run as ordinary
// unit tests; `go test -fuzz=FuzzParseEdgeList ./internal/graph` explores
// further.)
func FuzzParseEdgeList(f *testing.F) {
	f.Add("nodes 3\n0 1 1\n1 2 2.5\n")
	f.Add("nodes 0\n")
	f.Add("# comment\nnodes 2\n\n0 1 0.001\n")
	f.Add("nodes 2\n0 1 1\n0 1 2\n") // parallel edges are allowed
	f.Add("nodes 1000000000\n")
	f.Add("nodes 2\n0 1 NaN\n")
	f.Add("nodes 2\n0 1 -5\n")
	f.Add("nodes 2\n0 1 1e999\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		// Guard against absurd allocations from the node-count header.
		if idx := strings.Index(input, "nodes "); idx >= 0 {
			rest := input[idx+6:]
			end := strings.IndexAny(rest, "\n \t")
			if end < 0 {
				end = len(rest)
			}
			if len(rest[:end]) > 6 { // > 999999 nodes
				t.Skip("node count too large for fuzzing")
			}
		}
		g, err := ParseEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("WriteEdgeList on accepted graph: %v", err)
		}
		g2, err := ParseEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\noriginal input: %q", err, input)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}
