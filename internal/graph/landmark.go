package graph

import (
	"fmt"
	"math"
	"math/rand"

	"quorumplace/internal/obs"
)

// LandmarkMetric approximates shortest-path distances on graphs too large
// for the dense n² matrix. It stores the exact distance vectors of k
// landmark vertices (k·n floats instead of n²), chosen by farthest-point
// traversal so the landmarks cover the graph like a 2-approximate k-center
// solution. The triangle inequality then sandwiches every distance:
//
//	Lower(u,v) = max_ℓ |d(ℓ,u) − d(ℓ,v)|  ≤  d(u,v)  ≤  min_ℓ d(ℓ,u)+d(ℓ,v) = Upper(u,v)
//
// Both bounds are exact on any pair involving a landmark, and Upper is exact
// whenever some landmark lies on a shortest u–v path. ValidateSampled
// certifies the sandwich and measures the realized stretch on seeded sampled
// pairs against freshly computed exact distances.
type LandmarkMetric struct {
	n         int
	landmarks []int
	rows      []float64 // row-major k×n: rows[i*n+v] = d(landmarks[i], v)
}

// NewLandmarkMetric builds a landmark metric with k landmarks (clamped to
// [1, n]). The first landmark is vertex 0; each subsequent one is the vertex
// farthest from the chosen set, ties broken toward the smaller index, so the
// construction is deterministic. Returns ErrDisconnected if any vertex is
// unreachable.
func NewLandmarkMetric(g *Graph, k int) (*LandmarkMetric, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("graph: landmark metric of an empty graph")
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	sp := obs.Start("graph.landmark_build")
	defer sp.End()
	lm := &LandmarkMetric{n: n, landmarks: make([]int, 0, k), rows: make([]float64, k*n)}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	h := newIndexedHeap(n)
	cur := 0
	for i := 0; i < k; i++ {
		lm.landmarks = append(lm.landmarks, cur)
		row := lm.rows[i*n : (i+1)*n]
		g.shortestPathsInto(cur, row, h)
		for v, dv := range row {
			if math.IsInf(dv, 1) {
				return nil, ErrDisconnected
			}
			if dv < minDist[v] {
				minDist[v] = dv
			}
		}
		next, far := 0, -1.0
		for v, dv := range minDist {
			if dv > far {
				far, next = dv, v
			}
		}
		cur = next
	}
	obs.Gauge("metric.landmarks", float64(k))
	return lm, nil
}

// N returns the number of vertices the metric covers.
func (lm *LandmarkMetric) N() int { return lm.n }

// K returns the number of landmarks.
func (lm *LandmarkMetric) K() int { return len(lm.landmarks) }

// Landmarks returns a copy of the landmark vertex ids.
func (lm *LandmarkMetric) Landmarks() []int {
	return append([]int(nil), lm.landmarks...)
}

// Upper returns the landmark upper bound min_ℓ d(ℓ,u)+d(ℓ,v) ≥ d(u,v).
func (lm *LandmarkMetric) Upper(u, v int) float64 {
	if u == v {
		return 0
	}
	best := math.Inf(1)
	for i := range lm.landmarks {
		if s := lm.rows[i*lm.n+u] + lm.rows[i*lm.n+v]; s < best {
			best = s
		}
	}
	return best
}

// Lower returns the landmark lower bound max_ℓ |d(ℓ,u)−d(ℓ,v)| ≤ d(u,v).
func (lm *LandmarkMetric) Lower(u, v int) float64 {
	if u == v {
		return 0
	}
	best := 0.0
	for i := range lm.landmarks {
		if d := math.Abs(lm.rows[i*lm.n+u] - lm.rows[i*lm.n+v]); d > best {
			best = d
		}
	}
	return best
}

// D returns the Upper estimate: an admissible overestimate of the true
// distance, exact on pairs involving a landmark. Using the overestimate
// keeps delay reports conservative.
func (lm *LandmarkMetric) D(u, v int) float64 { return lm.Upper(u, v) }

// ValidateSampled draws source vertices with the seeded generator,
// recomputes their exact distance vectors, and checks every induced pair
// against the sandwich Lower ≤ d ≤ Upper. It returns the maximum observed
// stretch Upper(u,v)/d(u,v) over sampled pairs with d > 0, or an error if a
// bound is violated beyond floating-point tolerance (which would indicate a
// broken build, not approximation error).
func (lm *LandmarkMetric) ValidateSampled(g *Graph, sources int, seed int64) (float64, error) {
	if g.N() != lm.n {
		return 0, fmt.Errorf("graph: landmark metric covers %d vertices, graph has %d", lm.n, g.N())
	}
	if sources < 1 {
		sources = 1
	}
	r := rand.New(rand.NewSource(seed))
	dist := make([]float64, lm.n)
	h := newIndexedHeap(lm.n)
	maxStretch := 1.0
	for s := 0; s < sources; s++ {
		u := r.Intn(lm.n)
		g.shortestPathsInto(u, dist, h)
		for v := 0; v < lm.n; v++ {
			d := dist[v]
			tol := metricTol * (1 + d)
			if lo := lm.Lower(u, v); lo > d+tol {
				return 0, fmt.Errorf("graph: landmark lower bound %v exceeds d(%d,%d)=%v", lo, u, v, d)
			}
			hi := lm.Upper(u, v)
			if hi < d-tol {
				return 0, fmt.Errorf("graph: landmark upper bound %v below d(%d,%d)=%v", hi, u, v, d)
			}
			if d > 0 && hi/d > maxStretch {
				maxStretch = hi / d
			}
		}
	}
	return maxStretch, nil
}
