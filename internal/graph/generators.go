package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// This file contains the topology generators used by the tests, examples and
// experiment harness. Deterministic generators take explicit parameters;
// random generators take a *rand.Rand so experiments are reproducible.

// Path returns the path graph v0 - v1 - ... - v_{n-1} with unit edge
// lengths. This is the topology of the Theorem 3.6 hardness construction.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

// Cycle returns the n-cycle with unit edge lengths (n ≥ 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, 1)
	}
	return g
}

// Complete returns the complete graph on n vertices with unit edge lengths.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j, 1)
		}
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves at unit distance.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i, 1)
	}
	return g
}

// Grid2D returns the rows×cols grid graph with unit edge lengths. Vertex
// (r, c) has index r*cols + c.
func Grid2D(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n vertices
// (via a random Prüfer-like attachment) with edge lengths drawn uniformly
// from [minLen, maxLen].
func RandomTree(n int, minLen, maxLen float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		g.MustAddEdge(i, parent, randLen(minLen, maxLen, rng))
	}
	return g
}

// ErdosRenyiConnected returns a connected Erdős–Rényi graph G(n, p): it
// first builds a random spanning tree (guaranteeing connectivity) and then
// adds each remaining pair independently with probability p. Edge lengths
// are uniform in [minLen, maxLen].
func ErdosRenyiConnected(n int, p, minLen, maxLen float64, rng *rand.Rand) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	attached := make(map[[2]int]bool, n*2)
	for i := 1; i < n; i++ {
		u, v := perm[i], perm[rng.Intn(i)]
		g.MustAddEdge(u, v, randLen(minLen, maxLen, rng))
		attached[edgeKey(u, v)] = true
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !attached[edgeKey(u, v)] && rng.Float64() < p {
				g.MustAddEdge(u, v, randLen(minLen, maxLen, rng))
			}
		}
	}
	return g
}

// RandomGeometric places n points uniformly in the unit square and connects
// every pair within Euclidean distance radius, using the Euclidean distance
// as the edge length; if the result is disconnected it augments it with the
// shortest missing inter-component edges. This is the standard synthetic
// stand-in for a WAN topology (hosts spread over a geographic area).
func RandomGeometric(n int, radius float64, rng *rand.Rand) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	g := New(n)
	dist := func(i, j int) float64 {
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d <= radius && d > 0 {
				g.MustAddEdge(i, j, d)
			}
		}
	}
	// Stitch components together with their closest cross pairs so the
	// metric is always defined.
	for !g.Connected() {
		comp := components(g)
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if comp[i] != comp[j] {
					if d := dist(i, j); d < bd && d > 0 {
						bi, bj, bd = i, j, d
					}
				}
			}
		}
		if bi < 0 {
			// All points coincide; fall back to a unit edge.
			g.MustAddEdge(0, 1, 1)
			continue
		}
		g.MustAddEdge(bi, bj, bd)
	}
	return g
}

// Broom returns the Figure-1 graph from Appendix A for parameter k: a
// center v0 (index 0) with n-k pendant unit-length leaves plus a path of
// k-1 additional vertices hanging off v0, where n = k². The resulting
// distance profile from v0 is 1 (repeated n-k times) followed by 1, 2, ..., k
// along the path — exactly the d_i sequence of Claim A.1, on which the LP
// relaxation has integrality gap Θ(√n).
func Broom(k int) *Graph {
	if k < 2 {
		panic(fmt.Sprintf("graph: broom needs k >= 2, got %d", k))
	}
	n := k * k
	g := New(n)
	// Leaves 1..n-k at distance 1 from v0.
	for i := 1; i <= n-k; i++ {
		g.MustAddEdge(0, i, 1)
	}
	// Path v0 - (n-k+1) - (n-k+2) - ... - (n-1), giving distances 1..k-1;
	// note vertex n-k is already a leaf at distance 1, so together the
	// distances from v0 are: 0, 1×(n-k), then 2, 3, ..., k as in the paper
	// (the path contributes k-1 vertices at distances 1..k-1 plus one leaf
	// reused; we follow the paper's profile d_{n-k+2}=2, ..., d_n=k by
	// hanging a path of length k-1 off one leaf).
	prev := 1 // extend the path from leaf 1 (distance 1 from v0)
	for i := n - k + 1; i < n; i++ {
		g.MustAddEdge(prev, i, 1)
		prev = i
	}
	return g
}

// StarWithLongEdge returns the Appendix-A general-metric gap instance: a
// star on n vertices with unit spokes, except one spoke of length m. The
// only capacity-feasible placement of a single n-element quorum must use the
// far node, so the integral optimum is m while the LP spreads mass and pays
// about (n-1+m)/n.
func StarWithLongEdge(n int, m float64) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: star needs n >= 2, got %d", n))
	}
	g := New(n)
	for i := 1; i < n-1; i++ {
		g.MustAddEdge(0, i, 1)
	}
	g.MustAddEdge(0, n-1, m)
	return g
}

func randLen(minLen, maxLen float64, rng *rand.Rand) float64 {
	if maxLen < minLen {
		panic(fmt.Sprintf("graph: invalid length range [%v,%v]", minLen, maxLen))
	}
	if maxLen == minLen {
		return minLen
	}
	return minLen + rng.Float64()*(maxLen-minLen)
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// components labels each vertex with a component id and returns the labels.
func components(g *Graph) []int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		stack := []int{s}
		comp[s] = next
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.adj[u] {
				if comp[e.To] < 0 {
					comp[e.To] = next
					stack = append(stack, e.To)
				}
			}
		}
		next++
	}
	return comp
}
