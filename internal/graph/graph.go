// Package graph provides weighted undirected graphs, shortest-path metrics,
// and the topology generators used throughout the quorum-placement library.
//
// The paper's network model (§1.2) is an undirected graph G = (V, E) with a
// positive length on each edge, inducing a shortest-path distance function
// d : V × V → R+. This package computes that metric exactly (Dijkstra from
// every source) and exposes it as a Metric value that the placement
// algorithms consume. It also provides the adversarial constructions from
// Appendix A (the star-with-long-edge and the Figure-1 "broom" graph).
package graph

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Graph is a weighted undirected multigraph on vertices 0..n-1.
// The zero value is an empty graph with no vertices; use New to create a
// graph with a fixed vertex count.
type Graph struct {
	n   int
	adj [][]Edge
	m   int
}

// Edge is a directed representation of an undirected edge: it records the
// neighbor reached and the positive length of the edge.
type Edge struct {
	To     int
	Length float64
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// AddEdge adds an undirected edge between u and v with the given positive
// length. Self-loops are rejected because they never affect shortest paths
// and usually indicate a construction bug.
func (g *Graph) AddEdge(u, v int, length float64) error {
	switch {
	case u < 0 || u >= g.n || v < 0 || v >= g.n:
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	case u == v:
		return fmt.Errorf("graph: self-loop at %d", u)
	case length <= 0 || math.IsNaN(length) || math.IsInf(length, 0):
		return fmt.Errorf("graph: edge (%d,%d) has non-positive or non-finite length %v", u, v, length)
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Length: length})
	g.adj[v] = append(g.adj[v], Edge{To: u, Length: length})
	g.m++
	return nil
}

// MustAddEdge is AddEdge but panics on error. It is intended for the
// generators in this package, whose arguments are statically valid.
func (g *Graph) MustAddEdge(u, v int, length float64) {
	if err := g.AddEdge(u, v, length); err != nil {
		panic(err)
	}
}

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the number of incident edge endpoints at u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// ErrDisconnected is returned by metric computations on graphs where some
// pair of vertices has no connecting path.
var ErrDisconnected = errors.New("graph: graph is not connected")

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.n
}

// ShortestPathsFrom runs Dijkstra's algorithm from src and returns the
// distance to every vertex. Unreachable vertices get +Inf. Callers running
// many sources should go through NewMetricFromGraph, whose workers reuse one
// workspace per core instead of allocating per source.
func (g *Graph) ShortestPathsFrom(src int) []float64 {
	if src < 0 || src >= g.n {
		panic(fmt.Sprintf("graph: source %d out of range [0,%d)", src, g.n))
	}
	dist := make([]float64, g.n)
	g.shortestPathsInto(src, dist, newIndexedHeap(g.n))
	return dist
}

// IsTree reports whether the graph is a tree: non-empty, connected, with
// exactly n−1 edges. Tree instances admit the exact near-linear placement
// fast path (package treedp) without materializing any n² metric.
func (g *Graph) IsTree() bool {
	return g.n >= 1 && g.m == g.n-1 && g.Connected()
}

// Metric is a finite metric space on points 0..n-1, typically the
// shortest-path closure of a Graph. Distances are symmetric with zero
// diagonal and satisfy the triangle inequality. The n×n matrix is stored
// row-major in one backing slice: one allocation, cache-contiguous row
// scans, and Row views carved by re-slicing.
type Metric struct {
	n int
	d []float64 // row-major, d[u*n+v] = d(u, v)
}

// NewMetricFromGraph computes the all-pairs shortest-path metric of g,
// fanning the per-source Dijkstra runs across cores with one reusable
// workspace per worker (see apspInto). It returns ErrDisconnected if any
// pair of vertices is unreachable.
func NewMetricFromGraph(g *Graph) (*Metric, error) {
	d := make([]float64, g.n*g.n)
	if !g.apspInto(d) {
		return nil, ErrDisconnected
	}
	return &Metric{n: g.n, d: d}, nil
}

// NewMetricFromMatrix builds a Metric from an explicit distance matrix,
// validating symmetry, zero diagonal, non-negativity and the triangle
// inequality. The matrix is copied.
func NewMetricFromMatrix(d [][]float64) (*Metric, error) {
	n := len(d)
	flat := make([]float64, n*n)
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("graph: distance matrix row %d has length %d, want %d", i, len(d[i]), n)
		}
		copy(flat[i*n:(i+1)*n], d[i])
	}
	m := &Metric{n: n, d: flat}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// metricTol is the relative tolerance used when validating metric axioms on
// explicitly supplied matrices (floating-point closures of exact metrics).
const metricTol = 1e-9

// Triangle-inequality checking is cubic in n; above validateExactLimit,
// Validate switches from the exhaustive scan to a fixed-seed random sample
// of triples (the quadratic symmetry and finiteness checks always run in
// full). The seed is a constant so Validate stays deterministic.
const (
	validateExactLimit     = 128
	validateSampledTriples = 1 << 20
	validateSampleSeed     = 0x71C5
)

// Validate checks the metric axioms and returns a descriptive error for the
// first violation found. Symmetry, finiteness and the zero diagonal are
// always checked exhaustively; the triangle inequality is exhaustive up to
// validateExactLimit points and sampled (seeded, deterministic) beyond it,
// keeping NewMetricFromMatrix usable at large n.
func (m *Metric) Validate() error {
	for i := 0; i < m.n; i++ {
		if m.D(i, i) != 0 {
			return fmt.Errorf("graph: d(%d,%d) = %v, want 0", i, i, m.D(i, i))
		}
		for j := 0; j < m.n; j++ {
			if m.D(i, j) < 0 || math.IsNaN(m.D(i, j)) || math.IsInf(m.D(i, j), 0) {
				return fmt.Errorf("graph: d(%d,%d) = %v is not a finite non-negative value", i, j, m.D(i, j))
			}
			if math.Abs(m.D(i, j)-m.D(j, i)) > metricTol*(1+math.Abs(m.D(i, j))) {
				return fmt.Errorf("graph: asymmetric distances d(%d,%d)=%v, d(%d,%d)=%v", i, j, m.D(i, j), j, i, m.D(j, i))
			}
		}
	}
	if m.n <= validateExactLimit {
		return m.validateTrianglesExact()
	}
	return m.validateTrianglesSampled(validateSampledTriples, validateSampleSeed)
}

// checkTriangle verifies d(i,j) ≤ d(i,k) + d(k,j) up to tolerance.
func (m *Metric) checkTriangle(i, j, k int) error {
	if m.D(i, j) > m.D(i, k)+m.D(k, j)+metricTol*(1+m.D(i, j)) {
		return fmt.Errorf("graph: triangle inequality violated: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
			i, j, m.D(i, j), i, k, k, j, m.D(i, k)+m.D(k, j))
	}
	return nil
}

func (m *Metric) validateTrianglesExact() error {
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			for k := 0; k < m.n; k++ {
				if err := m.checkTriangle(i, j, k); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (m *Metric) validateTrianglesSampled(samples int, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	for s := 0; s < samples; s++ {
		if err := m.checkTriangle(r.Intn(m.n), r.Intn(m.n), r.Intn(m.n)); err != nil {
			return err
		}
	}
	return nil
}

// N returns the number of points.
func (m *Metric) N() int { return m.n }

// D returns the distance between points u and v.
func (m *Metric) D(u, v int) float64 { return m.d[u*m.n+v] }

// Row returns the distances from src to every point as a view into the
// metric's backing storage. The returned slice is owned by the metric and
// must not be modified (the full-slice expression keeps appends from
// spilling into the next row).
func (m *Metric) Row(src int) []float64 {
	lo, hi := src*m.n, (src+1)*m.n
	return m.d[lo:hi:hi]
}

// AvgDistTo returns the average distance from all points to v, the quantity
// Avg_{v'∈V} d(v', v) used by the total-delay reduction (§5) and by
// Lemma 3.1's relay analysis. It strides down column v rather than scanning
// row v: the two differ only by float rounding of symmetric Dijkstra runs,
// but downstream tie-breaking pins the exact column values.
func (m *Metric) AvgDistTo(v int) float64 {
	sum := 0.0
	for u := 0; u < m.n; u++ {
		sum += m.d[u*m.n+v]
	}
	return sum / float64(m.n)
}

// Median returns the vertex minimizing the average distance to all other
// vertices (the 1-median), with ties broken toward the smaller index.
func (m *Metric) Median() int {
	best, bestVal := 0, math.Inf(1)
	for v := 0; v < m.n; v++ {
		if s := m.AvgDistTo(v); s < bestVal {
			best, bestVal = v, s
		}
	}
	return best
}

// NodesByDistance returns the vertex indices sorted by increasing distance
// from src (src itself first), tie-broken by index. This is the ordering
// v_0, v_1, ..., v_{n-1} with d_0 ≤ d_1 ≤ ... used by the SSQPP LP (§3.3).
func (m *Metric) NodesByDistance(src int) []int {
	order := make([]int, m.n)
	for i := range order {
		order[i] = i
	}
	row := m.Row(src)
	sort.SliceStable(order, func(a, b int) bool {
		if row[order[a]] != row[order[b]] {
			return row[order[a]] < row[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// Diameter returns the maximum pairwise distance.
func (m *Metric) Diameter() float64 {
	max := 0.0
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if d := m.D(i, j); d > max {
				max = d
			}
		}
	}
	return max
}

// DOT renders the graph in Graphviz DOT format, useful for debugging
// generated topologies.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for u := 0; u < g.n; u++ {
		fmt.Fprintf(&b, "  %d;\n", u)
	}
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if u < e.To {
				fmt.Fprintf(&b, "  %d -- %d [label=\"%g\"];\n", u, e.To, e.Length)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
