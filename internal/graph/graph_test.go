package graph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndAddEdge(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("New(3) = n=%d m=%d, want 3, 0", g.N(), g.M())
	}
	if err := g.AddEdge(0, 1, 2.5); err != nil {
		t.Fatalf("AddEdge(0,1,2.5) = %v", err)
	}
	if g.M() != 1 {
		t.Fatalf("M() = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees = %d,%d,%d, want 1,1,0", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	cases := []struct {
		name    string
		u, v    int
		length  float64
		wantErr string
	}{
		{"out of range u", -1, 0, 1, "out of range"},
		{"out of range v", 0, 3, 1, "out of range"},
		{"self loop", 1, 1, 1, "self-loop"},
		{"zero length", 0, 1, 0, "non-positive"},
		{"negative length", 0, 1, -2, "non-positive"},
		{"NaN length", 0, 1, math.NaN(), "non-positive"},
		{"Inf length", 0, 1, math.Inf(1), "non-positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := g.AddEdge(tc.u, tc.v, tc.length)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("AddEdge(%d,%d,%v) = %v, want error containing %q", tc.u, tc.v, tc.length, err, tc.wantErr)
			}
		})
	}
}

func TestConnected(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"single", New(1), true},
		{"two isolated", New(2), false},
		{"path", Path(5), true},
		{"cycle", Cycle(4), true},
		{"star", Star(6), true},
		{"grid", Grid2D(3, 4), true},
		{"broom", Broom(3), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Connected(); got != tc.want {
				t.Fatalf("Connected() = %v, want %v", got, tc.want)
			}
		})
	}
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if g.Connected() {
		t.Fatal("two-component graph reported connected")
	}
}

func TestShortestPathsPath(t *testing.T) {
	g := Path(5)
	d := g.ShortestPathsFrom(0)
	for i, want := range []float64{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("d(0,%d) = %v, want %v", i, d[i], want)
		}
	}
	d = g.ShortestPathsFrom(2)
	for i, want := range []float64{2, 1, 0, 1, 2} {
		if d[i] != want {
			t.Errorf("d(2,%d) = %v, want %v", i, d[i], want)
		}
	}
}

func TestShortestPathsWeighted(t *testing.T) {
	// Triangle where the direct edge is longer than the two-hop route.
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 5)
	d := g.ShortestPathsFrom(0)
	if d[2] != 2 {
		t.Fatalf("d(0,2) = %v, want 2 (via middle vertex)", d[2])
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	d := g.ShortestPathsFrom(0)
	if !math.IsInf(d[2], 1) {
		t.Fatalf("d(0,2) = %v, want +Inf", d[2])
	}
}

func TestMetricFromGraphDisconnected(t *testing.T) {
	g := New(2)
	if _, err := NewMetricFromGraph(g); err != ErrDisconnected {
		t.Fatalf("NewMetricFromGraph(disconnected) = %v, want ErrDisconnected", err)
	}
}

func TestMetricFromMatrixValidation(t *testing.T) {
	cases := []struct {
		name string
		d    [][]float64
		ok   bool
	}{
		{"valid", [][]float64{{0, 1}, {1, 0}}, true},
		{"ragged", [][]float64{{0, 1}, {1}}, false},
		{"nonzero diagonal", [][]float64{{1, 1}, {1, 0}}, false},
		{"asymmetric", [][]float64{{0, 1}, {2, 0}}, false},
		{"negative", [][]float64{{0, -1}, {-1, 0}}, false},
		{"triangle violation", [][]float64{{0, 1, 5}, {1, 0, 1}, {5, 1, 0}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewMetricFromMatrix(tc.d)
			if (err == nil) != tc.ok {
				t.Fatalf("NewMetricFromMatrix = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestMetricBasics(t *testing.T) {
	m, err := NewMetricFromGraph(Path(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Fatalf("N() = %d, want 4", m.N())
	}
	if m.D(0, 3) != 3 || m.D(3, 0) != 3 {
		t.Fatalf("D(0,3) = %v, D(3,0) = %v, want 3, 3", m.D(0, 3), m.D(3, 0))
	}
	if m.Diameter() != 3 {
		t.Fatalf("Diameter() = %v, want 3", m.Diameter())
	}
	// Avg dist to vertex 1 on the path 0-1-2-3 is (1+0+1+2)/4 = 1.
	if got := m.AvgDistTo(1); got != 1 {
		t.Fatalf("AvgDistTo(1) = %v, want 1", got)
	}
	// Median of a path of 4 is vertex 1 (ties to lower index).
	if got := m.Median(); got != 1 {
		t.Fatalf("Median() = %d, want 1", got)
	}
}

func TestNodesByDistance(t *testing.T) {
	m, err := NewMetricFromGraph(Path(5))
	if err != nil {
		t.Fatal(err)
	}
	got := m.NodesByDistance(2)
	want := []int{2, 1, 3, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodesByDistance(2) = %v, want %v", got, want)
		}
	}
	// The ordering must always start at the source and be nondecreasing.
	for src := 0; src < 5; src++ {
		ord := m.NodesByDistance(src)
		if ord[0] != src {
			t.Fatalf("NodesByDistance(%d)[0] = %d, want %d", src, ord[0], src)
		}
		for i := 1; i < len(ord); i++ {
			if m.D(src, ord[i-1]) > m.D(src, ord[i]) {
				t.Fatalf("NodesByDistance(%d) not sorted: %v", src, ord)
			}
		}
	}
}

func TestGeneratorSizes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"path", Path(6), 6, 5},
		{"cycle", Cycle(6), 6, 6},
		{"complete", Complete(5), 5, 10},
		{"star", Star(7), 7, 6},
		{"grid 3x4", Grid2D(3, 4), 12, 17},
		{"broom k=3", Broom(3), 9, 8},
		{"broom k=4", Broom(4), 16, 15},
		{"star long edge", StarWithLongEdge(6, 100), 6, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n || tc.g.M() != tc.m {
				t.Fatalf("n=%d m=%d, want n=%d m=%d", tc.g.N(), tc.g.M(), tc.n, tc.m)
			}
		})
	}
}

// TestBroomDistanceProfile checks the Claim A.1 distance profile: from v0
// there are n-k vertices at distance 1 and one vertex at each of the
// distances 2..k, where n = k².
func TestBroomDistanceProfile(t *testing.T) {
	for k := 2; k <= 6; k++ {
		g := Broom(k)
		n := k * k
		d := g.ShortestPathsFrom(0)
		count := map[float64]int{}
		for v := 1; v < n; v++ {
			count[d[v]]++
		}
		if count[1] != n-k {
			t.Errorf("k=%d: %d vertices at distance 1, want %d", k, count[1], n-k)
		}
		for dist := 2; dist <= k; dist++ {
			if count[float64(dist)] != 1 {
				t.Errorf("k=%d: %d vertices at distance %d, want 1", k, count[float64(dist)], dist)
			}
		}
	}
}

func TestStarWithLongEdgeProfile(t *testing.T) {
	g := StarWithLongEdge(5, 50)
	d := g.ShortestPathsFrom(0)
	for v := 1; v < 4; v++ {
		if d[v] != 1 {
			t.Errorf("d(0,%d) = %v, want 1", v, d[v])
		}
	}
	if d[4] != 50 {
		t.Errorf("d(0,4) = %v, want 50", d[4])
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *Graph
	}{
		{"random tree", RandomTree(20, 1, 5, rng)},
		{"erdos renyi", ErdosRenyiConnected(15, 0.2, 1, 3, rng)},
		{"geometric", RandomGeometric(25, 0.25, rng)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.g.Connected() {
				t.Fatal("generator produced a disconnected graph")
			}
			if _, err := NewMetricFromGraph(tc.g); err != nil {
				t.Fatalf("metric: %v", err)
			}
		})
	}
}

func TestRandomTreeEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 10; n++ {
		g := RandomTree(n, 1, 1, rng)
		if g.M() != n-1 && n > 0 {
			if !(n == 1 && g.M() == 0) {
				t.Fatalf("RandomTree(%d) has %d edges, want %d", n, g.M(), n-1)
			}
		}
	}
}

// TestMetricAxiomsProperty verifies symmetry, identity, and the triangle
// inequality hold for shortest-path metrics of random connected graphs.
func TestMetricAxiomsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		g := ErdosRenyiConnected(n, 0.3, 0.5, 4, r)
		m, err := NewMetricFromGraph(g)
		if err != nil {
			return false
		}
		return m.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDijkstraMatchesFloydWarshall cross-checks Dijkstra against an
// independent Floyd–Warshall implementation on random graphs.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(10)
		g := ErdosRenyiConnected(n, 0.4, 0.1, 9, rng)
		m, err := NewMetricFromGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		fw := floydWarshall(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(m.D(i, j)-fw[i][j]) > 1e-9 {
					t.Fatalf("trial %d: d(%d,%d): dijkstra=%v floyd=%v", trial, i, j, m.D(i, j), fw[i][j])
				}
			}
		}
	}
}

func floydWarshall(g *Graph) [][]float64 {
	n := g.N()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(u) {
			if e.Length < d[u][e.To] {
				d[u][e.To] = e.Length
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func TestDOT(t *testing.T) {
	g := Path(3)
	dot := g.DOT("p3")
	for _, want := range []string{"graph p3 {", "0 -- 1", "1 -- 2"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
