package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestScale(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	g := ErdosRenyiConnected(10, 0.4, 1, 5, rng)
	s := Scale(g, 2.5)
	if s.N() != g.N() || s.M() != g.M() {
		t.Fatalf("scale changed shape")
	}
	m1, err := NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMetricFromGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if math.Abs(m2.D(i, j)-2.5*m1.D(i, j)) > 1e-9 {
				t.Fatalf("d(%d,%d): %v != 2.5·%v", i, j, m2.D(i, j), m1.D(i, j))
			}
		}
	}
}

func TestScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(g, 0) did not panic")
		}
	}()
	Scale(Path(3), 0)
}

func TestSubdividePreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(903))
	g := ErdosRenyiConnected(8, 0.4, 1, 4, rng)
	for _, k := range []int{1, 2, 3} {
		sub := Subdivide(g, k)
		wantN := g.N() + (k-1)*g.M()
		if sub.N() != wantN {
			t.Fatalf("k=%d: n=%d, want %d", k, sub.N(), wantN)
		}
		if sub.M() != k*g.M() {
			t.Fatalf("k=%d: m=%d, want %d", k, sub.M(), k*g.M())
		}
		m1, err := NewMetricFromGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := NewMetricFromGraph(sub)
		if err != nil {
			t.Fatal(err)
		}
		// Distances between ORIGINAL vertices are preserved.
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if math.Abs(m2.D(i, j)-m1.D(i, j)) > 1e-9 {
					t.Fatalf("k=%d: d(%d,%d) changed: %v vs %v", k, i, j, m2.D(i, j), m1.D(i, j))
				}
			}
		}
	}
}

func TestDisjoint(t *testing.T) {
	a, b := Path(3), Cycle(4)
	d := Disjoint(a, b)
	if d.N() != 7 || d.M() != a.M()+b.M() {
		t.Fatalf("disjoint shape n=%d m=%d", d.N(), d.M())
	}
	if d.Connected() {
		t.Fatal("disjoint union reported connected")
	}
	// Bridging reconnects.
	d.MustAddEdge(0, 3, 1)
	if !d.Connected() {
		t.Fatal("bridged union disconnected")
	}
}
