package graph

// Reusable Dijkstra state and the parallel all-pairs build behind
// NewMetricFromGraph. One workspace serves any number of sources: the dist
// slice doubles as the output row and the heap keeps its storage between
// runs, so an n-source sweep allocates O(workers) scratch instead of O(n).

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// shortestPathsInto runs Dijkstra from src, writing the distance to every
// vertex into dist (length g.n) and reusing the heap's storage. Unreachable
// vertices get +Inf.
func (g *Graph) shortestPathsInto(src int, dist []float64, h *indexedHeap) {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h.reset()
	h.push(src, 0)
	for h.len() > 0 {
		u, du := h.pop()
		if du > dist[u] {
			continue
		}
		for _, e := range g.adj[u] {
			if nd := du + e.Length; nd < dist[e.To] {
				dist[e.To] = nd
				h.push(e.To, nd)
			}
		}
	}
}

// metricBuildChunk is the number of sources a worker claims per atomic
// fetch-add during the parallel all-pairs build. A handful of rows per claim
// amortizes the atomic without hurting balance.
const metricBuildChunk = 8

// apspInto fills the row-major n×n matrix d with all-pairs shortest-path
// distances, fanning sources across GOMAXPROCS workers. Workers write
// disjoint rows of the shared backing slice, so the only synchronization is
// the claim counter; each row is the output of an independent Dijkstra run,
// making the matrix bit-identical to a sequential sweep. Returns false if
// some pair of vertices is unreachable.
func (g *Graph) apspInto(d []float64) bool {
	n := g.n
	workers := runtime.GOMAXPROCS(0)
	if max := (n + metricBuildChunk - 1) / metricBuildChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		h := newIndexedHeap(n)
		for v := 0; v < n; v++ {
			if !g.rowInto(v, d[v*n:(v+1)*n], h) {
				return false
			}
		}
		return true
	}
	var (
		cursor       atomic.Int64
		disconnected atomic.Bool
		wg           sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := newIndexedHeap(n)
			for {
				lo := int(cursor.Add(metricBuildChunk)) - metricBuildChunk
				if lo >= n || disconnected.Load() {
					return
				}
				hi := lo + metricBuildChunk
				if hi > n {
					hi = n
				}
				for v := lo; v < hi; v++ {
					if !g.rowInto(v, d[v*n:(v+1)*n], h) {
						disconnected.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return !disconnected.Load()
}

// rowInto computes one metric row and reports whether every vertex was
// reachable from v.
func (g *Graph) rowInto(v int, row []float64, h *indexedHeap) bool {
	g.shortestPathsInto(v, row, h)
	for _, x := range row {
		if math.IsInf(x, 1) {
			return false
		}
	}
	return true
}
