package netsim

import (
	"fmt"
	"math"
	"sort"

	"quorumplace/internal/obs"
)

// Windowed SLO accounting: when enabled on a Recorder, every simulated
// access is folded into a rolling virtual-time window tracking the access
// delay distribution (p50/p99/p99.9 via the obs log-linear histogram),
// per-node load skew, and the failure-path burn rates (aborts and retries
// per access). The windows form a time series — the operational view a
// long-lived placement daemon needs — and CheckSLO grades them against
// declared targets, giving CI and tools an exit-nonzero signal when a
// placement's tail latency or load balance degrades mid-run rather than
// only in end-of-run aggregate.

// SLOTargets declares per-window service-level objectives. A zero field is
// unchecked, so callers state only the objectives they care about.
type SLOTargets struct {
	// P50, P99 and P999 bound the windowed access-delay quantiles (virtual
	// time units).
	P50  float64 `json:"p50,omitempty"`
	P99  float64 `json:"p99,omitempty"`
	P999 float64 `json:"p999,omitempty"`
	// MaxLoadSkew bounds max/mean per-node message load within a window
	// (1 = perfectly even; the paper's load-dispersion motivation made
	// operational).
	MaxLoadSkew float64 `json:"max_load_skew,omitempty"`
	// MaxAbortRate bounds aborted accesses per access in a window (failure
	// simulator: retry budget exhausted).
	MaxAbortRate float64 `json:"max_abort_rate,omitempty"`
	// MaxRetriesPerAccess bounds total retries per access in a window.
	MaxRetriesPerAccess float64 `json:"max_retries_per_access,omitempty"`
}

// SLOWindow is one finalized rolling window of a run.
type SLOWindow struct {
	Run        int     `json:"run"`
	Index      int     `json:"index"`
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	Accesses   int64   `json:"accesses"`
	Aborts     int64   `json:"aborts"`
	Retries    int64   `json:"retries"`
	P50        float64 `json:"p50"`
	P99        float64 `json:"p99"`
	P999       float64 `json:"p999"`
	MaxLatency float64 `json:"max_latency"`
	// LoadSkew is max over nodes of window message hits divided by the mean
	// over all nodes of the run's network (0 when the window saw no
	// messages).
	LoadSkew float64 `json:"load_skew"`
	NodeHits []int64 `json:"node_hits,omitempty"`
}

// SLOViolation is one target breached by one window.
type SLOViolation struct {
	Run    int     `json:"run"`
	Window int     `json:"window"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Limit  float64 `json:"limit"`
}

func (v SLOViolation) String() string {
	return fmt.Sprintf("run %d window %d: %s = %.6g exceeds target %.6g",
		v.Run, v.Window, v.Metric, v.Value, v.Limit)
}

// CheckSLO grades windows against targets and returns every breach, in
// window order. Empty result means the run held its objectives.
func CheckSLO(windows []SLOWindow, t SLOTargets) []SLOViolation {
	var out []SLOViolation
	add := func(w SLOWindow, metric string, value, limit float64) {
		if limit > 0 && value > limit {
			out = append(out, SLOViolation{Run: w.Run, Window: w.Index, Metric: metric, Value: value, Limit: limit})
		}
	}
	for _, w := range windows {
		if w.Accesses > 0 {
			add(w, "p50_delay", w.P50, t.P50)
			add(w, "p99_delay", w.P99, t.P99)
			add(w, "p999_delay", w.P999, t.P999)
			add(w, "abort_rate", float64(w.Aborts)/float64(w.Accesses), t.MaxAbortRate)
			add(w, "retries_per_access", float64(w.Retries)/float64(w.Accesses), t.MaxRetriesPerAccess)
		}
		add(w, "load_skew", w.LoadSkew, t.MaxLoadSkew)
	}
	return out
}

// sloKey identifies one window of one run.
type sloKey struct{ run, idx int }

// sloAcc accumulates one window. Completions arrive out of virtual-time
// order (the event queue orders issues, not completions), so windows live
// in a map keyed by completion-time window index and are finalized at read
// time rather than sealed in sequence.
type sloAcc struct {
	hist     *obs.LogHist
	accesses int64
	aborts   int64
	retries  int64
	nodeHits []int64
}

// EnableSLO turns on windowed SLO accounting for subsequent runs on this
// recorder, with windows of the given span of virtual time. It must be
// called before the runs it should observe; a window span ≤ 0 disables.
func (r *Recorder) EnableSLO(window float64) {
	r.mu.Lock()
	r.sloWindow = window
	if window > 0 && r.sloAccs == nil {
		r.sloAccs = make(map[sloKey]*sloAcc)
		r.sloNodes = make(map[int]int)
	}
	r.mu.Unlock()
}

// sloEnabled reports whether SLO accounting is on; simulators read it once
// per run.
func (r *Recorder) sloEnabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sloWindow > 0
}

// sloSetNodes registers the network size of a run, sizing per-window node
// hit vectors and the load-skew denominator.
func (r *Recorder) sloSetNodes(run, n int) {
	r.mu.Lock()
	r.sloNodes[run] = n
	r.mu.Unlock()
}

// sloAcc returns the accumulator of the window containing virtual time at,
// creating it on first touch. Caller holds r.mu.
func (r *Recorder) sloAccFor(run int, at float64) *sloAcc {
	idx := int(at / r.sloWindow)
	k := sloKey{run: run, idx: idx}
	a := r.sloAccs[k]
	if a == nil {
		a = &sloAcc{hist: obs.NewLogHist()}
		if n := r.sloNodes[run]; n > 0 {
			a.nodeHits = make([]int64, n)
		}
		r.sloAccs[k] = a
	}
	return a
}

// sloAccess folds one completed access into the window of its completion
// time: its latency sample (successful accesses only), retry count, abort
// flag, and the nodes its messages hit (nil for accesses whose message
// accounting happens at issue time, e.g. the queueing simulator).
func (r *Recorder) sloAccess(run int, at, latency float64, retries int64, aborted bool, nodes []int) {
	r.mu.Lock()
	a := r.sloAccFor(run, at)
	a.accesses++
	a.retries += retries
	if aborted {
		a.aborts++
	} else {
		a.hist.Observe(latency)
	}
	for _, v := range nodes {
		if v < len(a.nodeHits) {
			a.nodeHits[v]++
		}
	}
	r.mu.Unlock()
}

// sloNodeHits charges message hits to the window containing at, for
// simulators whose messages land in a different window than the access
// completion (queueing: hits at issue, completion later).
func (r *Recorder) sloNodeHits(run int, at float64, nodes []int) {
	r.mu.Lock()
	a := r.sloAccFor(run, at)
	for _, v := range nodes {
		if v < len(a.nodeHits) {
			a.nodeHits[v]++
		}
	}
	r.mu.Unlock()
}

// SLOWindows finalizes and returns the recorded windows ordered by (run,
// window index). Quantiles carry the obs.LogHist relative error bound
// (≤ 1/128); counts are exact.
func (r *Recorder) SLOWindows() []SLOWindow {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sloWindow <= 0 || len(r.sloAccs) == 0 {
		return nil
	}
	keys := make([]sloKey, 0, len(r.sloAccs))
	for k := range r.sloAccs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].run != keys[j].run {
			return keys[i].run < keys[j].run
		}
		return keys[i].idx < keys[j].idx
	})
	out := make([]SLOWindow, 0, len(keys))
	for _, k := range keys {
		a := r.sloAccs[k]
		w := SLOWindow{
			Run:        k.run,
			Index:      k.idx,
			Start:      float64(k.idx) * r.sloWindow,
			End:        float64(k.idx+1) * r.sloWindow,
			Accesses:   a.accesses,
			Aborts:     a.aborts,
			Retries:    a.retries,
			P50:        a.hist.Quantile(0.50),
			P99:        a.hist.Quantile(0.99),
			P999:       a.hist.Quantile(0.999),
			MaxLatency: a.hist.Max(),
			NodeHits:   append([]int64(nil), a.nodeHits...),
		}
		if n := len(a.nodeHits); n > 0 {
			var total, max int64
			for _, h := range a.nodeHits {
				total += h
				if h > max {
					max = h
				}
			}
			if total > 0 {
				w.LoadSkew = float64(max) * float64(n) / float64(total)
			}
		}
		out = append(out, w)
	}
	return out
}

// CheckSLO grades this recorder's windows against targets; a convenience
// over SLOWindows + the package CheckSLO.
func (r *Recorder) CheckSLO(t SLOTargets) []SLOViolation {
	return CheckSLO(r.SLOWindows(), t)
}

// FormatSLOWindows renders windows as an aligned table with one row per
// window, the form quorumstat prints and operators eyeball.
func FormatSLOWindows(windows []SLOWindow) string {
	if len(windows) == 0 {
		return "no SLO windows recorded\n"
	}
	var b []byte
	b = fmt.Appendf(b, "%-4s %-7s %12s %9s %7s %7s %9s %9s %9s %9s\n",
		"run", "window", "span", "accesses", "aborts", "retries", "p50", "p99", "p99.9", "skew")
	for _, w := range windows {
		b = fmt.Appendf(b, "%-4d %-7d [%4.6g,%4.6g) %9d %7d %7d %9.4g %9.4g %9.4g %9.3g\n",
			w.Run, w.Index, w.Start, w.End, w.Accesses, w.Aborts, w.Retries, w.P50, w.P99, w.P999, w.LoadSkew)
	}
	return string(b)
}

// ParseSLOTargets parses a comma-separated target spec, e.g.
// "p99=4,p999=6,skew=2.5,abort=0.01,retries=0.2,p50=2". Unknown keys and
// malformed numbers are errors; an empty spec yields zero targets.
func ParseSLOTargets(spec string) (SLOTargets, error) {
	var t SLOTargets
	if spec == "" {
		return t, nil
	}
	for _, part := range splitComma(spec) {
		k, vs, ok := cutEq(part)
		if !ok {
			return t, fmt.Errorf("netsim: SLO target %q is not key=value", part)
		}
		var v float64
		if _, err := fmt.Sscanf(vs, "%g", &v); err != nil || math.IsNaN(v) || v < 0 {
			return t, fmt.Errorf("netsim: SLO target %s has bad value %q", k, vs)
		}
		switch k {
		case "p50":
			t.P50 = v
		case "p99":
			t.P99 = v
		case "p999":
			t.P999 = v
		case "skew":
			t.MaxLoadSkew = v
		case "abort":
			t.MaxAbortRate = v
		case "retries":
			t.MaxRetriesPerAccess = v
		default:
			return t, fmt.Errorf("netsim: unknown SLO target %q (want p50/p99/p999/skew/abort/retries)", k)
		}
	}
	return t, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func cutEq(s string) (k, v string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}
