package netsim

import (
	"math"
	"sort"
	"sync"

	"quorumplace/internal/heat"
	"quorumplace/internal/obs"
)

// Sharded engine for RunQueueing: conservative-window PDES. Unlike the
// propagation-only simulators, queueing clients interact through the node
// FIFOs, so the shards cannot run to completion independently. Each shard
// owns a block of clients and the identically indexed block of nodes;
// messages between a client and a node in different shards become
// cross-shard events exchanged at barriers. Workers repeatedly process
// the window [T, T+L) of virtual time, where T is the minimum pending
// event time across shards and the lookahead L is the minimum
// client↔hosting-node distance over cross-shard pairs: an event processed
// at t ∈ [T, T+L) can only generate cross-shard events at t + D ≥ t + L ≥
// T + L, outside the window, so every shard already holds all its events
// below T+L when the window opens and processes them in canonical order.

// pqEvent is an event of the sharded queueing engine. Unlike the legacy
// queueEvent it has no insertion-order seq: ties at equal virtual time
// break on the event identity (kind, client, access, node, slot), which
// is a total order — no two distinct events share all five — and is the
// same in every execution, which is what makes the windowed runs
// bitwise-reproducible. kind 3 (response) is new relative to the legacy
// engine: the response propagation back to the client is an explicit
// event so it can cross shards, carrying the probe's queue-wait and
// service time for the client-side trace.
type pqEvent struct {
	at        float64
	wait, svc float64 // kind 3: queue wait and service of the answered message
	kind      int     // 0 issue, 1 arrival, 2 service done, 3 response
	client    int
	access    int
	node      int
	slot      int // member slot within the access's quorum
}

func pqLess(a, b pqEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.client != b.client {
		return a.client < b.client
	}
	if a.access != b.access {
		return a.access < b.access
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.slot < b.slot
}

// pqHeap is a value-typed binary min-heap over the canonical event order.
type pqHeap []pqEvent

func (h *pqHeap) push(e pqEvent) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !pqLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *pqHeap) pop() pqEvent {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	*h = q
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < last && pqLess(q[l], q[m]) {
			m = l
		}
		if r < last && pqLess(q[r], q[m]) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// queueLookahead computes the conservative lookahead: the minimum
// distance, in either direction, between a client and a quorum-hosting
// node that live in different shards. Only hosting nodes receive or send
// messages, so the scan is O(n·|hosting|), not O(n²).
func queueLookahead(cfg *QueueConfig, n, W int) float64 {
	ins := cfg.Instance
	hosting := make([]bool, n)
	for u := 0; u < ins.Sys.Universe(); u++ {
		hosting[cfg.Placement.Node(u)] = true
	}
	L := math.Inf(1)
	for v := 0; v < n; v++ {
		sv := shardOfEntity(v, n, W)
		row := ins.M.Row(v)
		for h := 0; h < n; h++ {
			if !hosting[h] || shardOfEntity(h, n, W) == sv {
				continue
			}
			if d := row[h]; d < L {
				L = d
			}
			if d := ins.M.D(h, v); d < L {
				L = d
			}
		}
	}
	return L
}

// queueWorker is one shard of the windowed queueing engine, owning the
// clients and nodes in [lo, hi).
type queueWorker struct {
	cfg         *QueueConfig
	id          int
	lo, hi      int
	n           int
	W           int
	cdf         []float64
	acc         float64
	serviceMean []float64
	rec         *Recorder
	runID       int
	slo         bool
	sampleEvery int
	traceSeed   uint64
	ht          *heat.Sketch
	sh          *obs.Shard
	peers       []*queueWorker

	h            pqHeap
	clientStream []prng
	nodeStream   []prng
	states       []accessState // owned clients × AccessesPerClient
	inFlight     int
	accesses     int
	events       int64
	lastAt       float64

	// Per-node FIFO state (owned node range only).
	msgs         []pendingMsg
	freeMsg      int
	qHead, qTail []int
	qLen         []int
	busy         []bool
	busyTime     []float64
	waitPerNode  []float64
	msgCount     int
	maxNodeQueue int
	nodeHits     []int64

	// outbox[d] buffers events destined for shard d, handed over at the
	// next barrier.
	outbox [][]pqEvent

	latBuf   []latRec
	traces   []keyedTrace
	ts       *tsState
	tsBuf    []TSample
	accNodes []int
}

// owner returns the shard that owns an event: node events (arrival,
// service) belong to the node's shard, client events (issue, response) to
// the client's.
func (w *queueWorker) owner(e *pqEvent) int {
	if e.kind == 1 || e.kind == 2 {
		return shardOfEntity(e.node, w.n, w.W)
	}
	return shardOfEntity(e.client, w.n, w.W)
}

// send routes an event to its owning shard: the local heap, or the
// outbox for delivery at the next barrier.
func (w *queueWorker) send(e pqEvent) {
	if d := w.owner(&e); d != w.id {
		w.outbox[d] = append(w.outbox[d], e)
		return
	}
	w.h.push(e)
}

// seed precomputes the owned clients' Poisson issue schedules from their
// private streams and initializes the node service streams.
func (w *queueWorker) seed() {
	cfg := w.cfg
	for i := range w.clientStream {
		w.clientStream[i] = newPRNG(cfg.Seed, streamAccess, w.lo+i)
	}
	for i := range w.nodeStream {
		w.nodeStream[i] = newPRNG(cfg.Seed, streamService, w.lo+i)
	}
	for v := w.lo; v < w.hi; v++ {
		st := &w.clientStream[v-w.lo]
		t := 0.0
		for a := 0; a < cfg.AccessesPerClient; a++ {
			t += st.ExpFloat64() / cfg.ArrivalRate
			w.h.push(pqEvent{at: t, kind: 0, client: v, access: a})
		}
	}
	for v := w.lo; v < w.hi; v++ {
		w.qHead[v-w.lo], w.qTail[v-w.lo] = -1, -1
	}
	w.freeMsg = -1
}

// ingest drains every peer's outbox row for this shard into the local
// heap. Called inside a barrier phase: peers filled the rows during the
// previous process phase and will not touch them again until after this
// phase completes.
func (w *queueWorker) ingest() {
	for _, p := range w.peers {
		if p == w {
			continue
		}
		for _, e := range p.outbox[w.id] {
			w.h.push(e)
		}
	}
}

// top returns the time of the earliest pending local event, or +Inf.
func (w *queueWorker) top() float64 {
	if len(w.h) == 0 {
		return math.Inf(1)
	}
	return w.h[0].at
}

func (w *queueWorker) allocMsg(m pendingMsg) int {
	if i := w.freeMsg; i >= 0 {
		w.freeMsg = w.msgs[i].next
		w.msgs[i] = m
		return i
	}
	w.msgs = append(w.msgs, m)
	return len(w.msgs) - 1
}

func (w *queueWorker) enqueue(v int, m pendingMsg) {
	m.next = -1
	i := w.allocMsg(m)
	r := v - w.lo
	if w.qTail[r] < 0 {
		w.qHead[r] = i
	} else {
		w.msgs[w.qTail[r]].next = i
	}
	w.qTail[r] = i
	w.qLen[r]++
}

func (w *queueWorker) dequeue(v int) {
	r := v - w.lo
	i := w.qHead[r]
	w.qHead[r] = w.msgs[i].next
	if w.qHead[r] < 0 {
		w.qTail[r] = -1
	}
	w.qLen[r]--
	w.msgs[i].next = w.freeMsg
	w.freeMsg = i
}

func (w *queueWorker) startService(v int, now float64) {
	r := v - w.lo
	if w.busy[r] || w.qLen[r] == 0 {
		return
	}
	w.busy[r] = true
	msg := w.msgs[w.qHead[r]]
	wait := now - msg.arrivedAt
	w.waitPerNode[r] += wait
	w.msgCount++
	svc := 0.0
	if w.serviceMean[v] > 0 {
		svc = w.nodeStream[r].ExpFloat64() * w.serviceMean[v]
	}
	w.busyTime[r] += svc
	w.send(pqEvent{at: now + svc, wait: wait, svc: svc, kind: 2,
		client: msg.client, access: msg.access, node: v, slot: msg.slot})
}

// fillSample populates one time-series boundary with this shard's share
// of the gauges (own clients' in-flight/completed counts, own nodes' hit
// counts and queue depths); boundaries merge additively across shards.
func (w *queueWorker) fillSample(at float64, s *TSample) {
	s.InFlight = w.inFlight
	s.Accesses = w.accesses
	s.NodeHits = append([]int64(nil), w.nodeHits...)
	depth := make([]int, w.n)
	copy(depth[w.lo:w.hi], w.qLen)
	s.QueueDepth = depth
}

// process runs every pending local event with at < limit, buffering
// cross-shard sends. Within the window all of the shard's events below
// limit are present (the conservative-window invariant), so popping the
// canonical heap processes them in exactly the order a single global
// canonical heap would.
func (w *queueWorker) process(limit float64) {
	cfg := w.cfg
	ins := cfg.Instance
	nQ := ins.Sys.NumQuorums()
	for len(w.h) > 0 && w.h[0].at < limit {
		e := w.h.pop()
		w.events++
		if w.ts != nil {
			w.ts.advance(e.at, w.fillSample)
		}
		w.lastAt = e.at
		switch e.kind {
		case 0: // client issues an access
			st := &w.states[(e.client-w.lo)*cfg.AccessesPerClient+e.access]
			cs := &w.clientStream[e.client-w.lo]
			qi := sort.SearchFloat64s(w.cdf, cs.Float64()*w.acc)
			if qi >= nQ {
				qi = nQ - 1
			}
			row := ins.M.Row(e.client)
			q := ins.Sys.Quorum(qi)
			st.remaining = len(q)
			st.issuedAt = e.at
			st.lastResp = 0
			w.inFlight++
			if w.rec != nil && shouldTraceDet(w.traceSeed, e.client, e.access, w.sampleEvery) {
				st.tr = &AccessTrace{Run: w.runID, Client: e.client, Quorum: qi, Start: e.at}
				st.tr.Probes = make([]ProbeSpan, len(q))
			}
			w.accNodes = w.accNodes[:0]
			for slot, u := range q {
				node := cfg.Placement.Node(u)
				if st.tr != nil {
					st.tr.Probes[slot] = ProbeSpan{
						Member: u, Node: node, Dispatch: e.at,
						NetDelay: row[node] + ins.M.D(node, e.client),
					}
				}
				if w.accNodes != nil {
					w.accNodes = append(w.accNodes, node)
				}
				w.send(pqEvent{at: e.at + row[node], kind: 1,
					client: e.client, access: e.access, node: node, slot: slot})
			}
			if w.slo {
				w.rec.sloNodeHits(w.runID, e.at, w.accNodes)
			}
			if w.ht != nil {
				w.ht.Observe(e.at, e.client, w.accNodes)
			}
		case 1: // message arrives at an owned node's queue
			w.enqueue(e.node, pendingMsg{
				client: e.client, access: e.access, arrivedAt: e.at, slot: e.slot,
			})
			w.nodeHits[e.node]++
			if w.qLen[e.node-w.lo] > w.maxNodeQueue {
				w.maxNodeQueue = w.qLen[e.node-w.lo]
			}
			w.startService(e.node, e.at)
		case 2: // service completes; response propagates back to the client
			w.dequeue(e.node)
			w.busy[e.node-w.lo] = false
			w.startService(e.node, e.at)
			w.send(pqEvent{at: e.at + ins.M.D(e.node, e.client),
				wait: e.wait, svc: e.svc, kind: 3,
				client: e.client, access: e.access, node: e.node, slot: e.slot})
		case 3: // response reaches the client
			st := &w.states[(e.client-w.lo)*cfg.AccessesPerClient+e.access]
			st.remaining--
			if st.tr != nil {
				p := &st.tr.Probes[e.slot]
				p.QueueWait = e.wait
				p.Service = e.svc
				p.Complete = e.at
			}
			if e.at > st.lastResp {
				st.lastResp = e.at
			}
			if st.remaining == 0 {
				w.accesses++
				lat := st.lastResp - st.issuedAt
				w.latBuf = append(w.latBuf, latRec{at: st.lastResp, lat: lat, client: int32(e.client)})
				w.sh.Observe("netsim.access_latency", lat)
				if w.slo {
					w.rec.sloAccess(w.runID, st.lastResp, lat, 0, false, nil)
				}
				if st.tr != nil {
					st.tr.End = st.lastResp
					st.tr.Latency = lat
					markStraggler(st.tr)
					w.traces = append(w.traces, keyedTrace{at: st.lastResp, client: e.client, access: e.access, tr: *st.tr})
					st.tr = nil
				}
				w.inFlight--
			}
		}
	}
}

// qCmd is one barrier phase instruction from the coordinator.
type qCmd struct {
	op    int     // 0 = ingest + report top, 1 = process window
	limit float64 // window end for op 1
}

// runQueueingSharded is the Workers > 0 engine behind RunQueueing.
func runQueueingSharded(cfg QueueConfig) (*QueueStats, error) {
	ins := cfg.Instance
	n := ins.M.N()
	cdf, acc := quorumCDF(ins)
	serviceMean := make([]float64, n)
	for v := 0; v < n; v++ {
		if ins.Cap[v] > 0 {
			serviceMean[v] = cfg.ServiceMean / ins.Cap[v]
		}
	}
	W := clampWorkers(cfg.Workers, n)
	L := math.Inf(1)
	if W > 1 {
		L = queueLookahead(&cfg, n, W)
		if L <= 0 {
			// A zero-distance cross-shard pair admits no safe window. Fall
			// back to one shard: by partition independence the single-shard
			// run produces the same bits as any windowed run would.
			W = 1
			L = math.Inf(1)
		}
	}

	sp := obs.Start("netsim.queueing")
	defer sp.End()

	rec := recorderFor(cfg.Recorder)
	runID := 0
	if rec != nil {
		runID = rec.beginRun()
	}
	slo := rec != nil && rec.sloEnabled()
	if slo {
		rec.sloSetNodes(runID, n)
	}
	sampleEvery := 1
	if rec != nil {
		sampleEvery = rec.sampleEveryN()
	}
	ht := heatFor(cfg.Heat)
	shards := heatShards(ht, W)
	traceSeed := traceSeedFor(cfg.Seed)

	ws := make([]*queueWorker, W)
	for i := 0; i < W; i++ {
		lo, hi := i*n/W, (i+1)*n/W
		w := &queueWorker{
			cfg: &cfg, id: i, lo: lo, hi: hi, n: n, W: W,
			cdf: cdf, acc: acc, serviceMean: serviceMean,
			rec: rec, runID: runID, slo: slo,
			sampleEvery: sampleEvery, traceSeed: traceSeed,
			sh:           obs.NewShard(sp),
			clientStream: make([]prng, hi-lo),
			nodeStream:   make([]prng, hi-lo),
			states:       make([]accessState, (hi-lo)*cfg.AccessesPerClient),
			qHead:        make([]int, hi-lo),
			qTail:        make([]int, hi-lo),
			qLen:         make([]int, hi-lo),
			busy:         make([]bool, hi-lo),
			busyTime:     make([]float64, hi-lo),
			waitPerNode:  make([]float64, hi-lo),
			nodeHits:     make([]int64, n),
			outbox:       make([][]pqEvent, W),
		}
		if ht != nil {
			w.ht = shards[i]
		}
		if slo || w.ht != nil {
			w.accNodes = make([]int, 0, 16)
		}
		w.ts = newTSStateSink(rec, runID, func(s TSample) { w.tsBuf = append(w.tsBuf, s) })
		ws[i] = w
	}
	for _, w := range ws {
		w.peers = ws
	}

	var rounds int64
	if W == 1 {
		w := ws[0]
		w.seed()
		w.process(math.Inf(1))
	} else {
		cmds := make([]chan qCmd, W)
		acks := make(chan int, W)
		var wg sync.WaitGroup
		for i, w := range ws {
			cmds[i] = make(chan qCmd)
			wg.Add(1)
			go func(w *queueWorker, cmd <-chan qCmd) {
				defer wg.Done()
				w.seed()
				for c := range cmd {
					if c.op == 0 {
						w.ingest()
					} else {
						for d := range w.outbox {
							w.outbox[d] = w.outbox[d][:0]
						}
						w.process(c.limit)
					}
					acks <- w.id
				}
			}(w, cmds[i])
		}
		barrier := func(c qCmd) {
			for _, ch := range cmds {
				ch <- c
			}
			for range cmds {
				<-acks
			}
		}
		for {
			barrier(qCmd{op: 0})
			T := math.Inf(1)
			for _, w := range ws {
				if t := w.top(); t < T {
					T = t
				}
			}
			if math.IsInf(T, 1) {
				break
			}
			barrier(qCmd{op: 1, limit: T + L})
			rounds++
		}
		for _, ch := range cmds {
			close(ch)
		}
		wg.Wait()
	}
	obs.Count("netsim.pdes_rounds", rounds)

	stats := &QueueStats{Utilization: make([]float64, n)}
	maxAt := 0.0
	for _, w := range ws {
		if w.lastAt > maxAt {
			maxAt = w.lastAt
		}
	}
	latBufs := make([][]latRec, W)
	traceBufs := make([][]keyedTrace, W)
	tsBufs := make([][]TSample, W)
	var msgCount int
	for i, w := range ws {
		if w.ts != nil {
			w.ts.advance(maxAt, w.fillSample)
		}
		stats.Accesses += w.accesses
		msgCount += w.msgCount
		latBufs[i] = w.latBuf
		traceBufs[i] = w.traces
		tsBufs[i] = w.tsBuf
		w.sh.Count("netsim.events", w.events)
		w.sh.GaugeMax("netsim.max_queue_depth", float64(w.maxNodeQueue))
		w.sh.Merge()
	}
	stats.Clock = maxAt
	// Per-node float accumulators fold in node index order — the same fold
	// for every partition.
	var waitSum float64
	for v := 0; v < n; v++ {
		w := ws[shardOfEntity(v, n, W)]
		waitSum += w.waitPerNode[v-w.lo]
	}
	var scratch Stats
	latencySum := mergeLatRecs(&scratch, latBufs)
	if stats.Accesses > 0 {
		stats.AvgLatency = latencySum / float64(stats.Accesses)
	}
	if msgCount > 0 {
		stats.AvgWait = waitSum / float64(msgCount)
	}
	if stats.Clock > 0 {
		for v := 0; v < n; v++ {
			w := ws[shardOfEntity(v, n, W)]
			stats.Utilization[v] = w.busyTime[v-w.lo] / stats.Clock
		}
	}
	if rec != nil {
		traced := mergeTraces(rec, traceBufs)
		obs.Count("netsim.traced_accesses", traced)
		mergeSamples(rec, tsBufs)
	}
	if err := mergeHeatShards(ht, shards); err != nil {
		return nil, err
	}
	return stats, nil
}
