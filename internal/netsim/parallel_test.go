package netsim

import (
	"math"
	"reflect"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/heat"
	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// Differential tests for the sharded engines (parallel*.go): the output of
// Workers = W must be bitwise identical for every W ≥ 1, with telemetry on
// and off, trace for trace and sample for sample. Workers = 1 is the
// sharded engine's sequential reference, so parallel == sequential within
// the deterministic-schedule contract documented on Config.Workers.

// shardedArtifacts is everything a sharded run externalizes: the stats
// struct, and — when telemetry is on — the recorded traces, time-series
// samples, SLO windows, the heat sketch, and the obs counters.
type shardedArtifacts struct {
	stats    interface{}
	traces   []AccessTrace
	series   []TSample
	slo      []SLOWindow
	ht       *heat.Sketch
	counters map[string]int64
}

// diffCounters are the obs counters that must agree bit for bit across
// worker counts. netsim.pdes_rounds is intentionally absent: the number of
// conservative windows depends on the partition.
var diffCounters = []string{
	"netsim.events", "netsim.messages", "netsim.retries", "netsim.traced_accesses",
}

// runWithTelemetry runs body with a fresh recorder (tracing every 3rd
// access, time series, SLO windows), heat sketch and obs collector, and
// collects the artifacts.
func runWithTelemetry(t *testing.T, body func(rec *Recorder, ht *heat.Sketch) interface{}) shardedArtifacts {
	t.Helper()
	rec := NewRecorder(1<<16, 3, 0.5)
	rec.EnableSLO(2.0)
	ht := heat.New(heat.Options{EpochLen: 1, HalfLife: 4})
	prev := obs.Active()
	col := obs.Enable(obs.NewCollector())
	defer obs.Enable(prev)
	stats := body(rec, ht)
	snap := col.Snapshot()
	counters := make(map[string]int64)
	for _, k := range diffCounters {
		counters[k] = snap.Counters[k]
	}
	return shardedArtifacts{
		stats:    stats,
		traces:   rec.Traces(),
		series:   rec.Series(),
		slo:      rec.SLOWindows(),
		ht:       ht,
		counters: counters,
	}
}

func checkInvariant(t *testing.T, name string, ref, got shardedArtifacts, workers int) {
	t.Helper()
	if !reflect.DeepEqual(ref.stats, got.stats) {
		t.Errorf("%s: workers=%d stats differ from workers=1:\n%+v\nvs\n%+v", name, workers, got.stats, ref.stats)
	}
	if !reflect.DeepEqual(ref.traces, got.traces) {
		t.Errorf("%s: workers=%d traces differ (%d vs %d)", name, workers, len(got.traces), len(ref.traces))
	}
	if !reflect.DeepEqual(ref.series, got.series) {
		t.Errorf("%s: workers=%d time series differ (%d vs %d samples)", name, workers, len(got.series), len(ref.series))
	}
	if !reflect.DeepEqual(ref.slo, got.slo) {
		t.Errorf("%s: workers=%d SLO windows differ", name, workers)
	}
	if ref.ht != nil && !ref.ht.Equal(got.ht) {
		t.Errorf("%s: workers=%d heat sketch differs from workers=1", name, workers)
	}
	if !reflect.DeepEqual(ref.counters, got.counters) {
		t.Errorf("%s: workers=%d counters %v, want %v", name, workers, got.counters, ref.counters)
	}
}

func TestShardedRunWorkerInvariance(t *testing.T) {
	ins, p := buildInstance(t)
	for _, mode := range []Mode{Parallel, Sequential} {
		run := func(workers int, rec *Recorder, ht *heat.Sketch) interface{} {
			stats, err := Run(Config{
				Instance: ins, Placement: p, Mode: mode,
				AccessesPerClient: 40, InterAccessTime: 0.3, Seed: 11,
				Workers: workers, Recorder: rec, Heat: ht,
			})
			if err != nil {
				t.Fatal(err)
			}
			return stats
		}
		// Telemetry on: traces, series, SLO, heat, counters all pinned.
		ref := runWithTelemetry(t, func(rec *Recorder, ht *heat.Sketch) interface{} { return run(1, rec, ht) })
		for w := 2; w <= 8; w++ {
			got := runWithTelemetry(t, func(rec *Recorder, ht *heat.Sketch) interface{} { return run(w, rec, ht) })
			checkInvariant(t, "run/telemetry", ref, got, w)
		}
		// Telemetry off: the bare stats are still pinned.
		bare := run(1, nil, nil)
		for w := 2; w <= 8; w++ {
			if got := run(w, nil, nil); !reflect.DeepEqual(bare, got) {
				t.Errorf("run/bare: workers=%d stats differ from workers=1", w)
			}
		}
	}
}

func TestShardedFailuresWorkerInvariance(t *testing.T) {
	ins, p := buildInstance(t)
	run := func(workers int, rec *Recorder, ht *heat.Sketch) interface{} {
		stats, err := RunWithFailures(FailureConfig{
			Instance: ins, Placement: p, Mode: Parallel,
			NodeFailureProb: 0.2, MaxRetries: 2, RetryPenalty: 0.5,
			AccessesPerClient: 40, Seed: 13,
			Workers: workers, Recorder: rec, Heat: ht,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	ref := runWithTelemetry(t, func(rec *Recorder, ht *heat.Sketch) interface{} { return run(1, rec, ht) })
	st := ref.stats.(*FailureStats)
	if st.Retries == 0 || st.FailedOutright == 0 {
		t.Fatalf("test config exercises no retries/aborts: %+v", st)
	}
	for w := 2; w <= 8; w++ {
		got := runWithTelemetry(t, func(rec *Recorder, ht *heat.Sketch) interface{} { return run(w, rec, ht) })
		checkInvariant(t, "failures/telemetry", ref, got, w)
	}
	bare := run(1, nil, nil)
	for w := 2; w <= 8; w++ {
		if got := run(w, nil, nil); !reflect.DeepEqual(bare, got) {
			t.Errorf("failures/bare: workers=%d stats differ from workers=1", w)
		}
	}
}

func TestShardedQueueingWorkerInvariance(t *testing.T) {
	ins, p := buildInstance(t)
	run := func(workers int, rec *Recorder, ht *heat.Sketch) interface{} {
		stats, err := RunQueueing(QueueConfig{
			Instance: ins, Placement: p,
			ArrivalRate: 0.8, ServiceMean: 0.2,
			AccessesPerClient: 30, Seed: 17,
			Workers: workers, Recorder: rec, Heat: ht,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	ref := runWithTelemetry(t, func(rec *Recorder, ht *heat.Sketch) interface{} { return run(1, rec, ht) })
	for w := 2; w <= 8; w++ {
		got := runWithTelemetry(t, func(rec *Recorder, ht *heat.Sketch) interface{} { return run(w, rec, ht) })
		checkInvariant(t, "queueing/telemetry", ref, got, w)
	}
	bare := run(1, nil, nil)
	for w := 2; w <= 8; w++ {
		if got := run(w, nil, nil); !reflect.DeepEqual(bare, got) {
			t.Errorf("queueing/bare: workers=%d stats differ from workers=1", w)
		}
	}
}

// TestShardedQueueingWindowedPathEngaged pins that the multi-worker
// queueing runs above actually exercised the conservative-window protocol
// (rather than silently falling back to one shard): the grid metric has
// strictly positive cross-shard distances, so the lookahead is positive and
// at least one barrier round must run.
func TestShardedQueueingWindowedPathEngaged(t *testing.T) {
	ins, p := buildInstance(t)
	prev := obs.Active()
	col := obs.Enable(obs.NewCollector())
	defer obs.Enable(prev)
	_, err := RunQueueing(QueueConfig{
		Instance: ins, Placement: p,
		ArrivalRate: 0.8, ServiceMean: 0.2,
		AccessesPerClient: 30, Seed: 17, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds := col.Snapshot().Counters["netsim.pdes_rounds"]; rounds <= 0 {
		t.Fatalf("pdes_rounds = %d, want > 0 (windowed path not engaged)", rounds)
	}
}

// TestShardedQueueingZeroLookaheadFallback: a pseudometric with a
// zero-distance cross-shard client↔host pair admits no safe window; the
// engine must fall back to one shard and still match Workers = 1 exactly.
func TestShardedQueueingZeroLookaheadFallback(t *testing.T) {
	d := [][]float64{
		{0, 1, 0, 1},
		{1, 0, 1, 1},
		{0, 1, 0, 1},
		{1, 1, 1, 0},
	}
	m, err := graph.NewMetricFromMatrix(d)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Grid(2)
	ins, err := placement.NewInstance(m, []float64{1, 1, 1, 1}, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement([]int{0, 1, 2, 3})
	run := func(workers int) *QueueStats {
		stats, err := RunQueueing(QueueConfig{
			Instance: ins, Placement: p,
			ArrivalRate: 1, ServiceMean: 0.3,
			AccessesPerClient: 25, Seed: 23, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	if L := queueLookahead(&QueueConfig{Instance: ins, Placement: p}, 4, 2); L != 0 {
		t.Fatalf("lookahead = %v, want 0 (test topology broken)", L)
	}
	ref := run(1)
	for w := 2; w <= 4; w++ {
		if got := run(w); !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d differs from workers=1 under zero lookahead", w)
		}
	}
}

// TestShardOfEntityInvertsPartition: shardOfEntity must be the exact
// inverse of the block bounds every engine uses (lo, hi = s·n/w,
// (s+1)·n/w) — the queueing engine routes cross-shard events with it, so
// an off-by-one here is an out-of-bounds FIFO index.
func TestShardOfEntityInvertsPartition(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for w := 1; w <= n; w++ {
			for s := 0; s < w; s++ {
				for v := s * n / w; v < (s+1)*n/w; v++ {
					if got := shardOfEntity(v, n, w); got != s {
						t.Fatalf("shardOfEntity(%d, n=%d, w=%d) = %d, want %d", v, n, w, got, s)
					}
				}
			}
		}
	}
}

func TestShardedWorkersValidation(t *testing.T) {
	ins, p := buildInstance(t)
	if _, err := Run(Config{Instance: ins, Placement: p, AccessesPerClient: 1, Workers: -1}); err == nil {
		t.Error("Run accepted Workers = -1")
	}
	if _, err := RunWithFailures(FailureConfig{Instance: ins, Placement: p, AccessesPerClient: 1, Workers: -1}); err == nil {
		t.Error("RunWithFailures accepted Workers = -1")
	}
	if _, err := RunQueueing(QueueConfig{Instance: ins, Placement: p, ArrivalRate: 1, AccessesPerClient: 1, Workers: -1}); err == nil {
		t.Error("RunQueueing accepted Workers = -1")
	}
	// Workers beyond the client count clamp rather than fail.
	stats, err := Run(Config{Instance: ins, Placement: p, AccessesPerClient: 2, Seed: 1, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(Config{Instance: ins, Placement: p, AccessesPerClient: 2, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, stats) {
		t.Error("clamped worker count changed the output")
	}
}

// TestShardedHeatMergeMatchesSequential pins the satellite contract
// directly: merging per-worker heat shards reproduces the workers=1 sketch
// bit for bit (heat cells are integer counts, so Merge is lossless).
func TestShardedHeatMergeMatchesSequential(t *testing.T) {
	ins, p := buildInstance(t)
	sketch := func(workers int) *heat.Sketch {
		ht := heat.New(heat.Options{EpochLen: 1, HalfLife: 4})
		_, err := Run(Config{
			Instance: ins, Placement: p, Mode: Parallel,
			AccessesPerClient: 60, InterAccessTime: 0.4, Seed: 29,
			Workers: workers, Heat: ht,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ht
	}
	ref := sketch(1)
	for _, w := range []int{2, 4, 8} {
		if !ref.Equal(sketch(w)) {
			t.Errorf("workers=%d heat sketch differs from workers=1", w)
		}
	}
}

// TestShardedSLOReconciles: the windowed SLO accounting written
// concurrently by the shards must sum back to the run totals.
func TestShardedSLOReconciles(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(16, 1, 0)
	rec.EnableSLO(2.0)
	stats, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 0.2, MaxRetries: 2, RetryPenalty: 0.5,
		AccessesPerClient: 40, Seed: 13, Workers: 4, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var accesses, retries, aborts int64
	var maxLat float64
	for _, w := range rec.SLOWindows() {
		accesses += w.Accesses
		retries += w.Retries
		aborts += w.Aborts
		if w.MaxLatency > maxLat {
			maxLat = w.MaxLatency
		}
	}
	if accesses != int64(stats.Accesses) {
		t.Errorf("SLO window accesses = %d, want %d", accesses, stats.Accesses)
	}
	if retries != int64(stats.Retries) {
		t.Errorf("SLO window retries = %d, want %d", retries, stats.Retries)
	}
	if aborts != int64(stats.FailedOutright) {
		t.Errorf("SLO window aborts = %d, want %d", aborts, stats.FailedOutright)
	}
	if maxLat <= 0 {
		t.Error("SLO windows recorded no latency")
	}

	rec2 := NewRecorder(16, 1, 0)
	rec2.EnableSLO(2.0)
	rstats, err := Run(Config{
		Instance: ins, Placement: p, Mode: Parallel,
		AccessesPerClient: 40, InterAccessTime: 0.3, Seed: 11,
		Workers: 4, Recorder: rec2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var racc int64
	var hits int64
	for _, w := range rec2.SLOWindows() {
		racc += w.Accesses
		for _, h := range w.NodeHits {
			hits += h
		}
	}
	if racc != int64(rstats.Accesses) {
		t.Errorf("SLO window accesses = %d, want %d", racc, rstats.Accesses)
	}
	var nh int64
	for _, h := range rstats.NodeHits {
		nh += h
	}
	if hits != nh {
		t.Errorf("SLO window node hits = %d, want %d", hits, nh)
	}
}

// TestShardedRunMatchesAnalytic: the sharded schedule is new, so pin it to
// the paper's analytic objective the same way the legacy engine is.
func TestShardedRunMatchesAnalytic(t *testing.T) {
	ins, p := buildInstance(t)
	want := ins.AvgMaxDelay(p)
	stats, err := Run(Config{
		Instance: ins, Placement: p, Mode: Parallel,
		AccessesPerClient: 4000, Seed: 3, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(stats.AvgLatency-want) / want; rel > 0.05 {
		t.Fatalf("sharded AvgΔ = %v, analytic %v (rel err %v)", stats.AvgLatency, want, rel)
	}
}

func TestParseTraceSample(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"fine", TraceSampleFine, true},
		{"coarse", TraceSampleCoarse, true},
		{"1", 1, true},
		{"64", 64, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"tiny", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseTraceSample(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Errorf("ParseTraceSample(%q) = %d, %v; want %d, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestRecorderSeriesCap(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(16, 1, 0.1)
	rec.SetSeriesCap(8)
	_, err := Run(Config{
		Instance: ins, Placement: p, Mode: Parallel,
		AccessesPerClient: 50, InterAccessTime: 0.5, Seed: 7, Workers: 2,
		Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rec.Series()); n != 8 {
		t.Errorf("series length = %d, want cap 8", n)
	}
	if rec.SeriesDropped() == 0 {
		t.Error("cap discarded no samples despite overflow")
	}
}
