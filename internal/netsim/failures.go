package netsim

import (
	"fmt"
	"math/rand"

	"quorumplace/internal/heat"
	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
)

// Failure-injection simulation: nodes crash independently per access epoch,
// and clients retry with freshly sampled quorums until one is fully alive
// or the retry budget is exhausted. This measures the placed system's
// availability (cf. Instance.NodeFailureProbability) together with the
// latency cost of retries — the fault-tolerance dimension of the paper's
// load-dispersion motivation (§1, §2).

// FailureConfig describes a failure-injection run.
type FailureConfig struct {
	Instance  *placement.Instance
	Placement placement.Placement
	Mode      Mode
	// NodeFailureProb is the per-access probability that a given node is
	// down. Failures are resampled independently for every access (a
	// memoryless crash/recovery model).
	NodeFailureProb float64
	// MaxRetries is the number of additional quorum samples a client tries
	// after a failed attempt. 0 means one attempt only.
	MaxRetries int
	// RetryPenalty is the virtual-time latency charged for each failed
	// attempt (e.g. a timeout), including the final attempt of an access
	// that exhausts its retry budget: an access aborted after k failed
	// attempts has latency k·RetryPenalty, and a successful access pays one
	// penalty per preceding failed attempt on top of the successful
	// attempt's latency.
	RetryPenalty      float64
	AccessesPerClient int
	Seed              int64
	// Recorder, when non-nil, captures per-access traces; probes of failed
	// attempts carry Failed=true and the access records its retry count.
	// Nil falls back to the SetDefaultRecorder recorder. Accesses are laid
	// out back-to-back per client on the virtual timeline, processed in the
	// same global completion order as Run; with NodeFailureProb = 0 and
	// MaxRetries = 0 the run consumes randomness identically to Run and
	// reproduces its per-access latencies and traces exactly.
	Recorder *Recorder
	// Heat, when non-nil, folds every access into the workload sketch;
	// nodes probed by failed attempts count as messages (the load landed).
	// Nil falls back to the SetDefaultHeat sketch.
	Heat *heat.Sketch
	// Workers selects the engine, with the same contract as
	// Config.Workers: 0 keeps the legacy single-stream engine
	// byte-identical; W ≥ 1 runs the sharded engine, whose output is
	// bitwise invariant over W (crash states are drawn from per-client
	// streams instead of the shared stream).
	Workers int
}

// FailureStats is the outcome of a failure-injection run.
type FailureStats struct {
	Accesses         int
	Succeeded        int
	FailedOutright   int     // accesses that exhausted the retry budget
	Retries          int     // total failed attempts that were retried
	SuccessRate      float64 // Succeeded / Accesses
	AvgLatency       float64 // mean latency of successful accesses (incl. penalties)
	EmpiricalUnavail float64 // fraction of *first attempts* that found no live quorum in the sampled state
}

// RunWithFailures executes the failure-injection simulation.
func RunWithFailures(cfg FailureConfig) (*FailureStats, error) {
	ins := cfg.Instance
	if ins == nil {
		return nil, fmt.Errorf("netsim: nil instance")
	}
	if err := ins.Validate(cfg.Placement); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	if cfg.AccessesPerClient <= 0 {
		return nil, fmt.Errorf("netsim: AccessesPerClient = %d, want > 0", cfg.AccessesPerClient)
	}
	if cfg.NodeFailureProb < 0 || cfg.NodeFailureProb > 1 {
		return nil, fmt.Errorf("netsim: NodeFailureProb = %v outside [0,1]", cfg.NodeFailureProb)
	}
	if cfg.MaxRetries < 0 || cfg.RetryPenalty < 0 {
		return nil, fmt.Errorf("netsim: negative retry settings")
	}
	if err := validateWorkers(cfg.Workers); err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		return runFailuresSharded(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ins.M.N()
	nQ := ins.Sys.NumQuorums()
	// Same rate-weighted access apportionment as Run, so the failure-free
	// configuration keeps reproducing Run trace-for-trace under rates.
	var counts []int
	if ins.Rates != nil {
		counts = clientAccessCounts(ins.Rates, n, cfg.AccessesPerClient)
	}

	cdf := make([]float64, nQ)
	acc := 0.0
	for q := 0; q < nQ; q++ {
		acc += ins.Strat.P(q)
		cdf[q] = acc
	}
	sampleQuorum := func() int {
		x := rng.Float64() * acc
		lo, hi := 0, nQ-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	// With a zero failure probability every node is always alive; skipping
	// the per-access resampling keeps the rng stream identical to Run's, so
	// the failure-free configuration reproduces Run draw for draw.
	alive := make([]bool, n)
	allAlive := cfg.NodeFailureProb == 0
	if allAlive {
		for i := range alive {
			alive[i] = true
		}
	}
	stats := &FailureStats{}
	var latencySum float64
	var noLiveQuorumFirstAttempt int

	sp := obs.Start("netsim.failures")
	defer sp.End()
	defer func() {
		obs.Count("netsim.events", int64(stats.Accesses))
		obs.Count("netsim.retries", int64(stats.Retries))
	}()

	rec := recorderFor(cfg.Recorder)
	runID := 0
	var traced int64
	if rec != nil {
		runID = rec.beginRun()
		defer func() { obs.Count("netsim.traced_accesses", traced) }()
	}
	// SLO accounting charges every probed node (including the dead one that
	// failed an attempt) to the window of the access's completion, and folds
	// retries and aborts into the window burn rates.
	slo := rec != nil && rec.sloEnabled()
	ht := heatFor(cfg.Heat)
	collectNodes := slo || ht != nil
	var accNodes []int
	if slo {
		rec.sloSetNodes(runID, n)
	}
	if collectNodes {
		accNodes = make([]int, 0, 16)
	}
	var lh *obs.LogHist
	if obs.Enabled() {
		lh = obs.NewLogHist()
	}

	// Accesses are processed on the same (completion time, seq) event queue
	// as Run: each client's accesses run back-to-back, and the shared rng is
	// consumed in global virtual-time order rather than client-major order.
	var q eventQueue
	seq := 0
	for v := 0; v < n; v++ {
		if counts != nil && counts[v] == 0 {
			continue
		}
		q.push(event{at: 0, seq: seq, client: v, access: 0})
		seq++
	}
	for len(q) > 0 {
		e := q.pop()
		v := e.client
		row := ins.M.Row(v)
		// Sample the crash state for this access epoch.
		if !allAlive {
			for i := range alive {
				alive[i] = rng.Float64() >= cfg.NodeFailureProb
			}
		}
		// Record whether any quorum is alive at all in this state
		// (the quantity NodeFailureProbability predicts).
		if !anyQuorumAlive(ins, cfg.Placement, alive) {
			noLiveQuorumFirstAttempt++
		}
		stats.Accesses++
		var tr *AccessTrace
		if rec != nil && rec.shouldTrace() {
			tr = &AccessTrace{Run: runID, Client: v, Mode: cfg.Mode, Start: e.at}
			tr.Probes = rec.getProbes(0)
		}
		penalty := 0.0
		elapsed := 0.0 // virtual time the access occupies on the client
		success := false
		accRetries := 0
		accNodes = accNodes[:0]
		for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
			qi := sampleQuorum()
			attemptStart := e.at + penalty
			attemptProbes := 0
			if tr != nil {
				attemptProbes = len(tr.Probes)
			}
			ok := true
			var latency float64
			for _, u := range ins.Sys.Quorum(qi) {
				node := cfg.Placement.Node(u)
				if collectNodes {
					accNodes = append(accNodes, node)
				}
				if !alive[node] {
					if tr != nil {
						// The failing probe is dispatched after the latency
						// already accumulated in this attempt (Sequential
						// probes go out one after another; Parallel probes
						// all leave at the attempt start).
						dispatch := attemptStart
						if cfg.Mode == Sequential {
							dispatch += latency
						}
						tr.Probes = append(tr.Probes, ProbeSpan{
							Member: u, Node: node, Dispatch: dispatch,
							Complete: dispatch, Failed: true,
						})
					}
					ok = false
					break
				}
				d := row[node]
				if tr != nil {
					dispatch := attemptStart
					if cfg.Mode == Sequential {
						dispatch += latency
					}
					tr.Probes = append(tr.Probes, ProbeSpan{
						Member: u, Node: node,
						Dispatch: dispatch, NetDelay: d, Complete: dispatch + d,
					})
				}
				if cfg.Mode == Parallel {
					if d > latency {
						latency = d
					}
				} else {
					latency += d
				}
			}
			if ok {
				stats.Succeeded++
				latencySum += latency + penalty
				success = true
				elapsed = latency + penalty
				if tr != nil {
					tr.Quorum = qi
					tr.Attempts = attempt
					tr.Latency = latency + penalty
					tr.End = tr.Start + tr.Latency
					markStragglerIn(cfg.Mode, tr.Probes[attemptProbes:])
					rec.add(*tr)
					traced++
				}
				break
			}
			// Every failed attempt is charged its timeout, including the
			// final attempt of an access that exhausts the retry budget.
			penalty += cfg.RetryPenalty
			if attempt < cfg.MaxRetries {
				stats.Retries++
				accRetries++
			}
		}
		if !success {
			stats.FailedOutright++
			elapsed = penalty
			if tr != nil {
				tr.Attempts = cfg.MaxRetries + 1
				tr.Aborted = true
				tr.Latency = penalty
				tr.End = tr.Start + penalty
				rec.add(*tr)
				traced++
			}
		}
		if lh != nil && success {
			lh.Observe(elapsed)
		}
		if slo {
			rec.sloAccess(runID, e.at+elapsed, elapsed, int64(accRetries), !success, accNodes)
		}
		if ht != nil {
			ht.Observe(e.at, v, accNodes)
		}
		limit := cfg.AccessesPerClient
		if counts != nil {
			limit = counts[v]
		}
		if e.access+1 < limit {
			q.push(event{at: e.at + elapsed, seq: seq, client: v, access: e.access + 1})
			seq++
		}
	}
	stats.SuccessRate = float64(stats.Succeeded) / float64(stats.Accesses)
	if stats.Succeeded > 0 {
		stats.AvgLatency = latencySum / float64(stats.Succeeded)
	}
	stats.EmpiricalUnavail = float64(noLiveQuorumFirstAttempt) / float64(stats.Accesses)
	if lh != nil {
		obs.MergeHist("netsim.access_latency", lh)
	}
	return stats, nil
}

func anyQuorumAlive(ins *placement.Instance, pl placement.Placement, alive []bool) bool {
	for qi := 0; qi < ins.Sys.NumQuorums(); qi++ {
		ok := true
		for _, u := range ins.Sys.Quorum(qi) {
			if !alive[pl.Node(u)] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
