package netsim

import (
	"fmt"
	"math/rand"

	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
)

// Failure-injection simulation: nodes crash independently per access epoch,
// and clients retry with freshly sampled quorums until one is fully alive
// or the retry budget is exhausted. This measures the placed system's
// availability (cf. Instance.NodeFailureProbability) together with the
// latency cost of retries — the fault-tolerance dimension of the paper's
// load-dispersion motivation (§1, §2).

// FailureConfig describes a failure-injection run.
type FailureConfig struct {
	Instance  *placement.Instance
	Placement placement.Placement
	Mode      Mode
	// NodeFailureProb is the per-access probability that a given node is
	// down. Failures are resampled independently for every access (a
	// memoryless crash/recovery model).
	NodeFailureProb float64
	// MaxRetries is the number of additional quorum samples a client tries
	// after a failed attempt. 0 means one attempt only.
	MaxRetries int
	// RetryPenalty is the virtual-time latency charged for each failed
	// attempt (e.g. a timeout). Charged per failed attempt on top of the
	// successful attempt's latency.
	RetryPenalty      float64
	AccessesPerClient int
	Seed              int64
	// Recorder, when non-nil, captures per-access traces; probes of failed
	// attempts carry Failed=true and the access records its retry count.
	// Nil falls back to the SetDefaultRecorder recorder. Accesses are laid
	// out back-to-back per client on the virtual timeline.
	Recorder *Recorder
}

// FailureStats is the outcome of a failure-injection run.
type FailureStats struct {
	Accesses         int
	Succeeded        int
	FailedOutright   int     // accesses that exhausted the retry budget
	Retries          int     // total failed attempts that were retried
	SuccessRate      float64 // Succeeded / Accesses
	AvgLatency       float64 // mean latency of successful accesses (incl. penalties)
	EmpiricalUnavail float64 // fraction of *first attempts* that found no live quorum in the sampled state
}

// RunWithFailures executes the failure-injection simulation.
func RunWithFailures(cfg FailureConfig) (*FailureStats, error) {
	ins := cfg.Instance
	if ins == nil {
		return nil, fmt.Errorf("netsim: nil instance")
	}
	if err := ins.Validate(cfg.Placement); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	if cfg.AccessesPerClient <= 0 {
		return nil, fmt.Errorf("netsim: AccessesPerClient = %d, want > 0", cfg.AccessesPerClient)
	}
	if cfg.NodeFailureProb < 0 || cfg.NodeFailureProb > 1 {
		return nil, fmt.Errorf("netsim: NodeFailureProb = %v outside [0,1]", cfg.NodeFailureProb)
	}
	if cfg.MaxRetries < 0 || cfg.RetryPenalty < 0 {
		return nil, fmt.Errorf("netsim: negative retry settings")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ins.M.N()
	nQ := ins.Sys.NumQuorums()

	cdf := make([]float64, nQ)
	acc := 0.0
	for q := 0; q < nQ; q++ {
		acc += ins.Strat.P(q)
		cdf[q] = acc
	}
	sampleQuorum := func() int {
		x := rng.Float64() * acc
		lo, hi := 0, nQ-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	alive := make([]bool, n)
	stats := &FailureStats{}
	var latencySum float64
	var noLiveQuorumFirstAttempt int

	sp := obs.Start("netsim.failures")
	defer sp.End()
	defer func() {
		obs.Count("netsim.events", int64(stats.Accesses))
		obs.Count("netsim.retries", int64(stats.Retries))
	}()

	rec := recorderFor(cfg.Recorder)
	runID := 0
	var traced int64
	if rec != nil {
		runID = rec.beginRun()
		defer func() { obs.Count("netsim.traced_accesses", traced) }()
	}

	for v := 0; v < n; v++ {
		row := ins.M.Row(v)
		clock := 0.0 // per-client virtual time, accesses back-to-back
		for a := 0; a < cfg.AccessesPerClient; a++ {
			// Sample the crash state for this access epoch.
			for i := range alive {
				alive[i] = rng.Float64() >= cfg.NodeFailureProb
			}
			// Record whether any quorum is alive at all in this state
			// (the quantity NodeFailureProbability predicts).
			if !anyQuorumAlive(ins, cfg.Placement, alive) {
				noLiveQuorumFirstAttempt++
			}
			stats.Accesses++
			var tr *AccessTrace
			if rec != nil && rec.shouldTrace() {
				tr = &AccessTrace{Run: runID, Client: v, Mode: cfg.Mode, Start: clock}
				tr.Probes = rec.getProbes(0)
			}
			penalty := 0.0
			success := false
			for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
				qi := sampleQuorum()
				attemptStart := clock + penalty
				attemptProbes := 0
				if tr != nil {
					attemptProbes = len(tr.Probes)
				}
				ok := true
				var latency float64
				for _, u := range ins.Sys.Quorum(qi) {
					node := cfg.Placement.Node(u)
					if !alive[node] {
						if tr != nil {
							tr.Probes = append(tr.Probes, ProbeSpan{
								Member: u, Node: node, Dispatch: attemptStart,
								Complete: attemptStart, Failed: true,
							})
						}
						ok = false
						break
					}
					d := row[node]
					if tr != nil {
						dispatch := attemptStart
						if cfg.Mode == Sequential {
							dispatch += latency
						}
						tr.Probes = append(tr.Probes, ProbeSpan{
							Member: u, Node: node,
							Dispatch: dispatch, NetDelay: d, Complete: dispatch + d,
						})
					}
					if cfg.Mode == Parallel {
						if d > latency {
							latency = d
						}
					} else {
						latency += d
					}
				}
				if ok {
					stats.Succeeded++
					latencySum += latency + penalty
					success = true
					if tr != nil {
						tr.Quorum = qi
						tr.Attempts = attempt
						tr.Latency = latency + penalty
						tr.End = tr.Start + tr.Latency
						markStragglerIn(cfg.Mode, tr.Probes[attemptProbes:])
						rec.add(*tr)
						traced++
					}
					clock += latency + penalty
					break
				}
				if attempt < cfg.MaxRetries {
					stats.Retries++
					penalty += cfg.RetryPenalty
				}
			}
			if !success {
				stats.FailedOutright++
				if tr != nil {
					tr.Attempts = cfg.MaxRetries + 1
					tr.Aborted = true
					tr.Latency = penalty
					tr.End = tr.Start + penalty
					rec.add(*tr)
					traced++
				}
				clock += penalty
			}
		}
	}
	stats.SuccessRate = float64(stats.Succeeded) / float64(stats.Accesses)
	if stats.Succeeded > 0 {
		stats.AvgLatency = latencySum / float64(stats.Succeeded)
	}
	stats.EmpiricalUnavail = float64(noLiveQuorumFirstAttempt) / float64(stats.Accesses)
	return stats, nil
}

func anyQuorumAlive(ins *placement.Instance, pl placement.Placement, alive []bool) bool {
	for qi := 0; qi < ins.Sys.NumQuorums(); qi++ {
		ok := true
		for _, u := range ins.Sys.Quorum(qi) {
			if !alive[pl.Node(u)] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
