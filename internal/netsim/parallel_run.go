package netsim

import (
	"sort"
	"sync"

	"quorumplace/internal/heat"
	"quorumplace/internal/obs"
)

// Sharded engine for Run (see parallel.go for the determinism design).
// Clients never interact in the propagation-only simulator — an access
// touches only its own client's timeline plus commutative integer
// aggregates — so the lookahead is unbounded and the shards run
// barrier-free to completion, merging once at the end.

// runWorker is the per-shard state of one propagation-simulator worker.
type runWorker struct {
	cfg         *Config
	id          int
	lo, hi      int // owned client index range
	counts      []int
	cdf         []float64
	acc         float64
	rec         *Recorder
	runID       int
	slo         bool
	sampleEvery int
	traceSeed   uint64
	ht          *heat.Sketch // worker heat shard, nil when heat is off
	sh          *obs.Shard   // worker telemetry shard, nil when telemetry is off

	q          eventQueue
	streams    []prng // one per owned client
	accesses   int
	messages   int64
	events     int64
	maxDepth   int
	clock      float64
	lastAt     float64 // at of the last processed event (nondecreasing)
	nodeHits   []int64
	perClient  []float64 // owned range only
	perClientN []int
	latBuf     []latRec
	traces     []keyedTrace
	ts         *tsState
	tsBuf      []TSample
	accNodes   []int
}

// fillSample populates one time-series boundary with this shard's share of
// the gauges; boundary samples merge additively across shards.
func (w *runWorker) fillSample(at float64, s *TSample) {
	w.ts.done.popTo(at)
	s.InFlight = len(w.ts.done)
	s.Accesses = w.accesses
	s.NodeHits = append([]int64(nil), w.nodeHits...)
}

func (w *runWorker) run() {
	cfg := w.cfg
	ins := cfg.Instance
	nQ := ins.Sys.NumQuorums()
	for i := range w.streams {
		w.streams[i] = newPRNG(cfg.Seed, streamAccess, w.lo+i)
	}
	// seq = client index: one pending event per client, so (at, client) is
	// the canonical total order and the legacy eventQueue implements it.
	for v := w.lo; v < w.hi; v++ {
		if w.counts != nil && w.counts[v] == 0 {
			continue
		}
		w.q.push(event{at: 0, seq: v, client: v, access: 0})
	}
	collectNodes := w.slo || w.ht != nil
	for len(w.q) > 0 {
		if len(w.q) > w.maxDepth {
			w.maxDepth = len(w.q)
		}
		e := w.q.pop()
		w.events++
		if w.ts != nil {
			w.ts.advance(e.at, w.fillSample)
		}
		v := e.client
		st := &w.streams[v-w.lo]
		qi := sort.SearchFloat64s(w.cdf, st.Float64()*w.acc)
		if qi >= nQ {
			qi = nQ - 1
		}
		var tr *AccessTrace
		if w.rec != nil && shouldTraceDet(w.traceSeed, v, e.access, w.sampleEvery) {
			tr = &AccessTrace{Run: w.runID, Client: v, Quorum: qi, Mode: cfg.Mode, Start: e.at}
			tr.Probes = make([]ProbeSpan, 0, len(ins.Sys.Quorum(qi)))
		}
		row := ins.M.Row(v)
		var latency float64
		w.accNodes = w.accNodes[:0]
		for _, u := range ins.Sys.Quorum(qi) {
			node := cfg.Placement.Node(u)
			d := row[node]
			w.nodeHits[node]++
			w.messages++
			if collectNodes {
				w.accNodes = append(w.accNodes, node)
			}
			if tr != nil {
				dispatch := e.at
				if cfg.Mode == Sequential {
					dispatch += latency
				}
				tr.Probes = append(tr.Probes, ProbeSpan{
					Member: u, Node: node,
					Dispatch: dispatch, NetDelay: d, Complete: dispatch + d,
				})
			}
			switch cfg.Mode {
			case Parallel:
				if d > latency {
					latency = d
				}
			case Sequential:
				latency += d
			}
		}
		done := e.at + latency
		if done > w.clock {
			w.clock = done
		}
		w.accesses++
		w.latBuf = append(w.latBuf, latRec{at: e.at, lat: latency, client: int32(v)})
		w.perClient[v-w.lo] += latency
		w.perClientN[v-w.lo]++
		w.sh.Observe("netsim.access_latency", latency)
		if w.slo {
			w.rec.sloAccess(w.runID, done, latency, 0, false, w.accNodes)
		}
		if w.ht != nil {
			w.ht.Observe(e.at, v, w.accNodes)
		}
		if tr != nil {
			tr.End = done
			tr.Latency = latency
			markStraggler(tr)
			w.traces = append(w.traces, keyedTrace{at: e.at, client: v, access: e.access, tr: *tr})
		}
		if w.ts != nil {
			w.ts.done.push(done)
		}
		w.lastAt = e.at
		limit := cfg.AccessesPerClient
		if w.counts != nil {
			limit = w.counts[v]
		}
		if e.access+1 < limit {
			think := 0.0
			if cfg.InterAccessTime > 0 {
				think = st.ExpFloat64() * cfg.InterAccessTime
			}
			w.q.push(event{at: done + think, seq: v, client: v, access: e.access + 1})
		}
	}
	w.sh.Count("netsim.events", w.events)
	w.sh.Count("netsim.messages", w.messages)
	w.sh.GaugeMax("netsim.max_queue_depth", float64(w.maxDepth))
}

// mergeLatRecs k-way merges the workers' canonically ordered latency
// buffers into stats.latencies and returns the latency sum folded in the
// merged order — the same fold for every worker count, hence the same
// bits.
func mergeLatRecs(stats *Stats, bufs [][]latRec) float64 {
	idx := make([]int, len(bufs))
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	stats.latencies = make([]float64, 0, total)
	var sum float64
	for {
		best := -1
		for w, b := range bufs {
			if idx[w] >= len(b) {
				continue
			}
			if best < 0 || latLess(b[idx[w]], bufs[best][idx[best]]) {
				best = w
			}
		}
		if best < 0 {
			return sum
		}
		r := bufs[best][idx[best]]
		stats.latencies = append(stats.latencies, r.lat)
		sum += r.lat
		idx[best]++
	}
}

// runSharded is the Workers > 0 engine behind Run.
func runSharded(cfg Config) (*Stats, error) {
	ins := cfg.Instance
	n := ins.M.N()
	var counts []int
	if ins.Rates != nil {
		counts = clientAccessCounts(ins.Rates, n, cfg.AccessesPerClient)
	}
	cdf, acc := quorumCDF(ins)
	W := clampWorkers(cfg.Workers, n)

	sp := obs.Start("netsim.run")
	defer sp.End()

	rec := recorderFor(cfg.Recorder)
	runID := 0
	if rec != nil {
		runID = rec.beginRun()
	}
	slo := rec != nil && rec.sloEnabled()
	if slo {
		rec.sloSetNodes(runID, n)
	}
	sampleEvery := 1
	if rec != nil {
		sampleEvery = rec.sampleEveryN()
	}
	ht := heatFor(cfg.Heat)
	shards := heatShards(ht, W)
	traceSeed := traceSeedFor(cfg.Seed)

	ws := make([]*runWorker, W)
	for i := 0; i < W; i++ {
		lo, hi := i*n/W, (i+1)*n/W
		w := &runWorker{
			cfg: &cfg, id: i, lo: lo, hi: hi,
			counts: counts, cdf: cdf, acc: acc,
			rec: rec, runID: runID, slo: slo,
			sampleEvery: sampleEvery, traceSeed: traceSeed,
			sh:         obs.NewShard(sp),
			streams:    make([]prng, hi-lo),
			nodeHits:   make([]int64, n),
			perClient:  make([]float64, hi-lo),
			perClientN: make([]int, hi-lo),
		}
		if ht != nil {
			w.ht = shards[i]
		}
		if slo || w.ht != nil {
			w.accNodes = make([]int, 0, 16)
		}
		w.ts = newTSStateSink(rec, runID, func(s TSample) { w.tsBuf = append(w.tsBuf, s) })
		ws[i] = w
	}
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *runWorker) { defer wg.Done(); w.run() }(w)
	}
	wg.Wait()

	stats := &Stats{
		Mode:      cfg.Mode,
		PerClient: make([]float64, n),
		NodeHits:  make([]int64, n),
	}
	// Trailing time-series boundaries: a shard whose events ended early
	// still owes samples up to the globally last event, filled from its
	// (final) local state.
	maxAt := 0.0
	for _, w := range ws {
		if w.lastAt > maxAt {
			maxAt = w.lastAt
		}
	}
	latBufs := make([][]latRec, W)
	traceBufs := make([][]keyedTrace, W)
	tsBufs := make([][]TSample, W)
	for i, w := range ws {
		if w.ts != nil {
			w.ts.advance(maxAt, w.fillSample)
		}
		stats.Accesses += w.accesses
		if w.clock > stats.Clock {
			stats.Clock = w.clock
		}
		for v := 0; v < n; v++ {
			stats.NodeHits[v] += w.nodeHits[v]
		}
		for v := w.lo; v < w.hi; v++ {
			if c := w.perClientN[v-w.lo]; c > 0 {
				stats.PerClient[v] = w.perClient[v-w.lo] / float64(c)
			}
		}
		latBufs[i] = w.latBuf
		traceBufs[i] = w.traces
		tsBufs[i] = w.tsBuf
		w.sh.Merge()
	}
	stats.AvgLatency = mergeLatRecs(stats, latBufs) / float64(stats.Accesses)
	stats.EmpiricalLoad = make([]float64, n)
	totalAccesses := float64(stats.Accesses)
	for v := 0; v < n; v++ {
		stats.EmpiricalLoad[v] = float64(stats.NodeHits[v]) / totalAccesses
	}
	if rec != nil {
		traced := mergeTraces(rec, traceBufs)
		obs.Count("netsim.traced_accesses", traced)
		mergeSamples(rec, tsBufs)
	}
	if err := mergeHeatShards(ht, shards); err != nil {
		return nil, err
	}
	return stats, nil
}
