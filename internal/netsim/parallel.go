package netsim

// Sharded deterministic discrete-event engine (conservative-window PDES).
//
// The single-threaded simulators process one global (at, seq) event heap
// and consume one shared RNG stream in global event order, which makes
// every statistic deterministic but pins the whole run to one core. The
// sharded engine behind Config.Workers / QueueConfig.Workers /
// FailureConfig.Workers partitions the simulation entities (clients, and
// for the queueing simulator also the node service queues) across W
// workers, each with its own event wheel, and restores determinism with
// three ingredients:
//
//  1. Per-entity RNG streams. Every client (and every node, for service
//     times) draws from a private splitmix64 counter stream seeded from
//     (Seed, entity id). An entity's draws depend only on its own event
//     order, never on how entities interleave globally, so the outcome is
//     invariant under the number of workers and the shard assignment.
//  2. A canonical total event order. Ties at equal virtual time break on
//     a composite key of the event's identity (kind, client, access,
//     node, member slot) instead of heap insertion order, so every shard
//     — and any merge of shards — orders events identically.
//  3. Conservative time windows (queueing only). Clients interact through
//     the node FIFOs, so shards exchange events at barriers and each
//     round processes only the window [T, T+L) that no in-flight
//     cross-shard event can invalidate, where the lookahead L is the
//     minimum distance between any client and any quorum-hosting node in
//     different shards. The propagation-only simulators have no
//     cross-entity interaction at all, so their lookahead is unbounded
//     and workers run barrier-free to completion.
//
// Results are merged in fixed canonical order: per-access records k-way
// merge on (at, client, access); integer statistics (node hits, SLO
// window counts, heat sketch cells, histogram buckets) are associative
// and merge losslessly in any order; floating-point accumulations fold
// either over the canonical merged stream or per entity in index order,
// so the same bits come out for every worker count W >= 1.
//
// Contract: with the same Seed and any Workers >= 1 the engine produces
// bitwise-identical Stats / FailureStats / QueueStats, traces, SLO
// windows, time-series samples and heat sketches; Workers == 0 keeps the
// legacy single-stream engine byte-for-byte (its RNG schedule differs
// from the sharded engine's per-entity streams, so the two knob settings
// are each deterministic but not mutually identical).

import (
	"fmt"
	"math"

	"quorumplace/internal/heat"
	"quorumplace/internal/placement"
)

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Stream salts separating the per-entity RNG stream families of one run.
const (
	streamAccess  = 0x7a25e6f3c1d40b19 // client streams: quorum sampling, think times, crash states
	streamService = 0x3c6ef372fe94f82b // node streams: queueing service times
	streamTrace   = 0x5851f42d4c957f2d // deterministic trace-sampling hash
)

// prng is an 8-byte splitmix64 counter stream, cheap enough that every
// client and node of a million-entity run affords a private stream (the
// shared math/rand source carries 607 words of state — 5 KB per stream —
// and its draw order couples all entities together).
type prng struct{ state uint64 }

// newPRNG derives the stream for one entity of one run.
func newPRNG(seed int64, stream uint64, id int) prng {
	return prng{state: mix64(uint64(seed)*0x9e3779b97f4a7c15 ^ stream ^ uint64(id)*0xd1342543de82ef95)}
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	return mix64(p.state)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (p *prng) Float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponential draw of mean 1 by inversion.
func (p *prng) ExpFloat64() float64 {
	return -math.Log(1 - p.Float64())
}

// shardOfEntity maps entity index v to its shard under the block
// partition of n entities over w shards (shard s owns the contiguous
// index range [⌊s·n/w⌋, ⌊(s+1)·n/w⌋)). The expression is the exact
// inverse of those floored bounds: s is the largest shard with
// ⌊s·n/w⌋ ≤ v, i.e. the largest s with s·n < (v+1)·w.
func shardOfEntity(v, n, w int) int {
	return ((v+1)*w - 1) / n
}

// clampWorkers bounds a Workers knob to the entity count (spare workers
// would own empty shards; the result is identical either way, the clamp
// just skips spawning them).
func clampWorkers(workers, n int) int {
	if workers > n {
		return n
	}
	return workers
}

// validateWorkers rejects negative Workers knobs for all three simulators.
func validateWorkers(workers int) error {
	if workers < 0 {
		return fmt.Errorf("netsim: Workers = %d, want >= 0 (0 = legacy sequential engine)", workers)
	}
	return nil
}

// shouldTraceDet is the sharded engine's trace-sampling predicate: a
// deterministic pseudo-random 1-in-every subset keyed by (seed, client,
// access). The legacy engine samples every k-th access in global event
// order, which no shard can know locally; hashing the access identity
// keeps the same expected rate while staying invariant under sharding.
func shouldTraceDet(traceSeed uint64, client, access, every int) bool {
	if every <= 1 {
		return true
	}
	h := mix64(traceSeed ^ uint64(client)*0x9e3779b97f4a7c15 ^ uint64(access)*0xd1342543de82ef95)
	return h%uint64(every) == 0
}

// traceSeedFor derives the sampling hash salt of one run.
func traceSeedFor(seed int64) uint64 {
	return mix64(uint64(seed) ^ streamTrace)
}

// latRec is one completed access in a worker's canonical-order buffer:
// enough to k-way merge latency streams across shards on (at, client)
// and re-fold the global sums in canonical order.
type latRec struct {
	at     float64 // virtual time the access-start event popped
	lat    float64
	client int32
}

// latLess orders latency records canonically. Records of one client are
// already in access order within their worker stream, so (at, client) is
// a total order across streams (ties within a client keep stream order
// because the merge is stable for equal keys).
func latLess(a, b latRec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.client < b.client
}

// keyedTrace is a completed AccessTrace held back in a worker buffer
// until the canonical merge replays it into the shared Recorder.
type keyedTrace struct {
	at     float64 // recorder-order key: the event time the legacy engine would add at
	client int
	access int
	tr     AccessTrace
}

func traceLess(a, b keyedTrace) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.client != b.client {
		return a.client < b.client
	}
	return a.access < b.access
}

// mergeTraces replays per-worker trace buffers into rec in canonical
// order (k-way merge; each buffer is already canonically ordered).
func mergeTraces(rec *Recorder, buffers [][]keyedTrace) int64 {
	idx := make([]int, len(buffers))
	var added int64
	for {
		best := -1
		for w, b := range buffers {
			if idx[w] >= len(b) {
				continue
			}
			if best < 0 || traceLess(b[idx[w]], buffers[best][idx[best]]) {
				best = w
			}
		}
		if best < 0 {
			return added
		}
		rec.add(buffers[best][idx[best]].tr)
		added++
		idx[best]++
	}
}

// mergeSamples folds per-worker time-series buffers into rec. Worker w's
// k-th sample sits at the k-th interval boundary (every worker emits the
// identical boundary sequence after its trailing advance), so samples
// combine index-by-index: integer gauges add, vectors add elementwise.
func mergeSamples(rec *Recorder, buffers [][]TSample) {
	if len(buffers) == 0 {
		return
	}
	n := 0
	for _, b := range buffers {
		if len(b) > n {
			n = len(b)
		}
	}
	for k := 0; k < n; k++ {
		var out TSample
		first := true
		for _, b := range buffers {
			if k >= len(b) {
				continue
			}
			s := b[k]
			if first {
				out = TSample{Run: s.Run, At: s.At}
				first = false
			}
			out.InFlight += s.InFlight
			out.Accesses += s.Accesses
			out.NodeHits = addInt64(out.NodeHits, s.NodeHits)
			out.QueueDepth = addInt(out.QueueDepth, s.QueueDepth)
		}
		rec.addSample(out)
	}
}

func addInt64(dst, src []int64) []int64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

func addInt(dst, src []int) []int {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// quorumCDF precomputes the quorum-sampling CDF shared read-only by all
// workers, identical to the sequential engines' per-run CDF.
func quorumCDF(ins *placement.Instance) (cdf []float64, total float64) {
	nQ := ins.Sys.NumQuorums()
	cdf = make([]float64, nQ)
	acc := 0.0
	for q := 0; q < nQ; q++ {
		acc += ins.Strat.P(q)
		cdf[q] = acc
	}
	return cdf, acc
}

// heatShards builds one empty shard sketch per worker when a sketch is
// attached (observation stays contention-free on the hot path; the
// shards Merge losslessly into the target after the fan-in barrier).
func heatShards(ht *heat.Sketch, workers int) []*heat.Sketch {
	if ht == nil {
		return nil
	}
	shards := make([]*heat.Sketch, workers)
	for w := range shards {
		shards[w] = ht.NewShard()
	}
	return shards
}

// mergeHeatShards folds worker sketches into the target in worker order
// (integer cells: any order yields the same bits).
func mergeHeatShards(ht *heat.Sketch, shards []*heat.Sketch) error {
	if ht == nil {
		return nil
	}
	for _, sh := range shards {
		if err := ht.Merge(sh); err != nil {
			return err
		}
	}
	return nil
}
