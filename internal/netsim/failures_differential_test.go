package netsim

import (
	"math"
	"reflect"
	"testing"
)

// Differential and regression tests for the failure simulator's accounting:
// with failures disabled it must reproduce Run exactly, and with failures on
// its traces must respect the virtual timeline (probes dispatched after
// their predecessors, exhausted accesses charged every timeout).

// TestFailureFreeMatchesRunExactly pins RunWithFailures with
// NodeFailureProb=0, MaxRetries=0 to the plain simulator: same seed, same
// instance, identical per-access latencies and identical traces, in both
// access modes. The failure path processes accesses on the same event queue
// as Run and skips alive-state sampling when the failure probability is
// zero, so the two runs consume the rng draw for draw.
func TestFailureFreeMatchesRunExactly(t *testing.T) {
	ins, pl := buildInstance(t)
	for _, mode := range []Mode{Parallel, Sequential} {
		t.Run(mode.String(), func(t *testing.T) {
			const apc = 40
			runRec := NewRecorder(4096, 1, 0)
			runStats, err := Run(Config{
				Instance: ins, Placement: pl, Mode: mode,
				AccessesPerClient: apc, Seed: 1234, Recorder: runRec,
			})
			if err != nil {
				t.Fatal(err)
			}
			failRec := NewRecorder(4096, 1, 0)
			failStats, err := RunWithFailures(FailureConfig{
				Instance: ins, Placement: pl, Mode: mode,
				NodeFailureProb: 0, MaxRetries: 0, RetryPenalty: 7, // penalty never charged
				AccessesPerClient: apc, Seed: 1234, Recorder: failRec,
			})
			if err != nil {
				t.Fatal(err)
			}
			if failStats.Accesses != runStats.Accesses || failStats.Succeeded != runStats.Accesses {
				t.Fatalf("failure-free run lost accesses: %+v vs %d", failStats, runStats.Accesses)
			}
			if failStats.Retries != 0 || failStats.FailedOutright != 0 {
				t.Fatalf("failure-free run retried or aborted: %+v", failStats)
			}
			if math.Abs(failStats.AvgLatency-runStats.AvgLatency) > 1e-12 {
				t.Fatalf("AvgLatency diverged: %v vs %v", failStats.AvgLatency, runStats.AvgLatency)
			}
			a, b := runRec.Traces(), failRec.Traces()
			if len(a) != len(b) || len(a) != runStats.Accesses {
				t.Fatalf("trace counts: run %d, failures %d, accesses %d", len(a), len(b), runStats.Accesses)
			}
			for i := range a {
				if !reflect.DeepEqual(a[i], b[i]) {
					t.Fatalf("trace %d diverged:\n  run      %+v\n  failures %+v", i, a[i], b[i])
				}
			}
		})
	}
}

// attemptWindows splits a trace's probes into per-attempt windows: every
// Failed probe terminates its attempt.
func attemptWindows(probes []ProbeSpan) [][]ProbeSpan {
	var out [][]ProbeSpan
	start := 0
	for i, p := range probes {
		if p.Failed {
			out = append(out, probes[start:i+1])
			start = i + 1
		}
	}
	if start < len(probes) {
		out = append(out, probes[start:])
	}
	return out
}

// TestSequentialFailedProbeDispatch is the regression test for the
// failure-path trace bug where a Sequential-mode failing probe was stamped
// at the attempt start, ignoring the latency accumulated by its
// predecessors: within one attempt, every probe (failed or not) must be
// dispatched no earlier than the previous probe completed.
func TestSequentialFailedProbeDispatch(t *testing.T) {
	ins, pl := buildInstance(t)
	rec := NewRecorder(0, 1, 0)
	_, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: pl, Mode: Sequential,
		NodeFailureProb: 0.3, MaxRetries: 3, RetryPenalty: 0.5,
		AccessesPerClient: 80, Seed: 11, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	failedAfterProgress := 0
	for _, tr := range rec.Traces() {
		for _, win := range attemptWindows(tr.Probes) {
			for i := 1; i < len(win); i++ {
				if win[i].Dispatch < win[i-1].Complete-1e-9 {
					t.Fatalf("probe dispatched before predecessor finished: %+v after %+v (trace %+v)",
						win[i], win[i-1], tr)
				}
				if win[i].Failed && win[i-1].Complete > win[i-1].Dispatch {
					failedAfterProgress++
				}
			}
		}
	}
	if failedAfterProgress == 0 {
		t.Fatal("no failing probe followed a successful one; test exercised nothing")
	}
}

// TestExhaustedAccessChargesFinalPenalty is the regression test for the
// retry-penalty accounting bug: an access that exhausts its retry budget
// must charge RetryPenalty for every failed attempt, including the last, so
// an aborted access with MaxRetries=0 has latency RetryPenalty (not 0) and
// the client's next access starts that much later.
func TestExhaustedAccessChargesFinalPenalty(t *testing.T) {
	ins, pl := buildInstance(t)
	for _, retries := range []int{0, 2} {
		const penalty = 3.0
		rec := NewRecorder(0, 1, 0)
		stats, err := RunWithFailures(FailureConfig{
			Instance: ins, Placement: pl, Mode: Parallel,
			NodeFailureProb: 1, MaxRetries: retries, RetryPenalty: penalty,
			AccessesPerClient: 4, Seed: 3, Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.FailedOutright != stats.Accesses {
			t.Fatalf("retries=%d: %d of %d accesses aborted", retries, stats.FailedOutright, stats.Accesses)
		}
		want := float64(retries+1) * penalty
		lastEnd := make(map[int]float64)
		for _, tr := range rec.Traces() {
			if !tr.Aborted {
				t.Fatalf("retries=%d: unaborted trace at p=1: %+v", retries, tr)
			}
			if tr.Latency != want || tr.End-tr.Start != want {
				t.Fatalf("retries=%d: aborted access charged %v (span %v), want %v",
					retries, tr.Latency, tr.End-tr.Start, want)
			}
			// Back-to-back per client: each access starts when the previous
			// one's penalties elapsed.
			if prev, seen := lastEnd[tr.Client]; seen && tr.Start != prev {
				t.Fatalf("retries=%d: client %d access starts at %v, previous ended at %v",
					retries, tr.Client, tr.Start, prev)
			}
			lastEnd[tr.Client] = tr.End
		}
	}
}
