package netsim

import (
	"testing"

	"quorumplace/internal/heat"
)

// TestHeatMatchesStats pins the sketch's exact totals to the simulator's
// own accounting: accesses to Stats.Accesses, per-node messages to
// Stats.NodeHits, per-client issues to the apportioned access counts.
func TestHeatMatchesStats(t *testing.T) {
	ins, p := buildInstance(t)
	ht := heat.New(heat.Options{EpochLen: 2})
	stats, err := Run(Config{
		Instance: ins, Placement: p, Mode: Parallel,
		AccessesPerClient: 40, Seed: 3, Heat: ht,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ht.Accesses(); got != int64(stats.Accesses) {
		t.Fatalf("sketch accesses %d vs stats %d", got, stats.Accesses)
	}
	nt := ht.NodeTotals()
	for v, hits := range stats.NodeHits {
		var sk int64
		if v < len(nt) {
			sk = nt[v]
		}
		if sk != hits {
			t.Fatalf("node %d: sketch %d vs NodeHits %d", v, sk, hits)
		}
	}
	for v, c := range ht.ClientTotals() {
		if c != 40 {
			t.Fatalf("client %d issued %d, want 40", v, c)
		}
	}
	// Uniform demand vs uniform plan: exactly zero drift.
	d, err := ht.Drift(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.TV != 0 {
		t.Fatalf("uniform run drifted: TV %v", d.TV)
	}
}

// TestHeatRatedRun pins the sketch's client totals to the largest-remainder
// apportionment under explicit rates, and the drift score to its bound.
func TestHeatRatedRun(t *testing.T) {
	ins, p := buildInstance(t)
	rates := []float64{8, 1, 1, 1, 1, 1, 1, 1, 1}
	if err := ins.SetRates(rates); err != nil {
		t.Fatal(err)
	}
	defer func() { ins.Rates = nil }()
	ht := heat.New(heat.Options{})
	stats, err := Run(Config{
		Instance: ins, Placement: p, Mode: Parallel,
		AccessesPerClient: 50, Seed: 7, Heat: ht,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ht.Accesses(); got != int64(stats.Accesses) {
		t.Fatalf("sketch accesses %d vs stats %d", got, stats.Accesses)
	}
	ct := ht.ClientTotals()
	if ct[0] <= ct[1] {
		t.Fatalf("hot client not hot: %v", ct)
	}
	// Running exactly the plan-time demand: TV bounded by the
	// largest-remainder apportionment error n/(2·total).
	d, err := ht.Drift(rates)
	if err != nil {
		t.Fatal(err)
	}
	n, total := 9.0, float64(stats.Accesses)
	if bound := n / (2 * total); d.TV > bound+1e-12 {
		t.Fatalf("plan-demand drift %v exceeds apportionment bound %v", d.TV, bound)
	}
	// Against a uniform plan the same run shows real drift.
	du, err := ht.Drift(nil)
	if err != nil {
		t.Fatal(err)
	}
	if du.TV < 0.2 || du.Top != 0 {
		t.Fatalf("skewed run vs uniform plan: TV %v top %d", du.TV, du.Top)
	}
}

// TestHeatDefaultSketch exercises the SetDefaultHeat fallback and its
// precedence below an explicit Config.Heat.
func TestHeatDefaultSketch(t *testing.T) {
	ins, p := buildInstance(t)
	def := heat.New(heat.Options{})
	SetDefaultHeat(def)
	defer SetDefaultHeat(nil)
	if DefaultHeat() != def {
		t.Fatal("default sketch not installed")
	}
	if _, err := Run(Config{Instance: ins, Placement: p, AccessesPerClient: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if def.Accesses() != 45 {
		t.Fatalf("default sketch saw %d accesses, want 45", def.Accesses())
	}
	// An explicit sketch wins over the default.
	own := heat.New(heat.Options{})
	if _, err := Run(Config{Instance: ins, Placement: p, AccessesPerClient: 5, Seed: 1, Heat: own}); err != nil {
		t.Fatal(err)
	}
	if def.Accesses() != 45 || own.Accesses() != 45 {
		t.Fatalf("default %d own %d, want 45 each", def.Accesses(), own.Accesses())
	}
}

// TestHeatAllSimulators checks the failure and queueing paths feed the
// sketch with per-simulator message semantics.
func TestHeatAllSimulators(t *testing.T) {
	ins, p := buildInstance(t)

	ht := heat.New(heat.Options{})
	fstats, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 0.2, MaxRetries: 2, RetryPenalty: 1,
		AccessesPerClient: 30, Seed: 5, Heat: ht,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ht.Accesses(); got != int64(fstats.Accesses) {
		t.Fatalf("failure sim: sketch %d vs stats %d", got, fstats.Accesses)
	}
	// Retried attempts probe extra nodes, so messages exceed one quorum's
	// worth per access (Grid(2) quorums have 3 members).
	if ht.Messages() < 3*ht.Accesses() {
		t.Fatalf("messages %d < 3·accesses %d", ht.Messages(), ht.Accesses())
	}

	hq := heat.New(heat.Options{})
	qstats, err := RunQueueing(QueueConfig{
		Instance: ins, Placement: p, ArrivalRate: 2, ServiceMean: 0.05,
		AccessesPerClient: 20, Seed: 5, Heat: hq,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := hq.Accesses(); got != int64(qstats.Accesses) {
		t.Fatalf("queueing sim: sketch %d vs stats %d", got, qstats.Accesses)
	}
	if hq.Messages() != 3*hq.Accesses() {
		t.Fatalf("queueing messages %d, want exactly 3·%d", hq.Messages(), hq.Accesses())
	}
}

// TestHeatDoesNotPerturbRun pins that attaching a sketch leaves the
// simulation bitwise unchanged: heat only reads the stream.
func TestHeatDoesNotPerturbRun(t *testing.T) {
	ins, p := buildInstance(t)
	base, err := Run(Config{Instance: ins, Placement: p, Mode: Sequential, AccessesPerClient: 25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	withHeat, err := Run(Config{
		Instance: ins, Placement: p, Mode: Sequential, AccessesPerClient: 25, Seed: 11,
		Heat: heat.New(heat.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.AvgLatency != withHeat.AvgLatency || base.Clock != withHeat.Clock {
		t.Fatalf("heat perturbed the run: %v/%v vs %v/%v",
			base.AvgLatency, base.Clock, withHeat.AvgLatency, withHeat.Clock)
	}
	for i, l := range base.Latencies() {
		if withHeat.Latencies()[i] != l {
			t.Fatalf("latency %d differs", i)
		}
	}
}
