// Package netsim provides a discrete-event simulator for quorum accesses
// over a network, standing in for the wide-area deployments that motivate
// the paper (§1). Clients issue quorum accesses according to an access
// strategy; each access sends one message to every element of the sampled
// quorum, with message latency equal to the shortest-path distance of the
// hosting node. Two access modes mirror the paper's two cost models:
//
//   - Parallel: all messages are sent at once and the access completes when
//     the last one arrives — the max-delay cost δ_f(v, Q) (Eq. 1);
//   - Sequential: elements are contacted one after another and the access
//     completes after the summed latencies — the total-delay cost γ_f(v, Q).
//
// The simulator records per-access completion latencies and per-node hit
// counts, allowing empirical estimates of Avg Δ_f, Avg Γ_f, and load_f(v)
// that the tests compare against the analytic evaluators in
// internal/placement.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"quorumplace/internal/heat"
	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
)

// Mode selects the access cost model.
type Mode int

// Access modes.
const (
	Parallel   Mode = iota // max-delay (Eq. 1)
	Sequential             // total-delay (§5)
)

func (m Mode) String() string {
	switch m {
	case Parallel:
		return "parallel"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes a simulation run.
type Config struct {
	Instance  *placement.Instance
	Placement placement.Placement
	Mode      Mode
	// AccessesPerClient is the number of quorum accesses each client
	// issues. Clients are all nodes of the network (the paper's model);
	// set Instance.Rates to weight them — each client then issues its
	// rate-proportional share of the n·AccessesPerClient total, so an
	// aggregated demand population shapes the simulated access mix the
	// same way it shapes the analytic objective.
	AccessesPerClient int
	// InterAccessTime is the mean of the exponential think time between a
	// client's accesses (virtual time units). Zero means back-to-back.
	InterAccessTime float64
	Seed            int64
	// Recorder, when non-nil, captures per-access traces and time-series
	// samples for this run. When nil, the run falls back to the recorder
	// installed with SetDefaultRecorder, if any; with neither, tracing is
	// off and costs one nil check per access.
	Recorder *Recorder
	// Heat, when non-nil, folds every access into the workload sketch
	// (per-client issue counts and per-node message hits, keyed by the
	// virtual-time epoch of the access's issue). Nil falls back to the
	// SetDefaultHeat sketch; with neither, observation is off at one nil
	// check per access.
	Heat *heat.Sketch
	// Workers selects the engine. 0 (the default) runs the legacy
	// single-threaded engine, byte-identical to previous releases. Any
	// W ≥ 1 runs the sharded engine (parallel.go): clients are
	// partitioned over W event wheels and results merge in canonical
	// order, so for a fixed Seed every W ≥ 1 produces bitwise-identical
	// Stats, traces, SLO windows, time-series samples, and heat sketches
	// (Workers = 1 is the sharded engine's sequential reference; it
	// differs from Workers = 0 only in RNG schedule, not in
	// distribution). Negative values are an error.
	Workers int
}

// Stats is the outcome of a simulation run.
type Stats struct {
	Mode          Mode
	Accesses      int
	AvgLatency    float64   // mean access completion latency
	PerClient     []float64 // mean latency per client
	NodeHits      []int64   // messages received per node
	EmpiricalLoad []float64 // NodeHits normalized by total accesses
	Clock         float64   // virtual time at which the last access completed
	latencies     []float64 // raw access latencies, for quantiles
	sorted        []float64 // lazily cached ascending copy of latencies
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of the access latency
// distribution, e.g. Percentile(0.99) for the p99, interpolating linearly
// between order statistics (the R-7 estimator): the quantile position
// q·(n-1) falls between two sorted samples and the result blends them by
// the fractional part. It panics if q is outside [0, 1]; it returns 0 when
// no accesses were recorded.
func (s *Stats) Percentile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("netsim: quantile %v outside [0,1]", q))
	}
	if len(s.latencies) == 0 {
		return 0
	}
	sorted := s.sortedLatencies()
	n := len(sorted)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	if lo+1 >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// sortedLatencies returns an ascending copy of the latency samples, sorted
// once and cached: summary paths (the quorumstat table calls Percentile four
// times per system) reuse the same sorted slice instead of re-sorting per
// call. The cache refreshes if samples were appended since it was built.
func (s *Stats) sortedLatencies() []float64 {
	if len(s.sorted) != len(s.latencies) {
		s.sorted = append(s.sorted[:0], s.latencies...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Latencies returns a copy of the raw per-access latency samples.
func (s *Stats) Latencies() []float64 {
	return append([]float64(nil), s.latencies...)
}

// clientAccessCounts returns how many accesses each client issues: the
// uniform AccessesPerClient when rates is nil, otherwise each client's
// rate-proportional share of the n·AccessesPerClient total, apportioned by
// the largest-remainder method so the counts sum to exactly
// n·AccessesPerClient (the counting identities audited downstream depend on
// the exact total). Zero-rate clients issue no accesses: a leftover unit
// only ever lands on a positive fractional remainder, and there are at
// least as many of those as leftover units.
func clientAccessCounts(rates []float64, n, perClient int) []int {
	counts := make([]int, n)
	if rates == nil {
		for v := range counts {
			counts[v] = perClient
		}
		return counts
	}
	rsum := 0.0
	for _, r := range rates {
		rsum += r
	}
	total := n * perClient
	rem := make([]float64, n)
	assigned := 0
	for v := range counts {
		s := float64(total) * rates[v] / rsum
		c := int(math.Floor(s))
		counts[v] = c
		rem[v] = s - float64(c)
		assigned += c
	}
	if leftover := total - assigned; leftover > 0 {
		order := make([]int, n)
		for v := range order {
			order[v] = v
		}
		sort.Slice(order, func(i, j int) bool {
			if rem[order[i]] != rem[order[j]] {
				return rem[order[i]] > rem[order[j]]
			}
			return order[i] < order[j]
		})
		for i := 0; i < leftover; i++ {
			counts[order[i]]++
		}
	}
	return counts
}

// event is a pending message delivery or access start in the event queue.
type event struct {
	at             float64
	seq            int // tie-breaker for determinism
	client, access int
}

// eventQueue is a binary min-heap over (at, seq).
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	i := len(*q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*q).less(i, p) {
			break
		}
		(*q)[i], (*q)[p] = (*q)[p], (*q)[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	old := *q
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*q = old[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < last && (*q).less(l, m) {
			m = l
		}
		if r < last && (*q).less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		(*q)[i], (*q)[m] = (*q)[m], (*q)[i]
		i = m
	}
	return top
}

// Run executes the simulation and returns aggregate statistics.
func Run(cfg Config) (*Stats, error) {
	ins := cfg.Instance
	if ins == nil {
		return nil, fmt.Errorf("netsim: nil instance")
	}
	if err := ins.Validate(cfg.Placement); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	if cfg.AccessesPerClient <= 0 {
		return nil, fmt.Errorf("netsim: AccessesPerClient = %d, want > 0", cfg.AccessesPerClient)
	}
	if cfg.InterAccessTime < 0 {
		return nil, fmt.Errorf("netsim: negative InterAccessTime %v", cfg.InterAccessTime)
	}
	if err := validateWorkers(cfg.Workers); err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		return runSharded(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ins.M.N()
	nQ := ins.Sys.NumQuorums()
	// counts stays nil for uniform (nil) rates: the default path pays no
	// per-run allocation and every client issues cfg.AccessesPerClient.
	var counts []int
	if ins.Rates != nil {
		counts = clientAccessCounts(ins.Rates, n, cfg.AccessesPerClient)
	}

	// Precompute the quorum sampling CDF.
	cdf := make([]float64, nQ)
	acc := 0.0
	for q := 0; q < nQ; q++ {
		acc += ins.Strat.P(q)
		cdf[q] = acc
	}
	sample := func() int {
		x := rng.Float64() * acc
		return sort.SearchFloat64s(cdf, x)
	}

	stats := &Stats{
		Mode:      cfg.Mode,
		PerClient: make([]float64, n),
		NodeHits:  make([]int64, n),
	}
	perClientCount := make([]int, n)

	sp := obs.Start("netsim.run")
	defer sp.End()
	var events, messages int64
	maxQueueDepth := 0
	defer func() {
		obs.Count("netsim.events", events)
		obs.Count("netsim.messages", messages)
		obs.GaugeMax("netsim.max_queue_depth", float64(maxQueueDepth))
	}()

	rec := recorderFor(cfg.Recorder)
	var ts *tsState
	runID := 0
	var traced int64
	if rec != nil {
		runID = rec.beginRun()
		ts = newTSState(rec, runID)
		defer func() { obs.Count("netsim.traced_accesses", traced) }()
	}
	// Windowed SLO accounting folds every access into the window of its
	// completion time; accNodes is a per-access scratch of the nodes its
	// messages hit, shared by the SLO and heat paths and reused so neither
	// allocates per access.
	slo := rec != nil && rec.sloEnabled()
	ht := heatFor(cfg.Heat)
	collectNodes := slo || ht != nil
	var accNodes []int
	if slo {
		rec.sloSetNodes(runID, n)
	}
	if collectNodes {
		accNodes = make([]int, 0, 16)
	}
	// When telemetry is on, access latencies accumulate in a run-local
	// log-linear histogram merged once at run end — one contention point per
	// run instead of one per access.
	var lh *obs.LogHist
	if obs.Enabled() {
		lh = obs.NewLogHist()
	}

	var q eventQueue
	seq := 0
	for v := 0; v < n; v++ {
		if counts != nil && counts[v] == 0 {
			continue
		}
		q.push(event{at: 0, seq: seq, client: v, access: 0})
		seq++
	}
	for len(q) > 0 {
		if len(q) > maxQueueDepth {
			maxQueueDepth = len(q)
		}
		e := q.pop()
		events++
		if ts != nil {
			// Emit every time-series boundary crossed before this event; all
			// previously processed events are ≤ each boundary, so the gauges
			// are consistent at the sample instant.
			ts.advance(e.at, func(at float64, s *TSample) {
				ts.done.popTo(at)
				s.InFlight = len(ts.done)
				s.Accesses = stats.Accesses
				s.NodeHits = append([]int64(nil), stats.NodeHits...)
			})
		}
		v := e.client
		qi := sample()
		if qi >= nQ {
			qi = nQ - 1
		}
		var tr *AccessTrace
		if rec != nil && rec.shouldTrace() {
			tr = &AccessTrace{Run: runID, Client: v, Quorum: qi, Mode: cfg.Mode, Start: e.at}
			tr.Probes = rec.getProbes(len(ins.Sys.Quorum(qi)))[:0]
		}
		row := ins.M.Row(v)
		var latency float64
		accNodes = accNodes[:0]
		for _, u := range ins.Sys.Quorum(qi) {
			node := cfg.Placement.Node(u)
			d := row[node]
			stats.NodeHits[node]++
			messages++
			if collectNodes {
				accNodes = append(accNodes, node)
			}
			if tr != nil {
				dispatch := e.at
				if cfg.Mode == Sequential {
					dispatch += latency
				}
				tr.Probes = append(tr.Probes, ProbeSpan{
					Member: u, Node: node,
					Dispatch: dispatch, NetDelay: d, Complete: dispatch + d,
				})
			}
			switch cfg.Mode {
			case Parallel:
				if d > latency {
					latency = d
				}
			case Sequential:
				latency += d
			}
		}
		done := e.at + latency
		if done > stats.Clock {
			stats.Clock = done
		}
		stats.Accesses++
		stats.AvgLatency += latency
		stats.latencies = append(stats.latencies, latency)
		stats.PerClient[v] += latency
		perClientCount[v]++
		if lh != nil {
			lh.Observe(latency)
		}
		if slo {
			rec.sloAccess(runID, done, latency, 0, false, accNodes)
		}
		if ht != nil {
			ht.Observe(e.at, v, accNodes)
		}
		if tr != nil {
			tr.End = done
			tr.Latency = latency
			markStraggler(tr)
			rec.add(*tr)
			traced++
		}
		if ts != nil {
			ts.done.push(done)
		}
		limit := cfg.AccessesPerClient
		if counts != nil {
			limit = counts[v]
		}
		if e.access+1 < limit {
			think := 0.0
			if cfg.InterAccessTime > 0 {
				think = rng.ExpFloat64() * cfg.InterAccessTime
			}
			q.push(event{at: done + think, seq: seq, client: v, access: e.access + 1})
			seq++
		}
	}
	stats.AvgLatency /= float64(stats.Accesses)
	for v := 0; v < n; v++ {
		if perClientCount[v] > 0 {
			stats.PerClient[v] /= float64(perClientCount[v])
		}
	}
	stats.EmpiricalLoad = make([]float64, n)
	totalAccesses := float64(stats.Accesses)
	for v := 0; v < n; v++ {
		// Empirical load: fraction of all accesses that hit node v — the
		// sampled analogue of load_f(v) = Σ_{u:f(u)=v} load(u). With
		// uniform rates the denominator equals n·AccessesPerClient.
		stats.EmpiricalLoad[v] = float64(stats.NodeHits[v]) / totalAccesses
	}
	if lh != nil {
		obs.MergeHist("netsim.access_latency", lh)
	}
	return stats, nil
}
