package netsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Access-level tracing: every simulated quorum access can be captured as an
// AccessTrace with one ProbeSpan per contacted quorum member, recorded into
// a bounded ring buffer (a Recorder) with optional 1-in-k sampling. The
// paper's objective *is* access delay (Avg Δ_f, Avg Γ_f — Eq. 1, §5), so
// when a placement underperforms its bound the trace shows which accesses
// were slow and which member was the straggler. Recording is off unless a
// Recorder is attached (per-Config or package default); the disabled path
// costs one nil check per access.

// ProbeSpan records one quorum-member contact within a traced access. All
// times are virtual simulation time. QueueWait and Service are nonzero only
// in the queueing simulator; the propagation-only simulators charge NetDelay
// alone.
type ProbeSpan struct {
	Member    int     `json:"member"` // logical element index in the universe
	Node      int     `json:"node"`   // hosting network node
	Dispatch  float64 `json:"dispatch"`
	QueueWait float64 `json:"queue_wait"`
	Service   float64 `json:"service"`
	NetDelay  float64 `json:"net_delay"` // propagation (round trip where modeled)
	Complete  float64 `json:"complete"`
	Straggler bool    `json:"straggler"` // determined the access latency
	Failed    bool    `json:"failed"`    // probed node was down (failure sim)
}

// AccessTrace is one traced quorum access.
type AccessTrace struct {
	ID       int64       `json:"id"`
	Run      int         `json:"run"` // recorder-assigned run index
	Client   int         `json:"client"`
	Quorum   int         `json:"quorum"` // sampled quorum index
	Mode     Mode        `json:"mode"`
	Attempts int         `json:"attempts"` // failed attempts before the outcome (failure sim)
	Aborted  bool        `json:"aborted"`  // retry budget exhausted (failure sim)
	Start    float64     `json:"start"`
	End      float64     `json:"end"`
	Latency  float64     `json:"latency"`
	Probes   []ProbeSpan `json:"probes"`
}

// TSample is one time-series snapshot of simulator gauges, taken every
// Recorder interval of virtual time.
type TSample struct {
	Run        int     `json:"run"`
	At         float64 `json:"at"`
	InFlight   int     `json:"in_flight"`             // accesses issued but not completed
	Accesses   int     `json:"accesses"`              // cumulative completed accesses
	NodeHits   []int64 `json:"node_hits"`             // cumulative per-node messages
	QueueDepth []int   `json:"queue_depth,omitempty"` // per-node FIFO depth incl. in service (queueing sim)
}

// defaultTraceCapacity bounds the ring buffer when the caller does not pick
// a capacity.
const defaultTraceCapacity = 4096

// defaultSeriesCap bounds the time-series sample buffer. Traces already
// live in a fixed ring, but the series grew one sample per interval
// boundary for as long as a run lasted — a 10⁷-access run at a fine
// interval could swamp the Perfetto export. Past the cap new samples are
// counted as dropped instead of retained, keeping exports bounded.
const defaultSeriesCap = 1 << 16

// Recorder captures per-access traces and time-series samples from
// simulation runs into a bounded ring buffer. It is safe for concurrent use
// and may be shared by several runs (each run gets its own run index).
// Attach one per run via Config.Recorder, or install a process-wide default
// with SetDefaultRecorder.
type Recorder struct {
	sampleEvery int
	tsInterval  float64

	mu            sync.Mutex
	capacity      int
	ring          []AccessTrace
	next          int   // ring write cursor
	added         int64 // traces ever recorded (incl. overwritten)
	seen          int64 // accesses considered for sampling
	runs          int
	nextLabel     string
	labels        map[int]string
	series        []TSample
	seriesCap     int
	seriesDropped int64
	// free recycles the Probes backing arrays of overwritten ring entries
	// back to the simulators (getProbes), so a saturated ring stops
	// allocating probe slices. Bounded: each overwrite donates one slice and
	// each traced access consumes at most one.
	free [][]ProbeSpan

	// Windowed SLO accounting (see slo.go). sloWindow ≤ 0 means off.
	sloWindow float64
	sloAccs   map[sloKey]*sloAcc
	sloNodes  map[int]int // run → network size, the load-skew denominator
}

// NewRecorder returns a Recorder holding up to capacity traces (≤ 0 means
// the default 4096), recording every sampleEvery-th access (≤ 1 means every
// access), and snapshotting time-series gauges every tsInterval units of
// virtual time (≤ 0 disables the time series).
func NewRecorder(capacity, sampleEvery int, tsInterval float64) *Recorder {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if tsInterval < 0 {
		tsInterval = 0
	}
	return &Recorder{
		sampleEvery: sampleEvery,
		tsInterval:  tsInterval,
		capacity:    capacity,
		seriesCap:   defaultSeriesCap,
		labels:      make(map[int]string),
	}
}

// SetSeriesCap bounds how many time-series samples the recorder retains
// (≤ 0 removes the bound). Samples arriving past the cap are dropped and
// counted; see SeriesDropped.
func (r *Recorder) SetSeriesCap(max int) {
	r.mu.Lock()
	r.seriesCap = max
	r.mu.Unlock()
}

// SeriesDropped returns how many time-series samples the cap discarded.
func (r *Recorder) SeriesDropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seriesDropped
}

// sampleEveryN returns the recorder's 1-in-k trace sampling divisor
// (immutable after construction; the sharded engine folds it into its
// deterministic sampling hash).
func (r *Recorder) sampleEveryN() int {
	return r.sampleEvery
}

// Trace-sampling presets for -trace-sample flags: named rates for the two
// regimes operators actually pick — "fine" keeps enough per-access detail
// to diagnose a placement (1 in 16), "coarse" keeps Perfetto exports of
// multi-million-access parallel runs small (1 in 1024).
const (
	TraceSampleFine   = 16
	TraceSampleCoarse = 1024
)

// ParseTraceSample parses a -trace-sample flag value: a positive integer
// k (trace every k-th access; 1 = all) or a preset name, "fine" (1 in
// 16) or "coarse" (1 in 1024).
func ParseTraceSample(s string) (int, error) {
	switch s {
	case "fine":
		return TraceSampleFine, nil
	case "coarse":
		return TraceSampleCoarse, nil
	}
	var k int
	if _, err := fmt.Sscanf(s, "%d", &k); err != nil || k < 1 {
		return 0, fmt.Errorf("netsim: trace sample %q is neither a positive integer nor a preset (fine, coarse)", s)
	}
	return k, nil
}

// NextRunLabel sets the human-readable label attached to the next run that
// begins on this recorder (e.g. the quorum-system name), used by the Chrome
// trace export to name process tracks.
func (r *Recorder) NextRunLabel(label string) {
	r.mu.Lock()
	r.nextLabel = label
	r.mu.Unlock()
}

// beginRun assigns a run index to a simulation run.
func (r *Recorder) beginRun() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.runs
	r.runs++
	if r.nextLabel != "" {
		r.labels[id] = r.nextLabel
		r.nextLabel = ""
	}
	return id
}

// shouldTrace reports whether the next access should be traced, advancing
// the sampling counter.
func (r *Recorder) shouldTrace() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	ok := r.seen%int64(r.sampleEvery) == 0
	r.seen++
	return ok
}

// add records a completed trace into the ring, assigning its ID. When the
// full ring overwrites an entry, the evicted trace's probe array goes back
// to the free pool (safe because Traces deep-copies what it hands out).
func (r *Recorder) add(tr AccessTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr.ID = r.added
	r.added++
	if len(r.ring) < r.capacity {
		r.ring = append(r.ring, tr)
		r.next = len(r.ring) % r.capacity
		return
	}
	if old := r.ring[r.next].Probes; cap(old) > 0 {
		r.free = append(r.free, old[:0])
	}
	r.ring[r.next] = tr
	r.next = (r.next + 1) % r.capacity
}

// getProbes returns a zeroed ProbeSpan slice of length n, backed when
// possible by memory recycled from overwritten ring entries. Simulators
// call it instead of make for trace probe windows; slices flow back via add.
func (r *Recorder) getProbes(n int) []ProbeSpan {
	r.mu.Lock()
	var s []ProbeSpan
	if k := len(r.free); k > 0 {
		s = r.free[k-1]
		r.free = r.free[:k-1]
	}
	r.mu.Unlock()
	if cap(s) < n {
		return make([]ProbeSpan, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = ProbeSpan{}
	}
	return s
}

// addSample appends one time-series sample, or counts it as dropped once
// the series cap is reached.
func (r *Recorder) addSample(s TSample) {
	r.mu.Lock()
	if r.seriesCap > 0 && len(r.series) >= r.seriesCap {
		r.seriesDropped++
	} else {
		r.series = append(r.series, s)
	}
	r.mu.Unlock()
}

// Traces returns the retained traces, oldest first. Probe slices are deep
// copies: the ring recycles its probe memory as new traces arrive, so the
// returned traces must not alias it.
func (r *Recorder) Traces() []AccessTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AccessTrace, 0, len(r.ring))
	if len(r.ring) < r.capacity {
		out = append(out, r.ring...)
	} else {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	}
	for i := range out {
		out[i].Probes = append([]ProbeSpan(nil), out[i].Probes...)
	}
	return out
}

// Series returns a copy of the recorded time-series samples in order.
func (r *Recorder) Series() []TSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TSample(nil), r.series...)
}

// Recorded returns how many traces were ever recorded, including those the
// ring has since overwritten.
func (r *Recorder) Recorded() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added
}

// Dropped returns how many recorded traces the bounded ring overwrote.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.added <= int64(r.capacity) {
		return 0
	}
	return r.added - int64(r.capacity)
}

// runLabel returns the label of run id, if any.
func (r *Recorder) runLabel(id int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labels[id]
}

// --- package default ---------------------------------------------------------

// defaultRecorder receives traces from runs whose Config carries no explicit
// Recorder, mirroring the obs package's process-wide collector switch so
// tracing threads through call stacks (e.g. the experiment suite) without
// signature changes.
var defaultRecorder atomic.Pointer[Recorder]

// SetDefaultRecorder installs r as the recorder for runs that do not attach
// one explicitly; nil uninstalls.
func SetDefaultRecorder(r *Recorder) {
	defaultRecorder.Store(r)
}

// DefaultRecorder returns the installed process-wide recorder, or nil.
func DefaultRecorder() *Recorder {
	return defaultRecorder.Load()
}

// recorderFor resolves the recorder a run should use.
func recorderFor(explicit *Recorder) *Recorder {
	if explicit != nil {
		return explicit
	}
	return defaultRecorder.Load()
}

// --- straggler marking --------------------------------------------------------

// markStraggler flags the probe that determined the access latency: the
// latest completion under the max-delay model, the longest individual delay
// under the total-delay model. Failed probes never count.
func markStraggler(tr *AccessTrace) {
	markStragglerIn(tr.Mode, tr.Probes)
}

// markStragglerIn marks the straggler within one probe window (used by the
// failure simulator to consider only the final successful attempt).
func markStragglerIn(mode Mode, probes []ProbeSpan) {
	best := -1
	var bestVal float64
	for i := range probes {
		p := &probes[i]
		if p.Failed {
			continue
		}
		v := p.Complete
		if mode == Sequential {
			v = p.Complete - p.Dispatch
		}
		if best < 0 || v > bestVal {
			best, bestVal = i, v
		}
	}
	if best >= 0 {
		probes[best].Straggler = true
	}
}

// --- time-series sampling ----------------------------------------------------

// tsState drives interval sampling for one run: sample is called for every
// interval boundary crossed before the next event is processed.
type tsState struct {
	rec      *Recorder
	run      int
	interval float64
	next     float64
	// emit, when non-nil, receives samples instead of rec.addSample. The
	// sharded engine points it at a worker-local buffer: every worker
	// walks the identical boundary sequence, so buffered samples merge
	// boundary-by-boundary after the join (mergeSamples).
	emit func(TSample)
	// completion-time min-heap of in-flight accesses (propagation sims,
	// where completion is not itself an event).
	done fheap
}

func newTSState(rec *Recorder, run int) *tsState {
	if rec == nil || rec.tsInterval <= 0 {
		return nil
	}
	return &tsState{rec: rec, run: run, interval: rec.tsInterval, next: rec.tsInterval}
}

// newTSStateSink is newTSState with samples routed to emit instead of the
// recorder's shared series.
func newTSStateSink(rec *Recorder, run int, emit func(TSample)) *tsState {
	t := newTSState(rec, run)
	if t != nil {
		t.emit = emit
	}
	return t
}

// advance emits samples for every boundary ≤ now; fill populates the
// per-simulator gauges of the sample (queue depths, in-flight count).
func (t *tsState) advance(now float64, fill func(at float64, s *TSample)) {
	for t.next <= now {
		s := TSample{Run: t.run, At: t.next}
		fill(t.next, &s)
		if t.emit != nil {
			t.emit(s)
		} else {
			t.rec.addSample(s)
		}
		t.next += t.interval
	}
}

// fheap is a plain float64 min-heap (completion times).
type fheap []float64

func (h *fheap) push(x float64) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *fheap) popTo(limit float64) {
	for len(*h) > 0 && (*h)[0] <= limit {
		n := len(*h) - 1
		(*h)[0] = (*h)[n]
		*h = (*h)[:n]
		i := 0
		for {
			l, r, m := 2*i+1, 2*i+2, i
			if l < n && (*h)[l] < (*h)[m] {
				m = l
			}
			if r < n && (*h)[r] < (*h)[m] {
				m = r
			}
			if m == i {
				break
			}
			(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
			i = m
		}
	}
}

// --- plain-text breakdown -----------------------------------------------------

// Breakdown renders a per-node and per-quorum latency-percentile table over
// the retained traces: per node, the distribution of probe durations
// (dispatch→complete) plus how often the node was the straggler; per
// quorum, the distribution of access latencies.
func (r *Recorder) Breakdown() string {
	traces := r.Traces()
	var b strings.Builder
	fmt.Fprintf(&b, "trace breakdown (%d traces retained, %d recorded, %d dropped)\n",
		len(traces), r.Recorded(), r.Dropped())
	if len(traces) == 0 {
		return b.String()
	}

	nodeDur := map[int][]float64{}
	nodeStrag := map[int]int{}
	nodeWait := map[int]float64{}
	quorumLat := map[int][]float64{}
	for _, tr := range traces {
		quorumLat[tr.Quorum] = append(quorumLat[tr.Quorum], tr.Latency)
		for _, p := range tr.Probes {
			if p.Failed {
				continue
			}
			nodeDur[p.Node] = append(nodeDur[p.Node], p.Complete-p.Dispatch)
			nodeWait[p.Node] += p.QueueWait
			if p.Straggler {
				nodeStrag[p.Node]++
			}
		}
	}

	b.WriteString("per-node probe latency:\n")
	fmt.Fprintf(&b, "  %-6s %7s %9s %9s %9s %9s %9s %10s\n",
		"node", "probes", "p50", "p95", "p99", "max", "avg wait", "straggler")
	for _, v := range sortedIntKeys(nodeDur) {
		d := nodeDur[v]
		sort.Float64s(d)
		avgWait := nodeWait[v] / float64(len(d))
		fmt.Fprintf(&b, "  %-6d %7d %9.4f %9.4f %9.4f %9.4f %9.4f %9.1f%%\n",
			v, len(d), quantileSorted(d, 0.5), quantileSorted(d, 0.95),
			quantileSorted(d, 0.99), d[len(d)-1], avgWait,
			100*float64(nodeStrag[v])/float64(len(d)))
	}

	b.WriteString("per-quorum access latency:\n")
	fmt.Fprintf(&b, "  %-6s %8s %9s %9s %9s %9s\n", "quorum", "accesses", "p50", "p95", "p99", "max")
	for _, q := range sortedIntKeys(quorumLat) {
		d := quorumLat[q]
		sort.Float64s(d)
		fmt.Fprintf(&b, "  %-6d %8d %9.4f %9.4f %9.4f %9.4f\n",
			q, len(d), quantileSorted(d, 0.5), quantileSorted(d, 0.95),
			quantileSorted(d, 0.99), d[len(d)-1])
	}
	return b.String()
}

func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// quantileSorted interpolates the q-quantile of an ascending-sorted sample
// with the same R-7 estimator as Stats.Percentile.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo+1 >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
