package netsim

import (
	"math"
	"testing"

	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func TestRunWithFailuresValidation(t *testing.T) {
	ins, p := buildInstance(t)
	bad := []FailureConfig{
		{Instance: nil, Placement: p, AccessesPerClient: 1},
		{Instance: ins, Placement: p, AccessesPerClient: 0},
		{Instance: ins, Placement: p, AccessesPerClient: 1, NodeFailureProb: -0.5},
		{Instance: ins, Placement: p, AccessesPerClient: 1, NodeFailureProb: 1.5},
		{Instance: ins, Placement: p, AccessesPerClient: 1, MaxRetries: -1},
		{Instance: ins, Placement: p, AccessesPerClient: 1, RetryPenalty: -1},
	}
	for i, cfg := range bad {
		if _, err := RunWithFailures(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestNoFailuresMeansAllSucceed(t *testing.T) {
	ins, p := buildInstance(t)
	stats, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 0, AccessesPerClient: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SuccessRate != 1 || stats.FailedOutright != 0 || stats.Retries != 0 {
		t.Fatalf("lossless run: %+v", stats)
	}
	// With p=0, the latency must match the failure-free simulator's model.
	want := ins.AvgMaxDelay(p)
	if math.Abs(stats.AvgLatency-want)/want > 0.1 {
		t.Fatalf("avg latency %v far from analytic %v", stats.AvgLatency, want)
	}
}

func TestAllNodesDownMeansAllFail(t *testing.T) {
	ins, p := buildInstance(t)
	stats, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 1, MaxRetries: 2, AccessesPerClient: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Succeeded != 0 || stats.SuccessRate != 0 {
		t.Fatalf("all-down run succeeded: %+v", stats)
	}
	if stats.EmpiricalUnavail != 1 {
		t.Fatalf("EmpiricalUnavail = %v, want 1", stats.EmpiricalUnavail)
	}
}

// TestEmpiricalUnavailMatchesAnalytic: the sampled no-live-quorum rate
// converges to Instance.NodeFailureProbability.
func TestEmpiricalUnavailMatchesAnalytic(t *testing.T) {
	ins, p := buildInstance(t)
	prob := 0.3
	want, err := ins.NodeFailureProbability(p, prob)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: prob, MaxRetries: 3, AccessesPerClient: 4000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.EmpiricalUnavail-want) > 0.02 {
		t.Fatalf("empirical unavailability %v, analytic %v", stats.EmpiricalUnavail, want)
	}
}

// TestRetriesImproveSuccessRate: with flaky nodes, a retry budget lifts the
// success rate, and the success rate with unlimited-ish retries approaches
// 1 - unavailability.
func TestRetriesImproveSuccessRate(t *testing.T) {
	ins, p := buildInstance(t)
	base, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 0.3, MaxRetries: 0, AccessesPerClient: 2000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	retried, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 0.3, MaxRetries: 8, AccessesPerClient: 2000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if retried.SuccessRate <= base.SuccessRate {
		t.Fatalf("retries did not help: %v vs %v", retried.SuccessRate, base.SuccessRate)
	}
	if retried.Retries == 0 {
		t.Fatal("no retries recorded despite failures")
	}
}

func TestRetryPenaltyIncreasesLatency(t *testing.T) {
	ins, p := buildInstance(t)
	cheap, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 0.4, MaxRetries: 5, RetryPenalty: 0,
		AccessesPerClient: 1500, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 0.4, MaxRetries: 5, RetryPenalty: 10,
		AccessesPerClient: 1500, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if costly.AvgLatency <= cheap.AvgLatency {
		t.Fatalf("penalty did not raise latency: %v vs %v", costly.AvgLatency, cheap.AvgLatency)
	}
}

// TestColocationHurtsAvailability: placing all elements on one node makes
// the system exactly as fragile as that node, while spreading them out
// keeps the quorum-system redundancy.
func TestColocationHurtsAvailability(t *testing.T) {
	ins, spread := buildInstance(t)
	colocated := placement.NewPlacement([]int{4, 4, 4, 4})
	p := 0.3
	fCo, err := ins.NodeFailureProbability(colocated, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fCo-p) > 1e-12 {
		t.Fatalf("colocated failure probability %v, want %v (single point of failure)", fCo, p)
	}
	fSpread, err := ins.NodeFailureProbability(spread, p)
	if err != nil {
		t.Fatal(err)
	}
	// Spread over 4 nodes, Grid(2) needs a row+column alive: still better
	// than a single point of failure at p=0.3? For Grid(2) on 4 distinct
	// nodes the system survives only specific patterns; compare against
	// the quorum-level failure probability instead of asserting an
	// inequality blindly.
	want, err := quorum.FailureProbability(ins.Sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fSpread-want) > 1e-12 {
		t.Fatalf("bijective placement failure prob %v != element-level %v", fSpread, want)
	}
}

func TestPlacementResilience(t *testing.T) {
	ins, spread := buildInstance(t)
	// Bijective placement: node resilience equals element resilience.
	rSpread, err := ins.PlacementResilience(spread)
	if err != nil {
		t.Fatal(err)
	}
	if want := quorum.Resilience(ins.Sys); rSpread != want {
		t.Fatalf("spread resilience %d, element-level %d", rSpread, want)
	}
	colocated := placement.NewPlacement([]int{2, 2, 2, 2})
	rCo, err := ins.PlacementResilience(colocated)
	if err != nil {
		t.Fatal(err)
	}
	if rCo != 0 {
		t.Fatalf("colocated resilience %d, want 0", rCo)
	}
}
