package netsim

import (
	"math"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func TestRunQueueingValidation(t *testing.T) {
	ins, p := buildInstance(t)
	bad := []QueueConfig{
		{Instance: nil, Placement: p, ArrivalRate: 1, AccessesPerClient: 1},
		{Instance: ins, Placement: p, ArrivalRate: 0, AccessesPerClient: 1},
		{Instance: ins, Placement: p, ArrivalRate: 1, AccessesPerClient: 0},
		{Instance: ins, Placement: p, ArrivalRate: 1, AccessesPerClient: 1, ServiceMean: -1},
	}
	for i, cfg := range bad {
		if _, err := RunQueueing(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestZeroServiceMatchesPropagation: with instantaneous service, the mean
// latency is the round-trip analogue of AvgΔ (request out, response back:
// 2× the one-way max distance per access, in expectation).
func TestZeroServiceMatchesPropagation(t *testing.T) {
	ins, p := buildInstance(t)
	stats, err := RunQueueing(QueueConfig{
		Instance: ins, Placement: p,
		ArrivalRate: 0.01, ServiceMean: 0,
		AccessesPerClient: 3000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * ins.AvgMaxDelay(p)
	if rel := math.Abs(stats.AvgLatency-want) / want; rel > 0.05 {
		t.Fatalf("latency %v, want ≈ %v (rel %v)", stats.AvgLatency, want, rel)
	}
	if stats.AvgWait != 0 {
		t.Fatalf("zero-service wait %v, want 0", stats.AvgWait)
	}
}

// TestMM1Wait: a single served node fed by Poisson arrivals behaves like an
// M/M/1 queue; at utilization ρ the mean wait is ρ·s/(1-ρ).
func TestMM1Wait(t *testing.T) {
	// Star graph: node 0 hosts the only element; clients everywhere.
	g := graph.Star(6)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := quorum.NewSystem("single", 1, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1, 1, 1, 1, 1, 1}
	ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(1))
	if err != nil {
		t.Fatal(err)
	}
	pl := placement.NewPlacement([]int{0})

	// 6 clients × rate λ each; service mean s at cap-1 node 0.
	// ρ = 6λs = 0.5 with λ = 1/12, s = 1.
	s := 1.0
	lambda := 1.0 / 12
	stats, err := RunQueueing(QueueConfig{
		Instance: ins, Placement: pl,
		ArrivalRate: lambda, ServiceMean: s,
		AccessesPerClient: 8000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rho := 6 * lambda * s
	wantWait := rho * s / (1 - rho) // M/M/1: W_q = ρ/(μ-λ) with μ = 1/s
	if rel := math.Abs(stats.AvgWait-wantWait) / wantWait; rel > 0.15 {
		t.Fatalf("M/M/1 wait %v, want ≈ %v (rel %v)", stats.AvgWait, wantWait, rel)
	}
	if rel := math.Abs(stats.Utilization[0]-rho) / rho; rel > 0.1 {
		t.Fatalf("utilization %v, want ≈ %v", stats.Utilization[0], rho)
	}
}

// TestQueueingLoadDelayCoupling: the same placement under increasing
// arrival rate sees increasing latency — the coupling the paper's capacity
// constraints are there to prevent.
func TestQueueingLoadDelayCoupling(t *testing.T) {
	ins, p := buildInstance(t)
	var last float64
	for i, rate := range []float64{0.01, 0.05, 0.1} {
		stats, err := RunQueueing(QueueConfig{
			Instance: ins, Placement: p,
			ArrivalRate: rate, ServiceMean: 0.8,
			AccessesPerClient: 2000, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && stats.AvgLatency <= last {
			t.Fatalf("latency did not grow with load: %v after %v", stats.AvgLatency, last)
		}
		last = stats.AvgLatency
	}
}

// TestQueueingColocationPenalty: colocating all elements on one node makes
// queueing strictly worse than spreading, at equal propagation quality —
// the load-dispersion argument of §1 made quantitative.
func TestQueueingColocationPenalty(t *testing.T) {
	g := graph.Complete(6) // uniform propagation so only queueing differs
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Grid(2)
	caps := []float64{3, 3, 3, 3, 3, 3}
	ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(4))
	if err != nil {
		t.Fatal(err)
	}
	colocated := placement.NewPlacement([]int{0, 0, 0, 0})
	spread := placement.NewPlacement([]int{0, 1, 2, 3})
	run := func(pl placement.Placement) float64 {
		stats, err := RunQueueing(QueueConfig{
			Instance: ins, Placement: pl,
			ArrivalRate: 0.12, ServiceMean: 1.2,
			AccessesPerClient: 2500, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.AvgLatency
	}
	co := run(colocated)
	sp := run(spread)
	if co <= sp {
		t.Fatalf("colocated latency %v not worse than spread %v", co, sp)
	}
}

func TestQueueingDeterministicBySeed(t *testing.T) {
	ins, p := buildInstance(t)
	cfg := QueueConfig{
		Instance: ins, Placement: p,
		ArrivalRate: 0.05, ServiceMean: 0.5,
		AccessesPerClient: 200, Seed: 11,
	}
	a, err := RunQueueing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunQueueing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatency != b.AvgLatency || a.AvgWait != b.AvgWait {
		t.Fatalf("same seed, different stats: %v vs %v", a.AvgLatency, b.AvgLatency)
	}
}

func TestQueueingAllAccessesComplete(t *testing.T) {
	ins, p := buildInstance(t)
	stats, err := RunQueueing(QueueConfig{
		Instance: ins, Placement: p,
		ArrivalRate: 0.2, ServiceMean: 1,
		AccessesPerClient: 100, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 100 * ins.M.N(); stats.Accesses != want {
		t.Fatalf("completed %d accesses, want %d", stats.Accesses, want)
	}
}
