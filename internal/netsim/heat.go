package netsim

import (
	"sync/atomic"

	"quorumplace/internal/heat"
)

// Heat sketch plumbing, mirroring the Recorder's per-Config-or-default
// pattern: every simulator feeds the workload sketch (per-client access
// counts, per-node message hits, keyed by the virtual-time epoch of the
// access's issue) either through its Config.Heat field or through the
// process-wide default installed here. With neither, heat observation is
// off and costs one nil check per access.

var defaultHeat atomic.Pointer[heat.Sketch]

// SetDefaultHeat installs (or, with nil, removes) the process-wide default
// heat sketch that simulation runs fall back to when their config carries
// none. Used by the CLI -heat flags so every simulation a command runs
// feeds one sketch.
func SetDefaultHeat(s *heat.Sketch) {
	defaultHeat.Store(s)
}

// DefaultHeat returns the installed default heat sketch, or nil.
func DefaultHeat() *heat.Sketch {
	return defaultHeat.Load()
}

// heatFor resolves the sketch for a run: the explicit per-config sketch if
// any, else the process default, else nil (off).
func heatFor(explicit *heat.Sketch) *heat.Sketch {
	if explicit != nil {
		return explicit
	}
	return defaultHeat.Load()
}
