package netsim

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTraceProbesMatchLatency pins the acceptance invariant: in parallel
// mode the max probe completion equals the access's recorded latency; in
// sequential mode the probes chain back-to-back and the last completion
// does.
func TestTraceProbesMatchLatency(t *testing.T) {
	ins, p := buildInstance(t)
	for _, mode := range []Mode{Parallel, Sequential} {
		rec := NewRecorder(0, 1, 0)
		stats, err := Run(Config{
			Instance: ins, Placement: p, Mode: mode,
			AccessesPerClient: 40, Seed: 3, Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		traces := rec.Traces()
		if len(traces) != stats.Accesses {
			t.Fatalf("%v: traced %d of %d accesses at sample=1", mode, len(traces), stats.Accesses)
		}
		for _, tr := range traces {
			var maxComplete float64
			stragglers := 0
			for _, pr := range tr.Probes {
				if pr.Complete > maxComplete {
					maxComplete = pr.Complete
				}
				if pr.Straggler {
					stragglers++
				}
				if pr.Dispatch < tr.Start || pr.Complete > tr.End+1e-12 {
					t.Fatalf("%v: probe [%v,%v] outside access [%v,%v]",
						mode, pr.Dispatch, pr.Complete, tr.Start, tr.End)
				}
			}
			if math.Abs(maxComplete-tr.Start-tr.Latency) > 1e-12 {
				t.Fatalf("%v: max probe completion %v != start %v + latency %v",
					mode, maxComplete, tr.Start, tr.Latency)
			}
			if math.Abs(tr.End-tr.Start-tr.Latency) > 1e-12 {
				t.Fatalf("%v: end-start %v != latency %v", mode, tr.End-tr.Start, tr.Latency)
			}
			if stragglers != 1 {
				t.Fatalf("%v: %d stragglers, want exactly 1", mode, stragglers)
			}
		}
	}
}

// TestTraceSampling: 1-in-k sampling records every k-th access.
func TestTraceSampling(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(0, 10, 0)
	stats, err := Run(Config{
		Instance: ins, Placement: p, Mode: Parallel,
		AccessesPerClient: 50, Seed: 3, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64((stats.Accesses + 9) / 10)
	if rec.Recorded() != want {
		t.Fatalf("sample=10 recorded %d of %d accesses, want %d", rec.Recorded(), stats.Accesses, want)
	}
}

// TestTraceRingBounded: the ring keeps the newest traces, reports drops,
// and returns them oldest-first.
func TestTraceRingBounded(t *testing.T) {
	rec := NewRecorder(8, 1, 0)
	for i := 0; i < 20; i++ {
		rec.add(AccessTrace{Client: i})
	}
	if rec.Recorded() != 20 {
		t.Fatalf("Recorded = %d, want 20", rec.Recorded())
	}
	if rec.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", rec.Dropped())
	}
	traces := rec.Traces()
	if len(traces) != 8 {
		t.Fatalf("retained %d traces, want 8", len(traces))
	}
	for i, tr := range traces {
		if tr.Client != 12+i || tr.ID != int64(12+i) {
			t.Fatalf("trace %d = client %d id %d, want client/id %d (oldest-first)", i, tr.Client, tr.ID, 12+i)
		}
	}
}

// TestRecorderConcurrent hammers one recorder from parallel simulation runs
// while snapshotting concurrently; run with -race.
func TestRecorderConcurrent(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(256, 2, 0.5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if _, err := Run(Config{
				Instance: ins, Placement: p, Mode: Parallel,
				AccessesPerClient: 30, InterAccessTime: 1, Seed: seed, Recorder: rec,
			}); err != nil {
				t.Error(err)
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			rec.Traces()
			rec.Series()
			rec.Breakdown()
			rec.Recorded()
			rec.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if rec.Recorded() == 0 {
		t.Fatal("no traces recorded")
	}
	runs := map[int]bool{}
	for _, tr := range rec.Traces() {
		runs[tr.Run] = true
	}
	if len(runs) < 2 {
		t.Fatalf("traces from %d runs retained, want several", len(runs))
	}
}

// TestDefaultRecorder: runs without an explicit recorder fall back to the
// installed default, and uninstalling stops recording.
func TestDefaultRecorder(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(0, 1, 0)
	SetDefaultRecorder(rec)
	defer SetDefaultRecorder(nil)
	if _, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if rec.Recorded() == 0 {
		t.Fatal("default recorder captured nothing")
	}
	n := rec.Recorded()
	SetDefaultRecorder(nil)
	if _, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if rec.Recorded() != n {
		t.Fatal("recorder still capturing after uninstall")
	}
}

// TestTimeSeriesSamples: interval sampling emits monotonic virtual-time
// samples with sane gauges.
func TestTimeSeriesSamples(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(0, 1, 0.25)
	stats, err := Run(Config{
		Instance: ins, Placement: p, Mode: Parallel,
		AccessesPerClient: 100, InterAccessTime: 0.5, Seed: 7, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	series := rec.Series()
	if len(series) == 0 {
		t.Fatal("no time-series samples")
	}
	prev := 0.0
	for i, s := range series {
		if s.At <= prev && i > 0 {
			t.Fatalf("sample %d At %v not increasing (prev %v)", i, s.At, prev)
		}
		prev = s.At
		if s.InFlight < 0 || s.Accesses < 0 || s.Accesses > stats.Accesses {
			t.Fatalf("sample %d has bad gauges: %+v", i, s)
		}
		if len(s.NodeHits) != ins.M.N() {
			t.Fatalf("sample %d NodeHits len %d, want %d", i, len(s.NodeHits), ins.M.N())
		}
	}
	last := series[len(series)-1]
	if last.Accesses == 0 {
		t.Fatal("cumulative access gauge never advanced")
	}
}

// TestQueueingTraceProbes: queueing probes decompose exactly into
// propagation + queue wait + service, and the last response is the access
// latency.
func TestQueueingTraceProbes(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(0, 1, 1)
	stats, err := RunQueueing(QueueConfig{
		Instance: ins, Placement: p,
		ArrivalRate: 0.2, ServiceMean: 0.5,
		AccessesPerClient: 50, Seed: 5, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := rec.Traces()
	if len(traces) != stats.Accesses {
		t.Fatalf("traced %d of %d accesses", len(traces), stats.Accesses)
	}
	sawWait := false
	for _, tr := range traces {
		var last float64
		for _, pr := range tr.Probes {
			want := pr.Dispatch + pr.NetDelay + pr.QueueWait + pr.Service
			if math.Abs(pr.Complete-want) > 1e-9 {
				t.Fatalf("probe complete %v != dispatch+net+wait+service %v", pr.Complete, want)
			}
			if pr.QueueWait > 0 {
				sawWait = true
			}
			if pr.Complete > last {
				last = pr.Complete
			}
		}
		if math.Abs(last-tr.End) > 1e-9 || math.Abs(tr.End-tr.Start-tr.Latency) > 1e-9 {
			t.Fatalf("access end %v latency %v inconsistent with last response %v", tr.End, tr.Latency, last)
		}
	}
	if !sawWait {
		t.Fatal("no probe ever waited in queue under load")
	}
	sawDepth := false
	for _, s := range rec.Series() {
		if len(s.QueueDepth) != ins.M.N() {
			t.Fatalf("queueing sample without per-node depths: %+v", s)
		}
		for _, d := range s.QueueDepth {
			if d > 0 {
				sawDepth = true
			}
		}
	}
	if !sawDepth {
		t.Fatal("queue depth gauge never nonzero under load")
	}
}

// TestFailureTraceAttempts: failure-sim traces record retries, failed
// probes, and aborted accesses.
func TestFailureTraceAttempts(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(0, 1, 0)
	stats, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 0.4, MaxRetries: 2, RetryPenalty: 1,
		AccessesPerClient: 60, Seed: 9, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := rec.Traces()
	if len(traces) != stats.Accesses {
		t.Fatalf("traced %d of %d accesses", len(traces), stats.Accesses)
	}
	var retried, aborted, failedProbes int
	for _, tr := range traces {
		if tr.Attempts > 0 {
			retried++
		}
		if tr.Aborted {
			aborted++
			// Every failed attempt — including the last — charges one
			// RetryPenalty (here 1), so an aborted access pays Attempts of them.
			if tr.Latency != float64(tr.Attempts)*1 {
				t.Fatalf("aborted access latency %v, want %v penalties", tr.Latency, float64(tr.Attempts))
			}
		}
		for _, pr := range tr.Probes {
			if pr.Failed {
				failedProbes++
				if pr.Straggler {
					t.Fatal("failed probe marked straggler")
				}
			}
		}
	}
	if retried == 0 || failedProbes == 0 {
		t.Fatalf("no retries (%d) or failed probes (%d) at p=0.4", retried, failedProbes)
	}
	if aborted != stats.FailedOutright {
		t.Fatalf("aborted traces %d != FailedOutright %d", aborted, stats.FailedOutright)
	}
}

// TestBreakdown: the plain-text table carries the per-node and per-quorum
// sections and straggler percentages.
func TestBreakdown(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(0, 1, 0)
	if _, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 50, Seed: 3, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	got := rec.Breakdown()
	for _, want := range []string{"per-node probe latency", "per-quorum access latency", "straggler", "p99"} {
		if !strings.Contains(got, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, got)
		}
	}
}

// goldenRun is the seeded 2-client configuration whose exported Chrome
// trace is pinned byte-for-byte by testdata/chrometrace_golden.json.
func goldenRun(t *testing.T) *Recorder {
	t.Helper()
	g := graph.Path(2)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Majority(2, 2)
	ins, err := placement.NewInstance(m, []float64{1, 1}, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement([]int{0, 1})
	rec := NewRecorder(0, 1, 0.4)
	if _, err := Run(Config{
		Instance: ins, Placement: p, Mode: Parallel,
		AccessesPerClient: 3, InterAccessTime: 0.3, Seed: 42, Recorder: rec,
	}); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestChromeTraceGolden pins the exported trace-event JSON of a seeded
// 2-client run: it must be valid JSON in the Chrome trace-event shape and
// byte-identical to the golden file (regenerate with go test -run
// ChromeTraceGolden -update).
func TestChromeTraceGolden(t *testing.T) {
	rec := goldenRun(t)
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Structural validity: the document parses and every event has a phase;
	// X events have nonnegative durations.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("malformed document: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	var spans, counters, metas int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 {
				t.Fatalf("negative duration on %q", e.Name)
			}
		case "C":
			counters++
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %q on %q", e.Ph, e.Name)
		}
	}
	if spans == 0 || counters == 0 || metas == 0 {
		t.Fatalf("want spans, counters and metadata; got %d/%d/%d", spans, counters, metas)
	}

	golden := filepath.Join("testdata", "chrometrace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exported trace differs from golden (len %d vs %d); regenerate with -update if intended",
			buf.Len(), len(want))
	}
}

// TestPercentileCaching: repeated Percentile calls reuse the cached sorted
// slice without disturbing the sample order Latencies reports, and the
// cache refreshes when samples are appended.
func TestPercentileCaching(t *testing.T) {
	s := &Stats{latencies: []float64{4, 1, 3, 2}}
	if got := s.Percentile(0.5); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	// Second call hits the cache and must agree.
	if got := s.Percentile(0.5); got != 2.5 {
		t.Fatalf("cached median = %v, want 2.5", got)
	}
	if got := s.Latencies(); got[0] != 4 {
		t.Fatalf("Latencies reordered by Percentile: %v", got)
	}
	// Appending samples invalidates the cache.
	s.latencies = append(s.latencies, 0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("min after append = %v, want 0", got)
	}
	if got := s.Percentile(1); got != 4 {
		t.Fatalf("max after append = %v, want 4", got)
	}
}

// TestChromeTracePresetGolden pins the trace output of the "fine" sampling
// preset under the sharded engine: a seeded Workers=2 run sampled at
// ParseTraceSample("fine") must export byte-identical Chrome trace JSON to
// the golden file, and the bytes must not move with the worker count — the
// deterministic hash-based sampler ties traces to (client, access), not to
// the shard that simulated them. Regenerate with -update.
func TestChromeTracePresetGolden(t *testing.T) {
	every, err := ParseTraceSample("fine")
	if err != nil {
		t.Fatal(err)
	}
	if every != TraceSampleFine {
		t.Fatalf("fine preset = %d, want %d", every, TraceSampleFine)
	}
	ins, p := buildInstance(t)
	export := func(workers int) []byte {
		rec := NewRecorder(0, every, 0)
		if _, err := Run(Config{
			Instance: ins, Placement: p, Mode: Parallel,
			AccessesPerClient: 64, InterAccessTime: 0.3, Seed: 42,
			Recorder: rec, Workers: workers,
		}); err != nil {
			t.Fatal(err)
		}
		if len(rec.Traces()) == 0 {
			t.Fatalf("workers=%d: fine preset sampled no traces", workers)
		}
		var buf bytes.Buffer
		if err := rec.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := export(2)
	golden := filepath.Join("testdata", "chrometrace_fine_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fine-preset trace differs from golden (len %d vs %d); regenerate with -update if intended",
			len(got), len(want))
	}
	if other := export(5); !bytes.Equal(got, other) {
		t.Fatalf("fine-preset trace depends on worker count: workers=2 len %d, workers=5 len %d",
			len(got), len(other))
	}
}
