package netsim

import (
	"sort"
	"sync"

	"quorumplace/internal/heat"
	"quorumplace/internal/obs"
)

// Sharded engine for RunWithFailures. Crash states are resampled per
// access from the issuing client's private stream (the legacy engine
// draws them from the shared stream in global event order), so every
// shard's draws are a pure function of its own clients' access order and
// the outcome is invariant under the partition. Like Run, clients never
// interact, so the shards run barrier-free.

// failWorker is the per-shard state of one failure-simulator worker.
type failWorker struct {
	cfg         *FailureConfig
	id          int
	lo, hi      int
	counts      []int
	cdf         []float64
	acc         float64
	rec         *Recorder
	runID       int
	slo         bool
	sampleEvery int
	traceSeed   uint64
	ht          *heat.Sketch
	sh          *obs.Shard

	q         eventQueue
	streams   []prng
	alive     []bool
	accesses  int
	succeeded int
	failed    int
	retries   int64
	noLive    int
	latBuf    []latRec // successful accesses, canonical order
	traces    []keyedTrace
	accNodes  []int
}

func (w *failWorker) run() {
	cfg := w.cfg
	ins := cfg.Instance
	nQ := ins.Sys.NumQuorums()
	allAlive := cfg.NodeFailureProb == 0
	if allAlive {
		for i := range w.alive {
			w.alive[i] = true
		}
	}
	for i := range w.streams {
		w.streams[i] = newPRNG(cfg.Seed, streamAccess, w.lo+i)
	}
	for v := w.lo; v < w.hi; v++ {
		if w.counts != nil && w.counts[v] == 0 {
			continue
		}
		w.q.push(event{at: 0, seq: v, client: v, access: 0})
	}
	collectNodes := w.slo || w.ht != nil
	for len(w.q) > 0 {
		e := w.q.pop()
		v := e.client
		st := &w.streams[v-w.lo]
		row := ins.M.Row(v)
		// Crash state for this access epoch, drawn from the client stream:
		// the access's view of the world depends only on (seed, client,
		// access), never on how accesses interleave globally.
		if !allAlive {
			for i := range w.alive {
				w.alive[i] = st.Float64() >= cfg.NodeFailureProb
			}
		}
		if !anyQuorumAlive(ins, cfg.Placement, w.alive) {
			w.noLive++
		}
		w.accesses++
		var tr *AccessTrace
		if w.rec != nil && shouldTraceDet(w.traceSeed, v, e.access, w.sampleEvery) {
			tr = &AccessTrace{Run: w.runID, Client: v, Mode: cfg.Mode, Start: e.at}
		}
		penalty := 0.0
		elapsed := 0.0
		success := false
		var accRetries int64
		w.accNodes = w.accNodes[:0]
		for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
			qi := sort.SearchFloat64s(w.cdf, st.Float64()*w.acc)
			if qi >= nQ {
				qi = nQ - 1
			}
			attemptStart := e.at + penalty
			attemptProbes := 0
			if tr != nil {
				attemptProbes = len(tr.Probes)
			}
			ok := true
			var latency float64
			for _, u := range ins.Sys.Quorum(qi) {
				node := cfg.Placement.Node(u)
				if collectNodes {
					w.accNodes = append(w.accNodes, node)
				}
				if !w.alive[node] {
					if tr != nil {
						dispatch := attemptStart
						if cfg.Mode == Sequential {
							dispatch += latency
						}
						tr.Probes = append(tr.Probes, ProbeSpan{
							Member: u, Node: node, Dispatch: dispatch,
							Complete: dispatch, Failed: true,
						})
					}
					ok = false
					break
				}
				d := row[node]
				if tr != nil {
					dispatch := attemptStart
					if cfg.Mode == Sequential {
						dispatch += latency
					}
					tr.Probes = append(tr.Probes, ProbeSpan{
						Member: u, Node: node,
						Dispatch: dispatch, NetDelay: d, Complete: dispatch + d,
					})
				}
				if cfg.Mode == Parallel {
					if d > latency {
						latency = d
					}
				} else {
					latency += d
				}
			}
			if ok {
				w.succeeded++
				success = true
				elapsed = latency + penalty
				w.latBuf = append(w.latBuf, latRec{at: e.at, lat: elapsed, client: int32(v)})
				if tr != nil {
					tr.Quorum = qi
					tr.Attempts = attempt
					tr.Latency = elapsed
					tr.End = tr.Start + tr.Latency
					markStragglerIn(cfg.Mode, tr.Probes[attemptProbes:])
					w.traces = append(w.traces, keyedTrace{at: e.at, client: v, access: e.access, tr: *tr})
				}
				break
			}
			penalty += cfg.RetryPenalty
			if attempt < cfg.MaxRetries {
				w.retries++
				accRetries++
			}
		}
		if !success {
			w.failed++
			elapsed = penalty
			if tr != nil {
				tr.Attempts = cfg.MaxRetries + 1
				tr.Aborted = true
				tr.Latency = penalty
				tr.End = tr.Start + penalty
				w.traces = append(w.traces, keyedTrace{at: e.at, client: v, access: e.access, tr: *tr})
			}
		}
		if success {
			w.sh.Observe("netsim.access_latency", elapsed)
		}
		if w.slo {
			w.rec.sloAccess(w.runID, e.at+elapsed, elapsed, accRetries, !success, w.accNodes)
		}
		if w.ht != nil {
			w.ht.Observe(e.at, v, w.accNodes)
		}
		limit := cfg.AccessesPerClient
		if w.counts != nil {
			limit = w.counts[v]
		}
		if e.access+1 < limit {
			w.q.push(event{at: e.at + elapsed, seq: v, client: v, access: e.access + 1})
		}
	}
	w.sh.Count("netsim.events", int64(w.accesses))
	w.sh.Count("netsim.retries", w.retries)
}

// runFailuresSharded is the Workers > 0 engine behind RunWithFailures.
func runFailuresSharded(cfg FailureConfig) (*FailureStats, error) {
	ins := cfg.Instance
	n := ins.M.N()
	var counts []int
	if ins.Rates != nil {
		counts = clientAccessCounts(ins.Rates, n, cfg.AccessesPerClient)
	}
	cdf, acc := quorumCDF(ins)
	W := clampWorkers(cfg.Workers, n)

	sp := obs.Start("netsim.failures")
	defer sp.End()

	rec := recorderFor(cfg.Recorder)
	runID := 0
	if rec != nil {
		runID = rec.beginRun()
	}
	slo := rec != nil && rec.sloEnabled()
	if slo {
		rec.sloSetNodes(runID, n)
	}
	sampleEvery := 1
	if rec != nil {
		sampleEvery = rec.sampleEveryN()
	}
	ht := heatFor(cfg.Heat)
	shards := heatShards(ht, W)
	traceSeed := traceSeedFor(cfg.Seed)

	ws := make([]*failWorker, W)
	for i := 0; i < W; i++ {
		lo, hi := i*n/W, (i+1)*n/W
		w := &failWorker{
			cfg: &cfg, id: i, lo: lo, hi: hi,
			counts: counts, cdf: cdf, acc: acc,
			rec: rec, runID: runID, slo: slo,
			sampleEvery: sampleEvery, traceSeed: traceSeed,
			sh:      obs.NewShard(sp),
			streams: make([]prng, hi-lo),
			alive:   make([]bool, n),
		}
		if ht != nil {
			w.ht = shards[i]
		}
		if slo || w.ht != nil {
			w.accNodes = make([]int, 0, 16)
		}
		ws[i] = w
	}
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *failWorker) { defer wg.Done(); w.run() }(w)
	}
	wg.Wait()

	stats := &FailureStats{}
	latBufs := make([][]latRec, W)
	traceBufs := make([][]keyedTrace, W)
	var noLive int
	for i, w := range ws {
		stats.Accesses += w.accesses
		stats.Succeeded += w.succeeded
		stats.FailedOutright += w.failed
		stats.Retries += int(w.retries)
		noLive += w.noLive
		latBufs[i] = w.latBuf
		traceBufs[i] = w.traces
		w.sh.Merge()
	}
	// Fold the successful-latency sum over the canonically merged stream so
	// the float bits are independent of the partition.
	var scratch Stats
	latencySum := mergeLatRecs(&scratch, latBufs)
	stats.SuccessRate = float64(stats.Succeeded) / float64(stats.Accesses)
	if stats.Succeeded > 0 {
		stats.AvgLatency = latencySum / float64(stats.Succeeded)
	}
	stats.EmpiricalUnavail = float64(noLive) / float64(stats.Accesses)
	if rec != nil {
		traced := mergeTraces(rec, traceBufs)
		obs.Count("netsim.traced_accesses", traced)
	}
	if err := mergeHeatShards(ht, shards); err != nil {
		return nil, err
	}
	return stats, nil
}
