package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"quorumplace/internal/placement"
)

// Differential tests for the allocation overhaul: attaching a recorder (and
// saturating its ring so the probe-slice free list is exercised) must not
// change a single simulator statistic, because tracing never consumes the
// simulation RNG and the arena/heap rewrites preserved event order exactly.

// queueCfg is the shared base configuration; accesses are numerous enough to
// wrap a capacity-16 ring many times over.
func queueCfg(ins *placement.Instance, pl placement.Placement) QueueConfig {
	return QueueConfig{
		Instance: ins, Placement: pl,
		ArrivalRate: 0.08, ServiceMean: 0.6,
		AccessesPerClient: 300, Seed: 42,
	}
}

func TestQueueingRecorderDoesNotPerturbStats(t *testing.T) {
	ins, pl := buildInstance(t)

	base, err := RunQueueing(queueCfg(ins, pl))
	if err != nil {
		t.Fatal(err)
	}
	// Saturated ring: every access traced, ring holds 16 of 2700, so almost
	// every add recycles a probe slice through the free list.
	rec := NewRecorder(16, 1, 0)
	traced, err := RunQueueing(func() QueueConfig {
		c := queueCfg(ins, pl)
		c.Recorder = rec
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, traced) {
		t.Fatalf("tracing perturbed queueing stats:\n  base   %+v\n  traced %+v", base, traced)
	}
	if rec.Dropped() == 0 {
		t.Fatal("ring never overwrote; test is not exercising probe recycling")
	}

	// Determinism: the same seed with a fresh recorder reproduces exactly.
	again, err := RunQueueing(func() QueueConfig {
		c := queueCfg(ins, pl)
		c.Recorder = NewRecorder(16, 1, 0)
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced, again) {
		t.Fatalf("same seed diverged:\n  first  %+v\n  second %+v", traced, again)
	}
}

func TestRunRecorderDoesNotPerturbStats(t *testing.T) {
	ins, pl := buildInstance(t)
	cfg := Config{
		Instance: ins, Placement: pl, Mode: Parallel,
		AccessesPerClient: 200, InterAccessTime: 0.5, Seed: 17,
	}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recorder = NewRecorder(8, 1, 0)
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, traced) {
		t.Fatalf("tracing perturbed propagation stats:\n  base   %+v\n  traced %+v", base, traced)
	}
}

func TestFailuresRecorderDoesNotPerturbStats(t *testing.T) {
	ins, pl := buildInstance(t)
	cfg := FailureConfig{
		Instance: ins, Placement: pl, Mode: Parallel,
		NodeFailureProb: 0.2, MaxRetries: 2, RetryPenalty: 1.5,
		AccessesPerClient: 200, Seed: 23,
	}
	base, err := RunWithFailures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recorder = NewRecorder(8, 1, 0)
	traced, err := RunWithFailures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, traced) {
		t.Fatalf("tracing perturbed failure stats:\n  base   %+v\n  traced %+v", base, traced)
	}
}

// TestTracesSurviveProbeRecycling: Traces() hands out deep copies, so a
// snapshot taken from a saturated ring must stay intact while later runs
// recycle the ring's probe memory underneath it.
func TestTracesSurviveProbeRecycling(t *testing.T) {
	ins, pl := buildInstance(t)
	rec := NewRecorder(16, 1, 0)
	cfg := queueCfg(ins, pl)
	cfg.Recorder = rec
	if _, err := RunQueueing(cfg); err != nil {
		t.Fatal(err)
	}
	snap := rec.Traces()
	if len(snap) != 16 {
		t.Fatalf("retained %d traces, want 16", len(snap))
	}
	before := fmt.Sprintf("%+v", snap)

	// Second run on the same recorder overwrites the whole ring and reuses
	// the recycled probe arrays.
	cfg.Seed = 43
	if _, err := RunQueueing(cfg); err != nil {
		t.Fatal(err)
	}
	if after := fmt.Sprintf("%+v", snap); after != before {
		t.Fatalf("snapshot mutated by later runs:\n  before %s\n  after  %s", before, after)
	}
}
