package netsim

import (
	"math"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func buildInstance(t *testing.T) (*placement.Instance, placement.Placement) {
	t.Helper()
	g := graph.Grid2D(3, 3)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Grid(2)
	st := quorum.Uniform(sys.NumQuorums())
	caps := make([]float64, 9)
	for i := range caps {
		caps[i] = 1
	}
	ins, err := placement.NewInstance(m, caps, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement([]int{0, 1, 3, 4})
	return ins, p
}

func TestRunValidation(t *testing.T) {
	ins, p := buildInstance(t)
	if _, err := Run(Config{Instance: nil, Placement: p, AccessesPerClient: 1}); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := Run(Config{Instance: ins, Placement: placement.NewPlacement([]int{0}), AccessesPerClient: 1}); err == nil {
		t.Fatal("short placement accepted")
	}
	if _, err := Run(Config{Instance: ins, Placement: p, AccessesPerClient: 0}); err == nil {
		t.Fatal("zero accesses accepted")
	}
	if _, err := Run(Config{Instance: ins, Placement: p, AccessesPerClient: 1, InterAccessTime: -1}); err == nil {
		t.Fatal("negative think time accepted")
	}
}

func TestRunBasicAccounting(t *testing.T) {
	ins, p := buildInstance(t)
	const per = 50
	stats, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: per, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accesses != per*9 {
		t.Fatalf("accesses = %d, want %d", stats.Accesses, per*9)
	}
	// Every Grid(2) quorum has 3 elements, so total hits = 3 × accesses.
	var hits int64
	for _, h := range stats.NodeHits {
		hits += h
	}
	if hits != int64(3*stats.Accesses) {
		t.Fatalf("total hits = %d, want %d", hits, 3*stats.Accesses)
	}
	if stats.Clock <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	ins, p := buildInstance(t)
	cfg := Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 20, Seed: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatency != b.AvgLatency || a.Clock != b.Clock {
		t.Fatalf("same seed produced different runs: %v vs %v", a.AvgLatency, b.AvgLatency)
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatency == c.AvgLatency && a.Clock == c.Clock {
		t.Log("different seeds produced identical stats (possible but unlikely)")
	}
}

// TestParallelMatchesAnalytic: the sampled mean latency converges to the
// analytic Avg Δ_f within a loose statistical tolerance.
func TestParallelMatchesAnalytic(t *testing.T) {
	ins, p := buildInstance(t)
	want := ins.AvgMaxDelay(p)
	stats, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(stats.AvgLatency-want) / want; rel > 0.05 {
		t.Fatalf("sampled AvgΔ = %v, analytic %v (rel err %v)", stats.AvgLatency, want, rel)
	}
}

func TestSequentialMatchesAnalytic(t *testing.T) {
	ins, p := buildInstance(t)
	want := ins.AvgTotalDelay(p)
	stats, err := Run(Config{Instance: ins, Placement: p, Mode: Sequential, AccessesPerClient: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(stats.AvgLatency-want) / want; rel > 0.05 {
		t.Fatalf("sampled AvgΓ = %v, analytic %v (rel err %v)", stats.AvgLatency, want, rel)
	}
}

// TestEmpiricalLoadMatchesPlacementLoad: sampled node loads converge to
// load_f(v).
func TestEmpiricalLoadMatchesPlacementLoad(t *testing.T) {
	ins, p := buildInstance(t)
	want := ins.NodeLoads(p)
	stats, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(stats.EmpiricalLoad[v]-want[v]) > 0.03 {
			t.Fatalf("node %d: empirical load %v, analytic %v", v, stats.EmpiricalLoad[v], want[v])
		}
	}
}

// TestPerClientMatchesAnalytic: each client's sampled mean converges to
// its own Δ_f(v).
func TestPerClientMatchesAnalytic(t *testing.T) {
	ins, p := buildInstance(t)
	stats, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 6000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < ins.M.N(); v++ {
		want := ins.MaxDelayFrom(v, p)
		if want == 0 {
			if stats.PerClient[v] != 0 {
				t.Fatalf("client %d: sampled %v, analytic 0", v, stats.PerClient[v])
			}
			continue
		}
		if rel := math.Abs(stats.PerClient[v]-want) / want; rel > 0.08 {
			t.Fatalf("client %d: sampled %v, analytic %v (rel %v)", v, stats.PerClient[v], want, rel)
		}
	}
}

func TestThinkTimeAdvancesClock(t *testing.T) {
	ins, p := buildInstance(t)
	fast, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 50, InterAccessTime: 10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Clock <= fast.Clock {
		t.Fatalf("think time did not extend the run: %v <= %v", slow.Clock, fast.Clock)
	}
	// Latency statistics must be unaffected by think time.
	if math.Abs(slow.AvgLatency-fast.AvgLatency) > 0.2 {
		t.Fatalf("think time changed latency distribution: %v vs %v", slow.AvgLatency, fast.AvgLatency)
	}
}

func TestModeString(t *testing.T) {
	if Parallel.String() != "parallel" || Sequential.String() != "sequential" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestPercentiles(t *testing.T) {
	ins, p := buildInstance(t)
	stats, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: 500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	p50 := stats.Percentile(0.5)
	p99 := stats.Percentile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	if min, max := stats.Percentile(0), stats.Percentile(1); min > p50 || p99 > max {
		t.Fatalf("quantiles out of order: min %v p50 %v p99 %v max %v", min, p50, p99, max)
	}
	if got := len(stats.Latencies()); got != stats.Accesses {
		t.Fatalf("latency samples %d != accesses %d", got, stats.Accesses)
	}
	// Latencies() is a copy.
	l := stats.Latencies()
	l[0] = -1
	if stats.Latencies()[0] == -1 {
		t.Fatal("Latencies returned internal slice")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(2) did not panic")
		}
	}()
	stats.Percentile(2)
}

// TestPercentileInterpolation pins the R-7 estimator on hand-computed
// values: the quantile position q·(n-1) interpolates linearly between
// adjacent order statistics.
func TestPercentileInterpolation(t *testing.T) {
	cases := []struct {
		name string
		lat  []float64
		q    float64
		want float64
	}{
		{"median-even", []float64{1, 2, 3, 4}, 0.5, 2.5},      // pos 1.5 → (2+3)/2
		{"median-odd", []float64{1, 2, 3, 4, 5}, 0.5, 3},      // pos 2 exactly
		{"p90-four", []float64{1, 2, 3, 4}, 0.9, 3.7},         // pos 2.7 → 3·0.3 + 4·0.7
		{"p25-four", []float64{4, 1, 3, 2}, 0.25, 1.75},       // unsorted input; pos 0.75
		{"p95-five", []float64{10, 20, 30, 40, 50}, 0.95, 48}, // pos 3.8 → 40·0.2 + 50·0.8
		{"min", []float64{3, 1, 2}, 0, 1},
		{"max", []float64{3, 1, 2}, 1, 3},
		{"single", []float64{7}, 0.5, 7},
		{"empty", nil, 0.5, 0},
	}
	for _, tc := range cases {
		s := &Stats{latencies: tc.lat}
		if got := s.Percentile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Percentile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestRunRateWeightedClients checks the §6 rates extension in the
// simulator: with Instance.Rates set, each client issues its
// rate-proportional share of the n·AccessesPerClient total, zero-rate
// clients issue nothing, and the empirical load stays normalized.
func TestRunRateWeightedClients(t *testing.T) {
	ins, p := buildInstance(t)
	const per = 40
	n := 9
	rates := make([]float64, n)
	rates[2] = 3
	rates[7] = 1
	if err := ins.SetRates(rates); err != nil {
		t.Fatal(err)
	}
	stats, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: per, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Shares: client 2 gets 3/4 of n·per = 270, client 7 gets 90.
	if stats.Accesses != n*per {
		t.Fatalf("accesses = %d, want %d", stats.Accesses, n*per)
	}
	for v := 0; v < n; v++ {
		if v != 2 && v != 7 && stats.PerClient[v] != 0 {
			t.Fatalf("zero-rate client %d recorded latency %v", v, stats.PerClient[v])
		}
	}
	if stats.PerClient[2] <= 0 || stats.PerClient[7] <= 0 {
		t.Fatalf("weighted clients idle: %v", stats.PerClient)
	}
	sum := 0.0
	for _, l := range stats.EmpiricalLoad {
		sum += l
	}
	// Each Grid(2) quorum has 3 elements, so loads sum to 3 per access.
	if math.Abs(sum-3) > 1e-9 {
		t.Fatalf("empirical load sums to %v, want 3", sum)
	}

	// Uniform rates must be bitwise-identical to nil rates (same seed).
	if err := ins.SetRates(nil); err != nil {
		t.Fatal(err)
	}
	base, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: per, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	uni := make([]float64, n)
	for i := range uni {
		uni[i] = 2.5
	}
	if err := ins.SetRates(uni); err != nil {
		t.Fatal(err)
	}
	same, err := Run(Config{Instance: ins, Placement: p, Mode: Parallel, AccessesPerClient: per, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if base.AvgLatency != same.AvgLatency || base.Accesses != same.Accesses || base.Clock != same.Clock {
		t.Fatalf("uniform explicit rates diverge from nil rates: %+v vs %+v", base, same)
	}
}
