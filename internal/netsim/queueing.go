package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
)

// Queueing simulation: the base simulator charges only propagation delay,
// which is the paper's cost model (Eq. 1). In a deployed system a node that
// is loaded near its capacity also queues requests, coupling the paper's
// two separate concerns — load and delay — into one number. This simulator
// adds FIFO service queues at the nodes: each quorum-element message is
// served at its hosting node with exponential service time, and the access
// completes when the last response returns. It demonstrates *why* the
// capacity constraints matter: placements that violate capacities see
// queueing delay blow up even though their propagation delay is optimal.

// QueueConfig describes a queueing simulation run.
type QueueConfig struct {
	Instance  *placement.Instance
	Placement placement.Placement
	// ArrivalRate is each client's Poisson access rate (accesses per time
	// unit, open loop).
	ArrivalRate float64
	// ServiceMean is the mean (exponential) service time per quorum-element
	// message at a capacity-1 node; node v serves with mean
	// ServiceMean/cap(v), so higher-capacity nodes are faster. Zero means
	// instantaneous service (pure propagation delay).
	ServiceMean       float64
	AccessesPerClient int
	Seed              int64
	// Recorder, when non-nil, captures per-access traces (with queue-wait
	// and service-time probe spans) and time-series samples; nil falls back
	// to the SetDefaultRecorder recorder.
	Recorder *Recorder
}

// QueueStats is the outcome of a queueing simulation.
type QueueStats struct {
	Accesses    int
	AvgLatency  float64   // mean access latency incl. queueing and RTT propagation
	AvgWait     float64   // mean queueing wait per message (excl. service)
	Utilization []float64 // per-node busy fraction
	Clock       float64
}

// queueEvent is an event in the queueing simulator.
type queueEvent struct {
	at   float64
	seq  int
	kind int // 0 = access issued, 1 = message arrives at node, 2 = service done
	// access identity
	client, access int
	// message routing
	node int
	// probe slot within the traced access, -1 when untraced
	slot int
}

type queueEventHeap []queueEvent

func (h queueEventHeap) Len() int { return len(h) }
func (h queueEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h queueEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *queueEventHeap) Push(x any)   { *h = append(*h, x.(queueEvent)) }
func (h *queueEventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// pendingMsg is a message waiting in or being served by a node queue.
type pendingMsg struct {
	client, access int
	arrivedAt      float64
	slot           int // probe slot within the traced access, -1 when untraced
}

// RunQueueing executes the queueing simulation.
func RunQueueing(cfg QueueConfig) (*QueueStats, error) {
	ins := cfg.Instance
	if ins == nil {
		return nil, fmt.Errorf("netsim: nil instance")
	}
	if err := ins.Validate(cfg.Placement); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	if cfg.AccessesPerClient <= 0 {
		return nil, fmt.Errorf("netsim: AccessesPerClient = %d, want > 0", cfg.AccessesPerClient)
	}
	if cfg.ArrivalRate <= 0 {
		return nil, fmt.Errorf("netsim: ArrivalRate = %v, want > 0", cfg.ArrivalRate)
	}
	if cfg.ServiceMean < 0 {
		return nil, fmt.Errorf("netsim: negative ServiceMean %v", cfg.ServiceMean)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ins.M.N()
	nQ := ins.Sys.NumQuorums()

	cdf := make([]float64, nQ)
	acc := 0.0
	for q := 0; q < nQ; q++ {
		acc += ins.Strat.P(q)
		cdf[q] = acc
	}
	sampleQuorum := func() int {
		x := rng.Float64() * acc
		lo, hi := 0, nQ-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	serviceMean := make([]float64, n)
	for v := 0; v < n; v++ {
		if ins.Cap[v] > 0 {
			serviceMean[v] = cfg.ServiceMean / ins.Cap[v]
		}
	}

	type accessState struct {
		remaining int
		issuedAt  float64
		lastResp  float64
		tr        *AccessTrace // non-nil when this access is traced
	}
	states := map[[2]int]*accessState{}
	queues := make([][]pendingMsg, n)
	busy := make([]bool, n)
	busyTime := make([]float64, n)

	stats := &QueueStats{Utilization: make([]float64, n)}
	var latencySum, waitSum float64
	var msgCount int

	h := &queueEventHeap{}
	seq := 0
	push := func(e queueEvent) {
		e.seq = seq
		seq++
		heap.Push(h, e)
	}
	// Schedule all access issue times up front (open loop).
	for v := 0; v < n; v++ {
		t := 0.0
		for a := 0; a < cfg.AccessesPerClient; a++ {
			t += rng.ExpFloat64() / cfg.ArrivalRate
			push(queueEvent{at: t, kind: 0, client: v, access: a})
		}
	}

	rec := recorderFor(cfg.Recorder)
	var ts *tsState
	runID := 0
	var traced int64
	if rec != nil {
		runID = rec.beginRun()
		ts = newTSState(rec, runID)
		defer func() { obs.Count("netsim.traced_accesses", traced) }()
	}
	var nodeHits []int64
	if ts != nil {
		nodeHits = make([]int64, n)
	}

	startService := func(v int, now float64) {
		if busy[v] || len(queues[v]) == 0 {
			return
		}
		busy[v] = true
		msg := queues[v][0]
		waitSum += now - msg.arrivedAt
		msgCount++
		svc := 0.0
		if serviceMean[v] > 0 {
			svc = rng.ExpFloat64() * serviceMean[v]
		}
		busyTime[v] += svc
		if msg.slot >= 0 {
			if st := states[[2]int{msg.client, msg.access}]; st != nil && st.tr != nil {
				p := &st.tr.Probes[msg.slot]
				p.QueueWait = now - msg.arrivedAt
				p.Service = svc
			}
		}
		push(queueEvent{at: now + svc, kind: 2, client: msg.client, access: msg.access, node: v, slot: msg.slot})
	}

	sp := obs.Start("netsim.queueing")
	defer sp.End()
	var events int64
	maxNodeQueue := 0
	defer func() {
		obs.Count("netsim.events", events)
		obs.GaugeMax("netsim.max_queue_depth", float64(maxNodeQueue))
	}()
	for h.Len() > 0 {
		e := heap.Pop(h).(queueEvent)
		events++
		if ts != nil {
			ts.advance(e.at, func(at float64, s *TSample) {
				s.InFlight = len(states)
				s.Accesses = stats.Accesses
				s.NodeHits = append([]int64(nil), nodeHits...)
				s.QueueDepth = make([]int, n)
				for v := range queues {
					s.QueueDepth[v] = len(queues[v])
				}
			})
		}
		if e.at > stats.Clock {
			stats.Clock = e.at
		}
		switch e.kind {
		case 0: // client issues an access
			qi := sampleQuorum()
			row := ins.M.Row(e.client)
			q := ins.Sys.Quorum(qi)
			st := &accessState{remaining: len(q), issuedAt: e.at}
			if rec != nil && rec.shouldTrace() {
				st.tr = &AccessTrace{Run: runID, Client: e.client, Quorum: qi, Start: e.at}
				st.tr.Probes = make([]ProbeSpan, len(q))
			}
			states[[2]int{e.client, e.access}] = st
			for slot, u := range q {
				node := cfg.Placement.Node(u)
				msgSlot := -1
				if st.tr != nil {
					msgSlot = slot
					st.tr.Probes[slot] = ProbeSpan{
						Member: u, Node: node, Dispatch: e.at,
						NetDelay: row[node] + ins.M.D(node, e.client),
					}
				}
				push(queueEvent{at: e.at + row[node], kind: 1, client: e.client, access: e.access, node: node, slot: msgSlot})
			}
		case 1: // message arrives at a node queue
			queues[e.node] = append(queues[e.node], pendingMsg{
				client: e.client, access: e.access, arrivedAt: e.at, slot: e.slot,
			})
			if nodeHits != nil {
				nodeHits[e.node]++
			}
			if len(queues[e.node]) > maxNodeQueue {
				maxNodeQueue = len(queues[e.node])
			}
			startService(e.node, e.at)
		case 2: // service completes; response propagates back
			queues[e.node] = queues[e.node][1:]
			busy[e.node] = false
			startService(e.node, e.at)
			respAt := e.at + ins.M.D(e.node, e.client)
			key := [2]int{e.client, e.access}
			st := states[key]
			st.remaining--
			if st.tr != nil && e.slot >= 0 {
				st.tr.Probes[e.slot].Complete = respAt
			}
			if respAt > st.lastResp {
				st.lastResp = respAt
			}
			if st.remaining == 0 {
				stats.Accesses++
				latencySum += st.lastResp - st.issuedAt
				if st.tr != nil {
					st.tr.End = st.lastResp
					st.tr.Latency = st.lastResp - st.issuedAt
					markStraggler(st.tr)
					rec.add(*st.tr)
					traced++
				}
				delete(states, key)
			}
		}
	}
	if stats.Accesses > 0 {
		stats.AvgLatency = latencySum / float64(stats.Accesses)
	}
	if msgCount > 0 {
		stats.AvgWait = waitSum / float64(msgCount)
	}
	if stats.Clock > 0 {
		for v := 0; v < n; v++ {
			stats.Utilization[v] = busyTime[v] / stats.Clock
		}
	}
	return stats, nil
}
