package netsim

import (
	"fmt"
	"math/rand"

	"quorumplace/internal/heat"
	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
)

// Queueing simulation: the base simulator charges only propagation delay,
// which is the paper's cost model (Eq. 1). In a deployed system a node that
// is loaded near its capacity also queues requests, coupling the paper's
// two separate concerns — load and delay — into one number. This simulator
// adds FIFO service queues at the nodes: each quorum-element message is
// served at its hosting node with exponential service time, and the access
// completes when the last response returns. It demonstrates *why* the
// capacity constraints matter: placements that violate capacities see
// queueing delay blow up even though their propagation delay is optimal.
//
// The event loop is allocation-free once warm: events live in a value-typed
// binary heap (no container/heap interface boxing), per-access bookkeeping
// sits in one dense slice indexed by (client, access), and the per-node FIFO
// queues are index-linked lists over one shared message arena with a free
// list, so enqueue/dequeue recycle arena slots instead of growing and
// re-slicing per-node slices.

// QueueConfig describes a queueing simulation run.
type QueueConfig struct {
	Instance  *placement.Instance
	Placement placement.Placement
	// ArrivalRate is each client's Poisson access rate (accesses per time
	// unit, open loop).
	ArrivalRate float64
	// ServiceMean is the mean (exponential) service time per quorum-element
	// message at a capacity-1 node; node v serves with mean
	// ServiceMean/cap(v), so higher-capacity nodes are faster. Zero means
	// instantaneous service (pure propagation delay).
	ServiceMean       float64
	AccessesPerClient int
	Seed              int64
	// Recorder, when non-nil, captures per-access traces (with queue-wait
	// and service-time probe spans) and time-series samples; nil falls back
	// to the SetDefaultRecorder recorder.
	Recorder *Recorder
	// Heat, when non-nil, folds every access into the workload sketch at
	// its issue time (when the load lands on the node queues). Nil falls
	// back to the SetDefaultHeat sketch.
	Heat *heat.Sketch
	// Workers selects the engine, with the same contract as
	// Config.Workers: 0 keeps the legacy single-stream engine
	// byte-identical; W ≥ 1 runs the conservative-window sharded engine
	// (parallel_queueing.go), whose output is bitwise invariant over W.
	// Relative to Workers = 0, the sharded schedule models response
	// propagation as explicit events, so Clock also covers the final
	// response's flight time.
	Workers int
}

// QueueStats is the outcome of a queueing simulation.
type QueueStats struct {
	Accesses    int
	AvgLatency  float64   // mean access latency incl. queueing and RTT propagation
	AvgWait     float64   // mean queueing wait per message (excl. service)
	Utilization []float64 // per-node busy fraction
	Clock       float64
}

// queueEvent is an event in the queueing simulator.
type queueEvent struct {
	at   float64
	seq  int
	kind int // 0 = access issued, 1 = message arrives at node, 2 = service done
	// access identity
	client, access int
	// message routing
	node int
	// probe slot within the traced access, -1 when untraced
	slot int
}

// queueEventHeap is a value-typed binary min-heap ordered by (at, seq). The
// explicit sift loops avoid container/heap's per-operation interface boxing
// (two heap-escaping allocations per event), which dominated the simulator's
// allocation profile.
type queueEventHeap []queueEvent

func (h queueEventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *queueEventHeap) push(e queueEvent) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *queueEventHeap) pop() queueEvent {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	*h = q
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < last && q.less(l, m) {
			m = l
		}
		if r < last && q.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// pendingMsg is a message waiting in or being served by a node queue. Slots
// live in one shared arena; next links them into per-node FIFO lists and,
// when free, into the arena's free list.
type pendingMsg struct {
	client, access int
	arrivedAt      float64
	slot           int // probe slot within the traced access, -1 when untraced
	next           int // next message in the node FIFO / free list, -1 = none
}

// accessState tracks one in-flight access in the dense (client, access)
// state table.
type accessState struct {
	remaining int
	issuedAt  float64
	lastResp  float64
	tr        *AccessTrace // non-nil when this access is traced
}

// RunQueueing executes the queueing simulation.
func RunQueueing(cfg QueueConfig) (*QueueStats, error) {
	ins := cfg.Instance
	if ins == nil {
		return nil, fmt.Errorf("netsim: nil instance")
	}
	if err := ins.Validate(cfg.Placement); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	if cfg.AccessesPerClient <= 0 {
		return nil, fmt.Errorf("netsim: AccessesPerClient = %d, want > 0", cfg.AccessesPerClient)
	}
	if cfg.ArrivalRate <= 0 {
		return nil, fmt.Errorf("netsim: ArrivalRate = %v, want > 0", cfg.ArrivalRate)
	}
	if cfg.ServiceMean < 0 {
		return nil, fmt.Errorf("netsim: negative ServiceMean %v", cfg.ServiceMean)
	}
	if err := validateWorkers(cfg.Workers); err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		return runQueueingSharded(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ins.M.N()
	nQ := ins.Sys.NumQuorums()

	cdf := make([]float64, nQ)
	acc := 0.0
	for q := 0; q < nQ; q++ {
		acc += ins.Strat.P(q)
		cdf[q] = acc
	}
	sampleQuorum := func() int {
		x := rng.Float64() * acc
		lo, hi := 0, nQ-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	serviceMean := make([]float64, n)
	for v := 0; v < n; v++ {
		if ins.Cap[v] > 0 {
			serviceMean[v] = cfg.ServiceMean / ins.Cap[v]
		}
	}

	// Dense per-access state, indexed client*AccessesPerClient + access.
	states := make([]accessState, n*cfg.AccessesPerClient)
	inFlight := 0

	// Per-node FIFO queues as index-linked lists over the msgs arena.
	msgs := make([]pendingMsg, 0, 64)
	freeMsg := -1
	qHead := make([]int, n)
	qTail := make([]int, n)
	qLen := make([]int, n)
	for v := 0; v < n; v++ {
		qHead[v], qTail[v] = -1, -1
	}
	allocMsg := func(m pendingMsg) int {
		if i := freeMsg; i >= 0 {
			freeMsg = msgs[i].next
			msgs[i] = m
			return i
		}
		msgs = append(msgs, m)
		return len(msgs) - 1
	}
	enqueue := func(v int, m pendingMsg) {
		m.next = -1
		i := allocMsg(m)
		if qTail[v] < 0 {
			qHead[v] = i
		} else {
			msgs[qTail[v]].next = i
		}
		qTail[v] = i
		qLen[v]++
	}
	dequeue := func(v int) {
		i := qHead[v]
		qHead[v] = msgs[i].next
		if qHead[v] < 0 {
			qTail[v] = -1
		}
		qLen[v]--
		msgs[i].next = freeMsg
		freeMsg = i
	}

	busy := make([]bool, n)
	busyTime := make([]float64, n)

	stats := &QueueStats{Utilization: make([]float64, n)}
	var latencySum, waitSum float64
	var msgCount int

	h := make(queueEventHeap, 0, n*cfg.AccessesPerClient)
	seq := 0
	push := func(e queueEvent) {
		e.seq = seq
		seq++
		h.push(e)
	}
	// Schedule all access issue times up front (open loop).
	for v := 0; v < n; v++ {
		t := 0.0
		for a := 0; a < cfg.AccessesPerClient; a++ {
			t += rng.ExpFloat64() / cfg.ArrivalRate
			push(queueEvent{at: t, kind: 0, client: v, access: a})
		}
	}

	rec := recorderFor(cfg.Recorder)
	var ts *tsState
	runID := 0
	var traced int64
	if rec != nil {
		runID = rec.beginRun()
		ts = newTSState(rec, runID)
		defer func() { obs.Count("netsim.traced_accesses", traced) }()
	}
	var nodeHits []int64
	if ts != nil {
		nodeHits = make([]int64, n)
	}
	// SLO accounting: message hits are charged to the window of the issue
	// time (that is when the load lands on the nodes), while the access
	// itself folds into the window of its completion.
	slo := rec != nil && rec.sloEnabled()
	ht := heatFor(cfg.Heat)
	collectNodes := slo || ht != nil
	var accNodes []int
	if slo {
		rec.sloSetNodes(runID, n)
	}
	if collectNodes {
		accNodes = make([]int, 0, 16)
	}
	var lh *obs.LogHist
	if obs.Enabled() {
		lh = obs.NewLogHist()
	}

	startService := func(v int, now float64) {
		if busy[v] || qLen[v] == 0 {
			return
		}
		busy[v] = true
		msg := msgs[qHead[v]]
		waitSum += now - msg.arrivedAt
		msgCount++
		svc := 0.0
		if serviceMean[v] > 0 {
			svc = rng.ExpFloat64() * serviceMean[v]
		}
		busyTime[v] += svc
		if msg.slot >= 0 {
			if st := &states[msg.client*cfg.AccessesPerClient+msg.access]; st.tr != nil {
				p := &st.tr.Probes[msg.slot]
				p.QueueWait = now - msg.arrivedAt
				p.Service = svc
			}
		}
		push(queueEvent{at: now + svc, kind: 2, client: msg.client, access: msg.access, node: v, slot: msg.slot})
	}

	sp := obs.Start("netsim.queueing")
	defer sp.End()
	var events int64
	maxNodeQueue := 0
	defer func() {
		obs.Count("netsim.events", events)
		obs.GaugeMax("netsim.max_queue_depth", float64(maxNodeQueue))
	}()
	for len(h) > 0 {
		e := h.pop()
		events++
		if ts != nil {
			ts.advance(e.at, func(at float64, s *TSample) {
				s.InFlight = inFlight
				s.Accesses = stats.Accesses
				s.NodeHits = append([]int64(nil), nodeHits...)
				s.QueueDepth = append([]int(nil), qLen...)
			})
		}
		if e.at > stats.Clock {
			stats.Clock = e.at
		}
		switch e.kind {
		case 0: // client issues an access
			qi := sampleQuorum()
			row := ins.M.Row(e.client)
			q := ins.Sys.Quorum(qi)
			st := &states[e.client*cfg.AccessesPerClient+e.access]
			st.remaining = len(q)
			st.issuedAt = e.at
			inFlight++
			if rec != nil && rec.shouldTrace() {
				st.tr = &AccessTrace{Run: runID, Client: e.client, Quorum: qi, Start: e.at}
				st.tr.Probes = rec.getProbes(len(q))
			}
			accNodes = accNodes[:0]
			for slot, u := range q {
				node := cfg.Placement.Node(u)
				msgSlot := -1
				if st.tr != nil {
					msgSlot = slot
					st.tr.Probes[slot] = ProbeSpan{
						Member: u, Node: node, Dispatch: e.at,
						NetDelay: row[node] + ins.M.D(node, e.client),
					}
				}
				if collectNodes {
					accNodes = append(accNodes, node)
				}
				push(queueEvent{at: e.at + row[node], kind: 1, client: e.client, access: e.access, node: node, slot: msgSlot})
			}
			if slo {
				rec.sloNodeHits(runID, e.at, accNodes)
			}
			if ht != nil {
				ht.Observe(e.at, e.client, accNodes)
			}
		case 1: // message arrives at a node queue
			enqueue(e.node, pendingMsg{
				client: e.client, access: e.access, arrivedAt: e.at, slot: e.slot,
			})
			if nodeHits != nil {
				nodeHits[e.node]++
			}
			if qLen[e.node] > maxNodeQueue {
				maxNodeQueue = qLen[e.node]
			}
			startService(e.node, e.at)
		case 2: // service completes; response propagates back
			dequeue(e.node)
			busy[e.node] = false
			startService(e.node, e.at)
			respAt := e.at + ins.M.D(e.node, e.client)
			st := &states[e.client*cfg.AccessesPerClient+e.access]
			st.remaining--
			if st.tr != nil && e.slot >= 0 {
				st.tr.Probes[e.slot].Complete = respAt
			}
			if respAt > st.lastResp {
				st.lastResp = respAt
			}
			if st.remaining == 0 {
				stats.Accesses++
				latencySum += st.lastResp - st.issuedAt
				if lh != nil {
					lh.Observe(st.lastResp - st.issuedAt)
				}
				if slo {
					rec.sloAccess(runID, st.lastResp, st.lastResp-st.issuedAt, 0, false, nil)
				}
				if st.tr != nil {
					st.tr.End = st.lastResp
					st.tr.Latency = st.lastResp - st.issuedAt
					markStraggler(st.tr)
					rec.add(*st.tr)
					traced++
					st.tr = nil
				}
				inFlight--
			}
		}
	}
	if stats.Accesses > 0 {
		stats.AvgLatency = latencySum / float64(stats.Accesses)
	}
	if msgCount > 0 {
		stats.AvgWait = waitSum / float64(msgCount)
	}
	if stats.Clock > 0 {
		for v := 0; v < n; v++ {
			stats.Utilization[v] = busyTime[v] / stats.Clock
		}
	}
	if lh != nil {
		obs.MergeHist("netsim.access_latency", lh)
	}
	return stats, nil
}
