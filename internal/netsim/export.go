package netsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"quorumplace/internal/obs"
)

// Chrome trace-event export of recorded access traces and time-series
// samples. Each simulation run maps to a block of Perfetto "processes":
// one process per client (the access span on thread 0, one thread per
// quorum-member slot for the probe spans) plus one gauges process carrying
// the counter tracks (in-flight accesses, cumulative per-node hits,
// per-node queue depth). Virtual time units are exported as microseconds;
// Perfetto only renders the relative timeline.

// pidStride separates the pid blocks of successive runs sharing a recorder.
// Pid block 0 is left free for other tracks sharing the file (e.g. solver
// spans appended via obs.Snapshot.AppendChromeTrace).
const pidStride = 1 << 16

// gaugePID returns the pid of a run's counter-track process.
func gaugePID(run int) int { return (run + 1) * pidStride }

// clientPID returns the pid of a run's per-client process.
func clientPID(run, client int) int { return (run+1)*pidStride + client + 1 }

// accessArgs annotates an exported access span.
type accessArgs struct {
	ID       int64   `json:"id"`
	Client   int     `json:"client"`
	Quorum   int     `json:"quorum"`
	Mode     string  `json:"mode"`
	Latency  float64 `json:"latency"`
	Attempts int     `json:"attempts,omitempty"`
	Aborted  bool    `json:"aborted,omitempty"`
}

// probeArgs annotates an exported probe span.
type probeArgs struct {
	Access    int64   `json:"access"`
	Member    int     `json:"member"`
	Node      int     `json:"node"`
	QueueWait float64 `json:"queue_wait"`
	Service   float64 `json:"service"`
	NetDelay  float64 `json:"net_delay"`
	Straggler bool    `json:"straggler"`
	Failed    bool    `json:"failed,omitempty"`
}

// counterValue is the single-series counter payload.
type counterValue struct {
	Value float64 `json:"value"`
}

// AppendChromeTrace adds every retained trace and time-series sample to t.
// Events are appended in a deterministic order: traces oldest-first (each
// access span followed by its probe spans), then samples, then track
// metadata.
func (r *Recorder) AppendChromeTrace(t *obs.ChromeTrace) {
	type track struct {
		run, client int
		maxSlot     int
	}
	seen := map[int]*track{} // by pid
	var order []int

	for _, tr := range r.Traces() {
		pid := clientPID(tr.Run, tr.Client)
		tk := seen[pid]
		if tk == nil {
			tk = &track{run: tr.Run, client: tr.Client, maxSlot: -1}
			seen[pid] = tk
			order = append(order, pid)
		}
		t.AddSpan(fmt.Sprintf("access q%d", tr.Quorum), "access", pid, 0,
			tr.Start, tr.End-tr.Start, accessArgs{
				ID: tr.ID, Client: tr.Client, Quorum: tr.Quorum,
				Mode: tr.Mode.String(), Latency: tr.Latency,
				Attempts: tr.Attempts, Aborted: tr.Aborted,
			})
		for slot, p := range tr.Probes {
			if slot > tk.maxSlot {
				tk.maxSlot = slot
			}
			t.AddSpan(fmt.Sprintf("probe u%d@n%d", p.Member, p.Node), "probe", pid, slot+1,
				p.Dispatch, p.Complete-p.Dispatch, probeArgs{
					Access: tr.ID, Member: p.Member, Node: p.Node,
					QueueWait: p.QueueWait, Service: p.Service, NetDelay: p.NetDelay,
					Straggler: p.Straggler, Failed: p.Failed,
				})
		}
	}

	gauges := map[int]bool{} // runs with exported samples
	var gaugeOrder []int
	for _, s := range r.Series() {
		pid := gaugePID(s.Run)
		if !gauges[s.Run] {
			gauges[s.Run] = true
			gaugeOrder = append(gaugeOrder, s.Run)
		}
		t.AddCounter("in_flight", pid, s.At, counterValue{Value: float64(s.InFlight)})
		t.AddCounter("accesses", pid, s.At, counterValue{Value: float64(s.Accesses)})
		if len(s.NodeHits) > 0 {
			t.AddCounter("node_hits", pid, s.At, perNodeArgs(s.NodeHits))
		}
		if len(s.QueueDepth) > 0 {
			depths := make([]int64, len(s.QueueDepth))
			for i, d := range s.QueueDepth {
				depths[i] = int64(d)
			}
			t.AddCounter("queue_depth", pid, s.At, perNodeArgs(depths))
		}
	}

	for _, pid := range order {
		tk := seen[pid]
		t.NameProcess(pid, runPrefix(r, tk.run)+fmt.Sprintf("client %d", tk.client))
		t.NameThread(pid, 0, "access")
		for slot := 0; slot <= tk.maxSlot; slot++ {
			t.NameThread(pid, slot+1, fmt.Sprintf("probe %d", slot))
		}
	}
	for _, run := range gaugeOrder {
		t.NameProcess(gaugePID(run), runPrefix(r, run)+"gauges")
	}
}

// runPrefix renders "label · " or "run N · " when disambiguation helps.
func runPrefix(r *Recorder, run int) string {
	if label := r.runLabel(run); label != "" {
		return label + " · "
	}
	r.mu.Lock()
	multi := r.runs > 1
	r.mu.Unlock()
	if multi {
		return fmt.Sprintf("run %d · ", run)
	}
	return ""
}

// perNodeArgs builds a deterministic multi-series counter payload
// {"n0": v0, "n1": v1, ...} without map-ordering hazards.
func perNodeArgs(vals []int64) json.RawMessage {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\"n")
		b.WriteString(strconv.Itoa(i))
		b.WriteString("\":")
		b.WriteString(strconv.FormatInt(v, 10))
	}
	b.WriteByte('}')
	return json.RawMessage(b.Bytes())
}

// WriteChromeTrace writes the recorder's contents as a standalone Chrome
// trace-event JSON document loadable in Perfetto or chrome://tracing.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	t := &obs.ChromeTrace{}
	r.AppendChromeTrace(t)
	return t.Write(w)
}
