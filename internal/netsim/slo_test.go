package netsim

import (
	"math"
	"reflect"
	"testing"
)

// sloRun executes a base-simulator run with SLO windows of the given span.
func sloRun(t *testing.T, window float64, seed int64) (*Recorder, *Stats) {
	t.Helper()
	ins, p := buildInstance(t)
	rec := NewRecorder(64, 1, 0)
	rec.EnableSLO(window)
	stats, err := Run(Config{
		Instance: ins, Placement: p, Mode: Parallel,
		AccessesPerClient: 40, InterAccessTime: 1.5, Seed: seed,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, stats
}

func TestSLOWindowAccounting(t *testing.T) {
	rec, stats := sloRun(t, 10, 42)
	windows := rec.SLOWindows()
	if len(windows) < 2 {
		t.Fatalf("got %d windows, want several over clock %v", len(windows), stats.Clock)
	}
	var accesses int64
	nodeHits := make([]int64, len(stats.NodeHits))
	prev := sloKey{run: -1, idx: -1}
	for _, w := range windows {
		k := sloKey{run: w.Run, idx: w.Index}
		if k.run < prev.run || (k.run == prev.run && k.idx <= prev.idx) {
			t.Fatalf("windows not sorted: %+v after %+v", k, prev)
		}
		prev = k
		if w.Start != float64(w.Index)*10 || w.End != w.Start+10 {
			t.Fatalf("window %d span [%v,%v)", w.Index, w.Start, w.End)
		}
		if w.Accesses > 0 && (w.P50 <= 0 || w.P99 < w.P50 || w.P999 < w.P99) {
			t.Fatalf("window %d quantiles not ordered: p50=%v p99=%v p999=%v", w.Index, w.P50, w.P99, w.P999)
		}
		if w.LoadSkew != 0 && w.LoadSkew < 1 {
			t.Fatalf("window %d load skew %v < 1", w.Index, w.LoadSkew)
		}
		accesses += w.Accesses
		for v, h := range w.NodeHits {
			nodeHits[v] += h
		}
	}
	// Every access and every message lands in exactly one window.
	if accesses != int64(stats.Accesses) {
		t.Fatalf("windows hold %d accesses, stats say %d", accesses, stats.Accesses)
	}
	if !reflect.DeepEqual(nodeHits, stats.NodeHits) {
		t.Fatalf("window node hits %v != stats node hits %v", nodeHits, stats.NodeHits)
	}
	// Whole-run quantile sanity: the max windowed p999 cannot exceed the
	// run's max latency, and some window must see the global p50 region.
	max := stats.Percentile(1)
	for _, w := range windows {
		if w.MaxLatency > max {
			t.Fatalf("window max %v exceeds run max %v", w.MaxLatency, max)
		}
	}
}

func TestSLODeterministic(t *testing.T) {
	recA, _ := sloRun(t, 7, 9)
	recB, _ := sloRun(t, 7, 9)
	a, b := recA.SLOWindows(), recB.SLOWindows()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different SLO windows:\n%v\n%v", a, b)
	}
	recC, _ := sloRun(t, 7, 10)
	if reflect.DeepEqual(a, recC.SLOWindows()) {
		t.Fatal("different seeds produced identical SLO windows")
	}
}

func TestSLOCheckViolations(t *testing.T) {
	rec, stats := sloRun(t, 10, 3)
	windows := rec.SLOWindows()

	// Loose targets hold everywhere.
	if v := CheckSLO(windows, SLOTargets{P99: stats.Clock, MaxLoadSkew: 1e9}); len(v) != 0 {
		t.Fatalf("loose targets violated: %v", v)
	}
	// Impossibly tight p50 flags every window with accesses.
	tight := rec.CheckSLO(SLOTargets{P50: 1e-12})
	var withAccesses int
	for _, w := range windows {
		if w.Accesses > 0 {
			withAccesses++
		}
	}
	if len(tight) != withAccesses {
		t.Fatalf("tight p50 flagged %d windows, want %d", len(tight), withAccesses)
	}
	for _, v := range tight {
		if v.Metric != "p50_delay" || v.Value <= v.Limit {
			t.Fatalf("bad violation %+v", v)
		}
		if v.String() == "" {
			t.Fatal("empty violation string")
		}
	}
	// Zero targets check nothing.
	if v := CheckSLO(windows, SLOTargets{}); len(v) != 0 {
		t.Fatalf("zero targets violated: %v", v)
	}
}

func TestSLOFailureBurnRates(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(64, 1, 0)
	rec.EnableSLO(25)
	stats, err := RunWithFailures(FailureConfig{
		Instance: ins, Placement: p, Mode: Parallel,
		NodeFailureProb: 0.4, MaxRetries: 2, RetryPenalty: 5,
		AccessesPerClient: 60, Seed: 11, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FailedOutright == 0 || stats.Retries == 0 {
		t.Fatalf("failure sim produced no failures: %+v", stats)
	}
	windows := rec.SLOWindows()
	var aborts, retries, accesses int64
	for _, w := range windows {
		aborts += w.Aborts
		retries += w.Retries
		accesses += w.Accesses
	}
	if accesses != int64(stats.Accesses) {
		t.Fatalf("windows hold %d accesses, stats say %d", accesses, stats.Accesses)
	}
	if aborts != int64(stats.FailedOutright) {
		t.Fatalf("windows hold %d aborts, stats say %d", aborts, stats.FailedOutright)
	}
	if retries != int64(stats.Retries) {
		t.Fatalf("windows hold %d retries, stats say %d", retries, stats.Retries)
	}
	// A tiny abort budget must be flagged somewhere.
	if v := rec.CheckSLO(SLOTargets{MaxAbortRate: 1e-9}); len(v) == 0 {
		t.Fatal("abort-rate violation not detected")
	}
	for _, v := range rec.CheckSLO(SLOTargets{MaxRetriesPerAccess: 1e-9}) {
		if v.Metric != "retries_per_access" {
			t.Fatalf("unexpected metric %q", v.Metric)
		}
	}
}

func TestSLOQueueingWindows(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(64, 1, 0)
	rec.EnableSLO(20)
	stats, err := RunQueueing(QueueConfig{
		Instance: ins, Placement: p,
		ArrivalRate: 0.5, ServiceMean: 0.3,
		AccessesPerClient: 30, Seed: 5, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	windows := rec.SLOWindows()
	if len(windows) == 0 {
		t.Fatal("no SLO windows from queueing run")
	}
	var accesses int64
	var hits int64
	for _, w := range windows {
		accesses += w.Accesses
		for _, h := range w.NodeHits {
			hits += h
		}
	}
	if accesses != int64(stats.Accesses) {
		t.Fatalf("windows hold %d accesses, stats say %d", accesses, stats.Accesses)
	}
	// Every quorum message (3 per access on Grid(2)) was charged at issue.
	if hits != 3*int64(stats.Accesses) {
		t.Fatalf("windows hold %d node hits, want %d", hits, 3*int64(stats.Accesses))
	}
}

func TestSLODisabledByDefault(t *testing.T) {
	ins, p := buildInstance(t)
	rec := NewRecorder(16, 1, 0)
	if _, err := Run(Config{Instance: ins, Placement: p, AccessesPerClient: 5, Seed: 1, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	if w := rec.SLOWindows(); w != nil {
		t.Fatalf("SLO windows recorded without EnableSLO: %v", w)
	}
	rec.EnableSLO(0) // explicit ≤ 0 is also off
	if rec.sloEnabled() {
		t.Fatal("EnableSLO(0) left accounting on")
	}
}

func TestParseSLOTargets(t *testing.T) {
	got, err := ParseSLOTargets("p50=2,p99=4.5,p999=6,skew=2.5,abort=0.01,retries=0.2")
	if err != nil {
		t.Fatal(err)
	}
	want := SLOTargets{P50: 2, P99: 4.5, P999: 6, MaxLoadSkew: 2.5, MaxAbortRate: 0.01, MaxRetriesPerAccess: 0.2}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if got, err := ParseSLOTargets(""); err != nil || got != (SLOTargets{}) {
		t.Fatalf("empty spec: %+v, %v", got, err)
	}
	for _, bad := range []string{"p99", "p99=abc", "bogus=1", "p99=-1", "p99=NaN"} {
		if _, err := ParseSLOTargets(bad); err == nil {
			t.Errorf("ParseSLOTargets accepted %q", bad)
		}
	}
}

func TestFormatSLOWindows(t *testing.T) {
	if s := FormatSLOWindows(nil); s == "" {
		t.Fatal("empty format for no windows")
	}
	rec, _ := sloRun(t, 10, 2)
	s := FormatSLOWindows(rec.SLOWindows())
	if len(s) == 0 || math.IsNaN(float64(len(s))) {
		t.Fatal("empty table")
	}
}
