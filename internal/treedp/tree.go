package treedp

// Tree helpers: O(n) distance vectors, the rate-weighted 1-median by
// rerooting, and farthest-member scans used by the diametral-pair
// evaluation. All of them assume the graph is a tree (unique paths), which
// the QPP driver verifies once up front.

import (
	"quorumplace/internal/graph"
)

// distsFrom fills dist (length g.N()) with the tree distance from src to
// every vertex using one DFS — unique paths make Dijkstra unnecessary.
func distsFrom(g *graph.Graph, src int, dist []float64, stack []int) []int {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	stack = append(stack[:0], src)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Neighbors(u) {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + e.Length
				stack = append(stack, e.To)
			}
		}
	}
	return stack
}

// weightedMedian returns the vertex minimizing Σ_v w[v]·d(v, x) — the
// rate-weighted 1-median — in O(n) by the classic two-pass rerooting: a
// post-order pass accumulates subtree weights, then S(child) =
// S(parent) + (W − 2·subtree(child))·len(parent,child) walks the objective
// down every edge. Ties break toward the smaller vertex id. w == nil means
// uniform weights.
func weightedMedian(g *graph.Graph, w []float64) int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	parent := make([]int, n)
	parentLen := make([]float64, n)
	depth := make([]float64, n)
	order := make([]int, 0, n) // preorder
	parent[0] = -1
	stack := []int{0}
	seen := make([]bool, n)
	seen[0] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		for _, e := range g.Neighbors(u) {
			if !seen[e.To] {
				seen[e.To] = true
				parent[e.To] = u
				parentLen[e.To] = e.Length
				depth[e.To] = depth[u] + e.Length
				stack = append(stack, e.To)
			}
		}
	}
	weight := func(v int) float64 {
		if w == nil {
			return 1
		}
		return w[v]
	}
	subW := make([]float64, n)
	totalW, s0 := 0.0, 0.0
	for i := n - 1; i >= 0; i-- { // reverse preorder = children before parents
		v := order[i]
		subW[v] += weight(v)
		if parent[v] >= 0 {
			subW[parent[v]] += subW[v]
		}
		totalW += weight(v)
		s0 += weight(v) * depth[v]
	}
	score := make([]float64, n)
	score[0] = s0
	best, bestVal := 0, s0
	for _, v := range order[1:] {
		score[v] = score[parent[v]] + (totalW-2*subW[v])*parentLen[v]
		if score[v] < bestVal || (score[v] == bestVal && v < best) {
			best, bestVal = v, score[v]
		}
	}
	return best
}

// farthestMember returns the member (from the given node list) maximizing
// dist, ties toward the smaller node id.
func farthestMember(members []int, dist []float64) int {
	best, bestD := members[0], dist[members[0]]
	for _, m := range members[1:] {
		if dist[m] > bestD || (dist[m] == bestD && m < best) {
			best, bestD = m, dist[m]
		}
	}
	return best
}
