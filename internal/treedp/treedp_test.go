package treedp_test

import (
	"math"
	"math/rand"
	"testing"

	"quorumplace/internal/check"
	"quorumplace/internal/exact"
	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
	"quorumplace/internal/treedp"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// The subset DP must reproduce the branch-and-bound oracle's optimum on the
// seeded differential sweep, for every source. This is the core
// "objective-equal" acceptance criterion of the exact fast path.
func TestSSQPPMatchesExactOracle(t *testing.T) {
	tested := 0
	for seed := int64(1); seed <= 40; seed++ {
		ci := check.Gen(seed)
		ins := ci.Instance
		loads := ins.Loads()
		for v0 := 0; v0 < ins.M.N(); v0 += 3 {
			_, want, err := exact.SolveSSQPP(ins, v0)
			f, got, dpErr := treedp.SolveSSQPP(ins.M.Row(v0), ins.Cap, loads, ins.Sys, ins.Strat)
			if err != nil {
				if dpErr == nil {
					t.Fatalf("%s v0=%d: oracle failed (%v) but DP succeeded", ci.Desc, v0, err)
				}
				continue
			}
			if dpErr != nil {
				t.Fatalf("%s v0=%d: %v", ci.Desc, v0, dpErr)
			}
			if !approxEq(got, want, 1e-9) {
				t.Fatalf("%s v0=%d: DP objective %v, exact optimum %v", ci.Desc, v0, got, want)
			}
			pl := placement.NewPlacement(f)
			if !ins.Feasible(pl) {
				t.Fatalf("%s v0=%d: DP placement violates capacities", ci.Desc, v0)
			}
			if d := ins.MaxDelayFrom(v0, pl); !approxEq(d, got, 1e-9) {
				t.Fatalf("%s v0=%d: DP claims %v, recomputed Δ_f(v0) = %v", ci.Desc, v0, got, d)
			}
			tested++
		}
	}
	if tested < 50 {
		t.Fatalf("only %d differential cases ran", tested)
	}
}

// The diametral-pair evaluation must match the dense-metric evaluation of
// the same placement on random trees and random placements.
func TestTreeQPPEvaluationMatchesDenseMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(40)
		g := graph.RandomTree(n, 0.3, 2.0, rng)
		m, err := graph.NewMetricFromGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		sys := quorum.Majority(5, 3)
		strat := quorum.Uniform(sys.NumQuorums())
		caps := make([]float64, n)
		for i := range caps {
			caps[i] = 2
		}
		ins, err := placement.NewInstance(m, caps, sys, strat)
		if err != nil {
			t.Fatal(err)
		}
		var rates []float64
		if trial%2 == 1 {
			rates = make([]float64, n)
			for i := range rates {
				rates[i] = 1 + rng.Float64()*4
			}
			if err := ins.SetRates(rates); err != nil {
				t.Fatal(err)
			}
		}
		res, err := treedp.SolveQPP(g, caps, sys, strat, rates)
		if err != nil {
			t.Fatal(err)
		}
		pl := placement.NewPlacement(res.F)
		if want := ins.AvgMaxDelay(pl); !approxEq(res.AvgMaxDelay, want, 1e-9) {
			t.Fatalf("trial %d: tree evaluation %v, dense metric gives %v", trial, res.AvgMaxDelay, want)
		}
		if !ins.Feasible(pl) {
			t.Fatalf("trial %d: infeasible placement", trial)
		}
	}
}

// On small trees the driver tries every source with an exact per-source
// solve, so its result must (a) match the exact SSQPP optimum at its chosen
// source, (b) stay within the Lemma 3.1 relay factor of the true QPP
// optimum, and (c) never lose to the LP pipeline on instances where the LP
// rounding stays capacity-respecting.
func TestTreeQPPAgainstOracles(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 60 && checked < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := graph.RandomTree(n, 0.4, 2.0, rng)
		m, err := graph.NewMetricFromGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		sys := quorum.Majority(4, 3)
		strat := quorum.Uniform(sys.NumQuorums())
		caps := make([]float64, n)
		for i := range caps {
			caps[i] = 0.6 + rng.Float64()
		}
		tIns, err := placement.NewInstance(m, caps, sys, strat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := treedp.SolveQPP(g, caps, sys, strat, nil)
		if err != nil {
			continue // capacity profile infeasible; nothing to compare
		}
		if _, want, err := exact.SolveSSQPP(tIns, res.BestV0); err == nil && !approxEq(res.SourceDelay, want, 1e-9) {
			t.Fatalf("seed %d: source delay %v, exact SSQPP optimum %v", seed, res.SourceDelay, want)
		}
		if _, optVal, err := exact.SolveQPP(tIns); err == nil {
			if res.AvgMaxDelay < optVal*(1-1e-9)-1e-9 {
				t.Fatalf("seed %d: tree DP avg %v beats the capacity-respecting optimum %v", seed, res.AvgMaxDelay, optVal)
			}
			if res.AvgMaxDelay > 5*optVal*(1+1e-9)+1e-9 {
				t.Fatalf("seed %d: tree DP avg %v outside the relay factor of optimum %v", seed, res.AvgMaxDelay, optVal)
			}
		}
		checked++
	}
	if checked < 8 {
		t.Fatalf("only %d oracle comparisons ran", checked)
	}
}

// Large-instance smoke: a large tree with skewed demand solves fast and
// the reported objective survives an independent re-evaluation. check.sh
// and CI run it with -short (10⁴ nodes) as the scaling smoke test; the
// full test run covers 3×10⁴.
func TestTreeDPLargeSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 30_000
	if testing.Short() {
		n = 10_000
	}
	g := graph.RandomTree(n, 0.1, 1.0, rng)
	sys := quorum.Majority(5, 3)
	strat := quorum.Uniform(sys.NumQuorums())
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.7 // any element fits anywhere; contention still binds
	}
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = float64(1 + rng.Intn(1000))
	}
	res, err := treedp.SolveQPP(g, caps, sys, strat, rates)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.AvgMaxDelay) || math.IsInf(res.AvgMaxDelay, 0) || res.AvgMaxDelay <= 0 {
		t.Fatalf("objective %v", res.AvgMaxDelay)
	}
	// Capacity check from first principles.
	loads, _ := sys.Loads(strat)
	nodeLoad := map[int]float64{}
	for u, v := range res.F {
		nodeLoad[v] += loads[u]
	}
	for v, l := range nodeLoad {
		if l > caps[v]*(1+1e-9)+1e-9 {
			t.Fatalf("node %d overloaded: %v > %v", v, l, caps[v])
		}
	}
	// Independent evaluation: one tree-distance vector per placed node.
	rows := map[int][]float64{}
	for _, v := range res.F {
		if _, ok := rows[v]; !ok {
			dist := make([]float64, n)
			for i := range dist {
				dist[i] = math.Inf(1)
			}
			// BFS re-derivation without package internals.
			dist[v] = 0
			stack := []int{v}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, e := range g.Neighbors(u) {
					if math.IsInf(dist[e.To], 1) {
						dist[e.To] = dist[u] + e.Length
						stack = append(stack, e.To)
					}
				}
			}
			rows[v] = dist
		}
	}
	total, wsum := 0.0, 0.0
	for v := 0; v < n; v++ {
		dv := 0.0
		for q := 0; q < sys.NumQuorums(); q++ {
			pq := strat.P(q)
			if pq == 0 {
				continue
			}
			worst := 0.0
			for _, u := range sys.Quorum(q) {
				if d := rows[res.F[u]][v]; d > worst {
					worst = d
				}
			}
			dv += pq * worst
		}
		total += rates[v] * dv
		wsum += rates[v]
	}
	if want := total / wsum; !approxEq(res.AvgMaxDelay, want, 1e-9) {
		t.Fatalf("reported %v, independent evaluation %v", res.AvgMaxDelay, want)
	}
}
