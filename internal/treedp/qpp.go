package treedp

import (
	"fmt"
	"math"

	"quorumplace/internal/graph"
	"quorumplace/internal/obs"
	"quorumplace/internal/quorum"
)

// allSourcesLimit: below this many vertices the QPP driver runs the exact
// SSQPP DP from every vertex, matching the paper's try-all-sources
// reduction (Theorem 3.3) exactly. Above it, candidate sources are the
// rate-weighted 1-median and its tree neighborhood — the relay
// decomposition (Eq. 8) is minimized around the median of the client
// distribution, so the handful of candidates costs a near-linear total
// instead of n quadratic-ish solves.
const (
	allSourcesLimit    = 64
	maxMedianNeighbors = 16
)

// Result is the outcome of SolveQPP on a tree.
type Result struct {
	F           []int   // element → node map of the winning placement
	AvgMaxDelay float64 // rate-weighted Avg_v Δ_f(v), evaluated exactly
	BestV0      int     // the source whose exact SSQPP solution won
	SourceDelay float64 // Δ_f(BestV0), the optimal single-source delay
	Candidates  []int   // sources tried
}

// SolveQPP solves the Quorum Placement Problem on a tree without ever
// materializing an n² metric: for each candidate source it computes the
// O(n) tree distance vector, solves SSQPP exactly with the subset DP, and
// evaluates the true rate-weighted average max-delay of the resulting
// placement through per-quorum diametral pairs (evalAvgMaxDelay). rates may
// be nil for uniform clients.
func SolveQPP(g *graph.Graph, caps []float64, sys *quorum.System, strat quorum.Strategy, rates []float64) (*Result, error) {
	n := g.N()
	if !g.IsTree() {
		return nil, fmt.Errorf("treedp: graph with %d vertices and %d edges is not a tree", n, g.M())
	}
	if len(caps) != n {
		return nil, fmt.Errorf("treedp: %d capacities for %d nodes", len(caps), n)
	}
	if rates != nil {
		if len(rates) != n {
			return nil, fmt.Errorf("treedp: %d rates for %d nodes", len(rates), n)
		}
		sum := 0.0
		for v, r := range rates {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return nil, fmt.Errorf("treedp: rate of node %d is %v", v, r)
			}
			sum += r
		}
		if sum <= 0 {
			return nil, fmt.Errorf("treedp: rates sum to zero")
		}
	}
	loads, err := sys.Loads(strat)
	if err != nil {
		return nil, fmt.Errorf("treedp: %w", err)
	}
	sp := obs.Start("treedp.qpp")
	defer sp.End()
	obs.Count("treedp.nodes", int64(n))

	cands := candidateSources(g, rates)
	obs.Gauge("treedp.candidates", float64(len(cands)))
	dist := make([]float64, n)
	var stack []int
	var best *Result
	var firstErr error
	for _, v0 := range cands {
		stack = distsFrom(g, v0, dist, stack)
		f, d0, err := SolveSSQPP(dist, caps, loads, sys, strat)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("treedp: source %d: %w", v0, err)
			}
			continue
		}
		avg := evalAvgMaxDelay(g, f, sys, strat, rates)
		if best == nil || avg < best.AvgMaxDelay || (avg == best.AvgMaxDelay && v0 < best.BestV0) {
			best = &Result{F: f, AvgMaxDelay: avg, BestV0: v0, SourceDelay: d0}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("treedp: SSQPP failed for every candidate source: %w", firstErr)
	}
	best.Candidates = cands
	return best, nil
}

// candidateSources returns the sources the QPP driver tries: every vertex
// on small trees, otherwise the rate-weighted 1-median and its BFS
// neighborhood of up to maxMedianNeighbors further vertices. The
// neighborhood (rather than just direct neighbors) matters on sparse trees,
// where the median's degree is a small constant: the hop-ordered frontier
// fills the candidate budget deterministically.
func candidateSources(g *graph.Graph, rates []float64) []int {
	n := g.N()
	if n <= allSourcesLimit {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	med := weightedMedian(g, rates)
	cands := []int{med}
	seen := make([]bool, n)
	seen[med] = true
	for head := 0; head < len(cands) && len(cands) < 1+maxMedianNeighbors; head++ {
		for _, e := range g.Neighbors(cands[head]) {
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			cands = append(cands, e.To)
			if len(cands) == 1+maxMedianNeighbors {
				break
			}
		}
	}
	return cands
}

// evalAvgMaxDelay computes the QPP objective Avg_v Δ_f(v) exactly on the
// tree in O(Q·n): for each quorum, the farthest placed replica from any
// client v is one of the two endpoints (a, b) of the replica set's diameter
// — the standard double-scan property of trees — so
// max_{u∈Q} d(v, f(u)) = max(d(v,a), d(v,b)), and one distance vector per
// distinct endpoint suffices for all n clients.
func evalAvgMaxDelay(g *graph.Graph, f []int, sys *quorum.System, strat quorum.Strategy, rates []float64) float64 {
	n := g.N()
	rows := make(map[int][]float64, 2*sys.NumQuorums())
	var stack []int
	row := func(v int) []float64 {
		if r, ok := rows[v]; ok {
			return r
		}
		r := make([]float64, n)
		stack = distsFrom(g, v, r, stack)
		rows[v] = r
		return r
	}
	members := make([]int, 0, 8)
	total := 0.0
	for q := 0; q < sys.NumQuorums(); q++ {
		pq := strat.P(q)
		if pq == 0 {
			continue
		}
		members = members[:0]
		for _, u := range sys.Quorum(q) {
			members = append(members, f[u])
		}
		a := farthestMember(members, row(members[0]))
		b := farthestMember(members, row(a))
		ra, rb := row(a), row(b)
		acc := 0.0
		if rates == nil {
			for v := 0; v < n; v++ {
				acc += math.Max(ra[v], rb[v])
			}
		} else {
			for v := 0; v < n; v++ {
				acc += rates[v] * math.Max(ra[v], rb[v])
			}
		}
		total += pq * acc
	}
	if rates == nil {
		return total / float64(n)
	}
	wsum := 0.0
	for _, r := range rates {
		wsum += r
	}
	return total / wsum
}
