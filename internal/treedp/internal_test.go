package treedp

import (
	"errors"
	"math/rand"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/quorum"
)

func TestSSQPPBudgetExhaustion(t *testing.T) {
	n := 32
	dist := make([]float64, n)
	caps := make([]float64, n)
	for i := range dist {
		dist[i] = float64(i)
		caps[i] = 0.05 // force spreading, keeping many states alive
	}
	sys := quorum.Majority(9, 5)
	strat := quorum.Uniform(sys.NumQuorums())
	loads, err := sys.Loads(strat)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := solveSSQPP(dist, caps, loads, sys, strat, 10); !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
}

func TestSSQPPInfeasible(t *testing.T) {
	sys := quorum.Majority(3, 2)
	strat := quorum.Uniform(sys.NumQuorums())
	loads, _ := sys.Loads(strat)
	dist := []float64{0, 1, 2}
	caps := []float64{0, 0, 0} // every element has positive load, no node fits it
	if _, _, err := SolveSSQPP(dist, caps, loads, sys, strat); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("got %v, want ErrInfeasible", err)
	}
}

func TestSSQPPUniverseLimit(t *testing.T) {
	qs := make([][]int, MaxUniverse+1)
	for i := range qs {
		qs[i] = make([]int, MaxUniverse+1)
		for j := range qs[i] {
			qs[i][j] = j
		}
	}
	sys, err := quorum.NewSystem("big", MaxUniverse+1, qs[:1])
	if err != nil {
		t.Fatal(err)
	}
	strat := quorum.Uniform(1)
	loads, _ := sys.Loads(strat)
	if _, _, err := SolveSSQPP([]float64{0}, []float64{100}, loads, sys, strat); err == nil {
		t.Fatal("universe above MaxUniverse must be rejected")
	}
}

// The rate-weighted 1-median from rerooting must match the brute-force
// argmin of Σ w_v d(v, x) on random trees.
func TestWeightedMedianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := graph.RandomTree(n, 0.2, 3.0, rng)
		var w []float64
		if trial%2 == 0 {
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.Float64() * 5
			}
			w[rng.Intn(n)] += 1 // keep the total positive
		}
		got := weightedMedian(g, w)

		m, err := graph.NewMetricFromGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		best, bestVal := 0, 0.0
		for x := 0; x < n; x++ {
			s := 0.0
			for v := 0; v < n; v++ {
				wt := 1.0
				if w != nil {
					wt = w[v]
				}
				s += wt * m.D(v, x)
			}
			if x == 0 || s < bestVal {
				best, bestVal = x, s
			}
		}
		// Accept either on float ties.
		gotVal := 0.0
		for v := 0; v < n; v++ {
			wt := 1.0
			if w != nil {
				wt = w[v]
			}
			gotVal += wt * m.D(v, got)
		}
		if gotVal > bestVal*(1+1e-9)+1e-9 {
			t.Fatalf("trial %d: median %d scores %v, brute force %d scores %v", trial, got, gotVal, best, bestVal)
		}
	}
}

// distsFrom must agree with Dijkstra on trees.
func TestDistsFromMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomTree(60, 0.5, 2.5, rng)
	dist := make([]float64, g.N())
	var stack []int
	for src := 0; src < g.N(); src += 7 {
		stack = distsFrom(g, src, dist, stack)
		want := g.ShortestPathsFrom(src)
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("d(%d,%d) = %v, Dijkstra gives %v", src, v, dist[v], want[v])
			}
		}
	}
}
