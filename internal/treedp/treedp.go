// Package treedp provides exact fast paths for the placement problems on
// large instances. The core is a subset dynamic program that solves the
// Single-Source Quorum Placement Problem (Problem 3.2) to optimality in
// O(n·3^U) time: near-linear in the network size n for a fixed logical
// universe U, which is the regime the paper's quorum systems live in
// (universes of a handful to a couple dozen elements over networks of
// thousands to millions of nodes).
//
// SSQPP is NP-hard even on a path (Theorem 3.6), so no algorithm polynomial
// in both n and U exists unless P=NP; the DP isolates the exponential cost
// in U, where it is tiny, instead of in n, where the LP pipeline pays a
// super-linear price. On tree metrics the companion driver (qpp.go) solves
// the full QPP without ever materializing an n² metric: tree distance
// vectors are O(n) scans, and the average max-delay objective is evaluated
// exactly through per-quorum diametral pairs.
package treedp

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"quorumplace/internal/obs"
	"quorumplace/internal/quorum"
)

const (
	// MaxUniverse caps the DP state space: 2^U states, up to 3^U
	// (state, subset) transition pairs per node.
	MaxUniverse = 16

	// DefaultOpsBudget bounds the transition pairs one solve may examine
	// before aborting with ErrBudget. The early cut below usually stops the
	// scan after the nearest feasible ranks, so real solves come nowhere
	// near it; the budget is a guard against adversarial capacity profiles.
	DefaultOpsBudget = int64(1) << 29

	// capTol mirrors the placement package's capacity tolerance so DP
	// placements are accepted by Instance.Feasible.
	capTol = 1e-9
)

// ErrBudget is returned when a solve exceeds its transition budget.
var ErrBudget = errors.New("treedp: ops budget exhausted")

// ErrInfeasible is returned when no capacity-respecting placement exists.
var ErrInfeasible = errors.New("treedp: no capacity-respecting placement exists")

// chain is an immutable traceback node. Each dp improvement freezes its own
// history, so a state's chain is always consistent with its cost even
// though predecessor states keep improving afterwards.
type chain struct {
	prev   *chain
	node   int32
	subset uint32
}

// SolveSSQPP solves the single-source problem exactly: it returns an
// element→node map f minimizing Δ_f = Σ_Q p(Q)·max_{u∈Q} dist[f(u)] subject
// to Σ_{f(u)=v} loads[u] ≤ caps[v], together with the optimal objective.
// dist[v] is the distance from the (implicit) source to node v; caps and
// loads use the placement package's conventions.
//
// The DP scans nodes by increasing distance (capacity and id break ties,
// mirroring the LP's rank order) and tracks, per subset S of the universe,
// the cheapest way to place exactly S on the scanned prefix: placing a
// subset A on the current node completes the quorums inside S∪A that were
// incomplete in S, each paying its probability times the current distance —
// exactly the objective, since a quorum's max delay is the distance of its
// farthest (latest-scanned) element. Updates are buffered per node so two
// subsets can never stack onto the same node, and the scan stops as soon as
// no remaining node can beat the best complete placement: any future
// completion pays at least dp[S] + (P(all) − P(S))·d_t through some current
// state S.
func SolveSSQPP(dist, caps, loads []float64, sys *quorum.System, strat quorum.Strategy) ([]int, float64, error) {
	return solveSSQPP(dist, caps, loads, sys, strat, DefaultOpsBudget)
}

func solveSSQPP(dist, caps, loads []float64, sys *quorum.System, strat quorum.Strategy, budget int64) ([]int, float64, error) {
	n := len(dist)
	nU := sys.Universe()
	switch {
	case n == 0:
		return nil, 0, fmt.Errorf("treedp: empty network")
	case nU > MaxUniverse:
		return nil, 0, fmt.Errorf("treedp: universe %d exceeds DP limit %d", nU, MaxUniverse)
	case len(caps) != n:
		return nil, 0, fmt.Errorf("treedp: %d capacities for %d nodes", len(caps), n)
	case len(loads) != nU:
		return nil, 0, fmt.Errorf("treedp: %d loads for universe %d", len(loads), nU)
	}
	for v, d := range dist {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, 0, fmt.Errorf("treedp: distance of node %d is %v", v, d)
		}
	}
	sp := obs.Start("treedp.ssqpp")
	defer sp.End()

	size := 1 << nU
	full := size - 1

	// probOf[m] = Σ p(Q) over quorums Q ⊆ m, via the subset-sum zeta
	// transform; loadOf[m] = Σ_{u∈m} loads[u].
	probOf := make([]float64, size)
	for q := 0; q < sys.NumQuorums(); q++ {
		mask := 0
		for _, u := range sys.Quorum(q) {
			mask |= 1 << u
		}
		probOf[mask] += strat.P(q)
	}
	for b := 0; b < nU; b++ {
		bit := 1 << b
		for m := 0; m < size; m++ {
			if m&bit != 0 {
				probOf[m] += probOf[m^bit]
			}
		}
	}
	fullP := probOf[full]
	loadOf := make([]float64, size)
	for m := 1; m < size; m++ {
		low := m & -m
		loadOf[m] = loadOf[m^low] + loads[bits.TrailingZeros32(uint32(low))]
	}

	// Rank order (distance, capacity, id) — the sourceClasses tie-break.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		oi, oj := order[i], order[j]
		if dist[oi] != dist[oj] {
			return dist[oi] < dist[oj]
		}
		if caps[oi] != caps[oj] {
			return caps[oi] < caps[oj]
		}
		return oi < oj
	})

	inf := math.Inf(1)
	dp := make([]float64, size)
	next := make([]float64, size)
	trace := make([]*chain, size)
	nextTrace := make([]*chain, size)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0

	var ops int64
	ranks := 0
	for t := 0; t < n; t++ {
		v := order[t]
		dt := dist[v]
		// Exact early cut: every not-yet-found completion passes through
		// some current state S and pays its remaining probability mass at
		// distance ≥ dt, so once the best full placement undercuts every
		// dp[S] + (fullP − probOf[S])·dt the scan cannot improve.
		if best := dp[full]; !math.IsInf(best, 1) {
			improvable := false
			for S := 0; S < full; S++ {
				if dp[S]+(fullP-probOf[S])*dt < best {
					improvable = true
					break
				}
			}
			if !improvable {
				break
			}
		}
		ranks++
		limit := caps[v]*(1+capTol) + capTol
		copy(next, dp)
		copy(nextTrace, trace)
		for S := 0; S < size; S++ {
			base := dp[S]
			if math.IsInf(base, 1) {
				continue
			}
			comp := full &^ S
			for A := comp; A != 0; A = (A - 1) & comp {
				ops++
				if loadOf[A] > limit {
					continue
				}
				nS := S | A
				if c := base + (probOf[nS]-probOf[S])*dt; c < next[nS] {
					next[nS] = c
					nextTrace[nS] = &chain{prev: trace[S], node: int32(v), subset: uint32(A)}
				}
			}
		}
		if ops > budget {
			return nil, 0, fmt.Errorf("%w: %d transitions at rank %d/%d (universe %d)", ErrBudget, ops, t, n, nU)
		}
		dp, next = next, dp
		trace, nextTrace = nextTrace, trace
	}
	obs.Count("treedp.dp_ops", ops)
	obs.Gauge("treedp.dp_ranks", float64(ranks))

	if math.IsInf(dp[full], 1) {
		return nil, 0, fmt.Errorf("%w: universe load %v over %d nodes", ErrInfeasible, loadOf[full], n)
	}
	f := make([]int, nU)
	for c := trace[full]; c != nil; c = c.prev {
		for a := c.subset; a != 0; a &= a - 1 {
			f[bits.TrailingZeros32(a)] = int(c.node)
		}
	}
	return f, dp[full], nil
}

// EstimatedOps returns the worst-case transition count n·3^U of a solve, the
// quantity callers gate auto-selection on.
func EstimatedOps(n, universe int) float64 {
	return float64(n) * math.Pow(3, float64(universe))
}
