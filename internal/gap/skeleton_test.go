package gap

import (
	"math"
	"math/rand"
	"testing"
)

// randomInstance builds a feasible random GAP instance: every job fits on
// every machine and total capacity comfortably exceeds total load.
func randomInstance(rng *rand.Rand, m, n int) *Instance {
	ins := &Instance{
		Cost: make([][]float64, m),
		Load: make([][]float64, m),
		T:    make([]float64, m),
	}
	for i := 0; i < m; i++ {
		ins.Cost[i] = make([]float64, n)
		ins.Load[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			ins.Cost[i][j] = 1 + 9*rng.Float64()
			ins.Load[i][j] = 0.5 + rng.Float64()
		}
	}
	for i := 0; i < m; i++ {
		ins.T[i] = 1.5 * float64(n) / float64(m)
	}
	return ins
}

// TestSkeletonMatchesSolveLPBitwise pins that a fresh skeleton's first
// solve is bit-for-bit the legacy SolveLP path.
func TestSkeletonMatchesSolveLPBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		ins := randomInstance(rng, 3+trial%3, 6+trial)
		if trial%2 == 1 {
			ins.Load[0][0] = math.Inf(1) // exercise the forbidden-pair pattern
		}
		yA, objA, err := SolveLP(ins)
		if err != nil {
			t.Fatalf("trial %d: SolveLP: %v", trial, err)
		}
		sk, err := NewSkeleton(ins)
		if err != nil {
			t.Fatalf("trial %d: NewSkeleton: %v", trial, err)
		}
		yB, objB, warm, err := sk.SolveLP()
		if err != nil {
			t.Fatalf("trial %d: skeleton SolveLP: %v", trial, err)
		}
		if warm {
			t.Fatalf("trial %d: first skeleton solve claimed warm", trial)
		}
		if objA != objB {
			t.Fatalf("trial %d: objective differs bitwise: %v vs %v", trial, objA, objB)
		}
		for i := range yA {
			for j := range yA[i] {
				if yA[i][j] != yB[i][j] {
					t.Fatalf("trial %d: y[%d][%d] differs bitwise: %v vs %v", trial, i, j, yA[i][j], yB[i][j])
				}
			}
		}
	}
}

// TestSkeletonWarmResolve drives cost and capacity edits through one
// skeleton, comparing every solve against a from-scratch SolveLP.
func TestSkeletonWarmResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ins := randomInstance(rng, 4, 10)
	sk, err := NewSkeleton(ins)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sk.SolveLP(); err != nil {
		t.Fatal(err)
	}
	warmCount := 0
	for iter := 0; iter < 30; iter++ {
		cost := make([][]float64, len(ins.Cost))
		for i := range cost {
			cost[i] = make([]float64, len(ins.Cost[i]))
			for j := range cost[i] {
				cost[i][j] = 1 + 9*rng.Float64()
			}
		}
		caps := make([]float64, len(ins.T))
		for i := range caps {
			caps[i] = ins.T[i] * (0.9 + 0.4*rng.Float64())
		}
		if err := sk.SetCosts(cost); err != nil {
			t.Fatal(err)
		}
		if err := sk.SetCapacities(caps); err != nil {
			t.Fatal(err)
		}
		y, obj, warm, err := sk.SolveLP()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if warm {
			warmCount++
		}
		ref := &Instance{Cost: cost, Load: ins.Load, T: caps}
		yRef, objRef, err := SolveLP(ref)
		if err != nil {
			t.Fatalf("iter %d: reference: %v", iter, err)
		}
		if math.Abs(obj-objRef) > 1e-6*(1+math.Abs(objRef)) {
			t.Fatalf("iter %d (warm=%v): objective %v != reference %v", iter, warm, obj, objRef)
		}
		// The warm solve may sit on a different vertex of the same optimal
		// face, so compare per-job mass, not y entrywise.
		for j := range yRef[0] {
			sum := 0.0
			for i := range y {
				sum += y[i][j]
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("iter %d: job %d mass %v", iter, j, sum)
			}
		}
	}
	if warmCount == 0 {
		t.Fatal("no solve took the warm path")
	}
}

// TestSkeletonForbid checks SetFixed-based pair exclusion on top of the
// structural pattern.
func TestSkeletonForbid(t *testing.T) {
	ins := simpleInstance()
	sk, err := NewSkeleton(ins)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sk.SolveLP(); err != nil {
		t.Fatal(err)
	}
	if !sk.Forbid(0, 0, true) {
		t.Fatal("Forbid on an allowed pair returned false")
	}
	y, _, _, err := sk.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if y[0][0] != 0 {
		t.Fatalf("forbidden pair got mass %v", y[0][0])
	}
	// Releasing restores the original optimum.
	if !sk.Forbid(0, 0, false) {
		t.Fatal("release returned false")
	}
	_, obj, _, err := sk.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-7) > 1e-6 {
		t.Fatalf("objective %v after release, want 7", obj)
	}
	// Structurally forbidden pairs have no variable to fix.
	ins2 := simpleInstance()
	ins2.Load[1][2] = math.Inf(1)
	sk2, err := NewSkeleton(ins2)
	if err != nil {
		t.Fatal(err)
	}
	if sk2.Forbid(1, 2, true) {
		t.Fatal("Forbid on a structurally forbidden pair returned true")
	}
}

// TestSkeletonResetWarm checks that ResetWarm forces the next solve cold.
func TestSkeletonResetWarm(t *testing.T) {
	ins := simpleInstance()
	sk, err := NewSkeleton(ins)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sk.SolveLP(); err != nil {
		t.Fatal(err)
	}
	if _, _, warm, err := sk.SolveLP(); err != nil || !warm {
		t.Fatalf("second solve: warm=%v err=%v, want warm", warm, err)
	}
	sk.ResetWarm()
	if _, _, warm, err := sk.SolveLP(); err != nil || warm {
		t.Fatalf("post-reset solve: warm=%v err=%v, want cold", warm, err)
	}
}

// TestSkeletonRejectsBadShapes checks the dimension validation of the
// re-cost hooks.
func TestSkeletonRejectsBadShapes(t *testing.T) {
	sk, err := NewSkeleton(simpleInstance())
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.SetCosts([][]float64{{1, 1, 1}}); err == nil {
		t.Fatal("short cost matrix accepted")
	}
	if err := sk.SetCosts([][]float64{{1, 1}, {1, 1}}); err == nil {
		t.Fatal("short cost row accepted")
	}
	if err := sk.SetCapacities([]float64{1}); err == nil {
		t.Fatal("short capacity vector accepted")
	}
}
