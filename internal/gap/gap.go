// Package gap implements the Generalized Assignment Problem machinery the
// paper builds on (Definition 3.10): the LP relaxation (15)–(18) of Lenstra–
// Shmoys–Tardos, and the Shmoys–Tardos rounding theorem (Theorem 3.11),
// which converts any fractional solution into an integral assignment of cost
// no more than the fractional cost, loading each machine i by at most
// T_i + p_i^max (the largest load of any job fractionally assigned to i).
//
// The paper uses this twice: to round the filtered SSQPP LP solution
// (Theorem 3.12) and to solve the total-delay placement problem directly
// (Theorem 5.1).
package gap

import (
	"fmt"
	"math"
	"sort"

	"quorumplace/internal/flow"
	"quorumplace/internal/obs"
)

// Instance is a GAP instance: jobs must each be assigned to one machine;
// assigning job j to machine i costs Cost[i][j] and consumes Load[i][j] of
// machine i's capacity T[i]. A Load entry of +Inf forbids the pair.
type Instance struct {
	Cost [][]float64 // [machine][job]
	Load [][]float64 // [machine][job]; +Inf = forbidden
	T    []float64   // machine capacities
}

// NumMachines returns the number of machines.
func (ins *Instance) NumMachines() int { return len(ins.T) }

// NumJobs returns the number of jobs (0 for an empty instance).
func (ins *Instance) NumJobs() int {
	if len(ins.Cost) == 0 {
		return 0
	}
	return len(ins.Cost[0])
}

// Validate checks dimensional consistency and value sanity.
func (ins *Instance) Validate() error {
	m := len(ins.T)
	if len(ins.Cost) != m || len(ins.Load) != m {
		return fmt.Errorf("gap: %d machines but %d cost rows and %d load rows", m, len(ins.Cost), len(ins.Load))
	}
	n := ins.NumJobs()
	for i := 0; i < m; i++ {
		if len(ins.Cost[i]) != n || len(ins.Load[i]) != n {
			return fmt.Errorf("gap: machine %d has %d costs and %d loads, want %d", i, len(ins.Cost[i]), len(ins.Load[i]), n)
		}
		if ins.T[i] < 0 || math.IsNaN(ins.T[i]) {
			return fmt.Errorf("gap: machine %d capacity %v", i, ins.T[i])
		}
		for j := 0; j < n; j++ {
			if math.IsNaN(ins.Cost[i][j]) {
				return fmt.Errorf("gap: cost[%d][%d] is NaN", i, j)
			}
			if l := ins.Load[i][j]; l < 0 || math.IsNaN(l) {
				return fmt.Errorf("gap: load[%d][%d] = %v", i, j, l)
			}
		}
	}
	return nil
}

// SolveLP solves the LP relaxation (15)–(18): minimize Σ c_ij y_ij subject
// to Σ_i y_ij = 1 for each job, Σ_j p_ij y_ij ≤ T_i for each machine, and
// y ≥ 0 with forbidden pairs fixed to zero. It returns the fractional
// solution y[machine][job] and its objective value.
func SolveLP(ins *Instance) ([][]float64, float64, error) {
	sp := obs.Start("gap.lp")
	defer sp.End()
	prob, vars, err := buildLP(ins, nil)
	if err != nil {
		return nil, 0, err
	}
	// The pooled-workspace cold solve: the same construction and pivot
	// sequence as a fresh Skeleton's first solve, without paying for a
	// dedicated warm workspace the one-shot path would throw away.
	sol, err := prob.Solve()
	if err != nil {
		return nil, 0, fmt.Errorf("gap: LP relaxation: %w", err)
	}
	// Post-solve invariant check: the simplex hot path keeps being
	// rewritten, so assert primal feasibility before rounding trusts y.
	if err := prob.VerifySolution(sol, 1e-6); err != nil {
		return nil, 0, fmt.Errorf("gap: LP relaxation returned an infeasible point: %w", err)
	}
	m, n := ins.NumMachines(), ins.NumJobs()
	y := make([][]float64, m)
	for i := 0; i < m; i++ {
		y[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if vars[i][j] >= 0 {
				y[i][j] = sol.X[vars[i][j]]
			}
		}
	}
	return y, sol.Objective, nil
}

// fracTol is the threshold below which fractional assignments are treated
// as zero during rounding (LP roundoff noise).
const fracTol = 1e-9

// Workspace carries the scratch of Round across calls: the slot-graph edge
// buffers and the flow solver's network and scratch arrays. Reusing one
// workspace makes the warm rounding path allocation-free except for the
// returned assignment. A Workspace is not safe for concurrent use.
type Workspace struct {
	// Rec routes the rounding telemetry; the zero value records through the
	// ambient package-level collector, worker shards install their own.
	// RoundWith propagates it to the embedded flow workspace.
	Rec obs.Rec

	flow        *flow.Workspace
	slotMachine []int       // slot index → machine
	jobs        []int       // per-machine fractional job scratch
	edges       []roundEdge // job×slot edges in generation order
	sorted      []roundEdge // edges counting-sorted by job
	jobStart    []int       // counting-sort offsets (len n+1)
}

// NewWorkspace returns an empty rounding workspace.
func NewWorkspace() *Workspace {
	return &Workspace{flow: flow.NewWorkspace()}
}

// roundEdge is one allowed job→slot pairing in the rounding graph.
type roundEdge struct {
	job, slot int
	cost      float64
}

// Round applies the Shmoys–Tardos rounding (Theorem 3.11) to the fractional
// solution y[machine][job]: each job j must have Σ_i y_ij ≈ 1. It returns
// assign[job] = machine with:
//
//   - total cost ≤ the fractional cost Σ c_ij y_ij, and
//   - for each machine i, Σ_{j assigned to i} p_ij ≤ Σ_j p_ij y_ij + p_i^max,
//     where p_i^max is the largest load among jobs with y_ij > 0.
//
// Jobs are only ever assigned to machines they were fractionally assigned
// to, which is what the SSQPP filtering argument (Lemma 3.9) relies on.
func Round(ins *Instance, y [][]float64) ([]int, float64, error) {
	return RoundWith(nil, ins, y)
}

// RoundWith is Round solving against a reusable Workspace (nil behaves like
// Round). Callers rounding many fractional solutions in a row — the
// per-source SSQPP roundings of the QPP reduction — hold one workspace per
// worker so the slot graph and the min-cost-flow scratch are recycled
// instead of reallocated.
func RoundWith(ws *Workspace, ins *Instance, y [][]float64) ([]int, float64, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.flow.Rec = ws.Rec
	sp := ws.Rec.Start("gap.round")
	defer sp.End()
	if err := ins.Validate(); err != nil {
		return nil, 0, err
	}
	m, n := ins.NumMachines(), ins.NumJobs()
	if len(y) != m {
		return nil, 0, fmt.Errorf("gap: fractional solution has %d machines, want %d", len(y), m)
	}
	var fractionalVars int64
	for j := 0; j < n; j++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			if len(y[i]) != n {
				return nil, 0, fmt.Errorf("gap: fractional row %d has %d jobs, want %d", i, len(y[i]), n)
			}
			if y[i][j] < -fracTol {
				return nil, 0, fmt.Errorf("gap: y[%d][%d] = %v is negative", i, j, y[i][j])
			}
			if y[i][j] > fracTol && math.IsInf(ins.Load[i][j], 1) {
				return nil, 0, fmt.Errorf("gap: y[%d][%d] = %v but the pair is forbidden", i, j, y[i][j])
			}
			if y[i][j] > fracTol {
				fractionalVars++
			}
			sum += y[i][j]
		}
		if math.Abs(sum-1) > 1e-6 {
			return nil, 0, fmt.Errorf("gap: job %d has fractional mass %v, want 1", j, sum)
		}
	}
	ws.Rec.Count("gap.fractional_vars", fractionalVars)

	// Slot construction: for each machine, order its fractionally assigned
	// jobs by nonincreasing load and pack them greedily into slots of unit
	// fractional mass. A job split across two consecutive slots appears in
	// both. The resulting job×slot bipartite graph admits the fractional
	// solution as a fractional matching, so a min-cost integral matching
	// costs no more; because slots are filled in load order, machine i
	// receives at most one job "extra" beyond its fractional load.
	slotMachine := ws.slotMachine[:0]
	edges := ws.edges[:0]
	for i := 0; i < m; i++ {
		jobs := ws.jobs[:0]
		for j := 0; j < n; j++ {
			if y[i][j] > fracTol {
				jobs = append(jobs, j)
			}
		}
		if len(jobs) == 0 {
			ws.jobs = jobs
			continue
		}
		sort.SliceStable(jobs, func(a, b int) bool {
			return ins.Load[i][jobs[a]] > ins.Load[i][jobs[b]]
		})
		cur := len(slotMachine)
		slotMachine = append(slotMachine, i)
		room := 1.0
		for _, j := range jobs {
			rem := y[i][j]
			for rem > fracTol {
				edges = append(edges, roundEdge{job: j, slot: cur, cost: ins.Cost[i][j]})
				if rem <= room+fracTol {
					room -= rem
					rem = 0
				} else {
					rem -= room
					room = 0
				}
				if room <= fracTol && rem > fracTol {
					cur = len(slotMachine)
					slotMachine = append(slotMachine, i)
					room = 1.0
				}
			}
		}
		ws.jobs = jobs
	}
	ws.slotMachine, ws.edges = slotMachine, edges
	ns := len(slotMachine)
	ws.Rec.Count("gap.slots", int64(ns))

	// Counting-sort the edges by job (stable, so each job's slots stay in
	// increasing order), giving the same arc insertion order as the dense
	// job-major assignment matrix the rounding used to build — the min-cost
	// matching, and hence tie-breaking among equal-cost optima, is
	// bit-identical to the dense path while touching only the real edges.
	if cap(ws.jobStart) < n+1 {
		ws.jobStart = make([]int, n+1)
	}
	jobStart := ws.jobStart[:n+1]
	for j := range jobStart {
		jobStart[j] = 0
	}
	for _, e := range edges {
		jobStart[e.job+1]++
	}
	for j := 1; j <= n; j++ {
		jobStart[j] += jobStart[j-1]
	}
	if cap(ws.sorted) < len(edges) {
		ws.sorted = make([]roundEdge, len(edges))
	}
	sorted := ws.sorted[:len(edges)]
	next := jobStart[:n] // consumed as write cursors; restored below
	for _, e := range edges {
		sorted[next[e.job]] = e
		next[e.job]++
	}
	// next[j] now equals the start of job j+1's run; sorted[start:next[j]]
	// with start = 0 for j = 0 and next[j-1] otherwise spans job j's edges.

	// Build the assignment network directly: 0 = source, 1..n = jobs,
	// n+1..n+ns = slots, n+ns+1 = sink; every slot holds one job.
	src, snk := 0, n+ns+1
	nw := ws.flow.NewNetwork(n + ns + 2)
	start := 0
	for j := 0; j < n; j++ {
		nw.AddEdge(src, 1+j, 1, 0)
		for _, e := range sorted[start:next[j]] {
			nw.AddEdge(1+j, 1+n+e.slot, 1, e.cost)
		}
		start = next[j]
	}
	for s := 0; s < ns; s++ {
		nw.AddEdge(1+n+s, snk, 1, 0)
	}
	res, err := nw.SolveAssignment(src, snk, int64(n))
	if err != nil {
		return nil, 0, fmt.Errorf("gap: rounding matching failed: %w", err)
	}
	assign := make([]int, n)
	for j := 0; j < n; j++ {
		s := nw.MatchedNeighbor(1 + j)
		if s < 0 {
			return nil, 0, fmt.Errorf("gap: internal error: job %d unmatched after full flow", j)
		}
		assign[j] = slotMachine[s-1-n]
	}
	return assign, res.Cost, nil
}

// Solve runs SolveLP followed by Round, returning the integral assignment,
// its cost, and the LP lower bound.
func Solve(ins *Instance) (assign []int, cost, lpBound float64, err error) {
	sp := obs.Start("gap.solve")
	defer sp.End()
	y, lpObj, err := SolveLP(ins)
	if err != nil {
		return nil, 0, 0, err
	}
	assign, cost, err = Round(ins, y)
	if err != nil {
		return nil, 0, 0, err
	}
	return assign, cost, lpObj, nil
}

// Loads returns the per-machine load of an integral assignment.
func Loads(ins *Instance, assign []int) []float64 {
	loads := make([]float64, ins.NumMachines())
	for j, i := range assign {
		loads[i] += ins.Load[i][j]
	}
	return loads
}

// MaxFractionalLoad returns, for each machine, the largest load among jobs
// fractionally assigned to it (p_i^max in Theorem 3.11), zero if none.
func MaxFractionalLoad(ins *Instance, y [][]float64) []float64 {
	out := make([]float64, ins.NumMachines())
	for i := range y {
		for j, v := range y[i] {
			if v > fracTol && ins.Load[i][j] > out[i] {
				out[i] = ins.Load[i][j]
			}
		}
	}
	return out
}
