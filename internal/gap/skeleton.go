package gap

import (
	"fmt"
	"math"

	"quorumplace/internal/lp"
	"quorumplace/internal/obs"
)

// Skeleton is a reusable LP model of one GAP instance's sparsity pattern:
// which (machine, job) pairs are allowed and which rows exist. Costs and
// capacities can be re-set between solves without rebuilding the model, and
// repeated solves reuse the previous optimal basis through lp.SolveHot —
// the incremental path of the daemon's per-tick shard re-planning.
//
// The allowed-pair pattern is fixed at construction from the instance's
// Load matrix: a +Inf load never gets a variable. Later capacity edits may
// only shrink or grow the machine budgets (the RHS); they cannot forbid new
// pairs. A Skeleton is not safe for concurrent use.
type Skeleton struct {
	// Rec routes the telemetry of solves through this skeleton; the zero
	// value records through the ambient package-level collector.
	Rec obs.Rec

	ins    *Instance
	m, n   int
	prob   *lp.Problem
	vars   [][]int // vars[i][j] = LP variable of pair (i,j), -1 if forbidden
	capRow []int   // capRow[i] = constraint row of machine i's capacity, -1 if none
	ws     *lp.Workspace
}

// buildLP validates the instance and constructs the relaxation (15)–(18):
// minimize Σ c_ij y_ij subject to Σ_i y_ij = 1 per job, Σ_j p_ij y_ij ≤ T_i
// per machine, y ≥ 0, forbidden (+Inf-load) pairs getting no variable. Both
// the one-shot SolveLP and NewSkeleton run exactly this code, so their
// constructions — and hence cold pivot sequences — are bit-for-bit
// identical. capRow, when non-nil (len = machines), records each machine's
// capacity-row index (-1 if the machine has no positive-load pair).
func buildLP(ins *Instance, capRow []int) (*lp.Problem, [][]int, error) {
	if err := ins.Validate(); err != nil {
		return nil, nil, err
	}
	m, n := ins.NumMachines(), ins.NumJobs()
	prob := lp.NewProblem()
	vars := make([][]int, m)
	for i := 0; i < m; i++ {
		vars[i] = make([]int, n)
		for j := 0; j < n; j++ {
			vars[i][j] = -1
			if !math.IsInf(ins.Load[i][j], 1) {
				vars[i][j] = prob.AddVar(ins.Cost[i][j], fmt.Sprintf("y_%d_%d", i, j))
			}
		}
	}
	// One scratch row shared by every constraint: AddConstraint copies.
	terms := make([]lp.Term, 0, max(m, n))
	for j := 0; j < n; j++ {
		terms = terms[:0]
		for i := 0; i < m; i++ {
			if vars[i][j] >= 0 {
				terms = append(terms, lp.Term{Var: vars[i][j], Coef: 1})
			}
		}
		if len(terms) == 0 {
			return nil, nil, fmt.Errorf("gap: job %d has no allowed machine", j)
		}
		prob.AddConstraint(terms, lp.EQ, 1)
	}
	for i := 0; i < m; i++ {
		if capRow != nil {
			capRow[i] = -1
		}
		terms = terms[:0]
		for j := 0; j < n; j++ {
			if vars[i][j] >= 0 && ins.Load[i][j] > 0 {
				terms = append(terms, lp.Term{Var: vars[i][j], Coef: ins.Load[i][j]})
			}
		}
		if len(terms) > 0 {
			if capRow != nil {
				capRow[i] = prob.NumConstraints()
			}
			prob.AddConstraint(terms, lp.LE, ins.T[i])
		}
	}
	return prob, vars, nil
}

// NewSkeleton validates the instance and builds its LP model once, via the
// same construction SolveLP runs, so that solving the skeleton is
// bit-for-bit identical to the one-shot path.
func NewSkeleton(ins *Instance) (*Skeleton, error) {
	m := ins.NumMachines()
	capRow := make([]int, m)
	prob, vars, err := buildLP(ins, capRow)
	if err != nil {
		return nil, err
	}
	return &Skeleton{
		ins:    ins,
		m:      m,
		n:      ins.NumJobs(),
		prob:   prob,
		vars:   vars,
		capRow: capRow,
		ws:     lp.NewWorkspace(),
	}, nil
}

// SetCosts overwrites the objective with a new cost matrix (same shape as
// the instance's Cost). Forbidden pairs' entries are ignored. Cost edits
// never force the next solve cold.
func (sk *Skeleton) SetCosts(cost [][]float64) error {
	if len(cost) != sk.m {
		return fmt.Errorf("gap: %d cost rows, want %d", len(cost), sk.m)
	}
	for i := 0; i < sk.m; i++ {
		if len(cost[i]) != sk.n {
			return fmt.Errorf("gap: cost row %d has %d jobs, want %d", i, len(cost[i]), sk.n)
		}
		for j := 0; j < sk.n; j++ {
			if v := sk.vars[i][j]; v >= 0 {
				sk.prob.SetCost(v, cost[i][j])
			}
		}
	}
	return nil
}

// SetCapacities overwrites the machine budgets. Machines that never got a
// capacity row (no positive-load allowed pair) silently ignore their entry.
// Capacity edits stay on the warm path as long as the retained basis
// remains feasible under the new budgets; tightening past the basic
// activity falls back to a cold solve automatically.
func (sk *Skeleton) SetCapacities(t []float64) error {
	if len(t) != sk.m {
		return fmt.Errorf("gap: %d capacities, want %d", len(t), sk.m)
	}
	for i, row := range sk.capRow {
		if row >= 0 {
			sk.prob.SetRHS(row, t[i])
		}
	}
	return nil
}

// Forbid fixes the pair (machine i, job j) to zero (or releases it) on top
// of the structural pattern, letting one skeleton serve solves that exclude
// different pair subsets. It reports false when the pair is structurally
// forbidden (no variable exists). Toggling forces the next solve cold.
func (sk *Skeleton) Forbid(i, j int, forbidden bool) bool {
	v := sk.vars[i][j]
	if v < 0 {
		return false
	}
	sk.prob.SetFixed(v, forbidden)
	return true
}

// ResetWarm discards the retained basis so the next solve runs cold.
// Benchmarks use it to isolate the cold path.
func (sk *Skeleton) ResetWarm() { sk.ws.ResetWarm() }

// SolveLP solves the current relaxation, returning the fractional solution
// y[machine][job], its objective, and whether the warm path was taken.
func (sk *Skeleton) SolveLP() ([][]float64, float64, bool, error) {
	sk.ws.Rec = sk.Rec
	sol, warm, err := sk.prob.SolveHot(sk.ws)
	if err != nil {
		return nil, 0, warm, fmt.Errorf("gap: LP relaxation: %w", err)
	}
	// Post-solve invariant check: the simplex hot path keeps being
	// rewritten, so assert primal feasibility before rounding trusts y.
	if err := sk.prob.VerifySolution(sol, 1e-6); err != nil {
		return nil, 0, warm, fmt.Errorf("gap: LP relaxation returned an infeasible point: %w", err)
	}
	y := make([][]float64, sk.m)
	for i := 0; i < sk.m; i++ {
		y[i] = make([]float64, sk.n)
		for j := 0; j < sk.n; j++ {
			if sk.vars[i][j] >= 0 {
				y[i][j] = sol.X[sk.vars[i][j]]
			}
		}
	}
	return y, sol.Objective, warm, nil
}
