package gap

import (
	"math"
	"math/rand"
	"testing"
)

func simpleInstance() *Instance {
	// 2 machines, 3 jobs. Machine 0 cheap but tight capacity.
	return &Instance{
		Cost: [][]float64{{1, 1, 1}, {5, 5, 5}},
		Load: [][]float64{{1, 1, 1}, {1, 1, 1}},
		T:    []float64{2, 3},
	}
}

func TestValidate(t *testing.T) {
	ins := simpleInstance()
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Instance{Cost: [][]float64{{1}}, Load: [][]float64{{1}}, T: []float64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	neg := &Instance{Cost: [][]float64{{1}}, Load: [][]float64{{-1}}, T: []float64{1}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative load accepted")
	}
}

func TestSolveLPBasic(t *testing.T) {
	y, obj, err := SolveLP(simpleInstance())
	if err != nil {
		t.Fatal(err)
	}
	// Fractional optimum: 2 jobs' worth of mass on machine 0 (cost 1 each),
	// 1 on machine 1: objective 2*1 + 1*5 = 7.
	if math.Abs(obj-7) > 1e-6 {
		t.Fatalf("LP objective = %v, want 7", obj)
	}
	for j := 0; j < 3; j++ {
		sum := y[0][j] + y[1][j]
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("job %d mass = %v, want 1", j, sum)
		}
	}
}

func TestSolveLPForbiddenPair(t *testing.T) {
	ins := simpleInstance()
	ins.Load[0][0] = math.Inf(1) // job 0 cannot go to machine 0
	y, _, err := SolveLP(ins)
	if err != nil {
		t.Fatal(err)
	}
	if y[0][0] != 0 {
		t.Fatalf("y[0][0] = %v, want 0 (forbidden)", y[0][0])
	}
}

func TestSolveLPJobWithNoMachine(t *testing.T) {
	ins := simpleInstance()
	ins.Load[0][0] = math.Inf(1)
	ins.Load[1][0] = math.Inf(1)
	if _, _, err := SolveLP(ins); err == nil {
		t.Fatal("expected error for job with no allowed machine")
	}
}

func TestSolveLPInfeasibleCapacity(t *testing.T) {
	ins := &Instance{
		Cost: [][]float64{{1, 1}},
		Load: [][]float64{{3, 3}},
		T:    []float64{1},
	}
	if _, _, err := SolveLP(ins); err == nil {
		t.Fatal("expected infeasible LP")
	}
}

func TestRoundGuarantees(t *testing.T) {
	ins := simpleInstance()
	y, lpObj, err := SolveLP(ins)
	if err != nil {
		t.Fatal(err)
	}
	assign, cost, err := Round(ins, y)
	if err != nil {
		t.Fatal(err)
	}
	if cost > lpObj+1e-6 {
		t.Fatalf("rounded cost %v exceeds LP cost %v", cost, lpObj)
	}
	loads := Loads(ins, assign)
	pmax := MaxFractionalLoad(ins, y)
	for i := range loads {
		if loads[i] > ins.T[i]+pmax[i]+1e-6 {
			t.Fatalf("machine %d load %v exceeds T+pmax = %v", i, loads[i], ins.T[i]+pmax[i])
		}
	}
	// Support property: every job lands on a machine it was fractionally on.
	for j, i := range assign {
		if y[i][j] <= fracTol {
			t.Fatalf("job %d assigned to machine %d with y=0", j, i)
		}
	}
}

func TestRoundRejectsBadFractional(t *testing.T) {
	ins := simpleInstance()
	y := [][]float64{{0.5, 0, 0}, {0.2, 1, 1}} // job 0 mass 0.7
	if _, _, err := Round(ins, y); err == nil {
		t.Fatal("expected mass-sum error")
	}
	y2 := [][]float64{{-0.5, 0, 0}, {1.5, 1, 1}}
	if _, _, err := Round(ins, y2); err == nil {
		t.Fatal("expected negativity error")
	}
}

func TestRoundRespectsForbiddenSupport(t *testing.T) {
	ins := simpleInstance()
	ins.Load[0][1] = math.Inf(1)
	y := [][]float64{{1, 0.5, 0}, {0, 0.5, 1}}
	if _, _, err := Round(ins, y); err == nil {
		t.Fatal("expected error: fractional mass on forbidden pair")
	}
}

func TestRoundIntegralInputIsIdentity(t *testing.T) {
	ins := simpleInstance()
	y := [][]float64{{1, 1, 0}, {0, 0, 1}}
	assign, cost, err := Round(ins, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1}
	for j := range want {
		if assign[j] != want[j] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
	if math.Abs(cost-7) > 1e-9 {
		t.Fatalf("cost = %v, want 7", cost)
	}
}

func TestSolveEndToEnd(t *testing.T) {
	assign, cost, lpObj, err := Solve(simpleInstance())
	if err != nil {
		t.Fatal(err)
	}
	if cost < lpObj-1e-9 {
		t.Fatalf("integral cost %v below LP bound %v", cost, lpObj)
	}
	if cost > lpObj+1e-6 {
		t.Fatalf("ST rounding cost %v exceeds LP cost %v", cost, lpObj)
	}
	counts := map[int]int{}
	for _, i := range assign {
		counts[i]++
	}
	if counts[0] > 3 { // T+pmax = 2+1 = 3
		t.Fatalf("machine 0 got %d unit jobs, bound is 3", counts[0])
	}
}

// bruteGAP finds the optimal integral assignment respecting capacities T
// exactly (not T+pmax); +Inf if none exists.
func bruteGAP(ins *Instance) float64 {
	m, n := ins.NumMachines(), ins.NumJobs()
	best := math.Inf(1)
	var rec func(j int, used []float64, acc float64)
	rec = func(j int, used []float64, acc float64) {
		if j == n {
			if acc < best {
				best = acc
			}
			return
		}
		for i := 0; i < m; i++ {
			l := ins.Load[i][j]
			if math.IsInf(l, 1) || used[i]+l > ins.T[i]+1e-9 {
				continue
			}
			used[i] += l
			rec(j+1, used, acc+ins.Cost[i][j])
			used[i] -= l
		}
	}
	rec(0, make([]float64, m), 0)
	return best
}

// TestRandomInstancesTheorem311 checks, over random instances, the full
// Theorem 3.11 contract: LP ≤ integral OPT; rounded cost ≤ LP; rounded
// load ≤ T_i + p_i^max ≤ 2 T_i when all loads fit capacities.
func TestRandomInstancesTheorem311(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tested := 0
	for trial := 0; trial < 80; trial++ {
		m := 2 + rng.Intn(3)
		n := 2 + rng.Intn(4)
		ins := &Instance{
			Cost: make([][]float64, m),
			Load: make([][]float64, m),
			T:    make([]float64, m),
		}
		for i := 0; i < m; i++ {
			ins.Cost[i] = make([]float64, n)
			ins.Load[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				ins.Cost[i][j] = math.Round(rng.Float64() * 10)
				ins.Load[i][j] = 1 + math.Round(rng.Float64()*3)
			}
			ins.T[i] = 2 + math.Round(rng.Float64()*6)
		}
		// Enforce the standard ST precondition: p_ij ≤ T_i or forbidden.
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if ins.Load[i][j] > ins.T[i] {
					ins.Load[i][j] = math.Inf(1)
				}
			}
		}
		optInt := bruteGAP(ins)
		y, lpObj, err := SolveLP(ins)
		if err != nil {
			// LP infeasible implies no integral solution either.
			if !math.IsInf(optInt, 1) {
				t.Fatalf("trial %d: LP infeasible but integral optimum %v exists", trial, optInt)
			}
			continue
		}
		tested++
		if !math.IsInf(optInt, 1) && lpObj > optInt+1e-6 {
			t.Fatalf("trial %d: LP %v exceeds integral optimum %v", trial, lpObj, optInt)
		}
		assign, cost, err := Round(ins, y)
		if err != nil {
			t.Fatalf("trial %d: rounding failed: %v", trial, err)
		}
		if cost > lpObj+1e-6 {
			t.Fatalf("trial %d: rounded cost %v > LP %v", trial, cost, lpObj)
		}
		loads := Loads(ins, assign)
		pmax := MaxFractionalLoad(ins, y)
		for i := range loads {
			if loads[i] > ins.T[i]+pmax[i]+1e-6 {
				t.Fatalf("trial %d: machine %d load %v > T+pmax %v", trial, i, loads[i], ins.T[i]+pmax[i])
			}
			if loads[i] > 2*ins.T[i]+1e-6 {
				t.Fatalf("trial %d: machine %d load %v > 2T %v", trial, i, loads[i], 2*ins.T[i])
			}
		}
	}
	if tested < 20 {
		t.Fatalf("only %d feasible trials; generator too restrictive", tested)
	}
}

func TestMaxFractionalLoadIgnoresZeroRows(t *testing.T) {
	ins := simpleInstance()
	y := [][]float64{{1, 1, 1}, {0, 0, 0}}
	pmax := MaxFractionalLoad(ins, y)
	if pmax[1] != 0 {
		t.Fatalf("pmax[1] = %v, want 0", pmax[1])
	}
}
