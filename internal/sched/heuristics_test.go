package sched

import (
	"math/rand"
	"testing"
)

func TestSmithListNoPrecedenceIsOptimal(t *testing.T) {
	// Without precedences, Smith's rule is exactly optimal.
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 15; trial++ {
		ins := RandomGeneral(2+rng.Intn(6), 5, 5, 0, rng)
		order, err := SmithList(ins)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := ins.Cost(order)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := Exact(ins)
		if err != nil {
			t.Fatal(err)
		}
		if cost != opt {
			t.Fatalf("trial %d: smith %d != optimal %d", trial, cost, opt)
		}
	}
}

func TestSmithListFeasibleUnderPrecedence(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	for trial := 0; trial < 20; trial++ {
		ins := RandomGeneral(3+rng.Intn(6), 4, 4, 0.4, rng)
		order, err := SmithList(ins)
		if err != nil {
			t.Fatal(err)
		}
		// Cost() validates precedence feasibility.
		if _, err := ins.Cost(order); err != nil {
			t.Fatalf("trial %d: infeasible order: %v", trial, err)
		}
	}
}

// TestSmithListNearOptimal quantifies the heuristic against the exact DP:
// on random instances it stays within a small factor (assert a generous 2×
// so the test is robust while still catching regressions).
func TestSmithListNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	worst := 1.0
	for trial := 0; trial < 25; trial++ {
		ins := RandomGeneral(4+rng.Intn(5), 4, 4, 0.3, rng)
		order, err := SmithList(ins)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := ins.Cost(order)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := Exact(ins)
		if err != nil {
			t.Fatal(err)
		}
		if opt == 0 {
			if cost != 0 {
				t.Fatalf("trial %d: opt 0 but smith %d", trial, cost)
			}
			continue
		}
		if r := float64(cost) / float64(opt); r > worst {
			worst = r
		}
	}
	if worst > 2 {
		t.Fatalf("smith list ratio %v exceeds 2 on random instances", worst)
	}
	t.Logf("worst smith ratio over 25 instances: %.3f", worst)
}

func TestSmithListRejectsInvalid(t *testing.T) {
	bad := &Instance{Jobs: []Job{{1, 1}, {1, 1}}, Prec: [][2]int{{0, 1}, {1, 0}}}
	if _, err := SmithList(bad); err == nil {
		t.Fatal("cyclic instance accepted")
	}
}

// TestChainDecompositionBound: the relaxation never exceeds the optimum and
// matches it when there are no precedences.
func TestChainDecompositionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	for trial := 0; trial < 20; trial++ {
		ins := RandomGeneral(3+rng.Intn(5), 4, 4, 0.3, rng)
		lb, err := ChainDecompositionBound(ins)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := Exact(ins)
		if err != nil {
			t.Fatal(err)
		}
		if lb > opt {
			t.Fatalf("trial %d: bound %d exceeds optimum %d", trial, lb, opt)
		}
		if len(ins.Prec) == 0 && lb != opt {
			t.Fatalf("trial %d: precedence-free bound %d != optimum %d", trial, lb, opt)
		}
	}
}

// TestSmithListOnReductionInstances: the heuristic handles the Woeginger
// special form and its schedule converts into a feasible placement of the
// Theorem 3.6 instance.
func TestSmithListOnReductionInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(609))
	s := RandomSpecialForm(4, 3, 0.5, rng)
	order, err := SmithList(s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ToSSQPP(s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.PlacementFromOrder(order)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ins.Feasible(p) {
		t.Fatal("heuristic schedule produced infeasible placement")
	}
	// Affine identity holds for any feasible schedule/placement pair.
	cost, err := s.Cost(order)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Ins.MaxDelayFrom(r.V0, p), r.DelayFromCost(cost); got != want {
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("affine identity broken: %v vs %v", got, want)
		}
	}
}
