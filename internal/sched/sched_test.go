package sched

import (
	"math"
	"math/rand"
	"testing"

	"quorumplace/internal/exact"
)

func TestValidate(t *testing.T) {
	ok := &Instance{Jobs: []Job{{1, 0}, {0, 1}}, Prec: [][2]int{{0, 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	cases := []struct {
		name string
		ins  *Instance
	}{
		{"empty", &Instance{}},
		{"negative time", &Instance{Jobs: []Job{{-1, 0}}}},
		{"negative weight", &Instance{Jobs: []Job{{0, -1}}}},
		{"bad edge", &Instance{Jobs: []Job{{1, 1}}, Prec: [][2]int{{0, 1}}}},
		{"self edge", &Instance{Jobs: []Job{{1, 1}}, Prec: [][2]int{{0, 0}}}},
		{"cycle", &Instance{Jobs: []Job{{1, 1}, {1, 1}}, Prec: [][2]int{{0, 1}, {1, 0}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.ins.Validate(); err == nil {
				t.Fatal("invalid instance accepted")
			}
		})
	}
}

func TestIsSpecialForm(t *testing.T) {
	special := RandomSpecialForm(3, 2, 0.5, rand.New(rand.NewSource(1)))
	if !special.IsSpecialForm() {
		t.Fatal("generated special form not recognized")
	}
	general := &Instance{Jobs: []Job{{2, 1}, {0, 1}}}
	if general.IsSpecialForm() {
		t.Fatal("general instance recognized as special")
	}
	badEdge := &Instance{Jobs: []Job{{0, 1}, {1, 0}}, Prec: [][2]int{{0, 1}}}
	if badEdge.IsSpecialForm() {
		t.Fatal("weight→time edge accepted as special form")
	}
}

func TestCost(t *testing.T) {
	// Two jobs: (time 2, weight 1), (time 1, weight 3).
	ins := &Instance{Jobs: []Job{{2, 1}, {1, 3}}}
	// Order [0,1]: C0=2, C1=3 → 2 + 9 = 11. Order [1,0]: C1=1, C0=3 → 3+3=6.
	c, err := ins.Cost([]int{0, 1})
	if err != nil || c != 11 {
		t.Fatalf("Cost([0,1]) = %d, %v; want 11", c, err)
	}
	c, err = ins.Cost([]int{1, 0})
	if err != nil || c != 6 {
		t.Fatalf("Cost([1,0]) = %d, %v; want 6", c, err)
	}
	if _, err := ins.Cost([]int{0}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := ins.Cost([]int{0, 0}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	insP := &Instance{Jobs: []Job{{1, 1}, {1, 1}}, Prec: [][2]int{{1, 0}}}
	if _, err := insP.Cost([]int{0, 1}); err == nil {
		t.Fatal("precedence-violating order accepted")
	}
}

func TestExactSmithRule(t *testing.T) {
	// Without precedences the optimum follows Smith's rule (sort by
	// time/weight ascending). Jobs: (3,1), (1,1), (2,4).
	ins := &Instance{Jobs: []Job{{3, 1}, {1, 1}, {2, 4}}}
	order, cost, err := Exact(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Smith order: job1 (1), job2 (0.5), job0 (3) → by ratio t/w:
	// job1: 1, job2: 0.5, job0: 3 → order [2, 1, 0]:
	// C2=2 (w4→8), C1=3 (w1→3), C0=6 (w1→6) = 17.
	// Alternative [1,2,0]: C1=1, C2=3·4=12+1=13, C0=6 → 1+12+6=19. So 17.
	if cost != 17 {
		t.Fatalf("cost = %d (order %v), want 17", cost, order)
	}
}

func TestExactRespectsPrecedence(t *testing.T) {
	// Force an expensive job first: 1 ≺ 0 where job 1 is slow/valueless.
	ins := &Instance{Jobs: []Job{{1, 10}, {5, 0}}, Prec: [][2]int{{1, 0}}}
	order, cost, err := Exact(ins)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 || cost != 60 {
		t.Fatalf("order %v cost %d, want [1 0] cost 60", order, cost)
	}
}

// bruteExact enumerates all feasible permutations.
func bruteExact(ins *Instance) int64 {
	n := len(ins.Jobs)
	best := int64(math.MaxInt64)
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if c, err := ins.Cost(perm); err == nil && c < best {
				best = c
			}
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				perm[i] = j
				rec(i + 1)
				used[j] = false
			}
		}
	}
	rec(0)
	return best
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		ins := RandomGeneral(2+rng.Intn(5), 4, 4, 0.3, rng)
		order, cost, err := Exact(ins)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if c, err := ins.Cost(order); err != nil || c != cost {
			t.Fatalf("trial %d: reported %d, order evaluates to %d (%v)", trial, cost, c, err)
		}
		if want := bruteExact(ins); cost != want {
			t.Fatalf("trial %d: DP %d != brute %d", trial, cost, want)
		}
	}
}

func TestExactSizeLimit(t *testing.T) {
	ins := RandomGeneral(25, 2, 2, 0.1, rand.New(rand.NewSource(2)))
	if _, _, err := Exact(ins); err == nil {
		t.Fatal("25-job instance accepted by exact solver")
	}
}

func TestToSSQPPRequirements(t *testing.T) {
	general := &Instance{Jobs: []Job{{2, 3}, {1, 1}}}
	if _, err := ToSSQPP(general); err == nil {
		t.Fatal("general-form instance accepted")
	}
	oneTime := RandomSpecialForm(1, 2, 0.5, rand.New(rand.NewSource(3)))
	if _, err := ToSSQPP(oneTime); err == nil {
		t.Fatal("single-time-job instance accepted")
	}
	noWeight := RandomSpecialForm(3, 0, 0, rand.New(rand.NewSource(4)))
	if _, err := ToSSQPP(noWeight); err == nil {
		t.Fatal("no-weight-job instance accepted")
	}
}

func TestReductionStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := RandomSpecialForm(4, 3, 0.5, rng)
	r, err := ToSSQPP(s)
	if err != nil {
		t.Fatal(err)
	}
	// Universe: 4 time elements + e0; quorums: 3 type-1 + 4 type-2.
	if got := r.Ins.Sys.Universe(); got != 5 {
		t.Fatalf("universe = %d, want 5", got)
	}
	if got := r.Ins.Sys.NumQuorums(); got != 7 {
		t.Fatalf("quorums = %d, want 7", got)
	}
	// load(e0) must be 1 and equal cap(v0).
	if l := r.Ins.Load(0); math.Abs(l-1) > 1e-9 {
		t.Fatalf("load(e0) = %v, want 1", l)
	}
	if r.Ins.Cap[0] != 1 {
		t.Fatalf("cap(v0) = %v, want 1", r.Ins.Cap[0])
	}
	// Every other element's load must lie in [(1-ε)/s, 2(1-ε)/s) and fit
	// the node capacity.
	sF := 4.0
	lo := (1 - r.Eps) / sF
	hi := 2 * (1 - r.Eps) / sF
	capOther := r.Ins.Cap[1]
	for u := 1; u < 5; u++ {
		l := r.Ins.Load(u)
		if l < lo-1e-9 || l >= hi {
			t.Fatalf("load(e%d) = %v outside [%v, %v)", u, l, lo, hi)
		}
		if l > capOther+1e-9 {
			t.Fatalf("load(e%d) = %v exceeds node capacity %v", u, l, capOther)
		}
	}
	// cap of non-v0 nodes must be < 1 (so e0 is forced onto v0) and
	// < 2·lo (so at most one element per node).
	if capOther >= 1 || capOther >= 2*lo {
		t.Fatalf("cap(v_t) = %v violates forcing conditions (<1 and <%v)", capOther, 2*lo)
	}
}

// TestReductionRoundTrip: converting an order to a placement and back
// preserves cost, and the affine delay identity of the proof holds.
func TestReductionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		s := RandomSpecialForm(2+rng.Intn(4), 1+rng.Intn(3), 0.4, rng)
		r, err := ToSSQPP(s)
		if err != nil {
			t.Fatal(err)
		}
		order, cost, err := Exact(s)
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.PlacementFromOrder(order)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Ins.Feasible(p) {
			t.Fatalf("trial %d: placement from optimal order infeasible", trial)
		}
		// Affine identity: Δ_f(v0) = (ε/m)·cost + const.
		delay := r.Ins.MaxDelayFrom(r.V0, p)
		if want := r.DelayFromCost(cost); math.Abs(delay-want) > 1e-9 {
			t.Fatalf("trial %d: Δ = %v, affine formula gives %v", trial, delay, want)
		}
		// Back-conversion preserves cost.
		order2, err := r.ScheduleFromPlacement(p)
		if err != nil {
			t.Fatal(err)
		}
		cost2, err := s.Cost(order2)
		if err != nil {
			t.Fatal(err)
		}
		if cost2 != cost {
			t.Fatalf("trial %d: round-trip cost %d != %d", trial, cost2, cost)
		}
	}
}

// TestReductionOptimaCorrespond: the exact SSQPP optimum of the reduction
// instance equals the affine image of the exact scheduling optimum — the
// crux of Theorem 3.6.
func TestReductionOptimaCorrespond(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		s := RandomSpecialForm(2+rng.Intn(3), 1+rng.Intn(3), 0.5, rng)
		r, err := ToSSQPP(s)
		if err != nil {
			t.Fatal(err)
		}
		_, schedOpt, err := Exact(s)
		if err != nil {
			t.Fatal(err)
		}
		pOpt, delayOpt, err := exact.SolveSSQPP(r.Ins, r.V0)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.DelayFromCost(schedOpt); math.Abs(delayOpt-want) > 1e-9 {
			t.Fatalf("trial %d: SSQPP optimum %v != affine image of scheduling optimum %v", trial, delayOpt, want)
		}
		// The optimal placement converts to an optimal schedule.
		order, err := r.ScheduleFromPlacement(pOpt)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := s.Cost(order)
		if err != nil {
			t.Fatal(err)
		}
		if cost != schedOpt {
			t.Fatalf("trial %d: schedule from optimal placement costs %d, optimum %d", trial, cost, schedOpt)
		}
	}
}

func TestRandomGeneratorsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := RandomSpecialForm(3, 4, 1.0, rng)
	if len(s.Jobs) != 7 {
		t.Fatalf("jobs = %d, want 7", len(s.Jobs))
	}
	if len(s.Prec) != 12 {
		t.Fatalf("edges = %d, want 12 (full bipartite)", len(s.Prec))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	g := RandomGeneral(6, 3, 3, 0.5, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
