// Package sched implements single-machine precedence-constrained weighted
// completion-time scheduling, 1|prec|Σ w_j C_j, and the Theorem 3.6
// polynomial reduction from it to the Single-Source Quorum Placement
// Problem, which establishes the NP-hardness of SSQPP.
//
// The package provides an exact exponential dynamic program over job
// subsets (usable to n ≈ 20 jobs), Woeginger's special form (Theorem 3.5b:
// every job is either a unit-time zero-weight "time job" or a zero-time
// unit-weight "weight job", and precedences go only from time jobs to
// weight jobs), the instance construction of Theorem 3.6, and the
// conversions between placements and schedules that the proof uses.
package sched

import (
	"fmt"
	"math"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// Job is a job with integer processing time and weight.
type Job struct {
	Time   int
	Weight int
}

// Instance is a 1|prec|Σ w_j C_j instance: jobs and precedence edges
// (i, j) meaning job i must complete before job j starts.
type Instance struct {
	Jobs []Job
	Prec [][2]int
}

// Validate checks job values, edge endpoints and acyclicity.
func (ins *Instance) Validate() error {
	n := len(ins.Jobs)
	if n == 0 {
		return fmt.Errorf("sched: no jobs")
	}
	for j, job := range ins.Jobs {
		if job.Time < 0 || job.Weight < 0 {
			return fmt.Errorf("sched: job %d has time %d weight %d (negative)", j, job.Time, job.Weight)
		}
	}
	adj := make([][]int, n)
	for _, e := range ins.Prec {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("sched: precedence %v out of range [0,%d)", e, n)
		}
		if e[0] == e[1] {
			return fmt.Errorf("sched: self-precedence on job %d", e[0])
		}
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	// Kahn's algorithm for acyclicity.
	indeg := make([]int, n)
	for _, e := range ins.Prec {
		indeg[e[1]]++
	}
	queue := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if indeg[j] == 0 {
			queue = append(queue, j)
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, v := range adj[u] {
			if indeg[v]--; indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("sched: precedence graph has a cycle")
	}
	return nil
}

// IsSpecialForm reports whether the instance is in the Woeginger special
// form of Theorem 3.5(b): every job is (Time=1, Weight=0) or (Time=0,
// Weight=1), and every precedence edge goes from a time job to a weight job.
func (ins *Instance) IsSpecialForm() bool {
	for _, job := range ins.Jobs {
		if !(job.Time == 1 && job.Weight == 0) && !(job.Time == 0 && job.Weight == 1) {
			return false
		}
	}
	for _, e := range ins.Prec {
		if !(ins.Jobs[e[0]].Time == 1 && ins.Jobs[e[1]].Weight == 1) {
			return false
		}
	}
	return true
}

// preds returns, for each job, the bitmask of its predecessors.
func (ins *Instance) preds() []uint32 {
	p := make([]uint32, len(ins.Jobs))
	for _, e := range ins.Prec {
		p[e[1]] |= 1 << uint(e[0])
	}
	return p
}

// maxExactJobs bounds the bitmask DP.
const maxExactJobs = 20

// Exact solves the instance optimally with a subset dynamic program:
// dp[S] = minimum weighted completion time of scheduling exactly the
// (downward-closed) set S first. It returns an optimal job order and its
// cost. Limited to maxExactJobs jobs.
func Exact(ins *Instance) ([]int, int64, error) {
	if err := ins.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(ins.Jobs)
	if n > maxExactJobs {
		return nil, 0, fmt.Errorf("sched: %d jobs exceed exact-solver limit %d", n, maxExactJobs)
	}
	preds := ins.preds()
	size := 1 << uint(n)
	const inf = math.MaxInt64
	dp := make([]int64, size)
	choice := make([]int8, size)
	totalTime := make([]int32, size)
	for s := 1; s < size; s++ {
		dp[s] = inf
		choice[s] = -1
		low := s & (-s)
		j := trailingZeros(uint32(s))
		totalTime[s] = totalTime[s^low] + int32(ins.Jobs[j].Time)
	}
	for s := 0; s < size; s++ {
		if dp[s] == inf {
			continue
		}
		for j := 0; j < n; j++ {
			bit := 1 << uint(j)
			if s&bit != 0 || uint32(s)&preds[j] != preds[j] {
				continue
			}
			ns := s | bit
			c := dp[s] + int64(ins.Jobs[j].Weight)*int64(int(totalTime[s])+ins.Jobs[j].Time)
			if c < dp[ns] {
				dp[ns] = c
				choice[ns] = int8(j)
			}
		}
	}
	full := size - 1
	if dp[full] == inf {
		return nil, 0, fmt.Errorf("sched: internal error: no feasible order for an acyclic instance")
	}
	order := make([]int, n)
	for s, i := full, n-1; s != 0; i-- {
		j := int(choice[s])
		order[i] = j
		s ^= 1 << uint(j)
	}
	return order, dp[full], nil
}

func trailingZeros(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Cost evaluates a job order: it verifies the order is a permutation
// respecting the precedences and returns Σ w_j C_j.
func (ins *Instance) Cost(order []int) (int64, error) {
	n := len(ins.Jobs)
	if len(order) != n {
		return 0, fmt.Errorf("sched: order has %d jobs, want %d", len(order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for i, j := range order {
		if j < 0 || j >= n || seen[j] {
			return 0, fmt.Errorf("sched: order is not a permutation at index %d", i)
		}
		seen[j] = true
		pos[j] = i
	}
	for _, e := range ins.Prec {
		if pos[e[0]] > pos[e[1]] {
			return 0, fmt.Errorf("sched: order violates precedence %d ≺ %d", e[0], e[1])
		}
	}
	var cost, clock int64
	for _, j := range order {
		clock += int64(ins.Jobs[j].Time)
		cost += int64(ins.Jobs[j].Weight) * clock
	}
	return cost, nil
}

// Reduction carries the Theorem 3.6 construction: the SSQPP instance built
// from a special-form scheduling instance, together with the bookkeeping
// needed to translate solutions back and forth.
type Reduction struct {
	Sched *Instance
	Ins   *placement.Instance
	V0    int     // always node 0 of the path
	Eps   float64 // the ε of the construction

	// TimeJobElement[j] is the universe element of time job j (or -1 for
	// weight jobs); element 0 is the distinguished e0.
	TimeJobElement []int
	// WeightJobs lists the weight-job ids in type-1 quorum order.
	WeightJobs []int
	numTime    int
}

// ToSSQPP builds the Theorem 3.6 SSQPP instance from a special-form
// scheduling instance with at least two time jobs and at least one weight
// job. The construction uses ε = 1/(2s+2) where s is the number of time
// jobs, which satisfies both requirements of the proof: ε < (1-ε)/s and
// every element's load fits the node capacity 2(1-ε)/s − ε.
func ToSSQPP(s *Instance) (*Reduction, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.IsSpecialForm() {
		return nil, fmt.Errorf("sched: reduction requires the Woeginger special form")
	}
	var timeJobs, weightJobs []int
	for j, job := range s.Jobs {
		if job.Time == 1 {
			timeJobs = append(timeJobs, j)
		} else {
			weightJobs = append(weightJobs, j)
		}
	}
	nt, mw := len(timeJobs), len(weightJobs)
	if nt < 2 {
		return nil, fmt.Errorf("sched: reduction needs ≥ 2 time jobs, have %d", nt)
	}
	if mw < 1 {
		return nil, fmt.Errorf("sched: reduction needs ≥ 1 weight job, have %d", mw)
	}
	eps := 1 / float64(2*nt+2)

	// Universe: element 0 = e0; element 1+i = time job timeJobs[i].
	elementOf := make([]int, len(s.Jobs))
	for j := range elementOf {
		elementOf[j] = -1
	}
	for i, j := range timeJobs {
		elementOf[j] = 1 + i
	}
	// Type-1 quorums (one per weight job): {e0} ∪ {elements of predecessors}.
	quorums := make([][]int, 0, mw+nt)
	probs := make([]float64, 0, mw+nt)
	predsOf := make(map[int][]int)
	for _, e := range s.Prec {
		predsOf[e[1]] = append(predsOf[e[1]], e[0])
	}
	for _, wj := range weightJobs {
		q := []int{0}
		for _, tj := range predsOf[wj] {
			q = append(q, elementOf[tj])
		}
		quorums = append(quorums, q)
		probs = append(probs, eps/float64(mw))
	}
	// Type-2 quorums: {u, e0} for each u ≠ e0.
	for i := 0; i < nt; i++ {
		quorums = append(quorums, []int{0, 1 + i})
		probs = append(probs, (1-eps)/float64(nt))
	}
	sys, err := quorum.NewSystem("thm3.6", nt+1, quorums)
	if err != nil {
		return nil, fmt.Errorf("sched: reduction system: %w", err)
	}
	strat, err := quorum.NewStrategy(probs)
	if err != nil {
		return nil, fmt.Errorf("sched: reduction strategy: %w", err)
	}

	// Path graph on nt+1 nodes; cap(v0)=1, cap(vj)=2(1-ε)/nt − ε.
	g := graph.Path(nt + 1)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		return nil, err
	}
	caps := make([]float64, nt+1)
	caps[0] = 1
	for t := 1; t <= nt; t++ {
		caps[t] = 2*(1-eps)/float64(nt) - eps
	}
	ins, err := placement.NewInstance(m, caps, sys, strat)
	if err != nil {
		return nil, err
	}
	return &Reduction{
		Sched:          s,
		Ins:            ins,
		V0:             0,
		Eps:            eps,
		TimeJobElement: elementOf,
		WeightJobs:     weightJobs,
		numTime:        nt,
	}, nil
}

// ScheduleFromPlacement converts a capacity-feasible placement of the
// reduction instance into a job order, per the proof of Theorem 3.6: the
// time job whose element sits on node v_t runs in slot t, and each weight
// job runs as early as its predecessors allow. It verifies the structural
// properties the capacities force (e0 on v0, a bijection elsewhere).
func (r *Reduction) ScheduleFromPlacement(p placement.Placement) ([]int, error) {
	if err := r.Ins.Validate(p); err != nil {
		return nil, err
	}
	if p.Node(0) != 0 {
		return nil, fmt.Errorf("sched: placement puts e0 on node %d, capacities force node 0", p.Node(0))
	}
	slotOf := make([]int, r.numTime) // time-job index (element-1) → path slot
	used := make([]bool, r.numTime+1)
	for i := 0; i < r.numTime; i++ {
		v := p.Node(1 + i)
		if v < 1 || v > r.numTime || used[v] {
			return nil, fmt.Errorf("sched: placement is not a bijection onto path nodes (element %d on node %d)", 1+i, v)
		}
		used[v] = true
		slotOf[i] = v
	}
	// Time job in slot t runs t-th; weight jobs are inserted right after
	// their last predecessor (or first if none).
	timeAt := make([]int, r.numTime+1) // slot → job id
	for i, j := range timeJobsOf(r) {
		timeAt[slotOf[i]] = j
	}
	predsOf := make(map[int][]int)
	for _, e := range r.Sched.Prec {
		predsOf[e[1]] = append(predsOf[e[1]], e[0])
	}
	elementSlot := func(tj int) int { return slotOf[r.TimeJobElement[tj]-1] }
	// Build order: walk slots 1..numTime, emitting the time job then any
	// weight jobs whose predecessors are all ≤ current slot.
	ready := make(map[int][]int) // slot after which weight job becomes ready
	for _, wj := range r.WeightJobs {
		last := 0
		for _, tj := range predsOf[wj] {
			if s := elementSlot(tj); s > last {
				last = s
			}
		}
		ready[last] = append(ready[last], wj)
	}
	order := make([]int, 0, len(r.Sched.Jobs))
	order = append(order, ready[0]...)
	for t := 1; t <= r.numTime; t++ {
		order = append(order, timeAt[t])
		order = append(order, ready[t]...)
	}
	if len(order) != len(r.Sched.Jobs) {
		return nil, fmt.Errorf("sched: internal error: emitted %d jobs, want %d", len(order), len(r.Sched.Jobs))
	}
	return order, nil
}

// PlacementFromOrder converts a feasible job order into the corresponding
// placement (e0 on v0; the time job in slot t's element on node v_t).
func (r *Reduction) PlacementFromOrder(order []int) (placement.Placement, error) {
	if _, err := r.Sched.Cost(order); err != nil {
		return placement.Placement{}, err
	}
	f := make([]int, r.numTime+1)
	f[0] = 0
	slot := 0
	for _, j := range order {
		if r.Sched.Jobs[j].Time == 1 {
			slot++
			f[r.TimeJobElement[j]] = slot
		}
	}
	if slot != r.numTime {
		return placement.Placement{}, fmt.Errorf("sched: order contains %d time jobs, want %d", slot, r.numTime)
	}
	return placement.NewPlacement(f), nil
}

// DelayFromCost returns the Δ_f(v0) value the proof associates with a
// schedule of the given cost:
//
//	Δ = (ε/m)·cost + ((1-ε)/s)·Σ_{i=1..s} i
//
// where m is the number of weight jobs and s the number of time jobs.
func (r *Reduction) DelayFromCost(cost int64) float64 {
	s := float64(r.numTime)
	sumPositions := s * (s + 1) / 2
	return r.Eps/float64(len(r.WeightJobs))*float64(cost) + (1-r.Eps)/s*sumPositions
}

func timeJobsOf(r *Reduction) []int {
	out := make([]int, 0, r.numTime)
	for j, e := range r.TimeJobElement {
		if e >= 0 {
			out = append(out, j)
		}
	}
	return out
}
