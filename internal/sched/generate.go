package sched

import (
	"fmt"
	"math/rand"
)

// RandomSpecialForm generates a random Woeginger special-form instance with
// numTime unit-time zero-weight jobs (ids 0..numTime-1), numWeight zero-time
// unit-weight jobs (ids numTime..), and each (time, weight) precedence edge
// present independently with probability edgeProb.
func RandomSpecialForm(numTime, numWeight int, edgeProb float64, rng *rand.Rand) *Instance {
	if numTime < 0 || numWeight < 0 || numTime+numWeight == 0 {
		panic(fmt.Sprintf("sched: invalid job counts %d, %d", numTime, numWeight))
	}
	jobs := make([]Job, 0, numTime+numWeight)
	for i := 0; i < numTime; i++ {
		jobs = append(jobs, Job{Time: 1, Weight: 0})
	}
	for i := 0; i < numWeight; i++ {
		jobs = append(jobs, Job{Time: 0, Weight: 1})
	}
	var prec [][2]int
	for t := 0; t < numTime; t++ {
		for w := 0; w < numWeight; w++ {
			if rng.Float64() < edgeProb {
				prec = append(prec, [2]int{t, numTime + w})
			}
		}
	}
	return &Instance{Jobs: jobs, Prec: prec}
}

// RandomGeneral generates an arbitrary random instance with times in
// [0, maxTime], weights in [0, maxWeight] and a random DAG in which edge
// (i, j) for i < j appears with probability edgeProb (topological order =
// id order, guaranteeing acyclicity).
func RandomGeneral(n, maxTime, maxWeight int, edgeProb float64, rng *rand.Rand) *Instance {
	if n <= 0 {
		panic(fmt.Sprintf("sched: invalid job count %d", n))
	}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Time: rng.Intn(maxTime + 1), Weight: rng.Intn(maxWeight + 1)}
	}
	var prec [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeProb {
				prec = append(prec, [2]int{i, j})
			}
		}
	}
	return &Instance{Jobs: jobs, Prec: prec}
}
