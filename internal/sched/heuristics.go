package sched

import (
	"fmt"
	"math"
	"sort"
)

// Polynomial-time scheduling heuristics. The exact solver is exponential;
// these provide scalable comparison points. SmithList generalizes Smith's
// WSPT rule (optimal for 1||Σ w_j C_j) to precedence constraints by always
// running the available job with the smallest time/weight ratio — a
// well-known heuristic with no worst-case guarantee under precedences, but
// near-optimal on random instances (the tests quantify this against the
// exact DP).

// SmithList returns a feasible order by repeatedly scheduling, among jobs
// whose predecessors have all completed, the one minimizing Time/Weight
// (weight-0 jobs are deferred to ratio +Inf; ties break by job id).
func SmithList(ins *Instance) ([]int, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	n := len(ins.Jobs)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range ins.Prec {
		indeg[e[1]]++
		succ[e[0]] = append(succ[e[0]], e[1])
	}
	ratio := func(j int) float64 {
		if ins.Jobs[j].Weight == 0 {
			return math.Inf(1)
		}
		return float64(ins.Jobs[j].Time) / float64(ins.Jobs[j].Weight)
	}
	var avail []int
	for j := 0; j < n; j++ {
		if indeg[j] == 0 {
			avail = append(avail, j)
		}
	}
	order := make([]int, 0, n)
	for len(avail) > 0 {
		best := 0
		for i := 1; i < len(avail); i++ {
			ri, rb := ratio(avail[i]), ratio(avail[best])
			if ri < rb || (ri == rb && avail[i] < avail[best]) {
				best = i
			}
		}
		j := avail[best]
		avail = append(avail[:best], avail[best+1:]...)
		order = append(order, j)
		for _, k := range succ[j] {
			if indeg[k]--; indeg[k] == 0 {
				avail = append(avail, k)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("sched: internal error: emitted %d of %d jobs", len(order), n)
	}
	return order, nil
}

// ChainDecompositionBound returns a simple lower bound on the optimal
// weighted completion time: jobs sorted by Smith ratio without precedence
// constraints give the relaxed optimum (Smith's rule is exact for the
// precedence-free relaxation), which never exceeds the constrained optimum.
func ChainDecompositionBound(ins *Instance) (int64, error) {
	if err := ins.Validate(); err != nil {
		return 0, err
	}
	relaxed := &Instance{Jobs: append([]Job(nil), ins.Jobs...)}
	order := make([]int, len(ins.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := ins.Jobs[order[a]], ins.Jobs[order[b]]
		// Compare t_a/w_a < t_b/w_b without division: t_a·w_b < t_b·w_a,
		// with weight-0 jobs last.
		switch {
		case ja.Weight == 0 && jb.Weight == 0:
			return order[a] < order[b]
		case ja.Weight == 0:
			return false
		case jb.Weight == 0:
			return true
		default:
			return ja.Time*jb.Weight < jb.Time*ja.Weight
		}
	})
	return relaxed.Cost(order)
}
