package daemon

import (
	"math/rand"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// benchDaemon builds a steady-state daemon over a mid-size instance
// (universe 16, 32 nodes) with a single shard, so every tick re-solves the
// full shard LP — the shape both benchmark modes share.
func benchDaemon(b *testing.B) *Daemon {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	n := 32
	g := graph.ErdosRenyiConnected(n, 0.25, 1, 4, rng)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	sys := quorum.Majority(16, 9)
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 1.2
	}
	ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		b.Fatal(err)
	}
	initial, err := placement.RandomFeasiblePlacement(ins, rng, 100)
	if err != nil {
		b.Fatal(err)
	}
	d, err := New(Config{
		Instance:     ins,
		Initial:      initial,
		Shards:       1,
		Lambda:       0.5,
		AlwaysReplan: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	// A deterministic hot-spot so the tick has real drift to chew on.
	for i := 0; i < 64; i++ {
		d.Observe(0.1*float64(i), i%3, []int{i % 16})
	}
	return d
}

// BenchmarkDaemonTick measures one control-loop tick in steady-state repair
// mode. mode=cold discards the retained LP basis before every tick (every
// solve rebuilds the tableau and runs phase 1); mode=warm reuses the basis
// recorded by the previous tick. The CI speedup gate pins warm ≥ 3× cold.
func BenchmarkDaemonTick(b *testing.B) {
	b.Run("mode=cold", func(b *testing.B) {
		d := benchDaemon(b)
		if _, err := d.Tick(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.ResetWarm()
			if _, err := d.Tick(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=warm", func(b *testing.B) {
		d := benchDaemon(b)
		// Warm-up until the loop reaches steady state: the first tick is
		// necessarily cold, and a tick that still moves elements changes
		// the residual capacities enough to force the next solve cold too.
		warmed := false
		for i := 0; i < 8 && !warmed; i++ {
			rec, err := d.Tick()
			if err != nil {
				b.Fatal(err)
			}
			warmed = rec.Warm
		}
		if !warmed {
			b.Fatal("daemon never reached a warm steady state")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec, err := d.Tick()
			if err != nil {
				b.Fatal(err)
			}
			if !rec.Warm {
				b.Fatal("steady-state tick fell back to cold")
			}
		}
	})
}
