package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"quorumplace/internal/obs/export"
)

// Status is the GET /status document: a control-plane summary of the
// daemon's live state.
type Status struct {
	Shards          int     `json:"shards"`
	NextShard       int     `json:"next_shard"`
	Lambda          float64 `json:"lambda"`
	Ticks           int     `json:"ticks"`
	Now             float64 `json:"now"` // virtual time
	DriftTV         float64 `json:"drift_tv"`
	LiveWeight      float64 `json:"live_weight"`
	PendingShards   int     `json:"pending_shards"` // shards left in the active re-plan cycle
	LastTickSeconds float64 `json:"last_tick_seconds"`
	AvgDelay        float64 `json:"avg_delay"` // from the latest tick, 0 before the first
}

// PlacementDoc is the GET /placement document.
type PlacementDoc struct {
	Nodes []int `json:"nodes"` // element → node
}

// observeReq is one POST /observe body entry.
type observeReq struct {
	At     float64 `json:"at"`
	Client int     `json:"client"`
	Nodes  []int   `json:"nodes"`
}

// Status assembles the control-plane summary.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Status{
		Shards:          len(d.shards),
		NextShard:       d.next,
		Lambda:          d.lambda,
		Ticks:           len(d.ticks),
		Now:             d.now(),
		PendingShards:   d.cycleLeft,
		LastTickSeconds: d.lastTickSec,
	}
	if rep, err := d.sketch.RecentDrift(d.planDemand); err == nil {
		st.DriftTV, st.LiveWeight = rep.TV, rep.LiveWeight
	}
	if n := len(d.ticks); n > 0 {
		st.AvgDelay = d.ticks[n-1].AvgDelay
	}
	return st
}

// Handler returns the daemon's HTTP control+status API:
//
//	GET  /status     control-plane summary (Status)
//	GET  /placement  current placement (PlacementDoc)
//	GET  /drift      recent-drift report (heat.DriftReport)
//	GET  /ticks      tick log ([]TickRecord), ?last=N for a suffix
//	POST /tick       run one tick, respond with its TickRecord
//	POST /lambda     {"lambda": x} retune the movement weight
//	POST /observe    [{"at":t,"client":u,"nodes":[...]}, ...] ingest accesses
//	GET  /metrics    Prometheus text exposition (internal/obs/export)
//	GET  /metrics.json
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", export.Handler(export.ActiveSource()))
	mux.Handle("/metrics.json", export.Handler(export.ActiveSource()))

	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethod(w, r, http.MethodGet) {
			return
		}
		writeJSON(w, d.Status())
	})
	mux.HandleFunc("/placement", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethod(w, r, http.MethodGet) {
			return
		}
		writeJSON(w, PlacementDoc{Nodes: d.Placement().Map()})
	})
	mux.HandleFunc("/drift", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethod(w, r, http.MethodGet) {
			return
		}
		rep, err := d.Drift()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/ticks", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethod(w, r, http.MethodGet) {
			return
		}
		ticks := d.Ticks()
		if s := r.URL.Query().Get("last"); s != "" {
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 0 {
				http.Error(w, "last must be a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(ticks) {
				ticks = ticks[len(ticks)-n:]
			}
		}
		writeJSON(w, ticks)
	})
	mux.HandleFunc("/tick", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethod(w, r, http.MethodPost) {
			return
		}
		rec, err := d.Tick()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rec)
	})
	mux.HandleFunc("/lambda", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethod(w, r, http.MethodPost) {
			return
		}
		var body struct {
			Lambda float64 `json:"lambda"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := d.SetLambda(body.Lambda); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]float64{"lambda": body.Lambda})
	})
	mux.HandleFunc("/observe", func(w http.ResponseWriter, r *http.Request) {
		if !allowMethod(w, r, http.MethodPost) {
			return
		}
		var body []observeReq
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
			return
		}
		for _, o := range body {
			d.Observe(o.At, o.Client, o.Nodes)
		}
		writeJSON(w, map[string]int{"ingested": len(body)})
	})
	return mux
}

// Serve binds addr (port 0 picks a free port) and serves the control API
// until the returned server is closed or ctx is cancelled. The underlying
// export.Server drains in-flight requests on Close.
func (d *Daemon) Serve(ctx context.Context, addr string) (*export.Server, error) {
	return export.ServeHandler(ctx, addr, d.Handler())
}

func allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
