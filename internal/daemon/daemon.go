// Package daemon assembles the repository's batch machinery into a
// long-lived placement service: it ingests per-client access observations
// into a heat.Sketch, watches the recent-drift estimate against the demand
// the running placement was planned for, and — when the drift alert trips —
// re-plans the placement incrementally, one shard of the universe per tick,
// through migrate.Planner (whose LP warm start makes a steady-state tick a
// small fraction of a cold solve).
//
// The paper solves quorum placement as a one-shot batch problem; the
// daemon is the production shape of the same mathematics. Partitioning the
// universe into K shards bounds the work (and the movement) of any single
// tick, the λ movement weight bounds how aggressively a re-plan chases the
// live demand, and the alert threshold keeps the solver idle while the
// plan is still fresh.
//
// Everything is deterministic under a fixed seed and virtual clock: ticks
// record no wall-clock state (tick latency goes to telemetry only), so a
// replayed run produces bitwise-identical tick logs.
package daemon

import (
	"fmt"
	"math"
	"sync"
	"time"

	"quorumplace/internal/heat"
	"quorumplace/internal/migrate"
	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
)

// Defaults for Config fields left zero.
const (
	DefaultShards         = 4
	DefaultDriftThreshold = 0.1
	DefaultMinLiveWeight  = 1.0
)

// Config configures a Daemon.
type Config struct {
	// Instance is the placement problem: metric, capacities, quorum
	// system, strategy. The daemon owns it after New (it rewrites Rates on
	// every tick); do not mutate it concurrently.
	Instance *placement.Instance
	// Initial is the placement the daemon starts from, typically the
	// solve against PlanDemand.
	Initial placement.Placement
	// PlanDemand is the per-client demand vector Initial was planned
	// against (relative weights); nil means uniform.
	PlanDemand []float64
	// Shards is the number of placement shards re-solved round-robin, one
	// per tick; ≤ 0 means DefaultShards, clamped to the universe size.
	Shards int
	// Lambda is the movement weight of each incremental re-plan: the tick
	// minimizes delay + λ·movement. Live-tunable via SetLambda.
	Lambda float64
	// DriftThreshold arms re-planning when the recent-drift TV reaches
	// it; ≤ 0 means DefaultDriftThreshold.
	DriftThreshold float64
	// MinLiveWeight is the EWMA mass floor below which drift is treated
	// as noise (an estimate of nothing must not trigger a re-plan);
	// ≤ 0 means DefaultMinLiveWeight.
	MinLiveWeight float64
	// Heat configures the ingestion sketch.
	Heat heat.Options
	// AlwaysReplan re-solves one shard every tick regardless of drift —
	// the steady-state repair mode, and the shape the tick benchmarks
	// measure.
	AlwaysReplan bool
}

// Migration is one element move applied by a tick.
type Migration struct {
	Elem int     `json:"elem"`
	From int     `json:"from"`
	To   int     `json:"to"`
	Cost float64 `json:"cost"` // load(elem) · d(from, to)
}

// TickRecord is the deterministic log entry of one tick. It carries no
// wall-clock state — tick latency is exported through telemetry only — so
// two runs with the same seed produce identical records.
type TickRecord struct {
	Seq        int         `json:"seq"`
	Now        float64     `json:"now"` // virtual time (epoch base × epoch length)
	DriftTV    float64     `json:"drift_tv"`
	LiveWeight float64     `json:"live_weight"`
	Alerted    bool        `json:"alerted"`
	Shard      int         `json:"shard"` // -1: no re-plan this tick
	Warm       bool        `json:"warm"`  // the shard LP reused its previous basis
	Moves      []Migration `json:"moves,omitempty"`
	Moved      float64     `json:"moved"`     // Σ move cost this tick
	AvgDelay   float64     `json:"avg_delay"` // predicted Avg_v Γ of the placement under live demand
	LPBound    float64     `json:"lp_bound"`  // shard LP bound, 0 when no re-plan ran
}

// Daemon is the long-lived placement service. All methods are safe for
// concurrent use; ticks serialize on an internal mutex.
type Daemon struct {
	mu     sync.Mutex
	cfg    Config
	ins    *placement.Instance
	sketch *heat.Sketch
	cur    []int // current placement map (element → node)

	planDemand   []float64 // demand the running placement is planned for
	targetDemand []float64 // demand snapshot driving the active re-plan cycle
	cycleLeft    int       // shards left in the active cycle; 0 = idle

	shards   [][]int
	planners []*migrate.Planner
	next     int // next shard to re-solve

	lambda    float64
	epochBase int64 // ingestion offset, in epochs
	ticks     []TickRecord

	// lastTickSec is the wall-clock duration of the most recent tick. It
	// feeds /status and telemetry only — never TickRecord — so replayed
	// runs stay bitwise identical.
	lastTickSec float64
}

// New validates cfg and builds the daemon: K static round-robin shards of
// the universe, one warm-capable planner per shard, and an empty sketch.
func New(cfg Config) (*Daemon, error) {
	if cfg.Instance == nil {
		return nil, fmt.Errorf("daemon: nil instance")
	}
	ins := cfg.Instance
	if err := ins.Validate(cfg.Initial); err != nil {
		return nil, fmt.Errorf("daemon: initial placement: %w", err)
	}
	if cfg.PlanDemand != nil && len(cfg.PlanDemand) != ins.M.N() {
		return nil, fmt.Errorf("daemon: %d plan-demand weights for %d clients", len(cfg.PlanDemand), ins.M.N())
	}
	if cfg.Lambda < 0 || math.IsNaN(cfg.Lambda) || math.IsInf(cfg.Lambda, 0) {
		return nil, fmt.Errorf("daemon: lambda = %v must be a finite non-negative value", cfg.Lambda)
	}
	nU := ins.Sys.Universe()
	k := cfg.Shards
	if k <= 0 {
		k = DefaultShards
	}
	if k > nU {
		k = nU
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = DefaultDriftThreshold
	}
	if cfg.MinLiveWeight <= 0 {
		cfg.MinLiveWeight = DefaultMinLiveWeight
	}
	shards := make([][]int, k)
	for u := 0; u < nU; u++ {
		shards[u%k] = append(shards[u%k], u)
	}
	planners := make([]*migrate.Planner, k)
	for i, elems := range shards {
		pl, err := migrate.NewPlanner(ins, elems)
		if err != nil {
			return nil, fmt.Errorf("daemon: shard %d: %w", i, err)
		}
		planners[i] = pl
	}
	// Materialize a nil plan demand as explicit uniform weights over the
	// full client space: heat.Drift treats nil as uniform over the *live*
	// index space, which would hide a hot-spot concentrated on the first
	// few clients (the live vector would only be as long as the hottest
	// observed index).
	planDemand := make([]float64, ins.M.N())
	for v := range planDemand {
		planDemand[v] = 1
	}
	if cfg.PlanDemand != nil {
		copy(planDemand, cfg.PlanDemand)
	}
	return &Daemon{
		cfg:        cfg,
		ins:        ins,
		sketch:     heat.New(cfg.Heat),
		cur:        cfg.Initial.Map(),
		planDemand: planDemand,
		shards:     shards,
		planners:   planners,
		lambda:     cfg.Lambda,
	}, nil
}

// Shards returns the number of placement shards.
func (d *Daemon) Shards() int { return len(d.shards) }

// Lambda returns the current movement weight.
func (d *Daemon) Lambda() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lambda
}

// SetLambda retunes the movement weight for subsequent ticks.
func (d *Daemon) SetLambda(lambda float64) error {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return fmt.Errorf("daemon: lambda = %v must be a finite non-negative value", lambda)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lambda = lambda
	return nil
}

// Placement returns a copy of the current placement.
func (d *Daemon) Placement() placement.Placement {
	d.mu.Lock()
	defer d.mu.Unlock()
	return placement.NewPlacement(d.cur)
}

// Ticks returns a copy of the tick log.
func (d *Daemon) Ticks() []TickRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TickRecord, len(d.ticks))
	copy(out, d.ticks)
	return out
}

// Now returns the daemon's virtual time: the ingestion epoch base times
// the epoch length.
func (d *Daemon) Now() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now()
}

func (d *Daemon) now() float64 {
	return float64(d.epochBase) * d.sketch.EpochLen()
}

// Observe records one client access (to the given quorum's nodes) at
// daemon-relative virtual time at, offset by the current epoch base.
func (d *Daemon) Observe(at float64, client int, nodes []int) {
	d.mu.Lock()
	base := d.now()
	d.mu.Unlock()
	d.sketch.Observe(base+at, client, nodes)
}

// IngestSketch folds a run-local sketch (virtual clock starting at zero,
// e.g. netsim's Config.Heat) into the daemon's sketch at the current epoch
// base, then advances the base past the run's last epoch so the next run's
// observations land strictly later.
func (d *Daemon) IngestSketch(run *heat.Sketch) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.sketch.MergeShifted(run, d.epochBase); err != nil {
		return fmt.Errorf("daemon: %w", err)
	}
	if max, ok := run.MaxEpoch(); ok {
		d.epochBase += max + 1
	}
	obs.Count("daemon.ingests", 1)
	return nil
}

// Drift returns the recent-drift report of the live demand estimate
// against the demand the running placement is planned for.
func (d *Daemon) Drift() (*heat.DriftReport, error) {
	d.mu.Lock()
	plan := d.planDemand
	d.mu.Unlock()
	return d.sketch.RecentDrift(plan)
}

// liveRates returns the sketch's EWMA client rates padded (or truncated)
// to the instance's client count.
func (d *Daemon) liveRates() []float64 {
	rates := d.sketch.ClientRates()
	n := d.ins.M.N()
	if len(rates) > n {
		rates = rates[:n]
	} else if len(rates) < n {
		rates = append(rates, make([]float64, n-len(rates))...)
	}
	return rates
}

// Tick runs one control-loop step: refresh the drift estimate, arm or
// advance a re-plan cycle, re-solve at most one shard, and apply its moves.
// It returns the deterministic record appended to the tick log.
func (d *Daemon) Tick() (TickRecord, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := time.Now()
	defer func() {
		d.lastTickSec = time.Since(start).Seconds()
		obs.Observe("daemon.tick_seconds", d.lastTickSec)
	}()
	sp := obs.Start("daemon.tick")
	defer sp.End()
	obs.Count("daemon.ticks", 1)

	rec := TickRecord{Seq: len(d.ticks), Now: d.now(), Shard: -1}

	rep, err := d.sketch.RecentDrift(d.planDemand)
	if err != nil {
		return rec, fmt.Errorf("daemon: drift: %w", err)
	}
	rec.DriftTV, rec.LiveWeight = rep.TV, rep.LiveWeight

	live := d.liveRates()
	alerted := rep.TV >= d.cfg.DriftThreshold && rep.LiveWeight >= d.cfg.MinLiveWeight
	rec.Alerted = alerted
	if alerted && d.cycleLeft == 0 {
		// Rising edge: pin the live demand as the target every shard of
		// this cycle re-plans against, so the K shard solves compose into
		// one coherent plan even while the estimate keeps moving.
		d.cycleLeft = len(d.shards)
		d.targetDemand = append([]float64(nil), live...)
		obs.Count("daemon.alerts", 1)
	}

	replan := d.cycleLeft > 0 || d.cfg.AlwaysReplan
	if replan {
		target := d.targetDemand
		if d.cycleLeft == 0 {
			// AlwaysReplan outside a cycle tracks the live estimate.
			target = live
		}
		if err := d.replanShard(&rec, target); err != nil {
			return rec, err
		}
		if d.cycleLeft > 0 {
			d.cycleLeft--
			if d.cycleLeft == 0 {
				// Cycle complete: the placement is now planned for the
				// target demand; drift re-arms relative to it.
				d.planDemand = d.targetDemand
				d.targetDemand = nil
			}
		}
	}

	// Predicted delay of the (possibly updated) placement under the live
	// demand — the series E21 watches recover after a drift ramp.
	if err := d.setRates(live); err != nil {
		return rec, err
	}
	rec.AvgDelay = d.ins.AvgTotalDelay(placement.NewPlacement(d.cur))

	d.ticks = append(d.ticks, rec)
	obs.Observe("daemon.tick_moves", float64(len(rec.Moves)))
	return rec, nil
}

// setRates points the instance's demand weights at the given vector,
// falling back to the plan demand when it carries no mass.
func (d *Daemon) setRates(rates []float64) error {
	if massOf(rates) <= 0 {
		rates = d.planDemand // always materialized by New
	}
	if err := d.ins.SetRates(rates); err != nil {
		return fmt.Errorf("daemon: %w", err)
	}
	return nil
}

// replanShard re-solves the next shard in round-robin order against the
// target demand and applies its moves to the current placement.
func (d *Daemon) replanShard(rec *TickRecord, target []float64) error {
	shard := d.next
	pl := d.planners[shard]
	elems := d.shards[shard]
	if err := d.setRates(target); err != nil {
		return err
	}

	// Residual capacities: full capacity minus the incumbent load of
	// elements outside this shard, floored at the shard's own incumbent
	// load per node so the current assignment always remains LP-feasible
	// (the rounded incumbent may overshoot cap by up to p_max).
	n := d.ins.M.N()
	resid := append([]float64(nil), d.ins.Cap...)
	inShard := make([]bool, d.ins.Sys.Universe())
	for _, u := range elems {
		inShard[u] = true
	}
	shardLoad := make([]float64, n)
	for u, v := range d.cur {
		if inShard[u] {
			shardLoad[v] += d.ins.Load(u)
		} else {
			resid[v] -= d.ins.Load(u)
		}
	}
	for v := range resid {
		if resid[v] < shardLoad[v] {
			resid[v] = shardLoad[v]
		}
		if resid[v] < 0 {
			resid[v] = 0
		}
	}

	oldP := placement.NewPlacement(d.cur)
	sol, err := pl.Solve(oldP, d.lambda, resid)
	if err != nil {
		return fmt.Errorf("daemon: shard %d: %w", shard, err)
	}
	rec.Shard, rec.Warm, rec.LPBound = shard, sol.Warm, sol.LPBound
	if sol.Warm {
		obs.Count("daemon.warm_ticks", 1)
	} else {
		obs.Count("daemon.cold_ticks", 1)
	}
	for i, u := range sol.Elems {
		from, to := d.cur[u], sol.Nodes[i]
		if from == to {
			continue
		}
		cost := d.ins.Load(u) * d.ins.M.D(from, to)
		rec.Moves = append(rec.Moves, Migration{Elem: u, From: from, To: to, Cost: cost})
		rec.Moved += cost
		d.cur[u] = to
	}
	obs.Count("daemon.moves", int64(len(rec.Moves)))
	d.next = (d.next + 1) % len(d.shards)
	return nil
}

func massOf(w []float64) float64 {
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	return sum
}

// ResetWarm discards every planner's retained LP basis, forcing the next
// re-plan of each shard cold. Benchmarks use it to isolate the cold path.
func (d *Daemon) ResetWarm() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, pl := range d.planners {
		pl.ResetWarm()
	}
}
