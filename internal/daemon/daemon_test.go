package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"reflect"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/heat"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func buildInstance(t *testing.T, seed int64) (*placement.Instance, placement.Placement) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 8
	g := graph.ErdosRenyiConnected(n, 0.4, 1, 4, rng)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Majority(4, 3)
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 1.6
	}
	ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	old, err := placement.RandomFeasiblePlacement(ins, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	return ins, old
}

func newDaemon(t *testing.T, seed int64, cfg Config) *Daemon {
	t.Helper()
	ins, old := buildInstance(t, seed)
	cfg.Instance, cfg.Initial = ins, old
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// skewObserve pushes a deterministic hot-spot workload (clients 0 and 1) into
// the daemon so the live estimate drifts far from the uniform plan demand.
func skewObserve(d *Daemon, accesses int) {
	for i := 0; i < accesses; i++ {
		at := 0.1 * float64(i)
		d.Observe(at, i%2, []int{i % 4})
	}
}

// TestDaemonDeterministicReplay drives two identically-configured daemons
// through the same observation and tick sequence; the tick logs and final
// placements must be deeply equal (no wall-clock or map-order leakage).
func TestDaemonDeterministicReplay(t *testing.T) {
	run := func() ([]TickRecord, []int) {
		d := newDaemon(t, 42, Config{Shards: 3, Lambda: 0.5})
		for round := 0; round < 4; round++ {
			skewObserve(d, 30)
			if _, err := d.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		// Fold in a run-local sketch, as the netsim pipeline does.
		local := heat.New(heat.Options{})
		for i := 0; i < 20; i++ {
			local.Observe(0.2*float64(i), i%3, []int{1})
		}
		if err := d.IngestSketch(local); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			if _, err := d.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		return d.Ticks(), d.Placement().Map()
	}
	ticksA, placeA := run()
	ticksB, placeB := run()
	if !reflect.DeepEqual(ticksA, ticksB) {
		t.Fatalf("tick logs differ between identical runs:\n%v\n%v", ticksA, ticksB)
	}
	if !reflect.DeepEqual(placeA, placeB) {
		t.Fatalf("final placements differ: %v vs %v", placeA, placeB)
	}
}

// TestDaemonIdleWithoutDrift checks the solver stays idle while the plan is
// fresh: no observations (or an on-plan workload) must never trigger a
// re-plan.
func TestDaemonIdleWithoutDrift(t *testing.T) {
	d := newDaemon(t, 7, Config{Shards: 2, Lambda: 1})
	before := d.Placement().Map()
	for i := 0; i < 5; i++ {
		rec, err := d.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Alerted || rec.Shard != -1 || len(rec.Moves) != 0 {
			t.Fatalf("tick %d re-planned without drift: %+v", i, rec)
		}
	}
	if !reflect.DeepEqual(before, d.Placement().Map()) {
		t.Fatal("placement changed without any re-plan")
	}
}

// TestDaemonAlertCycle checks the drift alert arms a full K-shard re-plan
// cycle on its rising edge, and that completing the cycle re-bases the plan
// demand so the alert re-arms (drift against the new plan drops).
func TestDaemonAlertCycle(t *testing.T) {
	const k = 2
	d := newDaemon(t, 11, Config{Shards: k, Lambda: 0.25, DriftThreshold: 0.2})
	skewObserve(d, 200)

	rep, err := d.Drift()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TV < 0.2 || rep.LiveWeight < DefaultMinLiveWeight {
		t.Fatalf("fixture does not drift enough: TV=%v weight=%v", rep.TV, rep.LiveWeight)
	}

	// The cycle: exactly k consecutive re-planning ticks, round-robin shards.
	for i := 0; i < k; i++ {
		rec, err := d.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Alerted && i == 0 {
			t.Fatalf("tick %d: alert did not trip (TV=%v)", i, rec.DriftTV)
		}
		if rec.Shard != i%k {
			t.Fatalf("tick %d re-planned shard %d, want %d", i, rec.Shard, i%k)
		}
	}

	// Cycle complete: plan demand is now the drifted target, so drift is
	// (near) zero and the next tick must not re-plan.
	rep, err = d.Drift()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TV >= 0.2 {
		t.Fatalf("drift did not re-base after cycle: TV=%v", rep.TV)
	}
	rec, err := d.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Alerted || rec.Shard != -1 {
		t.Fatalf("post-cycle tick still re-planning: %+v", rec)
	}

	// The composed placement must stay within the rounding guarantee.
	loads := d.cfg.Instance.NodeLoads(d.Placement())
	for v, l := range loads {
		if l > 2*d.cfg.Instance.Cap[v] {
			t.Fatalf("node %d load %v exceeds 2·cap %v", v, l, d.cfg.Instance.Cap[v])
		}
	}
}

// TestDaemonIngestAdvancesClock checks IngestSketch shifts run-local epochs
// past the current base and advances the virtual clock.
func TestDaemonIngestAdvancesClock(t *testing.T) {
	d := newDaemon(t, 3, Config{Heat: heat.Options{EpochLen: 2}})
	if d.Now() != 0 {
		t.Fatalf("fresh daemon Now = %v", d.Now())
	}
	run := heat.New(heat.Options{EpochLen: 2})
	run.Observe(0.5, 0, []int{1}) // epoch 0
	run.Observe(7.0, 1, []int{2}) // epoch 3
	if err := d.IngestSketch(run); err != nil {
		t.Fatal(err)
	}
	// Base advanced past epoch 3 → 4 epochs × len 2.
	if got := d.Now(); got != 8 {
		t.Fatalf("Now = %v after ingest, want 8", got)
	}
	if err := d.IngestSketch(run); err != nil {
		t.Fatal(err)
	}
	if got := d.Now(); got != 16 {
		t.Fatalf("Now = %v after second ingest, want 16", got)
	}
	// Epoch-length mismatch is rejected.
	if err := d.IngestSketch(heat.New(heat.Options{EpochLen: 1})); err == nil {
		t.Fatal("mismatched epoch length accepted")
	}
}

// TestDaemonAlwaysReplanWarm checks steady-state repair mode reuses the LP
// basis after each shard's first solve, and ResetWarm forces cold again.
func TestDaemonAlwaysReplanWarm(t *testing.T) {
	const k = 2
	d := newDaemon(t, 13, Config{Shards: k, Lambda: 0.5, AlwaysReplan: true})
	skewObserve(d, 60)
	for i := 0; i < 2*k; i++ {
		rec, err := d.Tick()
		if err != nil {
			t.Fatal(err)
		}
		wantWarm := i >= k // second visit of each shard
		if rec.Warm != wantWarm {
			t.Fatalf("tick %d warm=%v, want %v", i, rec.Warm, wantWarm)
		}
		if rec.LPBound <= 0 {
			t.Fatalf("tick %d has no LP bound: %+v", i, rec)
		}
	}
	d.ResetWarm()
	rec, err := d.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Warm {
		t.Fatal("tick after ResetWarm still reused a basis")
	}
}

// TestDaemonValidation covers Config rejection paths.
func TestDaemonValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil instance accepted")
	}
	ins, old := buildInstance(t, 5)
	bad := []Config{
		{Instance: ins, Initial: old, Lambda: -1},
		{Instance: ins, Initial: old, PlanDemand: []float64{1, 2}},
		{Instance: ins, Initial: placement.NewPlacement([]int{99, 0, 0, 0})},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	d, err := New(Config{Instance: ins, Initial: old, Shards: 99})
	if err != nil {
		t.Fatal(err)
	}
	if d.Shards() != ins.Sys.Universe() {
		t.Fatalf("shards not clamped to universe: %d", d.Shards())
	}
	if err := d.SetLambda(-2); err == nil {
		t.Fatal("negative lambda accepted by SetLambda")
	}
	if err := d.SetLambda(3); err != nil || d.Lambda() != 3 {
		t.Fatalf("SetLambda(3): err=%v lambda=%v", err, d.Lambda())
	}
}

// TestDaemonHTTP round-trips the control+status API over a real listener.
func TestDaemonHTTP(t *testing.T) {
	d := newDaemon(t, 21, Config{Shards: 2, Lambda: 0.5, AlwaysReplan: true})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := d.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	postJSON := func(path string, body any, into any) *http.Response {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if into != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("POST %s: %v", path, err)
			}
		}
		return resp
	}

	// Ingest a skewed workload over HTTP.
	obsBody := make([]observeReq, 0, 40)
	for i := 0; i < 40; i++ {
		obsBody = append(obsBody, observeReq{At: 0.1 * float64(i), Client: i % 2, Nodes: []int{i % 4}})
	}
	var ingested map[string]int
	if resp := postJSON("/observe", obsBody, &ingested); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /observe: %s", resp.Status)
	}
	if ingested["ingested"] != 40 {
		t.Fatalf("ingested %d, want 40", ingested["ingested"])
	}

	// Drive a tick and read it back.
	var rec TickRecord
	if resp := postJSON("/tick", nil, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /tick: %s", resp.Status)
	}
	if rec.Seq != 0 || rec.Shard != 0 {
		t.Fatalf("first tick over HTTP: %+v", rec)
	}

	var st Status
	getJSON("/status", &st)
	if st.Ticks != 1 || st.Shards != 2 || st.Lambda != 0.5 {
		t.Fatalf("status: %+v", st)
	}
	if st.LastTickSeconds <= 0 {
		t.Fatalf("status has no tick latency: %+v", st)
	}

	var pd PlacementDoc
	getJSON("/placement", &pd)
	if !reflect.DeepEqual(pd.Nodes, d.Placement().Map()) {
		t.Fatalf("placement doc %v != %v", pd.Nodes, d.Placement().Map())
	}

	var drift heat.DriftReport
	getJSON("/drift", &drift)
	if drift.LiveWeight <= 0 {
		t.Fatalf("drift report empty after ingest: %+v", drift)
	}

	var ticks []TickRecord
	getJSON("/ticks", &ticks)
	if len(ticks) != 1 || !reflect.DeepEqual(ticks[0].Moves, rec.Moves) {
		t.Fatalf("ticks doc: %+v", ticks)
	}
	postJSON("/tick", nil, nil)
	getJSON("/ticks?last=1", &ticks)
	if len(ticks) != 1 || ticks[0].Seq != 1 {
		t.Fatalf("ticks?last=1: %+v", ticks)
	}

	var lam map[string]float64
	if resp := postJSON("/lambda", map[string]float64{"lambda": 2}, &lam); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /lambda: %s", resp.Status)
	}
	if d.Lambda() != 2 {
		t.Fatalf("lambda not applied: %v", d.Lambda())
	}
	if resp := postJSON("/lambda", map[string]float64{"lambda": -1}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative lambda over HTTP: %s", resp.Status)
	}

	// Wrong methods are rejected.
	if resp, err := http.Get(base + "/tick"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /tick: %s", resp.Status)
		}
	}
	if resp := postJSON("/status", nil, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /status: %s", resp.Status)
	}
}
