// Package viz renders small ASCII charts for the command-line tools:
// histograms of latency samples and CDF curves comparing placements. It is
// deliberately tiny — enough to see a distribution's shape in a terminal
// without any plotting dependency.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram renders values as a horizontal-bar histogram with the given
// number of bins. width is the maximum bar length in characters.
func Histogram(values []float64, bins, width int) string {
	if len(values) == 0 || bins <= 0 || width <= 0 {
		return "(no data)\n"
	}
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == min {
		return fmt.Sprintf("all %d values = %.4g\n", len(values), min)
	}
	counts := make([]int, bins)
	for _, v := range values {
		b := int(float64(bins) * (v - min) / (max - min))
		if b == bins {
			b--
		}
		counts[b]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for b := 0; b < bins; b++ {
		lo := min + (max-min)*float64(b)/float64(bins)
		hi := min + (max-min)*float64(b+1)/float64(bins)
		bar := strings.Repeat("█", counts[b]*width/peak)
		fmt.Fprintf(&sb, "[%8.3g, %8.3g) %6d %s\n", lo, hi, counts[b], bar)
	}
	return sb.String()
}

// CDFSeries is one labelled sample set for CDF.
type CDFSeries struct {
	Label  string
	Values []float64
}

// CDF renders empirical CDF curves for several series on a shared x-axis
// as rows of quantiles — a compact textual alternative to a plot.
func CDF(series []CDFSeries) string {
	if len(series) == 0 {
		return "(no data)\n"
	}
	quantiles := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}
	var sb strings.Builder
	labelW := len("series")
	for _, s := range series {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	fmt.Fprintf(&sb, "%-*s", labelW, "series")
	for _, q := range quantiles {
		fmt.Fprintf(&sb, "  %8s", fmt.Sprintf("p%g", q*100))
	}
	sb.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&sb, "%-*s", labelW, s.Label)
		if len(s.Values) == 0 {
			sb.WriteString("  (empty)\n")
			continue
		}
		sorted := append([]float64(nil), s.Values...)
		sort.Float64s(sorted)
		for _, q := range quantiles {
			idx := int(q * float64(len(sorted)-1))
			fmt.Fprintf(&sb, "  %8.4g", sorted[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Sparkline renders values as a single-line trend using block characters.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int(math.Round((v - min) / (max - min) * float64(len(blocks)-1)))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
