package viz

import (
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	out := Histogram([]float64{1, 1, 1, 2, 3, 3}, 2, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d bins, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "3") { // first bin holds the three 1s
		t.Fatalf("first bin line %q missing count", lines[0])
	}
	if !strings.Contains(lines[0], "██████████") {
		t.Fatalf("peak bin not full width: %q", lines[0])
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if out := Histogram(nil, 4, 10); out != "(no data)\n" {
		t.Fatalf("empty input: %q", out)
	}
	if out := Histogram([]float64{5, 5, 5}, 4, 10); !strings.Contains(out, "all 3 values") {
		t.Fatalf("constant input: %q", out)
	}
	if out := Histogram([]float64{1, 2}, 0, 10); out != "(no data)\n" {
		t.Fatalf("zero bins: %q", out)
	}
}

func TestCDF(t *testing.T) {
	out := CDF([]CDFSeries{
		{Label: "a", Values: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
		{Label: "longer-name", Values: []float64{10}},
		{Label: "empty"},
	})
	if !strings.Contains(out, "p50") || !strings.Contains(out, "p99") {
		t.Fatalf("missing quantile headers:\n%s", out)
	}
	if !strings.Contains(out, "longer-name") {
		t.Fatalf("missing label:\n%s", out)
	}
	if !strings.Contains(out, "(empty)") {
		t.Fatalf("missing empty marker:\n%s", out)
	}
	// p100 of series a is 10.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "10") {
		t.Fatalf("series a row missing max: %q", lines[1])
	}
	if out := CDF(nil); out != "(no data)\n" {
		t.Fatalf("nil series: %q", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty sparkline %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(got)) != 4 {
		t.Fatalf("length %d, want 4 (%q)", len([]rune(got)), got)
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("endpoints wrong: %q", got)
	}
	flat := Sparkline([]float64{2, 2})
	if flat != "▁▁" {
		t.Fatalf("flat sparkline %q", flat)
	}
}
