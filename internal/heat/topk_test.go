package heat

import (
	"math/rand"
	"testing"
)

func TestTopKExactRegime(t *testing.T) {
	// Distinct keys within capacity: counts exact, errors zero.
	tk := NewTopK(4)
	for i := 0; i < 10; i++ {
		tk.Add(i%3, 1)
	}
	top := tk.Top(0)
	if len(top) != 3 {
		t.Fatalf("entries %v", top)
	}
	for _, e := range top {
		if e.Err != 0 {
			t.Fatalf("exact regime produced error bound: %+v", e)
		}
	}
	if top[0].Key != 0 || top[0].Count != 4 {
		t.Fatalf("top entry %+v", top[0])
	}
	// Ties break toward the smaller key.
	if top[1].Key != 1 || top[2].Key != 2 {
		t.Fatalf("tie order %v", top)
	}
}

// zipfOf draws from a small skewed alphabet: key k with probability ~2^-(k+1),
// so heavy keys exist while the alphabet overflows small capacities.
func zipfOf(r *rand.Rand) int {
	k := 0
	for k < 63 && r.Float64() < 0.5 {
		k++
	}
	return k
}

func TestTopKEvictionDeterminism(t *testing.T) {
	// Overflowing the capacity with identical streams must produce
	// identical summaries, and the space-saving bounds must hold.
	build := func() *TopK {
		rng := rand.New(rand.NewSource(3))
		tk := NewTopK(5)
		for i := 0; i < 4000; i++ {
			tk.Add(zipfOf(rng), 1)
		}
		return tk
	}
	a, b := build(), build()
	if !a.Equal(b) {
		t.Fatal("identical streams produced different sketches")
	}
	rng := rand.New(rand.NewSource(3))
	truth := make(map[int]int64)
	for i := 0; i < 4000; i++ {
		truth[zipfOf(rng)]++
	}
	for _, e := range a.Top(0) {
		if tc := truth[e.Key]; e.Count < tc || e.Count-e.Err > tc {
			t.Fatalf("key %d: count %d err %d vs true %d", e.Key, e.Count, e.Err, tc)
		}
	}
}

func TestTopKHeavyHitterGuarantee(t *testing.T) {
	// Any key with true count > N/k must be monitored after N adds.
	rng := rand.New(rand.NewSource(9))
	tk := NewTopK(8)
	truth := make(map[int]int64)
	const N = 8000
	for i := 0; i < N; i++ {
		k := zipfOf(rng)
		truth[k]++
		tk.Add(k, 1)
	}
	monitored := make(map[int]bool)
	for _, e := range tk.Top(0) {
		monitored[e.Key] = true
	}
	for k, c := range truth {
		if c > N/8 && !monitored[k] {
			t.Fatalf("heavy key %d (count %d > %d) not monitored", k, c, N/8)
		}
	}
}

func TestTopKMergeExactWhenUnderCapacity(t *testing.T) {
	a, b, single := NewTopK(16), NewTopK(16), NewTopK(16)
	for i := 0; i < 200; i++ {
		k := i % 10
		if i%2 == 0 {
			a.Add(k, 1)
		} else {
			b.Add(k, 1)
		}
		single.Add(k, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(single) {
		t.Fatalf("under-capacity merge not exact:\n%v\nvs\n%v", a.Top(0), single.Top(0))
	}
}

func TestTopKMergeBoundsSurviveOverflow(t *testing.T) {
	// Sharded overflowing streams: merged bounds still sandwich the truth.
	rng := rand.New(rand.NewSource(5))
	parts := []*TopK{NewTopK(6), NewTopK(6)}
	truth := make(map[int]int64)
	for i := 0; i < 6000; i++ {
		k := zipfOf(rng)
		truth[k]++
		parts[i%2].Add(k, 1)
	}
	if err := parts[0].Merge(parts[1]); err != nil {
		t.Fatal(err)
	}
	for _, e := range parts[0].Top(0) {
		if tc := truth[e.Key]; e.Count < tc || e.Count-e.Err > tc {
			t.Fatalf("key %d: count %d err %d vs true %d", e.Key, e.Count, e.Err, tc)
		}
	}
}

func TestTopKMergeRejects(t *testing.T) {
	if err := NewTopK(4).Merge(NewTopK(5)); err == nil {
		t.Fatal("merged mismatched capacities")
	}
	if err := NewTopK(4).Merge(nil); err == nil {
		t.Fatal("merged nil")
	}
}
