package heat

import "quorumplace/internal/obs"

// Publish emits the sketch's current state as gauges into the ambient obs
// collector, under the heat.* namespace, so the sketches flow through the
// /metrics and /metrics.json exposition like every other telemetry signal
// (and qppmon's drift panel picks them up). Gauges, not counters: Publish
// is idempotent — calling it again overwrites the previous reading with
// the current one. plan is the demand vector the current placement was
// solved against (nil for uniform). No-op while telemetry is disabled.
func (s *Sketch) Publish(plan []float64) {
	if !obs.Enabled() {
		return
	}
	obs.Gauge("heat.accesses", float64(s.Accesses()))
	obs.Gauge("heat.messages", float64(s.Messages()))
	obs.Gauge("heat.epochs", float64(s.Epochs()))
	if d, err := s.Drift(plan); err == nil {
		obs.Gauge("heat.drift_tv", d.TV)
		if d.Top >= 0 {
			obs.Gauge("heat.drift_top_client", float64(d.Top))
			obs.Gauge("heat.drift_top_share", d.TopShare)
		}
	}
	if rd, err := s.RecentDrift(plan); err == nil {
		obs.Gauge("heat.drift_recent_tv", rd.TV)
	}
	if top := s.TopClients(1); len(top) > 0 && s.Accesses() > 0 {
		obs.Gauge("heat.hot_client", float64(top[0].Key))
		obs.Gauge("heat.hot_client_share", float64(top[0].Count)/float64(s.Accesses()))
	}
	if top := s.TopNodes(1); len(top) > 0 && s.Messages() > 0 {
		obs.Gauge("heat.hot_node", float64(top[0].Key))
		obs.Gauge("heat.hot_node_share", float64(top[0].Count)/float64(s.Messages()))
	}
}
