package heat

import (
	"testing"

	"quorumplace/internal/obs"
)

func TestPublishGauges(t *testing.T) {
	s := New(Options{})
	for i := 0; i < 30; i++ {
		s.Observe(float64(i)*0.1, i%3, []int{i % 5})
	}
	// Disabled telemetry: Publish is a no-op, not a panic.
	obs.Disable()
	s.Publish(nil)

	c := obs.Enable(nil)
	defer obs.Disable()
	s.Publish([]float64{1, 1, 4})
	snap := c.Snapshot()
	for _, g := range []string{
		"heat.accesses", "heat.messages", "heat.epochs",
		"heat.drift_tv", "heat.drift_recent_tv",
		"heat.hot_client", "heat.hot_client_share",
		"heat.hot_node", "heat.hot_node_share",
		"heat.drift_top_client", "heat.drift_top_share",
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Errorf("gauge %s not published (have %v)", g, snap.Gauges)
		}
	}
	if got := snap.Gauges["heat.accesses"]; got != 30 {
		t.Fatalf("heat.accesses %v", got)
	}
	if tv := snap.Gauges["heat.drift_tv"]; tv <= 0 {
		t.Fatalf("drift vs skewed plan should be positive, got %v", tv)
	}
	// Publishing again overwrites rather than accumulates.
	s.Observe(99, 0, nil)
	s.Publish([]float64{1, 1, 4})
	if got := c.Snapshot().Gauges["heat.accesses"]; got != 31 {
		t.Fatalf("heat.accesses after republish %v", got)
	}
}
