package heat

import (
	"math"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func buildInstance(t *testing.T) (*placement.Instance, placement.Placement) {
	t.Helper()
	g := graph.Grid2D(3, 3)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Grid(2)
	st := quorum.Uniform(sys.NumQuorums())
	caps := make([]float64, 9)
	for i := range caps {
		caps[i] = 1
	}
	ins, err := placement.NewInstance(m, caps, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	return ins, placement.NewPlacement([]int{0, 1, 3, 4})
}

func TestAttributeDecomposition(t *testing.T) {
	a := Attribute(2.0, 2.5, 3.4, 0.3, 0.1)
	if math.Abs(a.Gap-1.4) > 1e-15 {
		t.Fatalf("gap %v", a.Gap)
	}
	if a.Drift != 0.5 || a.Queueing != 0.3 || a.Failures != 0.1 {
		t.Fatalf("components %+v", a)
	}
	// The identity Gap = Drift + Queueing + Failures + Residual is exact
	// by construction of Residual.
	if got := a.Drift + a.Queueing + a.Failures + a.Residual; got != a.Gap {
		t.Fatalf("decomposition %v != gap %v", got, a.Gap)
	}
	cause, share := a.DominantCause()
	if cause != "drift" || share <= 0 {
		t.Fatalf("dominant %q %v", cause, share)
	}
	if a.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestAttributeZeroGap(t *testing.T) {
	a := Attribute(2, 2, 2, 0, 0)
	if a.Gap != 0 || a.Residual != 0 {
		t.Fatalf("%+v", a)
	}
	if cause, _ := a.DominantCause(); cause != "" {
		t.Fatalf("dominant cause %q for zero gap", cause)
	}
}

func TestPredictUnderRates(t *testing.T) {
	ins, pl := buildInstance(t)
	base := ins.AvgMaxDelay(pl)

	// Uniform live rates reproduce the uniform objective.
	uni := make([]float64, 9)
	for i := range uni {
		uni[i] = 1
	}
	got, err := PredictUnderRates(ins, pl, false, uni)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-base) > 1e-12 {
		t.Fatalf("uniform predict %v vs base %v", got, base)
	}
	if ins.Rates != nil {
		t.Fatal("instance rates not restored")
	}

	// All mass on the farthest client reproduces that client's delay.
	worst, worstD := 0, 0.0
	for v := 0; v < 9; v++ {
		if d := ins.MaxDelayFrom(v, pl); d > worstD {
			worst, worstD = v, d
		}
	}
	hot := make([]float64, 9)
	hot[worst] = 1
	got, err = PredictUnderRates(ins, pl, false, hot)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-worstD) > 1e-12 {
		t.Fatalf("hot predict %v vs client delay %v", got, worstD)
	}
	if got <= base {
		t.Fatalf("worst-client demand %v should exceed uniform %v", got, base)
	}

	// Sequential switches to the total-delay objective.
	seq, err := PredictUnderRates(ins, pl, true, uni)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq-ins.AvgTotalDelay(pl)) > 1e-12 {
		t.Fatalf("sequential predict %v vs %v", seq, ins.AvgTotalDelay(pl))
	}

	// A short vector pads with zeros; an overlong one is rejected; the
	// saved rates are restored even around errors.
	if err := ins.SetRates([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := PredictUnderRates(ins, pl, false, make([]float64, 10)); err == nil {
		t.Fatal("overlong rates accepted")
	}
	if _, err := PredictUnderRates(ins, pl, false, []float64{0, 0}); err == nil {
		t.Fatal("zero-mass rates accepted")
	}
	if ins.Rates == nil || ins.Rates[8] != 9 {
		t.Fatalf("instance rates clobbered: %v", ins.Rates)
	}
	short := []float64{1}
	if _, err := PredictUnderRates(ins, pl, false, short); err != nil {
		t.Fatal(err)
	}
	if ins.Rates[8] != 9 {
		t.Fatalf("rates not restored after padded predict: %v", ins.Rates)
	}
}
