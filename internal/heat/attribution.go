package heat

import (
	"fmt"
	"math"
	"strings"

	"quorumplace/internal/placement"
)

// Plan-vs-actual delay attribution: the solver promised PredictedPlan (its
// objective under the demand it was solved against); the simulator (or a
// deployment) measured Measured. The gap decomposes into
//
//	Drift     — re-evaluating the same placement analytically under the
//	            live demand estimate moves the prediction by this much;
//	            nonzero exactly when the workload shifted.
//	Queueing  — measured queue wait, absent from the propagation-only
//	            objective (Eq. 1 charges distance, not contention).
//	Failures  — retry-penalty overhead from failed attempts.
//	Residual  — whatever remains (sampling noise, model error).
//
// Each component answers "would the gap close if this cause vanished",
// which is the question a re-planning loop has to triage: drift calls for
// a re-solve, queueing for capacity, failures for replication.

// Attribution is the decomposed plan-vs-actual delay gap.
type Attribution struct {
	PredictedPlan float64 // analytic objective under plan-time demand
	PredictedLive float64 // analytic objective under the live demand estimate
	Measured      float64 // measured mean access delay

	Gap      float64 // Measured − PredictedPlan
	Drift    float64 // PredictedLive − PredictedPlan
	Queueing float64 // measured mean queue wait per access
	Failures float64 // measured mean retry-penalty overhead per access
	Residual float64 // Gap − Drift − Queueing − Failures
}

// Attribute decomposes the plan-vs-actual gap. queueWait and failurePenalty
// are per-access means measured by the simulator (0 when the respective
// mechanism is off).
func Attribute(predictedPlan, predictedLive, measured, queueWait, failurePenalty float64) Attribution {
	a := Attribution{
		PredictedPlan: predictedPlan,
		PredictedLive: predictedLive,
		Measured:      measured,
		Gap:           measured - predictedPlan,
		Drift:         predictedLive - predictedPlan,
		Queueing:      queueWait,
		Failures:      failurePenalty,
	}
	a.Residual = a.Gap - a.Drift - a.Queueing - a.Failures
	return a
}

// PredictUnderRates re-evaluates the analytic delay objective of a fixed
// placement under an alternative demand vector: Avg Δ_f for the parallel
// (max-delay, Eq. 1) model, Avg Γ_f for the sequential (total-delay, §5)
// model. rates need not be normalized; shorter-than-n vectors are
// zero-padded, longer ones rejected. The instance's own rates are
// restored before returning. Not safe for concurrent use of ins.
func PredictUnderRates(ins *placement.Instance, pl placement.Placement, sequential bool, rates []float64) (float64, error) {
	n := ins.M.N()
	if len(rates) > n {
		return 0, fmt.Errorf("heat: %d live rates for %d clients", len(rates), n)
	}
	padded := make([]float64, n)
	copy(padded, rates)
	saved := ins.Rates
	if err := ins.SetRates(padded); err != nil {
		return 0, err
	}
	var d float64
	if sequential {
		d = ins.AvgTotalDelay(pl)
	} else {
		d = ins.AvgMaxDelay(pl)
	}
	ins.Rates = saved
	return d, nil
}

// Format renders the attribution as a short human-readable block.
func (a Attribution) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "predicted (plan demand)  %.6g\n", a.PredictedPlan)
	fmt.Fprintf(&b, "predicted (live demand)  %.6g\n", a.PredictedLive)
	fmt.Fprintf(&b, "measured                 %.6g\n", a.Measured)
	fmt.Fprintf(&b, "gap %.6g = drift %.6g + queueing %.6g + failures %.6g + residual %.6g\n",
		a.Gap, a.Drift, a.Queueing, a.Failures, a.Residual)
	if cause, share := a.DominantCause(); cause != "" {
		fmt.Fprintf(&b, "dominant cause: %s (%.0f%% of |gap|)\n", cause, share*100)
	}
	return b.String()
}

// DominantCause names the largest-magnitude component of the gap and its
// share of the total absolute attribution, or "" when the gap is zero.
func (a Attribution) DominantCause() (string, float64) {
	parts := []struct {
		name string
		v    float64
	}{
		{"drift", a.Drift}, {"queueing", a.Queueing},
		{"failures", a.Failures}, {"residual", a.Residual},
	}
	total, best := 0.0, 0
	for i, p := range parts {
		total += math.Abs(p.v)
		if math.Abs(p.v) > math.Abs(parts[best].v) {
			best = i
		}
	}
	if total == 0 {
		return "", 0
	}
	return parts[best].name, math.Abs(parts[best].v) / total
}
