package heat

import (
	"math"
	"testing"
)

func TestDriftIdenticalDistributions(t *testing.T) {
	// Proportional vectors (any positive scaling) drift by exactly 0 for
	// the uniform case: a/b with identical real quotients round identically.
	r, err := Drift([]float64{7, 7, 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.TV != 0 || r.Top != -1 || r.TopShare != 0 {
		t.Fatalf("uniform vs uniform: %+v", r)
	}
	r, err = Drift([]float64{2, 4, 6}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.TV != 0 {
		t.Fatalf("proportional vectors drifted: TV %v", r.TV)
	}
}

func TestDriftDisjointDistributions(t *testing.T) {
	r, err := Drift([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.TV != 1 {
		t.Fatalf("disjoint TV %v, want 1", r.TV)
	}
	if r.Top != 0 || r.TopShare != 0.5 {
		t.Fatalf("top %d share %v", r.Top, r.TopShare)
	}
}

func TestDriftKnownValue(t *testing.T) {
	// live (3/4, 1/4) vs plan (1/2, 1/2): TV = 1/4, all representable.
	r, err := Drift([]float64{3, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.TV != 0.25 {
		t.Fatalf("TV %v, want 0.25", r.TV)
	}
	if r.PerClient[0] != 0.125 || r.PerClient[1] != 0.125 {
		t.Fatalf("per-client %v", r.PerClient)
	}
	// Tied contributions: Top is the minimum index.
	if r.Top != 0 {
		t.Fatalf("top %d, want 0", r.Top)
	}
	if r.LiveWeight != 4 {
		t.Fatalf("live weight %v", r.LiveWeight)
	}
}

func TestDriftLengthMismatchPads(t *testing.T) {
	// A live vector shorter than the plan treats missing clients as zero.
	r, err := Drift([]float64{1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.TV != 0.5 {
		t.Fatalf("TV %v, want 0.5", r.TV)
	}
}

func TestDriftEmptyAndInvalid(t *testing.T) {
	r, err := Drift(nil, nil)
	if err != nil || r.TV != 0 || r.Top != -1 {
		t.Fatalf("empty drift: %+v, %v", r, err)
	}
	// Zero live mass is "no evidence", not maximal drift.
	r, err = Drift([]float64{0, 0}, []float64{1, 3})
	if err != nil || r.TV != 0 {
		t.Fatalf("zero-mass drift: %+v, %v", r, err)
	}
	if _, err := Drift([]float64{-1}, nil); err == nil {
		t.Fatal("negative live weight accepted")
	}
	if _, err := Drift([]float64{1}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN plan weight accepted")
	}
	if _, err := Drift([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero-mass plan accepted")
	}
}

func TestSketchDriftUniformExactlyZero(t *testing.T) {
	// Equal per-client totals vs nil (uniform) plan: exact zero, because
	// c/total and 1/n are correctly rounded quotients of the same real.
	s := New(Options{})
	for v := 0; v < 7; v++ {
		for i := 0; i < 13; i++ {
			s.Observe(float64(i), v, nil)
		}
	}
	r, err := s.Drift(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.TV != 0 {
		t.Fatalf("uniform totals drifted: TV %v", r.TV)
	}
}

func TestDriftFormat(t *testing.T) {
	r, _ := Drift([]float64{3, 1}, nil)
	out := r.Format()
	if out == "" || r.Top < 0 {
		t.Fatalf("format %q top %d", out, r.Top)
	}
}
