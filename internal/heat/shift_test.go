package heat

import (
	"testing"
)

// TestMergeShiftedBitwise pins the daemon-ingestion contract: merging a
// run-local sketch (whose virtual clock started at zero) with an epoch
// shift must be bitwise identical to having observed the same accesses
// directly at the shifted times.
func TestMergeShiftedBitwise(t *testing.T) {
	opt := Options{EpochLen: 2, HalfLife: 4}
	type obs struct {
		at     float64
		client int
		nodes  []int
	}
	run := []obs{
		{0.5, 0, []int{1, 2}},
		{1.5, 1, []int{2}},
		{3.0, 0, []int{0, 3}},
		{5.9, 2, []int{1}},
	}
	const shiftEpochs = 7

	// Direct observation at shifted times.
	want := New(opt)
	for _, o := range run {
		want.Observe(o.at+shiftEpochs*opt.EpochLen, o.client, o.nodes)
	}

	// Run-local sketch merged with the shift.
	local := New(opt)
	for _, o := range run {
		local.Observe(o.at, o.client, o.nodes)
	}
	got := New(opt)
	if err := got.MergeShifted(local, shiftEpochs); err != nil {
		t.Fatal(err)
	}

	if !got.Equal(want) {
		t.Fatal("MergeShifted state differs from direct shifted observation")
	}
	// And the EWMA view (which depends on epoch indices) agrees too.
	gr, wr := got.ClientRates(), want.ClientRates()
	if len(gr) != len(wr) {
		t.Fatalf("rate lengths differ: %d vs %d", len(gr), len(wr))
	}
	for i := range gr {
		if gr[i] != wr[i] {
			t.Fatalf("client rate %d differs bitwise: %v vs %v", i, gr[i], wr[i])
		}
	}
}

// TestMergeShiftedZeroIsMerge checks the shift-free case degrades to the
// plain merge.
func TestMergeShiftedZeroIsMerge(t *testing.T) {
	a := New(Options{})
	a.Observe(0.5, 0, []int{1})
	a.Observe(1.5, 1, []int{0, 1})
	viaMerge := New(Options{})
	if err := viaMerge.Merge(a); err != nil {
		t.Fatal(err)
	}
	viaShift := New(Options{})
	if err := viaShift.MergeShifted(a, 0); err != nil {
		t.Fatal(err)
	}
	if !viaShift.Equal(viaMerge) {
		t.Fatal("MergeShifted(o, 0) differs from Merge(o)")
	}
}

// TestMergeShiftedValidation mirrors the Merge validation.
func TestMergeShiftedValidation(t *testing.T) {
	a := New(Options{})
	if err := a.MergeShifted(a, 1); err == nil {
		t.Fatal("self-merge accepted")
	}
	if err := a.MergeShifted(New(Options{EpochLen: 2}), 1); err == nil {
		t.Fatal("incompatible epoch length accepted")
	}
}

// TestMaxEpoch checks the epoch-base bookkeeping hook.
func TestMaxEpoch(t *testing.T) {
	s := New(Options{EpochLen: 2})
	if _, ok := s.MaxEpoch(); ok {
		t.Fatal("empty sketch reported an epoch")
	}
	s.Observe(0.5, 0, []int{1}) // epoch 0
	s.Observe(9.0, 0, []int{1}) // epoch 4
	max, ok := s.MaxEpoch()
	if !ok || max != 4 {
		t.Fatalf("MaxEpoch = %d,%v; want 4,true", max, ok)
	}
}
