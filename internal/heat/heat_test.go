package heat

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// synthStream generates a deterministic synthetic access stream: ascending
// issue times with jitter, zipf-ish client choice, 3-node message fan-out.
type access struct {
	at     float64
	client int
	nodes  []int
}

func synthStream(seed int64, n, count int) []access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]access, count)
	at := 0.0
	for i := range out {
		at += rng.Float64() * 0.3
		c := rng.Intn(n)
		if rng.Float64() < 0.5 { // skew half the mass onto low indices
			c = rng.Intn(1 + n/4)
		}
		nodes := []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
		out[i] = access{at: at, client: c, nodes: nodes}
	}
	return out
}

func feed(s *Sketch, stream []access) {
	for _, a := range stream {
		s.Observe(a.at, a.client, a.nodes)
	}
}

func TestSketchCounts(t *testing.T) {
	s := New(Options{EpochLen: 1})
	s.Observe(0.1, 2, []int{0, 1})
	s.Observe(0.9, 2, []int{1, 1})
	s.Observe(3.5, 0, []int{2})
	if got := s.Accesses(); got != 3 {
		t.Fatalf("accesses %d, want 3", got)
	}
	if got := s.Messages(); got != 5 {
		t.Fatalf("messages %d, want 5", got)
	}
	if got := s.Epochs(); got != 2 {
		t.Fatalf("epochs %d, want 2", got)
	}
	ct := s.ClientTotals()
	if ct[2] != 2 || ct[0] != 1 {
		t.Fatalf("client totals %v", ct)
	}
	nt := s.NodeTotals()
	if nt[0] != 1 || nt[1] != 3 || nt[2] != 1 {
		t.Fatalf("node totals %v", nt)
	}
	// Repeated node entries count once per message, like netsim NodeHits.
	top := s.TopNodes(1)
	if len(top) != 1 || top[0].Key != 1 || top[0].Count != 3 || top[0].Err != 0 {
		t.Fatalf("top node %+v", top)
	}
}

func TestSketchIgnoresBadInput(t *testing.T) {
	s := New(Options{})
	s.Observe(-1, 0, nil)
	s.Observe(math.NaN(), 0, nil)
	s.Observe(1, -1, nil)
	s.Observe(1, 0, []int{-5})
	if s.Accesses() != 1 || s.Messages() != 0 {
		t.Fatalf("accesses %d messages %d after bad input", s.Accesses(), s.Messages())
	}
}

// TestShardedMergeEqualsSingleStream is the core merge contract: any
// sharding of the stream, merged in any order, is bitwise identical to the
// single-stream sketch — including the float views derived at read time.
func TestShardedMergeEqualsSingleStream(t *testing.T) {
	stream := synthStream(7, 20, 5000)
	for _, shards := range []int{2, 3, 8} {
		single := New(Options{EpochLen: 0.5})
		feed(single, stream)
		parts := make([]*Sketch, shards)
		for i := range parts {
			parts[i] = New(Options{EpochLen: 0.5})
		}
		for i, a := range stream {
			parts[i%shards].Observe(a.at, a.client, a.nodes)
		}
		// Merge right-to-left to exercise an order other than feed order.
		merged := New(Options{EpochLen: 0.5})
		for i := len(parts) - 1; i >= 0; i-- {
			if err := merged.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !merged.Equal(single) {
			t.Fatalf("shards=%d: merged state differs from single stream", shards)
		}
		if !single.Equal(merged) {
			t.Fatalf("shards=%d: Equal not symmetric", shards)
		}
		mr, sr := merged.ClientRates(), single.ClientRates()
		for v := range sr {
			if mr[v] != sr[v] {
				t.Fatalf("shards=%d: client rate[%d] %v != %v (must be bitwise equal)", shards, v, mr[v], sr[v])
			}
		}
		md, _ := merged.Drift(nil)
		sd, _ := single.Drift(nil)
		if md.TV != sd.TV {
			t.Fatalf("shards=%d: drift %v != %v", shards, md.TV, sd.TV)
		}
	}
}

func TestMergeRejectsIncompatible(t *testing.T) {
	a := New(Options{EpochLen: 1})
	if err := a.Merge(New(Options{EpochLen: 2})); err == nil {
		t.Fatal("merged mismatched epoch lengths")
	}
	if err := a.Merge(New(Options{HalfLife: 3})); err == nil {
		t.Fatal("merged mismatched half-lives")
	}
	if err := a.Merge(New(Options{TopK: 4})); err == nil {
		t.Fatal("merged mismatched topk capacities")
	}
	if err := a.Merge(a); err == nil {
		t.Fatal("merged a sketch into itself")
	}
}

func TestEWMATracksShift(t *testing.T) {
	// Client 0 dominates early epochs, client 1 late ones: cumulative
	// totals stay balanced while the EWMA forgets the past.
	s := New(Options{EpochLen: 1, HalfLife: 1})
	for e := 0; e < 10; e++ {
		c := 0
		if e >= 5 {
			c = 1
		}
		for i := 0; i < 100; i++ {
			s.Observe(float64(e)+0.5, c, nil)
		}
	}
	rates := s.ClientRates()
	if rates[1] < 10*rates[0] {
		t.Fatalf("EWMA did not shift: rates %v", rates)
	}
	cum, _ := s.Drift(nil)
	recent, _ := s.RecentDrift(nil)
	if recent.TV <= cum.TV {
		t.Fatalf("recent drift %v should exceed cumulative %v after a shift", recent.TV, cum.TV)
	}
}

func TestEWMADecaysAcrossGaps(t *testing.T) {
	// A burst followed by a long silent gap then one access: the burst's
	// weight must have decayed by λ^gap, identical to folding the empty
	// epochs one by one.
	s := New(Options{EpochLen: 1, HalfLife: 1})
	for i := 0; i < 64; i++ {
		s.Observe(0.5, 0, nil)
	}
	s.Observe(10.5, 1, nil)
	rates := s.ClientRates()
	// Client 0: (1-λ)·64 after epoch 0, then 10 decays of λ=0.5 → 2^-11·64.
	want := 64.0 / 2048
	if math.Abs(rates[0]-want) > 1e-12 {
		t.Fatalf("rate[0] %v, want %v", rates[0], want)
	}
}

func TestSketchConcurrentObserve(t *testing.T) {
	// Concurrency safety (run under -race): total counts must add up.
	s := New(Options{})
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe(float64(i)*0.01, w, []int{w})
			}
		}(w)
	}
	wg.Wait()
	if s.Accesses() != workers*per || s.Messages() != workers*per {
		t.Fatalf("accesses %d messages %d", s.Accesses(), s.Messages())
	}
}

func TestSubCapacityRegimeMergeGuarantee(t *testing.T) {
	// With TopK smaller than the key space the summary is approximate;
	// the count−err ≤ true ≤ count guarantee must survive sharded merge.
	stream := synthStream(11, 40, 8000)
	truth := make(map[int]int64)
	parts := []*Sketch{New(Options{TopK: 8}), New(Options{TopK: 8})}
	for i, a := range stream {
		truth[a.client]++
		parts[i%2].Observe(a.at, a.client, a.nodes)
	}
	if err := parts[0].Merge(parts[1]); err != nil {
		t.Fatal(err)
	}
	for _, e := range parts[0].TopClients(0) {
		if tc := truth[e.Key]; e.Count < tc || e.Count-e.Err > tc {
			t.Fatalf("client %d: count %d err %d vs true %d", e.Key, e.Count, e.Err, tc)
		}
	}
}
