package heat

import (
	"fmt"
	"math"
	"sort"
)

// TopEntry is one heavy hitter: Count overestimates the key's true count
// by at most Err (so Count-Err ≤ true ≤ Count). Err is 0 in the exact
// regime.
type TopEntry struct {
	Key   int
	Count int64
	Err   int64
}

// TopK is a space-saving heavy-hitter sketch (Metwally–Agrawal–El Abbadi)
// over integer keys with deterministic tie-breaking: when a new key
// displaces a monitored one, the victim is the entry with the minimum
// count, ties resolved toward the minimum key. Determinism matters here
// for the same reason as everywhere else in this repo — two runs over the
// same stream must produce byte-identical summaries.
//
// While the number of distinct keys stays within the capacity the sketch
// is exact (no eviction ever happens); past capacity, every monitored
// count overestimates its key's true count by at most that entry's Err,
// and any key with true count > N/k (N observations, capacity k) is
// guaranteed to be monitored.
type TopK struct {
	k      int
	counts map[int]int64
	errs   map[int]int64
}

// NewTopK returns an empty sketch monitoring up to k keys. k ≤ 0 panics:
// the exact regime is spelled Options.TopK = 0 on the Sketch, which
// bypasses this type entirely.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic(fmt.Sprintf("heat: TopK capacity %d, want > 0", k))
	}
	return &TopK{k: k, counts: make(map[int]int64, k), errs: make(map[int]int64, k)}
}

// Add folds w observations of key into the sketch.
func (t *TopK) Add(key int, w int64) {
	if w <= 0 {
		return
	}
	if _, ok := t.counts[key]; ok {
		t.counts[key] += w
		return
	}
	if len(t.counts) < t.k {
		t.counts[key] = w
		return
	}
	victim, floor := t.minEntry()
	delete(t.counts, victim)
	delete(t.errs, victim)
	t.counts[key] = floor + w
	t.errs[key] = floor
}

// minEntry returns the monitored key with the minimum count (ties toward
// the minimum key) and its count. The scan iterates a map, but a minimum
// under a total order is independent of iteration order, so the result is
// deterministic.
func (t *TopK) minEntry() (key int, count int64) {
	key, count = math.MaxInt, math.MaxInt64
	for k2, c := range t.counts {
		if c < count || (c == count && k2 < key) {
			key, count = k2, c
		}
	}
	return key, count
}

// evictFloor bounds the true count of any key absent from the sketch: 0
// while the sketch has never been full (absent means never seen), else
// the minimum monitored count.
func (t *TopK) evictFloor() int64 {
	if len(t.counts) < t.k {
		return 0
	}
	_, c := t.minEntry()
	return c
}

// Top returns the k heaviest monitored entries (all when k ≤ 0), ordered
// by count descending with key ascending as tie-break.
func (t *TopK) Top(k int) []TopEntry {
	entries := make([]TopEntry, 0, len(t.counts))
	for key, c := range t.counts {
		entries = append(entries, TopEntry{Key: key, Count: c, Err: t.errs[key]})
	}
	sortTopEntries(entries)
	if k > 0 && len(entries) > k {
		entries = entries[:k]
	}
	return entries
}

func sortTopEntries(entries []TopEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
}

// Merge folds o into t (Agarwal et al.'s mergeable-summaries rule): a key
// absent from one side is bounded by that side's eviction floor, counts
// add, error bounds add, and the union is re-truncated to the k heaviest.
// The count-Err ≤ true ≤ count guarantee survives merging. When neither
// side ever evicted and the union fits the capacity — always true for
// shards of a netsim run with the capacity at the network size — the
// merge is exact and equals the single-stream sketch.
func (t *TopK) Merge(o *TopK) error {
	if o == nil {
		return fmt.Errorf("heat: merging nil TopK")
	}
	if t.k != o.k {
		return fmt.Errorf("heat: merging TopK capacity %d with %d", t.k, o.k)
	}
	floorT, floorO := t.evictFloor(), o.evictFloor()
	merged := make(map[int]TopEntry, len(t.counts)+len(o.counts))
	for key, c := range t.counts {
		e := TopEntry{Key: key, Count: c, Err: t.errs[key]}
		if oc, ok := o.counts[key]; ok {
			e.Count += oc
			e.Err += o.errs[key]
		} else {
			e.Count += floorO
			e.Err += floorO
		}
		merged[key] = e
	}
	for key, oc := range o.counts {
		if _, ok := t.counts[key]; ok {
			continue
		}
		merged[key] = TopEntry{Key: key, Count: oc + floorT, Err: o.errs[key] + floorT}
	}
	entries := make([]TopEntry, 0, len(merged))
	for _, e := range merged {
		entries = append(entries, e)
	}
	sortTopEntries(entries)
	if len(entries) > t.k {
		entries = entries[:t.k]
	}
	t.counts = make(map[int]int64, t.k)
	t.errs = make(map[int]int64, t.k)
	for _, e := range entries {
		t.counts[e.Key] = e.Count
		if e.Err != 0 {
			t.errs[e.Key] = e.Err
		}
	}
	return nil
}

// Equal reports whether two sketches hold identical entries and bounds.
func (t *TopK) Equal(o *TopK) bool {
	if o == nil || t.k != o.k || len(t.counts) != len(o.counts) {
		return false
	}
	for key, c := range t.counts {
		if o.counts[key] != c || o.errs[key] != t.errs[key] {
			return false
		}
	}
	return true
}
