package heat

import (
	"math/rand"
	"testing"
)

// BenchmarkHeatObserve measures the per-access cost of the sketch hot path
// in the exact (dense-counter) configuration netsim uses: one mutex
// round-trip plus integer increments, no per-access allocation once the
// epoch cells exist.
func BenchmarkHeatObserve(b *testing.B) {
	s := New(Options{EpochLen: 1})
	rng := rand.New(rand.NewSource(1))
	const n = 64
	nodes := [][]int{}
	for i := 0; i < 256; i++ {
		nodes = append(nodes, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})
	}
	// Pre-touch every epoch the loop will hit so steady-state cost, not
	// cell allocation, is measured.
	for e := 0; e < 64; e++ {
		s.Observe(float64(e), 0, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i%64)+0.5, i%n, nodes[i%len(nodes)])
	}
}

// BenchmarkDriftScore measures the read-side cost of a full drift report
// (EWMA fold over epochs plus the TV scan) at a realistic sketch size.
func BenchmarkDriftScore(b *testing.B) {
	s := New(Options{EpochLen: 1, HalfLife: 8})
	rng := rand.New(rand.NewSource(1))
	const n = 256
	for i := 0; i < 100000; i++ {
		s.Observe(rng.Float64()*200, rng.Intn(n), nil)
	}
	plan := make([]float64, n)
	for i := range plan {
		plan[i] = 1 + rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.RecentDrift(plan)
		if err != nil {
			b.Fatal(err)
		}
		if r.TV < 0 || r.TV > 1 {
			b.Fatalf("TV %v", r.TV)
		}
	}
}
