package heat

import (
	"fmt"
	"math"
	"strings"
)

// DriftReport quantifies how far a live demand estimate has moved from the
// demand vector a placement was solved against.
type DriftReport struct {
	// TV is the total-variation distance between the normalized live and
	// plan demand distributions: ½·Σ_v |live_v − plan_v| ∈ [0, 1]. It is
	// the largest difference in probability the two distributions assign
	// to any set of clients — the natural "how stale is the plan" scalar.
	TV float64
	// PerClient is each client's contribution ½·|live_v − plan_v| to TV.
	PerClient []float64
	// Top is the client with the largest contribution (minimum index on
	// ties), -1 when TV is 0.
	Top int
	// TopShare is PerClient[Top]/TV — how concentrated the drift is. 0
	// when TV is 0.
	TopShare float64
	// LiveWeight is the total live mass behind the estimate (accesses for
	// cumulative drift, EWMA mass for recent drift). A report with tiny
	// LiveWeight is an estimate of nothing; thresholds should require a
	// floor.
	LiveWeight float64
}

// Drift compares a live demand estimate against a plan demand vector.
// Both are non-negative weight vectors, normalized internally; they need
// not share a length (the shorter is zero-padded) and plan may be nil for
// uniform demand over the live index space. A live vector with zero total
// mass yields a zero report: no observations is "no evidence of drift",
// not maximal drift.
func Drift(live, plan []float64) (*DriftReport, error) {
	n := len(live)
	if len(plan) > n {
		n = len(plan)
	}
	if n == 0 {
		return &DriftReport{Top: -1}, nil
	}
	liveSum, err := massOf("live", live)
	if err != nil {
		return nil, err
	}
	r := &DriftReport{PerClient: make([]float64, n), Top: -1, LiveWeight: liveSum}
	if liveSum == 0 {
		return r, nil
	}
	var planSum float64
	if plan == nil {
		planSum = 1 // uniform: each of the n clients gets 1/n
	} else {
		planSum, err = massOf("plan", plan)
		if err != nil {
			return nil, err
		}
		if planSum == 0 {
			return nil, fmt.Errorf("heat: plan demand has zero mass")
		}
	}
	at := func(s []float64, i int) float64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	for v := 0; v < n; v++ {
		p := 1 / float64(n)
		if plan != nil {
			p = at(plan, v) / planSum
		}
		d := math.Abs(at(live, v)/liveSum-p) / 2
		r.PerClient[v] = d
		r.TV += d
		if r.Top < 0 || d > r.PerClient[r.Top] {
			r.Top = v
		}
	}
	if r.TV > 0 {
		r.TopShare = r.PerClient[r.Top] / r.TV
	} else {
		r.Top = -1
	}
	return r, nil
}

func massOf(what string, w []float64) (float64, error) {
	sum := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("heat: %s demand weight of client %d is %v", what, i, x)
		}
		sum += x
	}
	return sum, nil
}

// Drift returns the cumulative drift of the sketch's exact access totals
// against the plan demand vector (nil for uniform). Because totals are
// exact, this is the auditable form: when the stream is netsim running
// exactly the plan-time demand, TV is bounded by n/(2·total) — the
// largest-remainder apportionment error — and is exactly 0 for uniform
// demand.
func (s *Sketch) Drift(plan []float64) (*DriftReport, error) {
	totals := s.ClientTotals()
	live := make([]float64, len(totals))
	for i, c := range totals {
		live[i] = float64(c)
	}
	return Drift(live, plan)
}

// RecentDrift returns the drift of the EWMA rate estimate against the
// plan demand vector (nil for uniform): the alerting form, which forgets
// old epochs with the configured half-life and so reacts to a workload
// shift within a few epochs instead of waiting for cumulative totals to
// catch up.
func (s *Sketch) RecentDrift(plan []float64) (*DriftReport, error) {
	return Drift(s.ClientRates(), plan)
}

// Format renders the report as a short human-readable block.
func (r *DriftReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "drift TV %.4f (live weight %.6g)\n", r.TV, r.LiveWeight)
	if r.Top >= 0 {
		fmt.Fprintf(&b, "top contributor: client %d (%.0f%% of drift)\n", r.Top, r.TopShare*100)
	}
	return b.String()
}
