// Package heat turns a stream of quorum accesses into deterministic,
// mergeable workload sketches: per-node EWMA rate estimators over virtual
// time, heavy-hitter summaries of hot clients and hot nodes, and a drift
// score (total-variation distance with per-client contributions) between
// the live demand estimate and the demand vector the current placement was
// solved against. It is the observability substrate for workload-driven
// re-planning: the solver's objective is only optimal for the demand it saw
// (internal/agg), so a placement goes stale exactly as fast as the demand
// drifts — heat measures that staleness while the placement is serving.
//
// Today the stream comes from internal/netsim (Config.Heat or
// netsim.SetDefaultHeat); the future quorumd ingestion path feeds the same
// Observe call from real access logs.
//
// # Determinism and merge contract
//
// A Sketch follows the same discipline as obs.LogHist and internal/agg:
// all state is exact integer counts keyed by virtual-time epoch, so
// observation order never matters, and feeding the same accesses through
// any sharding of sketches followed by Merge yields state bitwise
// identical to a single-stream sketch (int64 addition is associative and
// commutative). Derived floating-point views (Rates, Drift) are computed
// at read time by folding epochs in ascending index order, so equal state
// implies bitwise-equal reads. The only approximate component is the
// optional sub-capacity heavy-hitter sketch (see TopK); with the default
// exact configuration every view is exact.
package heat

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Options configures a Sketch.
type Options struct {
	// EpochLen is the virtual-time length of one epoch bucket. Rates are
	// estimated per epoch, so this is the resolution of the EWMA estimator.
	// ≤ 0 means the default of 1 virtual-time unit.
	EpochLen float64
	// HalfLife is the EWMA half-life in epochs: an epoch's weight halves
	// every HalfLife epochs of virtual time. ≤ 0 means the default of 8.
	HalfLife float64
	// TopK bounds the heavy-hitter summaries. 0 (the default) keeps exact
	// dense per-key counts — the right choice while keys are network node
	// indices, as in netsim. A positive value switches to a space-saving
	// sketch of that capacity for unbounded key spaces (client IDs in a
	// real deployment); see TopK for its error and merge guarantees.
	TopK int
}

const (
	defaultEpochLen = 1.0
	defaultHalfLife = 8.0
)

// epochCell holds the exact per-client and per-node counts of one epoch.
type epochCell struct {
	clients []int64 // accesses issued, by client
	nodes   []int64 // messages received, by node
}

// Sketch accumulates an access stream into mergeable workload sketches.
// It is safe for concurrent use; a process-wide default can be installed
// with netsim.SetDefaultHeat the way SetDefaultRecorder installs tracing.
type Sketch struct {
	epochLen float64
	halfLife float64
	topK     int

	mu           sync.Mutex
	epochs       map[int64]*epochCell
	lastIdx      int64      // cache: epoch index of the most recent Observe
	lastCell     *epochCell // cache: its cell (stream times are near-monotone)
	accesses     int64
	messages     int64
	clientTotals []int64
	nodeTotals   []int64
	// Streaming heavy hitters, only in the sub-capacity (TopK > 0) regime;
	// the exact regime derives Top* views from the dense totals instead.
	hotClients *TopK
	hotNodes   *TopK
}

// New returns an empty sketch. Client and node index spaces grow on
// demand, so one sketch can absorb streams from differently sized runs
// (the qppeval default-sketch path).
func New(o Options) *Sketch {
	if o.EpochLen <= 0 {
		o.EpochLen = defaultEpochLen
	}
	if o.HalfLife <= 0 {
		o.HalfLife = defaultHalfLife
	}
	s := &Sketch{
		epochLen: o.EpochLen,
		halfLife: o.HalfLife,
		topK:     o.TopK,
		epochs:   make(map[int64]*epochCell),
		lastIdx:  math.MinInt64,
	}
	if o.TopK > 0 {
		s.hotClients = NewTopK(o.TopK)
		s.hotNodes = NewTopK(o.TopK)
	}
	return s
}

// grow extends a counter slice to cover index i.
func grow(s []int64, i int) []int64 {
	for len(s) <= i {
		s = append(s, 0)
	}
	return s
}

// Observe folds one access into the sketch: client issued an access at
// virtual time at whose messages hit the given nodes (one entry per
// contacted quorum member; duplicates count once per message, matching
// netsim's NodeHits). Accesses are attributed to the epoch of their issue
// time — that is when the load lands on the nodes.
func (s *Sketch) Observe(at float64, client int, nodes []int) {
	if client < 0 || at < 0 || math.IsNaN(at) {
		return
	}
	idx := int64(at / s.epochLen)
	s.mu.Lock()
	cell := s.lastCell
	if cell == nil || idx != s.lastIdx {
		cell = s.epochs[idx]
		if cell == nil {
			cell = &epochCell{}
			s.epochs[idx] = cell
		}
		s.lastIdx, s.lastCell = idx, cell
	}
	cell.clients = grow(cell.clients, client)
	cell.clients[client]++
	s.clientTotals = grow(s.clientTotals, client)
	s.clientTotals[client]++
	s.accesses++
	if s.hotClients != nil {
		s.hotClients.Add(client, 1)
	}
	for _, v := range nodes {
		if v < 0 {
			continue
		}
		cell.nodes = grow(cell.nodes, v)
		cell.nodes[v]++
		s.nodeTotals = grow(s.nodeTotals, v)
		s.nodeTotals[v]++
		s.messages++
		if s.hotNodes != nil {
			s.hotNodes.Add(v, 1)
		}
	}
	s.mu.Unlock()
}

// Accesses returns the total number of observed accesses.
func (s *Sketch) Accesses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accesses
}

// Messages returns the total number of observed node messages.
func (s *Sketch) Messages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.messages
}

// Epochs returns the number of distinct epochs with observations.
func (s *Sketch) Epochs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.epochs)
}

// ClientTotals returns a copy of the exact cumulative per-client access
// counts.
func (s *Sketch) ClientTotals() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.clientTotals...)
}

// NodeTotals returns a copy of the exact cumulative per-node message
// counts.
func (s *Sketch) NodeTotals() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.nodeTotals...)
}

// sortedEpochIdx returns the present epoch indices in ascending order.
// Callers hold s.mu.
func (s *Sketch) sortedEpochIdx() []int64 {
	idx := make([]int64, 0, len(s.epochs))
	for e := range s.epochs {
		idx = append(idx, e)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx
}

// ewma folds per-epoch counts into EWMA rates as of the latest observed
// epoch. pick selects the counter slice of a cell. Callers hold s.mu.
func (s *Sketch) ewma(pick func(*epochCell) []int64) []float64 {
	idx := s.sortedEpochIdx()
	if len(idx) == 0 {
		return nil
	}
	// λ per epoch so that weight halves every halfLife epochs. The fold
	// visits only present epochs in ascending order; the g−1 empty epochs
	// inside a gap of g decay every rate by λ^(g−1), exactly what folding
	// g−1 zero-count epochs would do (the present epoch's own update
	// contributes the remaining λ). The iteration order is deterministic
	// (sorted), so equal state yields bitwise-equal rates.
	lambda := math.Pow(0.5, 1/s.halfLife)
	var rates []float64
	prev := idx[0]
	for _, e := range idx {
		if gap := e - prev; gap > 1 {
			decay := math.Pow(lambda, float64(gap-1))
			for i := range rates {
				rates[i] *= decay
			}
		}
		counts := pick(s.epochs[e])
		for len(rates) < len(counts) {
			rates = append(rates, 0)
		}
		for i, c := range counts {
			rates[i] = lambda*rates[i] + (1-lambda)*float64(c)
		}
		// Indices past len(counts) saw zero observations this epoch.
		for i := len(counts); i < len(rates); i++ {
			rates[i] *= lambda
		}
		prev = e
	}
	return rates
}

// ClientRates returns the per-client EWMA access-rate estimate (accesses
// per epoch) as of the latest observed epoch.
func (s *Sketch) ClientRates() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ewma(func(c *epochCell) []int64 { return c.clients })
}

// NodeRates returns the per-node EWMA message-rate estimate (messages per
// epoch) as of the latest observed epoch.
func (s *Sketch) NodeRates() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ewma(func(c *epochCell) []int64 { return c.nodes })
}

// topFromTotals builds the exact heavy-hitter view from dense totals.
func topFromTotals(totals []int64, k int) []TopEntry {
	entries := make([]TopEntry, 0, len(totals))
	for key, c := range totals {
		if c > 0 {
			entries = append(entries, TopEntry{Key: key, Count: c})
		}
	}
	sortTopEntries(entries)
	if k > 0 && len(entries) > k {
		entries = entries[:k]
	}
	return entries
}

// TopClients returns the k heaviest clients by access count (all when
// k ≤ 0), ordered by count descending with index ascending as tie-break.
// Exact in the default configuration; within the TopK guarantees otherwise.
func (s *Sketch) TopClients(k int) []TopEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hotClients != nil {
		return s.hotClients.Top(k)
	}
	return topFromTotals(s.clientTotals, k)
}

// TopNodes returns the k heaviest nodes by message count (all when k ≤ 0).
func (s *Sketch) TopNodes(k int) []TopEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hotNodes != nil {
		return s.hotNodes.Top(k)
	}
	return topFromTotals(s.nodeTotals, k)
}

// Merge folds o into s. Both sketches must share EpochLen, HalfLife and
// TopK configuration; their index spaces may differ (the merged sketch
// covers the union). Merging shards of a partitioned stream yields state
// bitwise identical to observing the whole stream in one sketch, in any
// merge order, except for the sub-capacity TopK regime whose guarantees
// are documented on TopK.Merge.
func (s *Sketch) Merge(o *Sketch) error {
	return s.MergeShifted(o, 0)
}

// EpochLen returns the resolved virtual-time length of one epoch bucket.
func (s *Sketch) EpochLen() float64 { return s.epochLen }

// MergeShifted is Merge with o's epoch indices displaced by shift epochs:
// an observation o recorded in its epoch e lands in s's epoch e+shift.
// Ingesting sketches produced by simulation runs that each start at
// virtual time zero (netsim) into a long-lived daemon sketch needs the
// offset, or every run's epochs would collapse onto the same indices.
// Totals and heavy-hitter summaries are time-free and merge unchanged, so
// with shift = 0 the result is bitwise identical to Merge.
func (s *Sketch) MergeShifted(o *Sketch, shift int64) error {
	if s == o {
		return fmt.Errorf("heat: cannot merge a sketch into itself")
	}
	if s.epochLen != o.epochLen || s.halfLife != o.halfLife || s.topK != o.topK {
		return fmt.Errorf("heat: merging incompatible sketches (epoch %v/%v, half-life %v/%v, topk %d/%d)",
			s.epochLen, o.epochLen, s.halfLife, o.halfLife, s.topK, o.topK)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for e, oc := range o.epochs {
		c := s.epochs[e+shift]
		if c == nil {
			c = &epochCell{}
			s.epochs[e+shift] = c
		}
		c.clients = addCounts(c.clients, oc.clients)
		c.nodes = addCounts(c.nodes, oc.nodes)
	}
	s.lastIdx, s.lastCell = math.MinInt64, nil
	s.clientTotals = addCounts(s.clientTotals, o.clientTotals)
	s.nodeTotals = addCounts(s.nodeTotals, o.nodeTotals)
	s.accesses += o.accesses
	s.messages += o.messages
	if s.hotClients != nil {
		if err := s.hotClients.Merge(o.hotClients); err != nil {
			return err
		}
		if err := s.hotNodes.Merge(o.hotNodes); err != nil {
			return err
		}
	}
	return nil
}

// MaxEpoch returns the largest epoch index holding observations and whether
// any epoch exists at all. A daemon ingesting run-local sketches uses it to
// advance its epoch base between runs.
func (s *Sketch) MaxEpoch() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	max, ok := int64(math.MinInt64), false
	for e := range s.epochs {
		if !ok || e > max {
			max, ok = e, true
		}
	}
	return max, ok
}

// NewShard returns an empty sketch with this sketch's configuration, the
// shape Merge requires. Parallel observers (the sharded netsim engine)
// give each worker a shard and fold them back with Merge after the join;
// the merge contract above makes the result bitwise identical to
// single-stream observation.
func (s *Sketch) NewShard() *Sketch {
	return New(Options{EpochLen: s.epochLen, HalfLife: s.halfLife, TopK: s.topK})
}

func addCounts(dst, src []int64) []int64 {
	dst = grow(dst, len(src)-1)
	for i, c := range src {
		dst[i] += c
	}
	return dst
}

// Equal reports whether two sketches hold identical state: same
// configuration, same exact counts in every epoch, and identical
// heavy-hitter summaries. Zero-padded tails of the index spaces are
// ignored, so a sketch that merely grew further compares equal.
func (s *Sketch) Equal(o *Sketch) bool {
	if s.epochLen != o.epochLen || s.halfLife != o.halfLife || s.topK != o.topK {
		return false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.accesses != o.accesses || s.messages != o.messages {
		return false
	}
	if !countsEqual(s.clientTotals, o.clientTotals) || !countsEqual(s.nodeTotals, o.nodeTotals) {
		return false
	}
	if len(s.epochs) != len(o.epochs) {
		return false
	}
	for e, c := range s.epochs {
		oc := o.epochs[e]
		if oc == nil || !countsEqual(c.clients, oc.clients) || !countsEqual(c.nodes, oc.nodes) {
			return false
		}
	}
	if s.hotClients != nil {
		if !s.hotClients.Equal(o.hotClients) || !s.hotNodes.Equal(o.hotNodes) {
			return false
		}
	}
	return true
}

func countsEqual(a, b []int64) bool {
	long, short := a, b
	if len(b) > len(a) {
		long, short = b, a
	}
	for i, c := range short {
		if c != long[i] {
			return false
		}
	}
	for _, c := range long[len(short):] {
		if c != 0 {
			return false
		}
	}
	return true
}
