package quorum

import "fmt"

// Finite-field arithmetic for the projective-plane construction. PG(2,q)
// exists for every prime power q = p^k, not just primes: its points and
// lines are built from GF(q), which for k > 1 is the quotient of GF(p)[x]
// by an irreducible polynomial of degree k. Field elements are represented
// as integers 0..q-1 whose base-p digits are the polynomial coefficients
// (element e encodes Σ digit_i(e)·x^i), so 0 and 1 are the additive and
// multiplicative identities under this encoding.

// gfField is GF(p^k) with precomputed addition and multiplication tables
// (q ≤ a few dozen for every system this package builds, so q² ints are
// cheap and make the line construction branch-free).
type gfField struct {
	q   int
	add []int // add[a*q+b] = a + b
	mul []int // mul[a*q+b] = a · b
}

// primePower factors q as p^k for prime p, or reports ok = false.
func primePower(q int) (p, k int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	p = q
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			p = d
			break
		}
	}
	for n := q; n > 1; n /= p {
		if n%p != 0 {
			return 0, 0, false
		}
		k++
	}
	return p, k, true
}

// newGF builds GF(q) for a prime power q, or returns an error naming the
// restriction when q is not one.
func newGF(q int) (*gfField, error) {
	p, k, ok := primePower(q)
	if !ok {
		return nil, fmt.Errorf("quorum: %d is not a prime power (no finite field, and no known projective plane, of that order)", q)
	}
	f := &gfField{q: q, add: make([]int, q*q), mul: make([]int, q*q)}
	if k == 1 {
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				f.add[a*q+b] = (a + b) % q
				f.mul[a*q+b] = (a * b) % q
			}
		}
		return f, nil
	}
	irr := findIrreducible(p, k)
	for a := 0; a < q; a++ {
		da := digits(a, p, k)
		for b := 0; b < q; b++ {
			db := digits(b, p, k)
			sum := make([]int, k)
			for i := 0; i < k; i++ {
				sum[i] = (da[i] + db[i]) % p
			}
			f.add[a*q+b] = undigits(sum, p)
			prod := polyMulMod(da, db, irr, p)
			f.mul[a*q+b] = undigits(prod, p)
		}
	}
	return f, nil
}

// digits returns the k base-p digits of e, least significant first
// (coefficients of the polynomial representation).
func digits(e, p, k int) []int {
	d := make([]int, k)
	for i := 0; i < k; i++ {
		d[i] = e % p
		e /= p
	}
	return d
}

// undigits inverts digits.
func undigits(d []int, p int) int {
	e := 0
	for i := len(d) - 1; i >= 0; i-- {
		e = e*p + d[i]
	}
	return e
}

// polyMulMod multiplies two polynomials over GF(p) and reduces modulo the
// monic polynomial irr (len k+1, irr[k] = 1), returning k coefficients.
func polyMulMod(a, b, irr []int, p int) []int {
	k := len(irr) - 1
	prod := make([]int, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			prod[i+j] = (prod[i+j] + ai*bj) % p
		}
	}
	// Reduce: x^k ≡ -(irr[0] + irr[1]x + ... + irr[k-1]x^{k-1}).
	for d := len(prod) - 1; d >= k; d-- {
		c := prod[d]
		if c == 0 {
			continue
		}
		prod[d] = 0
		for i := 0; i < k; i++ {
			prod[d-k+i] = ((prod[d-k+i]-c*irr[i])%p + p) % p
		}
	}
	return prod[:k]
}

// findIrreducible returns a monic irreducible polynomial of degree k over
// GF(p) as k+1 coefficients (constant term first, leading 1 last), found by
// enumerating candidates and trial-dividing by every lower-degree monic
// polynomial. Irreducible polynomials exist for every (p, k), and the search
// space p^k is tiny for the field sizes this package constructs.
func findIrreducible(p, k int) []int {
	for c := 0; c < intPow(p, k); c++ {
		cand := append(digits(c, p, k), 1)
		if polyIrreducible(cand, p) {
			return cand
		}
	}
	panic(fmt.Sprintf("quorum: no irreducible polynomial of degree %d over GF(%d)", k, p)) // unreachable
}

// polyIrreducible reports whether the monic polynomial f (degree ≥ 1) has no
// monic divisor of degree 1..deg(f)/2 over GF(p).
func polyIrreducible(f []int, p int) bool {
	k := len(f) - 1
	for d := 1; 2*d <= k; d++ {
		for c := 0; c < intPow(p, d); c++ {
			div := append(digits(c, p, d), 1)
			if polyDivides(div, f, p) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether monic div divides f over GF(p).
func polyDivides(div, f []int, p int) bool {
	rem := append([]int(nil), f...)
	d := len(div) - 1
	for i := len(rem) - 1; i >= d; i-- {
		c := rem[i]
		if c == 0 {
			continue
		}
		for j := 0; j <= d; j++ {
			rem[i-d+j] = ((rem[i-d+j]-c*div[j])%p + p) % p
		}
	}
	for _, c := range rem[:d] {
		if c != 0 {
			return false
		}
	}
	return true
}

func intPow(p, k int) int {
	out := 1
	for i := 0; i < k; i++ {
		out *= p
	}
	return out
}
