package quorum

import (
	"fmt"
	"math"
	"math/rand"
)

// This file provides the classical quality measures for quorum systems that
// the paper's introduction builds on (load, availability, resilience; see
// Naor & Wool, "The load, capacity, and availability of quorum systems" —
// reference [18] of the paper). The placement algorithms take the quorum
// system as given; these measures are what one optimizes when *choosing*
// the input system, and the evaluation uses them to characterize the
// systems placed.

// maxExactAvailability bounds the exact 2^n failure-set enumeration.
const maxExactAvailability = 20

// FailureProbability returns the probability that no quorum is fully alive
// when every element fails independently with probability p — the system's
// failure probability F_p(Q). It enumerates all 2^n failure patterns, so
// it requires universe ≤ 20; use EstimateFailureProbability beyond that.
func FailureProbability(s *System, p float64) (float64, error) {
	n := s.universe
	if n > maxExactAvailability {
		return 0, fmt.Errorf("quorum: universe %d exceeds exact availability limit %d", n, maxExactAvailability)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("quorum: failure probability %v outside [0,1]", p)
	}
	masks := s.quorumMasks()
	total := 0.0
	for alive := 0; alive < 1<<uint(n); alive++ {
		survives := false
		for _, qm := range masks {
			if uint64(alive)&qm == qm {
				survives = true
				break
			}
		}
		if survives {
			continue
		}
		k := popcount(uint64(alive))
		total += math.Pow(1-p, float64(k)) * math.Pow(p, float64(n-k))
	}
	return total, nil
}

// EstimateFailureProbability estimates F_p(Q) by Monte Carlo with the given
// number of samples.
func EstimateFailureProbability(s *System, p float64, samples int, rng *rand.Rand) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("quorum: failure probability %v outside [0,1]", p)
	}
	if samples <= 0 {
		return 0, fmt.Errorf("quorum: need a positive sample count, got %d", samples)
	}
	if s.universe > 64 {
		return 0, fmt.Errorf("quorum: universe %d exceeds the 64-element sampling limit", s.universe)
	}
	masks := s.quorumMasks()
	failed := 0
	for i := 0; i < samples; i++ {
		var alive uint64
		for u := 0; u < s.universe; u++ {
			if rng.Float64() >= p {
				alive |= 1 << uint(u)
			}
		}
		survives := false
		for _, qm := range masks {
			if alive&qm == qm {
				survives = true
				break
			}
		}
		if !survives {
			failed++
		}
	}
	return float64(failed) / float64(samples), nil
}

// Resilience returns the largest f such that every set of f element
// failures still leaves some quorum fully alive. Equivalently it is
// (minimum hitting set of the quorums) − 1: the adversary must hit every
// quorum to kill the system. Computed by branch and bound over elements,
// practical for the moderate systems in this library.
func Resilience(s *System) int {
	if s.universe > 63 {
		// The branch and bound uses uint64 masks.
		panic(fmt.Sprintf("quorum: resilience computation limited to 63 elements, got %d", s.universe))
	}
	masks := s.quorumMasks()
	best := s.universe + 1 // upper bound on the hitting set size
	var rec func(hit uint64, count int, from int)
	rec = func(hit uint64, count int, from int) {
		if count >= best {
			return
		}
		// Find the first quorum not yet hit.
		var missing uint64
		found := false
		for _, qm := range masks {
			if qm&hit == 0 {
				missing = qm
				found = true
				break
			}
		}
		if !found {
			best = count
			return
		}
		// Branch on which element of the missing quorum to add.
		for u := 0; u < s.universe; u++ {
			if missing&(1<<uint(u)) != 0 {
				rec(hit|1<<uint(u), count+1, from)
			}
		}
	}
	rec(0, 0, 0)
	return best - 1
}

// MinQuorumSize returns c(S), the cardinality of the smallest quorum.
func MinQuorumSize(s *System) int {
	min := len(s.quorums[0])
	for _, q := range s.quorums[1:] {
		if len(q) < min {
			min = len(q)
		}
	}
	return min
}

// LoadLowerBound returns the Naor–Wool lower bound on the load of any
// access strategy: L(S) ≥ max(1/c(S), c(S)/n).
func LoadLowerBound(s *System) float64 {
	c := float64(MinQuorumSize(s))
	n := float64(s.universe)
	return math.Max(1/c, c/n)
}

// quorumMasks returns each quorum as a bitmask over elements. Only valid
// for universes ≤ 64.
func (s *System) quorumMasks() []uint64 {
	masks := make([]uint64, len(s.quorums))
	for i, q := range s.quorums {
		var m uint64
		for _, u := range q {
			m |= 1 << uint(u)
		}
		masks[i] = m
	}
	return masks
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
