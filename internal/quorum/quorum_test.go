package quorum

import (
	"math"
	"strings"
	"testing"
)

func TestNewSystemValidation(t *testing.T) {
	cases := []struct {
		name     string
		universe int
		quorums  [][]int
		wantErr  string
	}{
		{"valid pair", 3, [][]int{{0, 1}, {1, 2}}, ""},
		{"zero universe", 0, [][]int{{0}}, "must be positive"},
		{"no quorums", 3, nil, "no quorums"},
		{"empty quorum", 3, [][]int{{0, 1}, {}}, "is empty"},
		{"out of range", 3, [][]int{{0, 3}}, "outside universe"},
		{"negative element", 3, [][]int{{-1, 0}}, "outside universe"},
		{"duplicate element", 3, [][]int{{0, 0, 1}}, "duplicate"},
		{"non-intersecting", 4, [][]int{{0, 1}, {2, 3}}, "do not intersect"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSystem("test", tc.universe, tc.quorums)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("NewSystem = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("NewSystem = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewSystemCopiesAndSorts(t *testing.T) {
	input := [][]int{{2, 0}, {0, 1}}
	s, err := NewSystem("t", 3, input)
	if err != nil {
		t.Fatal(err)
	}
	q := s.Quorum(0)
	if q[0] != 0 || q[1] != 2 {
		t.Fatalf("quorum 0 = %v, want sorted [0 2]", q)
	}
	input[0][0] = 99 // mutating the input must not affect the system
	if s.Quorum(0)[0] == 99 || s.Quorum(0)[1] == 99 {
		t.Fatal("NewSystem did not copy quorum slices")
	}
}

func TestGridShape(t *testing.T) {
	for k := 1; k <= 5; k++ {
		s := Grid(k)
		if s.Universe() != k*k {
			t.Fatalf("k=%d: universe = %d, want %d", k, s.Universe(), k*k)
		}
		if s.NumQuorums() != k*k {
			t.Fatalf("k=%d: quorums = %d, want %d", k, s.NumQuorums(), k*k)
		}
		for i := 0; i < s.NumQuorums(); i++ {
			if len(s.Quorum(i)) != 2*k-1 {
				t.Fatalf("k=%d: quorum %d has %d elements, want %d", k, i, len(s.Quorum(i)), 2*k-1)
			}
		}
	}
}

func TestGridQuorumContents(t *testing.T) {
	s := Grid(3)
	// Quorum Q_{1,2} = row 1 ∪ column 2 = {3,4,5} ∪ {2,8}.
	q := s.Quorum(1*3 + 2)
	want := []int{2, 3, 4, 5, 8}
	if len(q) != len(want) {
		t.Fatalf("quorum = %v, want %v", q, want)
	}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("quorum = %v, want %v", q, want)
		}
	}
}

func TestMajorityShape(t *testing.T) {
	s := Majority(5, 3)
	if s.Universe() != 5 || s.NumQuorums() != 10 { // C(5,3)
		t.Fatalf("universe=%d quorums=%d, want 5, 10", s.Universe(), s.NumQuorums())
	}
	for i := 0; i < s.NumQuorums(); i++ {
		if len(s.Quorum(i)) != 3 {
			t.Fatalf("quorum %d has %d elements, want 3", i, len(s.Quorum(i)))
		}
	}
}

func TestMajorityGeneralizedThreshold(t *testing.T) {
	// t = 4 of 5 is also a valid threshold system (generalization in §4.2).
	s := Majority(5, 4)
	if s.NumQuorums() != 5 {
		t.Fatalf("quorums = %d, want 5", s.NumQuorums())
	}
}

func TestMajorityPanicsOnBadThreshold(t *testing.T) {
	for _, tc := range []struct{ n, th int }{{4, 2}, {5, 2}, {5, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Majority(%d,%d) did not panic", tc.n, tc.th)
				}
			}()
			Majority(tc.n, tc.th)
		}()
	}
}

func TestAllConstructionsIntersect(t *testing.T) {
	systems := []*System{
		Grid(2), Grid(3), Grid(4),
		Majority(4, 3), Majority(5, 3), Majority(7, 4),
		Singleton(),
		Star(5),
		Wheel(5),
		FPP(2), FPP(3), FPP(5),
		CrumblingWalls([]int{2, 3, 2}),
		CrumblingWalls([]int{1, 2}),
		Tree(1), Tree(2), Tree(3),
		WeightedMajority([]int{1, 1, 1, 2, 3}),
	}
	for _, s := range systems {
		// NewSystem already verifies, but make the check explicit so a
		// regression in VerifyIntersection itself is caught.
		if err := s.VerifyIntersection(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestFPPShape(t *testing.T) {
	for _, q := range []int{2, 3, 5} {
		s := FPP(q)
		n := q*q + q + 1
		if s.Universe() != n || s.NumQuorums() != n {
			t.Fatalf("q=%d: universe=%d quorums=%d, want %d, %d", q, s.Universe(), s.NumQuorums(), n, n)
		}
		for i := 0; i < s.NumQuorums(); i++ {
			if len(s.Quorum(i)) != q+1 {
				t.Fatalf("q=%d: line %d has %d points, want %d", q, i, len(s.Quorum(i)), q+1)
			}
		}
	}
}

// TestFPPPairwiseIntersectionIsSingle verifies the projective-plane property
// that distinct lines meet in exactly one point, giving optimal load.
func TestFPPPairwiseIntersectionIsSingle(t *testing.T) {
	s := FPP(3)
	for i := 0; i < s.NumQuorums(); i++ {
		for j := i + 1; j < s.NumQuorums(); j++ {
			count := 0
			for _, u := range s.Quorum(i) {
				if s.Contains(j, u) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("lines %d and %d share %d points, want 1", i, j, count)
			}
		}
	}
}

func TestTreeQuorumCounts(t *testing.T) {
	// Height 1 (3 nodes): quorums are {0,1}, {0,2}, {1,2}.
	s := Tree(1)
	if s.Universe() != 3 || s.NumQuorums() != 3 {
		t.Fatalf("universe=%d quorums=%d, want 3, 3", s.Universe(), s.NumQuorums())
	}
}

func TestWeightedMajorityMinimal(t *testing.T) {
	// Weights 3,1,1 (total 5): majorities need weight >= 3, so {0} alone is
	// a quorum; minimality should exclude any superset of {0}.
	s := WeightedMajority([]int{3, 1, 1})
	for i := 0; i < s.NumQuorums(); i++ {
		q := s.Quorum(i)
		if len(q) > 1 && q[0] == 0 {
			t.Fatalf("non-minimal quorum %v retained", q)
		}
	}
	// {1,2} has weight 2 < 2.5, not a quorum; so the only quorum is {0}.
	if s.NumQuorums() != 1 || len(s.Quorum(0)) != 1 || s.Quorum(0)[0] != 0 {
		t.Fatalf("quorums = %v, want just {0}", s.Quorums())
	}
}

func TestStrategyValidation(t *testing.T) {
	if _, err := NewStrategy([]float64{0.5, 0.5}); err != nil {
		t.Fatalf("valid strategy rejected: %v", err)
	}
	for _, bad := range [][]float64{
		{0.5, 0.6},
		{-0.1, 1.1},
		{math.NaN(), 1},
		{math.Inf(1), 0},
	} {
		if _, err := NewStrategy(bad); err == nil {
			t.Errorf("NewStrategy(%v) accepted, want error", bad)
		}
	}
}

func TestUniformStrategy(t *testing.T) {
	st := Uniform(4)
	if st.Len() != 4 {
		t.Fatalf("Len = %d, want 4", st.Len())
	}
	for i := 0; i < 4; i++ {
		if st.P(i) != 0.25 {
			t.Fatalf("P(%d) = %v, want 0.25", i, st.P(i))
		}
	}
}

func TestLoads(t *testing.T) {
	// Star on 3 elements: quorums {0,1}, {0,2}; uniform strategy puts load
	// 1 on the hub and 0.5 on each leaf.
	s := Star(3)
	loads, err := s.Loads(Uniform(s.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0.5}
	for i := range want {
		if math.Abs(loads[i]-want[i]) > 1e-12 {
			t.Fatalf("loads = %v, want %v", loads, want)
		}
	}
	maxLoad, err := s.MaxLoad(Uniform(s.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	if maxLoad != 1 {
		t.Fatalf("MaxLoad = %v, want 1", maxLoad)
	}
}

func TestLoadsStrategyLengthMismatch(t *testing.T) {
	s := Star(3)
	if _, err := s.Loads(Uniform(5)); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

// TestGridUniformLoad verifies the §4.1 claim that the uniform strategy on
// the Grid yields equal loads: each element is in 2k-1 of the k² quorums,
// so load(u) = (2k-1)/k².
func TestGridUniformLoad(t *testing.T) {
	for k := 2; k <= 4; k++ {
		s := Grid(k)
		loads, err := s.Loads(Uniform(s.NumQuorums()))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(2*k-1) / float64(k*k)
		for u, l := range loads {
			if math.Abs(l-want) > 1e-12 {
				t.Fatalf("k=%d: load(%d) = %v, want %v", k, u, l, want)
			}
		}
	}
}

// TestMajorityUniformLoad: each element is in C(n-1, t-1) of the C(n, t)
// quorums, so load = t/n for every element.
func TestMajorityUniformLoad(t *testing.T) {
	s := Majority(6, 4)
	loads, err := s.Loads(Uniform(s.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 / 6.0
	for u, l := range loads {
		if math.Abs(l-want) > 1e-12 {
			t.Fatalf("load(%d) = %v, want %v", u, l, want)
		}
	}
}

func TestOptimalStrategyGrid(t *testing.T) {
	// For the Grid the uniform strategy is optimal (Naor–Wool), with load
	// (2k-1)/k².
	s := Grid(3)
	st, load, err := OptimalStrategy(s)
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0 / 9.0
	if math.Abs(load-want) > 1e-6 {
		t.Fatalf("optimal load = %v, want %v", load, want)
	}
	got, err := s.MaxLoad(st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-load) > 1e-6 {
		t.Fatalf("returned strategy has load %v, LP says %v", got, load)
	}
}

func TestOptimalStrategyStar(t *testing.T) {
	// Star: the hub is in every quorum, so any strategy has load 1 on it.
	_, load, err := OptimalStrategy(Star(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-1) > 1e-6 {
		t.Fatalf("optimal load = %v, want 1", load)
	}
}

func TestOptimalStrategyFPP(t *testing.T) {
	// FPP of order q has optimal load (q+1)/(q²+q+1) under the uniform
	// strategy (each point on q+1 of the q²+q+1 lines).
	q := 3
	s := FPP(q)
	_, load, err := OptimalStrategy(s)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(q+1) / float64(q*q+q+1)
	if math.Abs(load-want) > 1e-6 {
		t.Fatalf("optimal load = %v, want %v", load, want)
	}
}

func TestOptimalStrategyBeatBadUniform(t *testing.T) {
	// Wheel: uniform over n quorums loads the hub with (n-1)/n; the optimal
	// strategy mixes toward the all-spokes quorum and achieves ~1/2.
	s := Wheel(6)
	stOpt, loadOpt, err := OptimalStrategy(s)
	if err != nil {
		t.Fatal(err)
	}
	uniLoad, err := s.MaxLoad(Uniform(s.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	if loadOpt >= uniLoad {
		t.Fatalf("optimal load %v not better than uniform %v", loadOpt, uniLoad)
	}
	realized, err := s.MaxLoad(stOpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(realized-loadOpt) > 1e-6 {
		t.Fatalf("strategy load %v != LP optimum %v", realized, loadOpt)
	}
}

func TestContains(t *testing.T) {
	s := Grid(2)
	// Q_{0,0} = {0,1,2}.
	for _, u := range []int{0, 1, 2} {
		if !s.Contains(0, u) {
			t.Fatalf("Contains(0,%d) = false, want true", u)
		}
	}
	if s.Contains(0, 3) {
		t.Fatal("Contains(0,3) = true, want false")
	}
}

func TestCrumblingWallsStructure(t *testing.T) {
	s := CrumblingWalls([]int{2, 2})
	// Full row 0 quorums: {0,1} × one of {2,3} → 2 quorums;
	// full row 1 quorum: {2,3} → 1 quorum. Total 3.
	if s.NumQuorums() != 3 {
		t.Fatalf("quorums = %d, want 3", s.NumQuorums())
	}
}

func TestProbsIsCopy(t *testing.T) {
	st := Uniform(2)
	p := st.Probs()
	p[0] = 99
	if st.P(0) == 99 {
		t.Fatal("Probs returned the internal slice")
	}
}
