package quorum

import "fmt"

// RecursiveMajority returns the hierarchical (recursive) majority quorum
// system on 3^height elements: the universe is a complete ternary tree of
// groups; a quorum takes majorities of majorities down to the leaves. For
// height 1 this is Majority(3, 2); height 2 has 27 quorums of 4 elements on
// 9 leaves. Two quorums intersect because at every level their chosen
// 2-of-3 group sets overlap in at least one group, recursively.
func RecursiveMajority(height int) *System {
	if height < 1 {
		panic(fmt.Sprintf("quorum: recursive majority needs height >= 1, got %d", height))
	}
	n := 1
	for i := 0; i < height; i++ {
		n *= 3
	}
	quorums := recMajQuorums(0, n, height)
	return mustNewSystem(fmt.Sprintf("recmajority-h%d", height), n, quorums)
}

// recMajQuorums enumerates the recursive-majority quorums of the block of
// size 3^level starting at offset start.
func recMajQuorums(start, blockSize, level int) [][]int {
	if level == 0 {
		return [][]int{{start}}
	}
	child := blockSize / 3
	subs := make([][][]int, 3)
	for i := 0; i < 3; i++ {
		subs[i] = recMajQuorums(start+i*child, child, level-1)
	}
	var out [][]int
	// Choose 2 of the 3 children and a quorum from each.
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for _, pr := range pairs {
		for _, qa := range subs[pr[0]] {
			for _, qb := range subs[pr[1]] {
				q := make([]int, 0, len(qa)+len(qb))
				q = append(q, qa...)
				q = append(q, qb...)
				out = append(out, q)
			}
		}
	}
	return out
}
