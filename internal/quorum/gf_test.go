package quorum

import (
	"strings"
	"testing"
)

// TestGFFieldAxioms: the generated tables form a field — commutative group
// under addition, nonzero elements a multiplicative group, distributivity.
func TestGFFieldAxioms(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 16, 25, 27} {
		f, err := newGF(q)
		if err != nil {
			t.Fatalf("GF(%d): %v", q, err)
		}
		for a := 0; a < q; a++ {
			if f.add[a*q] != a || f.add[a] != a {
				t.Fatalf("GF(%d): 0 is not the additive identity for %d", q, a)
			}
			if f.mul[a*q+1] != a || f.mul[q+a] != a {
				t.Fatalf("GF(%d): 1 is not the multiplicative identity for %d", q, a)
			}
			hasNeg, hasInv := false, a == 0
			for b := 0; b < q; b++ {
				if f.add[a*q+b] != f.add[b*q+a] || f.mul[a*q+b] != f.mul[b*q+a] {
					t.Fatalf("GF(%d): %d,%d not commutative", q, a, b)
				}
				if f.add[a*q+b] == 0 {
					hasNeg = true
				}
				if f.mul[a*q+b] == 1 {
					hasInv = true
				}
				for c := 0; c < q; c++ {
					if f.add[f.add[a*q+b]*q+c] != f.add[a*q+f.add[b*q+c]] {
						t.Fatalf("GF(%d): addition not associative at %d,%d,%d", q, a, b, c)
					}
					if f.mul[f.mul[a*q+b]*q+c] != f.mul[a*q+f.mul[b*q+c]] {
						t.Fatalf("GF(%d): multiplication not associative at %d,%d,%d", q, a, b, c)
					}
					if f.mul[a*q+f.add[b*q+c]] != f.add[f.mul[a*q+b]*q+f.mul[a*q+c]] {
						t.Fatalf("GF(%d): not distributive at %d,%d,%d", q, a, b, c)
					}
				}
			}
			if !hasNeg || !hasInv {
				t.Fatalf("GF(%d): %d lacks an inverse (neg %v, inv %v)", q, a, hasNeg, hasInv)
			}
		}
	}
}

// TestFPPPrimePowers: PG(2,q) for composite prime powers — the orders the
// prime-only construction used to panic on — is a valid projective plane:
// q²+q+1 points and lines, q+1 points per line, and every pair of lines
// meeting in exactly one point.
func TestFPPPrimePowers(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 8, 9} {
		s := FPP(q)
		n := q*q + q + 1
		if s.Universe() != n || s.NumQuorums() != n {
			t.Fatalf("FPP(%d): %d points, %d lines, want %d", q, s.Universe(), s.NumQuorums(), n)
		}
		for i := 0; i < n; i++ {
			if len(s.Quorum(i)) != q+1 {
				t.Fatalf("FPP(%d): line %d has %d points, want %d", q, i, len(s.Quorum(i)), q+1)
			}
		}
		// Exactly-one intersection (stronger than the ≥1 NewSystem checks).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				common := 0
				for _, u := range s.Quorum(i) {
					if s.Contains(j, u) {
						common++
					}
				}
				if common != 1 {
					t.Fatalf("FPP(%d): lines %d and %d share %d points, want 1", q, i, j, common)
				}
			}
		}
		// Duality: every point lies on exactly q+1 lines, so the uniform
		// strategy loads every element equally at (q+1)/(q²+q+1).
		loads, err := s.Loads(Uniform(n))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(q+1) / float64(n)
		for u, l := range loads {
			if diff := l - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("FPP(%d): element %d load %v, want %v", q, u, l, want)
			}
		}
	}
}

// TestFPPRejectsNonPrimePowers: orders with two distinct prime factors have
// no finite field; the panic must say so explicitly.
func TestFPPRejectsNonPrimePowers(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("FPP(%d) did not panic", q)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "prime power") {
					t.Fatalf("FPP(%d) panic does not state the prime-power restriction: %v", q, r)
				}
			}()
			FPP(q)
		}()
	}
}
