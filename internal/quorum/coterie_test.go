package quorum

import (
	"testing"
)

func TestMinimalQuorums(t *testing.T) {
	s, err := NewSystem("t", 4, [][]int{{0, 1}, {0, 1, 2}, {1, 2}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	min := MinimalQuorums(s)
	want := [][]int{{0, 1}, {1, 2}}
	if !equalQuorumLists(min, want) {
		t.Fatalf("MinimalQuorums = %v, want %v", min, want)
	}
}

func TestTransversalsMajority(t *testing.T) {
	// Majority(3,2): quorums {01,02,12}; minimal transversals are exactly
	// the quorums themselves (self-dual coterie).
	s := Majority(3, 2)
	trans := Transversals(s)
	want := [][]int{{0, 1}, {0, 2}, {1, 2}}
	if !equalQuorumLists(trans, want) {
		t.Fatalf("Transversals = %v, want %v", trans, want)
	}
}

func TestTransversalsStar(t *testing.T) {
	// Star(4): quorums {0,1},{0,2},{0,3}. Minimal transversals: {0} and
	// {1,2,3}.
	s := Star(4)
	trans := Transversals(s)
	want := [][]int{{0}, {1, 2, 3}}
	if !equalQuorumLists(trans, want) {
		t.Fatalf("Transversals = %v, want %v", trans, want)
	}
}

func TestTransversalsGridNonIntersecting(t *testing.T) {
	// Grid(2) is dominated: {0,3} and {1,2} are disjoint minimal
	// transversals (each hits every row∪column quorum).
	s := Grid(2)
	trans := Transversals(s)
	found03, found12 := false, false
	for _, tr := range trans {
		if len(tr) == 2 && tr[0] == 0 && tr[1] == 3 {
			found03 = true
		}
		if len(tr) == 2 && tr[0] == 1 && tr[1] == 2 {
			found12 = true
		}
	}
	if !found03 || !found12 {
		t.Fatalf("expected disjoint transversals {0,3} and {1,2}, got %v", trans)
	}
	// Consequently Dual must fail the intersection check.
	if _, err := Dual(s); err == nil {
		t.Fatal("Dual(Grid(2)) unexpectedly intersecting")
	}
}

// TestTransversalsMeetAllQuorums: every reported transversal hits every
// quorum, and is minimal (dropping any element misses some quorum).
func TestTransversalsMeetAllQuorums(t *testing.T) {
	for _, s := range []*System{Majority(5, 3), Grid(2), Grid(3), Wheel(5), FPP(2), Star(5), Tree(2)} {
		for _, tr := range Transversals(s) {
			for qi := 0; qi < s.NumQuorums(); qi++ {
				if !sortedIntersect(tr, s.Quorum(qi)) {
					t.Fatalf("%s: transversal %v misses quorum %v", s.Name(), tr, s.Quorum(qi))
				}
			}
			for drop := range tr {
				reduced := append(append([]int(nil), tr[:drop]...), tr[drop+1:]...)
				hitsAll := true
				for qi := 0; qi < s.NumQuorums(); qi++ {
					if !sortedIntersect(reduced, s.Quorum(qi)) {
						hitsAll = false
						break
					}
				}
				if hitsAll && len(reduced) > 0 {
					t.Fatalf("%s: transversal %v not minimal (can drop %d)", s.Name(), tr, tr[drop])
				}
			}
		}
	}
}

// TestSelfDualSystems: odd majorities and the Fano plane are self-dual
// (and hence non-dominated).
func TestSelfDualSystems(t *testing.T) {
	for _, s := range []*System{Majority(3, 2), Majority(5, 3), FPP(2)} {
		d, err := Dual(s)
		if err != nil {
			t.Fatal(err)
		}
		if !equalQuorumLists(MinimalQuorums(s), MinimalQuorums(d)) {
			t.Fatalf("%s is not self-dual: dual has %d quorums vs %d", s.Name(), d.NumQuorums(), s.NumQuorums())
		}
	}
}

func TestIsNonDominated(t *testing.T) {
	cases := []struct {
		name string
		s    *System
		want bool
	}{
		// Odd majorities are the canonical ND coteries.
		{"majority 2of3", Majority(3, 2), true},
		{"majority 3of5", Majority(5, 3), true},
		// The Fano plane is ND (self-dual).
		{"fpp 2", FPP(2), true},
		// Singleton is ND.
		{"singleton", Singleton(), true},
		// Star: the transversal {0} contains no quorum → dominated.
		{"star", Star(4), false},
		// Even majority t = n/2+1 is dominated.
		{"majority 3of4", Majority(4, 3), false},
		// Grid is dominated (disjoint transversals exist).
		{"grid 2", Grid(2), false},
		// Tree quorum of height 1 equals Majority(3,2) → ND.
		{"tree h1", Tree(1), true},
		// Wheel: transversals are {hub, spoke} and the all-spokes set —
		// exactly the quorums → ND.
		{"wheel 5", Wheel(5), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsNonDominated(tc.s); got != tc.want {
				t.Fatalf("IsNonDominated = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestDoubleTransversalInvolution: Tr(Tr(H)) = H for every antichain — a
// classical hypergraph identity that exercises the enumerator from both
// sides. The middle family may not be intersecting, so work with raw
// transversal lists rather than Dual.
func TestDoubleTransversalInvolution(t *testing.T) {
	for _, s := range []*System{Majority(4, 3), Grid(2), Star(4), Wheel(5), Majority(5, 3), Tree(2)} {
		min := MinimalQuorums(s)
		minSys, err := NewSystem("min", s.Universe(), min)
		if err != nil {
			t.Fatal(err)
		}
		tr1 := Transversals(minSys)
		// Build a raw holder for the (possibly non-intersecting) family:
		// compute transversals directly from masks.
		tr2 := transversalsOfFamily(s.Universe(), tr1)
		if !equalQuorumLists(tr2, min) {
			t.Fatalf("%s: Tr(Tr(C)) = %v, want %v", s.Name(), tr2, min)
		}
	}
}

// transversalsOfFamily enumerates minimal transversals of an arbitrary set
// family (no intersection requirement), mirroring Transversals.
func transversalsOfFamily(universe int, family [][]int) [][]int {
	masks := make([]uint64, len(family))
	for i, q := range family {
		var m uint64
		for _, u := range q {
			m |= 1 << uint(u)
		}
		masks[i] = m
	}
	var found []uint64
	var rec func(hit uint64)
	rec = func(hit uint64) {
		var missing uint64
		complete := true
		for _, qm := range masks {
			if qm&hit == 0 {
				missing = qm
				complete = false
				break
			}
		}
		if complete {
			min := minimizeTransversal(hit, masks)
			for _, f := range found {
				if f == min {
					return
				}
			}
			found = append(found, min)
			return
		}
		for u := 0; u < universe; u++ {
			if missing&(1<<uint(u)) != 0 {
				rec(hit | 1<<uint(u))
			}
		}
	}
	rec(0)
	var out [][]int
	seen := map[uint64]bool{}
	for _, f := range found {
		if seen[f] {
			continue
		}
		seen[f] = true
		var tr []int
		for u := 0; u < universe; u++ {
			if f&(1<<uint(u)) != 0 {
				tr = append(tr, u)
			}
		}
		out = append(out, tr)
	}
	sortQuorumList(out)
	return out
}

// TestResilienceViaTransversals: resilience = (size of smallest
// transversal) − 1; cross-check the two implementations.
func TestResilienceViaTransversals(t *testing.T) {
	for _, s := range []*System{Majority(5, 3), Grid(3), Wheel(5), FPP(2), Star(5), CrumblingWalls([]int{2, 2})} {
		trans := Transversals(s)
		min := s.Universe() + 1
		for _, tr := range trans {
			if len(tr) < min {
				min = len(tr)
			}
		}
		if got := Resilience(s); got != min-1 {
			t.Fatalf("%s: Resilience = %d, smallest transversal %d", s.Name(), got, min)
		}
	}
}
