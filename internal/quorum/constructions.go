package quorum

import (
	"fmt"
	"sort"
)

// This file contains the named quorum-system constructions. The Grid and
// Majority systems are the ones the paper gives specialized placement
// algorithms for (§4); the rest are classical constructions referenced in
// the paper's introduction and used here to exercise the general QPP
// algorithms on structurally diverse inputs.

// Grid returns the k×k Grid quorum system [Cheung–Ammar–Ahamad; Kumar–
// Rabinovich–Sinha]: universe of k² elements laid out in a k×k matrix;
// quorum Q_{ij} is the union of row i and column j, so there are k² quorums
// of 2k-1 elements each (§4.1). Element (r,c) has index r*k + c; quorum
// Q_{ij} has index i*k + j.
func Grid(k int) *System {
	if k < 1 {
		panic(fmt.Sprintf("quorum: grid needs k >= 1, got %d", k))
	}
	n := k * k
	quorums := make([][]int, 0, n)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			q := make([]int, 0, 2*k-1)
			for c := 0; c < k; c++ {
				q = append(q, i*k+c) // row i
			}
			for r := 0; r < k; r++ {
				if r != i {
					q = append(q, r*k+j) // column j minus the shared cell
				}
			}
			quorums = append(quorums, q)
		}
	}
	return mustNewSystem(fmt.Sprintf("grid-%dx%d", k, k), n, quorums)
}

// Majority returns the threshold quorum system of §4.2: all subsets of a
// universe of size n with exactly t elements, for t ≥ ⌈(n+1)/2⌉ (so any two
// quorums intersect). The classical Majority system [Gifford; Thomas] is
// t = ⌊n/2⌋+1. The number of quorums is C(n,t); keep n small (≤ ~16).
func Majority(n, t int) *System {
	if 2*t <= n {
		panic(fmt.Sprintf("quorum: majority threshold t=%d does not guarantee intersection for n=%d (need 2t > n)", t, n))
	}
	if t > n {
		panic(fmt.Sprintf("quorum: majority threshold t=%d exceeds universe %d", t, n))
	}
	var quorums [][]int
	cur := make([]int, 0, t)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == t {
			quorums = append(quorums, append([]int(nil), cur...))
			return
		}
		// Prune: not enough elements left to complete the subset.
		need := t - len(cur)
		for v := start; v <= n-need; v++ {
			cur = append(cur, v)
			rec(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return mustNewSystem(fmt.Sprintf("majority-%d-of-%d", t, n), n, quorums)
}

// Singleton returns the degenerate system with a single one-element quorum,
// the structure of Lin's delay-optimal (but maximally loaded) solution that
// §2 argues against. It is useful as a baseline and for edge-case tests.
func Singleton() *System {
	return mustNewSystem("singleton", 1, [][]int{{0}})
}

// Star returns the "star" (centralized) system on n elements: element 0 is
// in every quorum and each quorum is {0, i}. Its load is concentrated on
// the center — the opposite extreme from Majority.
func Star(n int) *System {
	if n < 2 {
		panic(fmt.Sprintf("quorum: star needs n >= 2, got %d", n))
	}
	quorums := make([][]int, 0, n-1)
	for i := 1; i < n; i++ {
		quorums = append(quorums, []int{0, i})
	}
	return mustNewSystem(fmt.Sprintf("star-%d", n), n, quorums)
}

// Wheel returns the wheel system [Marcus–Peleg style]: quorums are
// {hub, spoke_i} for each spoke plus the set of all spokes. The hub is
// element 0.
func Wheel(n int) *System {
	if n < 3 {
		panic(fmt.Sprintf("quorum: wheel needs n >= 3, got %d", n))
	}
	quorums := make([][]int, 0, n)
	spokes := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		quorums = append(quorums, []int{0, i})
		spokes = append(spokes, i)
	}
	quorums = append(quorums, spokes)
	return mustNewSystem(fmt.Sprintf("wheel-%d", n), n, quorums)
}

// FPP returns the finite-projective-plane quorum system of prime-power
// order q = p^k — the construction underlying Maekawa's √N mutual-exclusion
// algorithm. The universe is the q²+q+1 points of PG(2,q) and the quorums
// are its q²+q+1 lines; every line has q+1 points and every pair of lines
// meets in exactly one point, so the system has optimal load Θ(1/√n).
// Lines over GF(q) use finite-field arithmetic (see gf.go), so composite
// prime powers like 4, 8, 9 work; orders with two distinct prime factors
// (6, 10, 12, ...) have no field and the construction panics.
//
// Point indexing: affine point (x, y) is x*q + y; the ideal point of slope m
// is q²+m; the vertical ideal point is q²+q.
func FPP(q int) *System {
	f, err := newGF(q)
	if err != nil {
		panic(fmt.Sprintf("quorum: FPP order %d must be a prime power >= 2: %v", q, err))
	}
	n := q*q + q + 1
	var quorums [][]int
	// Lines y = m·x + b over GF(q), closed by the ideal point of slope m.
	for m := 0; m < q; m++ {
		for b := 0; b < q; b++ {
			line := make([]int, 0, q+1)
			for x := 0; x < q; x++ {
				y := f.add[f.mul[m*q+x]*q+b]
				line = append(line, x*q+y)
			}
			line = append(line, q*q+m)
			quorums = append(quorums, line)
		}
	}
	// Vertical lines x = c, closed by the vertical ideal point.
	for c := 0; c < q; c++ {
		line := make([]int, 0, q+1)
		for y := 0; y < q; y++ {
			line = append(line, c*q+y)
		}
		line = append(line, q*q+q)
		quorums = append(quorums, line)
	}
	// The line at infinity: all ideal points.
	inf := make([]int, 0, q+1)
	for m := 0; m <= q; m++ {
		inf = append(inf, q*q+m)
	}
	quorums = append(quorums, inf)
	return mustNewSystem(fmt.Sprintf("fpp-%d", q), n, quorums)
}

// CrumblingWalls returns the Peleg–Wool crumbling-walls system for the given
// row widths: the universe is partitioned into rows (row i has widths[i]
// consecutive elements); a quorum is one full row i together with one
// representative element from every row below i. Two quorums with full rows
// i ≤ i' intersect because the first has a representative inside row i',
// which the second contains entirely (or i = i' and they share the row).
func CrumblingWalls(widths []int) *System {
	if len(widths) == 0 {
		panic("quorum: crumbling walls needs at least one row")
	}
	offsets := make([]int, len(widths)+1)
	for i, w := range widths {
		if w < 1 {
			panic(fmt.Sprintf("quorum: crumbling walls row %d has width %d", i, w))
		}
		offsets[i+1] = offsets[i] + w
	}
	n := offsets[len(widths)]
	var quorums [][]int
	// Enumerate: for each full row i, every combination of representatives
	// from the rows below.
	var rec func(i, row int, cur []int)
	rec = func(full, row int, cur []int) {
		if row == len(widths) {
			q := append([]int(nil), cur...)
			quorums = append(quorums, q)
			return
		}
		if row == full {
			for e := offsets[row]; e < offsets[row+1]; e++ {
				cur = append(cur, e)
			}
			rec(full, row+1, cur)
			return
		}
		if row < full {
			rec(full, row+1, cur)
			return
		}
		for e := offsets[row]; e < offsets[row+1]; e++ {
			rec(full, row+1, append(cur, e))
		}
	}
	for i := range widths {
		rec(i, 0, nil)
	}
	return mustNewSystem(fmt.Sprintf("cwall-%v", widths), n, quorums)
}

// Tree returns the Agrawal–El Abbadi tree quorum system on a complete
// binary tree of the given height (height 0 = single root). A quorum is
// obtained recursively: either the root together with a quorum of one
// subtree, or a quorum of each subtree. All distinct quorums are
// materialized, so keep the height small (≤ 3).
func Tree(height int) *System {
	if height < 0 {
		panic(fmt.Sprintf("quorum: tree height %d must be non-negative", height))
	}
	n := (1 << (height + 1)) - 1
	sets := treeQuorums(0, n)
	seen := map[string]bool{}
	var quorums [][]int
	for _, q := range sets {
		sort.Ints(q)
		key := fmt.Sprint(q)
		if !seen[key] {
			seen[key] = true
			quorums = append(quorums, q)
		}
	}
	return mustNewSystem(fmt.Sprintf("tree-h%d", height), n, quorums)
}

// treeQuorums enumerates the quorums of the subtree rooted at node root
// (heap indexing: children of i are 2i+1, 2i+2) within a tree of n nodes.
func treeQuorums(root, n int) [][]int {
	l, r := 2*root+1, 2*root+2
	if l >= n { // leaf
		return [][]int{{root}}
	}
	left := treeQuorums(l, n)
	right := treeQuorums(r, n)
	var out [][]int
	for _, q := range left {
		out = append(out, append([]int{root}, q...))
	}
	for _, q := range right {
		out = append(out, append([]int{root}, q...))
	}
	for _, ql := range left {
		for _, qr := range right {
			q := make([]int, 0, len(ql)+len(qr))
			q = append(q, ql...)
			q = append(q, qr...)
			out = append(out, q)
		}
	}
	return out
}

// WeightedMajority returns the system whose quorums are the minimal subsets
// with total weight strictly greater than half the total. Weights must be
// positive. Only minimal quorums are kept, so the system size stays
// manageable for small n.
func WeightedMajority(weights []int) *System {
	n := len(weights)
	if n == 0 {
		panic("quorum: weighted majority needs at least one element")
	}
	total := 0
	for i, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("quorum: weight %d is %d, must be positive", i, w))
		}
		total += w
	}
	var all [][]int
	for mask := 1; mask < 1<<n; mask++ {
		w := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += weights[i]
			}
		}
		if 2*w > total {
			var q []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					q = append(q, i)
				}
			}
			all = append(all, q)
		}
	}
	// Keep only minimal quorums.
	var quorums [][]int
	for i, q := range all {
		minimal := true
		for j, q2 := range all {
			if i != j && isSubset(q2, q) && len(q2) < len(q) {
				minimal = false
				break
			}
		}
		if minimal {
			quorums = append(quorums, q)
		}
	}
	return mustNewSystem(fmt.Sprintf("wmaj-%v", weights), n, quorums)
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}
