package quorum

import (
	"fmt"
	"sort"
)

// Coterie theory, after Garcia-Molina & Barbara ("How to assign votes in a
// distributed system") and Ibaraki–Kameda. A coterie is an antichain quorum
// system (no quorum contains another). The dual of a system is the family
// of its minimal transversals (minimal sets hitting every quorum); a
// coterie is non-dominated — no other coterie has uniformly superior
// availability — exactly when it equals its double dual. These tools are
// useful for characterizing the input systems the placement algorithms are
// given (§1's "choose the input quorum system from the existing literature
// to achieve ... any other desired criterion").

// MinimalQuorums returns the antichain of s: the quorums with no proper
// sub-quorum in the system, deduplicated and in deterministic order.
func MinimalQuorums(s *System) [][]int {
	var out [][]int
	for i, q := range s.quorums {
		minimal := true
		for j, q2 := range s.quorums {
			if i == j {
				continue
			}
			if len(q2) < len(q) && isSubset(q2, q) {
				minimal = false
				break
			}
			// Equal sets: keep only the first occurrence.
			if len(q2) == len(q) && j < i && isSubset(q2, q) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, append([]int(nil), q...))
		}
	}
	sortQuorumList(out)
	return out
}

// Transversals returns all minimal transversals of s: inclusion-minimal
// sets of elements that intersect every quorum. The quorums of the dual
// system. Exponential in the worst case; intended for the small systems in
// this library (universe ≤ ~20).
func Transversals(s *System) [][]int {
	if s.universe > 63 {
		panic(fmt.Sprintf("quorum: transversal enumeration limited to 63 elements, got %d", s.universe))
	}
	masks := s.quorumMasks()
	var found []uint64
	// Branch over the first un-hit quorum, as in Resilience, but keep all
	// minimal solutions rather than just the size.
	var rec func(hit uint64)
	rec = func(hit uint64) {
		var missing uint64
		complete := true
		for _, qm := range masks {
			if qm&hit == 0 {
				missing = qm
				complete = false
				break
			}
		}
		if complete {
			// Minimize: drop any redundant element.
			min := minimizeTransversal(hit, masks)
			for _, f := range found {
				if f == min {
					return
				}
			}
			found = append(found, min)
			return
		}
		for u := 0; u < s.universe; u++ {
			if missing&(1<<uint(u)) != 0 {
				rec(hit | 1<<uint(u))
			}
		}
	}
	rec(0)
	// Deduplicate and drop non-minimal ones (minimizeTransversal gives a
	// minimal set, but different branches can yield supersets of another
	// branch's result before minimization; after it, sets are minimal but
	// may still duplicate).
	var out [][]int
	seen := map[uint64]bool{}
	for _, f := range found {
		if seen[f] {
			continue
		}
		seen[f] = true
		var t []int
		for u := 0; u < s.universe; u++ {
			if f&(1<<uint(u)) != 0 {
				t = append(t, u)
			}
		}
		out = append(out, t)
	}
	sortQuorumList(out)
	return out
}

// minimizeTransversal greedily removes redundant elements (highest index
// first) while the set still hits every quorum.
func minimizeTransversal(hit uint64, masks []uint64) uint64 {
	for u := 63; u >= 0; u-- {
		bit := uint64(1) << uint(u)
		if hit&bit == 0 {
			continue
		}
		cand := hit &^ bit
		ok := true
		for _, qm := range masks {
			if qm&cand == 0 {
				ok = false
				break
			}
		}
		if ok {
			hit = cand
		}
	}
	return hit
}

// Dual returns the dual system of s: its minimal transversals as quorums.
// For a *non-dominated* coterie the dual equals the coterie itself
// (self-duality); for dominated systems the transversal family may fail
// pairwise intersection, in which case Dual returns an error — the family
// itself is still available via Transversals.
func Dual(s *System) (*System, error) {
	trans := Transversals(s)
	if len(trans) == 0 {
		return nil, fmt.Errorf("quorum: %q has no transversals", s.name)
	}
	return NewSystem(s.name+"-dual", s.universe, trans)
}

// IsNonDominated reports whether the system's antichain is a non-dominated
// coterie: no coterie D ≠ C has every quorum of C containing a quorum of D
// (Garcia-Molina–Barbara). The classical characterization used here:
// C is ND iff every transversal of C contains a quorum, which for an
// antichain is equivalent to self-duality, Tr(C) = C.
func IsNonDominated(s *System) bool {
	min := MinimalQuorums(s)
	minSys, err := NewSystem(s.name+"-min", s.universe, min)
	if err != nil {
		return false
	}
	return equalQuorumLists(min, Transversals(minSys))
}

func sortQuorumList(qs [][]int) {
	sort.Slice(qs, func(a, b int) bool {
		x, y := qs[a], qs[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
}

func equalQuorumLists(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
