package quorum

import (
	"fmt"
	"math"
	"math/rand"
)

// Probabilistic quorum systems, after Malkhi, Reiter, Wool & Wright
// (reference [17] of the paper): the strict intersection property is
// relaxed to hold with probability 1-ε over the access strategy. The
// classical construction samples quorums of size ℓ√n uniformly at random;
// two independent samples miss each other with probability at most e^(-ℓ²).
// Relaxed families cannot always be wrapped in a System (which enforces
// strict intersection), so this file works with raw quorum lists plus an
// explicit measured intersection-failure rate.

// ProbabilisticQuorums samples m quorums, each a uniformly random subset of
// size ⌈ℓ·√n⌉ of an n-element universe. The returned family is NOT
// guaranteed to be pairwise intersecting; measure it with
// IntersectionFailureRate or upgrade it with AsSystem.
func ProbabilisticQuorums(n int, ell float64, m int, rng *rand.Rand) ([][]int, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("quorum: need positive universe and quorum count, got %d, %d", n, m)
	}
	if ell <= 0 {
		return nil, fmt.Errorf("quorum: sampling parameter ℓ = %v must be positive", ell)
	}
	size := int(math.Ceil(ell * math.Sqrt(float64(n))))
	if size > n {
		size = n
	}
	out := make([][]int, m)
	for i := 0; i < m; i++ {
		perm := rng.Perm(n)
		q := append([]int(nil), perm[:size]...)
		insertionSortInts(q)
		out[i] = q
	}
	return out, nil
}

// IntersectionFailureRate returns the fraction of unordered quorum pairs
// that do not intersect — the empirical ε of the family under the uniform
// access strategy.
func IntersectionFailureRate(quorums [][]int) float64 {
	m := len(quorums)
	if m < 2 {
		return 0
	}
	misses := 0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if !sortedIntersect(quorums[i], quorums[j]) {
				misses++
			}
		}
	}
	return float64(misses) / float64(m*(m-1)/2)
}

// TheoreticalMissBound returns the Malkhi–Reiter–Wool bound e^(-ℓ²) on the
// probability that two independently sampled ℓ√n-quorums are disjoint.
func TheoreticalMissBound(ell float64) float64 {
	return math.Exp(-ell * ell)
}

// AsSystem upgrades a sampled family to a strict System by discarding
// quorums that fail to intersect an earlier kept quorum. It returns the
// system together with the number of quorums dropped. For ℓ ≥ 2 the drop
// count is almost always zero.
func AsSystem(name string, universe int, quorums [][]int) (*System, int, error) {
	var kept [][]int
	dropped := 0
	for _, q := range quorums {
		ok := true
		for _, k := range kept {
			if !sortedIntersect(k, q) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, q)
		} else {
			dropped++
		}
	}
	if len(kept) == 0 {
		return nil, dropped, fmt.Errorf("quorum: no intersecting subfamily found")
	}
	s, err := NewSystem(name, universe, kept)
	if err != nil {
		return nil, dropped, err
	}
	return s, dropped, nil
}
