package quorum

import (
	"math"
	"math/rand"
	"testing"
)

func TestProbabilisticQuorumsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	qs, err := ProbabilisticQuorums(100, 2, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 30 {
		t.Fatalf("got %d quorums, want 30", len(qs))
	}
	want := int(math.Ceil(2 * math.Sqrt(100))) // 20
	for i, q := range qs {
		if len(q) != want {
			t.Fatalf("quorum %d has %d elements, want %d", i, len(q), want)
		}
		for j := 1; j < len(q); j++ {
			if q[j] <= q[j-1] {
				t.Fatalf("quorum %d not sorted/deduped: %v", i, q)
			}
		}
	}
}

func TestProbabilisticQuorumsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	if _, err := ProbabilisticQuorums(0, 1, 5, rng); err == nil {
		t.Fatal("zero universe accepted")
	}
	if _, err := ProbabilisticQuorums(10, 0, 5, rng); err == nil {
		t.Fatal("zero ell accepted")
	}
	if _, err := ProbabilisticQuorums(10, 1, 0, rng); err == nil {
		t.Fatal("zero count accepted")
	}
	// ℓ large enough that ℓ√n > n: quorums are the full universe.
	qs, err := ProbabilisticQuorums(4, 10, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if len(q) != 4 {
			t.Fatalf("oversized ℓ should clamp to n, got %d", len(q))
		}
	}
}

// TestMissRateMatchesTheory: the empirical intersection-failure rate stays
// below the e^(-ℓ²) bound (with statistical slack), and decreases in ℓ.
func TestMissRateMatchesTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(705))
	n := 400
	var prev float64 = 1.1
	for _, ell := range []float64{0.5, 1, 1.5} {
		qs, err := ProbabilisticQuorums(n, ell, 120, rng)
		if err != nil {
			t.Fatal(err)
		}
		rate := IntersectionFailureRate(qs)
		bound := TheoreticalMissBound(ell)
		// The exact miss probability for size-s subsets of [n] is
		// C(n-s, s)/C(n, s) ≤ (1-s/n)^s ≈ e^(-ℓ²); allow sampling noise.
		if rate > bound+0.08 {
			t.Fatalf("ℓ=%v: empirical miss rate %v far above bound %v", ell, rate, bound)
		}
		if rate > prev+0.05 {
			t.Fatalf("miss rate did not decrease with ℓ: %v after %v", rate, prev)
		}
		prev = rate
	}
}

func TestIntersectionFailureRateEdge(t *testing.T) {
	if got := IntersectionFailureRate(nil); got != 0 {
		t.Fatalf("empty family rate %v", got)
	}
	if got := IntersectionFailureRate([][]int{{0, 1}}); got != 0 {
		t.Fatalf("single quorum rate %v", got)
	}
	if got := IntersectionFailureRate([][]int{{0}, {1}}); got != 1 {
		t.Fatalf("disjoint pair rate %v, want 1", got)
	}
}

// TestAsSystemUpgrade: with ℓ = 3 the per-pair miss probability is ~1e-5,
// so the upgrade keeps essentially everything and the result passes strict
// verification.
func TestAsSystemUpgrade(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	qs, err := ProbabilisticQuorums(100, 3, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, dropped, err := AsSystem("prob", 100, qs)
	if err != nil {
		t.Fatal(err)
	}
	if dropped > 2 {
		t.Fatalf("dropped %d quorums at ℓ=3; expected ≈ 0", dropped)
	}
	if err := s.VerifyIntersection(); err != nil {
		t.Fatal(err)
	}
	// Load behaves like ℓ/√n under the uniform strategy, far below the
	// majority's 1/2 (the point of probabilistic systems).
	_, load, err := OptimalStrategy(s)
	if err != nil {
		t.Fatal(err)
	}
	if load > 0.45 {
		t.Fatalf("optimal load %v suspiciously high for a probabilistic system", load)
	}
}

func TestAsSystemDropsConflicts(t *testing.T) {
	qs := [][]int{{0, 1}, {2, 3}, {1, 2}}
	s, dropped, err := AsSystem("x", 4, qs)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d, want 1 (the disjoint {2,3})", dropped)
	}
	if s.NumQuorums() != 2 {
		t.Fatalf("kept %d quorums, want 2", s.NumQuorums())
	}
}

func TestAsSystemNoFamily(t *testing.T) {
	if _, _, err := AsSystem("x", 2, nil); err == nil {
		t.Fatal("empty family accepted")
	}
}
