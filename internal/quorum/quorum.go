// Package quorum provides quorum systems over a logical universe of
// elements, access strategies over them, and the induced element loads.
//
// A quorum system Q = {Q1, ..., Qm} over a universe U is a family of subsets
// of U such that every pair of quorums intersects (§1 of the paper). An
// access strategy p is a probability distribution over Q; the load it
// induces on an element u is load(u) = Σ_{Q ∋ u} p(Q) (§1.1).
//
// The package implements the two systems the paper analyzes specifically —
// the Grid [Cheung et al.; Kumar et al.] and the Majority [Gifford; Thomas]
// — plus the broader constructions its introduction draws on (Singleton,
// Tree [Agrawal–El Abbadi], Maekawa, Crumbling Walls [Peleg–Wool], Wheel,
// and Weighted Majority), and the Naor–Wool optimal (load-minimizing)
// strategy computed by linear programming.
package quorum

import (
	"fmt"
	"math"
	"sort"

	"quorumplace/internal/lp"
)

// System is an immutable quorum system: a universe {0, ..., n-1} and a list
// of pairwise-intersecting quorums. Construct with NewSystem or one of the
// named constructions.
type System struct {
	name     string
	universe int
	quorums  [][]int
}

// NewSystem validates and builds a quorum system. Each quorum must be a
// non-empty subset of {0..universe-1} without duplicates, and every pair of
// quorums must intersect. The quorum element slices are copied and sorted.
func NewSystem(name string, universe int, quorums [][]int) (*System, error) {
	if universe <= 0 {
		return nil, fmt.Errorf("quorum: universe size %d must be positive", universe)
	}
	if len(quorums) == 0 {
		return nil, fmt.Errorf("quorum: system %q has no quorums", name)
	}
	cp := make([][]int, len(quorums))
	for i, q := range quorums {
		if len(q) == 0 {
			return nil, fmt.Errorf("quorum: quorum %d of %q is empty", i, name)
		}
		c := append([]int(nil), q...)
		sort.Ints(c)
		for j, u := range c {
			if u < 0 || u >= universe {
				return nil, fmt.Errorf("quorum: quorum %d of %q contains element %d outside universe [0,%d)", i, name, u, universe)
			}
			if j > 0 && c[j-1] == u {
				return nil, fmt.Errorf("quorum: quorum %d of %q contains duplicate element %d", i, name, u)
			}
		}
		cp[i] = c
	}
	s := &System{name: name, universe: universe, quorums: cp}
	if err := s.VerifyIntersection(); err != nil {
		return nil, err
	}
	return s, nil
}

// mustNewSystem is NewSystem for the package's own constructions, whose
// outputs are intersecting by design.
func mustNewSystem(name string, universe int, quorums [][]int) *System {
	s, err := NewSystem(name, universe, quorums)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the human-readable construction name.
func (s *System) Name() string { return s.name }

// Universe returns the number of logical elements.
func (s *System) Universe() int { return s.universe }

// NumQuorums returns the number of quorums.
func (s *System) NumQuorums() int { return len(s.quorums) }

// Quorum returns the i-th quorum as a sorted element slice. The returned
// slice is owned by the system and must not be modified.
func (s *System) Quorum(i int) []int { return s.quorums[i] }

// Quorums returns all quorums. The outer and inner slices are owned by the
// system and must not be modified.
func (s *System) Quorums() [][]int { return s.quorums }

// VerifyIntersection checks the defining property: every pair of quorums
// shares at least one element. Quorums are sorted, so each pair is checked
// with a linear merge.
func (s *System) VerifyIntersection() error {
	for i := 0; i < len(s.quorums); i++ {
		for j := i + 1; j < len(s.quorums); j++ {
			if !sortedIntersect(s.quorums[i], s.quorums[j]) {
				return fmt.Errorf("quorum: quorums %d and %d of %q do not intersect", i, j, s.name)
			}
		}
	}
	return nil
}

func sortedIntersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Contains reports whether quorum i contains element u.
func (s *System) Contains(i, u int) bool {
	q := s.quorums[i]
	k := sort.SearchInts(q, u)
	return k < len(q) && q[k] == u
}

// Strategy is an access strategy: a probability distribution over the
// quorums of a system (§1). The zero value is invalid; construct with
// NewStrategy or Uniform.
type Strategy struct {
	p []float64
}

// strategyTol is the tolerance on Σp = 1 accepted by NewStrategy.
const strategyTol = 1e-9

// NewStrategy validates p as a probability distribution and wraps it.
// The slice is copied.
func NewStrategy(p []float64) (Strategy, error) {
	sum := 0.0
	for i, pi := range p {
		if pi < 0 || math.IsNaN(pi) || math.IsInf(pi, 0) {
			return Strategy{}, fmt.Errorf("quorum: probability %d is %v", i, pi)
		}
		sum += pi
	}
	if math.Abs(sum-1) > strategyTol*float64(len(p)+1) {
		return Strategy{}, fmt.Errorf("quorum: probabilities sum to %v, want 1", sum)
	}
	return Strategy{p: append([]float64(nil), p...)}, nil
}

// Uniform returns the uniform strategy over m quorums. The paper uses this
// for the Grid and Majority systems (§4), where it achieves optimal load.
func Uniform(m int) Strategy {
	if m <= 0 {
		panic(fmt.Sprintf("quorum: uniform strategy over %d quorums", m))
	}
	p := make([]float64, m)
	for i := range p {
		p[i] = 1 / float64(m)
	}
	return Strategy{p: p}
}

// P returns the probability of quorum i.
func (st Strategy) P(i int) float64 { return st.p[i] }

// Len returns the number of quorums covered by the strategy.
func (st Strategy) Len() int { return len(st.p) }

// Probs returns a copy of the underlying distribution.
func (st Strategy) Probs() []float64 { return append([]float64(nil), st.p...) }

// Loads returns the per-element loads load(u) = Σ_{Q ∋ u} p(Q) induced by
// the strategy on the system.
func (s *System) Loads(st Strategy) ([]float64, error) {
	if st.Len() != len(s.quorums) {
		return nil, fmt.Errorf("quorum: strategy covers %d quorums, system has %d", st.Len(), len(s.quorums))
	}
	loads := make([]float64, s.universe)
	for i, q := range s.quorums {
		for _, u := range q {
			loads[u] += st.p[i]
		}
	}
	return loads, nil
}

// MaxLoad returns the system load under st: the load of the most loaded
// element, the quantity minimized by the Naor–Wool optimal strategy.
func (s *System) MaxLoad(st Strategy) (float64, error) {
	loads, err := s.Loads(st)
	if err != nil {
		return 0, err
	}
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max, nil
}

// OptimalStrategy computes the load-minimizing access strategy of the
// system (the LP from Naor & Wool, "The load, capacity, and availability of
// quorum systems"): minimize z subject to Σ_{Q ∋ u} p(Q) ≤ z for all u and
// Σ_Q p(Q) = 1, p ≥ 0. It returns the strategy and the optimal load.
func OptimalStrategy(s *System) (Strategy, float64, error) {
	prob := lp.NewProblem()
	m := len(s.quorums)
	pv := make([]int, m)
	for i := range pv {
		pv[i] = prob.AddVar(0, fmt.Sprintf("p%d", i))
	}
	z := prob.AddVar(1, "z")
	// Σ p = 1
	terms := make([]lp.Term, m)
	for i := range terms {
		terms[i] = lp.Term{Var: pv[i], Coef: 1}
	}
	prob.AddConstraint(terms, lp.EQ, 1)
	// load(u) - z ≤ 0
	for u := 0; u < s.universe; u++ {
		var t []lp.Term
		for i, q := range s.quorums {
			if containsSorted(q, u) {
				t = append(t, lp.Term{Var: pv[i], Coef: 1})
			}
		}
		if len(t) == 0 {
			continue // element in no quorum carries no load
		}
		t = append(t, lp.Term{Var: z, Coef: -1})
		prob.AddConstraint(t, lp.LE, 0)
	}
	sol, err := prob.Solve()
	if err != nil {
		return Strategy{}, 0, fmt.Errorf("quorum: optimal strategy LP: %w", err)
	}
	p := make([]float64, m)
	for i := range p {
		p[i] = sol.X[pv[i]]
	}
	st, err := NewStrategy(p)
	if err != nil {
		return Strategy{}, 0, fmt.Errorf("quorum: optimal strategy LP returned invalid distribution: %w", err)
	}
	return st, sol.X[z], nil
}

func containsSorted(q []int, u int) bool {
	k := sort.SearchInts(q, u)
	return k < len(q) && q[k] == u
}
