package quorum

import (
	"math"
	"strings"
	"testing"
)

func TestVerifyMaskingIntersection(t *testing.T) {
	// Majority(5,3): pairwise intersections ≥ 1, but some are exactly 1,
	// so it is 0-masking but not 1-masking.
	s := Majority(5, 3)
	if err := s.VerifyMaskingIntersection(0); err != nil {
		t.Fatalf("f=0: %v", err)
	}
	if err := s.VerifyMaskingIntersection(1); err == nil {
		t.Fatal("Majority(5,3) accepted as 1-masking")
	}
	if err := s.VerifyMaskingIntersection(-1); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestMaskingMajority(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{7, 1}, {11, 2}, {9, 1}} {
		s := MaskingMajority(tc.n, tc.f)
		if err := s.VerifyMaskingIntersection(tc.f); err != nil {
			t.Fatalf("n=%d f=%d: %v", tc.n, tc.f, err)
		}
		// Quorum size t = ⌈(n+2f+1)/2⌉.
		want := (tc.n + 2*tc.f + 2) / 2
		if got := len(s.Quorum(0)); got != want {
			t.Fatalf("n=%d f=%d: quorum size %d, want %d", tc.n, tc.f, got, want)
		}
		// Quorums must survive f crashes: t ≤ n-f.
		if want > tc.n-tc.f {
			t.Fatalf("n=%d f=%d: quorum size %d exceeds n-f", tc.n, tc.f, want)
		}
	}
}

func TestMaskingMajorityPanics(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{6, 1}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MaskingMajority(%d,%d) did not panic", tc.n, tc.f)
				}
			}()
			MaskingMajority(tc.n, tc.f)
		}()
	}
}

func TestMaskingGrid(t *testing.T) {
	s := MaskingGrid(4, 1) // rows of 4, 3 columns per quorum
	if s.Universe() != 16 {
		t.Fatalf("universe = %d, want 16", s.Universe())
	}
	// k·C(k,2f+1) = 4·C(4,3) = 16 quorums.
	if s.NumQuorums() != 16 {
		t.Fatalf("quorums = %d, want 16", s.NumQuorums())
	}
	if err := s.VerifyMaskingIntersection(1); err != nil {
		t.Fatal(err)
	}
	// Quorum size: one row (4) + 3 columns (3·4) − 3 overlaps = 13.
	if got := len(s.Quorum(0)); got != 13 {
		t.Fatalf("quorum size %d, want 13", got)
	}
}

func TestMaskingGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaskingGrid(2,1) did not panic (2f+1 > k)")
		}
	}()
	MaskingGrid(2, 1)
}

func TestCombinationsCount(t *testing.T) {
	if got := len(combinations(5, 2)); got != 10 {
		t.Fatalf("C(5,2) enumeration = %d, want 10", got)
	}
	if got := len(combinations(4, 4)); got != 1 {
		t.Fatalf("C(4,4) enumeration = %d, want 1", got)
	}
}

func TestGiffordVoting(t *testing.T) {
	rw := GiffordVoting(5, 2, 4) // r+w=6 > 5, 2w=8 > 5
	if rw.Universe() != 5 {
		t.Fatalf("universe = %d, want 5", rw.Universe())
	}
	if rw.NumReadQuorums() != 10 { // C(5,2)
		t.Fatalf("read quorums = %d, want 10", rw.NumReadQuorums())
	}
	if rw.NumWriteQuorums() != 5 { // C(5,4)
		t.Fatalf("write quorums = %d, want 5", rw.NumWriteQuorums())
	}
	// Reads of size 2 with r+w > n must meet every write of size 4.
	for i := 0; i < rw.NumReadQuorums(); i++ {
		for j := 0; j < rw.NumWriteQuorums(); j++ {
			if !sortedIntersect(rw.ReadQuorum(i), rw.WriteQuorum(j)) {
				t.Fatalf("read %d misses write %d", i, j)
			}
		}
	}
}

func TestGiffordVotingPanics(t *testing.T) {
	cases := []struct{ n, r, w int }{
		{5, 1, 4}, // r+w = n: reads can miss the latest write
		{5, 3, 2}, // 2w ≤ n: writes not serialized
		{5, 0, 5}, // r < 1
		{5, 6, 5}, // r > n
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GiffordVoting(%d,%d,%d) did not panic", tc.n, tc.r, tc.w)
				}
			}()
			GiffordVoting(tc.n, tc.r, tc.w)
		}()
	}
}

func TestNewRWSystemValidation(t *testing.T) {
	if _, err := NewRWSystem("x", 0, [][]int{{0}}, [][]int{{0}}); err == nil {
		t.Fatal("zero universe accepted")
	}
	if _, err := NewRWSystem("x", 2, nil, [][]int{{0}}); err == nil {
		t.Fatal("empty read family accepted")
	}
	// Writes not pairwise intersecting.
	if _, err := NewRWSystem("x", 4, [][]int{{0, 1, 2, 3}}, [][]int{{0, 1}, {2, 3}}); err == nil {
		t.Fatal("non-intersecting writes accepted")
	}
	// A read missing a write.
	if _, err := NewRWSystem("x", 4, [][]int{{0}}, [][]int{{1, 2, 3}}); err == nil {
		t.Fatal("read/write miss accepted")
	}
	// Reads that do not pairwise intersect are fine.
	rw, err := NewRWSystem("ok", 4, [][]int{{0, 1}, {2, 3}}, [][]int{{0, 1, 2, 3}})
	if err != nil {
		t.Fatalf("valid bicoterie rejected: %v", err)
	}
	if rw.NumReadQuorums() != 2 {
		t.Fatalf("read quorums = %d, want 2", rw.NumReadQuorums())
	}
	// Bad read shapes are still rejected.
	if _, err := NewRWSystem("x", 4, [][]int{{0, 0}}, [][]int{{0, 1, 2, 3}}); err == nil {
		t.Fatal("duplicate read element accepted")
	}
	if _, err := NewRWSystem("x", 4, [][]int{{7}}, [][]int{{0, 1, 2, 3}}); err == nil {
		t.Fatal("out-of-range read element accepted")
	}
}

func TestCombine(t *testing.T) {
	rw := GiffordVoting(4, 2, 3)
	sys, st, err := rw.Combine(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumQuorums() != rw.NumReadQuorums()+rw.NumWriteQuorums() {
		t.Fatalf("combined quorums = %d, want %d", sys.NumQuorums(), rw.NumReadQuorums()+rw.NumWriteQuorums())
	}
	// Read mass sums to 0.8, write mass to 0.2.
	readMass := 0.0
	for i := 0; i < rw.NumReadQuorums(); i++ {
		readMass += st.P(i)
	}
	if math.Abs(readMass-0.8) > 1e-12 {
		t.Fatalf("read mass %v, want 0.8", readMass)
	}
	// Loads: heavier read mix shifts load toward... all elements symmetric
	// here; total load = Σ p(Q)·|Q| = 0.8·2 + 0.2·3 = 2.2.
	loads, err := sys.Loads(st)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if math.Abs(total-2.2) > 1e-12 {
		t.Fatalf("total load %v, want 2.2", total)
	}
}

func TestCombineValidation(t *testing.T) {
	rw := GiffordVoting(4, 2, 3)
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, _, err := rw.Combine(bad); err == nil {
			t.Errorf("Combine(%v) accepted", bad)
		}
	}
	// Degenerate mixes are fine.
	for _, ok := range []float64{0, 1} {
		if _, _, err := rw.Combine(ok); err != nil {
			t.Errorf("Combine(%v) rejected: %v", ok, err)
		}
	}
}

// TestCombinedPlacementCompatibility: the combined system flows through the
// standard Loads/MaxLoad machinery (used downstream by placement).
func TestCombinedPlacementCompatibility(t *testing.T) {
	rw := GiffordVoting(5, 2, 4)
	sys, st, err := rw.Combine(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.MaxLoad(st); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(sys.Name(), "-combined") {
		t.Fatalf("combined system name %q", sys.Name())
	}
}
