package quorum

import "fmt"

// Byzantine (masking) quorum systems, after Malkhi & Reiter (the paper's
// reference [16] discusses their load and availability). With up to f
// Byzantine elements, a client that reads from a quorum needs the correct
// replies to outnumber the faulty ones in every pairwise intersection:
// an f-masking system requires |Q ∩ Q'| ≥ 2f+1 for all quorums Q, Q'.
// Placement is orthogonal — the QPP algorithms apply unchanged — but the
// constructions and the verification predicate live here.

// VerifyMaskingIntersection checks that every pair of quorums intersects in
// at least 2f+1 elements (f-masking). f = 0 reduces to the ordinary quorum
// intersection property.
func (s *System) VerifyMaskingIntersection(f int) error {
	if f < 0 {
		return fmt.Errorf("quorum: negative fault bound %d", f)
	}
	need := 2*f + 1
	for i := 0; i < len(s.quorums); i++ {
		for j := i + 1; j < len(s.quorums); j++ {
			if got := sortedIntersectionSize(s.quorums[i], s.quorums[j]); got < need {
				return fmt.Errorf("quorum: quorums %d and %d of %q share %d elements, need %d for f=%d masking",
					i, j, s.name, got, need, f)
			}
		}
	}
	return nil
}

func sortedIntersectionSize(a, b []int) int {
	i, j, count := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			count++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return count
}

// MaskingMajority returns the f-masking threshold system on n elements:
// all subsets of size t = ⌈(n+2f+1)/2⌉. Any two such subsets intersect in
// at least 2t-n ≥ 2f+1 elements. Requires n ≥ 4f+3 so that t ≤ n-f (a
// quorum of live elements exists even with f crashed and the masking bound
// holds); the classical f=0 case is Majority with t = ⌈(n+1)/2⌉.
func MaskingMajority(n, f int) *System {
	if f < 0 {
		panic(fmt.Sprintf("quorum: negative fault bound %d", f))
	}
	if n < 4*f+3 {
		panic(fmt.Sprintf("quorum: masking majority needs n ≥ 4f+3 = %d, got %d", 4*f+3, n))
	}
	t := (n + 2*f + 1 + 1) / 2 // ⌈(n+2f+1)/2⌉
	s := Majority(n, t)
	s.name = fmt.Sprintf("masking-majority-f%d-%d-of-%d", f, t, n)
	if err := s.VerifyMaskingIntersection(f); err != nil {
		panic(err) // construction guarantees this
	}
	return s
}

// MaskingGrid returns the Malkhi–Reiter grid-style masking construction for
// a k×k universe: each quorum is the union of one full row and 2f+1 full
// columns, so any two quorums share at least 2f+1 elements (the chosen
// columns of one meet the full row of the other). Requires 2f+1 ≤ k. The
// number of quorums is k·C(k, 2f+1).
func MaskingGrid(k, f int) *System {
	if f < 0 {
		panic(fmt.Sprintf("quorum: negative fault bound %d", f))
	}
	cols := 2*f + 1
	if cols > k {
		panic(fmt.Sprintf("quorum: masking grid needs 2f+1 ≤ k, got f=%d k=%d", f, k))
	}
	n := k * k
	var quorums [][]int
	colSets := combinations(k, cols)
	for r := 0; r < k; r++ {
		for _, cs := range colSets {
			seen := make(map[int]bool, k+cols*k)
			var q []int
			add := func(e int) {
				if !seen[e] {
					seen[e] = true
					q = append(q, e)
				}
			}
			for c := 0; c < k; c++ {
				add(r*k + c)
			}
			for _, c := range cs {
				for rr := 0; rr < k; rr++ {
					add(rr*k + c)
				}
			}
			quorums = append(quorums, q)
		}
	}
	s := mustNewSystem(fmt.Sprintf("masking-grid-f%d-%dx%d", f, k, k), n, quorums)
	if err := s.VerifyMaskingIntersection(f); err != nil {
		panic(err)
	}
	return s
}

// combinations enumerates all size-k subsets of {0..n-1}.
func combinations(n, k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := start; v <= n-(k-len(cur)); v++ {
			cur = append(cur, v)
			rec(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
