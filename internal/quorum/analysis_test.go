package quorum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFailureProbabilitySingleton(t *testing.T) {
	// One quorum {0}: fails iff element 0 fails.
	s := Singleton()
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		got, err := FailureProbability(s, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p) > 1e-12 {
			t.Fatalf("F_%v = %v, want %v", p, got, p)
		}
	}
}

func TestFailureProbabilityMajorityFormula(t *testing.T) {
	// Majority(3,2): system fails iff ≥ 2 of 3 elements fail:
	// F = 3p²(1-p) + p³.
	s := Majority(3, 2)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.8} {
		want := 3*p*p*(1-p) + p*p*p
		got, err := FailureProbability(s, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("p=%v: F = %v, want %v", p, got, want)
		}
	}
}

// TestMajorityAvailabilityImproves: for p < 1/2, larger majorities are more
// available (the Condorcet effect the paper's references rely on).
func TestMajorityAvailabilityImproves(t *testing.T) {
	p := 0.3
	f3, err := FailureProbability(Majority(3, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := FailureProbability(Majority(5, 3), p)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := FailureProbability(Majority(7, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	if !(f7 < f5 && f5 < f3) {
		t.Fatalf("availability not improving: F3=%v F5=%v F7=%v", f3, f5, f7)
	}
}

func TestFailureProbabilityBounds(t *testing.T) {
	if _, err := FailureProbability(Majority(3, 2), -0.1); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := FailureProbability(Majority(3, 2), 1.1); err == nil {
		t.Fatal("p > 1 accepted")
	}
}

func TestEstimateMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	systems := []*System{Majority(5, 3), Grid(2), Wheel(5), FPP(2)}
	for _, s := range systems {
		for _, p := range []float64{0.2, 0.5} {
			exactF, err := FailureProbability(s, p)
			if err != nil {
				t.Fatal(err)
			}
			est, err := EstimateFailureProbability(s, p, 40000, rng)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est-exactF) > 0.01 {
				t.Fatalf("%s p=%v: estimate %v vs exact %v", s.Name(), p, est, exactF)
			}
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	s := Majority(3, 2)
	rng := rand.New(rand.NewSource(1))
	if _, err := EstimateFailureProbability(s, 0.5, 0, rng); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := EstimateFailureProbability(s, 2, 10, rng); err == nil {
		t.Fatal("p=2 accepted")
	}
}

func TestResilience(t *testing.T) {
	cases := []struct {
		name string
		s    *System
		want int
	}{
		// Singleton: killing element 0 kills the system → resilience 0.
		{"singleton", Singleton(), 0},
		// Majority(5,3): any 2 failures leave 3 alive → resilience 2.
		{"majority 3of5", Majority(5, 3), 2},
		// Majority(5,4): 1 failure leaves 4 → resilience 1.
		{"majority 4of5", Majority(5, 4), 1},
		// Star: killing the hub kills everything → resilience 0.
		{"star", Star(5), 0},
		// Wheel: must kill the hub AND a spoke... killing the hub leaves
		// the all-spokes quorum; killing hub + one spoke kills everything
		// → min hitting set 2 → resilience 1.
		{"wheel", Wheel(5), 1},
		// Grid k: killing one row kills every quorum (each quorum spans
		// all rows via its column... each quorum contains a full row and
		// hits every row via the column) — a full row of k elements hits
		// every quorum; nothing smaller does → resilience k-1.
		{"grid 2", Grid(2), 1},
		{"grid 3", Grid(3), 2},
		// FPP(2): lines of the Fano plane; min hitting set is a line (3
		// points) → resilience 2.
		{"fpp 2", FPP(2), 2},
		// Recursive majority height 1 = Majority(3,2).
		{"recmajority h1", RecursiveMajority(1), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Resilience(tc.s); got != tc.want {
				t.Fatalf("Resilience = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestMinQuorumSizeAndLoadLowerBound(t *testing.T) {
	s := Grid(3) // quorums of 5 on 9 elements
	if got := MinQuorumSize(s); got != 5 {
		t.Fatalf("MinQuorumSize = %d, want 5", got)
	}
	// max(1/5, 5/9) = 5/9.
	if got := LoadLowerBound(s); math.Abs(got-5.0/9) > 1e-12 {
		t.Fatalf("LoadLowerBound = %v, want %v", got, 5.0/9)
	}
	w := Wheel(6)
	if got := MinQuorumSize(w); got != 2 {
		t.Fatalf("wheel MinQuorumSize = %d, want 2", got)
	}
	if got := LoadLowerBound(w); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("wheel LoadLowerBound = %v, want 0.5", got)
	}
}

// TestOptimalStrategyMeetsLowerBound: the LP-optimal load always respects
// the Naor–Wool bound, and meets it exactly for the Grid and FPP.
func TestOptimalStrategyMeetsLowerBound(t *testing.T) {
	for _, s := range []*System{Grid(2), Grid(3), FPP(2), FPP(3), Majority(5, 3)} {
		_, load, err := OptimalStrategy(s)
		if err != nil {
			t.Fatal(err)
		}
		lb := LoadLowerBound(s)
		if load < lb-1e-6 {
			t.Fatalf("%s: optimal load %v below lower bound %v", s.Name(), load, lb)
		}
	}
	// Grid meets the bound exactly: load = (2k-1)/k² = c/n with c = 2k-1.
	_, load, err := OptimalStrategy(Grid(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-LoadLowerBound(Grid(3))) > 1e-6 {
		t.Fatalf("grid-3 load %v does not meet its lower bound %v", load, LoadLowerBound(Grid(3)))
	}
}

func TestRecursiveMajorityShape(t *testing.T) {
	h1 := RecursiveMajority(1)
	if h1.Universe() != 3 || h1.NumQuorums() != 3 {
		t.Fatalf("h1: universe=%d quorums=%d, want 3, 3", h1.Universe(), h1.NumQuorums())
	}
	h2 := RecursiveMajority(2)
	if h2.Universe() != 9 || h2.NumQuorums() != 27 {
		t.Fatalf("h2: universe=%d quorums=%d, want 9, 27", h2.Universe(), h2.NumQuorums())
	}
	for i := 0; i < h2.NumQuorums(); i++ {
		if len(h2.Quorum(i)) != 4 {
			t.Fatalf("h2 quorum %d has %d elements, want 4", i, len(h2.Quorum(i)))
		}
	}
	// Intersection is verified by construction (mustNewSystem); double check.
	if err := h2.VerifyIntersection(); err != nil {
		t.Fatal(err)
	}
	h3 := RecursiveMajority(3)
	if h3.Universe() != 27 || h3.NumQuorums() != 3*27*27 {
		t.Fatalf("h3: universe=%d quorums=%d, want 27, %d", h3.Universe(), h3.NumQuorums(), 3*27*27)
	}
}

// TestFailureProbabilityMonotoneProperty: F_p is nondecreasing in p for
// random systems (testing/quick over thresholds and probabilities).
func TestFailureProbabilityMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		th := n/2 + 1
		s := Majority(n, th)
		p1 := rng.Float64()
		p2 := rng.Float64()
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		f1, err := FailureProbability(s, p1)
		if err != nil {
			return false
		}
		f2, err := FailureProbability(s, p2)
		if err != nil {
			return false
		}
		return f1 <= f2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestResilienceMatchesFailureEnumeration: resilience f means some (f+1)-set
// kills the system but no f-set does; cross-check by enumeration.
func TestResilienceMatchesFailureEnumeration(t *testing.T) {
	systems := []*System{Majority(5, 3), Grid(2), Wheel(4), FPP(2), CrumblingWalls([]int{2, 2})}
	for _, s := range systems {
		r := Resilience(s)
		masks := s.quorumMasks()
		n := s.Universe()
		killsAll := func(dead uint64) bool {
			for _, qm := range masks {
				if qm&dead == 0 {
					return false
				}
			}
			return true
		}
		// No failure set of size ≤ r kills the system.
		for dead := uint64(0); dead < 1<<uint(n); dead++ {
			k := popcount(dead)
			if k <= r && killsAll(dead) {
				t.Fatalf("%s: failure set %b of size %d ≤ resilience %d kills the system", s.Name(), dead, k, r)
			}
		}
		// Some failure set of size r+1 kills it.
		found := false
		for dead := uint64(0); dead < 1<<uint(n); dead++ {
			if popcount(dead) == r+1 && killsAll(dead) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: no failure set of size %d kills the system; resilience %d too low", s.Name(), r+1, r)
		}
	}
}
