package quorum

import (
	"fmt"
	"math"
)

// Read/write quorum systems (bicoteries): separate read and write quorum
// families where every read quorum intersects every write quorum (and
// writes intersect writes, so the latest write is always visible). Gifford's
// weighted voting — reference [8] of the paper — is the classical instance:
// read threshold r and write threshold w with r + w > n and 2w > n.
//
// Placement treats a read/write system through its access mix: with a
// fraction ρ of reads, the client samples a read quorum with probability ρ
// and a write quorum otherwise. Combine flattens that into an ordinary
// (System, Strategy) pair, after which every placement algorithm in this
// library applies unchanged.

// RWSystem is a read/write quorum system over a shared universe.
type RWSystem struct {
	name     string
	universe int
	reads    [][]int
	writes   [][]int
}

// NewRWSystem validates and builds a read/write system: every read quorum
// must intersect every write quorum, and write quorums must pairwise
// intersect. Read quorums need not intersect each other.
func NewRWSystem(name string, universe int, reads, writes [][]int) (*RWSystem, error) {
	if universe <= 0 {
		return nil, fmt.Errorf("quorum: universe size %d must be positive", universe)
	}
	if len(reads) == 0 || len(writes) == 0 {
		return nil, fmt.Errorf("quorum: rw system %q needs at least one read and one write quorum", name)
	}
	// Writes must pairwise intersect: reuse the single-family validator.
	wsys, err := NewSystem(name+"-writes", universe, writes)
	if err != nil {
		return nil, err
	}
	rw := &RWSystem{name: name, universe: universe, writes: wsys.quorums}
	// Reads need not pairwise intersect; validate shape only.
	cleanReads, err := normalizeQuorums(name+"-reads", universe, reads)
	if err != nil {
		return nil, err
	}
	rw.reads = cleanReads
	// Cross intersection: every read meets every write.
	for i, r := range rw.reads {
		for j, w := range rw.writes {
			if !sortedIntersect(r, w) {
				return nil, fmt.Errorf("quorum: read quorum %d and write quorum %d of %q do not intersect", i, j, name)
			}
		}
	}
	return rw, nil
}

// normalizeQuorums validates element ranges and duplicates and returns
// sorted copies, without requiring pairwise intersection.
func normalizeQuorums(name string, universe int, quorums [][]int) ([][]int, error) {
	out := make([][]int, len(quorums))
	for i, q := range quorums {
		if len(q) == 0 {
			return nil, fmt.Errorf("quorum: quorum %d of %q is empty", i, name)
		}
		c := append([]int(nil), q...)
		insertionSortInts(c)
		for j, u := range c {
			if u < 0 || u >= universe {
				return nil, fmt.Errorf("quorum: quorum %d of %q contains element %d outside universe [0,%d)", i, name, u, universe)
			}
			if j > 0 && c[j-1] == u {
				return nil, fmt.Errorf("quorum: quorum %d of %q contains duplicate element %d", i, name, u)
			}
		}
		out[i] = c
	}
	return out, nil
}

func insertionSortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Name returns the system name.
func (rw *RWSystem) Name() string { return rw.name }

// Universe returns the number of logical elements.
func (rw *RWSystem) Universe() int { return rw.universe }

// NumReadQuorums returns the number of read quorums.
func (rw *RWSystem) NumReadQuorums() int { return len(rw.reads) }

// NumWriteQuorums returns the number of write quorums.
func (rw *RWSystem) NumWriteQuorums() int { return len(rw.writes) }

// ReadQuorum returns the i-th read quorum (owned by the system).
func (rw *RWSystem) ReadQuorum(i int) []int { return rw.reads[i] }

// WriteQuorum returns the i-th write quorum (owned by the system).
func (rw *RWSystem) WriteQuorum(i int) []int { return rw.writes[i] }

// GiffordVoting returns the read/write threshold system on n unweighted
// elements with read threshold r and write threshold w: read quorums are
// all r-subsets, write quorums all w-subsets. Requires r + w > n (reads see
// the latest write) and 2w > n (writes are serialized).
func GiffordVoting(n, r, w int) *RWSystem {
	if r < 1 || w < 1 || r > n || w > n {
		panic(fmt.Sprintf("quorum: bad thresholds r=%d w=%d for n=%d", r, w, n))
	}
	if r+w <= n {
		panic(fmt.Sprintf("quorum: r+w = %d must exceed n = %d", r+w, n))
	}
	if 2*w <= n {
		panic(fmt.Sprintf("quorum: 2w = %d must exceed n = %d", 2*w, n))
	}
	reads := combinations(n, r)
	writes := combinations(n, w)
	rw, err := NewRWSystem(fmt.Sprintf("gifford-r%d-w%d-of-%d", r, w, n), n, reads, writes)
	if err != nil {
		panic(err)
	}
	return rw
}

// Combine flattens the read/write system into an ordinary quorum system and
// strategy for a workload with read fraction readFrac ∈ [0, 1]: the
// combined quorum list is reads ++ writes, with uniform probability within
// each family scaled by the mix. The combined family is pairwise
// intersecting (reads×writes and writes×writes by construction) except
// possibly read×read — callers placing a combined system should note that
// read/read intersection is NOT required by bicoterie semantics, so the
// returned System is built without that check and carries it as documented
// behavior.
func (rw *RWSystem) Combine(readFrac float64) (*System, Strategy, error) {
	if readFrac < 0 || readFrac > 1 || math.IsNaN(readFrac) {
		return nil, Strategy{}, fmt.Errorf("quorum: read fraction %v outside [0,1]", readFrac)
	}
	quorums := make([][]int, 0, len(rw.reads)+len(rw.writes))
	for _, q := range rw.reads {
		quorums = append(quorums, append([]int(nil), q...))
	}
	for _, q := range rw.writes {
		quorums = append(quorums, append([]int(nil), q...))
	}
	sys := &System{
		name:     rw.name + "-combined",
		universe: rw.universe,
		quorums:  quorums,
	}
	probs := make([]float64, len(quorums))
	for i := range rw.reads {
		probs[i] = readFrac / float64(len(rw.reads))
	}
	for j := range rw.writes {
		probs[len(rw.reads)+j] = (1 - readFrac) / float64(len(rw.writes))
	}
	// Degenerate mixes put zero mass on one family; renormalization is
	// already exact because each family's masses sum to its fraction.
	st, err := NewStrategy(probs)
	if err != nil {
		return nil, Strategy{}, err
	}
	return sys, st, nil
}
