package migrate

import (
	"fmt"
	"math"

	"quorumplace/internal/gap"
	"quorumplace/internal/placement"
)

// ShardPlan is the outcome of one incremental Planner.Solve: new node
// assignments for the planner's element subset only.
type ShardPlan struct {
	Elems   []int // universe elements this planner owns (construction order)
	Nodes   []int // Nodes[i] = new node of Elems[i]
	LPBound float64
	Warm    bool // the LP re-solve reused the previous basis
}

// Planner re-plans a fixed subset of the placement universe repeatedly.
// It holds a gap.Skeleton whose LP basis survives between solves, so a
// steady-state re-plan (costs moved by drift, capacities moved by the
// incumbent placement) runs phase 2 of the simplex only — the incremental
// tick of the quorumd daemon, which partitions the universe across K
// planners and re-solves one per tick.
//
// The forbidden (node, element) pattern is fixed at construction from the
// instance's full capacities: an element whose load exceeds cap(v) never
// gets a variable on v. Per-solve residual capacities may later shrink the
// budgets below some loads; such pairs are then cut by the capacity row
// rather than excluded structurally (which would force every solve cold),
// at the cost of a slightly weaker p_max term in the Theorem 5.1 load
// bound. A Planner is not safe for concurrent use.
type Planner struct {
	ins     *placement.Instance
	elems   []int
	g       *gap.Instance
	sk      *gap.Skeleton
	rws     *gap.Workspace
	avgDist []float64
	cost    [][]float64
	caps    []float64
}

// NewPlanner builds a planner for the given universe elements; nil means
// the full universe. The element list is copied.
func NewPlanner(ins *placement.Instance, elems []int) (*Planner, error) {
	nU := ins.Sys.Universe()
	if elems == nil {
		elems = make([]int, nU)
		for u := range elems {
			elems[u] = u
		}
	} else {
		elems = append([]int(nil), elems...)
		seen := make(map[int]bool, len(elems))
		for _, u := range elems {
			if u < 0 || u >= nU {
				return nil, fmt.Errorf("migrate: element %d outside universe of %d", u, nU)
			}
			if seen[u] {
				return nil, fmt.Errorf("migrate: duplicate element %d", u)
			}
			seen[u] = true
		}
	}
	if len(elems) == 0 {
		return nil, fmt.Errorf("migrate: planner needs at least one element")
	}
	n := ins.M.N()
	g := &gap.Instance{
		Cost: make([][]float64, n),
		Load: make([][]float64, n),
		T:    append([]float64(nil), ins.Cap...),
	}
	for v := 0; v < n; v++ {
		g.Cost[v] = make([]float64, len(elems))
		g.Load[v] = make([]float64, len(elems))
		for i, u := range elems {
			l := ins.Load(u)
			if l > ins.Cap[v]*(1+1e-9) {
				g.Load[v][i] = math.Inf(1)
			} else {
				g.Load[v][i] = l
			}
		}
	}
	sk, err := gap.NewSkeleton(g)
	if err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	return &Planner{
		ins:   ins,
		elems: elems,
		g:     g,
		sk:    sk,
		rws:   gap.NewWorkspace(),
		// cost aliases g.Cost so both the skeleton re-cost and the
		// rounding's edge costs see each solve's current values.
		cost:    g.Cost,
		caps:    g.T, // likewise, capacity edits flow into the rounding instance
		avgDist: make([]float64, n),
	}, nil
}

// Elements returns the planner's element subset (not a copy; do not mutate).
func (pl *Planner) Elements() []int { return pl.elems }

// ResetWarm discards the retained LP basis so the next solve runs cold.
func (pl *Planner) ResetWarm() { pl.sk.ResetWarm() }

// refreshAvgDist recomputes the rate-weighted average client distance to
// each node under the instance's current Rates, in the exact operation
// order of Solve so full-universe cold plans match it bitwise.
func (pl *Planner) refreshAvgDist() {
	ins := pl.ins
	n := ins.M.N()
	wsum := 0.0
	for v2 := 0; v2 < n; v2++ {
		w := 1.0
		if ins.Rates != nil {
			w = ins.Rates[v2]
		}
		wsum += w
	}
	for v := 0; v < n; v++ {
		sum := 0.0
		for v2 := 0; v2 < n; v2++ {
			w := 1.0
			if ins.Rates != nil {
				w = ins.Rates[v2]
			}
			sum += w * ins.M.D(v2, v)
		}
		pl.avgDist[v] = sum / wsum
	}
}

// Solve re-plans the planner's elements against the (full) incumbent
// placement: minimize Σ load·avgDist + λ·movement over the subset, under
// the given per-node capacities (nil = the instance capacities; a daemon
// passes residual capacities with the load of non-subset elements already
// subtracted). λ must be finite and non-negative.
func (pl *Planner) Solve(oldP placement.Placement, lambda float64, caps []float64) (*ShardPlan, error) {
	ins := pl.ins
	if err := ins.Validate(oldP); err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("migrate: lambda = %v must be a finite non-negative value", lambda)
	}
	n := ins.M.N()
	if caps == nil {
		caps = ins.Cap
	} else if len(caps) != n {
		return nil, fmt.Errorf("migrate: %d capacities for %d nodes", len(caps), n)
	}
	pl.refreshAvgDist()
	for v := 0; v < n; v++ {
		for i, u := range pl.elems {
			l := ins.Load(u)
			pl.cost[v][i] = l*pl.avgDist[v] + lambda*l*ins.M.D(oldP.Node(u), v)
		}
	}
	if err := pl.sk.SetCosts(pl.cost); err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	copy(pl.caps, caps)
	if err := pl.sk.SetCapacities(pl.caps); err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	y, lpObj, warm, err := pl.sk.SolveLP()
	if err != nil {
		return nil, fmt.Errorf("migrate: GAP: %w", err)
	}
	assign, _, err := gap.RoundWith(pl.rws, pl.g, y)
	if err != nil {
		return nil, fmt.Errorf("migrate: GAP: %w", err)
	}
	return &ShardPlan{
		Elems:   pl.elems,
		Nodes:   assign,
		LPBound: lpObj,
		Warm:    warm,
	}, nil
}

// Plan is Solve over the full universe, composed into a *Plan like the
// package-level Solve (whose cold result it matches bitwise). It returns an
// error when the planner was built for a proper subset.
func (pl *Planner) Plan(oldP placement.Placement, lambda float64) (*Plan, bool, error) {
	if len(pl.elems) != pl.ins.Sys.Universe() {
		return nil, false, fmt.Errorf("migrate: Plan needs a full-universe planner (%d of %d elements)",
			len(pl.elems), pl.ins.Sys.Universe())
	}
	sp, err := pl.Solve(oldP, lambda, nil)
	if err != nil {
		return nil, false, err
	}
	newP := placement.NewPlacement(sp.Nodes)
	moved, err := Cost(pl.ins, oldP, newP)
	if err != nil {
		return nil, sp.Warm, err
	}
	return &Plan{
		Placement: newP,
		AvgDelay:  pl.ins.AvgTotalDelay(newP),
		Moved:     moved,
		Lambda:    lambda,
		LPBound:   sp.LPBound,
	}, sp.Warm, nil
}
