package migrate

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func buildInstance(t *testing.T, rng *rand.Rand) (*placement.Instance, placement.Placement) {
	t.Helper()
	n := 8
	g := graph.ErdosRenyiConnected(n, 0.4, 1, 4, rng)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Majority(4, 3)
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 1.6
	}
	ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	old, err := placement.RandomFeasiblePlacement(ins, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	return ins, old
}

func TestCost(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	ins, old := buildInstance(t, rng)
	// Identity migration costs nothing.
	c, err := Cost(ins, old, old)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("self-migration cost %v, want 0", c)
	}
	// Moving one element by distance d costs load(u)·d.
	f := old.Map()
	from := f[0]
	to := (from + 1) % ins.M.N()
	f[0] = to
	moved := placement.NewPlacement(f)
	c, err = Cost(ins, old, moved)
	if err != nil {
		t.Fatal(err)
	}
	want := ins.Load(0) * ins.M.D(from, to)
	if math.Abs(c-want) > 1e-12 {
		t.Fatalf("cost %v, want %v", c, want)
	}
}

func TestCostValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	ins, old := buildInstance(t, rng)
	if _, err := Cost(ins, old, placement.NewPlacement([]int{0})); err == nil {
		t.Fatal("short new placement accepted")
	}
	if _, err := Cost(ins, placement.NewPlacement([]int{0}), old); err == nil {
		t.Fatal("short old placement accepted")
	}
}

func TestSolveValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	ins, old := buildInstance(t, rng)
	if _, err := Solve(ins, old, -1); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if _, err := Solve(ins, old, math.Inf(1)); err == nil {
		t.Fatal("infinite lambda accepted")
	}
}

// TestLambdaZeroMatchesTotalDelay: λ=0 reduces to the Theorem 5.1 solver.
func TestLambdaZeroMatchesTotalDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	ins, old := buildInstance(t, rng)
	plan, err := Solve(ins, old, 0)
	if err != nil {
		t.Fatal(err)
	}
	td, err := placement.SolveTotalDelay(ins)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.AvgDelay-td.AvgDelay) > 1e-6 {
		t.Fatalf("λ=0 delay %v != SolveTotalDelay %v", plan.AvgDelay, td.AvgDelay)
	}
}

// TestLargeLambdaFreezes: with a huge movement weight and a feasible old
// placement, the plan stays put.
func TestLargeLambdaFreezes(t *testing.T) {
	rng := rand.New(rand.NewSource(309))
	ins, old := buildInstance(t, rng)
	plan, err := Solve(ins, old, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Moved > 1e-9 {
		t.Fatalf("λ=1e6 still moved %v", plan.Moved)
	}
	for u := 0; u < old.Len(); u++ {
		if plan.Placement.Node(u) != old.Node(u) {
			t.Fatalf("element %d moved from %d to %d despite huge λ", u, old.Node(u), plan.Placement.Node(u))
		}
	}
}

// TestParetoMonotone: along increasing λ, movement cost is non-increasing
// and delay non-decreasing (standard Pareto behavior of a weighted-sum
// scan, up to rounding noise from the GAP step).
func TestParetoMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	ins, old := buildInstance(t, rng)
	lambdas := []float64{0, 0.5, 1, 2, 5, 20, 100}
	plans, err := ParetoSweep(ins, old, lambdas)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(lambdas) {
		t.Fatalf("%d plans for %d lambdas", len(plans), len(lambdas))
	}
	const tol = 1e-6
	for i := 1; i < len(plans); i++ {
		if plans[i].Moved > plans[i-1].Moved+tol {
			t.Fatalf("movement increased along λ: %v -> %v (λ %v -> %v)",
				plans[i-1].Moved, plans[i].Moved, lambdas[i-1], lambdas[i])
		}
		if plans[i].AvgDelay < plans[i-1].AvgDelay-tol {
			t.Fatalf("delay decreased along λ: %v -> %v", plans[i-1].AvgDelay, plans[i].AvgDelay)
		}
	}
}

// TestLoadGuarantee: the planned placement keeps loads within 2·cap
// (Theorem 5.1 applied to the combined objective).
func TestLoadGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	for trial := 0; trial < 5; trial++ {
		ins, old := buildInstance(t, rng)
		plan, err := Solve(ins, old, 1)
		if err != nil {
			t.Fatal(err)
		}
		for v, l := range ins.NodeLoads(plan.Placement) {
			if l > 2*ins.Cap[v]+1e-6 {
				t.Fatalf("trial %d: node %d load %v exceeds 2·cap %v", trial, v, l, 2*ins.Cap[v])
			}
		}
		// Combined objective ≥ LP bound.
		combined := plan.AvgDelay + plan.Lambda*plan.Moved
		if combined < plan.LPBound-1e-6 {
			t.Fatalf("trial %d: combined objective %v below LP bound %v", trial, combined, plan.LPBound)
		}
	}
}

func TestParetoSweepValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(315))
	ins, old := buildInstance(t, rng)
	if _, err := ParetoSweep(ins, old, nil); err == nil {
		t.Fatal("empty lambda list accepted")
	}
}

// TestParetoSweepValidatesUpFront is the regression test for the
// all-or-nothing sweep bug: an invalid λ late in the list used to be
// discovered only after solving every earlier λ, throwing that work away.
// Now the sweep must reject the list before running a single solve.
func TestParetoSweepValidatesUpFront(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	ins, old := buildInstance(t, rng)
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		col := obs.NewCollector()
		obs.Enable(col)
		plans, err := ParetoSweep(ins, old, []float64{0, 1, 2, bad})
		obs.Disable()
		if err == nil {
			t.Fatalf("lambda %v accepted", bad)
		}
		if plans != nil {
			t.Fatalf("lambda %v: got %d plans alongside the error", bad, len(plans))
		}
		if !strings.Contains(err.Error(), "lambda[3]") {
			t.Fatalf("error %q does not name the offending index", err)
		}
		// No LP may have been solved before the rejection: the earlier,
		// valid lambdas must not have been processed and discarded.
		if n := col.Snapshot().Counter("lp.solves"); n != 0 {
			t.Fatalf("lambda %v: %d LP solves ran before the sweep was rejected", bad, n)
		}
	}
}
