// Package migrate plans placement changes: when client rates, capacities,
// or the network change, a new placement trades access delay against the
// cost of moving replica state between nodes. Because both the total-delay
// objective (§5 of the paper) and the movement cost decompose per element,
// their weighted sum is still a Generalized Assignment Problem, so the
// Theorem 5.1 machinery applies verbatim: the planned placement's combined
// objective is no worse than that of any capacity-respecting placement,
// with node loads within 2·cap.
//
// Sweeping the movement weight λ traces the delay/migration Pareto
// frontier; λ = 0 recovers placement.SolveTotalDelay, λ → ∞ freezes the
// old placement (when it is still capacity-feasible).
package migrate

import (
	"fmt"
	"math"

	"quorumplace/internal/gap"
	"quorumplace/internal/placement"
)

// Cost returns the movement cost of switching from the old to the new
// placement: Σ_u load(u) · d(old(u), new(u)). Element load is the proxy
// for state size (heavily used elements hold proportionally more state in
// the paper's load model).
func Cost(ins *placement.Instance, oldP, newP placement.Placement) (float64, error) {
	if err := ins.Validate(oldP); err != nil {
		return 0, fmt.Errorf("migrate: old placement: %w", err)
	}
	if err := ins.Validate(newP); err != nil {
		return 0, fmt.Errorf("migrate: new placement: %w", err)
	}
	sum := 0.0
	for u := 0; u < oldP.Len(); u++ {
		sum += ins.Load(u) * ins.M.D(oldP.Node(u), newP.Node(u))
	}
	return sum, nil
}

// Plan is the outcome of Solve.
type Plan struct {
	Placement placement.Placement
	AvgDelay  float64 // Avg_v Γ of the new placement
	Moved     float64 // movement cost from the old placement
	Lambda    float64
	LPBound   float64 // lower bound on delay + λ·movement over capacity-respecting placements
}

// Solve computes a placement minimizing AvgΓ + λ·movement-from-oldP via the
// GAP reduction, with node loads within 2·cap (Theorem 5.1's guarantee
// applied to the combined objective). λ must be non-negative.
func Solve(ins *placement.Instance, oldP placement.Placement, lambda float64) (*Plan, error) {
	if err := ins.Validate(oldP); err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("migrate: lambda = %v must be a finite non-negative value", lambda)
	}
	n := ins.M.N()
	nU := ins.Sys.Universe()
	// Rate-weighted average client distance to each node, matching the
	// Avg_v Γ objective under Instance.Rates (the §6 extension).
	avgDist := make([]float64, n)
	wsum := 0.0
	for v2 := 0; v2 < n; v2++ {
		w := 1.0
		if ins.Rates != nil {
			w = ins.Rates[v2]
		}
		wsum += w
	}
	for v := 0; v < n; v++ {
		sum := 0.0
		for v2 := 0; v2 < n; v2++ {
			w := 1.0
			if ins.Rates != nil {
				w = ins.Rates[v2]
			}
			sum += w * ins.M.D(v2, v)
		}
		avgDist[v] = sum / wsum
	}
	g := &gap.Instance{
		Cost: make([][]float64, n),
		Load: make([][]float64, n),
		T:    append([]float64(nil), ins.Cap...),
	}
	for v := 0; v < n; v++ {
		g.Cost[v] = make([]float64, nU)
		g.Load[v] = make([]float64, nU)
		for u := 0; u < nU; u++ {
			l := ins.Load(u)
			g.Cost[v][u] = l*avgDist[v] + lambda*l*ins.M.D(oldP.Node(u), v)
			if l > ins.Cap[v]*(1+1e-9) {
				g.Load[v][u] = math.Inf(1)
			} else {
				g.Load[v][u] = l
			}
		}
	}
	assign, _, lpObj, err := gap.Solve(g)
	if err != nil {
		return nil, fmt.Errorf("migrate: GAP: %w", err)
	}
	pl := placement.NewPlacement(assign)
	moved, err := Cost(ins, oldP, pl)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Placement: pl,
		AvgDelay:  ins.AvgTotalDelay(pl),
		Moved:     moved,
		Lambda:    lambda,
		LPBound:   lpObj,
	}, nil
}

// ParetoSweep solves Plan for each λ and returns the plans in order. Use it
// to chart the delay/movement frontier after a workload shift.
//
// All λ values are validated before any solve runs, so a bad value late in
// the sweep is rejected up front instead of discarding the plans already
// computed for the earlier values.
func ParetoSweep(ins *placement.Instance, oldP placement.Placement, lambdas []float64) ([]*Plan, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("migrate: no lambda values")
	}
	for i, l := range lambdas {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("migrate: lambda[%d] = %v must be a finite non-negative value", i, l)
		}
	}
	plans := make([]*Plan, 0, len(lambdas))
	for _, l := range lambdas {
		p, err := Solve(ins, oldP, l)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
}
