package migrate

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"quorumplace/internal/check"
	"quorumplace/internal/placement"
)

// TestPlannerMatchesSolveBitwise pins that a full-universe Planner's cold
// Plan is bit-for-bit the package-level Solve over generated instances:
// same placement, same delay/movement/bound floats. The daemon's replay
// determinism rests on this equivalence.
func TestPlannerMatchesSolveBitwise(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		ci := check.Gen(seed)
		old := ci.Planted
		for _, lambda := range []float64{0, 0.7, 3} {
			want, err := Solve(ci.Instance, old, lambda)
			if err != nil {
				t.Fatalf("seed %d λ=%v: Solve: %v", seed, lambda, err)
			}
			pl, err := NewPlanner(ci.Instance, nil)
			if err != nil {
				t.Fatalf("seed %d: NewPlanner: %v", seed, err)
			}
			got, warm, err := pl.Plan(old, lambda)
			if err != nil {
				t.Fatalf("seed %d λ=%v: Plan: %v", seed, lambda, err)
			}
			if warm {
				t.Fatalf("seed %d λ=%v: first planner solve claimed warm", seed, lambda)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d λ=%v: planner plan differs from Solve:\n got %+v\nwant %+v",
					seed, lambda, got, want)
			}
		}
	}
}

// TestPlannerWarmRepeated re-plans with drifting rates through one planner
// and checks each warm result against a fresh package-level Solve: equal
// LP bound (the combined-objective lower bound is vertex-independent) and
// a no-worse combined objective, plus the 2·cap load guarantee.
func TestPlannerWarmRepeated(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	ins, old := buildInstance(t, rng)
	pl, err := NewPlanner(ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := ins.M.N()
	warmCount := 0
	cur := old
	for iter := 0; iter < 8; iter++ {
		rates := make([]float64, n)
		for v := range rates {
			rates[v] = 0.5 + rng.Float64()
		}
		if err := ins.SetRates(rates); err != nil {
			t.Fatal(err)
		}
		plan, warm, err := pl.Plan(cur, 0.5)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if warm {
			warmCount++
		}
		ref, err := Solve(ins, cur, 0.5)
		if err != nil {
			t.Fatalf("iter %d: reference: %v", iter, err)
		}
		if math.Abs(plan.LPBound-ref.LPBound) > 1e-6*(1+math.Abs(ref.LPBound)) {
			t.Fatalf("iter %d (warm=%v): LP bound %v != reference %v", iter, warm, plan.LPBound, ref.LPBound)
		}
		combined := plan.AvgDelay + 0.5*plan.Moved
		if combined < plan.LPBound-1e-6 {
			t.Fatalf("iter %d: combined objective %v below its LP bound %v", iter, combined, plan.LPBound)
		}
		for v, l := range ins.NodeLoads(plan.Placement) {
			if l > 2*ins.Cap[v]+1e-6 {
				t.Fatalf("iter %d: node %d load %v exceeds 2·cap", iter, v, l)
			}
		}
		cur = plan.Placement
	}
	if warmCount == 0 {
		t.Fatal("no re-plan took the warm path")
	}
}

// TestPlannerShard checks subset planning under residual capacities: the
// shard solve must leave non-shard elements untouched, produce nodes for
// exactly the shard's elements, and respect the residual budgets in the
// LP sense (integral overshoot bounded by one element per node).
func TestPlannerShard(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	ins, old := buildInstance(t, rng)
	nU := ins.Sys.Universe()
	var shard []int
	for u := 0; u < nU; u += 2 {
		shard = append(shard, u)
	}
	pl, err := NewPlanner(ins, shard)
	if err != nil {
		t.Fatal(err)
	}
	inShard := make(map[int]bool, len(shard))
	for _, u := range shard {
		inShard[u] = true
	}
	// Residual capacities: full caps minus the load of incumbent non-shard
	// elements, clamped at zero.
	resid := append([]float64(nil), ins.Cap...)
	for u := 0; u < nU; u++ {
		if !inShard[u] {
			resid[old.Node(u)] -= ins.Load(u)
		}
	}
	for v := range resid {
		if resid[v] < 0 {
			resid[v] = 0
		}
	}
	sp, err := pl.Solve(old, 0.5, resid)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Nodes) != len(shard) || !reflect.DeepEqual(sp.Elems, shard) {
		t.Fatalf("shard plan shape: %d nodes for %d elements", len(sp.Nodes), len(shard))
	}
	// Compose the full placement and check the per-node load bound
	// resid + p_max ≤ cap + p_max ≤ 2·cap.
	f := old.Map()
	for i, u := range shard {
		f[u] = sp.Nodes[i]
	}
	full := placement.NewPlacement(f)
	if err := ins.Validate(full); err != nil {
		t.Fatal(err)
	}
	for v, l := range ins.NodeLoads(full) {
		if l > 2*ins.Cap[v]+1e-6 {
			t.Fatalf("node %d load %v exceeds 2·cap %v", v, l, 2*ins.Cap[v])
		}
	}
	// Plan() is reserved for full-universe planners.
	if _, _, err := pl.Plan(old, 0.5); err == nil {
		t.Fatal("Plan on a shard planner accepted")
	}
}

// TestPlannerValidation covers the constructor and solve edge cases.
func TestPlannerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	ins, old := buildInstance(t, rng)
	if _, err := NewPlanner(ins, []int{0, 0}); err == nil {
		t.Fatal("duplicate element accepted")
	}
	if _, err := NewPlanner(ins, []int{-1}); err == nil {
		t.Fatal("negative element accepted")
	}
	if _, err := NewPlanner(ins, []int{ins.Sys.Universe()}); err == nil {
		t.Fatal("out-of-range element accepted")
	}
	if _, err := NewPlanner(ins, []int{}); err == nil {
		t.Fatal("empty element list accepted")
	}
	pl, err := NewPlanner(ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Solve(old, -1, nil); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if _, err := pl.Solve(old, math.NaN(), nil); err == nil {
		t.Fatal("NaN lambda accepted")
	}
	if _, err := pl.Solve(old, 1, []float64{1}); err == nil {
		t.Fatal("short capacity vector accepted")
	}
	if _, err := pl.Solve(placement.NewPlacement([]int{0}), 1, nil); err == nil {
		t.Fatal("short placement accepted")
	}
}
