package eval

import (
	"fmt"
	"math/rand"

	"quorumplace/internal/graph"
	"quorumplace/internal/migrate"
	"quorumplace/internal/netsim"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// --- E12: ablations -----------------------------------------------------------

// E12Ablations quantifies the design choices DESIGN.md calls out:
//
//   - the Shmoys–Tardos rounding step vs. naive argmax rounding of the
//     filtered LP solution (same delay family, no load guarantee);
//   - the value of local-search post-processing on top of the LP pipeline;
//   - the LP pipeline vs. the greedy and random baselines.
//
// All placements are single-source (v0 = 0, α = 2) so the numbers are
// directly comparable to the Theorem 3.7 bounds.
func (s *Suite) E12Ablations() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 12))
	t := &Table{
		ID:       "E12",
		Title:    "Ablations: rounding, local search, baselines (single-source, α=2)",
		PaperRef: "Theorem 3.7 pipeline design choices (extension; not in paper)",
		Columns: []string{
			"system", "graph",
			"LP+ST delay", "LP+ST load×",
			"+local search", "argmax delay", "argmax load×",
			"greedy delay", "random delay",
		},
	}
	alpha := 2.0
	trials := s.trials(2, 4)
	for _, sysC := range smallSystems() {
		for trial := 0; trial < trials; trial++ {
			fam := families()[trial%len(families())]
			// First-fit greedy is an incomplete packing heuristic; retry
			// with fresh instances until it succeeds so every row has all
			// comparators.
			var ins *placement.Instance
			var gp placement.Placement
			var err error
			for attempt := 0; ; attempt++ {
				n := 6 + rng.Intn(3)
				ins, err = makeInstance(fam.gen(n, rng), sysC.sys, rng)
				if err != nil {
					return nil, err
				}
				// Loosen capacities so the feasible region has real slack;
				// with exactly-fitting bins every feasible placement uses
				// the same host multiset and the baselines degenerate to
				// the same delay.
				caps := make([]float64, ins.M.N())
				for v := range caps {
					caps[v] = ins.Cap[v] + 1
				}
				ins, err = placement.NewInstance(ins.M, caps, ins.Sys, ins.Strat)
				if err != nil {
					return nil, err
				}
				gp, err = placement.GreedyClosestPlacement(ins, 0)
				if err == nil {
					break
				}
				if attempt >= 20 {
					return nil, fmt.Errorf("eval: greedy packing kept failing: %w", err)
				}
			}
			v0 := 0
			res, err := placement.SolveSSQPP(ins, v0, alpha)
			if err != nil {
				return nil, err
			}
			_, lsDelay, err := placement.ImproveLocalSearch(ins, res.Placement, placement.LocalSearchConfig{
				Objective:     placement.ObjectiveSourceMaxDelay,
				V0:            v0,
				MaxLoadFactor: alpha + 1,
			})
			if err != nil {
				return nil, err
			}
			am, err := placement.SolveSSQPPArgmax(ins, v0, alpha)
			if err != nil {
				return nil, err
			}
			rp, err := placement.RandomFeasiblePlacement(ins, rng, 100)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				sysC.name, fam.name,
				F(res.Delay), F(ins.CapacityViolation(res.Placement)),
				F(lsDelay), F(am.Delay), F(ins.CapacityViolation(am.Placement)),
				F(ins.MaxDelayFrom(v0, gp)), F(ins.MaxDelayFrom(v0, rp)),
			)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("LP+ST guarantees load ≤ α+1 = %g; argmax rounding has the same α/(α-1)·Z* delay bound but NO load bound (watch its load× column)", alpha+1),
		"local search never worsens delay and preserves the (α+1)·cap budget")
	return t, nil
}

// --- E13: placement availability -----------------------------------------------

// E13Availability measures the fault-tolerance cost of placements: the
// probability that no quorum survives when nodes crash, for the LP
// placement, the capacity-respecting greedy, and a deliberately colocated
// placement — connecting the §1/§2 load-dispersion motivation to numbers.
func (s *Suite) E13Availability() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 13))
	t := &Table{
		ID:       "E13",
		Title:    "Placed availability under node crashes (p = 0.2)",
		PaperRef: "§1/§2 load-dispersion & fault-tolerance motivation (extension; not in paper)",
		Columns:  []string{"system", "placement", "used nodes", "node resilience", "P(no live quorum)", "avg Δ"},
	}
	p := 0.2
	for _, sysC := range smallSystems() {
		fam := families()[1] // trees keep the exact computation small
		n := 8
		ins, err := makeInstance(fam.gen(n, rng), sysC.sys, rng)
		if err != nil {
			return nil, err
		}
		res, err := placement.SolveQPP(ins, 2)
		if err != nil {
			return nil, err
		}
		gp, err := placement.BestGreedyPlacement(ins)
		if err != nil {
			return nil, err
		}
		for _, c := range []struct {
			name string
			pl   placement.Placement
		}{
			{"LP rounding (α=2)", res.Placement},
			{"greedy (cap-respecting)", gp},
		} {
			fp, err := ins.NodeFailureProbability(c.pl, p)
			if err != nil {
				return nil, err
			}
			r, err := ins.PlacementResilience(c.pl)
			if err != nil {
				return nil, err
			}
			used := map[int]bool{}
			for u := 0; u < c.pl.Len(); u++ {
				used[c.pl.Node(u)] = true
			}
			t.AddRow(sysC.name, c.name, fmt.Sprint(len(used)), fmt.Sprint(r), F(fp), F(ins.AvgMaxDelay(c.pl)))
		}
	}
	t.Notes = append(t.Notes, "node resilience = crashes always survived; colocation lowers it even when delay improves")
	return t, nil
}

// --- E14: strategy re-optimization ----------------------------------------------

// E14StrategyOpt measures the delay gained by re-optimizing the access
// strategy for a fixed placement (the knob complementary to the paper's:
// it fixes p and optimizes f, we then fix f and re-optimize p). The
// optimized strategy is constrained to keep every node within its capacity,
// so the gain is "free" in the paper's load model.
func (s *Suite) E14StrategyOpt() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 14))
	t := &Table{
		ID:       "E14",
		Title:    "Strategy re-optimization for a fixed placement",
		PaperRef: "§6-style extension (not in paper); LP companion of Problem 1.1",
		Columns:  []string{"system", "graph", "uniform-strategy Δ", "shared optimized Δ", "per-client Δ", "gain %", "load feasible"},
	}
	trials := s.trials(1, 2)
	for _, sysC := range smallSystems() {
		for trial := 0; trial < trials; trial++ {
			fam := families()[(trial+1)%len(families())]
			n := 6 + rng.Intn(3)
			ins, err := makeInstance(fam.gen(n, rng), sysC.sys, rng)
			if err != nil {
				return nil, err
			}
			p, err := placement.RandomFeasiblePlacement(ins, rng, 100)
			if err != nil {
				return nil, err
			}
			before := ins.AvgMaxDelay(p)
			st, obj, err := placement.OptimizeStrategyForPlacement(ins, p)
			if err != nil {
				return nil, err
			}
			_, perObj, err := placement.OptimizePerClientStrategies(ins, p)
			if err != nil {
				return nil, err
			}
			ins2, err := placement.NewInstance(ins.M, ins.Cap, ins.Sys, st)
			if err != nil {
				return nil, err
			}
			feasible := "yes"
			if !ins2.Feasible(p) {
				feasible = "NO"
			}
			gain := 0.0
			if before > 0 {
				gain = 100 * (before - perObj) / before
			}
			t.AddRow(sysC.name, fam.name, F(before), F(obj), F(perObj), F(gain), feasible)
		}
	}
	t.Notes = append(t.Notes, "per-client strategies (§6) dominate the shared optimum; both respect node capacities via the averaged-strategy load model")
	return t, nil
}

// --- E15: queueing (why capacities matter) ---------------------------------------

// E15Queueing couples load to delay through node service queues: the same
// quorum system is placed (a) respecting capacities (the Theorem 1.3 grid
// layout) and (b) delay-greedily onto the single best node cluster, then
// both are simulated under increasing request rates. The capacity-
// respecting placement's latency stays near its propagation floor while
// the violating placement's latency grows with load — the quantitative
// version of the paper's low-load motivation (§1.1).
func (s *Suite) E15Queueing() (*Table, error) {
	t := &Table{
		ID:       "E15",
		Title:    "Queueing: capacity-respecting vs capacity-violating placements",
		PaperRef: "§1.1 load/delay tension (extension; not in paper)",
		Columns:  []string{"arrival rate", "placement", "load×cap", "sim latency", "mean queue wait", "max utilization"},
	}
	g := graph.Complete(8)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		return nil, err
	}
	sys := quorum.Grid(2)
	caps := make([]float64, 8)
	for i := range caps {
		caps[i] = 0.8
	}
	ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(4))
	if err != nil {
		return nil, err
	}
	spread, err := placement.GreedyClosestPlacement(ins, 0)
	if err != nil {
		return nil, err
	}
	colocated := placement.NewPlacement([]int{0, 0, 0, 0})
	accesses := s.trials(600, 4000)
	for _, rate := range []float64{0.04, 0.08, 0.12} {
		for _, c := range []struct {
			name string
			pl   placement.Placement
		}{
			{"capacity-respecting", spread},
			{"colocated (violates cap)", colocated},
		} {
			stats, err := netsim.RunQueueing(netsim.QueueConfig{
				Instance: ins, Placement: c.pl,
				ArrivalRate: rate, ServiceMean: 1,
				AccessesPerClient: accesses, Seed: s.Seed + 1500,
				Workers: s.SimWorkers,
			})
			if err != nil {
				return nil, err
			}
			maxU := 0.0
			for _, u := range stats.Utilization {
				if u > maxU {
					maxU = u
				}
			}
			t.AddRow(F(rate), c.name, F(ins.CapacityViolation(c.pl)), F(stats.AvgLatency), F(stats.AvgWait), F(maxU))
		}
	}
	t.Notes = append(t.Notes, "complete graph: propagation identical for both placements, so all latency differences are queueing")
	return t, nil
}

// --- E16: read/write mixes ---------------------------------------------------------

// E16ReadWriteMix places Gifford weighted-voting read/write systems for a
// sweep of read fractions and quantifies the value of mix-aware placement:
// each row compares the placement optimized for that mix against the
// placement optimized for the opposite extreme, both evaluated under the
// row's mix.
func (s *Suite) E16ReadWriteMix() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 16))
	t := &Table{
		ID:       "E16",
		Title:    "Mix-aware placement of read/write (Gifford voting) systems",
		PaperRef: "reference [8] workloads through the Theorem 1.4 solver (extension)",
		Columns:  []string{"read fraction", "mix-aware AvgΓ", "write-optimized AvgΓ", "penalty %", "load factor"},
	}
	rw := quorum.GiffordVoting(5, 2, 4)
	n := 14
	g := graph.RandomGeometric(n, 0.4, rng)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		return nil, err
	}
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.9
	}
	// Reference placement: optimized for a write-only mix.
	sysW, stW, err := rw.Combine(0)
	if err != nil {
		return nil, err
	}
	insW, err := placement.NewInstance(m, caps, sysW, stW)
	if err != nil {
		return nil, err
	}
	writeOpt, err := placement.SolveTotalDelay(insW)
	if err != nil {
		return nil, err
	}
	for _, frac := range []float64{0.5, 0.8, 0.95} {
		sys, st, err := rw.Combine(frac)
		if err != nil {
			return nil, err
		}
		ins, err := placement.NewInstance(m, caps, sys, st)
		if err != nil {
			return nil, err
		}
		res, err := placement.SolveTotalDelay(ins)
		if err != nil {
			return nil, err
		}
		crossDelay := ins.AvgTotalDelay(writeOpt.Placement)
		penalty := 0.0
		if res.AvgDelay > 0 {
			penalty = 100 * (crossDelay - res.AvgDelay) / res.AvgDelay
		}
		t.AddRow(F(frac), F(res.AvgDelay), F(crossDelay), F(penalty), F(ins.CapacityViolation(res.Placement)))
	}
	t.Notes = append(t.Notes,
		"reads are C(5,2) small quorums, writes C(5,4) large ones; the heavier the read mix, the more a write-optimized placement overpays",
		"both placements come from the Theorem 1.4 GAP solver, so loads stay within 2·cap")
	return t, nil
}

// --- E17: dynamic workloads ---------------------------------------------------------

// E17DynamicEpochs runs a sequence of workload epochs (client rate shifts)
// under three migration policies: never migrate, re-place from scratch each
// epoch (λ=0), and λ-balanced migration. It reports cumulative delay and
// cumulative movement, showing the balanced policy captures most of the
// delay benefit at a fraction of the movement.
func (s *Suite) E17DynamicEpochs() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 17))
	t := &Table{
		ID:       "E17",
		Title:    "Migration policies across workload epochs",
		PaperRef: "dynamic extension of Theorem 1.4 via internal/migrate (not in paper)",
		Columns:  []string{"policy", "epochs", "cumulative AvgΓ", "cumulative movement", "max load factor"},
	}
	const hosts = 14
	g := graph.RandomGeometric(hosts, 0.4, rng)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		return nil, err
	}
	sys := quorum.Majority(5, 3)
	caps := make([]float64, hosts)
	for i := range caps {
		caps[i] = 0.7
	}
	baseIns, err := placement.NewInstance(m, caps, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		return nil, err
	}
	epochs := s.trials(3, 6)
	// Pre-generate the rate shift per epoch: a random hotspot region.
	epochRates := make([][]float64, epochs)
	for e := range epochRates {
		rates := make([]float64, hosts)
		hot := rng.Intn(hosts)
		for v := range rates {
			rates[v] = 1
			if m.D(v, hot) < 0.3 {
				rates[v] = 20
			}
		}
		epochRates[e] = rates
	}
	initial, err := placement.SolveTotalDelay(baseIns)
	if err != nil {
		return nil, err
	}
	type policy struct {
		name   string
		lambda float64
		static bool
	}
	for _, pol := range []policy{
		{"never migrate", 0, true},
		{"re-place each epoch (λ=0)", 0, false},
		{"balanced (λ=0.3)", 0.3, false},
		{"conservative (λ=1)", 1, false},
	} {
		cur := initial.Placement
		totalDelay, totalMoved, maxLoad := 0.0, 0.0, 0.0
		for e := 0; e < epochs; e++ {
			ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(sys.NumQuorums()))
			if err != nil {
				return nil, err
			}
			if err := ins.SetRates(epochRates[e]); err != nil {
				return nil, err
			}
			if !pol.static {
				plan, err := migrateSolve(ins, cur, pol.lambda)
				if err != nil {
					return nil, err
				}
				totalMoved += plan.Moved
				cur = plan.Placement
			}
			totalDelay += ins.AvgTotalDelay(cur)
			if lf := ins.CapacityViolation(cur); lf > maxLoad {
				maxLoad = lf
			}
		}
		t.AddRow(pol.name, fmt.Sprint(epochs), F(totalDelay), F(totalMoved), F(maxLoad))
	}
	t.Notes = append(t.Notes, "every migrating policy keeps loads within the Theorem 5.1 bound of 2×cap")
	return t, nil
}

// migrateSolve isolates the migrate dependency for E17.
func migrateSolve(ins *placement.Instance, old placement.Placement, lambda float64) (*migrate.Plan, error) {
	return migrate.Solve(ins, old, lambda)
}
