// Package eval runs the reproduction experiments: one experiment per
// theorem, lemma, claim and figure of the paper, each producing a text
// table that pairs the paper's predicted bound with the measured quantity.
// See DESIGN.md §4 for the experiment index (E1–E11).
package eval

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID       string // experiment id, e.g. "E1"
	Title    string
	PaperRef string // the theorem/claim/figure reproduced
	Columns  []string
	Rows     [][]string
	Notes    []string
}

// AddRow appends a row; values are formatted with Cell.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// F formats a float for table cells with 4 significant digits.
func F(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "reproduces: %s\n", t.PaperRef)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns the table body as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(strconv.Quote(c))
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Markdown renders the table as a GitHub-flavored markdown table with the
// experiment header as a heading.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*reproduces: %s*\n\n", t.PaperRef)
	writeMDRow(&b, t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeMDRow(&b, sep)
	for _, row := range t.Rows {
		writeMDRow(&b, row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*note: %s*\n", n)
	}
	return b.String()
}

func writeMDRow(b *strings.Builder, cells []string) {
	b.WriteString("|")
	for _, c := range cells {
		b.WriteString(" ")
		b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
		b.WriteString(" |")
	}
	b.WriteByte('\n')
}
