package eval

import (
	"fmt"
	"math"
	"math/rand"

	"quorumplace/internal/agg"
	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
	"quorumplace/internal/treedp"
)

// --- E18: million-client scaling (aggregation + exact tree DP) ---------------------

// E18Scaling sweeps the two scaling dimensions the dense LP pipeline cannot
// reach: raw client count (collapsed by demand aggregation into per-node
// rates — the objective is linear in client weight, so the collapse is
// lossless) and network size (solved by the exact subset DP on trees,
// O(n·3^U), never materializing the n² metric). Every row is solved
// end-to-end; rows small enough for a dense metric cross-check also report
// the relative disagreement between the tree evaluation and the dense
// Instance evaluation of the same placement (identically zero up to float
// association), and on verify rows the aggregated objective is compared
// against the naive per-client reference evaluator. Wall-clock for the
// largest row is tracked by BenchmarkTreeDP and gated in CI via benchdiff
// -max-time; the table reports only machine-independent quantities.
func (s *Suite) E18Scaling() (*Table, error) {
	t := &Table{
		ID:       "E18",
		Title:    "Scaling: demand aggregation and the exact tree DP",
		PaperRef: "§3.3 SSQPP hardness (Thm 3.6) sidestepped by small universes; §6 rates (extension; not in paper)",
		Columns:  []string{"nodes", "clients", "demand nodes", "candidates", "avg max delay", "source delay", "vs dense", "vs per-client"},
	}
	type row struct{ nodes, clients int }
	rows := []row{{200, 5_000}, {500, 20_000}, {2_000, 100_000}}
	if !s.Quick {
		rows = append(rows, row{10_000, 300_000}, row{30_000, 1_000_000})
	}
	// The largest row is overridable (cmd/qppeval -scale-nodes/-scale-clients)
	// so the headline 10⁵-node/10⁶-client configuration can be run on demand
	// without making every full suite run pay for it.
	if s.ScaleNodes > 0 || s.ScaleClients > 0 {
		last := rows[len(rows)-1]
		if s.ScaleNodes > 0 {
			last.nodes = s.ScaleNodes
		}
		if s.ScaleClients > 0 {
			last.clients = s.ScaleClients
		}
		rows = append(rows, last)
	}
	sys := quorum.Majority(5, 3)
	strat := quorum.Uniform(sys.NumQuorums())
	for i, r := range rows {
		rng := rand.New(rand.NewSource(s.Seed + int64(i)))
		g := graph.RandomTree(r.nodes, 0.1, 1.0, rng)
		caps := make([]float64, r.nodes)
		for v := range caps {
			caps[v] = 0.7
		}
		clients := make([]agg.Client, r.clients)
		for c := range clients {
			clients[c] = agg.Client{Node: rng.Intn(r.nodes), Weight: float64(1 + rng.Intn(9))}
		}
		d := agg.NewDemand(r.nodes)
		if err := d.AddClients(clients); err != nil {
			return nil, err
		}
		rates := d.Rates()
		res, err := treedp.SolveQPP(g, caps, sys, strat, rates)
		if err != nil {
			return nil, fmt.Errorf("E18 %d nodes: %w", r.nodes, err)
		}
		demandNodes := 0
		for _, w := range rates {
			if w > 0 {
				demandNodes++
			}
		}
		vsDense, vsClients := "-", "-"
		if r.nodes <= 600 {
			m, err := graph.NewMetricFromGraph(g)
			if err != nil {
				return nil, err
			}
			ins, err := placement.NewInstance(m, caps, sys, strat)
			if err != nil {
				return nil, err
			}
			if err := ins.SetRates(rates); err != nil {
				return nil, err
			}
			pl := placement.NewPlacement(res.F)
			dense := ins.AvgMaxDelay(pl)
			vsDense = F(math.Abs(dense-res.AvgMaxDelay) / dense)
			ref, err := agg.PerClientAvgMaxDelay(ins, clients, pl)
			if err != nil {
				return nil, err
			}
			vsClients = F(math.Abs(ref-res.AvgMaxDelay) / ref)
		}
		t.AddRow(itoa(r.nodes), itoa(r.clients), itoa(demandNodes), itoa(len(res.Candidates)),
			F(res.AvgMaxDelay), F(res.SourceDelay), vsDense, vsClients)
	}
	t.Notes = append(t.Notes,
		"aggregation is lossless: the objective is linear in client weight, so raw clients collapse to per-node rates",
		"vs dense / vs per-client are relative disagreements on cross-checkable rows; '-' marks rows past the dense limit",
		"wall-clock for the headline configuration is gated by benchdiff -max-time over BenchmarkTreeDP")
	return t, nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
