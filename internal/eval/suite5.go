package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"

	"quorumplace/internal/graph"
	"quorumplace/internal/heat"
	"quorumplace/internal/netsim"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// --- E19: workload drift vs delay regression (heat sketches) ------------------------

// E19HeatDrift demonstrates the observability claim behind internal/heat:
// the drift score of a streaming workload sketch rises epochs before the
// measured tail latency regresses, so drift alerting gives a re-planning
// loop lead time that watching p99 alone cannot.
//
// The placement is solved on a path network for a plan demand that gives
// the remote clients (the path ends, the ones with the worst delay under
// any central placement) a near-zero weight ε — the solver rationally
// ignores them. A sequence of epochs then runs the simulator under
// demand that drifts toward exactly those clients: epoch k redirects a
// fraction α_k of all accesses onto the hot set. Each epoch feeds a
// fresh heat sketch; the table reports the sketch's drift TV against the
// plan demand, the predicted delay shift from re-evaluating the
// placement analytically under the live demand estimate (the
// attribution's drift leg), and the simulated p99.
//
// The drift score is a property of the demand mix alone, so it moves as
// soon as α clears the apportionment noise floor n/(2·accesses):
// TV ≈ α. The p99, by contrast, stays pinned to the cold clients' tail
// until the hot accesses themselves amount to more than 1% of the
// stream (α + ε·|H| > 0.01) — only then does the percentile cross into
// the remote clients' latency range. On this ramp that crossing happens
// two epochs after the drift signal is already 3× the noise floor: the
// lead time this experiment pins.
func (s *Suite) E19HeatDrift() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 19))
	t := &Table{
		ID:       "E19",
		Title:    "Workload drift precedes tail-latency regression (heat sketches)",
		PaperRef: "§1 motivation: placements are solved for a demand snapshot; drift detection bounds staleness",
		Columns:  []string{"epoch", "alpha", "drift TV", "top client", "pred shift", "sim p99", "Δp99"},
	}
	n := 16
	apc := s.trials(400, 1000)
	if !s.Quick {
		n = 24
	}
	g := graph.Path(n)
	sys := quorum.Grid(2)
	ins, err := makeInstance(g, sys, rng)
	if err != nil {
		return nil, err
	}
	// Hot set: the n/8 clients with the largest distance-to-everything —
	// on a path, the ends. Rank by MaxDelayFrom under a throwaway uniform
	// placement? No: rank by total distance, which is placement-free and
	// still picks the clients any demand-weighted solver will starve.
	hot := remoteClients(ins, n/8)
	const eps = 0.0005
	plan := make([]float64, n)
	cold := (1 - eps*float64(len(hot))) / float64(n-len(hot))
	for v := range plan {
		plan[v] = cold
	}
	for _, v := range hot {
		plan[v] = eps
	}
	if err := ins.SetRates(plan); err != nil {
		return nil, err
	}
	pl, err := placement.BestGreedyPlacement(ins)
	if err != nil {
		return nil, err
	}
	// Plan-time prediction under the demand the placement was solved for.
	predPlan := ins.AvgMaxDelay(pl)

	alphas := []float64{0, 0.004, 0.006, 0.008, 0.05, 0.2}
	var p99Base float64
	for k, alpha := range alphas {
		rates := make([]float64, n)
		for v := range rates {
			rates[v] = (1 - alpha) * plan[v]
		}
		for _, v := range hot {
			rates[v] += alpha / float64(len(hot))
		}
		if err := ins.SetRates(rates); err != nil {
			return nil, err
		}
		ht := heat.New(heat.Options{})
		stats, err := netsim.Run(netsim.Config{
			Instance:          ins,
			Placement:         pl,
			Mode:              netsim.Parallel,
			AccessesPerClient: apc,
			Seed:              s.Seed + 1900 + int64(k),
			Heat:              ht,
			Workers:           s.SimWorkers,
		})
		if err != nil {
			return nil, err
		}
		// Drift of the observed stream against the *plan* demand, not the
		// epoch's true rates: the sketch has no access to the latter, which
		// is the point — it reconstructs the shift from the stream alone.
		d, err := ht.Drift(plan)
		if err != nil {
			return nil, err
		}
		totals := ht.ClientTotals()
		live := make([]float64, len(totals))
		for v, c := range totals {
			live[v] = float64(c)
		}
		predLive, err := heat.PredictUnderRates(ins, pl, false, live)
		if err != nil {
			return nil, err
		}
		p99 := stats.Percentile(0.99)
		if k == 0 {
			p99Base = p99
		}
		top := "-"
		if d.Top >= 0 {
			top = fmt.Sprintf("%d", d.Top)
		}
		t.AddRow(itoa(k), F(alpha), F(d.TV), top, F(predLive-predPlan), F(p99), F(p99-p99Base))
	}
	ins.Rates = nil
	t.Notes = append(t.Notes,
		fmt.Sprintf("hot set: the %d remote clients (path ends) the plan demand weighted at ε = %g each", len(hot), eps),
		"drift TV tracks α from the first skewed epoch; p99 stays pinned to the cold tail until hot accesses exceed the 1% percentile mass — drift alerts lead the regression")
	return t, nil
}

// --- E20: flash crowd at production rate (sharded parallel netsim) -----------

// E20FlashCrowd replays a flash-crowd workload — a sudden spike that
// redirects a large fraction α of all accesses onto a small remote client
// set for two epochs, then decays — at an access volume sized for the
// sharded simulator engine (netsim Config.Workers). Every epoch runs
// twice: once under the parallel engine (SimWorkers shards, defaulting to
// 4 when the suite does not override) and once under workers = 1, and the
// "par=seq" column reports whether the two runs were bitwise identical —
// the determinism contract that lets the multicore engine stand in for
// the sequential one in every experiment. The delay columns show the
// flash crowd itself: under the uniform baseline the remote clients
// already own the top latency percentile, so p99 barely moves — the
// regression lands in the mean, which tracks the fraction of accesses
// paying the remote clients' delay and relaxes as the spike decays.
func (s *Suite) E20FlashCrowd() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 20))
	t := &Table{
		ID:       "E20",
		Title:    "Flash crowd at production rate (sharded parallel simulator)",
		PaperRef: "§5 objective evaluated by simulation at scale; determinism contract of the multicore engine (extension; not in paper)",
		Columns:  []string{"epoch", "alpha", "accesses", "sim mean", "Δmean", "sim p99", "par=seq"},
	}
	n := 16
	apc := s.trials(300, 3000)
	if !s.Quick {
		n = 48
	}
	g := graph.Path(n)
	sys := quorum.Grid(2)
	ins, err := makeInstance(g, sys, rng)
	if err != nil {
		return nil, err
	}
	hot := remoteClients(ins, n/8)
	uniform := make([]float64, n)
	for v := range uniform {
		uniform[v] = 1 / float64(n)
	}
	if err := ins.SetRates(uniform); err != nil {
		return nil, err
	}
	pl, err := placement.BestGreedyPlacement(ins)
	if err != nil {
		return nil, err
	}
	workers := s.SimWorkers
	if workers <= 0 {
		workers = 4
	}
	// Baseline, two spike epochs, decay, recovery.
	alphas := []float64{0, 0.4, 0.4, 0.1, 0}
	var meanBase float64
	for k, alpha := range alphas {
		rates := make([]float64, n)
		for v := range rates {
			rates[v] = (1 - alpha) * uniform[v]
		}
		for _, v := range hot {
			rates[v] += alpha / float64(len(hot))
		}
		if err := ins.SetRates(rates); err != nil {
			return nil, err
		}
		cfg := netsim.Config{
			Instance:          ins,
			Placement:         pl,
			Mode:              netsim.Parallel,
			AccessesPerClient: apc,
			Seed:              s.Seed + 2000 + int64(k),
			Workers:           workers,
		}
		par, err := netsim.Run(cfg)
		if err != nil {
			return nil, err
		}
		cfg.Workers = 1
		seq, err := netsim.Run(cfg)
		if err != nil {
			return nil, err
		}
		// DeepEqual sees the unexported raw latency samples too, so this is
		// the full trace-level bitwise check, not a summary comparison. It
		// must run before Percentile, which memoizes a sort cache.
		same := "no"
		if reflect.DeepEqual(par, seq) {
			same = "yes"
		}
		if k == 0 {
			meanBase = par.AvgLatency
		}
		t.AddRow(itoa(k), F(alpha), itoa(par.Accesses), F(par.AvgLatency),
			F(par.AvgLatency-meanBase), F(par.Percentile(0.99)), same)
	}
	ins.Rates = nil
	t.Notes = append(t.Notes,
		fmt.Sprintf("flash crowd: %d remote clients (path ends) absorb α of all accesses; %d shard workers vs 1", len(hot), workers),
		"par=seq compares the sharded runs bitwise, raw per-access latencies included — the engine's determinism contract under any worker count")
	return t, nil
}

// remoteClients returns the k clients with the largest total distance to
// all other nodes — the clients any demand-weighted placement will sit
// farthest from. k is clamped to [1, n]; the result is sorted ascending.
func remoteClients(ins *placement.Instance, k int) []int {
	n := ins.M.N()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	total := make([]float64, n)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			total[v] += ins.M.D(v, u)
		}
	}
	idx := make([]int, n)
	for v := range idx {
		idx[v] = v
	}
	sort.SliceStable(idx, func(a, b int) bool { return total[idx[a]] > total[idx[b]] })
	out := idx[:k]
	sort.Ints(out)
	return out
}
