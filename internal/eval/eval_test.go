package eval

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:       "T",
		Title:    "demo",
		PaperRef: "Theorem X",
		Columns:  []string{"a", "longcolumn"},
		Notes:    []string{"a note"},
	}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"T — demo", "reproduces: Theorem X", "a  longcolumn", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("1", "x,y")
	csv := tab.CSV()
	if csv != "a,b\n1,\"x,y\"\n" {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestF(t *testing.T) {
	if F(1.23456789) != "1.235" {
		t.Fatalf("F(1.23456789) = %q", F(1.23456789))
	}
	if F(5) != "5" {
		t.Fatalf("F(5) = %q", F(5))
	}
}

// TestRunAllQuick runs the entire experiment suite in quick mode and
// verifies the paper bounds that every experiment reports. This is the
// repo's end-to-end reproduction smoke test.
func TestRunAllQuick(t *testing.T) {
	s := &Suite{Seed: 1, Quick: true}
	tables, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Experiments()) {
		t.Fatalf("got %d tables, want %d", len(tables), len(Experiments()))
	}
	byID := map[string]*Table{}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: row %v has %d cells, want %d", tab.ID, row, len(row), len(tab.Columns))
			}
		}
		byID[tab.ID] = tab
	}
	// The verification experiments must report a clean match everywhere.
	for _, id := range []string{"E6"} {
		for _, row := range byID[id].Rows {
			if row[len(row)-1] != "yes" {
				t.Errorf("%s: row %v did not match", id, row)
			}
		}
	}
	for _, row := range byID["E8"].Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("E8: shell layout lost: %v", row)
		}
	}
	for _, row := range byID["E9"].Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("E9: arrangement invariance failed: %v", row)
		}
	}
}

// TestE19DriftLeadsRegression pins the observability claim of E19: the
// drift score rises strictly from the first skewed epoch while the
// simulated p99 stays flat for at least three epochs, and the final epoch
// shows a real tail regression. Deterministic per seed.
func TestE19DriftLeadsRegression(t *testing.T) {
	s := &Suite{Seed: 1, Quick: true}
	tab, err := s.E19HeatDrift()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("E19 has %d epochs, want >= 5", len(tab.Rows))
	}
	cell := func(row int, col int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("row %d col %d %q: %v", row, col, tab.Rows[row][col], err)
		}
		return v
	}
	const tvCol, dp99Col = 2, 6
	for k := 1; k < len(tab.Rows); k++ {
		if cell(k, tvCol) <= cell(k-1, tvCol) {
			t.Errorf("drift TV not strictly rising at epoch %d: %v -> %v", k, cell(k-1, tvCol), cell(k, tvCol))
		}
	}
	// The drift signal is alertable (3x the apportionment noise floor)
	// while the tail is still flat...
	for k := 0; k <= 3; k++ {
		if cell(k, dp99Col) != 0 {
			t.Errorf("p99 regressed already at epoch %d: Δp99 = %v", k, cell(k, dp99Col))
		}
	}
	if tv := cell(3, tvCol); tv < 0.004 {
		t.Errorf("drift TV %v at epoch 3 below alertable level", tv)
	}
	// ...and the final epoch shows the regression drift predicted.
	if last := len(tab.Rows) - 1; cell(last, dp99Col) <= 0 {
		t.Errorf("no tail regression by epoch %d: Δp99 = %v", last, cell(last, dp99Col))
	}
}

// TestE20FlashCrowdParSeq pins the two claims of E20: every epoch's
// parallel run is bitwise identical to its workers=1 run, and the spike
// epochs actually move the mean delay (Δmean > 0 while the crowd holds,
// back near zero — different seed, so not exactly — after recovery).
// Deterministic per seed.
func TestE20FlashCrowdParSeq(t *testing.T) {
	s := &Suite{Seed: 1, Quick: true}
	tab, err := s.E20FlashCrowd()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("E20 has %d epochs, want 5", len(tab.Rows))
	}
	const dMeanCol, sameCol = 4, 6
	for k, row := range tab.Rows {
		if row[sameCol] != "yes" {
			t.Errorf("epoch %d: parallel run diverged from workers=1 (par=seq %q)", k, row[sameCol])
		}
	}
	cell := func(row int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][dMeanCol], 64)
		if err != nil {
			t.Fatalf("row %d Δmean %q: %v", row, tab.Rows[row][dMeanCol], err)
		}
		return v
	}
	for k := 1; k <= 2; k++ {
		if cell(k) <= 0 {
			t.Errorf("spike epoch %d shows no mean regression: Δmean = %v", k, cell(k))
		}
	}
	// The recovery epoch runs the baseline demand under a fresh seed, so
	// its Δmean is sampling noise — it must sit well under the spike shift.
	if spike, rec := cell(1), cell(4); !(abs(rec) < spike/4) {
		t.Errorf("recovery Δmean %v not well under spike Δmean %v", rec, spike)
	}
}

// TestE21DaemonDriftRamp pins the control-loop claims of E21: every epoch
// replays bitwise-identically across two full pipeline copies, the drift
// alert trips once the ramp holds and arms a re-plan cycle that actually
// moves elements, warm-started ticks appear within the run, and the
// simulated tail recovers after the cycle relative to its peak.
// Deterministic per seed.
func TestE21DaemonDriftRamp(t *testing.T) {
	s := &Suite{Seed: 1, Quick: true}
	tab, err := s.E21DaemonDriftRamp()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 6 {
		t.Fatalf("E21 has %d epochs, want >= 6", len(tab.Rows))
	}
	const alertCol, warmCol, movesCol, p99Col, replayCol = 3, 5, 6, 8, 9
	for k, row := range tab.Rows {
		if row[replayCol] != "yes" {
			t.Errorf("epoch %d: pipeline replay diverged (replay %q)", k, row[replayCol])
		}
	}
	cell := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("row %d col %d %q: %v", row, col, tab.Rows[row][col], err)
		}
		return v
	}
	// The quiet baseline must not re-plan; the ramp must alert and move.
	if tab.Rows[0][alertCol] != "no" {
		t.Error("baseline epoch alerted")
	}
	var alerted, moved, warmed bool
	for k := range tab.Rows {
		alerted = alerted || tab.Rows[k][alertCol] == "yes"
		moved = moved || cell(k, movesCol) > 0
		warmed = warmed || tab.Rows[k][warmCol] == "yes"
	}
	if !alerted {
		t.Error("drift alert never tripped on the ramp")
	}
	if !moved {
		t.Error("re-plan cycle never moved an element")
	}
	if !warmed {
		t.Error("no warm-started tick in the run")
	}
	// Tail recovery: after the re-plan cycle the hot demand is served
	// closer than at the alert epoch's peak.
	var peak float64
	for k := range tab.Rows {
		if p := cell(k, p99Col); p > peak {
			peak = p
		}
	}
	if last := cell(len(tab.Rows)-1, p99Col); last >= peak {
		t.Errorf("sim p99 never recovered: final %v vs peak %v", last, peak)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		ID: "T", Title: "demo", PaperRef: "Thm X",
		Columns: []string{"a", "b"},
		Notes:   []string{"n1"},
	}
	tab.AddRow("1", "x|y")
	md := tab.Markdown()
	for _, want := range []string{"### T — demo", "| a | b |", "| --- | --- |", `x\|y`, "*note: n1*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
