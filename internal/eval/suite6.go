package eval

import (
	"fmt"
	"math/rand"
	"reflect"

	"quorumplace/internal/daemon"
	"quorumplace/internal/graph"
	"quorumplace/internal/heat"
	"quorumplace/internal/netsim"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// --- E21: daemon drift ramp (netsim-in-the-loop control) -----------------------------

// e21HeatOpts uses run-scale epochs: netsim's virtual clock spans thousands
// of unit-length epochs per run and schedules clients in contiguous time
// blocks, so a fine-grained EWMA would remember only the last-scheduled
// clients. One epoch per simulation run (the length generously covers any
// run duration) with a one-epoch half-life makes RecentDrift compare
// whole-run demand mixes, reacting within a run or two of a shift.
var e21HeatOpts = heat.Options{EpochLen: 1 << 20, HalfLife: 1}

// e21Pipeline is one independent copy of the E21 closed loop: a synthesized
// instance, its plan demand, and a placement daemon deployed on it.
type e21Pipeline struct {
	ins  *placement.Instance
	plan []float64
	hot  []int
	d    *daemon.Daemon
}

// e21Build constructs the pipeline deterministically from the suite seed, so
// two builds are bitwise-identical replicas.
func (s *Suite) e21Build(n int) (*e21Pipeline, error) {
	rng := rand.New(rand.NewSource(s.Seed + 21))
	g := graph.Path(n)
	sys := quorum.Grid(2)
	ins, err := makeInstance(g, sys, rng)
	if err != nil {
		return nil, err
	}
	// Plan demand as in E19: the remote clients (path ends) get a
	// near-zero weight ε, so the initial placement rationally ignores
	// exactly the clients the ramp will later flood.
	hot := remoteClients(ins, n/8)
	const eps = 0.0005
	plan := make([]float64, n)
	cold := (1 - eps*float64(len(hot))) / float64(n-len(hot))
	for v := range plan {
		plan[v] = cold
	}
	for _, v := range hot {
		plan[v] = eps
	}
	if err := ins.SetRates(plan); err != nil {
		return nil, err
	}
	pl, err := placement.BestGreedyPlacement(ins)
	if err != nil {
		return nil, err
	}
	d, err := daemon.New(daemon.Config{
		Instance:       ins,
		Initial:        pl,
		PlanDemand:     plan,
		Shards:         2,
		Lambda:         0.1,
		DriftThreshold: 0.1,
		Heat:           e21HeatOpts,
	})
	if err != nil {
		return nil, err
	}
	return &e21Pipeline{ins: ins, plan: plan, hot: hot, d: d}, nil
}

// e21Step runs one epoch of the closed loop: deploy the daemon's current
// placement in the simulator under the epoch's true demand, feed the run's
// heat sketch back into the daemon, and tick the control loop once.
func (p *e21Pipeline) e21Step(s *Suite, k int, alpha float64, apc int) (daemon.TickRecord, *netsim.Stats, error) {
	n := p.ins.M.N()
	rates := make([]float64, n)
	for v := range rates {
		rates[v] = (1 - alpha) * p.plan[v]
	}
	for _, v := range p.hot {
		rates[v] += alpha / float64(len(p.hot))
	}
	if err := p.ins.SetRates(rates); err != nil {
		return daemon.TickRecord{}, nil, err
	}
	ht := heat.New(e21HeatOpts)
	stats, err := netsim.Run(netsim.Config{
		Instance:          p.ins,
		Placement:         p.d.Placement(),
		Mode:              netsim.Parallel,
		AccessesPerClient: apc,
		Seed:              s.Seed + 2100 + int64(k),
		Heat:              ht,
		Workers:           s.SimWorkers,
	})
	if err != nil {
		return daemon.TickRecord{}, nil, err
	}
	if err := p.d.IngestSketch(ht); err != nil {
		return daemon.TickRecord{}, nil, err
	}
	rec, err := p.d.Tick()
	if err != nil {
		return daemon.TickRecord{}, nil, err
	}
	return rec, stats, nil
}

// E21DaemonDriftRamp closes the loop the paper leaves open: the one-shot
// batch solve becomes a long-lived control system. The discrete-event
// simulator deploys the daemon's current placement each epoch under a
// demand that ramps onto the plan's ε-weighted remote clients; the run's
// heat sketch is the only signal the daemon sees. The drift alert trips a
// K-shard re-plan cycle (one warm-started migration LP per tick, λ bounding
// movement), after which the predicted delay under the live demand recovers
// while the composed placement stays within the Theorem 5.1 load guarantee.
//
// The whole pipeline — simulator, sketch ingestion, shard LPs, rounding —
// is replayed twice from the suite seed; the "replay" column reports
// whether the two copies produced bitwise-identical tick records and
// simulator stats, the daemon's determinism contract.
func (s *Suite) E21DaemonDriftRamp() (*Table, error) {
	t := &Table{
		ID:       "E21",
		Title:    "Placement daemon under a drift ramp (netsim in the loop)",
		PaperRef: "§5 delay-vs-movement trade-off run as a live control loop (extension; not in paper)",
		Columns:  []string{"epoch", "alpha", "drift TV", "alert", "shard", "warm", "moves", "pred delay", "sim p99", "replay"},
	}
	n := 16
	apc := s.trials(300, 1000)
	if !s.Quick {
		n = 24
	}
	a, err := s.e21Build(n)
	if err != nil {
		return nil, err
	}
	b, err := s.e21Build(n)
	if err != nil {
		return nil, err
	}

	// Quiet baseline, ramp, then hold: the alert should trip on the ramp
	// and the 2-shard cycle should finish with epochs to spare, so the
	// tail of the table shows the re-planned placement absorbing the hot
	// demand.
	alphas := []float64{0, 0.05, 0.5, 0.5, 0.5, 0.5, 0.5}
	for k, alpha := range alphas {
		recA, statsA, err := a.e21Step(s, k, alpha, apc)
		if err != nil {
			return nil, err
		}
		recB, statsB, err := b.e21Step(s, k, alpha, apc)
		if err != nil {
			return nil, err
		}
		// DeepEqual before Percentile: Stats memoizes a sort cache, and the
		// comparison covers the raw per-access samples.
		replay := "no"
		if reflect.DeepEqual(recA, recB) && reflect.DeepEqual(statsA, statsB) {
			replay = "yes"
		}
		shard := "-"
		if recA.Shard >= 0 {
			shard = itoa(recA.Shard)
		}
		t.AddRow(itoa(k), F(alpha), F(recA.DriftTV), yesNo(recA.Alerted), shard,
			yesNo(recA.Warm), itoa(len(recA.Moves)), F(recA.AvgDelay),
			F(statsA.Percentile(0.99)), replay)
	}
	if !reflect.DeepEqual(a.d.Placement().Map(), b.d.Placement().Map()) {
		return nil, fmt.Errorf("E21: replayed pipelines diverged in final placement")
	}
	a.ins.Rates = nil
	b.ins.Rates = nil
	t.Notes = append(t.Notes,
		fmt.Sprintf("hot set: the %d remote clients (path ends) the plan demand weighted at ε each; drift threshold 0.1, λ = 0.1, 2 shards", len(a.hot)),
		"replay compares tick records and raw simulator stats bitwise across two full pipeline copies — the daemon's determinism contract")
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
