package eval

import (
	"fmt"
	"math"
	"math/rand"

	"quorumplace/internal/graph"
	"quorumplace/internal/netsim"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// --- E7: Claim A.1 / Figure 1 ----------------------------------------------

// singleQuorumInstance builds the Appendix A instance: one quorum
// containing all n elements (so every element has load 1) on the given
// graph, with unit capacity at every node — forcing a bijection.
func singleQuorumInstance(g *graph.Graph) (*placement.Instance, error) {
	n := g.N()
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		return nil, err
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	sys, err := quorum.NewSystem("single", n, [][]int{all})
	if err != nil {
		return nil, err
	}
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 1
	}
	return placement.NewInstance(m, caps, sys, quorum.Uniform(1))
}

// E7IntegralityGap reproduces Claim A.1 and Figure 1: the LP relaxation
// (9)–(14) has integrality gap ≈ n on a star with one long edge and ≈ √n on
// the unweighted "broom" graph of Figure 1. The integral optimum is known
// analytically for both constructions (every feasible placement is a
// bijection, so the single quorum's delay is the largest distance from v0).
func (s *Suite) E7IntegralityGap() (*Table, error) {
	t := &Table{
		ID:       "E7",
		Title:    "Integrality gap of the SSQPP LP on the Appendix-A instances",
		PaperRef: "Claim A.1 + Figure 1: gap ≥ n (weighted star), ≥ Θ(√n) (broom)",
		Columns:  []string{"construction", "n", "integral OPT", "LP Z*", "gap OPT/Z*", "predicted gap"},
	}
	// Weighted star: spokes of length 1, one spoke of length M = n².
	starSizes := []int{4, 6, 8}
	if s.Quick {
		starSizes = []int{4, 6}
	}
	for _, n := range starSizes {
		mLen := float64(n * n)
		g := graph.StarWithLongEdge(n, mLen)
		ins, err := singleQuorumInstance(g)
		if err != nil {
			return nil, err
		}
		lpZ, err := placement.SSQPPLowerBound(ins, 0)
		if err != nil {
			return nil, err
		}
		opt := mLen // the far node must host an element
		t.AddRow("weighted star (M=n²)", fmt.Sprint(n), F(opt), F(lpZ), F(opt/lpZ), fmt.Sprintf("≈ n·M/(n-1+M) = %s", F(float64(n)*mLen/(float64(n)-1+mLen))))
	}
	// Broom (Figure 1): n = k² nodes, integral OPT = k, LP ≈ 3/2.
	ks := []int{3, 4, 5, 6}
	if s.Quick {
		ks = []int{3, 4}
	}
	for _, k := range ks {
		g := graph.Broom(k)
		ins, err := singleQuorumInstance(g)
		if err != nil {
			return nil, err
		}
		lpZ, err := placement.SSQPPLowerBound(ins, 0)
		if err != nil {
			return nil, err
		}
		opt := float64(k)
		t.AddRow("broom (Figure 1)", fmt.Sprint(k*k), F(opt), F(lpZ), F(opt/lpZ), fmt.Sprintf("≈ √n·(2/3) = %s", F(float64(k)*2/3)))
	}
	t.Notes = append(t.Notes,
		"integral OPT is analytic: unit capacities force a bijection, so the delay is the largest distance from v0",
		"broom LP value tends to 3/2, so the gap grows as (2/3)·√n, matching the paper's Θ(√n)")
	return t, nil
}

// --- E8: Theorem B.1 / Figure 2 --------------------------------------------

// E8GridLayout verifies the L-shell grid layout: it matches brute force for
// k ≤ 3 and never loses to greedy heuristics for larger k.
func (s *Suite) E8GridLayout() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 8))
	t := &Table{
		ID:       "E8",
		Title:    "Grid L-shell layout vs alternatives",
		PaperRef: "Theorem B.1 + Figure 2 (§4.1 layout is optimal)",
		Columns:  []string{"k", "distance profile", "shell cost", "comparator", "comparator cost", "shell optimal"},
	}
	bruteKs := []int{2, 3}
	for _, k := range bruteKs {
		for trial := 0; trial < s.trials(2, 4); trial++ {
			taus := make([]float64, k*k)
			for i := range taus {
				taus[i] = math.Round(rng.Float64() * 9)
			}
			shell := shellCost(k, taus)
			brute := placement.BruteForceGridLayout(taus)
			ok := "yes"
			if shell > brute+1e-9 {
				ok = "NO"
			}
			t.AddRow(fmt.Sprint(k), "random ints [0,9]", F(shell), "brute force (all arrangements)", F(brute), ok)
		}
	}
	bigKs := []int{4, 5, 6}
	if s.Quick {
		bigKs = []int{4}
	}
	for _, k := range bigKs {
		taus := make([]float64, k*k)
		for i := range taus {
			taus[i] = math.Round(rng.Float64() * 99)
		}
		shell := shellCost(k, taus)
		rowMajor := rowMajorCost(k, taus)
		ok := "yes"
		if shell > rowMajor+1e-9 {
			ok = "NO"
		}
		t.AddRow(fmt.Sprint(k), "random ints [0,99]", F(shell), "row-major descending", F(rowMajor), ok)
	}
	t.Notes = append(t.Notes, "row-major places τ1..τk in row 1 etc.; the shell layout is never worse and usually strictly better")
	return t, nil
}

func shellCost(k int, taus []float64) float64 {
	sorted := append([]float64(nil), taus...)
	insertionSortDesc(sorted)
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
	}
	for i, cell := range placement.GridShellOrder(k) {
		m[cell[0]][cell[1]] = sorted[i]
	}
	return placement.GridLayoutCost(m)
}

func rowMajorCost(k int, taus []float64) float64 {
	sorted := append([]float64(nil), taus...)
	insertionSortDesc(sorted)
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
		copy(m[i], sorted[i*k:(i+1)*k])
	}
	return placement.GridLayoutCost(m)
}

func insertionSortDesc(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// --- E9: Eq. (19) ------------------------------------------------------------

// E9MajorityFormula checks the Majority closed form against direct
// evaluation and demonstrates arrangement invariance.
func (s *Suite) E9MajorityFormula() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 9))
	t := &Table{
		ID:       "E9",
		Title:    "Majority closed form and arrangement invariance",
		PaperRef: "§4.2 Eq. (19)",
		Columns:  []string{"n", "t", "Eq.19", "direct Δ", "max |Δ - Eq.19| over arrangements", "invariant"},
	}
	cases := [][2]int{{4, 3}, {5, 3}, {6, 4}}
	if s.Quick {
		cases = [][2]int{{4, 3}, {5, 3}}
	}
	for _, c := range cases {
		nU, th := c[0], c[1]
		sys := quorum.Majority(nU, th)
		st := quorum.Uniform(sys.NumQuorums())
		g := graph.RandomTree(nU+3, 1, 5, rng)
		m, err := graph.NewMetricFromGraph(g)
		if err != nil {
			return nil, err
		}
		load := float64(th) / float64(nU)
		caps := make([]float64, g.N())
		for i := range caps {
			caps[i] = load
		}
		ins, err := placement.NewInstance(m, caps, sys, st)
		if err != nil {
			return nil, err
		}
		res, err := placement.SolveMajoritySSQPP(ins, 0, th)
		if err != nil {
			return nil, err
		}
		maxDev := math.Abs(res.Delay - res.Formula)
		f := res.Placement.Map()
		for trial := 0; trial < s.trials(5, 30); trial++ {
			rng.Shuffle(len(f), func(i, j int) { f[i], f[j] = f[j], f[i] })
			d := ins.MaxDelayFrom(0, placement.NewPlacement(f))
			if dev := math.Abs(d - res.Formula); dev > maxDev {
				maxDev = dev
			}
		}
		inv := "yes"
		if maxDev > 1e-9 {
			inv = "NO"
		}
		t.AddRow(fmt.Sprint(nU), fmt.Sprint(th), F(res.Formula), F(res.Delay), F(maxDev), inv)
	}
	return t, nil
}

// --- E10: §6 extensions ------------------------------------------------------

// E10Extensions exercises the §6 generalizations: per-client strategies
// solved through the averaged strategy, and non-uniform client rates.
func (s *Suite) E10Extensions() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 10))
	t := &Table{
		ID:       "E10",
		Title:    "Per-client strategies and non-uniform rates",
		PaperRef: "§6 extensions of Theorem 1.2",
		Columns:  []string{"variant", "instances", "worst obj/OPT", "bound 5α/(α-1) (α=2)", "worst load factor", "bound α+1"},
	}
	trials := s.trials(2, 6)
	alpha := 2.0

	// Variant 1: per-client strategies, uniform rates.
	worst, worstLoad := 0.0, 0.0
	for trial := 0; trial < trials; trial++ {
		sysC := smallSystems()[trial%len(smallSystems())]
		fam := families()[trial%len(families())]
		n := 5 + rng.Intn(2)
		ins, err := makeInstance(fam.gen(n, rng), sysC.sys, rng)
		if err != nil {
			return nil, err
		}
		per := randomStrategies(ins, rng)
		res, err := placement.SolveQPPAveragedStrategies(ins, per, alpha)
		if err != nil {
			return nil, err
		}
		obj, err := ins.AvgMaxDelayPerClient(per, res.Placement)
		if err != nil {
			return nil, err
		}
		opt, err := bruteForcePerClient(ins, per)
		if err != nil {
			return nil, err
		}
		if opt > 0 {
			if r := obj / opt; r > worst {
				worst = r
			}
		}
		if lf := ins.CapacityViolation(res.Placement); lf > worstLoad {
			worstLoad = lf
		}
	}
	t.AddRow("per-client strategies", fmt.Sprint(trials), F(worst), F(5*alpha/(alpha-1)), F(worstLoad), F(alpha+1))

	// Variant 2: uniform strategy, non-uniform rates.
	worst, worstLoad = 0.0, 0.0
	for trial := 0; trial < trials; trial++ {
		sysC := smallSystems()[trial%len(smallSystems())]
		fam := families()[trial%len(families())]
		n := 5 + rng.Intn(2)
		ins, err := makeInstance(fam.gen(n, rng), sysC.sys, rng)
		if err != nil {
			return nil, err
		}
		rates := make([]float64, n)
		for v := range rates {
			rates[v] = 0.2 + rng.Float64()*3
		}
		if err := ins.SetRates(rates); err != nil {
			return nil, err
		}
		res, err := placement.SolveQPP(ins, alpha)
		if err != nil {
			return nil, err
		}
		opt, err := bruteForceWeighted(ins)
		if err != nil {
			return nil, err
		}
		if opt > 0 {
			if r := res.AvgMaxDelay / opt; r > worst {
				worst = r
			}
		}
		if lf := ins.CapacityViolation(res.Placement); lf > worstLoad {
			worstLoad = lf
		}
	}
	t.AddRow("weighted client rates", fmt.Sprint(trials), F(worst), F(5*alpha/(alpha-1)), F(worstLoad), F(alpha+1))
	return t, nil
}

func randomStrategies(ins *placement.Instance, rng *rand.Rand) []quorum.Strategy {
	n := ins.M.N()
	m := ins.Sys.NumQuorums()
	out := make([]quorum.Strategy, n)
	for v := 0; v < n; v++ {
		p := make([]float64, m)
		sum := 0.0
		for i := range p {
			p[i] = 0.1 + rng.Float64()
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		st, err := quorum.NewStrategy(p)
		if err != nil {
			panic(err) // normalized by construction
		}
		out[v] = st
	}
	return out
}

// bruteForcePerClient enumerates capacity-feasible placements and evaluates
// the per-client objective; feasibility is measured against the averaged
// strategy's loads, matching the solver's load model.
func bruteForcePerClient(ins *placement.Instance, per []quorum.Strategy) (float64, error) {
	avg, err := placement.AverageStrategies(ins, per)
	if err != nil {
		return 0, err
	}
	avgIns, err := placement.NewInstance(ins.M, ins.Cap, ins.Sys, avg)
	if err != nil {
		return 0, err
	}
	best := math.Inf(1)
	err = forEachFeasible(avgIns, func(p placement.Placement) error {
		obj, err := avgIns.AvgMaxDelayPerClient(per, p)
		if err != nil {
			return err
		}
		if obj < best {
			best = obj
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("eval: no feasible placement for per-client brute force")
	}
	return best, nil
}

func bruteForceWeighted(ins *placement.Instance) (float64, error) {
	best := math.Inf(1)
	err := forEachFeasible(ins, func(p placement.Placement) error {
		if obj := ins.AvgMaxDelay(p); obj < best {
			best = obj
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("eval: no feasible placement for weighted brute force")
	}
	return best, nil
}

// forEachFeasible enumerates every capacity-feasible placement of small
// instances (|V|^|U| search with capacity pruning).
func forEachFeasible(ins *placement.Instance, visit func(placement.Placement) error) error {
	nU := ins.Sys.Universe()
	n := ins.M.N()
	if nU > 8 {
		return fmt.Errorf("eval: universe %d too large for enumeration", nU)
	}
	f := make([]int, nU)
	remaining := append([]float64(nil), ins.Cap...)
	var rec func(u int) error
	rec = func(u int) error {
		if u == nU {
			return visit(placement.NewPlacement(f))
		}
		load := ins.Load(u)
		for v := 0; v < n; v++ {
			if remaining[v]+1e-9 < load {
				continue
			}
			f[u] = v
			remaining[v] -= load
			if err := rec(u + 1); err != nil {
				return err
			}
			remaining[v] += load
		}
		return nil
	}
	return rec(0)
}

// --- E11: netsim validation --------------------------------------------------

// E11Netsim compares the analytic delay evaluators with the discrete-event
// simulator on a geometric WAN stand-in.
func (s *Suite) E11Netsim() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 11))
	t := &Table{
		ID:       "E11",
		Title:    "Analytic vs simulated access delay (geometric WAN)",
		PaperRef: "§1 motivation; validates Eq. (2) and the §5 objective",
		Columns:  []string{"system", "mode", "analytic", "simulated", "rel err", "max |load err|"},
	}
	accesses := s.trials(800, 8000)
	type cfg struct {
		name string
		sys  *quorum.System
	}
	cfgs := []cfg{
		{"grid-2x2", quorum.Grid(2)},
		{"majority-3of5", quorum.Majority(5, 3)},
	}
	for _, c := range cfgs {
		n := 12
		g := graph.RandomGeometric(n, 0.4, rng)
		ins, err := makeInstance(g, c.sys, rng)
		if err != nil {
			return nil, err
		}
		p, err := placement.BestGreedyPlacement(ins)
		if err != nil {
			return nil, err
		}
		for _, mode := range []netsim.Mode{netsim.Parallel, netsim.Sequential} {
			stats, err := netsim.Run(netsim.Config{
				Instance:          ins,
				Placement:         p,
				Mode:              mode,
				AccessesPerClient: accesses,
				Seed:              s.Seed + 1100,
				Workers:           s.SimWorkers,
			})
			if err != nil {
				return nil, err
			}
			var analytic float64
			if mode == netsim.Parallel {
				analytic = ins.AvgMaxDelay(p)
			} else {
				analytic = ins.AvgTotalDelay(p)
			}
			rel := 0.0
			if analytic > 0 {
				rel = math.Abs(stats.AvgLatency-analytic) / analytic
			}
			maxLoadErr := 0.0
			for v, want := range ins.NodeLoads(p) {
				if e := math.Abs(stats.EmpiricalLoad[v] - want); e > maxLoadErr {
					maxLoadErr = e
				}
			}
			t.AddRow(c.name, mode.String(), F(analytic), F(stats.AvgLatency), F(rel), F(maxLoadErr))
		}
	}
	return t, nil
}
