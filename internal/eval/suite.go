package eval

import (
	"fmt"
	"math"
	"math/rand"

	"quorumplace/internal/exact"
	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
	"quorumplace/internal/sched"
)

// Suite configures an experiment run. Quick mode shrinks instance counts
// and sizes so the whole suite runs in seconds (used by tests); the full
// mode is what cmd/qppeval runs to regenerate EXPERIMENTS.md.
type Suite struct {
	Seed  int64
	Quick bool
	// ScaleNodes/ScaleClients, when positive, append an extra E18 row with
	// the overridden dimensions (cmd/qppeval -scale-nodes/-scale-clients),
	// so the headline 10⁵-node/10⁶-client configuration runs on demand
	// without every full suite run paying for it.
	ScaleNodes   int
	ScaleClients int
	// SimWorkers is passed to every discrete-event simulation the
	// experiments run (netsim Config.Workers): 0 keeps the legacy
	// sequential engine byte-identical with previous releases; W >= 1 runs
	// the sharded deterministic engine, whose output is bitwise identical
	// for every W.
	SimWorkers int
}

// trials returns quick or full trial counts.
func (s *Suite) trials(quick, full int) int {
	if s.Quick {
		return quick
	}
	return full
}

// Experiment is one runnable experiment.
type Experiment struct {
	ID  string
	Run func(*Suite) (*Table, error)
}

// Experiments lists the full suite in order.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", (*Suite).E1Theorem12},
		{"E2", (*Suite).E2Theorem13},
		{"E3", (*Suite).E3TotalDelay},
		{"E4", (*Suite).E4SSQPP},
		{"E5", (*Suite).E5Relay},
		{"E6", (*Suite).E6Reduction},
		{"E7", (*Suite).E7IntegralityGap},
		{"E8", (*Suite).E8GridLayout},
		{"E9", (*Suite).E9MajorityFormula},
		{"E10", (*Suite).E10Extensions},
		{"E11", (*Suite).E11Netsim},
		{"E12", (*Suite).E12Ablations},
		{"E13", (*Suite).E13Availability},
		{"E14", (*Suite).E14StrategyOpt},
		{"E15", (*Suite).E15Queueing},
		{"E16", (*Suite).E16ReadWriteMix},
		{"E17", (*Suite).E17DynamicEpochs},
		{"E18", (*Suite).E18Scaling},
		{"E19", (*Suite).E19HeatDrift},
		{"E20", (*Suite).E20FlashCrowd},
		{"E21", (*Suite).E21DaemonDriftRamp},
	}
}

// RunAll executes every experiment and returns the tables in order.
func (s *Suite) RunAll() ([]*Table, error) {
	var out []*Table
	for _, e := range Experiments() {
		t, err := e.Run(s)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// --- shared instance generation ------------------------------------------

// graphFamily names a generated topology family.
type graphFamily struct {
	name string
	gen  func(n int, rng *rand.Rand) *graph.Graph
}

func families() []graphFamily {
	return []graphFamily{
		{"path", func(n int, _ *rand.Rand) *graph.Graph { return graph.Path(n) }},
		{"tree", func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomTree(n, 1, 4, rng) }},
		{"erdos-renyi", func(n int, rng *rand.Rand) *graph.Graph {
			return graph.ErdosRenyiConnected(n, 0.4, 0.5, 3, rng)
		}},
		{"geometric", func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomGeometric(n, 0.45, rng) }},
	}
}

// systemChoice names a quorum system used in the experiments.
type systemChoice struct {
	name string
	sys  *quorum.System
}

func smallSystems() []systemChoice {
	return []systemChoice{
		{"grid-2x2", quorum.Grid(2)},
		{"majority-3of4", quorum.Majority(4, 3)},
		{"star-4", quorum.Star(4)},
		{"wheel-4", quorum.Wheel(4)},
	}
}

// makeInstance builds a feasible instance on the given graph and system:
// capacities are seeded from a random placement plus small slack, so a
// capacity-respecting placement always exists.
func makeInstance(g *graph.Graph, sys *quorum.System, rng *rand.Rand) (*placement.Instance, error) {
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		return nil, err
	}
	st := quorum.Uniform(sys.NumQuorums())
	n := g.N()
	tmp, err := placement.NewInstance(m, make([]float64, n), sys, st)
	if err != nil {
		return nil, err
	}
	caps := make([]float64, n)
	for u := 0; u < sys.Universe(); u++ {
		caps[rng.Intn(n)] += tmp.Load(u)
	}
	for v := range caps {
		caps[v] += rng.Float64() * 0.2
	}
	return placement.NewInstance(m, caps, sys, st)
}

// --- E1: Theorem 1.2 -------------------------------------------------------

// E1Theorem12 measures, per α, the worst observed delay ratio
// AvgΔ_f / OPT (paper bound 5α/(α-1)) and the worst observed load factor
// load_f(v)/cap(v) (paper bound α+1) over random small instances where the
// exact optimum is computable.
func (s *Suite) E1Theorem12() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 1))
	t := &Table{
		ID:       "E1",
		Title:    "QPP approximation (delay ratio and load factor vs α)",
		PaperRef: "Theorem 1.2: delay ≤ 5α/(α-1)·OPT, load ≤ (α+1)·cap",
		Columns:  []string{"alpha", "instances", "bound 5α/(α-1)", "worst delay ratio", "mean delay ratio", "bound α+1", "worst load factor"},
	}
	trials := s.trials(3, 12)
	for _, alpha := range []float64{1.5, 2, 3, 4} {
		worstRatio, sumRatio, worstLoad := 0.0, 0.0, 0.0
		count := 0
		arng := rand.New(rand.NewSource(s.Seed + 100)) // same instances per α
		for trial := 0; trial < trials; trial++ {
			sysC := smallSystems()[trial%len(smallSystems())]
			fam := families()[trial%len(families())]
			n := 5 + arng.Intn(3)
			ins, err := makeInstance(fam.gen(n, arng), sysC.sys, arng)
			if err != nil {
				return nil, err
			}
			_, opt, err := exact.SolveQPP(ins)
			if err != nil {
				return nil, err
			}
			res, err := placement.SolveQPP(ins, alpha)
			if err != nil {
				return nil, err
			}
			if opt > 0 {
				r := res.AvgMaxDelay / opt
				if r > worstRatio {
					worstRatio = r
				}
				sumRatio += r
				count++
			}
			if lf := ins.CapacityViolation(res.Placement); lf > worstLoad {
				worstLoad = lf
			}
		}
		mean := 0.0
		if count > 0 {
			mean = sumRatio / float64(count)
		}
		t.AddRow(F(alpha), fmt.Sprint(trials), F(5*alpha/(alpha-1)), F(worstRatio), F(mean), F(alpha+1), F(worstLoad))
		_ = rng
	}
	t.Notes = append(t.Notes,
		"OPT computed by branch-and-bound (internal/exact) on instances with ≤ 8 nodes",
		"observed ratios are far below the worst-case bounds, as expected for random instances")
	return t, nil
}

// --- E2: Theorem 1.3 -------------------------------------------------------

// E2Theorem13 measures the Grid and Majority specialized placements against
// the exact optimum: the paper bound is 5 with capacities respected exactly.
func (s *Suite) E2Theorem13() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 2))
	t := &Table{
		ID:       "E2",
		Title:    "Grid and Majority placements (capacity-respecting, ≤5×OPT)",
		PaperRef: "Theorem 1.3: Grid/Majority delay ≤ 5·OPT at load ≤ cap",
		Columns:  []string{"system", "graph", "instances", "worst ratio", "mean ratio", "worst load factor"},
	}
	trials := s.trials(2, 6)
	type cfg struct {
		name string
		run  func(ins *placement.Instance) (placement.Placement, float64, error)
		sys  *quorum.System
		load float64
	}
	cfgs := []cfg{
		{"grid-2x2", func(ins *placement.Instance) (placement.Placement, float64, error) {
			r, avg, err := placement.SolveGridQPP(ins)
			if err != nil {
				return placement.Placement{}, 0, err
			}
			return r.Placement, avg, nil
		}, quorum.Grid(2), 0.75},
		{"majority-3of4", func(ins *placement.Instance) (placement.Placement, float64, error) {
			r, avg, err := placement.SolveMajorityQPP(ins, 3)
			if err != nil {
				return placement.Placement{}, 0, err
			}
			return r.Placement, avg, nil
		}, quorum.Majority(4, 3), 0.75},
	}
	for _, c := range cfgs {
		for _, fam := range families() {
			worst, sum, worstLoad := 0.0, 0.0, 0.0
			count := 0
			for trial := 0; trial < trials; trial++ {
				n := 6 + rng.Intn(3)
				g := fam.gen(n, rng)
				m, err := graph.NewMetricFromGraph(g)
				if err != nil {
					return nil, err
				}
				caps := make([]float64, n)
				for v := range caps {
					caps[v] = c.load // exactly one element per node
				}
				ins, err := placement.NewInstance(m, caps, c.sys, quorum.Uniform(c.sys.NumQuorums()))
				if err != nil {
					return nil, err
				}
				pl, avg, err := c.run(ins)
				if err != nil {
					return nil, err
				}
				_, opt, err := exact.SolveQPP(ins)
				if err != nil {
					return nil, err
				}
				if opt > 0 {
					r := avg / opt
					if r > worst {
						worst = r
					}
					sum += r
					count++
				}
				if lf := ins.CapacityViolation(pl); lf > worstLoad {
					worstLoad = lf
				}
			}
			mean := 0.0
			if count > 0 {
				mean = sum / float64(count)
			}
			t.AddRow(c.name, fam.name, fmt.Sprint(trials), F(worst), F(mean), F(worstLoad))
		}
	}
	t.Notes = append(t.Notes, "load factor ≤ 1 confirms the Theorem 1.3 placements respect capacities exactly")
	return t, nil
}

// --- E3: Theorems 1.4 / 5.1 ------------------------------------------------

// E3TotalDelay verifies the total-delay solver never exceeds the
// capacity-respecting optimum while loading nodes at most 2×.
func (s *Suite) E3TotalDelay() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 3))
	t := &Table{
		ID:       "E3",
		Title:    "Total-delay placement (delay ≤ OPT at load ≤ 2·cap)",
		PaperRef: "Theorem 1.4 / Theorem 5.1",
		Columns:  []string{"system", "instances", "worst delay/OPT", "worst LP/OPT", "worst load factor", "bound"},
	}
	trials := s.trials(2, 8)
	for _, sysC := range smallSystems() {
		worstDelay, worstLP, worstLoad := 0.0, 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			fam := families()[trial%len(families())]
			n := 5 + rng.Intn(3)
			ins, err := makeInstance(fam.gen(n, rng), sysC.sys, rng)
			if err != nil {
				return nil, err
			}
			res, err := placement.SolveTotalDelay(ins)
			if err != nil {
				return nil, err
			}
			_, opt, err := exact.SolveTotalDelay(ins)
			if err != nil {
				return nil, err
			}
			if opt > 0 {
				if r := res.AvgDelay / opt; r > worstDelay {
					worstDelay = r
				}
				if r := res.LPBound / opt; r > worstLP {
					worstLP = r
				}
			}
			if lf := ins.CapacityViolation(res.Placement); lf > worstLoad {
				worstLoad = lf
			}
		}
		t.AddRow(sysC.name, fmt.Sprint(trials), F(worstDelay), F(worstLP), F(worstLoad), "delay ≤ 1·OPT, load ≤ 2")
	}
	t.Notes = append(t.Notes, "delay/OPT ≤ 1 because resource augmentation lets the GAP rounding beat every capacity-respecting placement")
	return t, nil
}

// --- E4: Theorem 3.7 -------------------------------------------------------

// E4SSQPP verifies the single-source pipeline bounds per α: the delay is at
// most α/(α-1)·Z* and the load at most (α+1)·cap; also reports the LP gap
// Z*/OPT on instances small enough for the exact solver.
func (s *Suite) E4SSQPP() (*Table, error) {
	t := &Table{
		ID:       "E4",
		Title:    "SSQPP LP rounding (delay vs α/(α-1)·Z*, load vs (α+1)·cap)",
		PaperRef: "Theorem 3.7 (and Theorem 3.12 at α=2)",
		Columns:  []string{"alpha", "instances", "bound α/(α-1)", "worst delay/Z*", "worst delay/OPT", "mean Z*/OPT", "worst load factor", "bound α+1"},
	}
	trials := s.trials(3, 10)
	for _, alpha := range []float64{1.25, 1.5, 2, 3, 4} {
		arng := rand.New(rand.NewSource(s.Seed + 400))
		worstVsLP, worstVsOpt, worstLoad := 0.0, 0.0, 0.0
		sumLPOpt := 0.0
		count := 0
		for trial := 0; trial < trials; trial++ {
			sysC := smallSystems()[trial%len(smallSystems())]
			fam := families()[trial%len(families())]
			n := 5 + arng.Intn(3)
			ins, err := makeInstance(fam.gen(n, arng), sysC.sys, arng)
			if err != nil {
				return nil, err
			}
			v0 := arng.Intn(n)
			res, err := placement.SolveSSQPP(ins, v0, alpha)
			if err != nil {
				return nil, err
			}
			_, opt, err := exact.SolveSSQPP(ins, v0)
			if err != nil {
				return nil, err
			}
			if res.LPBound > 1e-12 {
				if r := res.Delay / res.LPBound; r > worstVsLP {
					worstVsLP = r
				}
			}
			if opt > 1e-12 {
				if r := res.Delay / opt; r > worstVsOpt {
					worstVsOpt = r
				}
				sumLPOpt += res.LPBound / opt
				count++
			}
			if lf := ins.CapacityViolation(res.Placement); lf > worstLoad {
				worstLoad = lf
			}
		}
		meanGap := 0.0
		if count > 0 {
			meanGap = sumLPOpt / float64(count)
		}
		t.AddRow(F(alpha), fmt.Sprint(trials), F(alpha/(alpha-1)), F(worstVsLP), F(worstVsOpt), F(meanGap), F(worstLoad), F(alpha+1))
	}
	return t, nil
}

// --- E5: Lemma 3.1 ---------------------------------------------------------

// E5Relay measures the relay-via-v0 factor over random placements: the
// lemma guarantees it never exceeds 5.
func (s *Suite) E5Relay() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 5))
	t := &Table{
		ID:       "E5",
		Title:    "Relay-via-v0 detour factor over random placements",
		PaperRef: "Lemma 3.1: Avg[d(v,v0)+δ_f(v0,Q)] ≤ 5·Avg[Δ_f(v)]",
		Columns:  []string{"system", "placements", "max factor", "mean factor", "bound"},
	}
	trials := s.trials(5, 40)
	for _, sysC := range smallSystems() {
		maxF, sumF := 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			fam := families()[trial%len(families())]
			n := 6 + rng.Intn(4)
			ins, err := makeInstance(fam.gen(n, rng), sysC.sys, rng)
			if err != nil {
				return nil, err
			}
			p, err := placement.RandomFeasiblePlacement(ins, rng, 100)
			if err != nil {
				return nil, err
			}
			f, _ := placement.RelayFactor(ins, p)
			if f > maxF {
				maxF = f
			}
			sumF += f
		}
		t.AddRow(sysC.name, fmt.Sprint(trials), F(maxF), F(sumF/float64(trials)), "5")
	}
	return t, nil
}

// --- E6: Theorem 3.6 -------------------------------------------------------

// E6Reduction validates the NP-hardness reduction: the exact SSQPP optimum
// of the constructed instance equals the affine image of the exact
// scheduling optimum, and the optimal placement converts back to an optimal
// schedule.
func (s *Suite) E6Reduction() (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 6))
	t := &Table{
		ID:       "E6",
		Title:    "1|prec|ΣwC → SSQPP reduction round-trip",
		PaperRef: "Theorem 3.6 (NP-hardness of Problem 3.2)",
		Columns:  []string{"time jobs", "weight jobs", "edges", "sched OPT", "Δ from formula", "SSQPP exact Δ", "recovered cost", "match"},
	}
	trials := s.trials(3, 8)
	for trial := 0; trial < trials; trial++ {
		nt := 2 + rng.Intn(4)
		nw := 1 + rng.Intn(3)
		ins := sched.RandomSpecialForm(nt, nw, 0.5, rng)
		r, err := sched.ToSSQPP(ins)
		if err != nil {
			return nil, err
		}
		_, schedOpt, err := sched.Exact(ins)
		if err != nil {
			return nil, err
		}
		pOpt, delayOpt, err := exact.SolveSSQPP(r.Ins, r.V0)
		if err != nil {
			return nil, err
		}
		formula := r.DelayFromCost(schedOpt)
		order, err := r.ScheduleFromPlacement(pOpt)
		if err != nil {
			return nil, err
		}
		recovered, err := ins.Cost(order)
		if err != nil {
			return nil, err
		}
		match := "yes"
		if math.Abs(delayOpt-formula) > 1e-9 || recovered != schedOpt {
			match = "NO"
		}
		t.AddRow(fmt.Sprint(nt), fmt.Sprint(nw), fmt.Sprint(len(ins.Prec)),
			fmt.Sprint(schedOpt), F(formula), F(delayOpt), fmt.Sprint(recovered), match)
	}
	t.Notes = append(t.Notes, "'match' requires Δ_SSQPP = (ε/m)·OPT_sched + const and the recovered schedule to be optimal")
	return t, nil
}
