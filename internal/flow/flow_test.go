package flow

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxFlowBasic(t *testing.T) {
	// Classic 4-node diamond: s=0, t=3; capacity limited to 2+3=5 out of s,
	// but inner edges limit to 4.
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 2, 0)
	nw.AddEdge(0, 2, 3, 0)
	nw.AddEdge(1, 3, 3, 0)
	nw.AddEdge(2, 3, 2, 0)
	res := nw.MinCostFlow(0, 3, math.MaxInt64)
	if res.Flow != 4 {
		t.Fatalf("max flow = %d, want 4", res.Flow)
	}
}

func TestMinCostChoosesCheapPath(t *testing.T) {
	// Two parallel paths s->a->t (cost 1) and s->b->t (cost 10), capacity 1
	// each; pushing 1 unit must use the cheap path.
	nw := NewNetwork(4)
	ea := nw.AddEdge(0, 1, 1, 1)
	nw.AddEdge(1, 3, 1, 0)
	eb := nw.AddEdge(0, 2, 1, 10)
	nw.AddEdge(2, 3, 1, 0)
	res := nw.MinCostFlow(0, 3, 1)
	if res.Flow != 1 || res.Cost != 1 {
		t.Fatalf("flow=%d cost=%v, want 1, 1", res.Flow, res.Cost)
	}
	if nw.Flow(ea) != 1 || nw.Flow(eb) != 0 {
		t.Fatalf("edge flows: cheap=%d expensive=%d, want 1, 0", nw.Flow(ea), nw.Flow(eb))
	}
}

func TestMinCostFullFlow(t *testing.T) {
	// Same network, push max flow: both paths used; cost 11.
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 1, 1)
	nw.AddEdge(1, 3, 1, 0)
	nw.AddEdge(0, 2, 1, 10)
	nw.AddEdge(2, 3, 1, 0)
	res := nw.MinCostFlow(0, 3, math.MaxInt64)
	if res.Flow != 2 || res.Cost != 11 {
		t.Fatalf("flow=%d cost=%v, want 2, 11", res.Flow, res.Cost)
	}
}

func TestNegativeCosts(t *testing.T) {
	// An edge with negative cost must be preferred.
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 1, -5)
	nw.AddEdge(1, 3, 1, 1)
	nw.AddEdge(0, 2, 1, 0)
	nw.AddEdge(2, 3, 1, 0)
	res := nw.MinCostFlow(0, 3, 1)
	if res.Cost != -4 {
		t.Fatalf("cost = %v, want -4", res.Cost)
	}
}

func TestRerouting(t *testing.T) {
	// Flow must reroute through the residual network: the greedy first path
	// blocks the only s->t cut unless the algorithm can push back.
	// s=0, a=1, b=2, t=3: s->a (1, cost 1), a->t (1, cost 1),
	// s->b (1, cost 1), b->a (1, cost -10), a... classic zigzag:
	// edges: s->a cap1 cost0, a->b cap1 cost0, b->t cap1 cost0,
	//        s->b cap1 cost2, a->t cap1 cost2.
	// Max flow 2 uses both cross edges; SSP must send first unit s->a->b->t
	// then reroute via residual b->a.
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 1, 0)
	nw.AddEdge(1, 2, 1, 0)
	nw.AddEdge(2, 3, 1, 0)
	nw.AddEdge(0, 2, 1, 2)
	nw.AddEdge(1, 3, 1, 2)
	res := nw.MinCostFlow(0, 3, math.MaxInt64)
	if res.Flow != 2 || res.Cost != 4 {
		t.Fatalf("flow=%d cost=%v, want 2, 4", res.Flow, res.Cost)
	}
}

func TestAssignSquare(t *testing.T) {
	costs := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	match, cost, err := Assign(costs, []int64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal assignment: 0->1 (1), 1->0 (2), 2->2 (2) = 5.
	if cost != 5 {
		t.Fatalf("cost = %v, want 5", cost)
	}
	want := []int{1, 0, 2}
	for i := range want {
		if match[i] != want[i] {
			t.Fatalf("match = %v, want %v", match, want)
		}
	}
}

func TestAssignForbiddenPairs(t *testing.T) {
	nan := math.NaN()
	costs := [][]float64{
		{nan, 1},
		{1, nan},
	}
	match, cost, err := Assign(costs, []int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if match[0] != 1 || match[1] != 0 || cost != 2 {
		t.Fatalf("match=%v cost=%v, want [1 0], 2", match, cost)
	}
}

func TestAssignInfeasible(t *testing.T) {
	nan := math.NaN()
	costs := [][]float64{
		{nan, nan},
		{1, 1},
	}
	if _, _, err := Assign(costs, []int64{1, 1}); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestAssignCapacities(t *testing.T) {
	// Three items, one machine with capacity 3: everything lands there.
	costs := [][]float64{{1, 9}, {2, 9}, {3, 9}}
	match, cost, err := Assign(costs, []int64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 6 {
		t.Fatalf("cost = %v, want 6", cost)
	}
	for i, j := range match {
		if j != 0 {
			t.Fatalf("item %d assigned to %d, want 0", i, j)
		}
	}
}

func TestAssignCapacityForcing(t *testing.T) {
	// Machine 0 is cheap but can take only 1 item; the other must go to 1.
	costs := [][]float64{{0, 5}, {0, 7}}
	match, cost, err := Assign(costs, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5 {
		t.Fatalf("cost = %v, want 5 (send item 1... item with higher alt cost to cheap slot)", cost)
	}
	if match[0] == match[1] {
		t.Fatalf("both items on machine %d despite capacity 1", match[0])
	}
}

func TestAssignNegativeCosts(t *testing.T) {
	costs := [][]float64{{-3, 0}, {0, -4}}
	match, cost, err := Assign(costs, []int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cost != -7 || match[0] != 0 || match[1] != 1 {
		t.Fatalf("match=%v cost=%v, want [0 1], -7", match, cost)
	}
}

// bruteAssign enumerates all assignments respecting capacities.
func bruteAssign(costs [][]float64, caps []int64) float64 {
	nl, nr := len(costs), len(caps)
	best := math.Inf(1)
	var rec func(i int, used []int64, acc float64)
	rec = func(i int, used []int64, acc float64) {
		if i == nl {
			if acc < best {
				best = acc
			}
			return
		}
		for j := 0; j < nr; j++ {
			if used[j] < caps[j] && !math.IsNaN(costs[i][j]) {
				used[j]++
				rec(i+1, used, acc+costs[i][j])
				used[j]--
			}
		}
	}
	rec(0, make([]int64, nr), 0)
	return best
}

func TestAssignAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nl := 1 + rng.Intn(5)
		nr := 1 + rng.Intn(4)
		costs := make([][]float64, nl)
		for i := range costs {
			costs[i] = make([]float64, nr)
			for j := range costs[i] {
				if rng.Float64() < 0.15 {
					costs[i][j] = math.NaN()
				} else {
					costs[i][j] = math.Round(rng.Float64()*20 - 5)
				}
			}
		}
		caps := make([]int64, nr)
		for j := range caps {
			caps[j] = int64(1 + rng.Intn(3))
		}
		want := bruteAssign(costs, caps)
		match, cost, err := Assign(costs, caps)
		if math.IsInf(want, 1) {
			if err == nil {
				t.Fatalf("trial %d: Assign succeeded (%v) but brute force says infeasible", trial, match)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: Assign failed but brute force found %v", trial, want)
		}
		if math.Abs(cost-want) > 1e-6 {
			t.Fatalf("trial %d: Assign cost=%v, brute=%v", trial, cost, want)
		}
		// Verify the reported matching is consistent with the cost.
		sum := 0.0
		used := make([]int64, nr)
		for i, j := range match {
			sum += costs[i][j]
			used[j]++
		}
		if math.Abs(sum-cost) > 1e-6 {
			t.Fatalf("trial %d: matching sums to %v, reported %v", trial, sum, cost)
		}
		for j := range used {
			if used[j] > caps[j] {
				t.Fatalf("trial %d: machine %d capacity exceeded: %d > %d", trial, j, used[j], caps[j])
			}
		}
	}
}

func TestFlowHandleTracksEdge(t *testing.T) {
	nw := NewNetwork(2)
	e := nw.AddEdge(0, 1, 5, 1)
	res := nw.MinCostFlow(0, 1, 3)
	if res.Flow != 3 || nw.Flow(e) != 3 {
		t.Fatalf("flow=%d edgeFlow=%d, want 3, 3", res.Flow, nw.Flow(e))
	}
}

// TestPotentialBootstrapBranches pins both initializations of the solve: an
// all-non-negative network must skip Bellman–Ford (zero potentials), a
// network with a negative edge must run it, and both must produce the same
// optimum as each other on equivalent instances.
func TestPotentialBootstrapBranches(t *testing.T) {
	build := func(shift float64) *Network {
		nw := NewNetwork(4)
		nw.AddEdge(0, 1, 1, 1+shift)
		nw.AddEdge(1, 3, 1, 0+shift)
		nw.AddEdge(0, 2, 1, 10+shift)
		nw.AddEdge(2, 3, 1, 0+shift)
		return nw
	}
	nonneg := build(0)
	if nonneg.hasNegativeCost() {
		t.Fatal("non-negative network misdetected as negative")
	}
	neg := build(-2) // shifts two path edges below zero
	if !neg.hasNegativeCost() {
		t.Fatal("negative network not detected")
	}
	rn := nonneg.MinCostFlow(0, 3, math.MaxInt64)
	rg := neg.MinCostFlow(0, 3, math.MaxInt64)
	if rn.Flow != 2 || rg.Flow != 2 {
		t.Fatalf("flows %d/%d, want 2/2", rn.Flow, rg.Flow)
	}
	// Each unit crosses two edges, so shifting all costs by -2 lowers the
	// total cost by 2 edges x 2 units x 2 = 8.
	if rn.Cost != 11 || rg.Cost != 11-8 {
		t.Fatalf("costs %v/%v, want 11/3", rn.Cost, rg.Cost)
	}
}

// TestZeroPotentialSkipMatchesBellmanFord cross-checks the bootstrap
// detection on random all-non-negative networks: a zero-capacity
// negative-cost arc must not trigger the Bellman–Ford branch, and its
// presence must not change the optimum.
func TestZeroPotentialSkipMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		type edge struct {
			u, v int
			c    int64
			cost float64
		}
		var edges []edge
		for u := 0; u < n-1; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, edge{u, v, int64(1 + rng.Intn(3)), float64(rng.Intn(8))})
				}
			}
		}
		// Same network twice: once as-is (non-negative, zero-potential
		// branch), once with one extra negative-cost detour edge that keeps
		// the optimum (cost below any path it shortcuts is avoided by making
		// it expensive in capacity 0). Use a parallel duplicate arc with
		// negative cost and capacity 0: detection must ignore it.
		a := NewNetwork(n)
		b := NewNetwork(n)
		for _, e := range edges {
			a.AddEdge(e.u, e.v, e.c, e.cost)
			b.AddEdge(e.u, e.v, e.c, e.cost)
		}
		b.AddEdge(0, n-1, 0, -100) // zero capacity: must not trigger Bellman-Ford
		if b.hasNegativeCost() {
			t.Fatalf("trial %d: zero-capacity negative arc triggered detection", trial)
		}
		ra := a.MinCostFlow(0, n-1, math.MaxInt64)
		rb := b.MinCostFlow(0, n-1, math.MaxInt64)
		if ra.Flow != rb.Flow || math.Abs(ra.Cost-rb.Cost) > 1e-9 {
			t.Fatalf("trial %d: results differ: %+v vs %+v", trial, ra, rb)
		}
	}
}

// TestWorkspaceReuse solves many assignment instances through one workspace
// and cross-checks every result against the standalone path.
func TestWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	ws := NewWorkspace()
	for trial := 0; trial < 40; trial++ {
		nl := 1 + rng.Intn(6)
		nr := 1 + rng.Intn(5)
		costs := make([][]float64, nl)
		for i := range costs {
			costs[i] = make([]float64, nr)
			for j := range costs[i] {
				if rng.Float64() < 0.1 {
					costs[i][j] = math.NaN()
				} else {
					costs[i][j] = math.Round(rng.Float64()*20 - 5)
				}
			}
		}
		caps := make([]int64, nr)
		for j := range caps {
			caps[j] = int64(1 + rng.Intn(3))
		}
		m1, c1, err1 := Assign(costs, caps)
		m2, c2, err2 := AssignWith(ws, costs, caps)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: feasibility differs: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(c1-c2) > 1e-9 {
			t.Fatalf("trial %d: costs differ: %v vs %v", trial, c1, c2)
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("trial %d: matches differ: %v vs %v", trial, m1, m2)
			}
		}
	}
}

// TestWorkspaceNetworkReuse pins that rebuilding a network on a workspace
// reuses the arc storage (no per-solve growth after warm-up).
func TestWorkspaceNetworkReuse(t *testing.T) {
	ws := NewWorkspace()
	build := func() *Network {
		nw := ws.NewNetwork(4)
		nw.AddEdge(0, 1, 1, 1)
		nw.AddEdge(1, 3, 1, 0)
		nw.AddEdge(0, 2, 1, 10)
		nw.AddEdge(2, 3, 1, 0)
		return nw
	}
	nw := build()
	if res := nw.MinCostFlow(0, 3, math.MaxInt64); res.Flow != 2 || res.Cost != 11 {
		t.Fatalf("first solve: %+v", res)
	}
	allocs := testing.AllocsPerRun(20, func() {
		nw := build()
		if res := nw.MinCostFlow(0, 3, math.MaxInt64); res.Flow != 2 {
			t.Fatal("bad flow")
		}
	})
	if allocs > 0 {
		t.Fatalf("warm workspace solve allocates %v times per run, want 0", allocs)
	}
}
