package flow

import (
	"math/rand"
	"strings"
	"testing"
)

// randomAssignmentNetwork builds the AssignWith-shaped network for nl left
// items and nr right slots with rng-drawn costs, returning it with its
// terminals.
func randomAssignmentNetwork(nl, nr int, rng *rand.Rand) (nw *Network, src, snk int) {
	src, snk = 0, nl+nr+1
	nw = NewNetwork(nl + nr + 2)
	for i := 0; i < nl; i++ {
		nw.AddEdge(src, 1+i, 1, 0)
		for j := 0; j < nr; j++ {
			nw.AddEdge(1+i, 1+nl+j, 1, rng.Float64()*10-2) // some negative costs
		}
	}
	for j := 0; j < nr; j++ {
		nw.AddEdge(1+nl+j, snk, 2, 0)
	}
	return nw, src, snk
}

// TestAuditAcceptsMinCostFlows: solved assignment networks pass every audit
// invariant and the audited flow value matches the solver's.
func TestAuditAcceptsMinCostFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		nl := 2 + rng.Intn(5)
		nr := 1 + (nl+1)/2 + rng.Intn(3)
		nw, src, snk := randomAssignmentNetwork(nl, nr, rng)
		res := nw.MinCostFlow(src, snk, int64(nl))
		flow, err := nw.Audit(src, snk)
		if err != nil {
			t.Fatalf("trial %d: audit rejected a min-cost flow: %v", trial, err)
		}
		if flow != res.Flow {
			t.Fatalf("trial %d: audit flow %d, solver flow %d", trial, flow, res.Flow)
		}
	}
}

// TestAuditDetectsConservationViolation: tampering with one arc's residual
// state breaks conservation and the audit says which node leaks.
func TestAuditDetectsConservationViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nw, src, snk := randomAssignmentNetwork(3, 3, rng)
	if res := nw.MinCostFlow(src, snk, 3); res.Flow != 3 {
		t.Fatalf("flow %d, want 3", res.Flow)
	}
	// Pretend one extra unit traversed the first left item's first slot arc.
	for a := range nw.edges {
		arc := nw.edges[a]
		if nw.to[arc^1] == 1 && nw.to[arc] != src { // arc leaving left item 1
			nw.cap[arc^1]++
			break
		}
	}
	if _, err := nw.Audit(src, snk); err == nil || !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("audit missed the conservation violation: %v", err)
	}
}

// TestAuditDetectsSuboptimalFlow: rerouting one unit from its min-cost slot
// onto a strictly more expensive one leaves a valid flow of the same value
// whose residual network has a negative cycle; the audit must reject it.
func TestAuditDetectsSuboptimalFlow(t *testing.T) {
	// 1 item, 2 slots with costs 1 and 5: optimum uses slot A.
	src, snk := 0, 3
	nw := NewNetwork(4)
	nw.AddEdge(src, 1, 1, 0)
	a := nw.AddEdge(1, 2, 1, 1) // slot arc A, cheap — shares node 2 with B
	b := nw.AddEdge(1, 2, 1, 5) // slot arc B, expensive
	nw.AddEdge(2, snk, 1, 0)
	if res := nw.MinCostFlow(src, snk, 1); res.Cost != 1 {
		t.Fatalf("cost %v, want 1", res.Cost)
	}
	if _, err := nw.Audit(src, snk); err != nil {
		t.Fatalf("audit rejected the optimum: %v", err)
	}
	// Move the unit from A to B by hand: still a feasible unit of flow, but
	// the residual cycle (undo B, redo A) has cost 1-5 < 0.
	arcA, arcB := nw.edges[a], nw.edges[b]
	nw.cap[arcA], nw.cap[arcA^1] = nw.cap[arcA]+1, nw.cap[arcA^1]-1
	nw.cap[arcB], nw.cap[arcB^1] = nw.cap[arcB]-1, nw.cap[arcB^1]+1
	if _, err := nw.Audit(src, snk); err == nil || !strings.Contains(err.Error(), "negative-cost cycle") {
		t.Fatalf("audit accepted a suboptimal flow: %v", err)
	}
}
