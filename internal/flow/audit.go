package flow

import "fmt"

// auditCostTol absorbs floating-point noise when testing residual cycle
// costs for negativity; potentials accumulate at most ~n rounding errors.
const auditCostTol = 1e-7

// Audit verifies the invariants a min-cost flow must satisfy after
// MinCostFlow(s, t, ·) and returns the first violation found (nil if the
// solution is sound). It is read-only and checks:
//
//   - residual capacities are non-negative and each arc pair conserves its
//     original capacity (flow pushed forward equals reverse residual);
//   - flow conservation: the net flow out of every node is zero except at
//     s (which emits the total flow) and t (which absorbs it);
//   - optimality: the residual network contains no negative-cost cycle,
//     the complementary-slackness certificate that no cheaper routing of
//     the same flow value exists (detected by Bellman–Ford from a virtual
//     super-source).
//
// The flow value checked against s's net outflow is returned so callers can
// compare it with the Result of the solve.
func (nw *Network) Audit(s, t int) (int64, error) {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n {
		return 0, fmt.Errorf("flow: audit terminals out of range: s=%d t=%d n=%d", s, t, nw.n)
	}
	for a, c := range nw.cap {
		if c < 0 {
			return 0, fmt.Errorf("flow: arc %d has negative residual capacity %d", a, c)
		}
	}
	// Net flow per node from the original arcs: AddEdge pushes the forward
	// arc at even indices and its zero-capacity reverse at odd ones, so the
	// reverse residual capacity is exactly the flow pushed forward.
	excess := make([]int64, nw.n)
	for _, arc := range nw.edges {
		f := nw.cap[arc^1]
		u, v := nw.to[arc^1], nw.to[arc]
		excess[u] -= f
		excess[v] += f
	}
	for v := range excess {
		if v == s || v == t {
			continue
		}
		if excess[v] != 0 {
			return 0, fmt.Errorf("flow: node %d violates conservation by %d units", v, excess[v])
		}
	}
	if excess[s] != -excess[t] {
		return 0, fmt.Errorf("flow: source emits %d units but sink absorbs %d", -excess[s], excess[t])
	}
	// Negative-cycle detection over residual arcs: start every node at
	// potential 0 (a virtual super-source) and relax n times; a relaxation
	// on the n-th pass can only come from a negative cycle.
	dist := make([]float64, nw.n)
	for iter := 0; iter < nw.n; iter++ {
		changed := false
		for u := 0; u < nw.n; u++ {
			for a := nw.head[u]; a >= 0; a = nw.next[a] {
				if nw.cap[a] <= 0 {
					continue
				}
				v := nw.to[a]
				if nd := dist[u] + nw.cost[a]; nd < dist[v]-auditCostTol {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			return -excess[s], nil
		}
	}
	return 0, fmt.Errorf("flow: residual network has a negative-cost cycle; the flow is not cost-optimal")
}
