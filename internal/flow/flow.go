// Package flow implements min-cost max-flow on directed networks and a
// min-cost bipartite assignment solver built on top of it.
//
// The Shmoys–Tardos rounding step of the Generalized Assignment Problem
// (Theorem 3.11 of the paper) requires finding a minimum-cost integral
// matching in a bipartite "slot" graph whose fractional matching polytope is
// integral. This package supplies that primitive using the successive
// shortest path algorithm with Johnson potentials, which handles negative
// edge costs (as long as the initial network has no negative cycles, which
// bipartite assignment networks never do).
//
// Callers that solve many small networks in a row (the per-source SSQPP
// roundings of the QPP reduction) hold a Workspace, mirroring lp.Workspace:
// every arc array and solver scratch slice is recycled across solves, so the
// steady-state path performs no network allocations at all.
package flow

import (
	"fmt"
	"math"

	"quorumplace/internal/obs"
)

// Workspace owns every buffer a network build and a min-cost-flow solve
// need: the arc arrays of the network under construction and the
// dist/parent/potential/heap scratch of the successive-shortest-path loop.
// Reusing one workspace across solves eliminates the per-solve allocations.
// A Workspace is not safe for concurrent use; give each worker its own.
type Workspace struct {
	// Rec routes the flow solver's telemetry; the zero value records through
	// the ambient package-level collector, worker shards install their own
	// (see obs.Rec). Networks built by Workspace.NewNetwork inherit it.
	Rec obs.Rec

	nw Network // network storage recycled by NewNetwork

	dist  []float64
	inArc []int
	pot   []float64
	hNode []int
	hDist []float64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// NewNetwork returns an empty network on n nodes whose arc storage reuses
// the workspace's buffers. The returned network is only valid until the next
// NewNetwork call on the same workspace.
func (ws *Workspace) NewNetwork(n int) *Network {
	nw := &ws.nw
	if cap(nw.head) < n {
		nw.head = make([]int, n)
	}
	nw.head = nw.head[:n]
	for i := range nw.head {
		nw.head[i] = -1
	}
	nw.n = n
	nw.next = nw.next[:0]
	nw.to = nw.to[:0]
	nw.cap = nw.cap[:0]
	nw.cost = nw.cost[:0]
	nw.edges = nw.edges[:0]
	nw.ws = ws
	return nw
}

// grow returns s resized to n, reusing its backing array when possible.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Network is a directed flow network on nodes 0..n-1 built incrementally
// with AddEdge. Create one with NewNetwork, or with Workspace.NewNetwork to
// reuse the arc storage of previous solves.
type Network struct {
	n     int
	head  []int   // head[v] = first arc index of v, -1 if none
	next  []int   // next[a] = next arc of the same tail
	to    []int   // arc target
	cap   []int64 // residual capacity
	cost  []float64
	edges []int // indices of the original (non-reverse) arcs, in AddEdge order

	ws *Workspace // scratch owner; nil for standalone networks
}

// NewNetwork returns an empty standalone network on n nodes.
func NewNetwork(n int) *Network {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &Network{n: n, head: h}
}

// AddEdge adds a directed edge from u to v with the given capacity and
// per-unit cost, returning an edge handle usable with Flow after solving.
func (nw *Network) AddEdge(u, v int, capacity int64, cost float64) int {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) out of range [0,%d)", u, v, nw.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("flow: negative capacity %d", capacity))
	}
	id := len(nw.to)
	nw.pushArc(u, v, capacity, cost)
	nw.pushArc(v, u, 0, -cost)
	nw.edges = append(nw.edges, id)
	return len(nw.edges) - 1
}

func (nw *Network) pushArc(u, v int, capacity int64, cost float64) {
	nw.to = append(nw.to, v)
	nw.cap = append(nw.cap, capacity)
	nw.cost = append(nw.cost, cost)
	nw.next = append(nw.next, nw.head[u])
	nw.head[u] = len(nw.to) - 1
}

// Flow returns the flow routed on edge handle e (valid after MinCostFlow).
func (nw *Network) Flow(e int) int64 {
	arc := nw.edges[e]
	return nw.cap[arc^1] // reverse arc's residual capacity = pushed flow
}

// Result summarizes a MinCostFlow run.
type Result struct {
	Flow int64
	Cost float64
}

// hasNegativeCost reports whether any positive-capacity arc carries a
// negative cost. Reverse arcs start with zero capacity, so a network built
// from non-negative edges (every GAP slot graph: distances are ≥ 0) passes
// this check and the Bellman–Ford potential bootstrap can be skipped — the
// all-zero potential already makes every reduced cost non-negative.
func (nw *Network) hasNegativeCost() bool {
	for a, c := range nw.cost {
		if c < 0 && nw.cap[a] > 0 {
			return true
		}
	}
	return false
}

// MinCostFlow pushes up to maxFlow units from s to t along successive
// shortest (reduced-cost) paths, returning the total flow actually routed
// and its cost. Pass math.MaxInt64 to compute a true min-cost max-flow.
//
// Costs may be negative on individual edges, but the network must not
// contain a negative-cost cycle of positive capacity. The initial potentials
// start at zero when every edge cost is non-negative (detected at entry) and
// fall back to one Bellman–Ford pass otherwise, so negative edges are still
// handled correctly.
//
// Networks created with Workspace.NewNetwork solve into the workspace's
// scratch buffers; standalone networks allocate their own.
func (nw *Network) MinCostFlow(s, t int, maxFlow int64) Result {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n {
		panic(fmt.Sprintf("flow: terminal out of range: s=%d t=%d n=%d", s, t, nw.n))
	}
	ws := nw.ws
	if ws == nil {
		ws = &Workspace{}
	}
	sp := ws.Rec.Start("flow.mincostflow")
	defer sp.End()
	ws.pot = grow(ws.pot, nw.n)
	if nw.hasNegativeCost() {
		nw.bellmanFord(s, ws.pot)
		ws.Rec.Count("flow.bellman_ford_runs", 1)
	} else {
		for i := range ws.pot {
			ws.pot[i] = 0
		}
	}
	pot := ws.pot
	var totalFlow int64
	totalCost := 0.0
	var augmentations, potentialUpdates int64
	defer func() {
		ws.Rec.Count("flow.augmentations", augmentations)
		ws.Rec.Count("flow.potential_updates", potentialUpdates)
		ws.Rec.Observe("flow.augmentations_per_run", float64(augmentations))
	}()
	ws.dist = grow(ws.dist, nw.n)
	ws.inArc = grow(ws.inArc, nw.n)
	dist, inArc := ws.dist, ws.inArc
	h := pairHeap{node: ws.hNode[:0], dist: ws.hDist[:0]}
	for totalFlow < maxFlow {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			inArc[i] = -1
		}
		dist[s] = 0
		h.node, h.dist = h.node[:0], h.dist[:0]
		h.push(s, 0)
		for h.len() > 0 {
			u, du := h.pop()
			if du > dist[u] {
				continue
			}
			for a := nw.head[u]; a >= 0; a = nw.next[a] {
				if nw.cap[a] <= 0 {
					continue
				}
				v := nw.to[a]
				rc := nw.cost[a] + pot[u] - pot[v]
				if rc < -1e-7 {
					// Reduced costs are non-negative by induction; tiny
					// negatives are floating-point noise.
					rc = 0
				}
				if nd := du + rc; nd < dist[v]-1e-12 {
					dist[v] = nd
					inArc[v] = a
					h.push(v, nd)
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no augmenting path
		}
		for v := 0; v < nw.n; v++ {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
				potentialUpdates++
			}
		}
		// Find bottleneck along the path.
		push := maxFlow - totalFlow
		for v := t; v != s; {
			a := inArc[v]
			if nw.cap[a] < push {
				push = nw.cap[a]
			}
			v = nw.to[a^1]
		}
		for v := t; v != s; {
			a := inArc[v]
			nw.cap[a] -= push
			nw.cap[a^1] += push
			totalCost += float64(push) * nw.cost[a]
			v = nw.to[a^1]
		}
		totalFlow += push
		augmentations++
	}
	// Return the (possibly grown) heap arrays to the workspace.
	ws.hNode, ws.hDist = h.node, h.dist
	return Result{Flow: totalFlow, Cost: totalCost}
}

// bellmanFord computes shortest path potentials from s over positive-capacity
// arcs into pot (length n), tolerating negative costs. Unreachable nodes get
// potential 0, which is safe because they can only become reachable after an
// augmentation that passes through reachable nodes first.
func (nw *Network) bellmanFord(s int, pot []float64) {
	for i := range pot {
		pot[i] = math.Inf(1)
	}
	pot[s] = 0
	for iter := 0; iter < nw.n; iter++ {
		changed := false
		for u := 0; u < nw.n; u++ {
			if math.IsInf(pot[u], 1) {
				continue
			}
			for a := nw.head[u]; a >= 0; a = nw.next[a] {
				if nw.cap[a] <= 0 {
					continue
				}
				v := nw.to[a]
				if nd := pot[u] + nw.cost[a]; nd < pot[v]-1e-12 {
					pot[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range pot {
		if math.IsInf(pot[i], 1) {
			pot[i] = 0
		}
	}
}

// pairHeap is a tiny binary min-heap of (node, dist) pairs backed by
// workspace slices.
type pairHeap struct {
	node []int
	dist []float64
}

func (h *pairHeap) len() int { return len(h.node) }

func (h *pairHeap) push(v int, d float64) {
	h.node = append(h.node, v)
	h.dist = append(h.dist, d)
	i := len(h.node) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dist[p] <= h.dist[i] {
			break
		}
		h.node[p], h.node[i] = h.node[i], h.node[p]
		h.dist[p], h.dist[i] = h.dist[i], h.dist[p]
		i = p
	}
}

func (h *pairHeap) pop() (int, float64) {
	v, d := h.node[0], h.dist[0]
	last := len(h.node) - 1
	h.node[0], h.dist[0] = h.node[last], h.dist[last]
	h.node, h.dist = h.node[:last], h.dist[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < last && h.dist[l] < h.dist[m] {
			m = l
		}
		if r < last && h.dist[r] < h.dist[m] {
			m = r
		}
		if m == i {
			break
		}
		h.node[m], h.node[i] = h.node[i], h.node[m]
		h.dist[m], h.dist[i] = h.dist[i], h.dist[m]
		i = m
	}
	return v, d
}

// Assign solves a min-cost bipartite assignment: left items 0..nl-1 must
// each be matched to exactly one right item 0..nr-1; right item j can host
// at most rightCap[j] left items; costs[i][j] gives the cost of pairing i
// with j, with NaN marking a forbidden pair. It returns match[i] = j for
// every left item and the total cost, or an error if no complete assignment
// exists.
func Assign(costs [][]float64, rightCap []int64) ([]int, float64, error) {
	return AssignWith(nil, costs, rightCap)
}

// AssignWith is Assign solving into ws (nil behaves like Assign); reuse one
// workspace across calls to avoid reallocating the network and solver
// scratch.
func AssignWith(ws *Workspace, costs [][]float64, rightCap []int64) ([]int, float64, error) {
	nl := len(costs)
	nr := len(rightCap)
	// Nodes: 0 = source, 1..nl = left, nl+1..nl+nr = right, nl+nr+1 = sink.
	src, snk := 0, nl+nr+1
	if ws == nil {
		ws = NewWorkspace()
	}
	nw := ws.NewNetwork(nl + nr + 2)
	// Costs can be negative; shift is unnecessary because SSP handles them
	// via Bellman–Ford initial potentials.
	for i := 0; i < nl; i++ {
		if len(costs[i]) != nr {
			return nil, 0, fmt.Errorf("flow: costs row %d has %d entries, want %d", i, len(costs[i]), nr)
		}
		nw.AddEdge(src, 1+i, 1, 0)
		for j := 0; j < nr; j++ {
			if !math.IsNaN(costs[i][j]) {
				nw.AddEdge(1+i, 1+nl+j, 1, costs[i][j])
			}
		}
	}
	for j := 0; j < nr; j++ {
		nw.AddEdge(1+nl+j, snk, rightCap[j], 0)
	}
	res, err := nw.SolveAssignment(src, snk, int64(nl))
	if err != nil {
		return nil, 0, err
	}
	match := make([]int, nl)
	for i := 0; i < nl; i++ {
		match[i] = nw.MatchedNeighbor(1 + i)
		if match[i] < 0 {
			return nil, 0, fmt.Errorf("flow: internal error: item %d unmatched after full flow", i)
		}
		match[i] -= 1 + nl
	}
	return match, res.Cost, nil
}

// SolveAssignment runs the min-cost flow of a bipartite assignment already
// built on the network: exactly items unit-flow units must travel from src
// to snk. It returns an error when fewer than items units fit. Callers that
// construct assignment networks themselves (the GAP rounding) share this
// entry point with AssignWith so both paths report the same telemetry span
// and infeasibility error.
func (nw *Network) SolveAssignment(src, snk int, items int64) (Result, error) {
	var rec obs.Rec
	if nw.ws != nil {
		rec = nw.ws.Rec
	}
	sp := rec.Start("flow.assign")
	defer sp.End()
	res := nw.MinCostFlow(src, snk, items)
	if res.Flow != items {
		return res, fmt.Errorf("flow: assignment infeasible: matched %d of %d items", res.Flow, items)
	}
	return res, nil
}

// MatchedNeighbor returns the head of the first forward arc leaving node u
// that carries positive flow, or -1 if none does. It lets assignment
// extraction walk the adjacency lists directly instead of retaining
// per-edge handles.
func (nw *Network) MatchedNeighbor(u int) int {
	for a := nw.head[u]; a >= 0; a = nw.next[a] {
		if a&1 == 0 && nw.cap[a^1] > 0 { // forward arc with pushed flow
			return nw.to[a]
		}
	}
	return -1
}
