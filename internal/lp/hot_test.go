package lp

import (
	"errors"
	"math/rand"
	"testing"
)

// buildTransport constructs a small transportation LP:
// minimize Σ c_ij x_ij s.t. Σ_j x_ij ≤ supply_i, Σ_i x_ij ≥ demand_j.
func buildTransport(costs [][]float64, supply, demand []float64) *Problem {
	p := NewProblem()
	vars := make([][]int, len(supply))
	for i := range supply {
		vars[i] = make([]int, len(demand))
		for j := range demand {
			vars[i][j] = p.AddVar(costs[i][j], "")
		}
	}
	for i, s := range supply {
		terms := make([]Term, len(demand))
		for j := range demand {
			terms[j] = Term{vars[i][j], 1}
		}
		p.AddConstraint(terms, LE, s)
	}
	for j, d := range demand {
		terms := make([]Term, len(supply))
		for i := range supply {
			terms[i] = Term{vars[i][j], 1}
		}
		p.AddConstraint(terms, GE, d)
	}
	return p
}

func transportFixture() *Problem {
	return buildTransport(
		[][]float64{{4, 6, 9}, {5, 3, 8}, {7, 4, 2}},
		[]float64{20, 25, 15},
		[]float64{10, 18, 12},
	)
}

// TestSolveHotCostChange checks that a warm re-solve after SetCost matches a
// cold solve of an identical problem to solver tolerance, and that the warm
// path is actually taken.
func TestSolveHotCostChange(t *testing.T) {
	p := transportFixture()
	ws := NewWorkspace()
	if _, warm, err := p.SolveHot(ws); err != nil || warm {
		t.Fatalf("first SolveHot: warm=%v err=%v, want cold success", warm, err)
	}
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		for v := 0; v < p.NumVars(); v++ {
			p.SetCost(v, 1+9*rng.Float64())
		}
		sol, warm, err := p.SolveHot(ws)
		if err != nil {
			t.Fatalf("iter %d: SolveHot: %v", iter, err)
		}
		if !warm {
			t.Fatalf("iter %d: cost-only change should stay warm", iter)
		}
		cold, err := p.Clone().Solve()
		if err != nil {
			t.Fatalf("iter %d: cold solve: %v", iter, err)
		}
		if !approxEq(sol.Objective, cold.Objective) {
			t.Fatalf("iter %d: warm objective %v != cold %v", iter, sol.Objective, cold.Objective)
		}
		if err := p.VerifySolution(sol, 1e-6); err != nil {
			t.Fatalf("iter %d: warm solution infeasible: %v", iter, err)
		}
	}
}

// TestSolveHotRHSChange checks warm re-solves across SetRHS edits on LE and
// GE rows: objective agreement with a cold solve plus primal feasibility.
func TestSolveHotRHSChange(t *testing.T) {
	p := transportFixture()
	ws := NewWorkspace()
	if _, _, err := p.SolveHot(ws); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	warmCount := 0
	for iter := 0; iter < 40; iter++ {
		// Keep supplies comfortably above demands so the edited problem
		// stays feasible; perturb both sides.
		for i := 0; i < 3; i++ {
			p.SetRHS(i, 18+6*rng.Float64()) // LE supply rows
		}
		for j := 0; j < 3; j++ {
			p.SetRHS(3+j, 6+8*rng.Float64()) // GE demand rows
		}
		sol, warm, err := p.SolveHot(ws)
		if err != nil {
			t.Fatalf("iter %d: SolveHot: %v", iter, err)
		}
		if warm {
			warmCount++
		}
		cold, err := p.Clone().Solve()
		if err != nil {
			t.Fatalf("iter %d: cold solve: %v", iter, err)
		}
		if !approxEq(sol.Objective, cold.Objective) {
			t.Fatalf("iter %d (warm=%v): objective %v != cold %v", iter, warm, sol.Objective, cold.Objective)
		}
		if err := p.VerifySolution(sol, 1e-6); err != nil {
			t.Fatalf("iter %d: warm solution infeasible: %v", iter, err)
		}
	}
	if warmCount == 0 {
		t.Fatal("no iteration took the warm path")
	}
}

// TestSolveHotFallbacks exercises every cold-fallback trigger.
func TestSolveHotFallbacks(t *testing.T) {
	t.Run("different problem", func(t *testing.T) {
		p := transportFixture()
		ws := NewWorkspace()
		if _, _, err := p.SolveHot(ws); err != nil {
			t.Fatal(err)
		}
		q := p.Clone()
		if _, warm, err := q.SolveHot(ws); err != nil || warm {
			t.Fatalf("clone must go cold, got warm=%v err=%v", warm, err)
		}
	})
	t.Run("structure change", func(t *testing.T) {
		p := transportFixture()
		ws := NewWorkspace()
		if _, _, err := p.SolveHot(ws); err != nil {
			t.Fatal(err)
		}
		v := p.AddVar(1, "extra")
		p.AddConstraint([]Term{{v, 1}}, LE, 5)
		if _, warm, err := p.SolveHot(ws); err != nil || warm {
			t.Fatalf("grown problem must go cold, got warm=%v err=%v", warm, err)
		}
	})
	t.Run("fixed flags change", func(t *testing.T) {
		p := transportFixture()
		ws := NewWorkspace()
		if _, _, err := p.SolveHot(ws); err != nil {
			t.Fatal(err)
		}
		p.SetFixed(0, true)
		sol, warm, err := p.SolveHot(ws)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			t.Fatal("fixed-flag change must go cold")
		}
		if sol.X[0] != 0 {
			t.Fatalf("fixed variable got value %v", sol.X[0])
		}
		// Unchanged flags on the next call stay warm again.
		if _, warm, err := p.SolveHot(ws); err != nil || !warm {
			t.Fatalf("re-solve after cold rebuild should be warm, got warm=%v err=%v", warm, err)
		}
	})
	t.Run("EQ rhs change", func(t *testing.T) {
		p := NewProblem()
		x := p.AddVar(1, "x")
		y := p.AddVar(2, "y")
		p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
		p.AddConstraint([]Term{{x, 1}}, LE, 3)
		ws := NewWorkspace()
		if _, _, err := p.SolveHot(ws); err != nil {
			t.Fatal(err)
		}
		p.SetRHS(0, 5)
		sol, warm, err := p.SolveHot(ws)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			t.Fatal("EQ-row rhs change must go cold")
		}
		if !approxEq(sol.Objective, 3+2*2) {
			t.Fatalf("objective %v, want 7", sol.Objective)
		}
	})
	t.Run("rhs sign flip", func(t *testing.T) {
		p := NewProblem()
		x := p.AddVar(1, "x")
		p.AddConstraint([]Term{{x, 1}}, GE, 2)
		p.AddConstraint([]Term{{x, 1}}, LE, 10)
		ws := NewWorkspace()
		if _, _, err := p.SolveHot(ws); err != nil {
			t.Fatal(err)
		}
		p.SetRHS(0, -1) // x ≥ −1: normalization flips the row
		sol, warm, err := p.SolveHot(ws)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			t.Fatal("sign-flipping rhs change must go cold")
		}
		if !approxEq(sol.Objective, 0) {
			t.Fatalf("objective %v, want 0", sol.Objective)
		}
	})
	t.Run("primal infeasible update", func(t *testing.T) {
		// max x+y with x≤5, y≤5, x+y≤8 puts the basis at x=5, y=3 with
		// slack s_y=2 basic. Tightening x≤1 forces y to 7 under the
		// retained basis, driving s_y to −2: primal infeasible, so the
		// solve must go cold (and still get the right answer, x=1, y=5).
		p := NewProblem()
		x := p.AddVar(-1, "x")
		y := p.AddVar(-1, "y")
		p.AddConstraint([]Term{{x, 1}}, LE, 5)
		p.AddConstraint([]Term{{y, 1}}, LE, 5)
		p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 8)
		ws := NewWorkspace()
		sol, _, err := p.SolveHot(ws)
		if err != nil || !approxEq(sol.Objective, -8) {
			t.Fatalf("seed solve: obj=%v err=%v", sol.Objective, err)
		}
		p.SetRHS(0, 1)
		sol, warm, err := p.SolveHot(ws)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			t.Fatal("basis-infeasible rhs update must go cold")
		}
		if !approxEq(sol.Objective, -6) {
			t.Fatalf("objective %v, want -6", sol.Objective)
		}
	})
	t.Run("redundant row solved cold on rhs change", func(t *testing.T) {
		// Duplicate equalities leave a redundant row that phase 1 zeroes;
		// rhs edits must then go cold even on the surviving LE row.
		p := NewProblem()
		x := p.AddVar(1, "x")
		y := p.AddVar(1, "y")
		p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
		p.AddConstraint([]Term{{x, 2}, {y, 2}}, EQ, 8)
		p.AddConstraint([]Term{{x, 1}}, LE, 3)
		ws := NewWorkspace()
		if _, _, err := p.SolveHot(ws); err != nil {
			t.Fatal(err)
		}
		p.SetRHS(2, 1)
		sol, warm, err := p.SolveHot(ws)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			t.Fatal("rhs change with a dropped redundant row must go cold")
		}
		if !approxEq(sol.Objective, 4) {
			t.Fatalf("objective %v, want 4", sol.Objective)
		}
	})
	t.Run("unbounded invalidates", func(t *testing.T) {
		p := NewProblem()
		x := p.AddVar(1, "x")
		y := p.AddVar(1, "y")
		p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 2)
		ws := NewWorkspace()
		if _, _, err := p.SolveHot(ws); err != nil {
			t.Fatal(err)
		}
		p.SetCost(0, -1)
		p.SetCost(1, -1)
		_, warm, err := p.SolveHot(ws)
		if !errors.Is(err, ErrUnbounded) {
			t.Fatalf("err=%v, want ErrUnbounded", err)
		}
		if !warm {
			t.Fatal("cost-only change should have attempted the warm path")
		}
		// The retained basis is gone; the next call must go cold.
		p.SetCost(0, 1)
		p.SetCost(1, 1)
		if _, warm, err := p.SolveHot(ws); err != nil || warm {
			t.Fatalf("post-unbounded solve: warm=%v err=%v, want cold success", warm, err)
		}
	})
	t.Run("no constraints", func(t *testing.T) {
		p := NewProblem()
		p.AddVar(1, "x")
		ws := NewWorkspace()
		for i := 0; i < 2; i++ {
			sol, warm, err := p.SolveHot(ws)
			if err != nil || warm {
				t.Fatalf("call %d: warm=%v err=%v", i, warm, err)
			}
			if sol.X[0] != 0 {
				t.Fatalf("call %d: x=%v", i, sol.X[0])
			}
		}
	})
}

// TestSolveHotRepeated drives many alternating cost and rhs edits through
// one workspace, checking against a fresh cold solve every time. This is
// the access pattern of a quorumd re-planning tick.
func TestSolveHotRepeated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := transportFixture()
	ws := NewWorkspace()
	if _, _, err := p.SolveHot(ws); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 60; iter++ {
		switch iter % 3 {
		case 0:
			for v := 0; v < p.NumVars(); v++ {
				p.SetCost(v, 1+9*rng.Float64())
			}
		case 1:
			p.SetRHS(rng.Intn(3), 18+6*rng.Float64())
		default:
			p.SetRHS(3+rng.Intn(3), 6+8*rng.Float64())
		}
		sol, _, err := p.SolveHot(ws)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		cold, err := p.Clone().Solve()
		if err != nil {
			t.Fatalf("iter %d: cold: %v", iter, err)
		}
		if !approxEq(sol.Objective, cold.Objective) {
			t.Fatalf("iter %d: warm %v != cold %v", iter, sol.Objective, cold.Objective)
		}
		if err := p.VerifySolution(sol, 1e-6); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

// TestResetWarm checks that ResetWarm forces the next SolveHot cold.
func TestResetWarm(t *testing.T) {
	p := transportFixture()
	ws := NewWorkspace()
	if _, _, err := p.SolveHot(ws); err != nil {
		t.Fatal(err)
	}
	if _, warm, err := p.SolveHot(ws); err != nil || !warm {
		t.Fatalf("second solve: warm=%v err=%v, want warm", warm, err)
	}
	ws.ResetWarm()
	if _, warm, err := p.SolveHot(ws); err != nil || warm {
		t.Fatalf("post-reset solve: warm=%v err=%v, want cold", warm, err)
	}
}

// TestSolveHotPooledIsolation checks that the pooled-workspace Solve path
// can never leave a warm state behind that a later SolveHot would trust.
func TestSolveHotPooledIsolation(t *testing.T) {
	p := transportFixture()
	for i := 0; i < 10; i++ {
		if _, err := p.Solve(); err != nil {
			t.Fatal(err)
		}
	}
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	if ws.warm.valid {
		t.Fatal("pooled workspace retained a valid warm state")
	}
}
