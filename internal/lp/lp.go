// Package lp implements a general-purpose linear-programming solver: a
// two-phase dense simplex method with Bland's anti-cycling rule.
//
// The quorum-placement algorithms need two LPs solved exactly enough to
// carry the paper's guarantees: the Single-Source Quorum Placement LP
// (Eqs. 9–14 of the paper) and the Generalized Assignment LP (Eqs. 15–18,
// Shmoys–Tardos). Go has no stdlib LP solver, so this package provides one.
//
// All variables are non-negative; constraints may be ≤, = or ≥; the
// objective is minimized. Problems are built incrementally:
//
//	p := lp.NewProblem()
//	x := p.AddVar(3.0, "x")         // cost coefficient 3
//	y := p.AddVar(2.0, "y")
//	p.AddConstraint([]lp.Term{{x, 1}, {y, 1}}, lp.GE, 4)
//	sol, err := p.Solve()
//
// The implementation favors robustness over speed: a dense tableau with
// Dantzig pricing, falling back to Bland's rule when cycling is suspected.
package lp

import (
	"errors"
	"fmt"
	"math"

	"quorumplace/internal/obs"
)

// Rel is the relation of a linear constraint.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Σ aᵢxᵢ ≤ b
	GE            // Σ aᵢxᵢ ≥ b
	EQ            // Σ aᵢxᵢ = b
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Term is one coefficient of a linear constraint: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

// Status describes the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrInfeasible and ErrUnbounded are returned by Solve for abnormal
// terminations; the Solution carries the matching Status as well.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
)

type constraint struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem.
type Problem struct {
	costs []float64
	names []string
	cons  []constraint
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem {
	return &Problem{}
}

// AddVar adds a non-negative variable with the given objective (cost)
// coefficient and returns its index. The name is used in error messages and
// debugging output only; it may be empty.
func (p *Problem) AddVar(cost float64, name string) int {
	p.costs = append(p.costs, cost)
	p.names = append(p.names, name)
	return len(p.costs) - 1
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.costs) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddConstraint adds the constraint Σ term ≤/=/≥ rhs. Terms referring to the
// same variable are summed. It panics on out-of-range variable indices,
// which always indicate a programming error in the model builder.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.costs) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d (have %d)", t.Var, len(p.costs)))
		}
	}
	cp := append([]Term(nil), terms...)
	p.cons = append(p.cons, constraint{terms: cp, rel: rel, rhs: rhs})
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // values of the variables, in AddVar order
}

// solver tolerances. eps is the general feasibility/pivot tolerance; any
// tableau entry smaller in magnitude is treated as zero.
const (
	eps          = 1e-9
	phase1Tol    = 1e-7
	blandTrigger = 5000 // iterations of Dantzig pricing before switching to Bland
)

// Solve runs the two-phase simplex method. On Status != Optimal the
// returned error is ErrInfeasible or ErrUnbounded and Solution.X is nil.
func (p *Problem) Solve() (*Solution, error) {
	sp := obs.Start("lp.solve")
	defer sp.End()
	n := len(p.costs)
	m := len(p.cons)
	obs.Count("lp.solves", 1)
	if m == 0 {
		// Minimizing c·x over x ≥ 0: bounded iff all costs ≥ 0, optimum 0.
		for j, c := range p.costs {
			if c < -eps {
				_ = j
				return &Solution{Status: Unbounded}, ErrUnbounded
			}
		}
		return &Solution{Status: Optimal, X: make([]float64, n)}, nil
	}

	// Count extra columns: one slack per LE, one surplus per GE,
	// one artificial per GE or EQ row (and per LE row with negative rhs,
	// handled by pre-normalizing rhs to be non-negative).
	type rowKind struct {
		rel Rel
		rhs float64
		neg bool // row was multiplied by -1 to make rhs ≥ 0
	}
	kinds := make([]rowKind, m)
	slackCount, artCount := 0, 0
	for i, c := range p.cons {
		rel, rhs, neg := c.rel, c.rhs, false
		if rhs < 0 {
			rhs, neg = -rhs, true
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel: rel, rhs: rhs, neg: neg}
		switch rel {
		case LE:
			slackCount++
		case GE:
			slackCount++ // surplus
			artCount++
		case EQ:
			artCount++
		}
	}

	total := n + slackCount + artCount
	// Tableau: m rows of total+1 (last column = rhs), plus two objective
	// rows (phase-1 and phase-2 reduced costs) handled separately.
	tab := make([][]float64, m)
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, m)

	slackAt := n
	artAt := n + slackCount
	for i, c := range p.cons {
		k := kinds[i]
		sign := 1.0
		if k.neg {
			sign = -1
		}
		for _, t := range c.terms {
			tab[i][t.Var] += sign * t.Coef
		}
		tab[i][total] = k.rhs
		switch k.rel {
		case LE:
			tab[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			tab[i][slackAt] = -1
			slackAt++
			tab[i][artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			tab[i][artAt] = 1
			basis[i] = artAt
			artAt++
		}
	}

	s := &simplex{tab: tab, basis: basis, m: m, total: total, names: p.names}
	defer func() {
		obs.Count("lp.pivots", s.pivots)
		obs.Count("lp.degenerate_pivots", s.degens)
		obs.Count("lp.bland_activations", s.blandActivations)
		obs.Observe("lp.pivots_per_solve", float64(s.pivots))
		obs.Observe("lp.constraints_per_solve", float64(m))
		obs.Observe("lp.vars_per_solve", float64(n))
	}()

	if artCount > 0 {
		// Phase 1: minimize the sum of artificial variables.
		p1 := obs.Start("lp.phase1")
		obj := make([]float64, total+1)
		for j := n + slackCount; j < total; j++ {
			obj[j] = 1
		}
		s.setObjective(obj)
		status := s.run(total)
		obs.Count("lp.phase1_iters", s.pivots)
		p1.End()
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded means a bug.
			return nil, fmt.Errorf("lp: internal error: phase-1 unbounded")
		}
		if s.objValue() > phase1Tol {
			return &Solution{Status: Infeasible}, ErrInfeasible
		}
		// Drive any remaining artificial variables out of the basis.
		s.evictArtificials(n + slackCount)
	}

	// Phase 2: original objective over structural + slack columns only.
	p2 := obs.Start("lp.phase2")
	phase1Pivots := s.pivots
	obj := make([]float64, total+1)
	copy(obj, p.costs)
	s.setObjective(obj)
	// Forbid artificial columns from re-entering.
	s.maxCol = n + slackCount
	status := s.run(n + slackCount)
	obs.Count("lp.phase2_iters", s.pivots-phase1Pivots)
	p2.End()
	if status == Unbounded {
		return &Solution{Status: Unbounded}, ErrUnbounded
	}

	x := make([]float64, n)
	for i, b := range s.basis {
		if b < n {
			x[b] = s.tab[i][total]
		}
	}
	// Clamp tiny negatives introduced by roundoff.
	for j := range x {
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
	}
	objVal := 0.0
	for j := range x {
		objVal += p.costs[j] * x[j]
	}
	return &Solution{Status: Optimal, Objective: objVal, X: x}, nil
}

// simplex holds the dense tableau state shared by the two phases.
type simplex struct {
	tab    [][]float64 // m rows × (total+1); column `total` is the rhs
	obj    []float64   // reduced-cost row, length total+1 (last entry = -objective value)
	basis  []int
	m      int
	total  int
	maxCol int // columns ≥ maxCol may not enter the basis (0 = no limit)
	names  []string

	// telemetry tallies, accumulated locally (no per-pivot obs calls) and
	// reported once per Solve.
	pivots           int64
	degens           int64 // pivots with a ~zero leaving ratio (degenerate steps)
	blandActivations int64
}

// setObjective installs a fresh objective row and prices out the current
// basis so all basic columns have reduced cost zero.
func (s *simplex) setObjective(obj []float64) {
	s.obj = make([]float64, s.total+1)
	copy(s.obj, obj)
	for i, b := range s.basis {
		if c := s.obj[b]; c != 0 {
			for j := 0; j <= s.total; j++ {
				s.obj[j] -= c * s.tab[i][j]
			}
		}
	}
}

func (s *simplex) objValue() float64 { return -s.obj[s.total] }

// run iterates pivots until optimality or unboundedness. Columns with index
// ≥ limit never enter the basis.
func (s *simplex) run(limit int) Status {
	if s.maxCol > 0 && s.maxCol < limit {
		limit = s.maxCol
	}
	for iter := 0; ; iter++ {
		bland := iter >= blandTrigger
		if iter == blandTrigger {
			s.blandActivations++
		}
		enter := s.chooseEntering(limit, bland)
		if enter < 0 {
			return Optimal
		}
		leave := s.chooseLeaving(enter, bland)
		if leave < 0 {
			return Unbounded
		}
		if s.tab[leave][s.total] <= eps {
			s.degens++
		}
		s.pivot(leave, enter)
	}
}

// chooseEntering picks the entering column: the most negative reduced cost
// under Dantzig pricing, or the lowest-index negative column under Bland.
func (s *simplex) chooseEntering(limit int, bland bool) int {
	best, bestVal := -1, -eps
	for j := 0; j < limit; j++ {
		if s.obj[j] < bestVal {
			if bland {
				return j
			}
			best, bestVal = j, s.obj[j]
		}
	}
	return best
}

// chooseLeaving runs the minimum-ratio test on column enter. Under Bland's
// rule ties are broken by the smallest basis variable index, which together
// with Bland's entering rule guarantees termination.
func (s *simplex) chooseLeaving(enter int, bland bool) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < s.m; i++ {
		a := s.tab[i][enter]
		if a <= eps {
			continue
		}
		ratio := s.tab[i][s.total] / a
		if ratio < bestRatio-eps {
			best, bestRatio = i, ratio
			continue
		}
		if ratio <= bestRatio+eps && best >= 0 {
			if bland {
				if s.basis[i] < s.basis[best] {
					best = i
				}
			} else if a > s.tab[best][enter] {
				// Prefer larger pivots for numerical stability.
				best, bestRatio = i, ratio
			}
		}
	}
	return best
}

// pivot performs a full Gauss–Jordan pivot on (row, col).
func (s *simplex) pivot(row, col int) {
	s.pivots++
	pr := s.tab[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j <= s.total; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // kill roundoff
	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		if f := s.tab[i][col]; f != 0 {
			ri := s.tab[i]
			for j := 0; j <= s.total; j++ {
				ri[j] -= f * pr[j]
			}
			ri[col] = 0
		}
	}
	if f := s.obj[col]; f != 0 {
		for j := 0; j <= s.total; j++ {
			s.obj[j] -= f * pr[j]
		}
		s.obj[col] = 0
	}
	s.basis[row] = col
}

// evictArtificials pivots any artificial variable that remains basic at
// value zero out of the basis (or drops its row as redundant) so that
// phase 2 can proceed on structural and slack columns alone.
func (s *simplex) evictArtificials(firstArt int) {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < firstArt {
			continue
		}
		// Find a non-artificial column with a usable pivot in this row.
		pivoted := false
		for j := 0; j < firstArt; j++ {
			if math.Abs(s.tab[i][j]) > 1e-7 {
				s.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: every structural coefficient is ~0 and the
			// rhs is ~0 (phase 1 succeeded). Zero it so it never pivots.
			for j := 0; j <= s.total; j++ {
				s.tab[i][j] = 0
			}
		}
	}
}
