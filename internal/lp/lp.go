// Package lp implements a general-purpose linear-programming solver: a
// two-phase simplex method over a flat (single-allocation, row-major)
// tableau with candidate-list Dantzig pricing and Bland's anti-cycling rule.
//
// The quorum-placement algorithms need two LPs solved exactly enough to
// carry the paper's guarantees: the Single-Source Quorum Placement LP
// (Eqs. 9–14 of the paper) and the Generalized Assignment LP (Eqs. 15–18,
// Shmoys–Tardos). Go has no stdlib LP solver, so this package provides one.
//
// All variables are non-negative; constraints may be ≤, = or ≥; the
// objective is minimized. Problems are built incrementally:
//
//	p := lp.NewProblem()
//	x := p.AddVar(3.0, "x")         // cost coefficient 3
//	y := p.AddVar(2.0, "y")
//	p.AddConstraint([]lp.Term{{x, 1}, {y, 1}}, lp.GE, 4)
//	sol, err := p.Solve()
//
// Hot callers that solve many structurally identical programs (the SSQPP
// pipeline solves one LP per candidate source) use two further hooks:
//
//   - a Workspace holds every solver buffer and is reused across solves, so
//     a warm solve performs no tableau allocation (Solve draws workspaces
//     from an internal pool; SolveWith pins an explicit one);
//   - Clone/SetCost/SetRHS/SetFixed re-cost a built model in place instead
//     of rebuilding it, sharing the constraint sparsity across solves;
//   - SolveHot re-solves a re-costed model against the optimal basis the
//     workspace retains from its previous solve of the same model, skipping
//     tableau construction and phase 1 entirely (the incremental path of
//     the quorumd re-planning ticks).
package lp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"quorumplace/internal/obs"
)

// Rel is the relation of a linear constraint.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Σ aᵢxᵢ ≤ b
	GE            // Σ aᵢxᵢ ≥ b
	EQ            // Σ aᵢxᵢ = b
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Term is one coefficient of a linear constraint: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

// Status describes the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrInfeasible and ErrUnbounded are returned by Solve for abnormal
// terminations; the Solution carries the matching Status as well. Returned
// errors may wrap these sentinels with context, so match with errors.Is.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
)

type constraint struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem.
type Problem struct {
	costs []float64
	names []string
	fixed []bool // fixed-to-zero variables; nil = none
	cons  []constraint
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem {
	return &Problem{}
}

// AddVar adds a non-negative variable with the given objective (cost)
// coefficient and returns its index. The name is used in error messages and
// debugging output only; it may be empty.
func (p *Problem) AddVar(cost float64, name string) int {
	p.costs = append(p.costs, cost)
	p.names = append(p.names, name)
	if p.fixed != nil {
		p.fixed = append(p.fixed, false)
	}
	return len(p.costs) - 1
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.costs) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddConstraint adds the constraint Σ term ≤/=/≥ rhs. Terms referring to the
// same variable are summed. It panics on out-of-range variable indices,
// which always indicate a programming error in the model builder.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.costs) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d (have %d)", t.Var, len(p.costs)))
		}
	}
	cp := append([]Term(nil), terms...)
	p.cons = append(p.cons, constraint{terms: cp, rel: rel, rhs: rhs})
}

// SetCost overwrites the objective coefficient of variable v.
func (p *Problem) SetCost(v int, cost float64) {
	p.costs[v] = cost
}

// SetRHS overwrites the right-hand side of constraint i (in AddConstraint
// order), leaving its terms and relation untouched.
func (p *Problem) SetRHS(i int, rhs float64) {
	p.cons[i].rhs = rhs
}

// SetFixed fixes variable v to zero (or releases it). A fixed variable
// keeps its rows and columns in the model but never enters the basis, which
// is exactly equivalent to omitting it — the hook lets one model skeleton
// serve many solves that forbid different variable subsets.
func (p *Problem) SetFixed(v int, fixed bool) {
	if p.fixed == nil {
		if !fixed {
			return
		}
		p.fixed = make([]bool, len(p.costs))
	}
	p.fixed[v] = fixed
}

// Fixed reports whether variable v is fixed to zero.
func (p *Problem) Fixed(v int) bool {
	return p.fixed != nil && p.fixed[v]
}

// Clone returns an independent copy of the problem that shares the
// (immutable) constraint term slices with the receiver. Costs, right-hand
// sides and fixed flags are deep-copied, so SetCost/SetRHS/SetFixed on the
// clone never affect the original — the intended pattern for re-costing one
// model skeleton concurrently from several goroutines.
func (p *Problem) Clone() *Problem {
	cp := &Problem{
		costs: append([]float64(nil), p.costs...),
		names: append([]string(nil), p.names...),
		cons:  append([]constraint(nil), p.cons...),
	}
	if p.fixed != nil {
		cp.fixed = append([]bool(nil), p.fixed...)
	}
	return cp
}

func (p *Problem) varName(j int) string {
	if j < len(p.names) && p.names[j] != "" {
		return p.names[j]
	}
	return fmt.Sprintf("x%d", j)
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // values of the variables, in AddVar order
}

// solver tolerances. eps is the general feasibility/pivot tolerance; any
// tableau entry smaller in magnitude is treated as zero.
const (
	eps          = 1e-9
	phase1Tol    = 1e-7
	blandTrigger = 5000 // iterations of Dantzig pricing before switching to Bland
	candListCap  = 24   // pricing candidate-list size (partial Dantzig)
)

// rowKind is the per-row normalization record built before the tableau.
type rowKind struct {
	rel Rel
	rhs float64
	neg bool // row was multiplied by -1 to make rhs ≥ 0
}

// Workspace owns every buffer a solve needs: the flat tableau, the
// objective row, the basis, and the pricing scratch lists. Reusing one
// workspace across solves makes a warm solve allocation-free up to the
// returned Solution. A Workspace is not safe for concurrent use; give each
// goroutine its own. The zero value is ready to use.
type Workspace struct {
	// Rec routes this workspace's telemetry. The zero value records through
	// the ambient package-level collector (sequential behavior); parallel
	// workers set it to their shard's recorder so solves under way on
	// different goroutines never contend on the collector and their spans
	// parent correctly (see obs.Shard).
	Rec obs.Rec

	tab   []float64
	obj   []float64
	basis []int
	kinds []rowKind
	nz    []int
	cand  []int
	sx    simplex
	used  bool
	warm  warmState
}

// warmState is the metadata SolveHot needs to re-solve the problem the
// workspace last solved without rebuilding the tableau. It is recorded at
// the end of every successful solveSimplex — but only on workspaces that
// have been through SolveHot, so one-shot Solve/SolveWith callers never pay
// for snapshots they will throw away — and invalidated at the start of the
// next build (so a failed build can never leave a stale-but-valid state
// behind).
type warmState struct {
	record   bool     // set by SolveHot: only hot-path workspaces snapshot a basis
	prob     *Problem // identity of the model the tableau encodes
	n, m     int
	stride   int
	total    int
	firstArt int
	// unitCol[i] is the tableau column holding ±B⁻¹eᵢ for constraint row i:
	// the slack column for LE rows (sign +1), the surplus column for GE rows
	// (sign −1), and −1 for EQ rows, which carry no unit column through
	// phase 2 (their artificial column goes stale once width shrinks).
	unitCol  []int
	unitSign []float64
	rhs      []float64 // normalized (non-negative) rhs the tableau was built with
	neg      []bool    // row i was multiplied by −1 during normalization
	fixed    []bool    // snapshot of p.fixed at build time (nil = none)
	clean    bool      // no zeroed redundant rows: every basis entry < firstArt
	valid    bool
	scratch  []float64 // candidate rhs column, committed only if feasible
}

// ResetWarm discards the workspace's retained basis so the next SolveHot
// falls back to a cold solve. Benchmarks use it to isolate the cold path;
// it is never required for correctness.
func (ws *Workspace) ResetWarm() {
	ws.warm.valid = false
	ws.warm.prob = nil
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsPool recycles workspaces across Solve calls so that steady-state
// solving through the convenience entry point also runs allocation-free.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// Solve runs the two-phase simplex method using a pooled workspace. On
// Status != Optimal the returned error wraps ErrInfeasible or ErrUnbounded
// and Solution.X is nil.
func (p *Problem) Solve() (*Solution, error) {
	ws := wsPool.Get().(*Workspace)
	ws.Rec = obs.Rec{} // pooled workspaces must not inherit a stale shard
	sol, err := p.SolveWith(ws)
	ws.ResetWarm() // don't pin the Problem (and a false warm hit) in the pool
	wsPool.Put(ws)
	return sol, err
}

// SolveWith is Solve with an explicit workspace, for callers that solve in
// a loop and want buffer reuse pinned rather than pooled.
func (p *Problem) SolveWith(ws *Workspace) (*Solution, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	sp := ws.Rec.Start("lp.solve")
	defer sp.End()
	ws.Rec.Count("lp.solves", 1)
	n := len(p.costs)
	if len(p.cons) == 0 {
		// Minimizing c·x over x ≥ 0: bounded iff all (free) costs ≥ 0,
		// optimum 0.
		for j, c := range p.costs {
			if c < -eps && !p.Fixed(j) {
				return &Solution{Status: Unbounded},
					fmt.Errorf("%w: variable %s has negative cost %v and no constraints", ErrUnbounded, p.varName(j), c)
			}
		}
		return &Solution{Status: Optimal, X: make([]float64, n)}, nil
	}
	sol, err := p.solveSimplex(ws)
	s := &ws.sx
	ws.Rec.Count("lp.pivots", s.pivots)
	ws.Rec.Count("lp.degenerate_pivots", s.degens)
	ws.Rec.Count("lp.bland_activations", s.blandActivations)
	ws.Rec.Count("lp.pricing_scans", s.pricingScans)
	ws.Rec.Observe("lp.pivots_per_solve", float64(s.pivots))
	ws.Rec.Observe("lp.constraints_per_solve", float64(len(p.cons)))
	ws.Rec.Observe("lp.vars_per_solve", float64(n))
	return sol, err
}

// growF resizes a float64 buffer to length n, reusing capacity.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growI resizes an int buffer to length n, reusing capacity.
func growI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// solveSimplex builds the tableau into ws and runs both phases.
func (p *Problem) solveSimplex(ws *Workspace) (*Solution, error) {
	ws.warm.valid = false // stale until this build completes successfully
	n := len(p.costs)
	m := len(p.cons)

	// Count extra columns: one slack per LE, one surplus per GE,
	// one artificial per GE or EQ row (and per LE row with negative rhs,
	// handled by pre-normalizing rhs to be non-negative).
	if cap(ws.kinds) < m {
		ws.kinds = make([]rowKind, m)
	}
	kinds := ws.kinds[:m]
	slackCount, artCount := 0, 0
	for i := range p.cons {
		c := &p.cons[i]
		rel, rhs, neg := c.rel, c.rhs, false
		if rhs < 0 {
			rhs, neg = -rhs, true
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel: rel, rhs: rhs, neg: neg}
		switch rel {
		case LE:
			slackCount++
		case GE:
			slackCount++ // surplus
			artCount++
		case EQ:
			artCount++
		}
	}

	total := n + slackCount + artCount
	stride := total + 1 // column `total` is the rhs
	if ws.used && cap(ws.tab) >= m*stride {
		ws.Rec.Count("lp.workspace_reuses", 1)
	}
	ws.used = true

	// Tableau: m rows of length stride in one contiguous row-major array,
	// so pivots stream cache-linearly; the two objective rows (phase-1 and
	// phase-2 reduced costs) live in a separate buffer.
	ws.tab = growF(ws.tab, m*stride)
	tab := ws.tab
	for i := range tab {
		tab[i] = 0
	}
	ws.obj = growF(ws.obj, stride)
	ws.basis = growI(ws.basis, m)
	basis := ws.basis

	slackAt := n
	artAt := n + slackCount
	for i := range p.cons {
		c := &p.cons[i]
		k := kinds[i]
		sign := 1.0
		if k.neg {
			sign = -1
		}
		row := tab[i*stride : (i+1)*stride]
		for _, t := range c.terms {
			row[t.Var] += sign * t.Coef
		}
		row[total] = k.rhs
		switch k.rel {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		}
	}

	s := &ws.sx
	*s = simplex{
		tab:    tab,
		obj:    ws.obj,
		stride: stride,
		m:      m,
		total:  total,
		width:  total,
		basis:  basis,
		fixed:  p.fixed,
		nz:     ws.nz,
		cand:   ws.cand,
	}
	defer func() {
		// Return possibly-regrown scratch buffers to the workspace.
		ws.nz = s.nz
		ws.cand = s.cand
	}()

	firstArt := n + slackCount
	if artCount > 0 {
		// Phase 1: minimize the sum of artificial variables.
		p1 := ws.Rec.Start("lp.phase1")
		s.setPhase1Objective(firstArt)
		status := s.run()
		ws.Rec.Count("lp.phase1_iters", s.pivots)
		p1.End()
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded means a bug.
			return nil, fmt.Errorf("lp: internal error: phase-1 unbounded")
		}
		if s.objValue() > phase1Tol {
			return &Solution{Status: Infeasible}, ErrInfeasible
		}
		// Drive any remaining artificial variables out of the basis.
		s.evictArtificials(firstArt)
	}

	// Phase 2: original objective over structural + slack columns only.
	// Shrinking the active width freezes the artificial columns: they can
	// neither enter the basis nor receive pivot updates (their entries are
	// dead after phase 1).
	p2 := ws.Rec.Start("lp.phase2")
	phase1Pivots := s.pivots
	s.width = firstArt
	s.setCostObjective(p.costs)
	status := s.run()
	ws.Rec.Count("lp.phase2_iters", s.pivots-phase1Pivots)
	p2.End()
	if status == Unbounded {
		return &Solution{Status: Unbounded}, ErrUnbounded
	}

	ws.recordWarm(p, n, m, stride, total, firstArt, kinds)
	return p.extractSolution(s), nil
}

// extractSolution reads the structural variable values out of an optimal
// tableau and recomputes the objective from the original costs.
func (p *Problem) extractSolution(s *simplex) *Solution {
	n := len(p.costs)
	x := make([]float64, n)
	for i, b := range s.basis {
		if b < n {
			x[b] = s.tab[i*s.stride+s.total]
		}
	}
	// Clamp tiny negatives introduced by roundoff.
	for j := range x {
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
	}
	objVal := 0.0
	for j := range x {
		objVal += p.costs[j] * x[j]
	}
	return &Solution{Status: Optimal, Objective: objVal, X: x}
}

// recordWarm snapshots everything SolveHot needs to re-enter phase 2
// against the optimal basis now sitting in the workspace tableau.
func (ws *Workspace) recordWarm(p *Problem, n, m, stride, total, firstArt int, kinds []rowKind) {
	w := &ws.warm
	if !w.record {
		return
	}
	w.prob, w.n, w.m = p, n, m
	w.stride, w.total, w.firstArt = stride, total, firstArt
	w.unitCol = growI(w.unitCol, m)
	w.unitSign = growF(w.unitSign, m)
	w.rhs = growF(w.rhs, m)
	if cap(w.neg) < m {
		w.neg = make([]bool, m)
	}
	w.neg = w.neg[:m]
	slackAt := n
	for i, k := range kinds {
		switch k.rel {
		case LE:
			w.unitCol[i], w.unitSign[i] = slackAt, 1
			slackAt++
		case GE:
			w.unitCol[i], w.unitSign[i] = slackAt, -1
			slackAt++
		default: // EQ: no live unit column survives into phase 2
			w.unitCol[i], w.unitSign[i] = -1, 0
		}
		w.rhs[i] = k.rhs
		w.neg[i] = k.neg
	}
	if p.fixed == nil {
		w.fixed = w.fixed[:0]
	} else {
		w.fixed = append(w.fixed[:0], p.fixed...)
	}
	w.clean = true
	for _, b := range ws.basis[:m] {
		if b >= firstArt {
			// evictArtificials zeroed this redundant row, destroying the
			// B⁻¹eᵢ columns it carried; rhs warm updates must go cold.
			w.clean = false
			break
		}
	}
	w.valid = true
}

// fixedMatches reports whether p.fixed still equals the build-time snapshot
// (nil and all-false are equivalent).
func (w *warmState) fixedMatches(p *Problem) bool {
	if p.fixed == nil {
		return len(w.fixed) == 0
	}
	if len(w.fixed) == 0 {
		for _, f := range p.fixed {
			if f {
				return false
			}
		}
		return true
	}
	if len(w.fixed) != len(p.fixed) {
		return false
	}
	for i, f := range p.fixed {
		if w.fixed[i] != f {
			return false
		}
	}
	return true
}

// SolveHot solves the problem, reusing the optimal basis the workspace
// retains from its previous solve of this same Problem value when possible.
// The returned bool reports whether the warm path was taken.
//
// A warm re-solve re-enters phase 2 directly: SetCost changes are priced
// out against the retained basis, and SetRHS changes are applied to the
// tableau's rhs column through the live slack/surplus columns (which hold
// ±B⁻¹eᵢ). It falls back to a full cold solve — identical to SolveWith —
// whenever the retained basis cannot absorb the edit: a different or
// structurally changed Problem, changed fixed-variable flags, an EQ-row rhs
// change, an rhs sign flip under normalization, a redundant row dropped in
// phase 1, or an update that leaves the basis primal infeasible.
func (p *Problem) SolveHot(ws *Workspace) (*Solution, bool, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	w := &ws.warm
	w.record = true
	if !w.valid || w.prob != p || w.n != len(p.costs) || w.m != len(p.cons) ||
		len(p.cons) == 0 || !w.fixedMatches(p) {
		sol, err := p.SolveWith(ws)
		return sol, false, err
	}
	if !ws.applyRHSDeltas(p) {
		sol, err := p.SolveWith(ws)
		return sol, false, err
	}

	sp := ws.Rec.Start("lp.solve_hot")
	defer sp.End()
	ws.Rec.Count("lp.solves", 1)
	ws.Rec.Count("lp.hot_solves", 1)
	s := &ws.sx
	s.pivots, s.degens, s.blandActivations, s.pricingScans = 0, 0, 0, 0
	s.width = w.firstArt
	s.setCostObjective(p.costs)
	status := s.run()
	ws.Rec.Count("lp.pivots", s.pivots)
	ws.Rec.Count("lp.degenerate_pivots", s.degens)
	ws.Rec.Count("lp.bland_activations", s.blandActivations)
	ws.Rec.Count("lp.pricing_scans", s.pricingScans)
	ws.Rec.Observe("lp.pivots_per_solve", float64(s.pivots))
	if status == Unbounded {
		w.valid = false
		return &Solution{Status: Unbounded}, true, ErrUnbounded
	}
	return p.extractSolution(s), true, nil
}

// applyRHSDeltas folds any SetRHS edits into the tableau's rhs column via
// the retained ±B⁻¹eᵢ unit columns. It reports false when the edits cannot
// be absorbed warm (the caller then re-solves cold); the tableau is only
// mutated on success.
func (ws *Workspace) applyRHSDeltas(p *Problem) bool {
	w := &ws.warm
	s := &ws.sx
	dirty := false
	for i := range p.cons {
		rhs := p.cons[i].rhs
		if (rhs < 0) != w.neg[i] {
			return false // normalization sign flipped; row rebuild required
		}
		norm := rhs
		if w.neg[i] {
			norm = -rhs
		}
		if norm == w.rhs[i] {
			continue
		}
		if w.unitCol[i] < 0 || !w.clean {
			return false // EQ row, or B⁻¹ columns destroyed by a dropped row
		}
		if !dirty {
			w.scratch = growF(w.scratch, w.m)
			for r := 0; r < w.m; r++ {
				w.scratch[r] = s.tab[r*w.stride+w.total]
			}
			dirty = true
		}
		d := norm - w.rhs[i]
		col, sign := w.unitCol[i], w.unitSign[i]
		for r := 0; r < w.m; r++ {
			w.scratch[r] += d * sign * s.tab[r*w.stride+col]
		}
	}
	if !dirty {
		return true
	}
	for r := 0; r < w.m; r++ {
		v := w.scratch[r]
		if v < -eps {
			return false // basis no longer primal feasible; go cold
		}
		if v < 0 {
			w.scratch[r] = 0
		}
	}
	for r := 0; r < w.m; r++ {
		s.tab[r*w.stride+w.total] = w.scratch[r]
	}
	for i := range p.cons {
		rhs := p.cons[i].rhs
		if w.neg[i] {
			rhs = -rhs
		}
		w.rhs[i] = rhs
	}
	return true
}

// simplex holds the tableau state shared by the two phases. The tableau is
// a single row-major array (m rows × stride); row i occupies
// tab[i*stride : (i+1)*stride] with the rhs in column total = stride-1.
type simplex struct {
	tab    []float64
	obj    []float64 // reduced-cost row, length stride (last entry = -objective value)
	stride int
	m      int
	total  int
	width  int // columns < width are live (priced and updated); phase 2 freezes artificials
	basis  []int
	fixed  []bool // fixed-to-zero structural variables (may be nil)

	// pricing scratch: nz is the nonzero-column index list of the current
	// pivot row; cand is the candidate list of negative-reduced-cost columns.
	nz   []int
	cand []int

	// telemetry tallies, accumulated locally (no per-pivot obs calls) and
	// reported once per Solve.
	pivots           int64
	degens           int64 // pivots with a ~zero leaving ratio (degenerate steps)
	blandActivations int64
	pricingScans     int64 // full-width pricing passes (candidate rebuilds + Bland scans)
}

func (s *simplex) isFixed(j int) bool { return j < len(s.fixed) && s.fixed[j] }

// setPhase1Objective installs the sum-of-artificials objective and prices
// out the initial basis.
func (s *simplex) setPhase1Objective(firstArt int) {
	for j := range s.obj {
		s.obj[j] = 0
	}
	for j := firstArt; j < s.total; j++ {
		s.obj[j] = 1
	}
	s.priceOutBasis()
}

// setCostObjective installs the original costs as the objective row and
// prices out the current basis.
func (s *simplex) setCostObjective(costs []float64) {
	for j := range s.obj {
		s.obj[j] = 0
	}
	copy(s.obj, costs)
	s.priceOutBasis()
}

// priceOutBasis zeroes the reduced cost of every basic column. Tableau rows
// form an identity over the basis columns, so the elimination order does
// not matter. Any pricing candidates are invalidated.
func (s *simplex) priceOutBasis() {
	for i, b := range s.basis {
		if c := s.obj[b]; c != 0 {
			row := s.tab[i*s.stride : (i+1)*s.stride]
			for j := range s.obj {
				s.obj[j] -= c * row[j]
			}
		}
	}
	s.cand = s.cand[:0]
}

func (s *simplex) objValue() float64 { return -s.obj[s.total] }

// run iterates pivots until optimality or unboundedness.
func (s *simplex) run() Status {
	for iter := 0; ; iter++ {
		bland := iter >= blandTrigger
		if iter == blandTrigger {
			s.blandActivations++
		}
		enter := s.chooseEntering(bland)
		if enter < 0 {
			return Optimal
		}
		leave := s.chooseLeaving(enter, bland)
		if leave < 0 {
			return Unbounded
		}
		if s.tab[leave*s.stride+s.total] <= eps {
			s.degens++
		}
		s.pivot(leave, enter)
	}
}

// chooseEntering picks the entering column. Under Bland's rule it returns
// the lowest-index column with negative reduced cost (a full scan, which is
// what guarantees termination). Otherwise it uses candidate-list Dantzig
// pricing: the most negative column among the cached candidates, falling
// back to a full rebuild scan only when every candidate has gone
// non-negative. Optimality is only ever declared by a full scan, so partial
// pricing never changes the result.
func (s *simplex) chooseEntering(bland bool) int {
	if bland {
		s.pricingScans++
		for j := 0; j < s.width; j++ {
			if s.obj[j] < -eps && !s.isFixed(j) {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -eps
	kept := s.cand[:0]
	for _, j := range s.cand {
		if v := s.obj[j]; v < -eps {
			kept = append(kept, j)
			if v < bestVal {
				best, bestVal = j, v
			}
		}
	}
	s.cand = kept
	if best >= 0 {
		return best
	}
	return s.rebuildCandidates()
}

// rebuildCandidates scans every live column once, returning the Dantzig
// (most negative) column and caching the candListCap most negative columns
// for the following pivots.
func (s *simplex) rebuildCandidates() int {
	s.pricingScans++
	s.cand = s.cand[:0]
	best, bestVal := -1, -eps
	worstIdx, worstVal := -1, math.Inf(-1) // least negative cached candidate
	for j := 0; j < s.width; j++ {
		v := s.obj[j]
		if v >= -eps || s.isFixed(j) {
			continue
		}
		if v < bestVal {
			best, bestVal = j, v
		}
		if len(s.cand) < candListCap {
			s.cand = append(s.cand, j)
			if v > worstVal {
				worstVal, worstIdx = v, len(s.cand)-1
			}
		} else if v < worstVal {
			s.cand[worstIdx] = j
			worstVal, worstIdx = math.Inf(-1), -1
			for k, cj := range s.cand {
				if cv := s.obj[cj]; cv > worstVal {
					worstVal, worstIdx = cv, k
				}
			}
		}
	}
	return best
}

// chooseLeaving runs the minimum-ratio test on column enter. Under Bland's
// rule ties are broken by the smallest basis variable index, which together
// with Bland's entering rule guarantees termination.
func (s *simplex) chooseLeaving(enter int, bland bool) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < s.m; i++ {
		a := s.tab[i*s.stride+enter]
		if a <= eps {
			continue
		}
		ratio := s.tab[i*s.stride+s.total] / a
		if ratio < bestRatio-eps {
			best, bestRatio = i, ratio
			continue
		}
		if ratio <= bestRatio+eps && best >= 0 {
			if bland {
				if s.basis[i] < s.basis[best] {
					best = i
				}
			} else if a > s.tab[best*s.stride+enter] {
				// Prefer larger pivots for numerical stability.
				best, bestRatio = i, ratio
			}
		}
	}
	return best
}

// pivot performs a Gauss–Jordan pivot on (row, col). It first collects the
// nonzero columns of the (scaled) pivot row, then updates only those
// columns in every other row: the models this package solves are sparse
// (2–4 nonzeros per row in the telescoped SSQPP formulation), so early
// pivot rows touch a handful of columns instead of the full width and the
// elimination cost tracks fill-in rather than the tableau size.
func (s *simplex) pivot(row, col int) {
	s.pivots++
	stride := s.stride
	rhs := s.total
	pr := s.tab[row*stride : (row+1)*stride]
	inv := 1 / pr[col]
	nz := s.nz[:0]
	for j := 0; j < s.width; j++ {
		if v := pr[j]; v != 0 {
			pr[j] = v * inv
			nz = append(nz, j)
		}
	}
	pr[rhs] *= inv
	pr[col] = 1 // kill roundoff
	s.nz = nz
	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		base := i * stride
		f := s.tab[base+col]
		if f == 0 {
			continue
		}
		ri := s.tab[base : base+stride]
		for _, j := range nz {
			ri[j] -= f * pr[j]
		}
		ri[rhs] -= f * pr[rhs]
		ri[col] = 0
	}
	if f := s.obj[col]; f != 0 {
		for _, j := range nz {
			s.obj[j] -= f * pr[j]
		}
		s.obj[rhs] -= f * pr[rhs]
		s.obj[col] = 0
	}
	s.basis[row] = col
}

// evictArtificials pivots any artificial variable that remains basic at
// value zero out of the basis (or drops its row as redundant) so that
// phase 2 can proceed on structural and slack columns alone.
func (s *simplex) evictArtificials(firstArt int) {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < firstArt {
			continue
		}
		// Find a non-artificial, non-fixed column with a usable pivot in
		// this row.
		pivoted := false
		for j := 0; j < firstArt; j++ {
			if math.Abs(s.tab[i*s.stride+j]) > 1e-7 && !s.isFixed(j) {
				s.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: every structural coefficient is ~0 and the
			// rhs is ~0 (phase 1 succeeded). Zero it so it never pivots.
			row := s.tab[i*s.stride : (i+1)*s.stride]
			for j := range row {
				row[j] = 0
			}
		}
	}
}
