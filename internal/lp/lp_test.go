package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

const tol = 1e-6

func approxEq(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestSimpleLE(t *testing.T) {
	// min -x - y s.t. x + y <= 4, x <= 3, y <= 2  =>  x=3, y=1? No:
	// maximize x+y: optimum x=3? x+y<=4 binds with x=3,y=1 or x=2,y=2; both
	// give objective -4.
	p := NewProblem()
	x := p.AddVar(-1, "x")
	y := p.AddVar(-1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint([]Term{{x, 1}}, LE, 3)
	p.AddConstraint([]Term{{y, 1}}, LE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.Objective, -4) {
		t.Fatalf("objective = %v, want -4", sol.Objective)
	}
}

func TestEquality(t *testing.T) {
	// min 3x + 2y s.t. x + y = 10, x >= 0, y >= 0  =>  y=10, obj 20.
	p := NewProblem()
	x := p.AddVar(3, "x")
	y := p.AddVar(2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.Objective, 20) || !approxEq(sol.X[y], 10) || !approxEq(sol.X[x], 0) {
		t.Fatalf("got obj=%v x=%v y=%v, want 20, 0, 10", sol.Objective, sol.X[x], sol.X[y])
	}
}

func TestGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 5, x - y >= -2 (i.e. y - x <= 2).
	// Optimum: push everything to x: x=5, y=0 satisfies both; obj 10.
	p := NewProblem()
	x := p.AddVar(2, "x")
	y := p.AddVar(3, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 5)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, GE, -2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.Objective, 10) {
		t.Fatalf("objective = %v, want 10", sol.Objective)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x - y <= -5 is x + y >= 5; min x + 2y  =>  x=5, obj 5.
	p := NewProblem()
	x := p.AddVar(1, "x")
	y := p.AddVar(2, "y")
	p.AddConstraint([]Term{{x, -1}, {y, -1}}, LE, -5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.Objective, 5) {
		t.Fatalf("objective = %v, want 5", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, "x")
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	sol, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want Infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1, "x")
	y := p.AddVar(0, "y")
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, 1)
	sol, err := p.Solve()
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want Unbounded", sol.Status)
	}
}

func TestNoConstraints(t *testing.T) {
	p := NewProblem()
	p.AddVar(1, "x")
	p.AddVar(0, "y")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 {
		t.Fatalf("objective = %v, want 0", sol.Objective)
	}

	q := NewProblem()
	q.AddVar(-1, "x")
	if _, err := q.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestDuplicateTermsSummed(t *testing.T) {
	// x + x = 2x >= 4 => x >= 2, min x = 2.
	p := NewProblem()
	x := p.AddVar(1, "x")
	p.AddConstraint([]Term{{x, 1}, {x, 1}}, GE, 4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.X[x], 2) {
		t.Fatalf("x = %v, want 2", sol.X[x])
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP (multiple constraints active at the optimum).
	p := NewProblem()
	x := p.AddVar(-1, "x")
	y := p.AddVar(-1, "y")
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 1)
	p.AddConstraint([]Term{{y, 1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.Objective, -1) {
		t.Fatalf("objective = %v, want -1", sol.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x + y = 2 stated twice; min x  =>  x=0, y=2.
	p := NewProblem()
	x := p.AddVar(1, "x")
	y := p.AddVar(0, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.X[x], 0) || !approxEq(sol.X[y], 2) {
		t.Fatalf("x=%v y=%v, want 0, 2", sol.X[x], sol.X[y])
	}
}

func TestTransportation(t *testing.T) {
	// 2 supplies (3, 5), 2 demands (4, 4), costs [[1,4],[2,1]].
	// Optimal: ship 3 from s0->d0 (cost 3), 1 from s1->d0 (cost 2),
	// 4 from s1->d1 (cost 4); total 9.
	p := NewProblem()
	x := make([][]int, 2)
	costs := [][]float64{{1, 4}, {2, 1}}
	for i := range x {
		x[i] = make([]int, 2)
		for j := range x[i] {
			x[i][j] = p.AddVar(costs[i][j], "")
		}
	}
	supply := []float64{3, 5}
	demand := []float64{4, 4}
	for i := 0; i < 2; i++ {
		p.AddConstraint([]Term{{x[i][0], 1}, {x[i][1], 1}}, EQ, supply[i])
	}
	for j := 0; j < 2; j++ {
		p.AddConstraint([]Term{{x[0][j], 1}, {x[1][j], 1}}, EQ, demand[j])
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.Objective, 9) {
		t.Fatalf("objective = %v, want 9", sol.Objective)
	}
}

// feasible reports whether x satisfies every constraint of p within tol.
func feasible(p *Problem, x []float64) bool {
	for _, xi := range x {
		if xi < -tol {
			return false
		}
	}
	for _, c := range p.cons {
		lhs := 0.0
		for _, t := range c.terms {
			lhs += t.Coef * x[t.Var]
		}
		switch c.rel {
		case LE:
			if lhs > c.rhs+tol {
				return false
			}
		case GE:
			if lhs < c.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > tol {
				return false
			}
		}
	}
	return true
}

// bruteForceLP enumerates all basic solutions of the standard-form LP (after
// adding slacks) and returns the best feasible objective, or NaN if none.
// Only usable for tiny problems; serves as ground truth in the random test.
func bruteForceLP(costs []float64, cons []constraint) float64 {
	n := len(costs)
	m := len(cons)
	// Standard form columns: n structural + one slack per inequality.
	slack := 0
	for _, c := range cons {
		if c.rel != EQ {
			slack++
		}
	}
	total := n + slack
	a := make([][]float64, m)
	b := make([]float64, m)
	si := n
	for i, c := range cons {
		a[i] = make([]float64, total)
		for _, t := range c.terms {
			a[i][t.Var] += t.Coef
		}
		b[i] = c.rhs
		switch c.rel {
		case LE:
			a[i][si] = 1
			si++
		case GE:
			a[i][si] = -1
			si++
		}
	}
	best := math.NaN()
	idx := make([]int, m)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == m {
			x := solveSquare(a, b, idx)
			if x == nil {
				return
			}
			full := make([]float64, total)
			ok := true
			for j, v := range x {
				if v < -tol {
					ok = false
					break
				}
				full[idx[j]] = v
			}
			if !ok {
				return
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += costs[j] * full[j]
			}
			if math.IsNaN(best) || obj < best {
				best = obj
			}
			return
		}
		for j := start; j < total; j++ {
			idx[k] = j
			rec(j+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

// solveSquare solves the m×m system formed by the chosen columns, returning
// nil if singular.
func solveSquare(a [][]float64, b []float64, cols []int) []float64 {
	m := len(b)
	mat := make([][]float64, m)
	for i := 0; i < m; i++ {
		mat[i] = make([]float64, m+1)
		for j, c := range cols {
			mat[i][j] = a[i][c]
		}
		mat[i][m] = b[i]
	}
	for col := 0; col < m; col++ {
		piv, pv := -1, 1e-9
		for r := col; r < m; r++ {
			if math.Abs(mat[r][col]) > pv {
				piv, pv = r, math.Abs(mat[r][col])
			}
		}
		if piv < 0 {
			return nil
		}
		mat[col], mat[piv] = mat[piv], mat[col]
		inv := 1 / mat[col][col]
		for j := col; j <= m; j++ {
			mat[col][j] *= inv
		}
		for r := 0; r < m; r++ {
			if r != col && mat[r][col] != 0 {
				f := mat[r][col]
				for j := col; j <= m; j++ {
					mat[r][j] -= f * mat[col][j]
				}
			}
		}
	}
	x := make([]float64, m)
	for i := 0; i < m; i++ {
		x[i] = mat[i][m]
	}
	return x
}

// TestRandomAgainstBruteForce generates small random LPs with a guaranteed
// feasible region (constraints are satisfied by a known random point) and
// checks the simplex optimum matches basic-solution enumeration.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3) // variables
		m := 1 + rng.Intn(3) // constraints
		feasPt := make([]float64, n)
		for j := range feasPt {
			feasPt[j] = rng.Float64() * 3
		}
		p := NewProblem()
		costs := make([]float64, n)
		for j := 0; j < n; j++ {
			costs[j] = math.Round((rng.Float64()*4-1)*4) / 4
			p.AddVar(costs[j], "")
		}
		// Add a box so the LP is always bounded.
		for j := 0; j < n; j++ {
			p.AddConstraint([]Term{{j, 1}}, LE, 10)
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n)
			lhs := 0.0
			for j := 0; j < n; j++ {
				coef := math.Round((rng.Float64()*2-1)*4) / 4
				if coef != 0 {
					terms = append(terms, Term{j, coef})
					lhs += coef * feasPt[j]
				}
			}
			if len(terms) == 0 {
				continue
			}
			// Choose rhs so feasPt satisfies the constraint.
			switch rng.Intn(3) {
			case 0:
				p.AddConstraint(terms, LE, lhs+rng.Float64())
			case 1:
				p.AddConstraint(terms, GE, lhs-rng.Float64())
			default:
				p.AddConstraint(terms, EQ, lhs)
			}
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: Solve: %v (problem has feasible point %v)", trial, err, feasPt)
		}
		if !feasible(p, sol.X) {
			t.Fatalf("trial %d: returned point %v violates constraints", trial, sol.X)
		}
		want := bruteForceLP(p.costs, p.cons)
		if math.IsNaN(want) {
			// Linearly dependent rows can make every square basis singular,
			// in which case enumeration finds nothing; the feasibility check
			// above still validates the simplex answer.
			t.Logf("trial %d: degenerate row set, skipping brute-force comparison", trial)
			continue
		}
		if math.Abs(sol.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex=%v bruteforce=%v", trial, sol.Objective, want)
		}
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Rel.String() mismatch")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status.String() mismatch")
	}
}

func TestAddConstraintPanicsOnUnknownVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range variable")
		}
	}()
	p := NewProblem()
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
}

// TestBealeCycling runs Beale's classical cycling example, on which naive
// Dantzig pivoting with careless tie-breaking can cycle forever; the solver
// must terminate at the optimum (-1/20 with the standard formulation).
//
//	min -3/4 x4 + 150 x5 - 1/50 x6 + 6 x7
//	s.t. 1/4 x4 - 60 x5 - 1/25 x6 + 9 x7 ≤ 0
//	     1/2 x4 - 90 x5 - 1/50 x6 + 3 x7 ≤ 0
//	     x6 ≤ 1
func TestBealeCycling(t *testing.T) {
	p := NewProblem()
	x4 := p.AddVar(-0.75, "x4")
	x5 := p.AddVar(150, "x5")
	x6 := p.AddVar(-0.02, "x6")
	x7 := p.AddVar(6, "x7")
	p.AddConstraint([]Term{{x4, 0.25}, {x5, -60}, {x6, -1.0 / 25}, {x7, 9}}, LE, 0)
	p.AddConstraint([]Term{{x4, 0.5}, {x5, -90}, {x6, -1.0 / 50}, {x7, 3}}, LE, 0)
	p.AddConstraint([]Term{{x6, 1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
		t.Fatalf("objective = %v, want -0.05", sol.Objective)
	}
}

// TestHighlyDegenerateAssignment exercises many equal ratio ties.
func TestHighlyDegenerateAssignment(t *testing.T) {
	// A 4x4 assignment polytope with all-equal costs: every vertex is
	// optimal and every pivot is degenerate after the first few.
	p := NewProblem()
	n := 4
	x := make([][]int, n)
	for i := range x {
		x[i] = make([]int, n)
		for j := range x[i] {
			x[i][j] = p.AddVar(1, "")
		}
	}
	for i := 0; i < n; i++ {
		rowTerms := make([]Term, n)
		colTerms := make([]Term, n)
		for j := 0; j < n; j++ {
			rowTerms[j] = Term{x[i][j], 1}
			colTerms[j] = Term{x[j][i], 1}
		}
		p.AddConstraint(rowTerms, EQ, 1)
		p.AddConstraint(colTerms, EQ, 1)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-float64(n)) > 1e-9 {
		t.Fatalf("objective = %v, want %d", sol.Objective, n)
	}
}

// TestLargeSparseLP sanity-checks solver behavior at the scale the SSQPP
// experiments use (hundreds of rows).
func TestLargeSparseLP(t *testing.T) {
	// min Σ x_i subject to chained constraints x_i + x_{i+1} ≥ 1:
	// optimum alternates 0,1,0,1,... giving ⌈(k)/2⌉ for k constraints.
	p := NewProblem()
	n := 201
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar(1, "")
	}
	for i := 0; i+1 < n; i++ {
		p.AddConstraint([]Term{{vars[i], 1}, {vars[i+1], 1}}, GE, 1)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-100) > 1e-6 {
		t.Fatalf("objective = %v, want 100", sol.Objective)
	}
}
