package lp

import (
	"strings"
	"testing"
)

// small LP used by the verifier tests: min x+2y s.t. x+y = 3, x ≤ 2.
func verifyProblem() *Problem {
	p := NewProblem()
	x := p.AddVar(1, "x")
	y := p.AddVar(2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 3)
	p.AddConstraint([]Term{{x, 1}}, LE, 2)
	return p
}

func TestVerifySolutionAcceptsOptimum(t *testing.T) {
	p := verifyProblem()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifySolution(sol, 1e-9); err != nil {
		t.Fatalf("verifier rejected the solver's own optimum: %v", err)
	}
}

func TestVerifySolutionDetectsViolations(t *testing.T) {
	p := verifyProblem()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(s *Solution)
		want   string
	}{
		{"broken equality", func(s *Solution) { s.X[1] += 0.5 }, "!="},
		{"broken inequality", func(s *Solution) { s.X[0], s.X[1] = 3, 0 }, ">"},
		{"negative variable", func(s *Solution) { s.X[0], s.X[1] = -1, 4 }, "non-negativity"},
		{"wrong objective", func(s *Solution) { s.Objective += 1 }, "objective"},
	}
	for _, tc := range cases {
		bad := &Solution{Status: sol.Status, Objective: sol.Objective, X: append([]float64(nil), sol.X...)}
		tc.mutate(bad)
		err := p.VerifySolution(bad, 1e-9)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: verifier returned %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestVerifySolutionFixedVariables(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, "x")
	y := p.AddVar(1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 1)
	p.SetFixed(y, true)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifySolution(sol, 1e-9); err != nil {
		t.Fatal(err)
	}
	sol.X[y] = 0.5
	sol.X[x] = 0.5
	if err := p.VerifySolution(sol, 1e-9); err == nil || !strings.Contains(err.Error(), "fixed") {
		t.Fatalf("verifier accepted mass on a fixed variable: %v", err)
	}
}
