// Bitwise clone/re-solve equivalence over generated QPP instances: the
// daemon's incremental tick re-costs a cloned GAP skeleton with
// SetCost/SetRHS and re-solves it, and its determinism guarantee rests on
// that path being bit-for-bit identical to building the edited model from
// scratch. This external test pins the equivalence on the cold path (the
// warm path is pinned by objective + feasibility in hot_test.go, since it
// may legitimately land on a different vertex of the same optimal face).
package lp_test

import (
	"math/rand"
	"testing"

	"quorumplace/internal/check"
	"quorumplace/internal/lp"
)

// gapShape is the GAP-shaped LP of a check instance: assignment variables
// y_{v,u} for every capacity-feasible (node, element) pair, one EQ(=1) row
// per element, one LE(cap) row per node with load.
type gapShape struct {
	vars   [][]int // vars[v][u] = variable index, -1 if forbidden
	capRow []int   // capRow[v] = constraint index of node v's LE row, -1 if none
	n, k   int
}

// buildGAP constructs the LP with the given costs and capacities, in a
// fixed construction order shared by both sides of the bitwise comparison.
func buildGAP(ci *check.Instance, cost [][]float64, caps []float64) (*lp.Problem, *gapShape) {
	n := ci.M.N()
	k := ci.Sys.Universe()
	p := lp.NewProblem()
	sh := &gapShape{n: n, k: k}
	sh.vars = make([][]int, n)
	for v := 0; v < n; v++ {
		sh.vars[v] = make([]int, k)
		for u := 0; u < k; u++ {
			sh.vars[v][u] = -1
			if ci.Load(u) <= ci.Cap[v]*(1+1e-9) {
				sh.vars[v][u] = p.AddVar(cost[v][u], "")
			}
		}
	}
	for u := 0; u < k; u++ {
		var terms []lp.Term
		for v := 0; v < n; v++ {
			if sh.vars[v][u] >= 0 {
				terms = append(terms, lp.Term{Var: sh.vars[v][u], Coef: 1})
			}
		}
		p.AddConstraint(terms, lp.EQ, 1)
	}
	sh.capRow = make([]int, n)
	for v := 0; v < n; v++ {
		sh.capRow[v] = -1
		var terms []lp.Term
		for u := 0; u < k; u++ {
			if sh.vars[v][u] >= 0 && ci.Load(u) > 0 {
				terms = append(terms, lp.Term{Var: sh.vars[v][u], Coef: ci.Load(u)})
			}
		}
		if len(terms) > 0 {
			sh.capRow[v] = p.NumConstraints()
			p.AddConstraint(terms, lp.LE, caps[v])
		}
	}
	return p, sh
}

func baseCosts(ci *check.Instance) [][]float64 {
	n, k := ci.M.N(), ci.Sys.Universe()
	cost := make([][]float64, n)
	for v := 0; v < n; v++ {
		cost[v] = make([]float64, k)
		for u := 0; u < k; u++ {
			cost[v][u] = ci.Load(u) * ci.M.D(ci.Planted.Node(u), v)
		}
	}
	return cost
}

// TestCloneResolveBitwise pins the satellite guarantee: for check.Gen
// instances, a Clone + SetCost/SetRHS re-solve must produce bitwise (==)
// identical X and Objective to a from-scratch build of the edited model.
// Both sides execute the same float operations in the same order, so this
// holds exactly, not merely to tolerance.
func TestCloneResolveBitwise(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		ci := check.Gen(seed)
		n, k := ci.M.N(), ci.Sys.Universe()
		rng := rand.New(rand.NewSource(seed * 101))

		skelProb, sh := buildGAP(ci, baseCosts(ci), ci.Cap)
		ws := lp.NewWorkspace()
		if _, err := skelProb.SolveWith(ws); err != nil {
			t.Fatalf("seed %d: seed solve: %v", seed, err)
		}

		for edit := 0; edit < 5; edit++ {
			// Derive the edited model: perturbed costs, loosened caps
			// (loosening keeps the planted assignment feasible).
			cost := baseCosts(ci)
			for v := 0; v < n; v++ {
				for u := 0; u < k; u++ {
					cost[v][u] *= 1 + rng.Float64()
				}
			}
			caps := make([]float64, n)
			for v := range caps {
				caps[v] = ci.Cap[v] * (1 + rng.Float64())
			}

			// Side A: clone the skeleton and re-cost it in place.
			cl := skelProb.Clone()
			for v := 0; v < n; v++ {
				for u := 0; u < k; u++ {
					if sh.vars[v][u] >= 0 {
						cl.SetCost(sh.vars[v][u], cost[v][u])
					}
				}
				if sh.capRow[v] >= 0 {
					cl.SetRHS(sh.capRow[v], caps[v])
				}
			}
			solA, err := cl.SolveWith(lp.NewWorkspace())
			if err != nil {
				t.Fatalf("seed %d edit %d: clone solve: %v", seed, edit, err)
			}

			// Side B: build the edited model from scratch.
			fresh, _ := buildGAP(ci, cost, caps)
			solB, err := fresh.SolveWith(lp.NewWorkspace())
			if err != nil {
				t.Fatalf("seed %d edit %d: fresh solve: %v", seed, edit, err)
			}

			if solA.Objective != solB.Objective {
				t.Fatalf("seed %d edit %d: objective differs bitwise: clone %v fresh %v",
					seed, edit, solA.Objective, solB.Objective)
			}
			if len(solA.X) != len(solB.X) {
				t.Fatalf("seed %d edit %d: var count %d vs %d", seed, edit, len(solA.X), len(solB.X))
			}
			for j := range solA.X {
				if solA.X[j] != solB.X[j] {
					t.Fatalf("seed %d edit %d: x[%d] differs bitwise: clone %v fresh %v",
						seed, edit, j, solA.X[j], solB.X[j])
				}
			}
		}
	}
}

// TestCloneResolveBitwiseReusedWorkspace repeats the comparison with both
// sides sharing one reused workspace sequentially: buffer reuse (tab/obj
// zeroing, candidate truncation) must not perturb any computed value.
func TestCloneResolveBitwiseReusedWorkspace(t *testing.T) {
	ci := check.Gen(4)
	n, k := ci.M.N(), ci.Sys.Universe()
	rng := rand.New(rand.NewSource(99))
	ws := lp.NewWorkspace()

	base, sh := buildGAP(ci, baseCosts(ci), ci.Cap)
	if _, err := base.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	for edit := 0; edit < 8; edit++ {
		cost := baseCosts(ci)
		for v := 0; v < n; v++ {
			for u := 0; u < k; u++ {
				cost[v][u] *= 1 + rng.Float64()
			}
		}
		cl := base.Clone()
		for v := 0; v < n; v++ {
			for u := 0; u < k; u++ {
				if sh.vars[v][u] >= 0 {
					cl.SetCost(sh.vars[v][u], cost[v][u])
				}
			}
		}
		solA, err := cl.SolveWith(ws)
		if err != nil {
			t.Fatal(err)
		}
		fresh, _ := buildGAP(ci, cost, ci.Cap)
		solB, err := fresh.SolveWith(ws)
		if err != nil {
			t.Fatal(err)
		}
		if solA.Objective != solB.Objective {
			t.Fatalf("edit %d: objective differs bitwise: %v vs %v", edit, solA.Objective, solB.Objective)
		}
		for j := range solA.X {
			if solA.X[j] != solB.X[j] {
				t.Fatalf("edit %d: x[%d] differs bitwise", edit, j)
			}
		}
	}
}
