package lp

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchProblem builds a deterministic GAP-shaped LP (the dominant shape in
// the placement pipeline): jobs×machines assignment variables, one equality
// row per job, one capacity row per machine.
func benchProblem(jobs, machines int) *Problem {
	rng := rand.New(rand.NewSource(7))
	p := NewProblem()
	vars := make([][]int, machines)
	for i := 0; i < machines; i++ {
		vars[i] = make([]int, jobs)
		for j := 0; j < jobs; j++ {
			vars[i][j] = p.AddVar(rng.Float64()*10, fmt.Sprintf("y_%d_%d", i, j))
		}
	}
	for j := 0; j < jobs; j++ {
		terms := make([]Term, machines)
		for i := 0; i < machines; i++ {
			terms[i] = Term{Var: vars[i][j], Coef: 1}
		}
		p.AddConstraint(terms, EQ, 1)
	}
	for i := 0; i < machines; i++ {
		terms := make([]Term, jobs)
		for j := 0; j < jobs; j++ {
			terms[j] = Term{Var: vars[i][j], Coef: 0.5 + rng.Float64()}
		}
		p.AddConstraint(terms, LE, float64(jobs)/float64(machines))
	}
	return p
}

// BenchmarkSolve measures a full solve through the public entry point
// (tableau built from scratch each iteration).
func BenchmarkSolve(b *testing.B) {
	for _, size := range []struct{ jobs, machines int }{{12, 4}, {30, 8}} {
		b.Run(fmt.Sprintf("jobs=%d_machines=%d", size.jobs, size.machines), func(b *testing.B) {
			p := benchProblem(size.jobs, size.machines)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveWarmWorkspace is the steady-state path the placement solver
// runs: the same problem shape re-solved through an explicitly retained
// Workspace, so every tableau and scratch slice is recycled from the prior
// solve. The gap to BenchmarkSolve is the cost of cold allocation.
func BenchmarkSolveWarmWorkspace(b *testing.B) {
	for _, size := range []struct{ jobs, machines int }{{12, 4}, {30, 8}} {
		b.Run(fmt.Sprintf("jobs=%d_machines=%d", size.jobs, size.machines), func(b *testing.B) {
			p := benchProblem(size.jobs, size.machines)
			ws := NewWorkspace()
			if _, err := p.SolveWith(ws); err != nil {
				b.Fatal(err) // warm-up solve, sizes the workspace
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.SolveWith(ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
