package lp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The fuzzer cross-checks the simplex solver against a brute-force oracle
// on random programs with at most three variables. Over the nonnegative
// orthant the feasible region is pointed, so if it is nonempty it has a
// vertex, and a bounded optimum is attained at one; the oracle enumerates
// every candidate vertex (each choice of n active planes among the
// constraints-as-equalities and the coordinate planes x_i = 0) and takes
// the best feasible one. Unboundedness is decided with a box trick: add
// Σ x_i ≤ B and Σ x_i ≤ 2B — with the small integer coefficients generated
// here, every true vertex lies far inside the box, so an optimum that keeps
// improving when the box doubles betrays a descending ray.

type bruteRow struct {
	a   []float64
	rel Rel
	rhs float64
}

// fuzzPlane is one candidate active hyperplane of the vertex enumeration.
type fuzzPlane struct {
	a   []float64
	rhs float64
}

// bruteVertexOpt enumerates vertices of {x ≥ 0, rows} in n ≤ 3 dimensions
// and returns the minimal objective over feasible vertices, or +Inf if no
// vertex is feasible (empty region, since the region is pointed).
func bruteVertexOpt(n int, costs []float64, rows []bruteRow) float64 {
	// Pool of candidate active planes: every row as an equality, plus the
	// coordinate planes.
	var planes []fuzzPlane
	for _, r := range rows {
		planes = append(planes, fuzzPlane{r.a, r.rhs})
	}
	for i := 0; i < n; i++ {
		a := make([]float64, n)
		a[i] = 1
		planes = append(planes, fuzzPlane{a, 0})
	}
	feasible := func(x []float64) bool {
		const tol = 1e-7
		for _, xi := range x {
			if xi < -tol {
				return false
			}
		}
		for _, r := range rows {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += r.a[j] * x[j]
			}
			switch r.rel {
			case LE:
				if lhs > r.rhs+tol {
					return false
				}
			case GE:
				if lhs < r.rhs-tol {
					return false
				}
			case EQ:
				if math.Abs(lhs-r.rhs) > tol {
					return false
				}
			}
		}
		return true
	}
	best := math.Inf(1)
	idx := make([]int, n)
	var rec func(k, from int)
	rec = func(k, from int) {
		if k == n {
			x, ok := fuzzSolveSquare(n, idx, planes)
			if !ok || !feasible(x) {
				return
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += costs[j] * x[j]
			}
			if obj < best {
				best = obj
			}
			return
		}
		for i := from; i < len(planes); i++ {
			idx[k] = i
			rec(k+1, i+1)
		}
	}
	rec(0, 0)
	return best
}

// solveSquare solves the n×n system given by the selected planes with
// Gaussian elimination, reporting failure on (near-)singular systems.
func fuzzSolveSquare(n int, idx []int, planes []fuzzPlane) ([]float64, bool) {
	var m [3][4]float64
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			m[r][c] = planes[idx[r]].a[c]
		}
		m[r][n] = planes[idx[r]].rhs
	}
	for col := 0; col < n; col++ {
		piv, pv := -1, 1e-9
		for r := col; r < n; r++ {
			if av := math.Abs(m[r][col]); av > pv {
				piv, pv = r, av
			}
		}
		if piv < 0 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := 0; r < n; r++ {
		x[r] = m[r][n] / m[r][r]
	}
	return x, true
}

// bruteStatus classifies a random program: Optimal with its value,
// Infeasible, or Unbounded. It reports ok=false when the classification is
// numerically ambiguous and the case should be skipped.
func bruteStatus(n int, costs []float64, rows []bruteRow) (Status, float64, bool) {
	withBox := func(b float64) float64 {
		box := bruteRow{a: make([]float64, n), rel: LE, rhs: b}
		for j := range box.a {
			box.a[j] = 1
		}
		return bruteVertexOpt(n, costs, append(append([]bruteRow(nil), rows...), box))
	}
	const b = 1e6
	v1 := withBox(b)
	if math.IsInf(v1, 1) {
		return Infeasible, 0, true
	}
	v2 := withBox(2 * b)
	gap := v1 - v2
	scale := 1 + math.Abs(v1)
	switch {
	case gap > 1e-3*scale:
		return Unbounded, 0, true
	case gap > 1e-9*scale:
		return 0, 0, false // ambiguous: too close to call
	default:
		return Optimal, v1, true
	}
}

func FuzzSolve(f *testing.F) {
	for seed := int64(0); seed < 32; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		mRows := rng.Intn(5)
		costs := make([]float64, n)
		p := NewProblem()
		for j := 0; j < n; j++ {
			costs[j] = float64(rng.Intn(9) - 4)
			p.AddVar(costs[j], fmt.Sprintf("x%d", j))
		}
		rows := make([]bruteRow, 0, mRows)
		for i := 0; i < mRows; i++ {
			row := bruteRow{a: make([]float64, n), rel: Rel(rng.Intn(3)), rhs: float64(rng.Intn(17)-4) / 2}
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				row.a[j] = float64(rng.Intn(9) - 4)
				if row.a[j] != 0 {
					terms = append(terms, Term{Var: j, Coef: row.a[j]})
				}
			}
			if len(terms) == 0 {
				continue // all-zero row: the solver rejects or trivially handles it; skip
			}
			p.AddConstraint(terms, row.rel, row.rhs)
			rows = append(rows, row)
		}
		wantStatus, wantVal, ok := bruteStatus(n, costs, rows)
		if !ok {
			t.Skip("numerically ambiguous instance")
		}
		sol, err := p.Solve()
		switch wantStatus {
		case Infeasible:
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("oracle says infeasible, solver returned sol=%+v err=%v", sol, err)
			}
		case Unbounded:
			if !errors.Is(err, ErrUnbounded) {
				t.Fatalf("oracle says unbounded, solver returned sol=%+v err=%v", sol, err)
			}
		case Optimal:
			if err != nil {
				t.Fatalf("oracle says optimal %v, solver errored: %v", wantVal, err)
			}
			tol := 1e-6 * (1 + math.Abs(wantVal))
			if math.Abs(sol.Objective-wantVal) > tol {
				t.Fatalf("objective %v, oracle %v", sol.Objective, wantVal)
			}
			// The reported point must actually be feasible and match the
			// reported objective.
			obj := 0.0
			for j := 0; j < n; j++ {
				if sol.X[j] < -1e-7 {
					t.Fatalf("negative coordinate x%d = %v", j, sol.X[j])
				}
				obj += costs[j] * sol.X[j]
			}
			if math.Abs(obj-sol.Objective) > tol {
				t.Fatalf("objective %v does not match point value %v", sol.Objective, obj)
			}
			for i, r := range rows {
				lhs := 0.0
				for j := 0; j < n; j++ {
					lhs += r.a[j] * sol.X[j]
				}
				switch r.rel {
				case LE:
					if lhs > r.rhs+1e-7 {
						t.Fatalf("constraint %d violated: %v > %v", i, lhs, r.rhs)
					}
				case GE:
					if lhs < r.rhs-1e-7 {
						t.Fatalf("constraint %d violated: %v < %v", i, lhs, r.rhs)
					}
				case EQ:
					if math.Abs(lhs-r.rhs) > 1e-7 {
						t.Fatalf("constraint %d violated: %v != %v", i, lhs, r.rhs)
					}
				}
			}
		}
	})
}
