package lp

import (
	"fmt"
	"math"
)

// VerifySolution checks that sol is a primally feasible point of p: every
// variable is non-negative (and zero when fixed), every constraint holds
// within tol scaled by the row's magnitude, and the reported objective
// matches the cost vector applied to X. It returns the first violation
// found. Solver clients on rewritten hot paths (the GAP LP, the Naor–Wool
// strategy LP) call this after Solve so a simplex regression surfaces as an
// explicit invariant failure instead of a silently wrong placement.
func (p *Problem) VerifySolution(sol *Solution, tol float64) error {
	if sol == nil || sol.Status != Optimal {
		return fmt.Errorf("lp: verify: no optimal solution (status %v)", sol.Status)
	}
	if len(sol.X) != len(p.costs) {
		return fmt.Errorf("lp: verify: %d values for %d variables", len(sol.X), len(p.costs))
	}
	obj := 0.0
	for j, x := range sol.X {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("lp: verify: %s = %v", p.varName(j), x)
		}
		if x < -tol {
			return fmt.Errorf("lp: verify: %s = %v violates non-negativity", p.varName(j), x)
		}
		if p.Fixed(j) && math.Abs(x) > tol {
			return fmt.Errorf("lp: verify: fixed variable %s = %v", p.varName(j), x)
		}
		obj += p.costs[j] * x
	}
	for i, c := range p.cons {
		lhs, scale := 0.0, math.Max(1, math.Abs(c.rhs))
		for _, t := range c.terms {
			lhs += t.Coef * sol.X[t.Var]
			if a := math.Abs(t.Coef * sol.X[t.Var]); a > scale {
				scale = a
			}
		}
		slack := lhs - c.rhs
		switch c.rel {
		case LE:
			if slack > tol*scale {
				return fmt.Errorf("lp: verify: constraint %d: %v > %v", i, lhs, c.rhs)
			}
		case GE:
			if slack < -tol*scale {
				return fmt.Errorf("lp: verify: constraint %d: %v < %v", i, lhs, c.rhs)
			}
		case EQ:
			if math.Abs(slack) > tol*scale {
				return fmt.Errorf("lp: verify: constraint %d: %v != %v", i, lhs, c.rhs)
			}
		}
	}
	if scale := math.Max(1, math.Abs(sol.Objective)); math.Abs(obj-sol.Objective) > tol*scale {
		return fmt.Errorf("lp: verify: objective %v but cᵀx = %v", sol.Objective, obj)
	}
	return nil
}
