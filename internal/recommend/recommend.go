// Package recommend is the library's capstone planner: given a network,
// node capacities, and operator requirements (delay budget, tolerated load
// factor, availability target), it enumerates a portfolio of quorum-system
// configurations, places each with the best applicable algorithm from the
// paper, evaluates delay / load / availability, and returns the feasible
// configurations ranked by delay.
//
// It composes everything in this repository: the §4 specialized layouts
// when they apply, the Theorem 1.2 LP pipeline otherwise (with α chosen
// from the operator's load budget), the Naor–Wool optimal strategy, and the
// placed-availability analysis.
package recommend

import (
	"fmt"
	"math"
	"sort"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// Requirements are the operator's constraints. Zero values disable a
// constraint.
type Requirements struct {
	// MaxAvgDelay bounds the average max-delay (0 = unconstrained).
	MaxAvgDelay float64
	// MaxLoadFactor bounds load(v)/cap(v) (0 = respect capacities, i.e. 1).
	MaxLoadFactor float64
	// CrashProb and MaxFailureProb: with each node down independently with
	// probability CrashProb, the probability that no quorum survives must
	// stay below MaxFailureProb (MaxFailureProb = 0 disables the check).
	CrashProb      float64
	MaxFailureProb float64
}

// Recommendation is one evaluated configuration.
type Recommendation struct {
	SystemName  string
	System      *quorum.System
	Placement   placement.Placement
	Strategy    quorum.Strategy
	AvgMaxDelay float64
	LoadFactor  float64
	FailureProb float64 // NaN when not evaluated
	Method      string  // which algorithm produced the placement
	Feasible    bool
	Reason      string // first violated requirement, if infeasible

	insRef *placement.Instance // for availability evaluation in judge
}

// Recommend evaluates the built-in portfolio on the given network and
// returns all configurations (feasible first, then by delay). An error is
// returned only for invalid inputs; an empty feasible set is expressed in
// the results.
func Recommend(m *graph.Metric, caps []float64, req Requirements) ([]Recommendation, error) {
	if m == nil {
		return nil, fmt.Errorf("recommend: nil metric")
	}
	if len(caps) != m.N() {
		return nil, fmt.Errorf("recommend: %d capacities for %d nodes", len(caps), m.N())
	}
	if req.MaxLoadFactor < 0 || req.MaxAvgDelay < 0 || req.MaxFailureProb < 0 {
		return nil, fmt.Errorf("recommend: negative requirement")
	}
	if req.CrashProb < 0 || req.CrashProb > 1 {
		return nil, fmt.Errorf("recommend: crash probability %v outside [0,1]", req.CrashProb)
	}
	loadBudget := req.MaxLoadFactor
	if loadBudget == 0 {
		loadBudget = 1
	}

	var out []Recommendation
	for _, cand := range portfolio() {
		rec := evaluate(m, caps, cand, loadBudget)
		if rec == nil {
			continue // could not place at all (e.g. capacities too small)
		}
		judge(rec, req, loadBudget)
		out = append(out, *rec)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Feasible != out[b].Feasible {
			return out[a].Feasible
		}
		return out[a].AvgMaxDelay < out[b].AvgMaxDelay
	})
	return out, nil
}

// candidate is a portfolio entry.
type candidate struct {
	name      string
	sys       *quorum.System
	threshold int // >0 for majority systems (enables the §4.2 layout)
	grid      int // >0 for grid systems (enables the §4.1 layout)
}

func portfolio() []candidate {
	return []candidate{
		{name: "majority-2of3", sys: quorum.Majority(3, 2), threshold: 2},
		{name: "majority-3of5", sys: quorum.Majority(5, 3), threshold: 3},
		{name: "majority-4of7", sys: quorum.Majority(7, 4), threshold: 4},
		{name: "grid-2x2", sys: quorum.Grid(2), grid: 2},
		{name: "grid-3x3", sys: quorum.Grid(3), grid: 3},
		{name: "fpp-2", sys: quorum.FPP(2)},
		{name: "tree-h2", sys: quorum.Tree(2)},
		{name: "wheel-6", sys: quorum.Wheel(6)},
	}
}

// evaluate places one candidate. Specialized capacity-respecting layouts
// are tried first; if they cannot be used (non-uniform loads or too little
// capacity) the LP pipeline runs with α = max(loadBudget-1, 1.25) so the
// theoretical load bound α+1 tracks the operator's budget.
func evaluate(m *graph.Metric, caps []float64, cand candidate, loadBudget float64) *Recommendation {
	st, _, err := quorum.OptimalStrategy(cand.sys)
	if err != nil {
		return nil
	}
	ins, err := placement.NewInstance(m, caps, cand.sys, st)
	if err != nil {
		return nil
	}
	rec := &Recommendation{
		SystemName:  cand.name,
		System:      cand.sys,
		Strategy:    st,
		FailureProb: math.NaN(),
	}
	// Specialized layouts need the uniform strategy; for Grid/Majority the
	// optimal strategy IS uniform, so they apply directly.
	switch {
	case cand.grid > 0:
		if res, avg, err := placement.SolveGridQPP(ins); err == nil {
			rec.Placement, rec.AvgMaxDelay, rec.Method = res.Placement, avg, "grid layout (Thm 1.3)"
		}
	case cand.threshold > 0:
		if res, avg, err := placement.SolveMajorityQPP(ins, cand.threshold); err == nil {
			rec.Placement, rec.AvgMaxDelay, rec.Method = res.Placement, avg, "majority layout (Thm 1.3)"
		}
	}
	if rec.Method == "" {
		alpha := loadBudget - 1
		if alpha < 1.25 {
			alpha = 1.25
		}
		res, err := placement.SolveQPPParallel(ins, alpha, 0)
		if err != nil {
			return nil
		}
		rec.Placement, rec.AvgMaxDelay = res.Placement, res.AvgMaxDelay
		rec.Method = fmt.Sprintf("LP rounding (Thm 1.2, α=%.3g)", alpha)
	}
	rec.LoadFactor = ins.CapacityViolation(rec.Placement)
	rec.insRef = ins
	return rec
}

// judge fills in feasibility against the requirements.
func judge(rec *Recommendation, req Requirements, loadBudget float64) {
	rec.Feasible = true
	if req.MaxFailureProb > 0 && rec.insRef != nil {
		if fp, err := rec.insRef.NodeFailureProbability(rec.Placement, req.CrashProb); err == nil {
			rec.FailureProb = fp
		}
	}
	switch {
	case rec.LoadFactor > loadBudget+1e-9:
		rec.Feasible = false
		rec.Reason = fmt.Sprintf("load factor %.3g exceeds budget %.3g", rec.LoadFactor, loadBudget)
	case req.MaxAvgDelay > 0 && rec.AvgMaxDelay > req.MaxAvgDelay:
		rec.Feasible = false
		rec.Reason = fmt.Sprintf("delay %.4g exceeds budget %.4g", rec.AvgMaxDelay, req.MaxAvgDelay)
	case req.MaxFailureProb > 0 && !math.IsNaN(rec.FailureProb) && rec.FailureProb > req.MaxFailureProb:
		rec.Feasible = false
		rec.Reason = fmt.Sprintf("failure probability %.4g exceeds %.4g", rec.FailureProb, req.MaxFailureProb)
	}
}
