package recommend

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"quorumplace/internal/graph"
)

func wanMetric(t *testing.T) *graph.Metric {
	t.Helper()
	rng := rand.New(rand.NewSource(1001))
	g := graph.RandomGeometric(12, 0.4, rng)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecommendValidation(t *testing.T) {
	m := wanMetric(t)
	caps := make([]float64, m.N())
	if _, err := Recommend(nil, caps, Requirements{}); err == nil {
		t.Fatal("nil metric accepted")
	}
	if _, err := Recommend(m, caps[:3], Requirements{}); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if _, err := Recommend(m, caps, Requirements{MaxAvgDelay: -1}); err == nil {
		t.Fatal("negative requirement accepted")
	}
	if _, err := Recommend(m, caps, Requirements{CrashProb: 2}); err == nil {
		t.Fatal("crash probability 2 accepted")
	}
}

func TestRecommendBasics(t *testing.T) {
	m := wanMetric(t)
	caps := make([]float64, m.N())
	for i := range caps {
		caps[i] = 0.8
	}
	recs, err := Recommend(m, caps, Requirements{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	// With MaxLoadFactor 0 (= respect capacities), every feasible entry
	// must have load factor ≤ 1.
	sawFeasible := false
	for _, r := range recs {
		if r.Feasible {
			sawFeasible = true
			if r.LoadFactor > 1+1e-9 {
				t.Fatalf("%s: feasible but load %v > 1", r.SystemName, r.LoadFactor)
			}
			if r.AvgMaxDelay <= 0 {
				t.Fatalf("%s: non-positive delay", r.SystemName)
			}
			if r.Method == "" {
				t.Fatalf("%s: empty method", r.SystemName)
			}
		} else if r.Reason == "" {
			t.Fatalf("%s: infeasible without reason", r.SystemName)
		}
	}
	if !sawFeasible {
		t.Fatal("no feasible configuration on a generous instance")
	}
	// Feasible entries come first and are sorted by delay.
	lastFeasible := true
	lastDelay := -1.0
	for _, r := range recs {
		if r.Feasible && !lastFeasible {
			t.Fatal("feasible entry after infeasible one")
		}
		if r.Feasible {
			if lastDelay > 0 && r.AvgMaxDelay < lastDelay-1e-12 {
				t.Fatal("feasible entries not sorted by delay")
			}
			lastDelay = r.AvgMaxDelay
		}
		lastFeasible = r.Feasible
	}
}

func TestRecommendDelayBudget(t *testing.T) {
	m := wanMetric(t)
	caps := make([]float64, m.N())
	for i := range caps {
		caps[i] = 0.8
	}
	all, err := Recommend(m, caps, Requirements{})
	if err != nil {
		t.Fatal(err)
	}
	bestDelay := math.Inf(1)
	for _, r := range all {
		if r.Feasible && r.AvgMaxDelay < bestDelay {
			bestDelay = r.AvgMaxDelay
		}
	}
	// A budget between best and worst must exclude something.
	tight, err := Recommend(m, caps, Requirements{MaxAvgDelay: bestDelay * 1.01})
	if err != nil {
		t.Fatal(err)
	}
	excluded := false
	for _, r := range tight {
		if !r.Feasible && strings.Contains(r.Reason, "delay") {
			excluded = true
		}
		if r.Feasible && r.AvgMaxDelay > bestDelay*1.01+1e-9 {
			t.Fatalf("%s feasible above the delay budget", r.SystemName)
		}
	}
	if !excluded {
		t.Log("no configuration excluded by the tight delay budget (all equally fast)")
	}
}

func TestRecommendLoadBudgetEnablesLP(t *testing.T) {
	m := wanMetric(t)
	// Capacities too small for any one-element-per-node layout of larger
	// systems, but a 3× budget lets the LP pipeline through.
	caps := make([]float64, m.N())
	for i := range caps {
		caps[i] = 0.3
	}
	recs, err := Recommend(m, caps, Requirements{MaxLoadFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Feasible && r.LoadFactor > 3+1e-9 {
			t.Fatalf("%s: feasible with load %v > 3", r.SystemName, r.LoadFactor)
		}
	}
}

func TestRecommendAvailability(t *testing.T) {
	m := wanMetric(t)
	caps := make([]float64, m.N())
	for i := range caps {
		caps[i] = 0.8
	}
	recs, err := Recommend(m, caps, Requirements{CrashProb: 0.2, MaxFailureProb: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	evaluated := 0
	for _, r := range recs {
		if !math.IsNaN(r.FailureProb) {
			evaluated++
			if r.Feasible && r.FailureProb > 0.05+1e-9 {
				t.Fatalf("%s: feasible with failure prob %v", r.SystemName, r.FailureProb)
			}
		}
	}
	if evaluated == 0 {
		t.Fatal("availability never evaluated")
	}
}
