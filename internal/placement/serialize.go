package placement

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"quorumplace/internal/graph"
	"quorumplace/internal/quorum"
)

// Instance serialization. An InstanceSpec is a JSON document capturing
// everything needed to reconstruct a placement instance: the network (as an
// edge list), node capacities, the quorum system (explicit quorums) and the
// access strategy, plus optional client rates. It exists so experiments and
// deployments can be stored, shared, and replayed byte-for-byte.

// InstanceSpec is the JSON form of an Instance.
type InstanceSpec struct {
	// Name is a free-form label.
	Name string `json:"name,omitempty"`
	// Nodes is the network size.
	Nodes int `json:"nodes"`
	// Edges lists undirected edges as [u, v, length] triples.
	Edges [][3]float64 `json:"edges"`
	// Capacities holds cap(v) per node.
	Capacities []float64 `json:"capacities"`
	// SystemName labels the quorum system.
	SystemName string `json:"system_name,omitempty"`
	// Universe is the logical element count.
	Universe int `json:"universe"`
	// Quorums lists each quorum's elements.
	Quorums [][]int `json:"quorums"`
	// Strategy holds the access probabilities, one per quorum.
	Strategy []float64 `json:"strategy"`
	// Rates optionally holds per-client access rates.
	Rates []float64 `json:"rates,omitempty"`
}

// Spec extracts the serializable form of an instance built on a graph.
// Because an Instance stores only the metric, the caller supplies the
// original graph; Spec validates that it matches the instance's size.
func Spec(name string, g *graph.Graph, ins *Instance) (*InstanceSpec, error) {
	if g.N() != ins.M.N() {
		return nil, fmt.Errorf("placement: graph has %d nodes, instance %d", g.N(), ins.M.N())
	}
	spec := &InstanceSpec{
		Name:       name,
		Nodes:      g.N(),
		Capacities: append([]float64(nil), ins.Cap...),
		SystemName: ins.Sys.Name(),
		Universe:   ins.Sys.Universe(),
		Strategy:   ins.Strat.Probs(),
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				spec.Edges = append(spec.Edges, [3]float64{float64(u), float64(e.To), e.Length})
			}
		}
	}
	for i := 0; i < ins.Sys.NumQuorums(); i++ {
		spec.Quorums = append(spec.Quorums, append([]int(nil), ins.Sys.Quorum(i)...))
	}
	if ins.Rates != nil {
		spec.Rates = append([]float64(nil), ins.Rates...)
	}
	return spec, nil
}

// Build reconstructs the graph and instance from the spec.
func (spec *InstanceSpec) Build() (*graph.Graph, *Instance, error) {
	if spec.Nodes <= 0 {
		return nil, nil, fmt.Errorf("placement: spec has %d nodes", spec.Nodes)
	}
	g := graph.New(spec.Nodes)
	for i, e := range spec.Edges {
		u, v := int(e[0]), int(e[1])
		if float64(u) != e[0] || float64(v) != e[1] {
			return nil, nil, fmt.Errorf("placement: edge %d has non-integer endpoints %v", i, e)
		}
		if err := g.AddEdge(u, v, e[2]); err != nil {
			return nil, nil, fmt.Errorf("placement: edge %d: %w", i, err)
		}
	}
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		return nil, nil, err
	}
	name := spec.SystemName
	if name == "" {
		name = spec.Name
	}
	sys, err := quorum.NewSystem(name, spec.Universe, spec.Quorums)
	if err != nil {
		return nil, nil, err
	}
	st, err := quorum.NewStrategy(spec.Strategy)
	if err != nil {
		return nil, nil, err
	}
	ins, err := NewInstance(m, spec.Capacities, sys, st)
	if err != nil {
		return nil, nil, err
	}
	if spec.Rates != nil {
		if err := ins.SetRates(spec.Rates); err != nil {
			return nil, nil, err
		}
	}
	return g, ins, nil
}

// WriteSpec serializes the spec as indented JSON.
func WriteSpec(w io.Writer, spec *InstanceSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// ReadSpec parses a JSON instance spec and sanity-checks its numbers.
func ReadSpec(r io.Reader) (*InstanceSpec, error) {
	var spec InstanceSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("placement: decoding spec: %w", err)
	}
	for i, c := range spec.Capacities {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("placement: capacity %d is %v", i, c)
		}
	}
	return &spec, nil
}
