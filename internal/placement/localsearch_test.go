package placement_test

import (
	"math"
	"math/rand"
	"testing"

	"quorumplace/internal/exact"
	"quorumplace/internal/placement"
)

func TestLocalSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ins := randomInstance(t, rng)
	p, err := placement.RandomFeasiblePlacement(ins, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := placement.ImproveLocalSearch(ins, p, placement.LocalSearchConfig{MaxLoadFactor: 0}); err == nil {
		t.Fatal("zero load factor accepted")
	}
	if _, _, err := placement.ImproveLocalSearch(ins, p, placement.LocalSearchConfig{
		Objective: placement.ObjectiveSourceMaxDelay, V0: -1, MaxLoadFactor: 1,
	}); err == nil {
		t.Fatal("invalid V0 accepted")
	}
	bad := placement.NewPlacement([]int{0})
	if _, _, err := placement.ImproveLocalSearch(ins, bad, placement.LocalSearchConfig{MaxLoadFactor: 1}); err == nil {
		t.Fatal("short placement accepted")
	}
}

// TestLocalSearchNeverWorse: the returned objective is ≤ the input's, and
// the returned placement evaluates to the reported value.
func TestLocalSearchNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 10; trial++ {
		ins := randomInstance(t, rng)
		p, err := placement.RandomFeasiblePlacement(ins, rng, 100)
		if err != nil {
			t.Fatal(err)
		}
		before := ins.AvgMaxDelay(p)
		improved, val, err := placement.ImproveLocalSearch(ins, p, placement.LocalSearchConfig{
			Objective:     placement.ObjectiveAvgMaxDelay,
			MaxLoadFactor: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if val > before+1e-9 {
			t.Fatalf("trial %d: local search worsened %v -> %v", trial, before, val)
		}
		if got := ins.AvgMaxDelay(improved); math.Abs(got-val) > 1e-9 {
			t.Fatalf("trial %d: reported %v, placement evaluates to %v", trial, val, got)
		}
		if !ins.Feasible(improved) {
			t.Fatalf("trial %d: local search broke feasibility", trial)
		}
	}
}

// TestLocalSearchRespectsBudget: with MaxLoadFactor = α+1, the improved
// placement stays within the Theorem 3.7 load bound.
func TestLocalSearchRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 6; trial++ {
		ins := randomInstance(t, rng)
		alpha := 2.0
		res, err := placement.SolveSSQPP(ins, 0, alpha)
		if err != nil {
			t.Fatal(err)
		}
		improved, val, err := placement.ImproveLocalSearch(ins, res.Placement, placement.LocalSearchConfig{
			Objective:     placement.ObjectiveSourceMaxDelay,
			V0:            0,
			MaxLoadFactor: alpha + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if val > res.Delay+1e-9 {
			t.Fatalf("trial %d: worsened %v -> %v", trial, res.Delay, val)
		}
		for v, l := range ins.NodeLoads(improved) {
			if l > (alpha+1)*ins.Cap[v]+1e-6 {
				t.Fatalf("trial %d: node %d load %v exceeds budget %v", trial, v, l, (alpha+1)*ins.Cap[v])
			}
		}
	}
}

// TestLocalSearchFixedPointAtOptimum: starting from the exact optimum, the
// search must not move (it only accepts strict improvements).
func TestLocalSearchFixedPointAtOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ins := randomInstance(t, rng)
	pOpt, opt, err := exact.SolveQPP(ins)
	if err != nil {
		t.Fatal(err)
	}
	_, val, err := placement.ImproveLocalSearch(ins, pOpt, placement.LocalSearchConfig{
		Objective:     placement.ObjectiveAvgMaxDelay,
		MaxLoadFactor: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-opt) > 1e-9 {
		t.Fatalf("search changed the optimum: %v -> %v", opt, val)
	}
}

// TestLocalSearchTotalDelayObjective exercises the Γ objective.
func TestLocalSearchTotalDelayObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	ins := randomInstance(t, rng)
	p, err := placement.RandomFeasiblePlacement(ins, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	before := ins.AvgTotalDelay(p)
	improved, val, err := placement.ImproveLocalSearch(ins, p, placement.LocalSearchConfig{
		Objective:     placement.ObjectiveAvgTotalDelay,
		MaxLoadFactor: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if val > before+1e-9 {
		t.Fatalf("worsened %v -> %v", before, val)
	}
	if got := ins.AvgTotalDelay(improved); math.Abs(got-val) > 1e-9 {
		t.Fatalf("reported %v, evaluates to %v", val, got)
	}
}

// TestArgmaxAblation: the argmax variant keeps the Lemma 3.9 delay bound
// but can exceed the (α+1)·cap load bound that full rounding guarantees.
func TestArgmaxAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	alpha := 2.0
	sawDelayBound := false
	for trial := 0; trial < 10; trial++ {
		ins := randomInstance(t, rng)
		v0 := rng.Intn(ins.M.N())
		res, err := placement.SolveSSQPPArgmax(ins, v0, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if res.LPBound > 1e-12 {
			if res.Delay > alpha/(alpha-1)*res.LPBound+1e-6 {
				t.Fatalf("trial %d: argmax delay %v exceeds α/(α-1)·Z* = %v",
					trial, res.Delay, alpha/(alpha-1)*res.LPBound)
			}
			sawDelayBound = true
		}
	}
	if !sawDelayBound {
		t.Fatal("no instance exercised the delay bound")
	}
}

func TestArgmaxValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	ins := randomInstance(t, rng)
	if _, err := placement.SolveSSQPPArgmax(ins, 0, 1); err == nil {
		t.Fatal("alpha = 1 accepted")
	}
	if _, err := placement.SolveSSQPPArgmax(ins, -1, 2); err == nil {
		t.Fatal("negative source accepted")
	}
}
