package placement

import (
	"fmt"
	"math"

	"quorumplace/internal/gap"
	"quorumplace/internal/obs"
)

// This file implements the total-delay objective of §5 (Theorems 1.4 and
// 5.1). Because Γ_f(v) = Σ_u load(u)·d(v, f(u)) decomposes per element, the
// problem is exactly a Generalized Assignment Problem:
//
//	jobs     = elements u, with machine-independent size load(u)
//	machines = nodes v, with capacity cap(v)
//	cost     = load(u) · Avg_{v'} d(v', v)   (rate-weighted when set)
//
// Solving the GAP LP and rounding with Shmoys–Tardos yields a placement
// whose average total-delay is at most the optimum over capacity-respecting
// placements, with load_f(v) ≤ 2·cap(v). Pairs with load(u) > cap(v) are
// forbidden (mirroring constraint (13)); an optimal capacity-respecting
// placement never uses them, so the LP bound is unaffected, and forbidding
// them is what caps the rounded load at cap + p^max ≤ 2·cap.

// TotalDelayResult is the outcome of SolveTotalDelay.
type TotalDelayResult struct {
	Placement Placement
	AvgDelay  float64 // Avg_v Γ_f(v) of the returned placement
	LPBound   float64 // GAP LP optimum ≤ optimal capacity-respecting delay
}

// SolveTotalDelay runs the Theorem 5.1 algorithm.
func SolveTotalDelay(ins *Instance) (*TotalDelayResult, error) {
	sp := obs.Start("placement.totaldelay")
	defer sp.End()
	n := ins.M.N()
	nU := ins.Sys.Universe()
	avgDist := make([]float64, n)
	for v := 0; v < n; v++ {
		avgDist[v] = ins.avgOverClients(func(v2 int) float64 { return ins.M.D(v2, v) })
	}
	g := &gap.Instance{
		Cost: make([][]float64, n),
		Load: make([][]float64, n),
		T:    append([]float64(nil), ins.Cap...),
	}
	for v := 0; v < n; v++ {
		g.Cost[v] = make([]float64, nU)
		g.Load[v] = make([]float64, nU)
		for u := 0; u < nU; u++ {
			g.Cost[v][u] = ins.loads[u] * avgDist[v]
			if ins.loads[u] > ins.Cap[v]*(1+capTol) {
				g.Load[v][u] = math.Inf(1)
			} else {
				g.Load[v][u] = ins.loads[u]
			}
		}
	}
	assign, _, lpObj, err := gap.Solve(g)
	if err != nil {
		return nil, fmt.Errorf("placement: total-delay GAP: %w", err)
	}
	pl := NewPlacement(assign)
	return &TotalDelayResult{
		Placement: pl,
		AvgDelay:  ins.AvgTotalDelay(pl),
		LPBound:   lpObj,
	}, nil
}
