package placement_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/obs"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// TestParallelMatchesSequential: the parallel solver must return exactly
// the sequential solver's result (same winning source, delay, and bounds).
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 6; trial++ {
		ins := randomInstance(t, rng)
		for _, workers := range []int{0, 1, 3} {
			seq, err := placement.SolveQPP(ins, 2)
			if err != nil {
				t.Fatal(err)
			}
			par, err := placement.SolveQPPParallel(ins, 2, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.BestV0 != seq.BestV0 {
				t.Fatalf("trial %d workers %d: winner %d vs %d", trial, workers, par.BestV0, seq.BestV0)
			}
			if math.Abs(par.AvgMaxDelay-seq.AvgMaxDelay) > 1e-12 {
				t.Fatalf("trial %d: delay %v vs %v", trial, par.AvgMaxDelay, seq.AvgMaxDelay)
			}
			if math.Abs(par.RelayBound-seq.RelayBound) > 1e-9 ||
				math.Abs(par.MaxLPBound-seq.MaxLPBound) > 1e-9 {
				t.Fatalf("trial %d: bounds differ: %v/%v vs %v/%v",
					trial, par.RelayBound, par.MaxLPBound, seq.RelayBound, seq.MaxLPBound)
			}
		}
	}
}

// TestParallelDifferential pins the parallel solver to the sequential one
// bit-for-bit across many randomized instances, every worker count the
// chunked fan-out exercises, and both telemetry states (the telemetry-on
// path takes the lock-free obs counter/model-cache branches, so it gets its
// own column). The reduction over per-source results is associative and
// tie-broken identically to the sequential scan, so equality here is exact
// (==), not within a tolerance.
func TestParallelDifferential(t *testing.T) {
	const trials = 50
	rng := rand.New(rand.NewSource(811))
	for trial := 0; trial < trials; trial++ {
		ins := randomInstance(t, rng)
		seq, seqErr := placement.SolveQPP(ins, 2)
		for _, telemetry := range []bool{false, true} {
			if telemetry {
				obs.Enable(nil)
			}
			for workers := 2; workers <= 8; workers++ {
				par, parErr := placement.SolveQPPParallel(ins, 2, workers)
				if (seqErr == nil) != (parErr == nil) {
					t.Fatalf("trial %d workers %d telemetry %v: err %v vs %v",
						trial, workers, telemetry, parErr, seqErr)
				}
				if seqErr != nil {
					if parErr.Error() != seqErr.Error() {
						t.Fatalf("trial %d workers %d: error %q vs %q", trial, workers, parErr, seqErr)
					}
					continue
				}
				if par.BestV0 != seq.BestV0 || par.AvgMaxDelay != seq.AvgMaxDelay ||
					par.RelayBound != seq.RelayBound || par.MaxLPBound != seq.MaxLPBound {
					t.Fatalf("trial %d workers %d telemetry %v: result %+v vs %+v",
						trial, workers, telemetry, par, seq)
				}
				for u := 0; u < ins.Sys.Universe(); u++ {
					if par.Placement.Node(u) != seq.Placement.Node(u) {
						t.Fatalf("trial %d workers %d: element %d placed at %d vs %d",
							trial, workers, u, par.Placement.Node(u), seq.Placement.Node(u))
					}
				}
			}
			if telemetry {
				obs.Disable()
			}
		}
	}
}

func TestParallelEmptyNetwork(t *testing.T) {
	m, err := graph.NewMetricFromMatrix([][]float64{})
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Singleton()
	ins, err := placement.NewInstance(m, nil, sys, quorum.Uniform(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placement.SolveQPPParallel(ins, 2, 2); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestParallelAllSourcesFail(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t) // element 0 has load 1
	ins, err := placement.NewInstance(m, uniformCaps(3, 0.4), sys, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placement.SolveQPPParallel(ins, 2, 4); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}

func TestParallelIsConcurrencySafe(t *testing.T) {
	// Run with -race to verify no shared-state races between workers.
	rng := rand.New(rand.NewSource(409))
	ins := randomInstance(t, rng)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := placement.SolveQPPParallel(ins, 2, 4)
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelSpanAttribution verifies the shard-based telemetry of the
// parallel solver: every worker's pipeline spans nest under its own
// placement.qpp_worker span (itself under placement.qpp_parallel), and the
// counters the workers buffer in their shards total exactly what a
// sequential telemetry run records.
func TestParallelSpanAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	ins := randomInstance(t, rng)

	seqC := obs.Enable(obs.NewCollector())
	if _, err := placement.SolveQPP(ins, 2); err != nil {
		obs.Disable()
		t.Fatal(err)
	}
	obs.Disable()
	seq := seqC.Snapshot()

	parC := obs.Enable(obs.NewCollector())
	defer obs.Disable()
	const workers = 3
	if _, err := placement.SolveQPPParallel(ins, 2, workers); err != nil {
		t.Fatal(err)
	}
	par := parC.Snapshot()

	paths := map[string]int{}
	for _, p := range par.SpanPaths() {
		paths[p]++
	}
	if paths["placement.qpp_parallel"] != 1 {
		t.Fatalf("qpp_parallel roots = %d, paths = %v", paths["placement.qpp_parallel"], paths)
	}
	if got := paths["placement.qpp_parallel/placement.qpp_worker"]; got != workers {
		t.Fatalf("worker spans = %d, want %d", got, workers)
	}
	n := ins.M.N()
	deep := "placement.qpp_parallel/placement.qpp_worker/placement.ssqpp"
	if got := paths[deep]; got != n {
		t.Fatalf("per-source pipelines under workers = %d, want %d (paths %v)", got, n, paths)
	}
	if paths[deep+"/ssqpp.lp/lp.solve"] == 0 {
		t.Fatalf("lp.solve spans did not nest under worker pipelines: %v", paths)
	}
	// No span may escape the worker subtree: everything except the root
	// parallel span must sit below a qpp_worker.
	for p, c := range paths {
		if p != "placement.qpp_parallel" && !strings.HasPrefix(p, "placement.qpp_parallel/placement.qpp_worker") {
			t.Fatalf("span path %q (×%d) escaped worker attribution", p, c)
		}
	}

	// Worker-buffered counters must aggregate exactly like the sequential
	// run's (the solves are identical work, merely sharded).
	for _, name := range []string{
		"lp.solves", "lp.pivots", "lp.phase1_iters", "lp.phase2_iters",
		"gap.fractional_vars", "gap.slots",
		"flow.augmentations", "placement.qpp_sources",
	} {
		if got, want := par.Counter(name), seq.Counter(name); got != want {
			t.Fatalf("counter %s = %d parallel vs %d sequential", name, got, want)
		}
	}
	// Histograms recorded through shards must merge to the sequential ones.
	for _, name := range []string{"lp.pivots_per_solve", "flow.augmentations_per_run"} {
		ph, sh := par.Histograms[name], seq.Histograms[name]
		if ph.Count != sh.Count || ph.Sum != sh.Sum || ph.Min != sh.Min || ph.Max != sh.Max {
			t.Fatalf("histogram %s differs: %+v vs %+v", name, ph, sh)
		}
	}
}
