package placement

import (
	"fmt"
	"sort"
	"strings"
)

// Audit produces a one-call health report for a placement: the paper's two
// headline quantities (average max-delay and capacity violation), the
// per-node load profile, the Lemma 3.1 relay factor, fault-tolerance
// numbers, and the set of hot nodes. It is what cmd/qpp prints and what
// operators would look at before adopting a placement.

// AuditReport summarizes a placement against its instance.
type AuditReport struct {
	AvgMaxDelay   float64
	AvgTotalDelay float64
	// WorstClientDelay is max_v Δ_f(v) with its argmax client.
	WorstClientDelay float64
	WorstClient      int
	// CapacityViolation is max_v load_f(v)/cap(v).
	CapacityViolation float64
	// HotNodes lists nodes over their capacity, worst first.
	HotNodes []HotNode
	// RelayFactor is the Lemma 3.1 detour factor (≤ 5) and its best relay.
	RelayFactor float64
	RelayNode   int
	// UsedNodes is the number of distinct nodes hosting elements.
	UsedNodes int
	// NodeResilience is the number of node crashes always survived
	// (computed only when the used-node count permits; -1 otherwise).
	NodeResilience int
}

// HotNode is a node whose placed load exceeds its capacity.
type HotNode struct {
	Node   int
	Load   float64
	Cap    float64
	Factor float64
}

// Audit evaluates the placement and assembles the report.
func (ins *Instance) Audit(p Placement) (*AuditReport, error) {
	if err := ins.Validate(p); err != nil {
		return nil, err
	}
	r := &AuditReport{
		AvgMaxDelay:    ins.AvgMaxDelay(p),
		AvgTotalDelay:  ins.AvgTotalDelay(p),
		NodeResilience: -1,
	}
	for v := 0; v < ins.M.N(); v++ {
		if d := ins.MaxDelayFrom(v, p); d > r.WorstClientDelay {
			r.WorstClientDelay = d
			r.WorstClient = v
		}
	}
	r.CapacityViolation = ins.CapacityViolation(p)
	loads := ins.NodeLoads(p)
	used := map[int]bool{}
	for u := 0; u < p.Len(); u++ {
		used[p.Node(u)] = true
	}
	r.UsedNodes = len(used)
	for v, l := range loads {
		if l > ins.Cap[v]*(1+capTol)+capTol {
			factor := l / ins.Cap[v]
			if ins.Cap[v] == 0 {
				factor = -1 // infinite; sorted last-first below by load
			}
			r.HotNodes = append(r.HotNodes, HotNode{Node: v, Load: l, Cap: ins.Cap[v], Factor: factor})
		}
	}
	sort.Slice(r.HotNodes, func(a, b int) bool {
		ha, hb := r.HotNodes[a], r.HotNodes[b]
		if (ha.Factor < 0) != (hb.Factor < 0) {
			return ha.Factor < 0 // infinite violations first
		}
		return ha.Factor > hb.Factor
	})
	r.RelayFactor, r.RelayNode = RelayFactor(ins, p)
	if r.UsedNodes <= maxExactNodes {
		if res, err := ins.PlacementResilience(p); err == nil {
			r.NodeResilience = res
		}
	}
	return r, nil
}

// String renders the report as aligned text.
func (r *AuditReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "avg max-delay Δ:     %.6g\n", r.AvgMaxDelay)
	fmt.Fprintf(&b, "avg total-delay Γ:   %.6g\n", r.AvgTotalDelay)
	fmt.Fprintf(&b, "worst client:        v%d (Δ = %.6g)\n", r.WorstClient, r.WorstClientDelay)
	fmt.Fprintf(&b, "capacity violation:  %.4g×\n", r.CapacityViolation)
	fmt.Fprintf(&b, "relay factor (≤5):   %.4g via v%d\n", r.RelayFactor, r.RelayNode)
	fmt.Fprintf(&b, "used nodes:          %d\n", r.UsedNodes)
	if r.NodeResilience >= 0 {
		fmt.Fprintf(&b, "node resilience:     %d crash(es)\n", r.NodeResilience)
	}
	if len(r.HotNodes) > 0 {
		b.WriteString("over-capacity nodes:\n")
		for _, h := range r.HotNodes {
			if h.Factor < 0 {
				fmt.Fprintf(&b, "  v%-4d load %.4g / cap 0 (zero-capacity node)\n", h.Node, h.Load)
			} else {
				fmt.Fprintf(&b, "  v%-4d load %.4g / cap %.4g (%.3g×)\n", h.Node, h.Load, h.Cap, h.Factor)
			}
		}
	}
	return b.String()
}
