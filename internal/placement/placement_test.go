package placement_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"quorumplace/internal/exact"
	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

// mustMetric converts a graph into its shortest-path metric.
func mustMetric(t *testing.T, g *graph.Graph) *graph.Metric {
	t.Helper()
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// tinySystem is a 2-element system with quorums {0} and {0,1} and strategy
// (1/2, 1/2): load(0)=1, load(1)=1/2. Handy for hand-checked delays.
func tinySystem(t *testing.T) (*quorum.System, quorum.Strategy) {
	t.Helper()
	sys, err := quorum.NewSystem("tiny", 2, [][]int{{0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := quorum.NewStrategy([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return sys, st
}

func uniformCaps(n int, c float64) []float64 {
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = c
	}
	return caps
}

func TestNewInstanceValidation(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t)
	if _, err := placement.NewInstance(m, uniformCaps(3, 1), sys, st); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	if _, err := placement.NewInstance(m, uniformCaps(2, 1), sys, st); err == nil {
		t.Fatal("capacity length mismatch accepted")
	}
	if _, err := placement.NewInstance(m, []float64{1, -1, 1}, sys, st); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := placement.NewInstance(m, []float64{1, math.NaN(), 1}, sys, st); err == nil {
		t.Fatal("NaN capacity accepted")
	}
	if _, err := placement.NewInstance(nil, uniformCaps(3, 1), sys, st); err == nil {
		t.Fatal("nil metric accepted")
	}
	if _, err := placement.NewInstance(m, uniformCaps(3, 1), sys, quorum.Uniform(5)); err == nil {
		t.Fatal("strategy length mismatch accepted")
	}
}

func TestLoadsAndTotalLoad(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t)
	ins, err := placement.NewInstance(m, uniformCaps(3, 1), sys, st)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Load(0) != 1 || ins.Load(1) != 0.5 {
		t.Fatalf("loads = %v, %v; want 1, 0.5", ins.Load(0), ins.Load(1))
	}
	if ins.TotalLoad() != 1.5 {
		t.Fatalf("TotalLoad = %v, want 1.5", ins.TotalLoad())
	}
}

func TestDelayEvaluatorsHandChecked(t *testing.T) {
	// Path 0-1-2, f(e0)=0, f(e1)=2.
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t)
	ins, err := placement.NewInstance(m, uniformCaps(3, 2), sys, st)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement([]int{0, 2})

	// δ(1, Q0={e0}) = d(1,0) = 1; δ(1, Q1={e0,e1}) = max(1, 1) = 1.
	if got := ins.QuorumMaxDelay(1, 0, p); got != 1 {
		t.Fatalf("QuorumMaxDelay(1,0) = %v, want 1", got)
	}
	if got := ins.QuorumMaxDelay(1, 1, p); got != 1 {
		t.Fatalf("QuorumMaxDelay(1,1) = %v, want 1", got)
	}
	// Δ(0) = 0.5·0 + 0.5·max(0, 2) = 1.
	if got := ins.MaxDelayFrom(0, p); got != 1 {
		t.Fatalf("MaxDelayFrom(0) = %v, want 1", got)
	}
	// Δ(2) = 0.5·2 + 0.5·2 = 2.
	if got := ins.MaxDelayFrom(2, p); got != 2 {
		t.Fatalf("MaxDelayFrom(2) = %v, want 2", got)
	}
	// Avg = (1 + 1 + 2)/3.
	if got := ins.AvgMaxDelay(p); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("AvgMaxDelay = %v, want %v", got, 4.0/3)
	}
	// γ(1, Q1) = d(1,0)+d(1,2) = 2; Γ(1) = 0.5·1 + 0.5·2 = 1.5.
	if got := ins.QuorumTotalDelay(1, 1, p); got != 2 {
		t.Fatalf("QuorumTotalDelay(1,1) = %v, want 2", got)
	}
	if got := ins.TotalDelayFrom(1, p); got != 1.5 {
		t.Fatalf("TotalDelayFrom(1) = %v, want 1.5", got)
	}
	// Γ via identity: Σ_u load(u)·d(v,f(u)): v=0: 1·0 + 0.5·2 = 1.
	if got := ins.TotalDelayFrom(0, p); got != 1 {
		t.Fatalf("TotalDelayFrom(0) = %v, want 1", got)
	}
}

func TestNodeLoadsAndFeasibility(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t)
	ins, err := placement.NewInstance(m, []float64{1, 0.4, 0.6}, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement([]int{0, 2}) // loads 1 on node 0, 0.5 on node 2
	nl := ins.NodeLoads(p)
	if nl[0] != 1 || nl[1] != 0 || nl[2] != 0.5 {
		t.Fatalf("NodeLoads = %v, want [1 0 0.5]", nl)
	}
	if !ins.Feasible(p) {
		t.Fatal("feasible placement reported infeasible")
	}
	if v := ins.CapacityViolation(p); math.Abs(v-1) > 1e-12 {
		t.Fatalf("CapacityViolation = %v, want 1", v)
	}
	p2 := placement.NewPlacement([]int{1, 1}) // load 1.5 on node 1 (cap 0.4)
	if ins.Feasible(p2) {
		t.Fatal("infeasible placement reported feasible")
	}
	if v := ins.CapacityViolation(p2); math.Abs(v-1.5/0.4) > 1e-9 {
		t.Fatalf("CapacityViolation = %v, want %v", v, 1.5/0.4)
	}
}

func TestValidatePlacement(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t)
	ins, _ := placement.NewInstance(m, uniformCaps(3, 1), sys, st)
	if err := ins.Validate(placement.NewPlacement([]int{0, 1})); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	if err := ins.Validate(placement.NewPlacement([]int{0})); err == nil {
		t.Fatal("short placement accepted")
	}
	if err := ins.Validate(placement.NewPlacement([]int{0, 5})); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestSetRates(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t)
	ins, _ := placement.NewInstance(m, uniformCaps(3, 2), sys, st)
	if err := ins.SetRates([]float64{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement([]int{0, 2})
	// Only client 0 matters now: Avg = Δ(0) = 1.
	if got := ins.AvgMaxDelay(p); math.Abs(got-1) > 1e-12 {
		t.Fatalf("weighted AvgMaxDelay = %v, want 1", got)
	}
	if err := ins.SetRates([]float64{0, 0, 0}); err == nil {
		t.Fatal("zero-sum rates accepted")
	}
	if err := ins.SetRates([]float64{1, -1, 1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := ins.SetRates(nil); err != nil {
		t.Fatal(err)
	}
	if got := ins.AvgMaxDelay(p); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("AvgMaxDelay after rate reset = %v, want %v", got, 4.0/3)
	}
}

// randomInstance builds a random feasible instance: capacities are seeded
// from a random placement so at least one capacity-respecting placement
// always exists.
func randomInstance(t *testing.T, rng *rand.Rand) *placement.Instance {
	t.Helper()
	var sys *quorum.System
	switch rng.Intn(4) {
	case 0:
		sys = quorum.Grid(2)
	case 1:
		sys = quorum.Majority(4, 3)
	case 2:
		sys = quorum.Star(4)
	default:
		sys = quorum.Wheel(4)
	}
	var st quorum.Strategy
	if rng.Intn(2) == 0 {
		st = quorum.Uniform(sys.NumQuorums())
	} else {
		p := make([]float64, sys.NumQuorums())
		sum := 0.0
		for i := range p {
			p[i] = 0.05 + rng.Float64()
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		var err error
		st, err = quorum.NewStrategy(p)
		if err != nil {
			t.Fatal(err)
		}
	}
	n := 5 + rng.Intn(3)
	var g *graph.Graph
	switch rng.Intn(3) {
	case 0:
		g = graph.Path(n)
	case 1:
		g = graph.ErdosRenyiConnected(n, 0.4, 0.5, 3, rng)
	default:
		g = graph.RandomTree(n, 1, 4, rng)
	}
	m := mustMetric(t, g)
	// Seed capacities from a random placement plus slack.
	tmp, err := placement.NewInstance(m, uniformCaps(n, 1e9), sys, st)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, n)
	for u := 0; u < sys.Universe(); u++ {
		caps[rng.Intn(n)] += tmp.Load(u)
	}
	for v := range caps {
		caps[v] += rng.Float64() * 0.3
	}
	ins, err := placement.NewInstance(m, caps, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

// TestLemma31RelayFactor checks the structural lemma: for any placement,
// the best relay-via-v0 strategy costs at most 5× the true average
// max-delay.
func TestLemma31RelayFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		ins := randomInstance(t, rng)
		p, err := placement.RandomFeasiblePlacement(ins, rng, 50)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		factor, v0 := placement.RelayFactor(ins, p)
		if factor > 5+1e-9 {
			t.Fatalf("trial %d: relay factor %v > 5 (v0=%d)", trial, factor, v0)
		}
	}
}

// TestTheorem37SSQPPContract verifies, per instance and α: the LP bound is
// at most the exact optimum; the returned delay is at most α/(α-1)·LP; and
// every node load is at most (α+1)·cap.
func TestTheorem37SSQPPContract(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		ins := randomInstance(t, rng)
		v0 := rng.Intn(ins.M.N())
		_, opt, err := exact.SolveSSQPP(ins, v0)
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		for _, alpha := range []float64{1.5, 2, 4} {
			res, err := placement.SolveSSQPP(ins, v0, alpha)
			if err != nil {
				t.Fatalf("trial %d α=%v: %v", trial, alpha, err)
			}
			if res.LPBound > opt+1e-6 {
				t.Fatalf("trial %d α=%v: LP bound %v exceeds exact optimum %v", trial, alpha, res.LPBound, opt)
			}
			bound := alpha / (alpha - 1) * res.LPBound
			if res.Delay > bound+1e-6 {
				t.Fatalf("trial %d α=%v: delay %v exceeds α/(α-1)·Z* = %v", trial, alpha, res.Delay, bound)
			}
			loads := ins.NodeLoads(res.Placement)
			for v, l := range loads {
				if l > (alpha+1)*ins.Cap[v]+1e-6 {
					t.Fatalf("trial %d α=%v: node %d load %v exceeds (α+1)·cap = %v",
						trial, alpha, v, l, (alpha+1)*ins.Cap[v])
				}
			}
		}
	}
}

// TestTheorem12QPPContract verifies the end-to-end guarantee: average
// max-delay within 5α/(α-1) of the exact optimum, loads within (α+1)·cap.
func TestTheorem12QPPContract(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 6; trial++ {
		ins := randomInstance(t, rng)
		_, opt, err := exact.SolveQPP(ins)
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		alpha := 2.0
		res, err := placement.SolveQPP(ins, alpha)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if opt > 0 {
			ratio := res.AvgMaxDelay / opt
			if ratio > 5*alpha/(alpha-1)+1e-6 {
				t.Fatalf("trial %d: ratio %v exceeds 5α/(α-1) = %v", trial, ratio, 5*alpha/(alpha-1))
			}
		}
		for v, l := range ins.NodeLoads(res.Placement) {
			if l > (alpha+1)*ins.Cap[v]+1e-6 {
				t.Fatalf("trial %d: node %d load %v exceeds (α+1)·cap %v", trial, v, l, (alpha+1)*ins.Cap[v])
			}
		}
	}
}

func TestSSQPPInvalidArgs(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t)
	ins, _ := placement.NewInstance(m, uniformCaps(3, 2), sys, st)
	if _, err := placement.SolveSSQPP(ins, 0, 1.0); err == nil {
		t.Fatal("alpha = 1 accepted")
	}
	if _, err := placement.SolveSSQPP(ins, -1, 2); err == nil {
		t.Fatal("negative source accepted")
	}
}

func TestSSQPPInfeasibleCapacities(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t) // total load 1.5
	ins, err := placement.NewInstance(m, uniformCaps(3, 0.4), sys, st)
	if err != nil {
		t.Fatal(err)
	}
	// Element 0 has load 1 > 0.4 everywhere: constraint (13) kills it.
	if _, err := placement.SolveSSQPP(ins, 0, 2); err == nil {
		t.Fatal("expected infeasibility")
	} else if !strings.Contains(err.Error(), "exceeds every node capacity") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSSQPPSingleNode(t *testing.T) {
	// Degenerate network: everything lands on the only node; delay 0.
	m, err := graph.NewMetricFromMatrix([][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	sys, st := tinySystem(t)
	ins, err := placement.NewInstance(m, []float64{10}, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	res, err := placement.SolveSSQPP(ins, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay != 0 {
		t.Fatalf("delay = %v, want 0", res.Delay)
	}
}

// TestTheoremB1GridLayoutOptimal: the shell layout's cost equals the brute
// force optimum over all arrangements, for random distance multisets.
func TestTheoremB1GridLayoutOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, k := range []int{2, 3} {
		for trial := 0; trial < 10; trial++ {
			taus := make([]float64, k*k)
			for i := range taus {
				taus[i] = math.Round(rng.Float64() * 10)
			}
			// Shell layout: sort decreasing, place in shell order.
			sorted := append([]float64(nil), taus...)
			sortDesc(sorted)
			m := make([][]float64, k)
			for i := range m {
				m[i] = make([]float64, k)
			}
			for i, cell := range placement.GridShellOrder(k) {
				m[cell[0]][cell[1]] = sorted[i]
			}
			shell := placement.GridLayoutCost(m)
			brute := placement.BruteForceGridLayout(taus)
			if math.Abs(shell-brute) > 1e-9 {
				t.Fatalf("k=%d trial %d: shell cost %v != brute force %v (taus %v)", k, trial, shell, brute, taus)
			}
		}
	}
}

func sortDesc(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TestGridSSQPPMatchesExact: on small instances with unit capacities, the
// §4.1 layout achieves the exact SSQPP optimum.
func TestGridSSQPPMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	sys := quorum.Grid(2)
	st := quorum.Uniform(sys.NumQuorums())
	for trial := 0; trial < 8; trial++ {
		n := 5 + rng.Intn(3)
		g := graph.ErdosRenyiConnected(n, 0.5, 0.5, 3, rng)
		m := mustMetric(t, g)
		// cap = element load everywhere: one element per node.
		load := 3.0 / 4.0 // (2k-1)/k² for k=2
		ins, err := placement.NewInstance(m, uniformCaps(n, load), sys, st)
		if err != nil {
			t.Fatal(err)
		}
		v0 := rng.Intn(n)
		res, err := placement.SolveGridSSQPP(ins, v0)
		if err != nil {
			t.Fatal(err)
		}
		if !ins.Feasible(res.Placement) {
			t.Fatalf("trial %d: grid layout violates capacities", trial)
		}
		_, opt, err := exact.SolveSSQPP(ins, v0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Delay-opt) > 1e-9 {
			t.Fatalf("trial %d: grid layout delay %v != exact optimum %v", trial, res.Delay, opt)
		}
	}
}

// TestGridCapacityExpansion: nodes with capacity for multiple elements are
// used as multiple slots.
func TestGridCapacityExpansion(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys := quorum.Grid(2)
	st := quorum.Uniform(4)
	load := 3.0 / 4.0
	// Node 0 can hold 2 elements, node 1 two more; node 2 has none.
	ins, err := placement.NewInstance(m, []float64{2 * load, 2 * load, 0}, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	res, err := placement.SolveGridSSQPP(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for u := 0; u < 4; u++ {
		counts[res.Placement.Node(u)]++
	}
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 0 {
		t.Fatalf("slot usage = %v, want node0:2 node1:2", counts)
	}
	if !ins.Feasible(res.Placement) {
		t.Fatal("capacity violated")
	}
}

func TestGridInsufficientCapacity(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys := quorum.Grid(2)
	ins, err := placement.NewInstance(m, uniformCaps(3, 0.7), sys, quorum.Uniform(4))
	if err != nil {
		t.Fatal(err)
	}
	// load = 0.75 > 0.7: zero slots anywhere.
	if _, err := placement.SolveGridSSQPP(ins, 0); err == nil {
		t.Fatal("expected slot shortage error")
	}
}

func TestGridRejectsNonSquareUniverse(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, st := tinySystem(t)
	ins, _ := placement.NewInstance(m, uniformCaps(3, 2), sys, st)
	if _, err := placement.SolveGridSSQPP(ins, 0); err == nil {
		t.Fatal("non-square universe accepted")
	}
}

func TestGridRejectsNonUniformLoads(t *testing.T) {
	m := mustMetric(t, graph.Path(5))
	// 2×2 universe but a skewed strategy → non-uniform loads.
	sys := quorum.Grid(2)
	st, err := quorum.NewStrategy([]float64{0.7, 0.1, 0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := placement.NewInstance(m, uniformCaps(5, 2), sys, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placement.SolveGridSSQPP(ins, 0); err == nil {
		t.Fatal("non-uniform loads accepted")
	}
}

// TestMajorityFormulaMatchesEnumeration: Eq. (19) equals the directly
// evaluated Δ_f(v0), and the delay is invariant under re-arrangement.
func TestMajorityFormulaMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		nU := 4 + rng.Intn(2) // 4 or 5
		th := nU/2 + 1
		sys := quorum.Majority(nU, th)
		st := quorum.Uniform(sys.NumQuorums())
		n := nU + 1 + rng.Intn(3)
		g := graph.RandomTree(n, 1, 5, rng)
		m := mustMetric(t, g)
		load := float64(th) / float64(nU)
		ins, err := placement.NewInstance(m, uniformCaps(n, load), sys, st)
		if err != nil {
			t.Fatal(err)
		}
		v0 := rng.Intn(n)
		res, err := placement.SolveMajoritySSQPP(ins, v0, th)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Delay-res.Formula) > 1e-9 {
			t.Fatalf("trial %d: direct delay %v != Eq.19 %v", trial, res.Delay, res.Formula)
		}
		// Invariance: shuffle the element→node map among the same nodes.
		f := res.Placement.Map()
		rng.Shuffle(len(f), func(i, j int) { f[i], f[j] = f[j], f[i] })
		shuffled := placement.NewPlacement(f)
		if d := ins.MaxDelayFrom(v0, shuffled); math.Abs(d-res.Delay) > 1e-9 {
			t.Fatalf("trial %d: arrangement changed delay: %v vs %v", trial, d, res.Delay)
		}
	}
}

// TestMajoritySSQPPMatchesExact: nearest-slot selection is optimal.
func TestMajoritySSQPPMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sys := quorum.Majority(4, 3)
	st := quorum.Uniform(sys.NumQuorums())
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(3)
		g := graph.ErdosRenyiConnected(n, 0.5, 1, 4, rng)
		m := mustMetric(t, g)
		load := 0.75
		ins, err := placement.NewInstance(m, uniformCaps(n, load), sys, st)
		if err != nil {
			t.Fatal(err)
		}
		v0 := rng.Intn(n)
		res, err := placement.SolveMajoritySSQPP(ins, v0, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := exact.SolveSSQPP(ins, v0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Delay-opt) > 1e-9 {
			t.Fatalf("trial %d: majority layout %v != exact %v", trial, res.Delay, opt)
		}
	}
}

// TestTheorem13FiveApprox: the Grid and Majority QPP solvers respect
// capacities exactly and are within 5× of the exact QPP optimum.
func TestTheorem13FiveApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 4; trial++ {
		n := 6 + rng.Intn(2)
		g := graph.ErdosRenyiConnected(n, 0.4, 1, 3, rng)
		m := mustMetric(t, g)

		gridSys := quorum.Grid(2)
		ins, err := placement.NewInstance(m, uniformCaps(n, 0.75), gridSys, quorum.Uniform(4))
		if err != nil {
			t.Fatal(err)
		}
		res, avg, err := placement.SolveGridQPP(ins)
		if err != nil {
			t.Fatal(err)
		}
		if !ins.Feasible(res.Placement) {
			t.Fatal("grid QPP violates capacities")
		}
		_, opt, err := exact.SolveQPP(ins)
		if err != nil {
			t.Fatal(err)
		}
		if opt > 0 && avg/opt > 5+1e-9 {
			t.Fatalf("grid trial %d: ratio %v > 5", trial, avg/opt)
		}

		majSys := quorum.Majority(4, 3)
		ins2, err := placement.NewInstance(m, uniformCaps(n, 0.75), majSys, quorum.Uniform(majSys.NumQuorums()))
		if err != nil {
			t.Fatal(err)
		}
		mres, mavg, err := placement.SolveMajorityQPP(ins2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !ins2.Feasible(mres.Placement) {
			t.Fatal("majority QPP violates capacities")
		}
		_, mopt, err := exact.SolveQPP(ins2)
		if err != nil {
			t.Fatal(err)
		}
		if mopt > 0 && mavg/mopt > 5+1e-9 {
			t.Fatalf("majority trial %d: ratio %v > 5", trial, mavg/mopt)
		}
	}
}

// TestTheorem51TotalDelayContract: delay ≤ capacity-respecting optimum,
// loads ≤ 2·cap.
func TestTheorem51TotalDelayContract(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 8; trial++ {
		ins := randomInstance(t, rng)
		res, err := placement.SolveTotalDelay(ins)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, opt, err := exact.SolveTotalDelay(ins)
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		if res.AvgDelay > opt+1e-6 {
			t.Fatalf("trial %d: total delay %v exceeds capacity-respecting optimum %v", trial, res.AvgDelay, opt)
		}
		if res.LPBound > opt+1e-6 {
			t.Fatalf("trial %d: LP bound %v exceeds optimum %v", trial, res.LPBound, opt)
		}
		for v, l := range ins.NodeLoads(res.Placement) {
			if l > 2*ins.Cap[v]+1e-6 {
				t.Fatalf("trial %d: node %d load %v exceeds 2·cap %v", trial, v, l, 2*ins.Cap[v])
			}
		}
	}
}

// TestSSQPPLowerBoundAgainstExact pins the reformulated LP against the
// exact branch-and-bound solvers on randomized instances: every per-source
// Z*(v0) must lower-bound the exact single-source optimum, and the smallest
// Z* over sources must lower-bound the exact QPP optimum (the optimal
// placement is a feasible SSQPP solution for the Lemma 3.1 relay node, and
// min_v0 Δ_{f*}(v0) ≤ Avg_v Δ_{f*}(v)). SolveQPP and SolveQPPParallel must
// also keep returning the same winner on top of the shared LP pipeline.
func TestSSQPPLowerBoundAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		ins := randomInstance(t, rng)
		n := ins.M.N()
		minLP := math.Inf(1)
		for v0 := 0; v0 < n; v0++ {
			lb, err := placement.SSQPPLowerBound(ins, v0)
			if err != nil {
				t.Fatalf("trial %d v0=%d: %v", trial, v0, err)
			}
			_, opt, err := exact.SolveSSQPP(ins, v0)
			if err != nil {
				t.Fatalf("trial %d v0=%d: exact: %v", trial, v0, err)
			}
			if lb > opt+1e-6 {
				t.Fatalf("trial %d v0=%d: LP bound %v exceeds exact SSQPP optimum %v", trial, v0, lb, opt)
			}
			if lb < minLP {
				minLP = lb
			}
		}
		_, qopt, err := exact.SolveQPP(ins)
		if err != nil {
			t.Fatalf("trial %d: exact QPP: %v", trial, err)
		}
		if minLP > qopt+1e-6 {
			t.Fatalf("trial %d: min_v0 Z* = %v exceeds exact QPP optimum %v", trial, minLP, qopt)
		}
		seq, err := placement.SolveQPP(ins, 2)
		if err != nil {
			t.Fatalf("trial %d: SolveQPP: %v", trial, err)
		}
		par, err := placement.SolveQPPParallel(ins, 2, 3)
		if err != nil {
			t.Fatalf("trial %d: SolveQPPParallel: %v", trial, err)
		}
		if seq.BestV0 != par.BestV0 || seq.AvgMaxDelay != par.AvgMaxDelay {
			t.Fatalf("trial %d: sequential (v0=%d, %v) and parallel (v0=%d, %v) disagree",
				trial, seq.BestV0, seq.AvgMaxDelay, par.BestV0, par.AvgMaxDelay)
		}
	}
}

func TestBaselinesRespectCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 10; trial++ {
		ins := randomInstance(t, rng)
		p, err := placement.RandomFeasiblePlacement(ins, rng, 100)
		if err != nil {
			t.Fatalf("trial %d: random: %v", trial, err)
		}
		if !ins.Feasible(p) {
			t.Fatalf("trial %d: random placement infeasible", trial)
		}
		gp, err := placement.BestGreedyPlacement(ins)
		if err != nil {
			t.Fatalf("trial %d: greedy: %v", trial, err)
		}
		if !ins.Feasible(gp) {
			t.Fatalf("trial %d: greedy placement infeasible", trial)
		}
	}
}

func TestAverageStrategies(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, _ := tinySystem(t)
	st1, _ := quorum.NewStrategy([]float64{1, 0})
	st2, _ := quorum.NewStrategy([]float64{0, 1})
	ins, _ := placement.NewInstance(m, uniformCaps(3, 2), sys, quorum.Uniform(2))
	avg, err := placement.AverageStrategies(ins, []quorum.Strategy{st1, st2, st2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.P(0)-1.0/3) > 1e-12 || math.Abs(avg.P(1)-2.0/3) > 1e-12 {
		t.Fatalf("averaged strategy = %v, want [1/3 2/3]", avg.Probs())
	}
	// Rate-weighted average.
	if err := ins.SetRates([]float64{2, 1, 1}); err != nil {
		t.Fatal(err)
	}
	avgW, err := placement.AverageStrategies(ins, []quorum.Strategy{st1, st2, st2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avgW.P(0)-0.5) > 1e-12 {
		t.Fatalf("weighted averaged strategy P(0) = %v, want 0.5", avgW.P(0))
	}
}

func TestAvgMaxDelayPerClient(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, _ := tinySystem(t)
	ins, _ := placement.NewInstance(m, uniformCaps(3, 2), sys, quorum.Uniform(2))
	p := placement.NewPlacement([]int{0, 2})
	st1, _ := quorum.NewStrategy([]float64{1, 0}) // only Q0 = {e0}
	st2, _ := quorum.NewStrategy([]float64{0, 1}) // only Q1 = {e0,e1}
	per := []quorum.Strategy{st1, st2, st1}
	// client 0: δ(0,Q0)=0; client 1: δ(1,Q1)=1; client 2: δ(2,Q0)=2.
	got, err := ins.AvgMaxDelayPerClient(per, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("AvgMaxDelayPerClient = %v, want 1", got)
	}
	if _, err := ins.AvgMaxDelayPerClient(per[:2], p); err == nil {
		t.Fatal("short strategy slice accepted")
	}
}

// TestSolveQPPAveragedStrategies: the §6 extension returns a placement
// whose per-client objective is still within the theorem bound of the
// exact per-client optimum for small instances.
func TestSolveQPPAveragedStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ins := randomInstance(t, rng)
	nQ := ins.Sys.NumQuorums()
	per := make([]quorum.Strategy, ins.M.N())
	for v := range per {
		p := make([]float64, nQ)
		sum := 0.0
		for i := range p {
			p[i] = 0.1 + rng.Float64()
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		st, err := quorum.NewStrategy(p)
		if err != nil {
			t.Fatal(err)
		}
		per[v] = st
	}
	res, err := placement.SolveQPPAveragedStrategies(ins, per, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.AvgMaxDelayPerClient(per, res.Placement); err != nil {
		t.Fatal(err)
	}
	for v, l := range ins.NodeLoads(res.Placement) {
		// Loads are computed under the average strategy inside the solver;
		// here we only check the placement is structurally valid.
		_ = l
		_ = v
	}
	if err := ins.Validate(res.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestBestRelayNodeMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	ins := randomInstance(t, rng)
	p, err := placement.RandomFeasiblePlacement(ins, rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	v0, d0 := ins.BestRelayNode(p)
	for v := 0; v < ins.M.N(); v++ {
		if ins.MaxDelayFrom(v, p) < d0-1e-12 {
			t.Fatalf("BestRelayNode returned %d (Δ=%v) but node %d has Δ=%v", v0, d0, v, ins.MaxDelayFrom(v, p))
		}
	}
}

// TestScalingInvariance exercises the whole pipeline's homogeneity: scaling
// every edge length by c scales the LP bound, the SSQPP delay, the QPP
// delay, and the total delay by exactly c, and leaves feasibility and load
// factors untouched.
func TestScalingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := graph.ErdosRenyiConnected(7, 0.4, 1, 3, rng)
	scaled := graph.Scale(g, 3.5)
	sys := quorum.Majority(4, 3)
	st := quorum.Uniform(sys.NumQuorums())
	caps := uniformCaps(7, 0.8)
	m1 := mustMetric(t, g)
	m2 := mustMetric(t, scaled)
	ins1, err := placement.NewInstance(m1, caps, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	ins2, err := placement.NewInstance(m2, caps, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	const c = 3.5

	lb1, err := placement.SSQPPLowerBound(ins1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb2, err := placement.SSQPPLowerBound(ins2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb2-c*lb1) > 1e-6*(1+lb2) {
		t.Fatalf("LP bound not homogeneous: %v vs %v·%v", lb2, c, lb1)
	}

	r1, err := placement.SolveSSQPP(ins1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := placement.SolveSSQPP(ins2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Delay-c*r1.Delay) > 1e-6*(1+r2.Delay) {
		t.Fatalf("SSQPP delay not homogeneous: %v vs %v·%v", r2.Delay, c, r1.Delay)
	}
	if v1, v2 := ins1.CapacityViolation(r1.Placement), ins2.CapacityViolation(r2.Placement); math.Abs(v1-v2) > 1e-9 {
		t.Fatalf("load factor changed under scaling: %v vs %v", v1, v2)
	}

	t1, err := placement.SolveTotalDelay(ins1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := placement.SolveTotalDelay(ins2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t2.AvgDelay-c*t1.AvgDelay) > 1e-6*(1+t2.AvgDelay) {
		t.Fatalf("total delay not homogeneous: %v vs %v·%v", t2.AvgDelay, c, t1.AvgDelay)
	}
}
