package placement

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"quorumplace/internal/obs"
)

// Parallel QPP solving. SolveQPP runs one independent SSQPP pipeline per
// candidate source; the pipelines share nothing mutable, so they
// parallelize perfectly. SolveQPPParallel fans the sources out over a
// bounded worker pool and reduces the results deterministically (the same
// winner as the sequential solver: best average max-delay, ties broken by
// the smaller source id).

// SolveQPPParallel is SolveQPP with the per-source SSQPP solves spread
// across workers goroutines (0 = GOMAXPROCS). The result is identical to
// SolveQPP's for the same instance and α.
func SolveQPPParallel(ins *Instance, alpha float64, workers int) (*QPPResult, error) {
	n := ins.M.N()
	if n == 0 {
		return nil, fmt.Errorf("placement: empty network")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Workers run SSQPP pipelines concurrently, so their spans may attribute
	// to whichever span is innermost at the time (see the obs package doc);
	// metrics and counters aggregate exactly regardless.
	sp := obs.Start("placement.qpp_parallel")
	defer sp.End()
	obs.Count("placement.qpp_sources", int64(n))
	obs.Gauge("placement.qpp_workers", float64(workers))

	type outcome struct {
		res *SSQPPResult
		avg float64
		err error
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v0 := range next {
				res, err := SolveSSQPP(ins, v0, alpha)
				if err != nil {
					outcomes[v0] = outcome{err: err}
					continue
				}
				outcomes[v0] = outcome{res: res, avg: ins.AvgMaxDelay(res.Placement)}
			}
		}()
	}
	for v0 := 0; v0 < n; v0++ {
		next <- v0
	}
	close(next)
	wg.Wait()

	var best *QPPResult
	bestRelay := math.Inf(1)
	maxLP := 0.0
	var firstErr error
	for v0 := 0; v0 < n; v0++ {
		o := outcomes[v0]
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if relay := ins.AvgDistToNode(v0) + alpha/(alpha-1)*o.res.LPBound; relay < bestRelay {
			bestRelay = relay
		}
		if o.res.LPBound > maxLP {
			maxLP = o.res.LPBound
		}
		if best == nil || o.avg < best.AvgMaxDelay {
			best = &QPPResult{
				Placement:   o.res.Placement,
				AvgMaxDelay: o.avg,
				BestV0:      v0,
				Alpha:       alpha,
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("placement: SSQPP failed for every source: %w", firstErr)
	}
	best.RelayBound = bestRelay
	best.MaxLPBound = maxLP
	return best, nil
}
