package placement

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"quorumplace/internal/obs"
)

// The QPP reduction runs one independent SSQPP pipeline per candidate
// source; the pipelines share nothing mutable beyond the instance's cached
// LP skeletons (read lock-free once pre-built), so they parallelize
// perfectly. solveQPP is the single implementation behind SolveQPP
// (workers = 1, run inline) and SolveQPPParallel (bounded worker pool).
//
// The parallel path is shaped to keep workers off shared state:
//
//  1. prebuild — every skeleton class count the sources induce is built
//     up-front, so workers only ever take the lock-free read path of the
//     model cache and never serialize on Instance.modelMu;
//  2. fan-out — workers claim chunked index ranges off one atomic counter
//     (no per-item channel handoff, no send/recv wakeup per source);
//  3. reduce — each worker folds its sources into a private qppPartial
//     (including the AvgMaxDelay evaluation of each candidate placement),
//     and the partials are merged deterministically at the end.
//
// The reduction rule — best average max-delay wins, exact ties broken by
// the smaller source id — is associative and commutative, so the merge
// order cannot change the result and sequential and parallel solvers
// return identical placements and bounds.

// qppPartial folds per-source SSQPP outcomes. Its accumulate/merge rule
// reproduces the sequential ascending-v0 scan exactly: strictly smaller
// average wins, an equal average keeps the smaller source id, the relay
// bound is a min, the LP bound a max, and the surviving error is the one
// from the smallest failing source.
type qppPartial struct {
	res   *SSQPPResult
	avg   float64
	v0    int
	relay float64
	maxLP float64
	err   error
	errV0 int
}

func (p *qppPartial) init() { p.relay = math.Inf(1) }

func (p *qppPartial) add(ins *Instance, alpha float64, v0 int, res *SSQPPResult, err error) {
	if err != nil {
		if p.err == nil || v0 < p.errV0 {
			p.err, p.errV0 = err, v0
		}
		return
	}
	if relay := ins.AvgDistToNode(v0) + alpha/(alpha-1)*res.LPBound; relay < p.relay {
		p.relay = relay
	}
	if res.LPBound > p.maxLP {
		p.maxLP = res.LPBound
	}
	avg := ins.AvgMaxDelay(res.Placement)
	if p.res == nil || avg < p.avg || (avg == p.avg && v0 < p.v0) {
		p.res, p.avg, p.v0 = res, avg, v0
	}
}

func (p *qppPartial) merge(q *qppPartial) {
	if q.err != nil && (p.err == nil || q.errV0 < p.errV0) {
		p.err, p.errV0 = q.err, q.errV0
	}
	if q.relay < p.relay {
		p.relay = q.relay
	}
	if q.maxLP > p.maxLP {
		p.maxLP = q.maxLP
	}
	if q.res != nil && (p.res == nil || q.avg < p.avg || (q.avg == p.avg && q.v0 < p.v0)) {
		p.res, p.avg, p.v0 = q.res, q.avg, q.v0
	}
}

// solveQPP fans the per-source SSQPP solves over the given number of
// workers (1 = inline, no goroutines) and reduces the outcomes. parent is
// the span the fan-out runs under (nil for the sequential entry point):
// each worker buffers its telemetry in an obs.Shard whose spans re-parent
// under it, so recording is contention-free and the merged trace nests
// worker pipelines exactly where they belong.
func solveQPP(ins *Instance, alpha float64, workers int, parent *obs.Span) (*QPPResult, error) {
	n := ins.M.N()
	if n == 0 {
		return nil, fmt.Errorf("placement: empty network")
	}
	obs.Count("placement.qpp_sources", int64(n))

	var total qppPartial
	total.init()
	if workers <= 1 {
		// Each solver owns re-costable skeleton clones, an LP workspace and
		// a rounding-flow workspace, all reused across the sources it
		// handles; only the skeleton builds are shared through the instance
		// cache.
		sv := newSSQPPSolver(ins)
		for v0 := 0; v0 < n; v0++ {
			res, err := sv.solve(v0, alpha)
			total.add(ins, alpha, v0, res, err)
		}
	} else {
		ins.prebuildSSQPPModels()
		// Chunks of a few sources amortize the atomic claim without
		// sacrificing balance: ~4 claims per worker keeps the tail short
		// even when per-source solve times vary.
		chunk := n / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
		partials := make([]qppPartial, workers)
		shards := make([]*obs.Shard, workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			shards[w] = obs.NewShard(parent)
			go func(p *qppPartial, sh *obs.Shard) {
				defer wg.Done()
				p.init()
				wsp := sh.Start("placement.qpp_worker")
				defer wsp.End()
				sv := newSSQPPSolver(ins)
				sv.setRec(sh.Rec())
				for {
					lo := int(next.Add(int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					for v0 := lo; v0 < hi; v0++ {
						res, err := sv.solve(v0, alpha)
						p.add(ins, alpha, v0, res, err)
					}
				}
			}(&partials[w], shards[w])
		}
		wg.Wait()
		// Merging partials and shards in worker order keeps both the result
		// and the combined telemetry deterministic.
		for w := range partials {
			total.merge(&partials[w])
			shards[w].Merge()
		}
	}

	if total.res == nil {
		return nil, fmt.Errorf("placement: SSQPP failed for every source: %w", total.err)
	}
	return &QPPResult{
		Placement:   total.res.Placement,
		AvgMaxDelay: total.avg,
		BestV0:      total.v0,
		Alpha:       alpha,
		RelayBound:  total.relay,
		MaxLPBound:  total.maxLP,
	}, nil
}

// SolveQPPParallel is SolveQPP with the per-source SSQPP solves spread
// across workers goroutines (0 = GOMAXPROCS). The result is identical to
// SolveQPP's for the same instance and α.
func SolveQPPParallel(ins *Instance, alpha float64, workers int) (*QPPResult, error) {
	n := ins.M.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Each worker records through its own obs.Shard parented under this
	// span, so the merged trace shows one placement.qpp_worker subtree per
	// worker with the per-source pipelines correctly nested beneath it.
	sp := obs.Start("placement.qpp_parallel")
	defer sp.End()
	obs.Gauge("placement.qpp_workers", float64(workers))
	return solveQPP(ins, alpha, workers, sp)
}
