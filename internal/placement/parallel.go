package placement

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"quorumplace/internal/obs"
)

// The QPP reduction runs one independent SSQPP pipeline per candidate
// source; the pipelines share nothing mutable beyond the instance's cached
// LP skeletons, so they parallelize perfectly. solveQPP is the single
// implementation behind SolveQPP (workers = 1, run inline) and
// SolveQPPParallel (bounded worker pool): both record per-source outcomes
// into a slice and reduce them with the same deterministic rule — best
// average max-delay wins, ties broken by the smaller source id — so the
// sequential and parallel solvers return identical results.

// solveQPP fans the per-source SSQPP solves over the given number of
// workers (1 = inline, no goroutines) and reduces the outcomes.
func solveQPP(ins *Instance, alpha float64, workers int) (*QPPResult, error) {
	n := ins.M.N()
	if n == 0 {
		return nil, fmt.Errorf("placement: empty network")
	}
	obs.Count("placement.qpp_sources", int64(n))

	type outcome struct {
		res *SSQPPResult
		avg float64
		err error
	}
	outcomes := make([]outcome, n)
	// Each worker owns one ssqppSolver: the skeleton builds are shared
	// through the instance cache, while the re-costable clones and the LP
	// workspace are reused across all sources the worker handles.
	solveOne := func(sv *ssqppSolver, v0 int) {
		res, err := sv.solve(v0, alpha)
		if err != nil {
			outcomes[v0] = outcome{err: err}
			return
		}
		outcomes[v0] = outcome{res: res, avg: ins.AvgMaxDelay(res.Placement)}
	}
	if workers <= 1 {
		sv := newSSQPPSolver(ins)
		for v0 := 0; v0 < n; v0++ {
			solveOne(sv, v0)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sv := newSSQPPSolver(ins)
				for v0 := range next {
					solveOne(sv, v0)
				}
			}()
		}
		for v0 := 0; v0 < n; v0++ {
			next <- v0
		}
		close(next)
		wg.Wait()
	}

	var best *QPPResult
	bestRelay := math.Inf(1)
	maxLP := 0.0
	var firstErr error
	for v0 := 0; v0 < n; v0++ {
		o := outcomes[v0]
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if relay := ins.AvgDistToNode(v0) + alpha/(alpha-1)*o.res.LPBound; relay < bestRelay {
			bestRelay = relay
		}
		if o.res.LPBound > maxLP {
			maxLP = o.res.LPBound
		}
		if best == nil || o.avg < best.AvgMaxDelay {
			best = &QPPResult{
				Placement:   o.res.Placement,
				AvgMaxDelay: o.avg,
				BestV0:      v0,
				Alpha:       alpha,
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("placement: SSQPP failed for every source: %w", firstErr)
	}
	best.RelayBound = bestRelay
	best.MaxLPBound = maxLP
	return best, nil
}

// SolveQPPParallel is SolveQPP with the per-source SSQPP solves spread
// across workers goroutines (0 = GOMAXPROCS). The result is identical to
// SolveQPP's for the same instance and α.
func SolveQPPParallel(ins *Instance, alpha float64, workers int) (*QPPResult, error) {
	n := ins.M.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Workers run SSQPP pipelines concurrently, so their spans may attribute
	// to whichever span is innermost at the time (see the obs package doc);
	// metrics and counters aggregate exactly regardless.
	sp := obs.Start("placement.qpp_parallel")
	defer sp.End()
	obs.Gauge("placement.qpp_workers", float64(workers))
	return solveQPP(ins, alpha, workers)
}
