// Package placement implements the paper's core contribution: algorithms
// that place a quorum system's logical elements onto the nodes of a network
// so that client access delay is approximately minimized while node loads
// stay within a bounded factor of their capacities.
//
// The package covers:
//
//   - the Quorum Placement Problem (QPP, Problem 1.1) under the average
//     max-delay objective, via the reduction to a single source (Lemma 3.1,
//     Theorem 3.3) and LP rounding (Theorem 1.2);
//   - the Single-Source QPP (SSQPP, Problem 3.2) LP (9)–(14), α-filtering
//     and Shmoys–Tardos rounding (Theorems 3.7 and 3.12);
//   - optimal single-source layouts for the Grid (§4.1, Appendix B) and
//     Majority (§4.2, Eq. 19) systems, giving Theorem 1.3;
//   - the total-delay objective solved directly through the Generalized
//     Assignment Problem (Theorem 5.1 / Theorem 1.4);
//   - baseline placements (random and greedy) used by the evaluation.
package placement

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"quorumplace/internal/graph"
	"quorumplace/internal/quorum"
)

// capTol absorbs floating-point noise in capacity comparisons: a node may
// carry up to cap(v)·(1+capTol) before being considered over capacity.
const capTol = 1e-9

// Instance is a Quorum Placement Problem instance: a network metric with
// per-node capacities, a quorum system over a logical universe, and an
// access strategy. Client access rates are uniform unless Rates is set
// (the §6 extension). Construct with NewInstance.
type Instance struct {
	M     *graph.Metric
	Cap   []float64
	Sys   *quorum.System
	Strat quorum.Strategy

	// Rates holds optional per-client access rates (relative weights, need
	// not sum to 1). nil means uniform. Averages over clients are weighted
	// by Rates, implementing the "different access rates" extension of §6.
	Rates []float64

	loads []float64 // cached element loads under Strat

	// Lazily built SSQPP LP skeletons, one per distance-class count (see
	// ssqppmodel.go). Builds depend only on construction-time state plus the
	// class count, so the cache is shared by every source and every
	// concurrent solve. Readers load the immutable map through the atomic
	// pointer without locking; writers clone-and-swap under modelMu.
	modelMu sync.Mutex
	models  atomic.Pointer[map[int]*ssqppModel]
}

// NewInstance validates the inputs and caches the element loads.
func NewInstance(m *graph.Metric, cap []float64, sys *quorum.System, strat quorum.Strategy) (*Instance, error) {
	if m == nil || sys == nil {
		return nil, errors.New("placement: nil metric or system")
	}
	if len(cap) != m.N() {
		return nil, fmt.Errorf("placement: %d capacities for %d nodes", len(cap), m.N())
	}
	for v, c := range cap {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("placement: capacity of node %d is %v", v, c)
		}
	}
	loads, err := sys.Loads(strat)
	if err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	return &Instance{M: m, Cap: cap, Sys: sys, Strat: strat, loads: loads}, nil
}

// SetRates installs per-client access rates (the §6 extension). Rates must
// be non-negative with a positive sum; pass nil to restore uniform rates.
func (ins *Instance) SetRates(rates []float64) error {
	if rates == nil {
		ins.Rates = nil
		return nil
	}
	if len(rates) != ins.M.N() {
		return fmt.Errorf("placement: %d rates for %d clients", len(rates), ins.M.N())
	}
	sum := 0.0
	for v, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("placement: rate of client %d is %v", v, r)
		}
		sum += r
	}
	if sum <= 0 {
		return errors.New("placement: rates sum to zero")
	}
	ins.Rates = append([]float64(nil), rates...)
	return nil
}

// Load returns the load of logical element u under the instance strategy:
// load(u) = Σ_{Q ∋ u} p(Q).
func (ins *Instance) Load(u int) float64 { return ins.loads[u] }

// Loads returns a copy of all element loads.
func (ins *Instance) Loads() []float64 { return append([]float64(nil), ins.loads...) }

// TotalLoad returns Σ_u load(u), which any placement must fit into the
// total capacity.
func (ins *Instance) TotalLoad() float64 {
	sum := 0.0
	for _, l := range ins.loads {
		sum += l
	}
	return sum
}

// Placement is a map f : U → V from logical elements to network nodes.
type Placement struct {
	f []int
}

// NewPlacement wraps the element→node map f (copied).
func NewPlacement(f []int) Placement {
	return Placement{f: append([]int(nil), f...)}
}

// Node returns f(u).
func (p Placement) Node(u int) int { return p.f[u] }

// Len returns the universe size.
func (p Placement) Len() int { return len(p.f) }

// Map returns a copy of the underlying element→node map.
func (p Placement) Map() []int { return append([]int(nil), p.f...) }

// Validate checks that the placement covers exactly the instance universe
// and maps into the node range.
func (ins *Instance) Validate(p Placement) error {
	if p.Len() != ins.Sys.Universe() {
		return fmt.Errorf("placement: maps %d elements, universe has %d", p.Len(), ins.Sys.Universe())
	}
	for u, v := range p.f {
		if v < 0 || v >= ins.M.N() {
			return fmt.Errorf("placement: element %d mapped to invalid node %d", u, v)
		}
	}
	return nil
}

// NodeLoads returns load_f(v) = Σ_{u : f(u)=v} load(u) for every node.
func (ins *Instance) NodeLoads(p Placement) []float64 {
	loads := make([]float64, ins.M.N())
	for u, v := range p.f {
		loads[v] += ins.loads[u]
	}
	return loads
}

// CapacityViolation returns the largest ratio load_f(v)/cap(v) over nodes
// with positive placed load (0 if the placement is empty). A value ≤ 1
// means the placement respects all capacities. A node with zero capacity
// and positive load yields +Inf.
func (ins *Instance) CapacityViolation(p Placement) float64 {
	worst := 0.0
	for v, l := range ins.NodeLoads(p) {
		if l <= 0 {
			continue
		}
		if ins.Cap[v] <= 0 {
			return math.Inf(1)
		}
		if r := l / ins.Cap[v]; r > worst {
			worst = r
		}
	}
	return worst
}

// Feasible reports whether the placement respects every node capacity
// (within the floating-point tolerance).
func (ins *Instance) Feasible(p Placement) bool {
	for v, l := range ins.NodeLoads(p) {
		if l > ins.Cap[v]*(1+capTol)+capTol {
			return false
		}
	}
	return true
}

// QuorumMaxDelay returns δ_f(v, Q_i) = max_{u ∈ Q_i} d(v, f(u)) (Eq. 1).
func (ins *Instance) QuorumMaxDelay(v, qi int, p Placement) float64 {
	max := 0.0
	row := ins.M.Row(v)
	for _, u := range ins.Sys.Quorum(qi) {
		if d := row[p.f[u]]; d > max {
			max = d
		}
	}
	return max
}

// QuorumTotalDelay returns γ_f(v, Q_i) = Σ_{u ∈ Q_i} d(v, f(u)) (§5).
func (ins *Instance) QuorumTotalDelay(v, qi int, p Placement) float64 {
	sum := 0.0
	row := ins.M.Row(v)
	for _, u := range ins.Sys.Quorum(qi) {
		sum += row[p.f[u]]
	}
	return sum
}

// MaxDelayFrom returns Δ_f(v) = Σ_Q p(Q) δ_f(v, Q) (Eq. 2), the expected
// max-delay for client v under the instance strategy.
func (ins *Instance) MaxDelayFrom(v int, p Placement) float64 {
	return ins.MaxDelayFromWithStrategy(v, ins.Strat, p)
}

// MaxDelayFromWithStrategy is MaxDelayFrom under an explicit per-client
// strategy (the §6 per-client extension).
func (ins *Instance) MaxDelayFromWithStrategy(v int, st quorum.Strategy, p Placement) float64 {
	sum := 0.0
	for qi := 0; qi < ins.Sys.NumQuorums(); qi++ {
		if pq := st.P(qi); pq > 0 {
			sum += pq * ins.QuorumMaxDelay(v, qi, p)
		}
	}
	return sum
}

// TotalDelayFrom returns Γ_f(v) = Σ_Q p(Q) γ_f(v, Q), the expected
// total-delay for client v. It exploits the identity
// Γ_f(v) = Σ_u load(u) · d(v, f(u)).
func (ins *Instance) TotalDelayFrom(v int, p Placement) float64 {
	sum := 0.0
	row := ins.M.Row(v)
	for u, node := range p.f {
		sum += ins.loads[u] * row[node]
	}
	return sum
}

// avgOverClients returns the (rate-weighted) average of g(v) over clients.
func (ins *Instance) avgOverClients(g func(v int) float64) float64 {
	n := ins.M.N()
	if ins.Rates == nil {
		sum := 0.0
		for v := 0; v < n; v++ {
			sum += g(v)
		}
		return sum / float64(n)
	}
	sum, wsum := 0.0, 0.0
	for v := 0; v < n; v++ {
		sum += ins.Rates[v] * g(v)
		wsum += ins.Rates[v]
	}
	return sum / wsum
}

// AvgMaxDelay returns Avg_{v∈V} Δ_f(v), the QPP objective (Problem 1.1),
// weighted by client rates when set.
func (ins *Instance) AvgMaxDelay(p Placement) float64 {
	return ins.avgOverClients(func(v int) float64 { return ins.MaxDelayFrom(v, p) })
}

// AvgTotalDelay returns Avg_{v∈V} Γ_f(v), the §5 objective.
func (ins *Instance) AvgTotalDelay(p Placement) float64 {
	return ins.avgOverClients(func(v int) float64 { return ins.TotalDelayFrom(v, p) })
}

// AvgDistToNode returns the rate-weighted Avg_{v∈V} d(v, v0) term of the
// relay decomposition (Eq. 8).
func (ins *Instance) AvgDistToNode(v0 int) float64 {
	return ins.avgOverClients(func(v int) float64 { return ins.M.D(v, v0) })
}

// RelayDelay returns the average delay of the "relay-via-v0" strategy of
// Lemma 3.1: Avg_v [ d(v, v0) + Δ_f(v0) ] = Avg_v d(v, v0) + Δ_f(v0).
func (ins *Instance) RelayDelay(v0 int, p Placement) float64 {
	return ins.AvgDistToNode(v0) + ins.MaxDelayFrom(v0, p)
}

// BestRelayNode returns the node v0 minimizing Δ_f(v0) — the special node
// of Lemma 3.1 (computable in polynomial time by trying all nodes) — along
// with Δ_f(v0).
func (ins *Instance) BestRelayNode(p Placement) (int, float64) {
	best, bestVal := 0, math.Inf(1)
	for v := 0; v < ins.M.N(); v++ {
		if d := ins.MaxDelayFrom(v, p); d < bestVal {
			best, bestVal = v, d
		}
	}
	return best, bestVal
}
