package placement

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/quorum"
	"quorumplace/internal/treedp"
)

// bigTreeInstance builds an instance above the exact-DP auto-gate floor:
// an n-node random tree metric with a Majority(5,3) system and capacities
// loose enough that many placements are feasible but tight enough that
// elements still contend.
func bigTreeInstance(t *testing.T, n int, seed int64) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomTree(n, 0.2, 2.0, rng)
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	sys := quorum.Majority(5, 3)
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.4 + rng.Float64()
	}
	ins, err := NewInstance(m, caps, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestExactDPAutoGate(t *testing.T) {
	big := bigTreeInstance(t, exactDPMinNodes, 1)
	if !big.exactDPAuto() {
		t.Fatalf("%d nodes with universe %d must take the DP path", exactDPMinNodes, big.Sys.Universe())
	}
	small := bigTreeInstance(t, exactDPMinNodes-1, 1)
	if small.exactDPAuto() {
		t.Fatal("instances below the node floor must stay on the LP pipeline")
	}

	// A 16-element universe clears the treedp hard limit but not the ops
	// budget at gate-eligible sizes: n·3^16 > exactDPOpsBudget for n ≥ 64.
	wide := make([]int, treedp.MaxUniverse)
	for i := range wide {
		wide[i] = i
	}
	sys, err := quorum.NewSystem("wide", treedp.MaxUniverse, [][]int{wide})
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, exactDPMinNodes)
	for i := range caps {
		caps[i] = float64(treedp.MaxUniverse)
	}
	rng := rand.New(rand.NewSource(2))
	m, err := graph.NewMetricFromGraph(graph.RandomTree(exactDPMinNodes, 0.2, 2.0, rng))
	if err != nil {
		t.Fatal(err)
	}
	ins, err := NewInstance(m, caps, sys, quorum.Uniform(1))
	if err != nil {
		t.Fatal(err)
	}
	if ins.exactDPAuto() {
		t.Fatalf("estimated ops %v exceed the budget %v; gate must reject", treedp.EstimatedOps(exactDPMinNodes, treedp.MaxUniverse), exactDPOpsBudget)
	}
}

func TestSolveSSQPPExactValidation(t *testing.T) {
	ins := bigTreeInstance(t, 16, 3)
	if _, err := SolveSSQPPExact(ins, 0, 1); err == nil {
		t.Fatal("alpha = 1 must be rejected")
	}
	if _, err := SolveSSQPPExact(ins, ins.M.N(), 2); err == nil {
		t.Fatal("out-of-range source must be rejected")
	}
}

// Above the gate, SolveSSQPP must return exactly what SolveSSQPPExact
// returns — optimal, feasible, and self-consistent — and must dominate the
// LP pipeline run on the same source: at least the LP lower bound, at most
// any capacity-respecting rounded placement.
func TestAutoSSQPPMatchesExactAtScale(t *testing.T) {
	const alpha = 2.0
	for seed := int64(1); seed <= 4; seed++ {
		ins := bigTreeInstance(t, 64+int(seed)*7, seed)
		if !ins.exactDPAuto() {
			t.Fatal("test instance must be gate-eligible")
		}
		for _, v0 := range []int{0, ins.M.N() / 2, ins.M.N() - 1} {
			auto, err := SolveSSQPP(ins, v0, alpha)
			if err != nil {
				t.Fatalf("seed %d v0=%d: %v", seed, v0, err)
			}
			exact, err := SolveSSQPPExact(ins, v0, alpha)
			if err != nil {
				t.Fatalf("seed %d v0=%d: %v", seed, v0, err)
			}
			if !reflect.DeepEqual(auto, exact) {
				t.Fatalf("seed %d v0=%d: auto route diverges from explicit exact solve:\n  auto  %+v\n  exact %+v", seed, v0, auto, exact)
			}
			if !ins.Feasible(exact.Placement) {
				t.Fatalf("seed %d v0=%d: exact placement violates capacities", seed, v0)
			}
			if d := ins.MaxDelayFrom(v0, exact.Placement); math.Abs(d-exact.Delay) > 1e-9*(1+d) {
				t.Fatalf("seed %d v0=%d: Delay %v, recomputed %v", seed, v0, exact.Delay, d)
			}
			if math.Abs(exact.Delay-exact.LPBound) > 1e-9*(1+exact.Delay) {
				t.Fatalf("seed %d v0=%d: exact result must carry its optimum as LPBound: Delay %v, LPBound %v", seed, v0, exact.Delay, exact.LPBound)
			}

			// LP relaxation on the same source: Z* lower-bounds the optimum,
			// and a capacity-respecting rounded placement cannot beat it.
			// The LP at this size is exactly what the fast path avoids
			// (seconds per solve), so cross-check one source per sweep.
			if seed != 1 || v0 != 0 {
				continue
			}
			sv := newSSQPPSolver(ins)
			frac, err := sv.solveLP(v0)
			if err != nil {
				t.Fatalf("seed %d v0=%d: LP: %v", seed, v0, err)
			}
			if exact.Delay < frac.obj-1e-6*(1+frac.obj) {
				t.Fatalf("seed %d v0=%d: exact optimum %v below LP bound %v", seed, v0, exact.Delay, frac.obj)
			}
			pl, err := sv.roundFiltered(frac, filter(frac.xu, alpha), alpha)
			if err != nil {
				t.Fatalf("seed %d v0=%d: rounding: %v", seed, v0, err)
			}
			if ins.Feasible(pl) {
				if lpDelay := ins.MaxDelayFrom(v0, pl); exact.Delay > lpDelay+1e-9*(1+lpDelay) {
					t.Fatalf("seed %d v0=%d: exact delay %v loses to feasible LP rounding %v", seed, v0, exact.Delay, lpDelay)
				}
			}
		}
	}
}

// The DP fast path must not perturb the parallel/sequential QPP identity:
// above the gate both sweeps route every source through the DP and must
// stay bitwise equal.
func TestQPPParallelMatchesSequentialWithExactDP(t *testing.T) {
	ins := bigTreeInstance(t, 70, 9)
	if !ins.exactDPAuto() {
		t.Fatal("test instance must be gate-eligible")
	}
	seq, err := SolveQPP(ins, 2)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveQPPParallel(ins, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel/sequential divergence with the DP fast path:\n  sequential %+v\n  parallel   %+v", seq, par)
	}
}
