package placement_test

import (
	"math/rand"
	"os"
	"strings"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func TestAuditBasics(t *testing.T) {
	m := mustMetric(t, graph.Path(4))
	sys := quorum.Majority(3, 2)
	ins, err := placement.NewInstance(m, []float64{1, 1, 1, 1}, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement([]int{0, 1, 2})
	r, err := ins.Audit(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgMaxDelay != ins.AvgMaxDelay(p) {
		t.Fatalf("AvgMaxDelay %v != %v", r.AvgMaxDelay, ins.AvgMaxDelay(p))
	}
	if r.AvgTotalDelay != ins.AvgTotalDelay(p) {
		t.Fatalf("AvgTotalDelay mismatch")
	}
	if r.UsedNodes != 3 {
		t.Fatalf("UsedNodes = %d, want 3", r.UsedNodes)
	}
	if len(r.HotNodes) != 0 {
		t.Fatalf("unexpected hot nodes: %v", r.HotNodes)
	}
	if r.CapacityViolation > 1 {
		t.Fatalf("feasible placement reports violation %v", r.CapacityViolation)
	}
	// Worst client on a path with elements at 0..2 is node 3.
	if r.WorstClient != 3 {
		t.Fatalf("WorstClient = %d, want 3", r.WorstClient)
	}
	if r.RelayFactor > 5 {
		t.Fatalf("relay factor %v > 5", r.RelayFactor)
	}
	if r.NodeResilience != 1 { // Majority(3,2) spread bijectively
		t.Fatalf("NodeResilience = %d, want 1", r.NodeResilience)
	}
	out := r.String()
	for _, want := range []string{"avg max-delay", "relay factor", "node resilience"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAuditHotNodes(t *testing.T) {
	m := mustMetric(t, graph.Path(4))
	sys := quorum.Majority(3, 2)
	ins, err := placement.NewInstance(m, []float64{0.7, 1, 0, 1}, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	// Two elements (load 2/3 each) on node 0 (cap 0.7): load 4/3 > 0.7.
	// One element on node 2 with cap 0: infinite violation.
	p := placement.NewPlacement([]int{0, 0, 2})
	r, err := ins.Audit(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HotNodes) != 2 {
		t.Fatalf("hot nodes = %v, want 2 entries", r.HotNodes)
	}
	// Zero-capacity violation sorts first.
	if r.HotNodes[0].Node != 2 || r.HotNodes[0].Factor >= 0 {
		t.Fatalf("expected zero-capacity node first: %v", r.HotNodes)
	}
	if r.HotNodes[1].Node != 0 {
		t.Fatalf("expected node 0 second: %v", r.HotNodes)
	}
	if !strings.Contains(r.String(), "zero-capacity node") {
		t.Fatalf("report missing zero-capacity note:\n%s", r.String())
	}
}

func TestAuditValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	ins := randomInstance(t, rng)
	if _, err := ins.Audit(placement.NewPlacement([]int{0})); err == nil {
		t.Fatal("short placement accepted")
	}
}

// TestAuditOnBundledWAN is an end-to-end integration test: load the bundled
// dataset, place a system, audit the result.
func TestAuditOnBundledWAN(t *testing.T) {
	g := loadBundledWAN(t)
	m := mustMetric(t, g)
	sys := quorum.FPP(2)
	caps := make([]float64, g.N())
	for i := range caps {
		caps[i] = 0.5
	}
	ins, err := placement.NewInstance(m, caps, sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := placement.SolveQPP(ins, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ins.Audit(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if r.CapacityViolation > 3+1e-9 {
		t.Fatalf("violation %v exceeds α+1", r.CapacityViolation)
	}
	if r.RelayFactor > 5+1e-9 {
		t.Fatalf("relay factor %v exceeds 5", r.RelayFactor)
	}
	if r.AvgMaxDelay <= 0 || r.AvgMaxDelay > 200 {
		t.Fatalf("implausible WAN delay %v ms", r.AvgMaxDelay)
	}
}

func loadBundledWAN(t *testing.T) *graph.Graph {
	t.Helper()
	f, err := os.Open("../../data/wan12.edges")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ParseEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
