package placement

import (
	"fmt"
	"sort"

	"quorumplace/internal/gap"
	"quorumplace/internal/lp"
	"quorumplace/internal/obs"
)

// This file builds the SSQPP LP (9)–(14) as a reusable model skeleton in a
// sparse "prefix" (telescoped) form over distance classes.
//
// # Distance-class aggregation
//
// The LP sees a rank t only through its distance d_t and the capacity
// cap(v_t) (which also determines the constraint-(13) forbidden set). Ranks
// with identical (distance, capacity) are therefore interchangeable, and the
// LP may be solved over *classes* of such ranks: class c carries distance
// d_c, per-node capacity cap_c, and aggregate capacity g_c·cap_c for a class
// of g_c nodes. This is exact:
//
//   - a class solution with Σ_u load(u)·x_{cu} ≤ g_c·cap_c splits evenly
//     into g_c per-rank solutions each loading at most cap_c;
//   - under an even split, the dense constraint (14) at a mid-class rank is
//     a convex combination of its values at the two class boundaries, so
//     enforcing (14) at class boundaries only is enough;
//   - the objective and (13) depend only on (d_c, cap_c).
//
// expandClasses undoes the aggregation on extraction. On metrics with many
// equidistant nodes (grids, stars, the broom family) the class count C is
// far below n, shrinking the LP quadratically.
//
// # Prefix reformulation
//
// The paper's constraint (14) is, for every quorum Q, element u ∈ Q and
// prefix boundary c:
//
//	Σ_{b≤c} x_{bQ} ≤ Σ_{b≤c} x_{bu}                                (14)
//
// Written directly, the (Q,u) pair contributes Σ_c 2(c+1) = O(C²) nonzeros.
// The skeleton instead introduces cumulative prefix variables
//
//	X_{cu} = Σ_{b≤c} x_{bu}    and    X_{cQ} = Σ_{b≤c} x_{bQ}
//
// defined by telescoped chains (three nonzeros per row):
//
//	X_{0u} − x_{0u} = 0
//	X_{cu} − X_{c−1,u} − x_{cu} = 0        for 1 ≤ c ≤ C−2
//	X_{C−2,u} + x_{C−1,u} = 1              (this is exactly (10))
//
// and likewise for the quorum variables, with the closing row playing the
// role of (11). Constraint (14) then becomes the two-nonzero row
//
//	X_{cQ} − X_{cu} ≤ 0        for 0 ≤ c ≤ C−2,
//
// so a (Q,u) pair costs O(C) nonzeros in total. The reformulation is
// exactly equivalent: the chains force X_{cu} = Σ_{b≤c} x_{bu} in every
// feasible solution, so projecting a feasible point of either formulation
// onto the x variables yields a feasible point of the other with the same
// objective (the prefix variables carry zero cost). The c = C−1 instance of
// (14) is implied by (10) and (11) and is omitted, as in the dense form.
// TestSSQPPPrefixMatchesLegacyLP cross-checks the whole pipeline against
// the original dense per-rank formulation on randomized instances.
//
// # Skeleton reuse
//
// The variable layout and constraint sparsity above depend only on the
// class count C, the quorum system, and the element loads — not on which
// source induced the classes. What varies per source is
//
//   - the objective costs of x_{cQ} (= p(Q)·d_c),
//   - the capacity right-hand sides of (12) (= g_c·cap_c), and
//   - which x_{cu} are forbidden by (13) (load(u) > cap_c).
//
// The Instance therefore caches one skeleton per distinct class count, and
// every solve re-costs a clone with SetCost/SetRHS/SetFixed: SolveQPP's n
// per-source solves share a handful of builds (often just one), and each
// worker of the parallel solver re-costs its own clones of the shared
// skeletons.

// ssqppModel is the source-independent SSQPP LP skeleton over C classes.
type ssqppModel struct {
	c, nU, nQ int
	prob      *lp.Problem // skeleton; Clone before re-costing and solving
	xu        [][]int     // xu[c][u]: element u placed in the c-th distance class
	xq        [][]int     // xq[c][q]: quorum q completed within the c closest classes
	capRow    []int       // class c → constraint index of (12), -1 if no load terms
}

// ssqppModelFor returns the lazily built, cached LP skeleton for instances
// whose source induces nClasses distance classes. Builds depend only on
// construction-time state plus the class count, so the cache serves every
// source and every solve. Cache hits are lock-free — one atomic pointer load
// plus a read of an immutable map — so concurrent workers never serialize on
// modelMu once the skeletons exist (SolveQPPParallel pre-builds them before
// fanning out); misses take the mutex and publish a copy-on-write map.
func (ins *Instance) ssqppModelFor(nClasses int) (*ssqppModel, error) {
	if m := ins.models.Load(); m != nil {
		if mdl, ok := (*m)[nClasses]; ok {
			return mdl, nil
		}
	}
	ins.modelMu.Lock()
	defer ins.modelMu.Unlock()
	old := ins.models.Load()
	if old != nil {
		if mdl, ok := (*old)[nClasses]; ok {
			return mdl, nil
		}
	}
	mdl, err := buildSSQPPModel(ins, nClasses)
	if err != nil {
		return nil, err
	}
	next := make(map[int]*ssqppModel, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[nClasses] = mdl
	ins.models.Store(&next)
	return mdl, nil
}

// prebuildSSQPPModels warms the skeleton cache with every class count the
// instance's sources induce, so a subsequent parallel fan-out only performs
// lock-free cache reads. Build failures are deliberately ignored here: they
// are deterministic per class count, so the per-source solves rediscover
// them and the error semantics stay identical to the sequential path.
func (ins *Instance) prebuildSSQPPModels() {
	sv := newSSQPPSolver(ins)
	built := make(map[int]bool)
	for v0 := 0; v0 < ins.M.N(); v0++ {
		_, _, _, nClasses := sv.sourceClasses(v0)
		if !built[nClasses] {
			built[nClasses] = true
			_, _ = ins.ssqppModelFor(nClasses)
		}
	}
}

func buildSSQPPModel(ins *Instance, nClasses int) (*ssqppModel, error) {
	sp := obs.Start("ssqpp.model_build")
	defer sp.End()
	c := nClasses
	nU := ins.Sys.Universe()
	nQ := ins.Sys.NumQuorums()

	// Constraint (13) feasibility pre-check: an element heavier than every
	// node capacity can never be placed, for any source.
	maxCap := 0.0
	for _, cp := range ins.Cap {
		if cp > maxCap {
			maxCap = cp
		}
	}
	for u := 0; u < nU; u++ {
		if ins.loads[u] > maxCap*(1+capTol) {
			return nil, fmt.Errorf("placement: element %d (load %v) exceeds every node capacity", u, ins.loads[u])
		}
	}

	mdl := &ssqppModel{c: c, nU: nU, nQ: nQ, prob: lp.NewProblem()}
	prob := mdl.prob
	mdl.xu = make([][]int, c)
	for t := 0; t < c; t++ {
		mdl.xu[t] = make([]int, nU)
		for u := 0; u < nU; u++ {
			mdl.xu[t][u] = prob.AddVar(0, fmt.Sprintf("x_c%d_u%d", t, u))
		}
	}
	mdl.xq = make([][]int, c)
	for t := 0; t < c; t++ {
		mdl.xq[t] = make([]int, nQ)
		for q := 0; q < nQ; q++ {
			// Objective (9): Σ_Q p0(Q) Σ_c d_c x_{cQ}; costs installed per
			// source by configure.
			mdl.xq[t][q] = prob.AddVar(0, fmt.Sprintf("x_c%d_q%d", t, q))
		}
	}
	// Prefix variables X_{cu}, X_{cQ} for classes 0..C-2 (class C-1 is
	// pinned to 1 by the closing chain rows and never materializes).
	var pu, pq [][]int
	if c >= 2 {
		pu = make([][]int, c-1)
		pq = make([][]int, c-1)
		for t := 0; t < c-1; t++ {
			pu[t] = make([]int, nU)
			for u := 0; u < nU; u++ {
				pu[t][u] = prob.AddVar(0, fmt.Sprintf("X_c%d_u%d", t, u))
			}
			pq[t] = make([]int, nQ)
			for q := 0; q < nQ; q++ {
				pq[t][q] = prob.AddVar(0, fmt.Sprintf("X_c%d_q%d", t, q))
			}
		}
	}

	// Telescoped chains defining the prefixes; the closing rows are (10)
	// and (11).
	addChain := func(vars func(t int) int, prefix func(t int) int) {
		if c == 1 {
			prob.AddConstraint([]lp.Term{{Var: vars(0), Coef: 1}}, lp.EQ, 1)
			return
		}
		prob.AddConstraint([]lp.Term{
			{Var: prefix(0), Coef: 1}, {Var: vars(0), Coef: -1},
		}, lp.EQ, 0)
		for t := 1; t <= c-2; t++ {
			prob.AddConstraint([]lp.Term{
				{Var: prefix(t), Coef: 1}, {Var: prefix(t - 1), Coef: -1}, {Var: vars(t), Coef: -1},
			}, lp.EQ, 0)
		}
		prob.AddConstraint([]lp.Term{
			{Var: prefix(c - 2), Coef: 1}, {Var: vars(c - 1), Coef: 1},
		}, lp.EQ, 1)
	}
	for u := 0; u < nU; u++ {
		u := u
		addChain(func(t int) int { return mdl.xu[t][u] }, func(t int) int { return pu[t][u] })
	}
	for q := 0; q < nQ; q++ {
		q := q
		addChain(func(t int) int { return mdl.xq[t][q] }, func(t int) int { return pq[t][q] })
	}

	// (12): Σ_u load(u) x_{cu} ≤ g_c·cap_c. Right-hand sides are installed
	// per source by configure.
	mdl.capRow = make([]int, c)
	var terms []lp.Term
	for t := 0; t < c; t++ {
		terms = terms[:0]
		for u := 0; u < nU; u++ {
			if ins.loads[u] > 0 {
				terms = append(terms, lp.Term{Var: mdl.xu[t][u], Coef: ins.loads[u]})
			}
		}
		mdl.capRow[t] = -1
		if len(terms) > 0 {
			mdl.capRow[t] = prob.NumConstraints()
			prob.AddConstraint(terms, lp.LE, 0)
		}
	}
	// (14) in prefix form: X_{cQ} ≤ X_{cu} for every u ∈ Q and c ≤ C-2.
	for q := 0; q < nQ; q++ {
		for _, u := range ins.Sys.Quorum(q) {
			for t := 0; t < c-1; t++ {
				prob.AddConstraint([]lp.Term{
					{Var: pq[t][q], Coef: 1}, {Var: pu[t][u], Coef: -1},
				}, lp.LE, 0)
			}
		}
	}
	return mdl, nil
}

// sourceClasses computes the node-rank order around source v0 — sorted by
// (distance, capacity, id); the capacity tie-break maximizes class merging —
// together with the per-rank distances and the rank→class grouping. Ranks
// with identical (distance, capacity) share a class and are interchangeable
// for the LP: same objective coefficient, same per-node capacity, same
// constraint-(13) forbidden set. The returned slices alias the solver's
// scratch and are valid until the next sourceClasses call on this solver.
func (sv *ssqppSolver) sourceClasses(v0 int) (order []int, dist []float64, classOf []int, nClasses int) {
	ins := sv.ins
	n := ins.M.N()
	if cap(sv.order) < n {
		sv.order = make([]int, n)
		sv.dist = make([]float64, n)
		sv.classOf = make([]int, n)
	}
	order, dist, classOf = sv.order[:n], sv.dist[:n], sv.classOf[:n]
	row := ins.M.Row(v0)
	for v := 0; v < n; v++ {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		oi, oj := order[i], order[j]
		if row[oi] != row[oj] {
			return row[oi] < row[oj]
		}
		if ins.Cap[oi] != ins.Cap[oj] {
			return ins.Cap[oi] < ins.Cap[oj]
		}
		return oi < oj
	})
	for t, v := range order {
		dist[t] = row[v]
	}
	for t := range order {
		if t > 0 {
			if dist[t] == dist[t-1] && ins.Cap[order[t]] == ins.Cap[order[t-1]] {
				classOf[t] = classOf[t-1]
			} else {
				classOf[t] = classOf[t-1] + 1
			}
		} else {
			classOf[0] = 0
		}
	}
	return order, dist, classOf, classOf[n-1] + 1
}

// configure installs the source-specific parts of the model into a clone of
// the skeleton: objective costs, capacity right-hand sides, and the
// constraint-(13) forbidden set. classDist, classCap and classSize give the
// per-class distance, per-node capacity, and node count.
func (mdl *ssqppModel) configure(prob *lp.Problem, ins *Instance, classDist, classCap []float64, classSize []int) {
	for t := 0; t < mdl.c; t++ {
		for q := 0; q < mdl.nQ; q++ {
			prob.SetCost(mdl.xq[t][q], ins.Strat.P(q)*classDist[t])
		}
		if mdl.capRow[t] >= 0 {
			prob.SetRHS(mdl.capRow[t], classCap[t]*float64(classSize[t]))
		}
		capT := classCap[t] * (1 + capTol)
		for u := 0; u < mdl.nU; u++ {
			prob.SetFixed(mdl.xu[t][u], ins.loads[u] > capT)
		}
	}
}

// expandClasses spreads the class-space solution xc evenly over each class's
// ranks, restoring a fractional per-rank solution of the paper's LP with the
// same objective (see the aggregation comment at the top of the file).
func expandClasses(xc [][]float64, classOf []int) [][]float64 {
	n := len(classOf)
	nU := 0
	if len(xc) > 0 {
		nU = len(xc[0])
	}
	size := make([]float64, len(xc))
	for _, c := range classOf {
		size[c]++
	}
	out := make([][]float64, n)
	for t := 0; t < n; t++ {
		c := classOf[t]
		out[t] = make([]float64, nU)
		for u := 0; u < nU; u++ {
			out[t][u] = xc[c][u] / size[c]
		}
	}
	return out
}

// ssqppSolver runs per-source SSQPP LP solves against the instance's shared
// skeletons, owning private re-costable clones and an LP workspace. One
// solver serves any number of sources sequentially; concurrent solves need
// one solver each (skeleton builds are still shared through the instance
// cache).
type ssqppSolver struct {
	ins   *Instance
	probs map[int]*lp.Problem // class count → private clone
	ws    *lp.Workspace
	gws   *gap.Workspace // network scratch for the rounding flow
	rec   obs.Rec        // telemetry route: ambient by default, a worker shard in the parallel solver

	// Per-solve scratch reused across the sources this solver handles; the
	// slices returned by sourceClasses (and embedded into ssqppFrac) alias it.
	order     []int
	dist      []float64
	classOf   []int
	classDist []float64
	classCap  []float64
	classSize []int
}

func newSSQPPSolver(ins *Instance) *ssqppSolver {
	return &ssqppSolver{
		ins:   ins,
		probs: make(map[int]*lp.Problem),
		ws:    lp.NewWorkspace(),
		gws:   gap.NewWorkspace(),
	}
}

// setRec points the solver and both of its workspaces at a telemetry route.
// Parallel workers install their shard's recorder so every span and metric
// of the per-source pipeline is buffered locally instead of contending on
// the shared collector.
func (sv *ssqppSolver) setRec(r obs.Rec) {
	sv.rec = r
	sv.ws.Rec = r
	sv.gws.Rec = r
}

// solveLP solves the SSQPP relaxation for source v0 against the (cached)
// class-space skeleton, returning the fractional solution in node-rank
// space. The returned frac's order and dist slices alias the solver's
// scratch and are valid until the next solveLP call on this solver.
func (sv *ssqppSolver) solveLP(v0 int) (*ssqppFrac, error) {
	sp := sv.rec.Start("ssqpp.lp")
	defer sp.End()
	ins := sv.ins
	order, dist, classOf, nClasses := sv.sourceClasses(v0)
	if cap(sv.classDist) < nClasses {
		sv.classDist = make([]float64, nClasses)
		sv.classCap = make([]float64, nClasses)
		sv.classSize = make([]int, nClasses)
	}
	classDist := sv.classDist[:nClasses]
	classCap := sv.classCap[:nClasses]
	classSize := sv.classSize[:nClasses]
	for c := range classSize {
		classSize[c] = 0
	}
	for t, c := range classOf {
		classDist[c] = dist[t]
		classCap[c] = ins.Cap[order[t]]
		classSize[c]++
	}

	mdl, err := ins.ssqppModelFor(nClasses)
	if err != nil {
		return nil, err
	}
	prob, ok := sv.probs[nClasses]
	if !ok {
		prob = mdl.prob.Clone()
		sv.probs[nClasses] = prob
	}
	mdl.configure(prob, ins, classDist, classCap, classSize)
	sol, err := prob.SolveWith(sv.ws)
	if err != nil {
		return nil, fmt.Errorf("placement: SSQPP LP for v0=%d: %w", v0, err)
	}
	xc := make([][]float64, nClasses)
	for t := 0; t < nClasses; t++ {
		xc[t] = make([]float64, mdl.nU)
		for u := 0; u < mdl.nU; u++ {
			if !prob.Fixed(mdl.xu[t][u]) {
				xc[t][u] = sol.X[mdl.xu[t][u]]
			}
		}
	}
	return &ssqppFrac{
		order: order,
		dist:  dist,
		xu:    expandClasses(xc, classOf),
		obj:   sol.Objective,
	}, nil
}
