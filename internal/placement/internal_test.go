package placement

import (
	"math"
	"math/rand"
	"testing"
)

// Tests for unexported helpers: the α-filtering step, shell ordering,
// capacity slot expansion, and the binomial helper.

func TestFilterBasic(t *testing.T) {
	// One element spread evenly over 4 ranks; α=2 doubles the first two
	// ranks' mass and zeroes the rest.
	x := [][]float64{{0.25}, {0.25}, {0.25}, {0.25}}
	out := filter(x, 2)
	want := []float64{0.5, 0.5, 0, 0}
	for tt := range want {
		if math.Abs(out[tt][0]-want[tt]) > 1e-12 {
			t.Fatalf("filter = %v,%v,%v,%v want %v", out[0][0], out[1][0], out[2][0], out[3][0], want)
		}
	}
}

func TestFilterPartialLast(t *testing.T) {
	// Mass 0.4, 0.4, 0.2 with α=2: first rank gets 0.8, second is clipped
	// to 0.2, third gets nothing.
	x := [][]float64{{0.4}, {0.4}, {0.2}}
	out := filter(x, 2)
	want := []float64{0.8, 0.2, 0}
	for tt := range want {
		if math.Abs(out[tt][0]-want[tt]) > 1e-12 {
			t.Fatalf("filter = %v,%v,%v want %v", out[0][0], out[1][0], out[2][0], want)
		}
	}
}

// TestFilterProperties checks the three invariants the Theorem 3.7 argument
// needs: Σ_t x̃ = 1; x̃ ≤ α·x pointwise; and support only at ranks where the
// original cumulative mass below is < 1/α.
func TestFilterProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		nU := 1 + rng.Intn(4)
		alpha := 1.1 + rng.Float64()*3
		x := make([][]float64, n)
		for tt := range x {
			x[tt] = make([]float64, nU)
		}
		for u := 0; u < nU; u++ {
			// Random distribution over ranks.
			sum := 0.0
			vals := make([]float64, n)
			for tt := range vals {
				vals[tt] = rng.Float64()
				sum += vals[tt]
			}
			for tt := range vals {
				x[tt][u] = vals[tt] / sum
			}
		}
		out := filter(x, alpha)
		for u := 0; u < nU; u++ {
			total, cum := 0.0, 0.0
			for tt := 0; tt < n; tt++ {
				if out[tt][u] > alpha*x[tt][u]+1e-9 {
					t.Fatalf("trial %d: x̃[%d][%d]=%v exceeds α·x=%v", trial, tt, u, out[tt][u], alpha*x[tt][u])
				}
				if out[tt][u] > filterTol && cum >= 1/alpha+1e-9 {
					t.Fatalf("trial %d: support at rank %d but cumulative below is %v ≥ 1/α=%v", trial, tt, cum, 1/alpha)
				}
				total += out[tt][u]
				cum += x[tt][u]
			}
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("trial %d: filtered mass %v, want 1", trial, total)
			}
		}
	}
}

func TestGridShellOrder(t *testing.T) {
	// k=3: τ1 at (0,0); τ2 at (0,1); τ3,τ4 at (1,0),(1,1); τ5,τ6 at
	// (0,2),(1,2); τ7,τ8,τ9 at (2,0),(2,1),(2,2).
	got := GridShellOrder(3)
	want := [][2]int{
		{0, 0},
		{0, 1}, {1, 0}, {1, 1},
		{0, 2}, {1, 2}, {2, 0}, {2, 1}, {2, 2},
	}
	if len(got) != len(want) {
		t.Fatalf("order has %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestGridShellOrderCoversAllCells(t *testing.T) {
	for k := 1; k <= 6; k++ {
		got := GridShellOrder(k)
		if len(got) != k*k {
			t.Fatalf("k=%d: %d cells, want %d", k, len(got), k*k)
		}
		seen := map[[2]int]bool{}
		for _, c := range got {
			if c[0] < 0 || c[0] >= k || c[1] < 0 || c[1] >= k {
				t.Fatalf("k=%d: cell %v out of range", k, c)
			}
			if seen[c] {
				t.Fatalf("k=%d: duplicate cell %v", k, c)
			}
			seen[c] = true
		}
	}
}

func TestGridLayoutCost(t *testing.T) {
	// 2×2 matrix [[4,3],[2,1]]: rowMax = 4,2; colMax = 4,3.
	// Q00: max(4,4)=4; Q01: max(4,3)=4; Q10: max(2,4)=4; Q11: max(2,3)=3.
	m := [][]float64{{4, 3}, {2, 1}}
	want := (4.0 + 4 + 4 + 3) / 4
	if got := GridLayoutCost(m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GridLayoutCost = %v, want %v", got, want)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {6, 3, 20},
		{10, 4, 210}, {5, 6, 0}, {5, -1, 0}, {20, 10, 184756},
	}
	for _, tc := range cases {
		if got := Binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("Binomial(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestMajorityFormulaHandChecked(t *testing.T) {
	// n=3, t=2, τ = 3,2,1 (decreasing). C(3,2)=3 quorums: {τ1,τ2}, {τ1,τ3},
	// {τ2,τ3} with maxes 3, 3, 2 → mean 8/3. Formula: (τ1·C(2,1) + τ2·C(1,1))/3
	// = (3·2 + 2·1)/3 = 8/3.
	got, err := MajorityFormula([]float64{3, 2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8.0/3) > 1e-12 {
		t.Fatalf("MajorityFormula = %v, want %v", got, 8.0/3)
	}
}

func TestMajorityFormulaValidation(t *testing.T) {
	if _, err := MajorityFormula([]float64{1, 2}, 2); err == nil {
		t.Fatal("unsorted distances accepted")
	}
	if _, err := MajorityFormula([]float64{2, 1}, 0); err == nil {
		t.Fatal("threshold 0 accepted")
	}
	if _, err := MajorityFormula([]float64{2, 1}, 3); err == nil {
		t.Fatal("threshold beyond n accepted")
	}
}
