package placement

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Baseline placements used by the evaluation harness as comparison points
// for the LP-based algorithms.

// RandomFeasiblePlacement draws a random capacity-respecting placement:
// elements are visited in random order (heaviest groups first within the
// shuffle to improve packing success) and assigned to a uniformly random
// node with enough remaining capacity. It retries up to attempts times and
// returns an error if packing keeps failing, which can happen even for
// feasible instances when capacities are tight.
func RandomFeasiblePlacement(ins *Instance, rng *rand.Rand, attempts int) (Placement, error) {
	nU := ins.Sys.Universe()
	n := ins.M.N()
	for try := 0; try < attempts; try++ {
		remaining := append([]float64(nil), ins.Cap...)
		f := make([]int, nU)
		perm := rng.Perm(nU)
		ok := true
		for _, u := range perm {
			cands := make([]int, 0, n)
			for v := 0; v < n; v++ {
				if remaining[v]+capTol >= ins.loads[u] {
					cands = append(cands, v)
				}
			}
			if len(cands) == 0 {
				ok = false
				break
			}
			v := cands[rng.Intn(len(cands))]
			remaining[v] -= ins.loads[u]
			f[u] = v
		}
		if ok {
			return NewPlacement(f), nil
		}
	}
	return Placement{}, fmt.Errorf("placement: failed to find a random feasible placement in %d attempts", attempts)
}

// GreedyClosestPlacement assigns elements (heaviest first) to the nearest
// node from v0 with enough remaining capacity: a simple first-fit-decreasing
// heuristic that respects capacities exactly but has no delay guarantee.
func GreedyClosestPlacement(ins *Instance, v0 int) (Placement, error) {
	nU := ins.Sys.Universe()
	order := ins.M.NodesByDistance(v0)
	elems := make([]int, nU)
	for u := range elems {
		elems[u] = u
	}
	sort.SliceStable(elems, func(a, b int) bool { return ins.loads[elems[a]] > ins.loads[elems[b]] })
	remaining := append([]float64(nil), ins.Cap...)
	f := make([]int, nU)
	for _, u := range elems {
		placed := false
		for _, v := range order {
			if remaining[v]+capTol >= ins.loads[u] {
				remaining[v] -= ins.loads[u]
				f[u] = v
				placed = true
				break
			}
		}
		if !placed {
			return Placement{}, fmt.Errorf("placement: greedy packing failed for element %d (load %v)", u, ins.loads[u])
		}
	}
	return NewPlacement(f), nil
}

// BestGreedyPlacement runs GreedyClosestPlacement from every source and
// returns the placement minimizing the average max-delay.
func BestGreedyPlacement(ins *Instance) (Placement, error) {
	var best Placement
	bestAvg := math.Inf(1)
	found := false
	var firstErr error
	for v0 := 0; v0 < ins.M.N(); v0++ {
		p, err := GreedyClosestPlacement(ins, v0)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if avg := ins.AvgMaxDelay(p); avg < bestAvg {
			best, bestAvg = p, avg
			found = true
		}
	}
	if !found {
		return Placement{}, fmt.Errorf("placement: greedy failed from every source: %w", firstErr)
	}
	return best, nil
}
