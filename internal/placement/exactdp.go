package placement

import (
	"fmt"
	"math"

	"quorumplace/internal/obs"
	"quorumplace/internal/treedp"
)

// This file wires the treedp subset DP into the SSQPP/QPP pipeline as an
// exact fast path. SSQPP is NP-hard (Theorem 3.6), but the DP's O(n·3^U)
// cost isolates the exponential in the universe size U, which the paper's
// quorum systems keep tiny; for large networks with small universes the DP
// is both faster than the LP pipeline and exact, so solve() auto-selects it
// when the estimated transition count is affordable. The gate depends only
// on instance shape, never on the source, so sequential and parallel QPP
// sweeps take the same path for every source and stay bit-identical.

const (
	// exactDPMinNodes keeps small instances on the LP pipeline, whose
	// behavior (LP bounds, integrality gaps, rounding loads) the existing
	// test and evaluation surface pins.
	exactDPMinNodes = 64
	// exactDPOpsBudget bounds the estimated worst-case DP transitions
	// n·3^U accepted by the auto gate.
	exactDPOpsBudget = float64(1 << 29)
)

// exactDPAuto reports whether solve() should route this instance through
// the exact DP instead of the LP pipeline.
func (ins *Instance) exactDPAuto() bool {
	n := ins.M.N()
	if n < exactDPMinNodes || ins.Sys.Universe() > treedp.MaxUniverse {
		return false
	}
	return treedp.EstimatedOps(n, ins.Sys.Universe()) <= exactDPOpsBudget
}

// SolveSSQPPExact solves the single-source problem to optimality with the
// treedp subset DP, regardless of instance size (the DP's own budget still
// applies). The result uses the SSQPPResult conventions: Delay is the
// recomputed Δ_f(v0) of the returned placement, and LPBound carries the
// optimal objective itself — the tightest valid lower bound — so every
// Theorem 3.7 invariant the auditor checks (Delay ≤ α/(α-1)·LPBound,
// capacity factor ≤ α+1) holds with room to spare: exact placements respect
// capacities outright. alpha must exceed 1, as in SolveSSQPP; it only
// labels the certificate, the DP itself does no filtering.
func SolveSSQPPExact(ins *Instance, v0 int, alpha float64) (*SSQPPResult, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("placement: filtering parameter alpha = %v must exceed 1", alpha)
	}
	if v0 < 0 || v0 >= ins.M.N() {
		return nil, fmt.Errorf("placement: source %d out of range [0,%d)", v0, ins.M.N())
	}
	return solveSSQPPExactDP(ins, v0, alpha, obs.Rec{})
}

// solveSSQPPExactDP runs the DP for one source and packages the result.
// rec routes telemetry: ambient for one-shot calls, a worker shard inside
// the parallel QPP sweep.
func solveSSQPPExactDP(ins *Instance, v0 int, alpha float64, rec obs.Rec) (*SSQPPResult, error) {
	sp := rec.Start("placement.ssqpp_exact")
	defer sp.End()
	f, obj, err := treedp.SolveSSQPP(ins.M.Row(v0), ins.Cap, ins.loads, ins.Sys, ins.Strat)
	if err != nil {
		return nil, fmt.Errorf("placement: exact SSQPP for v0=%d: %w", v0, err)
	}
	if math.IsNaN(obj) {
		return nil, fmt.Errorf("placement: exact SSQPP for v0=%d: NaN objective", v0)
	}
	pl := NewPlacement(f)
	return &SSQPPResult{
		Placement: pl,
		V0:        v0,
		Alpha:     alpha,
		Delay:     ins.MaxDelayFrom(v0, pl),
		LPBound:   obj,
	}, nil
}
