package placement

import (
	"fmt"
	"math"

	"quorumplace/internal/obs"
)

// This file implements the §4.2 single-source placement for the Majority
// (threshold) quorum system under the uniform access strategy. The paper
// shows every arrangement of a fixed multiset of node slots has the same
// average delay, given in closed form by Eq. (19):
//
//	Δ_f(v0) = (1 / C(n,t)) · Σ_{i=1..n-t+1} τ_i · C(n-i, t-1)
//
// where τ1 ≥ τ2 ≥ ... ≥ τ_n are the slot distances in decreasing order.
// Minimizing delay therefore reduces to choosing the n nearest capacity
// slots, which the solver does greedily.

// Binomial returns C(n, k) as a float64 using the multiplicative formula;
// exact for the moderate arguments used here (n ≤ ~50).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 1; i <= k; i++ {
		res = res * float64(n-k+i) / float64(i)
	}
	return math.Round(res)
}

// MajorityFormula evaluates Eq. (19) for threshold t on sorted-descending
// slot distances taus (τ1 ≥ ... ≥ τ_n).
func MajorityFormula(taus []float64, t int) (float64, error) {
	n := len(taus)
	if t < 1 || t > n {
		return 0, fmt.Errorf("placement: threshold %d out of range [1,%d]", t, n)
	}
	for i := 1; i < n; i++ {
		if taus[i] > taus[i-1]+1e-12 {
			return 0, fmt.Errorf("placement: distances not sorted in decreasing order at index %d", i)
		}
	}
	total := Binomial(n, t)
	sum := 0.0
	for i := 1; i <= n-t+1; i++ {
		sum += taus[i-1] * Binomial(n-i, t-1)
	}
	return sum / total, nil
}

// MajorityResult is the outcome of SolveMajoritySSQPP.
type MajorityResult struct {
	Placement Placement
	V0        int
	Delay     float64   // Δ_f(v0); equals FormulaDelay up to roundoff
	Formula   float64   // the Eq. (19) closed form
	Taus      []float64 // chosen slot distances, decreasing
}

// SolveMajoritySSQPP computes an optimal single-source placement of a
// Majority(n, t) system (uniform strategy) for source v0: it selects the n
// nearest capacity slots and places the elements on them in index order
// (any arrangement is optimal by §4.2). The placement respects capacities
// exactly.
func SolveMajoritySSQPP(ins *Instance, v0, threshold int) (*MajorityResult, error) {
	sp := obs.Start("placement.majority_ssqpp")
	defer sp.End()
	nU := ins.Sys.Universe()
	if threshold < 1 || 2*threshold <= nU {
		return nil, fmt.Errorf("placement: majority threshold %d invalid for universe %d", threshold, nU)
	}
	load, err := uniformLoad(ins)
	if err != nil {
		return nil, err
	}
	slots, err := capacitySlots(ins, v0, load, nU)
	if err != nil {
		return nil, err
	}
	f := make([]int, nU)
	taus := make([]float64, nU)
	for u := 0; u < nU; u++ {
		f[u] = slots[u]
		taus[nU-1-u] = ins.M.D(v0, slots[u]) // reverse to decreasing order
	}
	formula, err := MajorityFormula(taus, threshold)
	if err != nil {
		return nil, err
	}
	pl := NewPlacement(f)
	return &MajorityResult{
		Placement: pl,
		V0:        v0,
		Delay:     ins.MaxDelayFrom(v0, pl),
		Formula:   formula,
		Taus:      taus,
	}, nil
}

// SolveMajorityQPP applies the Theorem 1.3 reduction for the Majority
// system: the optimal single-source layout is computed from every candidate
// source and the placement with the best true average max-delay is
// returned, along with that average.
func SolveMajorityQPP(ins *Instance, threshold int) (*MajorityResult, float64, error) {
	sp := obs.Start("placement.majority_qpp")
	defer sp.End()
	var best *MajorityResult
	bestAvg := math.Inf(1)
	var firstErr error
	for v0 := 0; v0 < ins.M.N(); v0++ {
		res, err := SolveMajoritySSQPP(ins, v0, threshold)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if avg := ins.AvgMaxDelay(res.Placement); avg < bestAvg {
			best, bestAvg = res, avg
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("placement: majority layout failed for every source: %w", firstErr)
	}
	return best, bestAvg, nil
}
