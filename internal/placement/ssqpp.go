package placement

import (
	"fmt"
	"math"

	"quorumplace/internal/gap"
	"quorumplace/internal/lp"
	"quorumplace/internal/obs"
)

// This file implements the Single-Source Quorum Placement Problem
// (Problem 3.2): given a source v0 that issues all quorum accesses, find a
// placement minimizing Δ_f(v0) subject to node capacities. The problem is
// NP-hard (Theorem 3.6), so the solver follows §3.3: solve the LP
// relaxation (9)–(14), α-filter the fractional solution, and round it with
// the Shmoys–Tardos GAP theorem. The result has
//
//	Δ_f(v0) ≤ α/(α-1) · Z* ≤ α/(α-1) · Δ_{f*}(v0)
//
// with load_f(v) ≤ (α+1)·cap(v) at every node (Theorem 3.7; α=2 gives the
// 2-approximation with factor-3 load of Theorem 3.12).

// SSQPPResult is the outcome of SolveSSQPP.
type SSQPPResult struct {
	Placement Placement
	V0        int
	Alpha     float64
	Delay     float64 // Δ_f(v0) of the returned placement
	LPBound   float64 // Z*, a lower bound on the optimal capacity-respecting delay
}

// SolveSSQPP runs the Theorem 3.7 pipeline for source v0 and filtering
// parameter α > 1. It returns an error if the LP relaxation is infeasible
// (no capacity-respecting placement exists at all) or if α ≤ 1.
func SolveSSQPP(ins *Instance, v0 int, alpha float64) (*SSQPPResult, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("placement: filtering parameter alpha = %v must exceed 1", alpha)
	}
	if v0 < 0 || v0 >= ins.M.N() {
		return nil, fmt.Errorf("placement: source %d out of range [0,%d)", v0, ins.M.N())
	}
	sp := obs.Start("placement.ssqpp")
	defer sp.End()
	frac, err := solveSSQPPLP(ins, v0)
	if err != nil {
		return nil, err
	}
	fsp := obs.Start("ssqpp.filter")
	xt := filter(frac.xu, alpha)
	fsp.End()
	pl, err := roundFiltered(ins, frac, xt, alpha)
	if err != nil {
		return nil, err
	}
	return &SSQPPResult{
		Placement: pl,
		V0:        v0,
		Alpha:     alpha,
		Delay:     ins.MaxDelayFrom(v0, pl),
		LPBound:   frac.obj,
	}, nil
}

// SSQPPLowerBound solves only the LP relaxation and returns Z*, a lower
// bound on Δ_{f*}(v0) over all capacity-respecting placements.
func SSQPPLowerBound(ins *Instance, v0 int) (float64, error) {
	frac, err := solveSSQPPLP(ins, v0)
	if err != nil {
		return 0, err
	}
	return frac.obj, nil
}

// ssqppFrac carries the fractional LP solution in node-rank space: index t
// refers to the t-th closest node to v0 (order[t]), with distance dist[t].
type ssqppFrac struct {
	order []int       // rank → node id
	dist  []float64   // rank → d(v0, node)
	xu    [][]float64 // xu[t][u], Σ_t xu[t][u] = 1
	obj   float64     // Z*
}

// solveSSQPPLP builds and solves the LP (9)–(14).
//
// Variables: x_{tu} (element u placed on the t-th closest node) and x_{tQ}
// (quorum Q completed within the t closest nodes). Constraint (13) — no
// element on a node whose capacity it alone would exceed — is enforced by
// omitting those variables.
func solveSSQPPLP(ins *Instance, v0 int) (*ssqppFrac, error) {
	sp := obs.Start("ssqpp.lp")
	defer sp.End()
	n := ins.M.N()
	nU := ins.Sys.Universe()
	nQ := ins.Sys.NumQuorums()
	order := ins.M.NodesByDistance(v0)
	dist := make([]float64, n)
	for t, v := range order {
		dist[t] = ins.M.D(v0, v)
	}

	prob := lp.NewProblem()
	xu := make([][]int, n) // var ids, -1 = forbidden
	for t := 0; t < n; t++ {
		xu[t] = make([]int, nU)
		capT := ins.Cap[order[t]]
		for u := 0; u < nU; u++ {
			if ins.loads[u] > capT*(1+capTol) {
				xu[t][u] = -1 // constraint (13)
				continue
			}
			xu[t][u] = prob.AddVar(0, fmt.Sprintf("x_t%d_u%d", t, u))
		}
	}
	xq := make([][]int, n)
	for t := 0; t < n; t++ {
		xq[t] = make([]int, nQ)
		for q := 0; q < nQ; q++ {
			// Objective (9): Σ_Q p0(Q) Σ_t d_t x_{tQ}.
			xq[t][q] = prob.AddVar(ins.Strat.P(q)*dist[t], fmt.Sprintf("x_t%d_q%d", t, q))
		}
	}

	// (10): Σ_t x_{tu} = 1.
	for u := 0; u < nU; u++ {
		var terms []lp.Term
		for t := 0; t < n; t++ {
			if xu[t][u] >= 0 {
				terms = append(terms, lp.Term{Var: xu[t][u], Coef: 1})
			}
		}
		if len(terms) == 0 {
			return nil, fmt.Errorf("placement: element %d (load %v) exceeds every node capacity", u, ins.loads[u])
		}
		prob.AddConstraint(terms, lp.EQ, 1)
	}
	// (11): Σ_t x_{tQ} = 1.
	for q := 0; q < nQ; q++ {
		terms := make([]lp.Term, n)
		for t := 0; t < n; t++ {
			terms[t] = lp.Term{Var: xq[t][q], Coef: 1}
		}
		prob.AddConstraint(terms, lp.EQ, 1)
	}
	// (12): Σ_u load(u) x_{tu} ≤ cap(v_t).
	for t := 0; t < n; t++ {
		var terms []lp.Term
		for u := 0; u < nU; u++ {
			if xu[t][u] >= 0 && ins.loads[u] > 0 {
				terms = append(terms, lp.Term{Var: xu[t][u], Coef: ins.loads[u]})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, ins.Cap[order[t]])
		}
	}
	// (14): Σ_{s≤t} x_{sQ} ≤ Σ_{s≤t} x_{su} for every u ∈ Q and every t.
	// The t = n-1 instance is implied by (10) and (11), so it is skipped.
	for q := 0; q < nQ; q++ {
		for _, u := range ins.Sys.Quorum(q) {
			for t := 0; t < n-1; t++ {
				var terms []lp.Term
				for s := 0; s <= t; s++ {
					terms = append(terms, lp.Term{Var: xq[s][q], Coef: 1})
					if xu[s][u] >= 0 {
						terms = append(terms, lp.Term{Var: xu[s][u], Coef: -1})
					}
				}
				prob.AddConstraint(terms, lp.LE, 0)
			}
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("placement: SSQPP LP for v0=%d: %w", v0, err)
	}
	frac := &ssqppFrac{order: order, dist: dist, obj: sol.Objective}
	frac.xu = make([][]float64, n)
	for t := 0; t < n; t++ {
		frac.xu[t] = make([]float64, nU)
		for u := 0; u < nU; u++ {
			if xu[t][u] >= 0 {
				frac.xu[t][u] = sol.X[xu[t][u]]
			}
		}
	}
	return frac, nil
}

// filterTol treats tiny fractional masses as zero during filtering.
const filterTol = 1e-9

// filter applies the §3.3.1 filtering step with parameter α to the
// fractional assignment x[t][u] (columns sum to 1 over t): the filtered
// x̃_{tu} is the largest value with x̃_{tu} ≤ α·x_{tu} and Σ_{s≤t} x̃_{su} ≤ 1,
// which moves all mass to the closest ranks. Afterwards, x̃_{tu} > 0 implies
// Σ_{s<t} x_{su} < 1/α, the property behind the α/(α-1) distance bound of
// Claim 3.8 / Lemma 3.9.
func filter(x [][]float64, alpha float64) [][]float64 {
	if len(x) == 0 {
		return nil
	}
	n, nU := len(x), len(x[0])
	out := make([][]float64, n)
	for t := range out {
		out[t] = make([]float64, nU)
	}
	for u := 0; u < nU; u++ {
		cum := 0.0
		for t := 0; t < n && cum < 1-filterTol; t++ {
			if x[t][u] <= filterTol {
				continue
			}
			v := alpha * x[t][u]
			if v > 1-cum {
				v = 1 - cum
			}
			out[t][u] = v
			cum += v
		}
	}
	return out
}

// roundFiltered interprets the filtered solution as a fractional GAP
// solution (machines = nodes with capacity α·cap, jobs = elements, cost of
// element u on rank t = d_t) and applies Shmoys–Tardos rounding. The
// resulting load is at most α·cap(v) + max load ≤ (α+1)·cap(v).
func roundFiltered(ins *Instance, frac *ssqppFrac, xt [][]float64, alpha float64) (Placement, error) {
	sp := obs.Start("ssqpp.round")
	defer sp.End()
	n := ins.M.N()
	nU := ins.Sys.Universe()
	g := &gap.Instance{
		Cost: make([][]float64, n),
		Load: make([][]float64, n),
		T:    make([]float64, n),
	}
	for t := 0; t < n; t++ {
		g.Cost[t] = make([]float64, nU)
		g.Load[t] = make([]float64, nU)
		g.T[t] = alpha * ins.Cap[frac.order[t]]
		for u := 0; u < nU; u++ {
			g.Cost[t][u] = frac.dist[t]
			if xt[t][u] > filterTol {
				g.Load[t][u] = ins.loads[u]
			} else {
				g.Load[t][u] = math.Inf(1)
			}
		}
	}
	// Renormalize columns exactly to 1 (filtering guarantees ≈1).
	for u := 0; u < nU; u++ {
		sum := 0.0
		for t := 0; t < n; t++ {
			sum += xt[t][u]
		}
		if math.Abs(sum-1) > 1e-6 {
			return Placement{}, fmt.Errorf("placement: filtered mass for element %d is %v", u, sum)
		}
		for t := 0; t < n; t++ {
			xt[t][u] /= sum
		}
	}
	assign, _, err := gap.Round(g, xt)
	if err != nil {
		return Placement{}, fmt.Errorf("placement: SSQPP rounding: %w", err)
	}
	f := make([]int, nU)
	for u, t := range assign {
		f[u] = frac.order[t]
	}
	return NewPlacement(f), nil
}
