package placement

import (
	"fmt"
	"math"

	"quorumplace/internal/gap"
)

// This file implements the Single-Source Quorum Placement Problem
// (Problem 3.2): given a source v0 that issues all quorum accesses, find a
// placement minimizing Δ_f(v0) subject to node capacities. The problem is
// NP-hard (Theorem 3.6), so the solver follows §3.3: solve the LP
// relaxation (9)–(14), α-filter the fractional solution, and round it with
// the Shmoys–Tardos GAP theorem. The result has
//
//	Δ_f(v0) ≤ α/(α-1) · Z* ≤ α/(α-1) · Δ_{f*}(v0)
//
// with load_f(v) ≤ (α+1)·cap(v) at every node (Theorem 3.7; α=2 gives the
// 2-approximation with factor-3 load of Theorem 3.12).

// SSQPPResult is the outcome of SolveSSQPP.
type SSQPPResult struct {
	Placement Placement
	V0        int
	Alpha     float64
	Delay     float64 // Δ_f(v0) of the returned placement
	LPBound   float64 // Z*, a lower bound on the optimal capacity-respecting delay
}

// SolveSSQPP runs the Theorem 3.7 pipeline for source v0 and filtering
// parameter α > 1. It returns an error if the LP relaxation is infeasible
// (no capacity-respecting placement exists at all) or if α ≤ 1.
func SolveSSQPP(ins *Instance, v0 int, alpha float64) (*SSQPPResult, error) {
	return newSSQPPSolver(ins).solve(v0, alpha)
}

// solve runs the Theorem 3.7 pipeline for one source against the solver's
// shared model skeleton. Callers solving many sources (the QPP reduction)
// reuse one solver so the LP skeleton and workspace are built only once.
func (sv *ssqppSolver) solve(v0 int, alpha float64) (*SSQPPResult, error) {
	ins := sv.ins
	if alpha <= 1 {
		return nil, fmt.Errorf("placement: filtering parameter alpha = %v must exceed 1", alpha)
	}
	if v0 < 0 || v0 >= ins.M.N() {
		return nil, fmt.Errorf("placement: source %d out of range [0,%d)", v0, ins.M.N())
	}
	// Exact fast path: large instances with small universes are solved to
	// optimality by the treedp subset DP (see exactdp.go). The gate is a
	// pure function of instance shape, so every source — and both the
	// sequential and parallel QPP sweeps — take the same branch. On DP
	// budget exhaustion or infeasibility the LP pipeline below runs as
	// before and reports with its own diagnostics.
	if ins.exactDPAuto() {
		if res, err := solveSSQPPExactDP(ins, v0, alpha, sv.rec); err == nil {
			return res, nil
		}
	}
	sp := sv.rec.Start("placement.ssqpp")
	defer sp.End()
	frac, err := sv.solveLP(v0)
	if err != nil {
		return nil, err
	}
	fsp := sv.rec.Start("ssqpp.filter")
	xt := filter(frac.xu, alpha)
	fsp.End()
	pl, err := sv.roundFiltered(frac, xt, alpha)
	if err != nil {
		return nil, err
	}
	return &SSQPPResult{
		Placement: pl,
		V0:        v0,
		Alpha:     alpha,
		Delay:     ins.MaxDelayFrom(v0, pl),
		LPBound:   frac.obj,
	}, nil
}

// SSQPPLowerBound solves only the LP relaxation and returns Z*, a lower
// bound on Δ_{f*}(v0) over all capacity-respecting placements.
func SSQPPLowerBound(ins *Instance, v0 int) (float64, error) {
	frac, err := solveSSQPPLP(ins, v0)
	if err != nil {
		return 0, err
	}
	return frac.obj, nil
}

// ssqppFrac carries the fractional LP solution in node-rank space: index t
// refers to the t-th closest node to v0 (order[t]), with distance dist[t].
type ssqppFrac struct {
	order []int       // rank → node id
	dist  []float64   // rank → d(v0, node)
	xu    [][]float64 // xu[t][u], Σ_t xu[t][u] = 1
	obj   float64     // Z*
}

// solveSSQPPLP builds (or reuses) the instance's LP skeleton and solves the
// relaxation (9)–(14) for source v0. The model lives in ssqppmodel.go: the
// telescoped prefix formulation with constraint (13) enforced by fixing the
// forbidden x_{tu} to zero. One-shot callers go through this wrapper;
// multi-source callers hold an ssqppSolver to reuse the clone and workspace.
func solveSSQPPLP(ins *Instance, v0 int) (*ssqppFrac, error) {
	return newSSQPPSolver(ins).solveLP(v0)
}

// filterTol treats tiny fractional masses as zero during filtering.
const filterTol = 1e-9

// filter applies the §3.3.1 filtering step with parameter α to the
// fractional assignment x[t][u] (columns sum to 1 over t): the filtered
// x̃_{tu} is the largest value with x̃_{tu} ≤ α·x_{tu} and Σ_{s≤t} x̃_{su} ≤ 1,
// which moves all mass to the closest ranks. Afterwards, x̃_{tu} > 0 implies
// Σ_{s<t} x_{su} < 1/α, the property behind the α/(α-1) distance bound of
// Claim 3.8 / Lemma 3.9.
func filter(x [][]float64, alpha float64) [][]float64 {
	if len(x) == 0 {
		return nil
	}
	n, nU := len(x), len(x[0])
	out := make([][]float64, n)
	for t := range out {
		out[t] = make([]float64, nU)
	}
	for u := 0; u < nU; u++ {
		cum := 0.0
		for t := 0; t < n && cum < 1-filterTol; t++ {
			if x[t][u] <= filterTol {
				continue
			}
			v := alpha * x[t][u]
			if v > 1-cum {
				v = 1 - cum
			}
			out[t][u] = v
			cum += v
		}
	}
	return out
}

// roundFiltered interprets the filtered solution as a fractional GAP
// solution (machines = nodes with capacity α·cap, jobs = elements, cost of
// element u on rank t = d_t) and applies Shmoys–Tardos rounding. The
// resulting load is at most α·cap(v) + max load ≤ (α+1)·cap(v). The
// rounding flow runs on the solver's gap workspace so repeated per-source
// roundings reuse the network scratch.
func (sv *ssqppSolver) roundFiltered(frac *ssqppFrac, xt [][]float64, alpha float64) (Placement, error) {
	sp := sv.rec.Start("ssqpp.round")
	defer sp.End()
	ins := sv.ins
	n := ins.M.N()
	nU := ins.Sys.Universe()
	g := &gap.Instance{
		Cost: make([][]float64, n),
		Load: make([][]float64, n),
		T:    make([]float64, n),
	}
	for t := 0; t < n; t++ {
		g.Cost[t] = make([]float64, nU)
		g.Load[t] = make([]float64, nU)
		g.T[t] = alpha * ins.Cap[frac.order[t]]
		for u := 0; u < nU; u++ {
			g.Cost[t][u] = frac.dist[t]
			if xt[t][u] > filterTol {
				g.Load[t][u] = ins.loads[u]
			} else {
				g.Load[t][u] = math.Inf(1)
			}
		}
	}
	// Renormalize columns exactly to 1 (filtering guarantees ≈1).
	for u := 0; u < nU; u++ {
		sum := 0.0
		for t := 0; t < n; t++ {
			sum += xt[t][u]
		}
		if math.Abs(sum-1) > 1e-6 {
			return Placement{}, fmt.Errorf("placement: filtered mass for element %d is %v", u, sum)
		}
		for t := 0; t < n; t++ {
			xt[t][u] /= sum
		}
	}
	assign, _, err := gap.RoundWith(sv.gws, g, xt)
	if err != nil {
		return Placement{}, fmt.Errorf("placement: SSQPP rounding: %w", err)
	}
	f := make([]int, nU)
	for u, t := range assign {
		f[u] = frac.order[t]
	}
	return NewPlacement(f), nil
}
