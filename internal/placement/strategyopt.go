package placement

import (
	"fmt"

	"quorumplace/internal/lp"
	"quorumplace/internal/quorum"
)

// Strategy re-optimization: the paper fixes the access strategy p and
// optimizes the placement f; the natural companion knob (a §6-style
// extension) is to fix f and re-optimize p. Both the average max-delay
// objective and the per-node load constraints are linear in p, so the
// problem is an LP:
//
//	minimize   Avg_v Σ_Q p(Q) δ_f(v, Q)
//	subject to Σ_{Q : f(Q) ∋ v} p(Q)·[u ∈ Q, f(u) = v] ≤ cap(v)  ∀v
//	           Σ_Q p(Q) = 1,  p ≥ 0
//
// Alternating placement and strategy optimization (coordinate descent)
// never increases the objective; the E14 experiment measures what one
// round of strategy re-optimization buys on top of the Theorem 1.2
// placement.

// OptimizeStrategyForPlacement returns the access strategy minimizing the
// (rate-weighted) average max-delay of the fixed placement p, subject to
// every node's induced load staying within its capacity. It returns an
// error if no distribution satisfies the capacities (e.g. a colocated
// placement on a small node).
func OptimizeStrategyForPlacement(ins *Instance, p Placement) (quorum.Strategy, float64, error) {
	if err := ins.Validate(p); err != nil {
		return quorum.Strategy{}, 0, err
	}
	nQ := ins.Sys.NumQuorums()
	n := ins.M.N()

	// Cost of quorum q = rate-weighted average over clients of δ_f(v, Q).
	costs := make([]float64, nQ)
	for qi := 0; qi < nQ; qi++ {
		costs[qi] = ins.avgOverClients(func(v int) float64 {
			return ins.QuorumMaxDelay(v, qi, p)
		})
	}
	prob := lp.NewProblem()
	pv := make([]int, nQ)
	for qi := range pv {
		pv[qi] = prob.AddVar(costs[qi], fmt.Sprintf("p%d", qi))
	}
	terms := make([]lp.Term, nQ)
	for qi := range terms {
		terms[qi] = lp.Term{Var: pv[qi], Coef: 1}
	}
	prob.AddConstraint(terms, lp.EQ, 1)
	// Node load: choosing quorum Q puts one access on node v for each
	// element of Q placed on v... in the paper's load model, load_f(v) =
	// Σ_{u : f(u)=v} Σ_{Q ∋ u} p(Q), i.e. an element counts once per
	// quorum containing it.
	for v := 0; v < n; v++ {
		var t []lp.Term
		for qi := 0; qi < nQ; qi++ {
			count := 0.0
			for _, u := range ins.Sys.Quorum(qi) {
				if p.Node(u) == v {
					count++
				}
			}
			if count > 0 {
				t = append(t, lp.Term{Var: pv[qi], Coef: count})
			}
		}
		if len(t) > 0 {
			prob.AddConstraint(t, lp.LE, ins.Cap[v])
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		return quorum.Strategy{}, 0, fmt.Errorf("placement: strategy optimization LP: %w", err)
	}
	probs := make([]float64, nQ)
	for qi := range probs {
		probs[qi] = sol.X[pv[qi]]
	}
	st, err := quorum.NewStrategy(probs)
	if err != nil {
		return quorum.Strategy{}, 0, fmt.Errorf("placement: strategy optimization returned invalid distribution: %w", err)
	}
	return st, sol.Objective, nil
}

// CoordinateDescent alternates placement optimization (SolveQPP with the
// current strategy) and strategy re-optimization for the resulting
// placement, for the given number of rounds. It returns the best
// (placement, strategy) pair found and the trajectory of objective values,
// which is non-increasing across the strategy steps by LP optimality.
func CoordinateDescent(ins *Instance, alpha float64, rounds int) (Placement, quorum.Strategy, []float64, error) {
	if rounds < 1 {
		return Placement{}, quorum.Strategy{}, nil, fmt.Errorf("placement: rounds = %d, want ≥ 1", rounds)
	}
	cur := ins
	strat := ins.Strat
	var trajectory []float64
	var bestP Placement
	for r := 0; r < rounds; r++ {
		res, err := SolveQPP(cur, alpha)
		if err != nil {
			return Placement{}, quorum.Strategy{}, nil, err
		}
		bestP = res.Placement
		trajectory = append(trajectory, cur.AvgMaxDelay(bestP))
		newStrat, obj, err := OptimizeStrategyForPlacement(cur, bestP)
		if err != nil {
			// Capacities can make the strategy LP infeasible for the
			// (α+1)-violating placement; stop the descent there.
			return bestP, strat, trajectory, nil
		}
		trajectory = append(trajectory, obj)
		strat = newStrat
		next, err := NewInstance(cur.M, cur.Cap, cur.Sys, strat)
		if err != nil {
			return Placement{}, quorum.Strategy{}, nil, err
		}
		next.Rates = cur.Rates
		cur = next
	}
	return bestP, strat, trajectory, nil
}

// OptimizePerClientStrategies generalizes OptimizeStrategyForPlacement to
// the §6 per-client setting: each client v gets its own strategy p_v, the
// objective is the (rate-weighted) average of each client's expected
// max-delay, and the load constraints apply to the average strategy p̄
// (which is how §6 defines load for per-client strategies). The LP has
// |V|·|Q| variables; per-client freedom can only improve on the single
// shared strategy.
func OptimizePerClientStrategies(ins *Instance, p Placement) ([]quorum.Strategy, float64, error) {
	if err := ins.Validate(p); err != nil {
		return nil, 0, err
	}
	nQ := ins.Sys.NumQuorums()
	n := ins.M.N()
	prob := lp.NewProblem()
	vars := make([][]int, n)
	weights := make([]float64, n)
	wsum := 0.0
	for v := 0; v < n; v++ {
		weights[v] = 1
		if ins.Rates != nil {
			weights[v] = ins.Rates[v]
		}
		wsum += weights[v]
	}
	for v := 0; v < n; v++ {
		vars[v] = make([]int, nQ)
		for qi := 0; qi < nQ; qi++ {
			cost := weights[v] / wsum * ins.QuorumMaxDelay(v, qi, p)
			vars[v][qi] = prob.AddVar(cost, fmt.Sprintf("p_%d_%d", v, qi))
		}
		terms := make([]lp.Term, nQ)
		for qi := range terms {
			terms[qi] = lp.Term{Var: vars[v][qi], Coef: 1}
		}
		prob.AddConstraint(terms, lp.EQ, 1)
	}
	// Node load under the rate-weighted average strategy p̄:
	// load(v') = Σ_{u: f(u)=v'} Σ_{Q∋u} p̄(Q) with p̄(Q) = Σ_v w_v p_v(Q)/Σw.
	for node := 0; node < n; node++ {
		counts := make([]float64, nQ) // elements of Q placed on node
		any := false
		for qi := 0; qi < nQ; qi++ {
			for _, u := range ins.Sys.Quorum(qi) {
				if p.Node(u) == node {
					counts[qi]++
					any = true
				}
			}
		}
		if !any {
			continue
		}
		var terms []lp.Term
		for v := 0; v < n; v++ {
			for qi := 0; qi < nQ; qi++ {
				if counts[qi] > 0 {
					terms = append(terms, lp.Term{Var: vars[v][qi], Coef: counts[qi] * weights[v] / wsum})
				}
			}
		}
		prob.AddConstraint(terms, lp.LE, ins.Cap[node])
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, 0, fmt.Errorf("placement: per-client strategy LP: %w", err)
	}
	out := make([]quorum.Strategy, n)
	for v := 0; v < n; v++ {
		probs := make([]float64, nQ)
		for qi := 0; qi < nQ; qi++ {
			probs[qi] = sol.X[vars[v][qi]]
		}
		st, err := quorum.NewStrategy(probs)
		if err != nil {
			return nil, 0, fmt.Errorf("placement: client %d strategy invalid: %w", v, err)
		}
		out[v] = st
	}
	return out, sol.Objective, nil
}
