package placement_test

import (
	"math"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func availInstance(t *testing.T) *placement.Instance {
	t.Helper()
	m := mustMetric(t, graph.Path(6))
	sys := quorum.Majority(4, 3)
	ins, err := placement.NewInstance(m, uniformCaps(6, 3), sys, quorum.Uniform(sys.NumQuorums()))
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestNodeFailureProbabilityValidation(t *testing.T) {
	ins := availInstance(t)
	p := placement.NewPlacement([]int{0, 1, 2, 3})
	if _, err := ins.NodeFailureProbability(p, -0.1); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, err := ins.NodeFailureProbability(p, 1.5); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if _, err := ins.NodeFailureProbability(placement.NewPlacement([]int{0}), 0.5); err == nil {
		t.Fatal("short placement accepted")
	}
}

func TestNodeFailureProbabilityEdgeCases(t *testing.T) {
	ins := availInstance(t)
	p := placement.NewPlacement([]int{0, 1, 2, 3})
	f0, err := ins.NodeFailureProbability(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f0 != 0 {
		t.Fatalf("F_0 = %v, want 0", f0)
	}
	f1, err := ins.NodeFailureProbability(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != 1 {
		t.Fatalf("F_1 = %v, want 1", f1)
	}
}

// TestBijectiveMatchesElementLevel: when the placement is injective, node
// failures are exactly element failures.
func TestBijectiveMatchesElementLevel(t *testing.T) {
	ins := availInstance(t)
	p := placement.NewPlacement([]int{0, 1, 2, 3})
	for _, prob := range []float64{0.1, 0.35, 0.6} {
		want, err := quorum.FailureProbability(ins.Sys, prob)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ins.NodeFailureProbability(p, prob)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("p=%v: placed %v, element-level %v", prob, got, want)
		}
	}
}

// TestColocationExactValues pins the closed forms for the three placement
// shapes of Majority(4,3). Colocation is not monotonically bad: with all
// four elements on one node the system fails exactly when that node does
// (F = p), which for p = 0.3 *beats* the spread placement (F ≈ 0.348, the
// 2-of-4 failure tail) — availability depends on how failures correlate
// with the quorum structure, which is exactly what this analysis exposes.
func TestColocationExactValues(t *testing.T) {
	ins := availInstance(t)
	prob := 0.3
	spread, _ := ins.NodeFailureProbability(placement.NewPlacement([]int{0, 1, 2, 3}), prob)
	paired, _ := ins.NodeFailureProbability(placement.NewPlacement([]int{0, 0, 1, 1}), prob)
	co, _ := ins.NodeFailureProbability(placement.NewPlacement([]int{0, 0, 0, 0}), prob)
	// Spread: F = P(≥2 of 4 elements fail) = 1 - (1-p)^4 - 4p(1-p)^3.
	q := 1 - prob
	wantSpread := 1 - q*q*q*q - 4*prob*q*q*q
	if math.Abs(spread-wantSpread) > 1e-12 {
		t.Fatalf("spread failure probability %v, want %v", spread, wantSpread)
	}
	// Paired (2 nodes × 2 elements): any node crash kills 2 elements,
	// leaving 2 < 3 alive → F = 1-(1-p)².
	if want := 1 - q*q; math.Abs(paired-want) > 1e-12 {
		t.Fatalf("paired failure probability %v, want %v", paired, want)
	}
	// Fully colocated: F = p.
	if math.Abs(co-prob) > 1e-12 {
		t.Fatalf("colocated failure probability %v, want %v", co, prob)
	}
	// Pairing is the worst of the three at p = 0.3.
	if !(paired > spread && paired > co) {
		t.Fatalf("expected paired (%v) to be worst; spread %v, colocated %v", paired, spread, co)
	}
}

func TestPlacementResilienceDelayTradeoff(t *testing.T) {
	// The delay-optimal placement may be brittle; verify the analysis
	// exposes that: putting Majority(4,3)'s elements on a single node has
	// resilience 0 while the spread placement has resilience 1.
	ins := availInstance(t)
	r, err := ins.PlacementResilience(placement.NewPlacement([]int{0, 1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("spread resilience = %d, want 1", r)
	}
}
