package placement_test

import (
	"math"
	"math/rand"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
	"quorumplace/internal/quorum"
)

func TestOptimizeStrategyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	ins := randomInstance(t, rng)
	if _, _, err := placement.OptimizeStrategyForPlacement(ins, placement.NewPlacement([]int{0})); err == nil {
		t.Fatal("short placement accepted")
	}
}

// TestOptimizeStrategyNeverWorse: the optimized strategy's objective is at
// most the current strategy's, whenever the current strategy is itself
// capacity-feasible for the placement.
func TestOptimizeStrategyNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	checked := 0
	for trial := 0; trial < 15 && checked < 8; trial++ {
		ins := randomInstance(t, rng)
		p, err := placement.RandomFeasiblePlacement(ins, rng, 100)
		if err != nil {
			t.Fatal(err)
		}
		// The current (uniform/random) strategy is feasible by
		// construction: NodeLoads ≤ cap.
		before := ins.AvgMaxDelay(p)
		st, obj, err := placement.OptimizeStrategyForPlacement(ins, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if obj > before+1e-6 {
			t.Fatalf("trial %d: optimized objective %v worse than current %v", trial, obj, before)
		}
		// The reported objective matches a direct evaluation under the new
		// strategy.
		ins2, err := placement.NewInstance(ins.M, ins.Cap, ins.Sys, st)
		if err != nil {
			t.Fatal(err)
		}
		if got := ins2.AvgMaxDelay(p); math.Abs(got-obj) > 1e-6 {
			t.Fatalf("trial %d: LP says %v, evaluation gives %v", trial, obj, got)
		}
		// The induced loads respect capacities.
		if !ins2.Feasible(p) {
			t.Fatalf("trial %d: optimized strategy violates capacities", trial)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no feasible trials")
	}
}

// TestOptimizeStrategyHandChecked: two quorums, one far and one near; with
// ample capacity the optimizer puts all mass on the near quorum.
func TestOptimizeStrategyHandChecked(t *testing.T) {
	m := mustMetric(t, graph.Path(4))
	sys, err := quorum.NewSystem("two", 3, [][]int{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	st := quorum.Uniform(2)
	ins, err := placement.NewInstance(m, uniformCaps(4, 10), sys, st)
	if err != nil {
		t.Fatal(err)
	}
	// e0 on node 0, e1 on node 1 (near), e2 on node 3 (far).
	p := placement.NewPlacement([]int{0, 1, 3})
	opt, obj, err := placement.OptimizeStrategyForPlacement(ins, p)
	if err != nil {
		t.Fatal(err)
	}
	if opt.P(0) < 1-1e-6 {
		t.Fatalf("optimizer kept mass %v on the far quorum", opt.P(1))
	}
	// Objective = Avg_v max(d(v,0), d(v,1)) over the path 0-1-2-3:
	// v=0: 1, v=1: 1, v=2: 2... d(2,0)=2 d(2,1)=1 → 2; v=3: 3.
	want := (1.0 + 1 + 2 + 3) / 4
	if math.Abs(obj-want) > 1e-6 {
		t.Fatalf("objective %v, want %v", obj, want)
	}
}

// TestOptimizeStrategyCapacityBinds: with a tight capacity on the near
// node, mass must spill to the far quorum.
func TestOptimizeStrategyCapacityBinds(t *testing.T) {
	m := mustMetric(t, graph.Path(4))
	sys, err := quorum.NewSystem("two", 3, [][]int{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := placement.NewInstance(m, []float64{10, 0.4, 10, 10}, sys, quorum.Uniform(2))
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement([]int{0, 1, 3})
	opt, _, err := placement.OptimizeStrategyForPlacement(ins, p)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 hosts only e1 ∈ Q0, so p(Q0) ≤ 0.4.
	if opt.P(0) > 0.4+1e-6 {
		t.Fatalf("capacity constraint violated: p(Q0) = %v > 0.4", opt.P(0))
	}
	if math.Abs(opt.P(0)+opt.P(1)-1) > 1e-9 {
		t.Fatalf("not a distribution: %v", opt.Probs())
	}
}

func TestOptimizeStrategyInfeasible(t *testing.T) {
	m := mustMetric(t, graph.Path(3))
	sys, err := quorum.NewSystem("one", 2, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Single quorum forces p = 1 and hence load 1 on each element's node;
	// cap 0.5 everywhere makes that infeasible.
	ins, err := placement.NewInstance(m, uniformCaps(3, 0.5), sys, quorum.Uniform(1))
	if err == nil {
		p := placement.NewPlacement([]int{0, 1})
		if _, _, err := placement.OptimizeStrategyForPlacement(ins, p); err == nil {
			t.Fatal("expected infeasible strategy LP")
		}
	}
}

// TestCoordinateDescentMonotoneOnStrategySteps: each strategy step's LP
// objective is ≤ the placement evaluation preceding it.
func TestCoordinateDescentMonotoneOnStrategySteps(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	ins := randomInstance(t, rng)
	p, st, traj, err := placement.CoordinateDescent(ins, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Validate(p); err != nil {
		t.Fatal(err)
	}
	if st.Len() != ins.Sys.NumQuorums() {
		t.Fatalf("strategy covers %d quorums, want %d", st.Len(), ins.Sys.NumQuorums())
	}
	if len(traj) < 1 {
		t.Fatal("empty trajectory")
	}
	// Trajectory alternates placement-eval, strategy-LP, ...; each strategy
	// value must not exceed the placement value before it.
	for i := 1; i < len(traj); i += 2 {
		if traj[i] > traj[i-1]+1e-6 {
			t.Fatalf("strategy step %d worsened: %v -> %v (traj %v)", i, traj[i-1], traj[i], traj)
		}
	}
}

func TestCoordinateDescentValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(209))
	ins := randomInstance(t, rng)
	if _, _, _, err := placement.CoordinateDescent(ins, 2, 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

// TestOptimizePerClientStrategies: per-client freedom never loses to the
// single shared optimal strategy, the returned strategies are valid, and
// the induced average-strategy loads respect capacities.
func TestOptimizePerClientStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 6; trial++ {
		ins := randomInstance(t, rng)
		p, err := placement.RandomFeasiblePlacement(ins, rng, 100)
		if err != nil {
			t.Fatal(err)
		}
		_, shared, err := placement.OptimizeStrategyForPlacement(ins, p)
		if err != nil {
			t.Fatal(err)
		}
		per, obj, err := placement.OptimizePerClientStrategies(ins, p)
		if err != nil {
			t.Fatal(err)
		}
		if obj > shared+1e-6 {
			t.Fatalf("trial %d: per-client objective %v worse than shared %v", trial, obj, shared)
		}
		// Objective matches direct evaluation.
		got, err := ins.AvgMaxDelayPerClient(per, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-obj) > 1e-6 {
			t.Fatalf("trial %d: LP %v, evaluation %v", trial, obj, got)
		}
		// Average strategy respects capacities.
		avg, err := placement.AverageStrategies(ins, per)
		if err != nil {
			t.Fatal(err)
		}
		insAvg, err := placement.NewInstance(ins.M, ins.Cap, ins.Sys, avg)
		if err != nil {
			t.Fatal(err)
		}
		if !insAvg.Feasible(p) {
			t.Fatalf("trial %d: average strategy violates capacities", trial)
		}
	}
}

// TestPerClientUnconstrainedPicksNearest: with ample capacity each client
// concentrates on its delay-minimal quorum.
func TestPerClientUnconstrainedPicksNearest(t *testing.T) {
	m := mustMetric(t, graph.Path(4))
	sys, err := quorum.NewSystem("two", 3, [][]int{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := placement.NewInstance(m, uniformCaps(4, 100), sys, quorum.Uniform(2))
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement([]int{0, 1, 3})
	per, _, err := placement.OptimizePerClientStrategies(ins, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		d0 := ins.QuorumMaxDelay(v, 0, p)
		d1 := ins.QuorumMaxDelay(v, 1, p)
		if d0 < d1-1e-9 && per[v].P(0) < 1-1e-6 {
			t.Fatalf("client %d: quorum 0 cheaper (%v vs %v) but p=%v", v, d0, d1, per[v].P(0))
		}
		if d1 < d0-1e-9 && per[v].P(1) < 1-1e-6 {
			t.Fatalf("client %d: quorum 1 cheaper but p=%v", v, per[v].P(1))
		}
	}
}
