package placement

import (
	"fmt"
	"math"
	"sort"

	"quorumplace/internal/obs"
)

// This file implements the §4.1 optimal single-source layout for the k×k
// Grid quorum system under the uniform access strategy, proven optimal in
// Appendix B (Theorem B.1): sort the k² chosen node slots by distance from
// v0 in decreasing order τ1 ≥ τ2 ≥ ... ≥ τ_{k²} and fill the k×k logical
// matrix in L-shaped shells — the largest l² distances occupy the top-left
// l×l square, the next l go down column l+1, and the following l+1 across
// row l+1.

// slotTol mirrors capTol for slot packing.
const slotTol = 1e-9

// capacitySlots expands the nodes into unit-load slots: node v contributes
// ⌊cap(v)/unitLoad⌋ slots (§4.1's "multiple copies of nodes with a capacity
// large enough"). It returns the node id of each slot sorted by increasing
// distance from v0, or an error if fewer than want slots exist.
func capacitySlots(ins *Instance, v0 int, unitLoad float64, want int) ([]int, error) {
	if unitLoad <= 0 {
		return nil, fmt.Errorf("placement: unit load %v must be positive", unitLoad)
	}
	var slots []int
	for _, v := range ins.M.NodesByDistance(v0) {
		copies := int(math.Floor(ins.Cap[v]/unitLoad + slotTol))
		for c := 0; c < copies && len(slots) < want; c++ {
			slots = append(slots, v)
		}
		if len(slots) == want {
			break
		}
	}
	if len(slots) < want {
		return nil, fmt.Errorf("placement: only %d capacity slots of load %v available, need %d", len(slots), unitLoad, want)
	}
	return slots, nil
}

// uniformLoad returns the common element load, or an error if loads differ
// (the §4 layouts assume the uniform strategy, under which all Grid and
// Majority elements carry equal load).
func uniformLoad(ins *Instance) (float64, error) {
	l0 := ins.loads[0]
	for u, l := range ins.loads {
		if math.Abs(l-l0) > 1e-9*(1+l0) {
			return 0, fmt.Errorf("placement: element loads are not uniform (load(0)=%v, load(%d)=%v); the §4 layouts require the uniform strategy", l0, u, l)
		}
	}
	return l0, nil
}

// GridShellOrder returns the order in which matrix cells are filled by the
// §4.1 strategy for a k×k grid: position i of the result is the (row, col)
// cell that receives τ_{i+1} (the i-th largest distance).
func GridShellOrder(k int) [][2]int {
	order := make([][2]int, 0, k*k)
	order = append(order, [2]int{0, 0})
	for l := 1; l < k; l++ {
		for r := 0; r < l; r++ {
			order = append(order, [2]int{r, l}) // down column l
		}
		for c := 0; c <= l; c++ {
			order = append(order, [2]int{l, c}) // across row l
		}
	}
	return order
}

// GridLayoutCost returns the average max-delay of a k×k grid arrangement:
// cell (i,j) of m holds the distance of the slot hosting element (i,j), and
// the cost is the mean over all k² quorums Q_{ij} of the maximum distance
// in row i ∪ column j.
func GridLayoutCost(m [][]float64) float64 {
	k := len(m)
	rowMax := make([]float64, k)
	colMax := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if m[i][j] > rowMax[i] {
				rowMax[i] = m[i][j]
			}
			if m[i][j] > colMax[j] {
				colMax[j] = m[i][j]
			}
		}
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			sum += math.Max(rowMax[i], colMax[j])
		}
	}
	return sum / float64(k*k)
}

// GridResult is the outcome of SolveGridSSQPP.
type GridResult struct {
	Placement Placement
	V0        int
	Delay     float64     // Δ_f(v0), optimal by Theorem B.1
	Taus      []float64   // slot distances in decreasing order (τ1 ≥ ...)
	Matrix    [][]float64 // the filled k×k distance matrix (Figure 2 view)
}

// SolveGridSSQPP computes the optimal single-source placement of the k×k
// Grid system (uniform strategy) for source v0, per §4.1/Appendix B. The
// instance system must be a Grid (universe k² with element (r,c) at index
// r*k+c and quorums Q_{ij} = row i ∪ column j); loads must be uniform.
// The returned placement respects capacities exactly.
func SolveGridSSQPP(ins *Instance, v0 int) (*GridResult, error) {
	sp := obs.Start("placement.grid_ssqpp")
	defer sp.End()
	nU := ins.Sys.Universe()
	k := int(math.Round(math.Sqrt(float64(nU))))
	if k*k != nU {
		return nil, fmt.Errorf("placement: grid layout needs a square universe, got %d", nU)
	}
	load, err := uniformLoad(ins)
	if err != nil {
		return nil, err
	}
	slots, err := capacitySlots(ins, v0, load, nU)
	if err != nil {
		return nil, err
	}
	// τ1 ≥ τ2 ≥ ... : slots arrive sorted by increasing distance; reverse.
	type slot struct {
		node int
		dist float64
	}
	desc := make([]slot, nU)
	for i, v := range slots {
		desc[nU-1-i] = slot{node: v, dist: ins.M.D(v0, v)}
	}
	// NodesByDistance ties can make the reversal non-monotone within equal
	// distances only, which is harmless; re-sort to be safe.
	sort.SliceStable(desc, func(a, b int) bool { return desc[a].dist > desc[b].dist })

	order := GridShellOrder(k)
	f := make([]int, nU)
	matrix := make([][]float64, k)
	for i := range matrix {
		matrix[i] = make([]float64, k)
	}
	taus := make([]float64, nU)
	for i, cell := range order {
		r, c := cell[0], cell[1]
		f[r*k+c] = desc[i].node
		matrix[r][c] = desc[i].dist
		taus[i] = desc[i].dist
	}
	pl := NewPlacement(f)
	return &GridResult{
		Placement: pl,
		V0:        v0,
		Delay:     ins.MaxDelayFrom(v0, pl),
		Taus:      taus,
		Matrix:    matrix,
	}, nil
}

// SolveGridQPP applies the Theorem 1.3 reduction for the Grid system: run
// the optimal single-source layout from every candidate source and return
// the placement minimizing the true average max-delay. The placement
// respects capacities exactly and its delay is within 5× of the optimal
// capacity-respecting placement.
func SolveGridQPP(ins *Instance) (*GridResult, float64, error) {
	sp := obs.Start("placement.grid_qpp")
	defer sp.End()
	var best *GridResult
	bestAvg := math.Inf(1)
	var firstErr error
	for v0 := 0; v0 < ins.M.N(); v0++ {
		res, err := SolveGridSSQPP(ins, v0)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if avg := ins.AvgMaxDelay(res.Placement); avg < bestAvg {
			best, bestAvg = res, avg
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("placement: grid layout failed for every source: %w", firstErr)
	}
	return best, bestAvg, nil
}

// BruteForceGridLayout finds the minimum GridLayoutCost over all
// arrangements of the given distances in a k×k matrix by exhaustive
// permutation (k ≤ 3 is practical). Used to verify Theorem B.1.
func BruteForceGridLayout(taus []float64) float64 {
	k := int(math.Round(math.Sqrt(float64(len(taus)))))
	if k*k != len(taus) {
		panic(fmt.Sprintf("placement: %d distances do not form a square", len(taus)))
	}
	vals := append([]float64(nil), taus...)
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
	}
	best := math.Inf(1)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == k*k {
			if c := GridLayoutCost(m); c < best {
				best = c
			}
			return
		}
		seen := map[float64]bool{} // skip permutations of equal values
		for i := pos; i < len(vals); i++ {
			if seen[vals[i]] {
				continue
			}
			seen[vals[i]] = true
			vals[pos], vals[i] = vals[i], vals[pos]
			m[pos/k][pos%k] = vals[pos]
			rec(pos + 1)
			vals[pos], vals[i] = vals[i], vals[pos]
		}
	}
	rec(0)
	return best
}
