package placement

import (
	"fmt"
	"math"

	"quorumplace/internal/obs"
	"quorumplace/internal/quorum"
)

// This file implements the general Quorum Placement Problem solver of
// Theorem 1.2 via the reduction to the single-source problem (Lemma 3.1 and
// Theorem 3.3): since the identity of the special relay node v0 is unknown,
// the solver runs the SSQPP algorithm from every candidate source and keeps
// the placement with the best actual average max-delay. The returned
// placement satisfies
//
//	Avg_v Δ_f(v) ≤ 5α/(α-1) · Avg_v Δ_{f*}(v)
//
// with load_f(v) ≤ (α+1)·cap(v) at every node.

// QPPResult is the outcome of SolveQPP.
type QPPResult struct {
	Placement   Placement
	AvgMaxDelay float64 // Avg_v Δ_f(v) of the returned placement
	BestV0      int     // the source whose SSQPP solution won
	Alpha       float64

	// RelayBound is min over sources v0 of
	// Avg_v d(v,v0) + α/(α-1)·Z*(v0): the delay certificate Theorem 3.3
	// accounts the returned placement against.
	RelayBound float64

	// MaxLPBound is max over sources v0 of the LP lower bound Z*(v0).
	// Because the optimal placement f* is a feasible SSQPP solution for
	// *some* source (the Lemma 3.1 node), Z*(v0) ≤ Δ_{f*}(v0) holds for
	// each v0 individually; the evaluation harness combines these with
	// exact solutions on small instances.
	MaxLPBound float64
}

// SolveQPP runs the Theorem 1.2 algorithm with filtering parameter α > 1.
// It is solveQPP with a single inline worker: one ssqppSolver sweeps every
// source, reusing the instance's LP skeletons and one workspace throughout.
func SolveQPP(ins *Instance, alpha float64) (*QPPResult, error) {
	sp := obs.Start("placement.qpp")
	defer sp.End()
	best, err := solveQPP(ins, alpha, 1, nil)
	if err != nil {
		return nil, err
	}
	obs.Gauge("placement.qpp_avg_max_delay", best.AvgMaxDelay)
	return best, nil
}

// RelayFactor measures the Lemma 3.1 ratio for a given placement: the
// average delay of the best relay-via-v0 strategy divided by the true
// average max-delay. The lemma proves this is at most 5 for every placement
// and strategy.
func RelayFactor(ins *Instance, p Placement) (factor float64, v0 int) {
	avg := ins.AvgMaxDelay(p)
	if avg == 0 {
		return 1, 0 // degenerate: everything at distance zero
	}
	bestV0, _ := ins.BestRelayNode(p)
	return ins.RelayDelay(bestV0, p) / avg, bestV0
}

// SolveQPPAveragedStrategies implements the §6 extension where each client
// v has its own access strategy p_v: it replaces the strategies with their
// (rate-weighted) average p̄ and runs SolveQPP, which §6 shows preserves the
// Theorem 1.2 guarantee. The per-client strategies must all cover the
// instance quorum system.
func SolveQPPAveragedStrategies(ins *Instance, perClient []quorum.Strategy, alpha float64) (*QPPResult, error) {
	avg, err := AverageStrategies(ins, perClient)
	if err != nil {
		return nil, err
	}
	avgIns, err := NewInstance(ins.M, ins.Cap, ins.Sys, avg)
	if err != nil {
		return nil, err
	}
	avgIns.Rates = ins.Rates
	return SolveQPP(avgIns, alpha)
}

// AverageStrategies returns the rate-weighted average of per-client access
// strategies, the p̄ of the §6 extension.
func AverageStrategies(ins *Instance, perClient []quorum.Strategy) (quorum.Strategy, error) {
	n := ins.M.N()
	if len(perClient) != n {
		return quorum.Strategy{}, fmt.Errorf("placement: %d client strategies for %d clients", len(perClient), n)
	}
	m := ins.Sys.NumQuorums()
	acc := make([]float64, m)
	wsum := 0.0
	for v, st := range perClient {
		if st.Len() != m {
			return quorum.Strategy{}, fmt.Errorf("placement: client %d strategy covers %d quorums, want %d", v, st.Len(), m)
		}
		w := 1.0
		if ins.Rates != nil {
			w = ins.Rates[v]
		}
		for q := 0; q < m; q++ {
			acc[q] += w * st.P(q)
		}
		wsum += w
	}
	if wsum <= 0 {
		return quorum.Strategy{}, fmt.Errorf("placement: client rates sum to zero")
	}
	for q := range acc {
		acc[q] /= wsum
	}
	return quorum.NewStrategy(acc)
}

// AvgMaxDelayPerClient evaluates the QPP objective when each client uses
// its own strategy: Avg_v Σ_Q p_v(Q) δ_f(v, Q).
func (ins *Instance) AvgMaxDelayPerClient(perClient []quorum.Strategy, p Placement) (float64, error) {
	if len(perClient) != ins.M.N() {
		return 0, fmt.Errorf("placement: %d client strategies for %d clients", len(perClient), ins.M.N())
	}
	for v, st := range perClient {
		if st.Len() != ins.Sys.NumQuorums() {
			return 0, fmt.Errorf("placement: client %d strategy covers %d quorums, want %d", v, st.Len(), ins.Sys.NumQuorums())
		}
	}
	val := ins.avgOverClients(func(v int) float64 {
		return ins.MaxDelayFromWithStrategy(v, perClient[v], p)
	})
	if math.IsNaN(val) {
		return 0, fmt.Errorf("placement: NaN delay")
	}
	return val, nil
}
