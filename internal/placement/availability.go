package placement

import (
	"fmt"
	"math"
)

// Availability of a *placed* quorum system under node crashes. Element-level
// availability (internal/quorum) assumes elements fail independently; once
// elements are placed, all elements hosted by a crashed node fail together,
// so a placement that clusters elements trades availability for delay. This
// is the fault-tolerance side of the load-dispersion motivation in §1 and
// §2 (the paper rejects Lin's single-node solution precisely because it
// "eliminates the advantages, such as load dispersion and fault tolerance,
// of any distributed quorum-based algorithm").

// maxExactNodes bounds the 2^n node-failure enumeration.
const maxExactNodes = 20

// NodeFailureProbability returns the probability that no quorum of the
// placed system is fully alive when every *node* fails independently with
// probability p (all elements on a failed node become unavailable). The
// 2^|V'| enumeration runs over only the nodes that actually host elements.
func (ins *Instance) NodeFailureProbability(pl Placement, p float64) (float64, error) {
	if err := ins.Validate(pl); err != nil {
		return 0, err
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("placement: node failure probability %v outside [0,1]", p)
	}
	// Compact the used nodes.
	idx := map[int]int{}
	for u := 0; u < pl.Len(); u++ {
		v := pl.Node(u)
		if _, ok := idx[v]; !ok {
			idx[v] = len(idx)
		}
	}
	k := len(idx)
	if k > maxExactNodes {
		return 0, fmt.Errorf("placement: %d used nodes exceed exact availability limit %d", k, maxExactNodes)
	}
	// Quorum masks over used-node indices: a quorum is alive iff every node
	// hosting one of its elements is alive.
	masks := make([]uint64, ins.Sys.NumQuorums())
	for qi := 0; qi < ins.Sys.NumQuorums(); qi++ {
		var m uint64
		for _, u := range ins.Sys.Quorum(qi) {
			m |= 1 << uint(idx[pl.Node(u)])
		}
		masks[qi] = m
	}
	total := 0.0
	for alive := uint64(0); alive < 1<<uint(k); alive++ {
		survives := false
		for _, qm := range masks {
			if alive&qm == qm {
				survives = true
				break
			}
		}
		if survives {
			continue
		}
		bits := 0
		for x := alive; x != 0; x &= x - 1 {
			bits++
		}
		total += math.Pow(1-p, float64(bits)) * math.Pow(p, float64(k-bits))
	}
	return total, nil
}

// PlacementResilience returns the largest number f of node crashes the
// placed system always survives: for every set of f nodes, some quorum has
// all its elements on other nodes. Computed as (minimum node hitting set
// over placed quorums) − 1.
func (ins *Instance) PlacementResilience(pl Placement) (int, error) {
	if err := ins.Validate(pl); err != nil {
		return 0, err
	}
	idx := map[int]int{}
	for u := 0; u < pl.Len(); u++ {
		v := pl.Node(u)
		if _, ok := idx[v]; !ok {
			idx[v] = len(idx)
		}
	}
	k := len(idx)
	if k > 63 {
		return 0, fmt.Errorf("placement: resilience computation limited to 63 used nodes, got %d", k)
	}
	masks := make([]uint64, ins.Sys.NumQuorums())
	for qi := 0; qi < ins.Sys.NumQuorums(); qi++ {
		var m uint64
		for _, u := range ins.Sys.Quorum(qi) {
			m |= 1 << uint(idx[pl.Node(u)])
		}
		masks[qi] = m
	}
	best := k + 1
	var rec func(hit uint64, count int)
	rec = func(hit uint64, count int) {
		if count >= best {
			return
		}
		var missing uint64
		found := false
		for _, qm := range masks {
			if qm&hit == 0 {
				missing = qm
				found = true
				break
			}
		}
		if !found {
			best = count
			return
		}
		for b := 0; b < k; b++ {
			if missing&(1<<uint(b)) != 0 {
				rec(hit|1<<uint(b), count+1)
			}
		}
	}
	rec(0, 0)
	return best - 1, nil
}
