package placement

import (
	"fmt"

	"quorumplace/internal/obs"
)

// Local-search post-processing. The paper's guarantees come from LP
// rounding; on concrete instances a placement can often be improved further
// by greedy relocations and swaps without touching the load guarantee. The
// improver never raises any node's load above maxLoadFactor·cap, so running
// it on a Theorem 3.7 placement with maxLoadFactor = α+1 preserves the
// theorem's load bound while only decreasing the delay. This is an
// extension of the paper (its §6 mentions no post-processing); the E12
// ablation quantifies what it buys.

// Objective selects the delay objective a local search optimizes.
type Objective int

// Local-search objectives.
const (
	ObjectiveAvgMaxDelay Objective = iota // Problem 1.1
	ObjectiveAvgTotalDelay
	ObjectiveSourceMaxDelay // Δ_f(v0) for a fixed source (Problem 3.2)
)

// LocalSearchConfig configures ImproveLocalSearch.
type LocalSearchConfig struct {
	Objective Objective
	// V0 is the source node; used only with ObjectiveSourceMaxDelay.
	V0 int
	// MaxLoadFactor bounds node loads during the search: a move is legal
	// only if the destination stays within MaxLoadFactor·cap. Use 1 for
	// capacity-respecting searches, α+1 to preserve a Theorem 3.7 bound.
	MaxLoadFactor float64
	// MaxIterations caps the number of improving moves (0 = 10·|U|·|V|).
	MaxIterations int
}

// ImproveLocalSearch hill-climbs from p using single-element relocations
// and pairwise swaps, returning an improved placement and its objective
// value. The returned placement is never worse than the input, and every
// intermediate placement respects MaxLoadFactor·cap.
func ImproveLocalSearch(ins *Instance, p Placement, cfg LocalSearchConfig) (Placement, float64, error) {
	if err := ins.Validate(p); err != nil {
		return Placement{}, 0, err
	}
	if cfg.MaxLoadFactor <= 0 {
		return Placement{}, 0, fmt.Errorf("placement: MaxLoadFactor = %v must be positive", cfg.MaxLoadFactor)
	}
	if cfg.Objective == ObjectiveSourceMaxDelay && (cfg.V0 < 0 || cfg.V0 >= ins.M.N()) {
		return Placement{}, 0, fmt.Errorf("placement: V0 = %d out of range", cfg.V0)
	}
	eval := func(f []int) float64 {
		pl := Placement{f: f}
		switch cfg.Objective {
		case ObjectiveAvgTotalDelay:
			return ins.AvgTotalDelay(pl)
		case ObjectiveSourceMaxDelay:
			return ins.MaxDelayFrom(cfg.V0, pl)
		default:
			return ins.AvgMaxDelay(pl)
		}
	}

	nU := ins.Sys.Universe()
	n := ins.M.N()
	f := p.Map()
	loads := make([]float64, n)
	for u, v := range f {
		loads[v] += ins.loads[u]
	}
	budget := make([]float64, n)
	for v := range budget {
		budget[v] = cfg.MaxLoadFactor*ins.Cap[v] + capTol
	}
	// The incoming placement may already exceed the budget on some node
	// (e.g. a random placement checked against factor 1); allow the search
	// to start there but never make any over-budget node worse.
	cur := eval(f)
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 10 * nU * n
	}

	sp := obs.Start("placement.localsearch")
	defer sp.End()
	var relocations, swaps, evals int64
	defer func() {
		obs.Count("placement.localsearch_moves", relocations+swaps)
		obs.Count("placement.localsearch_relocations", relocations)
		obs.Count("placement.localsearch_swaps", swaps)
		obs.Count("placement.localsearch_evals", evals)
	}()
	improved := true
	for iter := 0; improved && iter < maxIter; iter++ {
		improved = false
		// Relocations.
		for u := 0; u < nU && !improved; u++ {
			from := f[u]
			for v := 0; v < n; v++ {
				if v == from {
					continue
				}
				if loads[v]+ins.loads[u] > budget[v] {
					continue
				}
				f[u] = v
				evals++
				if cand := eval(f); cand < cur-1e-12 {
					loads[from] -= ins.loads[u]
					loads[v] += ins.loads[u]
					cur = cand
					improved = true
					relocations++
					break
				}
				f[u] = from
			}
		}
		if improved {
			continue
		}
		// Swaps.
		for a := 0; a < nU && !improved; a++ {
			for b := a + 1; b < nU; b++ {
				va, vb := f[a], f[b]
				if va == vb {
					continue
				}
				la, lb := ins.loads[a], ins.loads[b]
				if loads[va]-la+lb > budget[va] || loads[vb]-lb+la > budget[vb] {
					continue
				}
				f[a], f[b] = vb, va
				evals++
				if cand := eval(f); cand < cur-1e-12 {
					loads[va] += lb - la
					loads[vb] += la - lb
					cur = cand
					improved = true
					swaps++
					break
				}
				f[a], f[b] = va, vb
			}
		}
	}
	return NewPlacement(f), cur, nil
}

// SolveSSQPPArgmax is the ablation variant of SolveSSQPP that skips the
// Shmoys–Tardos rounding and instead assigns every element to its
// largest-mass filtered rank. It keeps the Lemma 3.9 delay property
// (support-respecting assignment ⇒ Δ ≤ α/(α-1)·Z*) but provides NO load
// guarantee: many elements can pile onto the same node. The E12 ablation
// uses it to show the rounding step is what controls load.
func SolveSSQPPArgmax(ins *Instance, v0 int, alpha float64) (*SSQPPResult, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("placement: filtering parameter alpha = %v must exceed 1", alpha)
	}
	if v0 < 0 || v0 >= ins.M.N() {
		return nil, fmt.Errorf("placement: source %d out of range [0,%d)", v0, ins.M.N())
	}
	frac, err := solveSSQPPLP(ins, v0)
	if err != nil {
		return nil, err
	}
	xt := filter(frac.xu, alpha)
	nU := ins.Sys.Universe()
	f := make([]int, nU)
	for u := 0; u < nU; u++ {
		bestT, bestV := 0, -1.0
		for t := 0; t < len(xt); t++ {
			if xt[t][u] > bestV {
				bestT, bestV = t, xt[t][u]
			}
		}
		if bestV <= filterTol {
			return nil, fmt.Errorf("placement: element %d has empty filtered support", u)
		}
		f[u] = frac.order[bestT]
	}
	pl := NewPlacement(f)
	return &SSQPPResult{
		Placement: pl,
		V0:        v0,
		Alpha:     alpha,
		Delay:     ins.MaxDelayFrom(v0, pl),
		LPBound:   frac.obj,
	}, nil
}
