package placement

import (
	"math"
	"math/rand"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/quorum"
)

// randomDiffInstance builds a small random SSQPP instance: a random
// connected metric, a random quorum system covering the universe, a random
// normalized strategy, and random capacities (occasionally tight enough to
// be infeasible, which the differential test checks both formulations agree
// on).
func randomDiffInstance(t *testing.T, rng *rand.Rand) *Instance {
	t.Helper()
	n := 3 + rng.Intn(6) // 3..8 nodes
	var g *graph.Graph
	if rng.Intn(2) == 0 {
		g = graph.RandomTree(n, 0.5, 2, rng)
	} else {
		g = graph.ErdosRenyiConnected(n, 0.5, 0.5, 2, rng)
	}
	m, err := graph.NewMetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	nU := 2 + rng.Intn(4) // 2..5 elements
	nQ := 1 + rng.Intn(3) // 1..3 quorums
	quorums := make([][]int, nQ)
	covered := make([]bool, nU)
	core := rng.Intn(nU) // shared element, so all quorums pairwise intersect
	for q := range quorums {
		members := []int{core}
		for _, u := range rng.Perm(nU)[:rng.Intn(nU)] {
			if u != core {
				members = append(members, u)
			}
		}
		quorums[q] = members
		for _, u := range members {
			covered[u] = true
		}
	}
	// Every element must appear in some quorum so its load is defined.
	for u, ok := range covered {
		if !ok {
			quorums[rng.Intn(nQ)] = append(quorums[rng.Intn(nQ)], u)
		}
	}
	sys, err := quorum.NewSystem("rand", nU, quorums)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, nQ)
	sum := 0.0
	for q := range w {
		w[q] = 0.1 + rng.Float64()
		sum += w[q]
	}
	for q := range w {
		w[q] /= sum
	}
	st, err := quorum.NewStrategy(w)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, n)
	for v := range caps {
		caps[v] = 0.3 + 1.2*rng.Float64()
	}
	ins, err := NewInstance(m, caps, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

// TestSSQPPPrefixMatchesLegacyLP cross-checks the class-space telescoped
// prefix formulation (ssqppmodel.go) against the original dense per-rank
// formulation (legacy_lp_test.go) on randomized instances: the two LPs must
// agree on feasibility and, when feasible, on the optimal objective Z*.
// The extracted fractional solution must also be a valid point of the
// paper's LP: unit column mass, class capacities respected, and the
// objective reachable from it.
func TestSSQPPPrefixMatchesLegacyLP(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	const trials = 50
	agreeInfeasible := 0
	for trial := 0; trial < trials; trial++ {
		ins := randomDiffInstance(t, rng)
		v0 := rng.Intn(ins.M.N())
		got, gotErr := solveSSQPPLP(ins, v0)
		want, wantErr := solveSSQPPLPLegacy(ins, v0)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: feasibility disagreement: prefix err=%v, legacy err=%v", trial, gotErr, wantErr)
		}
		if gotErr != nil {
			agreeInfeasible++
			continue
		}
		if math.Abs(got.obj-want.obj) > 1e-6 {
			t.Fatalf("trial %d: Z* mismatch: prefix %.9f, legacy %.9f", trial, got.obj, want.obj)
		}
		// The extracted solution must satisfy (10): unit mass per element.
		n := ins.M.N()
		for u := 0; u < ins.Sys.Universe(); u++ {
			mass := 0.0
			for s := 0; s < n; s++ {
				mass += got.xu[s][u]
			}
			if math.Abs(mass-1) > 1e-6 {
				t.Fatalf("trial %d: element %d mass %.9f", trial, u, mass)
			}
		}
		// And (12)/(13) per rank: capacity respected, forbidden ranks empty.
		for s := 0; s < n; s++ {
			capS := ins.Cap[got.order[s]]
			load := 0.0
			for u := 0; u < ins.Sys.Universe(); u++ {
				load += ins.loads[u] * got.xu[s][u]
				if ins.loads[u] > capS*(1+capTol) && got.xu[s][u] > 1e-9 {
					t.Fatalf("trial %d: rank %d carries forbidden element %d", trial, s, u)
				}
			}
			if load > capS*(1+1e-6)+1e-6 {
				t.Fatalf("trial %d: rank %d load %.9f exceeds cap %.9f", trial, s, load, capS)
			}
		}
	}
	if agreeInfeasible == trials {
		t.Fatalf("all %d trials infeasible; the differential test exercised nothing", trials)
	}
	t.Logf("%d trials, %d infeasible on both sides", trials, agreeInfeasible)
}

// TestSSQPPPrefixMatchesLegacyOnStructured runs the same cross-check on the
// structured families the benchmarks use, where heavy distance ties make
// class aggregation collapse many ranks.
func TestSSQPPPrefixMatchesLegacyOnStructured(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"broom3", graph.Broom(3)},
		{"broom4", graph.Broom(4)},
		{"star8", graph.Star(8)},
		{"grid3x3", graph.Grid2D(3, 3)},
		{"path5", graph.Path(5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := graph.NewMetricFromGraph(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			n := m.N()
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			sys, err := quorum.NewSystem("single", n, [][]int{all})
			if err != nil {
				t.Fatal(err)
			}
			caps := make([]float64, n)
			for i := range caps {
				caps[i] = 1
			}
			ins, err := NewInstance(m, caps, sys, quorum.Uniform(1))
			if err != nil {
				t.Fatal(err)
			}
			for v0 := 0; v0 < n; v0++ {
				got, err := solveSSQPPLP(ins, v0)
				if err != nil {
					t.Fatal(err)
				}
				want, err := solveSSQPPLPLegacy(ins, v0)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got.obj-want.obj) > 1e-6 {
					t.Fatalf("v0=%d: Z* mismatch: prefix %.9f, legacy %.9f", v0, got.obj, want.obj)
				}
			}
		})
	}
}
