package placement

import (
	"fmt"

	"quorumplace/internal/lp"
)

// solveSSQPPLPLegacy is the pre-reformulation SSQPP LP builder, kept as a
// test oracle: it writes constraint (14) directly as dense prefix-sum rows
// (O(n²) nonzeros per quorum-element pair) and rebuilds the whole model per
// source, exactly as the original implementation did. The differential test
// checks that the sparse prefix skeleton in ssqppmodel.go reaches the same
// optimum on randomized instances.
func solveSSQPPLPLegacy(ins *Instance, v0 int) (*ssqppFrac, error) {
	n := ins.M.N()
	nU := ins.Sys.Universe()
	nQ := ins.Sys.NumQuorums()
	order := ins.M.NodesByDistance(v0)
	dist := make([]float64, n)
	for t, v := range order {
		dist[t] = ins.M.D(v0, v)
	}

	prob := lp.NewProblem()
	xu := make([][]int, n) // var ids, -1 = forbidden
	for t := 0; t < n; t++ {
		xu[t] = make([]int, nU)
		capT := ins.Cap[order[t]]
		for u := 0; u < nU; u++ {
			if ins.loads[u] > capT*(1+capTol) {
				xu[t][u] = -1 // constraint (13)
				continue
			}
			xu[t][u] = prob.AddVar(0, fmt.Sprintf("x_t%d_u%d", t, u))
		}
	}
	xq := make([][]int, n)
	for t := 0; t < n; t++ {
		xq[t] = make([]int, nQ)
		for q := 0; q < nQ; q++ {
			// Objective (9): Σ_Q p0(Q) Σ_t d_t x_{tQ}.
			xq[t][q] = prob.AddVar(ins.Strat.P(q)*dist[t], fmt.Sprintf("x_t%d_q%d", t, q))
		}
	}

	// (10): Σ_t x_{tu} = 1.
	for u := 0; u < nU; u++ {
		var terms []lp.Term
		for t := 0; t < n; t++ {
			if xu[t][u] >= 0 {
				terms = append(terms, lp.Term{Var: xu[t][u], Coef: 1})
			}
		}
		if len(terms) == 0 {
			return nil, fmt.Errorf("placement: element %d (load %v) exceeds every node capacity", u, ins.loads[u])
		}
		prob.AddConstraint(terms, lp.EQ, 1)
	}
	// (11): Σ_t x_{tQ} = 1.
	for q := 0; q < nQ; q++ {
		terms := make([]lp.Term, n)
		for t := 0; t < n; t++ {
			terms[t] = lp.Term{Var: xq[t][q], Coef: 1}
		}
		prob.AddConstraint(terms, lp.EQ, 1)
	}
	// (12): Σ_u load(u) x_{tu} ≤ cap(v_t).
	for t := 0; t < n; t++ {
		var terms []lp.Term
		for u := 0; u < nU; u++ {
			if xu[t][u] >= 0 && ins.loads[u] > 0 {
				terms = append(terms, lp.Term{Var: xu[t][u], Coef: ins.loads[u]})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, ins.Cap[order[t]])
		}
	}
	// (14): Σ_{s≤t} x_{sQ} ≤ Σ_{s≤t} x_{su} for every u ∈ Q and every t.
	// The t = n-1 instance is implied by (10) and (11), so it is skipped.
	for q := 0; q < nQ; q++ {
		for _, u := range ins.Sys.Quorum(q) {
			for t := 0; t < n-1; t++ {
				var terms []lp.Term
				for s := 0; s <= t; s++ {
					terms = append(terms, lp.Term{Var: xq[s][q], Coef: 1})
					if xu[s][u] >= 0 {
						terms = append(terms, lp.Term{Var: xu[s][u], Coef: -1})
					}
				}
				prob.AddConstraint(terms, lp.LE, 0)
			}
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("placement: legacy SSQPP LP for v0=%d: %w", v0, err)
	}
	frac := &ssqppFrac{order: order, dist: dist, obj: sol.Objective}
	frac.xu = make([][]float64, n)
	for t := 0; t < n; t++ {
		frac.xu[t] = make([]float64, nU)
		for u := 0; u < nU; u++ {
			if xu[t][u] >= 0 {
				frac.xu[t][u] = sol.X[xu[t][u]]
			}
		}
	}
	return frac, nil
}
