package placement_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"quorumplace/internal/graph"
	"quorumplace/internal/placement"
)

func TestSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 6; trial++ {
		ins := randomInstance(t, rng)
		// Rebuild a graph matching the instance is impossible here (the
		// generator discards it), so build a fresh pair explicitly.
		g := graph.ErdosRenyiConnected(ins.M.N(), 0.4, 1, 3, rng)
		m, err := graph.NewMetricFromGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		src, err := placement.NewInstance(m, ins.Cap, ins.Sys, ins.Strat)
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			rates := make([]float64, g.N())
			for v := range rates {
				rates[v] = 0.5 + rng.Float64()
			}
			if err := src.SetRates(rates); err != nil {
				t.Fatal(err)
			}
		}
		spec, err := placement.Spec("trial", g, src)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := placement.WriteSpec(&buf, spec); err != nil {
			t.Fatal(err)
		}
		spec2, err := placement.ReadSpec(&buf)
		if err != nil {
			t.Fatal(err)
		}
		g2, ins2, err := spec2.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("trial %d: graph shape changed", trial)
		}
		// The rebuilt instance computes identical delays for a fixed
		// placement.
		p, err := placement.RandomFeasiblePlacement(src, rng, 100)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := src.AvgMaxDelay(p), ins2.AvgMaxDelay(p); math.Abs(a-b) > 1e-12 {
			t.Fatalf("trial %d: delay changed across round trip: %v vs %v", trial, a, b)
		}
		if a, b := src.AvgTotalDelay(p), ins2.AvgTotalDelay(p); math.Abs(a-b) > 1e-12 {
			t.Fatalf("trial %d: total delay changed: %v vs %v", trial, a, b)
		}
	}
}

func TestSpecGraphMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	ins := randomInstance(t, rng)
	g := graph.Path(ins.M.N() + 1)
	if _, err := placement.Spec("x", g, ins); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestReadSpecRejectsGarbage(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"unknown_field": 1}`,
		`{"nodes": 2, "edges": [], "capacities": [1, -1], "universe": 1, "quorums": [[0]], "strategy": [1]}`,
	}
	for i, in := range cases {
		if _, err := placement.ReadSpec(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	base := func() *placement.InstanceSpec {
		return &placement.InstanceSpec{
			Nodes:      2,
			Edges:      [][3]float64{{0, 1, 1}},
			Capacities: []float64{1, 1},
			Universe:   1,
			Quorums:    [][]int{{0}},
			Strategy:   []float64{1},
		}
	}
	if _, _, err := base().Build(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	s := base()
	s.Nodes = 0
	if _, _, err := s.Build(); err == nil {
		t.Fatal("zero nodes accepted")
	}
	s = base()
	s.Edges = [][3]float64{{0.5, 1, 1}}
	if _, _, err := s.Build(); err == nil {
		t.Fatal("fractional endpoint accepted")
	}
	s = base()
	s.Edges = nil // disconnected 2-node graph
	if _, _, err := s.Build(); err == nil {
		t.Fatal("disconnected graph accepted")
	}
	s = base()
	s.Strategy = []float64{0.5}
	if _, _, err := s.Build(); err == nil {
		t.Fatal("non-normalized strategy accepted")
	}
	s = base()
	s.Quorums = [][]int{{0}, {0, 1}} // element 1 outside universe 1
	if _, _, err := s.Build(); err == nil {
		t.Fatal("out-of-universe quorum accepted")
	}
}
