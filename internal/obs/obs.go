// Package obs is a stdlib-only telemetry layer for the solver pipeline:
// hierarchical wall-clock spans, counters, gauges and histograms, collected
// per run by an in-memory Collector and rendered as JSONL traces or a
// human-readable summary table.
//
// The package-level default is "off": every instrumentation call first does
// a single atomic load of the active collector and returns immediately when
// none is installed, so instrumented hot paths cost roughly one predictable
// branch when telemetry is disabled (verified by BenchmarkDisabled*).
//
// Spans nest without a context parameter: the collector keeps a stack of
// open spans, and obs.Start parents the new span to the innermost open one.
//
//	sp := obs.Start("placement.ssqpp")
//	defer sp.End()
//	obs.Count("lp.pivots", 12)
//
// The stack makes parent/child attribution exact for sequential code, which
// is how the solver pipeline runs by default. Concurrent sections must not
// share the stack: a goroutine that holds a parent span handle parents its
// spans explicitly with Span.StartChild (or Collector.StartWithParent),
// which bypasses the stack entirely, and hot concurrent recorders use a
// per-goroutine Shard that buffers spans and metrics lock-free and merges
// into the collector exactly once at the end (see shard.go). The parallel
// QPP solver records through one Shard per worker.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span. Start is the offset from the collector's
// creation time, so records order and nest without absolute timestamps.
type SpanRecord struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent"` // 0 = root
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
}

// Span is a live span handle returned by Start. A nil *Span is valid and
// inert, which is what the package functions return while telemetry is
// disabled — callers never need to check.
type Span struct {
	c       *Collector
	sh      *Shard // non-nil when the span records into a worker shard
	id      uint64
	parent  uint64
	name    string
	start   time.Time
	onStack bool // true when Start pushed the span on the collector stack
	ended   atomic.Bool
}

// End completes the span and records it. It is safe on a nil span and
// idempotent on double End (the first call wins).
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	d := time.Since(s.start)
	if s.sh != nil {
		s.sh.endSpan(s, d)
		return
	}
	s.c.endSpan(s, d)
}

// StartChild opens a span explicitly parented to s, without consulting or
// touching the collector's open-span stack. This is the concurrency-safe
// way to attribute spans: a goroutine that received s from its spawner
// parents its work under s regardless of what other goroutines have open.
// Safe on a nil span (returns an inert nil span).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	if s.sh != nil {
		return s.sh.startChild(name, s.id)
	}
	return s.c.StartWithParent(name, s.id)
}

// Sink receives completed spans as they end; see JSONLWriter for the
// streaming trace sink. Sinks are invoked under the collector lock, so
// implementations must not call back into the collector.
type Sink interface {
	SpanEnd(SpanRecord)
}

// counterCell is one counter's accumulator. Cells live in an immutable
// name→cell map behind an atomic pointer, so the Count hot path is two
// atomic loads, a map lookup and an atomic add — no collector mutex, and
// therefore no cross-worker serialization when telemetry is on. The solver
// call sites batch high-frequency events (pivots, augmentations) into one
// Count per solve, so per-cell cache-line traffic stays negligible.
type counterCell struct{ v atomic.Int64 }

// Collector accumulates spans and metrics for one run. It is safe for
// concurrent use. The zero value is not usable; create with NewCollector.
type Collector struct {
	epoch time.Time

	// nextID is outside the mutex so StartWithParent and Shard.Merge can
	// allocate span IDs without serializing on recording.
	nextID atomic.Uint64

	mu     sync.Mutex
	stack  []uint64 // open spans, innermost last
	spans  []SpanRecord
	gauges map[string]float64
	hists  map[string]*LogHist
	sinks  []Sink

	// counters is read lock-free; counterMu serializes only the
	// clone-and-swap that registers a new counter name.
	counterMu sync.Mutex
	counters  atomic.Pointer[map[string]*counterCell]
}

// NewCollector returns an empty collector whose span clock starts now.
func NewCollector() *Collector {
	c := &Collector{
		epoch:  time.Now(),
		gauges: make(map[string]float64),
		hists:  make(map[string]*LogHist),
	}
	empty := make(map[string]*counterCell)
	c.counters.Store(&empty)
	return c
}

// AddSink attaches a streaming sink that observes every span as it ends.
func (c *Collector) AddSink(s Sink) {
	c.mu.Lock()
	c.sinks = append(c.sinks, s)
	c.mu.Unlock()
}

// Start opens a span as a child of the innermost open span (a root span if
// none is open).
func (c *Collector) Start(name string) *Span {
	now := time.Now()
	id := c.nextID.Add(1)
	c.mu.Lock()
	var parent uint64
	if n := len(c.stack); n > 0 {
		parent = c.stack[n-1]
	}
	c.stack = append(c.stack, id)
	c.mu.Unlock()
	return &Span{c: c, id: id, parent: parent, name: name, start: now, onStack: true}
}

// StartWithParent opens a span with an explicit parent span ID (0 for a
// root span), without reading or pushing the open-span stack. Concurrent
// code uses it (usually via Span.StartChild) so span attribution never
// depends on which goroutine happens to have a span open.
func (c *Collector) StartWithParent(name string, parent uint64) *Span {
	return &Span{c: c, id: c.nextID.Add(1), parent: parent, name: name, start: time.Now()}
}

func (c *Collector) endSpan(s *Span, dur time.Duration) {
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.Sub(c.epoch),
		Dur:    dur,
	}
	c.mu.Lock()
	if s.onStack {
		// Remove this span from the open stack; out-of-order ends (possible
		// under concurrency) remove the right entry rather than the top.
		for i := len(c.stack) - 1; i >= 0; i-- {
			if c.stack[i] == s.id {
				c.stack = append(c.stack[:i], c.stack[i+1:]...)
				break
			}
		}
	}
	c.spans = append(c.spans, rec)
	for _, snk := range c.sinks {
		snk.SpanEnd(rec)
	}
	c.mu.Unlock()
}

// Count adds delta to a monotonic counter. Existing counters are bumped
// lock-free; only the first use of a new name takes a (registration) lock.
func (c *Collector) Count(name string, delta int64) {
	if cell, ok := (*c.counters.Load())[name]; ok {
		cell.v.Add(delta)
		return
	}
	c.counterMu.Lock()
	old := *c.counters.Load()
	cell, ok := old[name]
	if !ok {
		next := make(map[string]*counterCell, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
		cell = &counterCell{}
		next[name] = cell
		c.counters.Store(&next)
	}
	c.counterMu.Unlock()
	cell.v.Add(delta)
}

// Gauge sets a gauge to its most recent value.
func (c *Collector) Gauge(name string, v float64) {
	c.mu.Lock()
	c.gauges[name] = v
	c.mu.Unlock()
}

// GaugeMax raises a gauge to v if v exceeds its current value (watermark
// semantics, e.g. netsim.max_queue_depth).
func (c *Collector) GaugeMax(name string, v float64) {
	c.mu.Lock()
	if cur, ok := c.gauges[name]; !ok || v > cur {
		c.gauges[name] = v
	}
	c.mu.Unlock()
}

// Observe records one sample into a histogram.
func (c *Collector) Observe(name string, v float64) {
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		h = NewLogHist()
		c.hists[name] = h
	}
	h.Observe(v)
	c.mu.Unlock()
}

// MergeHist folds a privately accumulated histogram into the named
// collector histogram in one locked, bucket-exact merge. Workers that
// observe in tight loops record into their own LogHist (or a Shard) and
// merge once, instead of taking the collector mutex per sample.
func (c *Collector) MergeHist(name string, h *LogHist) {
	if h == nil || h.count == 0 {
		return
	}
	c.mu.Lock()
	dst := c.hists[name]
	if dst == nil {
		dst = NewLogHist()
		c.hists[name] = dst
	}
	dst.Merge(h)
	c.mu.Unlock()
}

// Reset drops all recorded spans and metrics (open spans stay open and will
// record into the fresh state when ended).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.gauges = make(map[string]float64)
	c.hists = make(map[string]*LogHist)
	c.mu.Unlock()
	c.counterMu.Lock()
	empty := make(map[string]*counterCell)
	c.counters.Store(&empty)
	c.counterMu.Unlock()
}

// HistStats is the snapshot form of a histogram. Count, Sum, Min and Max
// are exact; quantiles come from the log-linear buckets and are within a
// relative 1/(2·histSubBuckets) of the true order statistic (see LogHist).
type HistStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot is a consistent copy of a collector's state.
type Snapshot struct {
	Duration   time.Duration // collector age at snapshot time
	Spans      []SpanRecord
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistStats
}

// Snapshot returns a consistent copy of everything recorded so far.
// Counter values are read with per-counter atomicity: a Count racing the
// snapshot is either fully included or fully excluded, but two different
// counters are not guaranteed to be cut at the same instant.
func (c *Collector) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	cmap := *c.counters.Load()
	snap := &Snapshot{
		Duration:   time.Since(c.epoch),
		Spans:      append([]SpanRecord(nil), c.spans...),
		Counters:   make(map[string]int64, len(cmap)),
		Gauges:     make(map[string]float64, len(c.gauges)),
		Histograms: make(map[string]HistStats, len(c.hists)),
	}
	for k, cell := range cmap {
		snap.Counters[k] = cell.v.Load()
	}
	for k, v := range c.gauges {
		snap.Gauges[k] = v
	}
	for k, h := range c.hists {
		snap.Histograms[k] = h.stats()
	}
	return snap
}

// --- package-level switch ----------------------------------------------------

// active is the installed collector; nil means telemetry is off. Every
// package-level instrumentation function performs exactly one atomic load of
// this pointer before doing any work.
var active atomic.Pointer[Collector]

// Enable installs c (or a fresh collector when c is nil) as the destination
// of all package-level instrumentation calls, returning it.
func Enable(c *Collector) *Collector {
	if c == nil {
		c = NewCollector()
	}
	active.Store(c)
	return c
}

// Disable turns package-level telemetry off and returns the collector that
// was active, if any.
func Disable() *Collector {
	return active.Swap(nil)
}

// Active returns the installed collector, or nil when telemetry is off.
func Active() *Collector { return active.Load() }

// Enabled reports whether a collector is installed.
func Enabled() bool { return active.Load() != nil }

// Start opens a span on the active collector; it returns an inert nil span
// when telemetry is off.
func Start(name string) *Span {
	c := active.Load()
	if c == nil {
		return nil
	}
	return c.Start(name)
}

// Count adds delta to a counter on the active collector.
func Count(name string, delta int64) {
	if c := active.Load(); c != nil {
		c.Count(name, delta)
	}
}

// Gauge sets a gauge on the active collector.
func Gauge(name string, v float64) {
	if c := active.Load(); c != nil {
		c.Gauge(name, v)
	}
}

// GaugeMax raises a watermark gauge on the active collector.
func GaugeMax(name string, v float64) {
	if c := active.Load(); c != nil {
		c.GaugeMax(name, v)
	}
}

// Observe records a histogram sample on the active collector.
func Observe(name string, v float64) {
	if c := active.Load(); c != nil {
		c.Observe(name, v)
	}
}

// MergeHist folds a privately accumulated histogram into the active
// collector's named histogram; a no-op when telemetry is off.
func MergeHist(name string, h *LogHist) {
	if c := active.Load(); c != nil {
		c.MergeHist(name, h)
	}
}

// Counter reads a counter from a snapshot, 0 when absent. It exists so
// benchmarks and tests read metrics without map-presence boilerplate.
func (s *Snapshot) Counter(name string) int64 { return s.Counters[name] }

// SpanTree returns the snapshot's spans grouped by parent ID, for callers
// that want to walk the hierarchy directly.
func (s *Snapshot) SpanTree() map[uint64][]SpanRecord {
	tree := make(map[uint64][]SpanRecord)
	for _, r := range s.Spans {
		tree[r.Parent] = append(tree[r.Parent], r)
	}
	return tree
}

// SpanPaths returns the slash-joined name path of every span (e.g.
// "placement.qpp/placement.ssqpp/lp.solve"), useful for asserting that a
// trace covers specific nested phases.
func (s *Snapshot) SpanPaths() []string {
	byID := make(map[uint64]SpanRecord, len(s.Spans))
	for _, r := range s.Spans {
		byID[r.ID] = r
	}
	paths := make([]string, 0, len(s.Spans))
	for _, r := range s.Spans {
		paths = append(paths, spanPath(byID, r))
	}
	return paths
}

func spanPath(byID map[uint64]SpanRecord, r SpanRecord) string {
	path := r.Name
	for r.Parent != 0 {
		p, ok := byID[r.Parent]
		if !ok {
			// Parent still open at snapshot time; mark the gap explicitly.
			return fmt.Sprintf("…/%s", path)
		}
		path = p.Name + "/" + path
		r = p
	}
	return path
}
